// Command llmqbench regenerates the paper's tables and figures.
//
// Usage:
//
//	llmqbench -exp fig3a                 # one experiment, default scale
//	llmqbench -exp all -scale 1 -seed 1  # every experiment at paper scale
//	llmqbench -list                      # available experiment IDs
//	llmqbench -exp table2 -format csv    # machine-readable output
//
// Experiment IDs map to paper artifacts per DESIGN.md §4.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		scale  = flag.Float64("scale", 0.1, "dataset scale; 1.0 = the paper's sizes")
		seed   = flag.Int64("seed", 1, "random seed for data generation and resampling")
		reps   = flag.Int("reps", 10000, "bootstrap resamples for fig6")
		budget = flag.Int64("ophr-budget", 3_000_000, "OPHR node budget for table6")
		format = flag.String("format", "text", "output format: text or csv")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}

	cfg := bench.Config{
		Scale:          *scale,
		Seed:           *seed,
		BootstrapReps:  *reps,
		OPHRNodeBudget: *budget,
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llmqbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(rep.CSV())
		case "text":
			fmt.Print(rep.Text())
			fmt.Printf("(%s in %.1fs wall clock, scale %g)\n\n", id, time.Since(start).Seconds(), *scale)
		default:
			fmt.Fprintf(os.Stderr, "llmqbench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
