// Command llmqsql executes an LLM-SQL statement over a CSV table or one of
// the bundled benchmark datasets, on the serving simulator.
//
// Usage:
//
//	llmqsql -csv tickets.csv -table tickets \
//	   "SELECT ticket_id, LLM('Did it help?', support_response, request) FROM tickets"
//
//	llmqsql -dataset Movies -scale 0.05 \
//	   "SELECT movietitle FROM Movies WHERE LLM('Suitable for kids?', movieinfo, genres) = 'Yes'"
//
//	llmqsql -dataset Movies -scale 0.05 \
//	   "SELECT genres, COUNT(*) AS n, AVG(LLM('Rate 1-5', reviewcontent)) AS score \
//	    FROM Movies WHERE reviewtype = 'Fresh' AND LLM('Kids?', movieinfo) = 'Yes' \
//	    GROUP BY genres ORDER BY n DESC LIMIT 5"
//
// WHERE clauses are AND/OR/NOT trees over LLM and plain-column comparisons;
// SELECT lists admit COUNT/SUM/MIN/MAX/AVG aggregates, GROUP BY, and
// ORDER BY ... LIMIT. Statements run through the logical planner (plain
// predicates pushed ahead of LLM stages, distinct LLM calls deduplicated);
// -naive disables the planner so its savings can be measured.
//
// The -policy flag switches scheduling (no-cache / cache-original /
// cache-ggr) without changing results; serving statistics print on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/sqlfront"
	"repro/internal/table"
)

func main() {
	var (
		csvPath = flag.String("csv", "", "CSV file to load as the query's table")
		tblName = flag.String("table", "t", "name to register the CSV under")
		dataset = flag.String("dataset", "", "bundled dataset to register instead of a CSV")
		scale   = flag.Float64("scale", 0.05, "dataset scale when -dataset is used")
		seed    = flag.Int64("seed", 1, "dataset seed")
		policy  = flag.String("policy", "cache-ggr", "no-cache, cache-original, or cache-ggr")
		naive   = flag.Bool("naive", false, "disable the logical planner (no pushdown, no LLM-call dedup)")
		maxRows = flag.Int("max-rows", 20, "result rows to print (0 = all)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "llmqsql: exactly one SQL statement argument is required")
		os.Exit(2)
	}

	db := sqlfront.NewDB()
	switch {
	case *dataset != "":
		d, err := datagen.RelationalByName(*dataset, datagen.Options{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		db.Register(*dataset, d.Table)
	case *csvPath != "":
		f, err := os.Open(*csvPath)
		if err != nil {
			fatal(err)
		}
		t, err := table.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		db.Register(*tblName, t)
	default:
		fmt.Fprintln(os.Stderr, "llmqsql: provide -csv or -dataset")
		os.Exit(2)
	}

	cfg := sqlfront.ExecConfig{Config: query.Config{Policy: query.Policy(*policy)}, Naive: *naive}
	res, err := db.Exec(flag.Arg(0), cfg)
	if err != nil {
		fatal(err)
	}

	out := table.New(res.Columns...)
	n := len(res.Rows)
	if *maxRows > 0 && n > *maxRows {
		n = *maxRows
	}
	for _, row := range res.Rows[:n] {
		out.MustAppendRow(row...)
	}
	if err := out.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d rows (%d shown), %d LLM calls over %d stage(s)\n",
		len(res.Rows), n, res.LLMCalls, res.Stages)
	plan := "planned"
	if *naive {
		plan = "naive"
	}
	fmt.Fprintf(os.Stderr, "virtual serving time %.1fs, prefix hit rate %.1f%%, solver %.3fs (policy %s, %s)\n",
		res.JCT, 100*res.HitRate, res.SolverSeconds, *policy, plan)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "llmqsql: %v\n", err)
	os.Exit(1)
}
