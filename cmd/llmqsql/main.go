// Command llmqsql executes an LLM-SQL statement over CSV tables and/or the
// bundled benchmark datasets, on the serving simulator.
//
// Usage:
//
//	llmqsql -csv tickets.csv -table tickets \
//	   "SELECT ticket_id, LLM('Did it help?', support_response, request) FROM tickets"
//
//	llmqsql -dataset Movies -scale 0.05 \
//	   "SELECT movietitle FROM Movies WHERE LLM('Suitable for kids?', movieinfo, genres) = 'Yes'"
//
//	llmqsql -csv tickets=tickets.csv -csv customers=customers.csv \
//	   "SELECT t.ticket_id, c.region \
//	    FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id \
//	    WHERE c.tier = 'pro' AND LLM('Did it help?', t.support_response) = 'Yes'"
//
// Both -csv (name=path, or a bare path registered under -table) and
// -dataset repeat, so FROM clauses may join any mix of registrations with
// inner equi-joins, qualifying columns as alias.column. WHERE clauses are
// AND/OR/NOT trees over LLM and plain-column comparisons; SELECT lists admit
// COUNT/SUM/MIN/MAX/AVG aggregates, GROUP BY, and ORDER BY ... LIMIT.
// Statements run through the logical planner (table-local plain predicates
// pushed below the join, distinct LLM calls deduplicated, LLM filters
// cascaded cheapest-first); -naive disables the planner so its savings can
// be measured.
//
// The -policy flag switches scheduling (no-cache / cache-original /
// cache-ggr) without changing results; -backend picks the serving target
// ("sim" = one engine per stage batch, "persistent" = long-lived engine
// replicas whose prefix cache survives between this statement's stages that
// share a prompt, "sharded-sim"/"sharded-persistent" = the same behind a
// data-parallel fan-out, "remote" = a cluster router over the workers named
// by -cluster-workers) and -shards N composes a fan-out of N engine
// replicas with the local backends. None of these change results; serving
// statistics print on stderr.
//
// Statements run on the same multi-tenant runtime llmqserve serves from, so
// the identity knobs carry through: -client names the tenant the statement
// is accounted to and -class picks its service class ("interactive" or
// "batch" — the class selects the admission weight and coalescing window a
// server would apply; for this one-shot CLI it is mostly an accounting
// label). Neither changes results.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/sqlfront"
	"repro/internal/table"
)

// repeatable collects every occurrence of a repeated string flag.
type repeatable []string

func (r *repeatable) String() string { return strings.Join(*r, ",") }

func (r *repeatable) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var csvs, datasets repeatable
	flag.Var(&csvs, "csv", "CSV to register, as name=path or a bare path named by -table (repeatable)")
	flag.Var(&datasets, "dataset", "bundled dataset to register under its own name (repeatable)")
	var (
		tblName = flag.String("table", "t", "name for a bare-path -csv registration")
		scale   = flag.Float64("scale", 0.05, "dataset scale when -dataset is used")
		seed    = flag.Int64("seed", 1, "dataset seed")
		policy  = flag.String("policy", "cache-ggr", "no-cache, cache-original, or cache-ggr")
		naive   = flag.Bool("naive", false, "disable the logical planner (no pushdown, dedup, or cost-ordered filters)")
		client  = flag.String("client", "", "client identity the statement is accounted to (default anonymous)")
		class   = flag.String("class", "", "service class: interactive (default) or batch")
		beName  = flag.String("backend", "sim", "serving backend: sim, persistent, sharded-sim, sharded-persistent, or remote (cluster router; needs -cluster-workers)")
		shards  = flag.Int("shards", 1, "data-parallel shards per batch: >1 wraps -backend in a sharded fan-out (sharded-* backends default to 4)")
		workers = flag.String("cluster-workers", "", "comma-separated worker addresses for -backend remote")
		maxRows = flag.Int("max-rows", 20, "result rows to print (0 = all)")
		faultsF = flag.String("faults", "", "chaos fault-injection spec (see docs/API.md): faults the serving path — router→worker wire with -backend remote, the local backend otherwise")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "llmqsql: exactly one SQL statement argument is required")
		os.Exit(2)
	}
	if len(csvs) == 0 && len(datasets) == 0 {
		fmt.Fprintln(os.Stderr, "llmqsql: provide at least one -csv or -dataset")
		os.Exit(2)
	}

	db := sqlfront.NewDB()
	registered := map[string]bool{}
	register := func(name string, t *table.Table) {
		// Register is last-write-wins; a repeated name here is a typo that
		// would silently shadow an earlier table.
		if registered[name] {
			fatal(fmt.Errorf("table %q registered twice; give each -csv/-dataset a distinct name", name))
		}
		registered[name] = true
		db.Register(name, t)
	}
	for _, name := range datasets {
		d, err := datagen.RelationalByName(name, datagen.Options{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		register(name, d.Table)
	}
	bare := 0
	for _, spec := range csvs {
		name, path := *tblName, spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
			if name == "" || path == "" {
				fatal(fmt.Errorf("malformed -csv %q: want name=path", spec))
			}
		} else if bare++; bare > 1 {
			fatal(fmt.Errorf("only one bare-path -csv may use -table %q; name the others as name=path", *tblName))
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		t, err := table.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		register(name, t)
	}

	var workerAddrs []string
	for _, a := range strings.Split(*workers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			workerAddrs = append(workerAddrs, a)
		}
	}
	var injector *faults.Injector
	var clusterCfg cluster.Config
	if *faultsF != "" {
		var err error
		if injector, err = faults.Parse(*faultsF); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "llmqsql: CHAOS MODE, fault injection armed: %s\n", *faultsF)
		clusterCfg.HTTPClient = &http.Client{Transport: faults.NewRoundTripper(nil, injector)}
	}
	be, err := cluster.Resolve(*beName, *shards, workerAddrs, clusterCfg)
	if err != nil {
		fatal(err)
	}
	if injector != nil && *beName != "remote" {
		be = faults.NewBackend(be, injector)
	}
	defer be.Close()

	cls, err := runtime.ParseClass(*class)
	if err != nil {
		fatal(err)
	}

	// One-shot statements still go through the serving runtime, not straight
	// at db.Exec: the runtime is what carries client identity and service
	// class, so a CLI run is accounted exactly like a server request.
	rt := runtime.New(db, runtime.Config{Workers: 1, BatchWindow: -1, Backend: be})
	defer rt.Close()
	res, err := rt.Exec(flag.Arg(0), runtime.Options{
		Naive:  *naive,
		Policy: query.Policy(*policy),
		Client: runtime.ClientID(*client),
		Class:  cls,
	})
	if err != nil {
		fatal(err)
	}

	out := table.New(res.Columns...)
	n := len(res.Rows)
	if *maxRows > 0 && n > *maxRows {
		n = *maxRows
	}
	for _, row := range res.Rows[:n] {
		out.MustAppendRow(row...)
	}
	if err := out.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d rows (%d shown), %d LLM calls over %d stage(s)\n",
		len(res.Rows), n, res.LLMCalls, res.Stages)
	plan := "planned"
	if *naive {
		plan = "naive"
	}
	fmt.Fprintf(os.Stderr, "virtual serving time %.1fs, prefix hit rate %.1f%%, solver %.3fs (policy %s, %s)\n",
		res.JCT, 100*res.HitRate, res.SolverSeconds, *policy, plan)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "llmqsql: %v\n", err)
	os.Exit(1)
}
