// Command llmqlint is the repo's invariant multichecker: it runs the
// internal/lint analyzer suite (ctxflow, guardedby, confined, accounting,
// errwrap) over the packages matching its arguments and exits non-zero when
// any contract is violated.
//
// Usage:
//
//	go run ./cmd/llmqlint ./...
//	go run ./cmd/llmqlint -analyzers ctxflow,errwrap ./internal/runtime
//	go run ./cmd/llmqlint -list
//
// Diagnostics print as file:line:col: message (analyzer). Type errors in an
// analyzed package are reported too — the suite refuses to bless code it
// could not fully type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	var (
		list   = flag.Bool("list", false, "print the registered analyzers and exit")
		filter = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: llmqlint [-analyzers a,b] packages...\n\n")
		fmt.Fprintf(os.Stderr, "Runs the repo invariant suite; see internal/lint/README.md.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmqlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmqlint:", err)
		os.Exit(2)
	}
	l, err := loader.New(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmqlint:", err)
		os.Exit(2)
	}
	l.Prefetch(patterns...)
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmqlint:", err)
		os.Exit(2)
	}

	type finding struct {
		pos      string
		line     int
		msg      string
		analyzer string
	}
	var findings []finding
	failed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "llmqlint: %s: %v\n", pkg.Path, terr)
			failed = true
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					pos:      p.String(),
					line:     p.Line,
					msg:      d.Message,
					analyzer: a.Name,
				})
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "llmqlint: %s on %s: %v\n", a.Name, pkg.Path, err)
				failed = true
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s: %s (%s)\n", f.pos, f.msg, f.analyzer)
	}
	if len(findings) > 0 || failed {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -analyzers filter against the registry.
func selectAnalyzers(filter string) ([]*analysis.Analyzer, error) {
	if filter == "" {
		return lint.Analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(lint.Analyzers))
	for _, a := range lint.Analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -analyzers filter")
	}
	return out, nil
}
