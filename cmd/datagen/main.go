// Command datagen emits the synthetic benchmark datasets as CSV on stdout.
//
// Usage:
//
//	datagen -dataset Movies -scale 0.1 > movies.csv
//	datagen -dataset FEVER -joined     # RAG table with retrieved contexts
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/table"
)

func main() {
	var (
		name   = flag.String("dataset", "", "dataset name (see -list)")
		scale  = flag.Float64("scale", 0.1, "dataset scale; 1.0 = the paper's sizes")
		seed   = flag.Int64("seed", 1, "generation seed")
		joined = flag.Bool("joined", false, "for RAG datasets, emit the retrieval-joined table")
		list   = flag.Bool("list", false, "list dataset names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range datagen.AllNames() {
			fmt.Println(n)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "datagen: -dataset is required (see -list)")
		os.Exit(2)
	}

	opt := datagen.Options{Scale: *scale, Seed: *seed}
	t, err := build(*name, opt, *joined)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := t.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func build(name string, opt datagen.Options, joined bool) (*table.Table, error) {
	for _, r := range datagen.RAGNames {
		if r != name {
			continue
		}
		d, err := datagen.RAGByName(name, opt)
		if err != nil {
			return nil, err
		}
		if joined {
			return query.BuildRAGTable(d)
		}
		return d.Questions, nil
	}
	d, err := datagen.RelationalByName(name, opt)
	if err != nil {
		return nil, err
	}
	return d.Table, nil
}
