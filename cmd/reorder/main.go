// Command reorder reads a CSV table on stdin, computes a cache-maximizing
// request schedule, and writes the reordered table as CSV on stdout with a
// summary on stderr.
//
// Usage:
//
//	reorder < table.csv > reordered.csv
//	reorder -algorithm bestfixed -fds "id,name" < table.csv
//	reorder -stats-only < table.csv        # just print PHC / hit rates
//
// Note that the emitted CSV uses a single header but per-row field orders
// may differ; the -emit row-json form preserves per-row key order, which is
// what an LLM prompt would contain.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/table"
	"repro/internal/tokenizer"
)

func main() {
	var (
		algorithm = flag.String("algorithm", "ggr", "ggr, ggr-exhaustive, ophr, or bestfixed")
		fds       = flag.String("fds", "", "comma-separated FD groups, ';'-separated, e.g. \"id,name;city,zip\"")
		mineFDs   = flag.Bool("mine-fds", false, "discover functional dependencies from the data")
		statsOnly = flag.Bool("stats-only", false, "print PHC and hit rates, no table output")
		emit      = flag.String("emit", "csv", "output form: csv or row-json (preserves per-row field order)")
	)
	flag.Parse()

	t, err := table.ReadCSV(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if *mineFDs {
		if err := t.SetFDs(table.Mine(t)); err != nil {
			fatal(err)
		}
	} else if *fds != "" {
		set := table.NewFDSet()
		for _, group := range strings.Split(*fds, ";") {
			var cols []string
			for _, c := range strings.Split(group, ",") {
				if c = strings.TrimSpace(c); c != "" {
					cols = append(cols, c)
				}
			}
			set.AddGroup(cols...)
		}
		if err := t.SetFDs(set); err != nil {
			fatal(err)
		}
		if err := set.Validate(t); err != nil {
			fatal(fmt.Errorf("declared FDs do not hold: %w", err))
		}
	}

	lenOf := func(v string) int { return tokenizer.Count(v) }
	var res *core.Result
	switch *algorithm {
	case "ggr":
		res = core.GGR(t, core.DefaultGGROptions(lenOf))
	case "ggr-exhaustive":
		res = core.GGR(t, core.ExhaustiveGGROptions(lenOf))
	case "ophr":
		res, err = core.OPHR(t, core.OPHROptions{LenOf: lenOf})
		if err != nil {
			fatal(err)
		}
	case "bestfixed":
		s := core.BestFixed(t, lenOf)
		res = &core.Result{Schedule: s, PHC: core.PHC(s, lenOf)}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algorithm))
	}
	if err := core.Verify(t, res.Schedule); err != nil {
		fatal(err)
	}

	orig := core.Original(t)
	fmt.Fprintf(os.Stderr, "rows=%d cols=%d\n", t.NumRows(), t.NumCols())
	fmt.Fprintf(os.Stderr, "PHC:      original=%d  %s=%d\n", core.PHC(orig, lenOf), *algorithm, res.PHC)
	fmt.Fprintf(os.Stderr, "hit rate: original=%.1f%%  %s=%.1f%%\n",
		100*core.Hits(orig, lenOf).Rate(), *algorithm, 100*core.Hits(res.Schedule, lenOf).Rate())
	if *statsOnly {
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch *emit {
	case "row-json":
		for _, row := range res.Schedule.Rows {
			fmt.Fprintln(w, query.RowJSON(row.Cells))
		}
	case "csv":
		out := table.New(t.Columns()...)
		for _, row := range res.Schedule.Rows {
			out.MustAppendRow(t.Row(row.Source)...)
		}
		if err := out.WriteCSV(w); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown emit form %q", *emit))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "reorder: %v\n", err)
	os.Exit(1)
}
