// Command llmqserve runs the reordering optimizer — and, when tables are
// registered, a concurrent LLM-SQL serving runtime — as an HTTP service.
//
//	llmqserve -addr :8080
//	llmqserve -addr :8080 -csv tickets=tickets.csv -dataset Movies -workers 8
//	llmqserve -addr :8080 -csv tickets=tickets.csv -backend persistent
//	llmqserve -addr :8091 -worker -backend persistent                 (cluster worker)
//	llmqserve -addr :8080 -csv tickets=tickets.csv -backend remote \
//	    -cluster-workers localhost:8091,localhost:8092               (cluster router)
//
// Endpoints (JSON over POST unless noted; the full wire contract, including
// the structured error envelope every endpoint returns on failure, is in
// docs/API.md):
//
//	/v1/reorder   {table:{columns,rows,fds}, algorithm?}      -> schedule + PHC
//	/v1/estimate  {provider, hitOriginal, hitGGR}             -> cost savings
//	/v1/simulate  {table, prompt, policy?}                    -> serving metrics
//	/v1/sql       {sql, client?, class?, deadlineMs?,         -> result relation +
//	               options: {naive?, policy?, trace?}}           per-statement stats +
//	                                                             fleet metrics
//	/v1/metrics   (GET) fleet-wide runtime metrics snapshot
//	              (JSON; ?format=prometheus for text exposition)
//	/v1/traces    (GET) retained statement traces (opt-in + slow queries)
//	/healthz      (GET)
//
// /v1/sql executes LLM-SQL statements over the tables registered with -csv
// (name=path, repeatable) and -dataset (bundled dataset name, repeatable) on
// the concurrent serving runtime: statements run on a bounded worker pool,
// pending LLM calls that share a prompt coalesce across requests into
// GGR-reordered batches (-batch-window), and an exact-match result cache
// plus inflight dedup keep repeated dashboard statements from paying for
// model calls twice. Each statement is scoped to its HTTP request's context,
// so a disconnecting client cancels its statement. Without registrations the
// endpoint answers 503 and the three stateless endpoints work as before.
//
// Admission is multi-tenant: each statement names a client (default "anon")
// and a service class. Interactive statements get a high deficit-round-robin
// weight and the short -batch-window; batch-class statements get a low
// weight and the longer -batch-class-window, and an interactive statement
// joining a batch-held coalescing window closes it early. -fifo reverts to
// the old anonymous first-come-first-served queue for A/B runs. -quota-calls
// and -quota-tokens arm per-client post-paid token buckets (burst caps via
// -quota-call-burst / -quota-token-burst): a client that overdraws gets 429
// with a Retry-After header until its buckets refill. The deprecated
// top-level "naive"/"policy" request fields still execute but answer with a
// "deprecated" warning; use the "options" object.
//
// -backend selects the serving target behind the whole stack (the
// llmq.Backend seam): "sim" builds one confined engine per batch (the
// paper's setting); "persistent" keeps a pool of long-lived engine replicas
// per stage fingerprint so the prefix cache survives between batch windows —
// repeated dashboard refreshes hit prefixes cached by earlier refreshes —
// and concurrent windows on one hot stage overlap on separate replicas.
// -shards N (or the sharded-sim/sharded-persistent names) adds data-parallel
// execution: each coalesced batch is split at its prefix-group boundaries
// and fanned out over N concurrent engine runs, cutting batch latency while
// keeping relations byte-identical.
//
// The distributed tier turns one llmqserve into a fleet. -worker runs this
// process as a cluster worker: POST /v1/batch executes remote batches on
// the local -backend, /v1/metrics reports the worker's batch accounting,
// and /healthz turns 503 while draining so routers mark the worker down
// before shutdown. "-backend remote -cluster-workers host:port,..." runs
// this process as the router: each batch is consistent-hashed by its stage
// fingerprint onto the worker ring (so persistent engines stay
// stage-affine fleet-wide), hot stages replicate onto a second node when
// the primary saturates, and dead or draining workers fail over to the
// next ring node. Fan-out width is picked per batch from its group
// structure and live worker capacity, so -shards does not compose with
// the remote backend.
//
// Observability: logs are structured (log/slog; -log-format json switches
// from text to JSON). Every /v1/sql request writes one access-log line with
// the client, class, outcome code, queue wait, JCT, and model calls.
// -slow-query THRESHOLD arms the slow-query log: statements whose wall time
// (admission to settlement) meets the threshold are logged and their full
// traces retained in GET /v1/traces. -debug-addr starts a SEPARATE debug
// listener serving net/http/pprof profiles and an expvar snapshot of the
// runtime metrics — never exposed on the public mux.
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops accepting
// connections, drains in-flight requests for up to -drain, then closes the
// runtime (flushing any batch still waiting on its window) and the backend.
//
// Example:
//
//	curl -s localhost:8080/v1/sql -d \
//	  '{"sql":"SELECT region, COUNT(*) AS n FROM tickets GROUP BY region HAVING COUNT(*) > 3 ORDER BY n DESC, region",
//	    "client":"dashboard-7","class":"interactive","deadlineMs":2000,"options":{"policy":"cache-ggr"}}'
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/sqlfront"
	"repro/internal/table"
)

// repeatable collects every occurrence of a repeated string flag.
type repeatable []string

func (r *repeatable) String() string { return strings.Join(*r, ",") }

func (r *repeatable) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var csvs, datasets repeatable
	flag.Var(&csvs, "csv", "CSV to register for /v1/sql, as name=path (repeatable)")
	flag.Var(&datasets, "dataset", "bundled dataset to register under its own name (repeatable)")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		scale       = flag.Float64("scale", 0.05, "dataset scale when -dataset is used")
		seed        = flag.Int64("seed", 1, "dataset seed")
		workers     = flag.Int("workers", 4, "concurrent statement executors")
		window      = flag.Duration("batch-window", 2*time.Millisecond, "cross-query batch coalescing window for interactive statements")
		classWindow = flag.Duration("batch-class-window", 0, "coalescing window for batch-class statements (default 10x -batch-window)")
		fifo        = flag.Bool("fifo", false, "revert admission to anonymous FIFO (disables weighted-fair scheduling; for A/B runs)")
		quotaCalls  = flag.Float64("quota-calls", 0, "per-client model-call quota in calls/sec (0 = unlimited)")
		quotaCallB  = flag.Float64("quota-call-burst", 0, "call-quota burst capacity (default max(1, -quota-calls))")
		quotaToks   = flag.Float64("quota-tokens", 0, "per-client prompt-token quota in tokens/sec (0 = unlimited)")
		quotaTokB   = flag.Float64("quota-token-burst", 0, "token-quota burst capacity (default max(1, -quota-tokens))")
		cache       = flag.Int("cache", 65536, "result cache capacity in entries (negative disables)")
		backendName = flag.String("backend", "sim", "serving backend: sim (one engine per batch), persistent (long-lived engine replicas per stage, prefix cache survives between batches), or sharded-sim/sharded-persistent (data-parallel fan-out)")
		shards      = flag.Int("shards", 1, "data-parallel shards per batch: >1 wraps -backend in a sharded fan-out (sharded-* backends default to 4)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests")
		slowQuery   = flag.Duration("slow-query", 0, "slow-query threshold: statements at least this slow are logged and their traces retained in /v1/traces (0 disables)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		debugAddr   = flag.String("debug-addr", "", "separate listen address for pprof and expvar debug endpoints (empty disables; never served on the public address)")
		workerMode  = flag.Bool("worker", false, "run as a cluster worker: serve POST /v1/batch against the local -backend (no tables or runtime needed)")
		clusterW    = flag.String("cluster-workers", "", "comma-separated worker addresses for -backend remote (the cluster router)")
		faultSpec   = flag.String("faults", "", "chaos fault-injection spec (see docs/API.md): on a -worker it corrupts/aborts/delays served responses; with -backend remote it faults router→worker traffic")
		hedgeAfter  = flag.Duration("hedge-after", 0, "with -backend remote: hedge a batch to the next ring node after this long without an answer (0 = adaptive p99, negative disables)")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	var injector *faults.Injector
	if *faultSpec != "" {
		if injector, err = faults.Parse(*faultSpec); err != nil {
			fatal(err)
		}
		logger.Warn("llmqserve: CHAOS MODE, fault injection armed", "spec", *faultSpec)
	}

	clusterCfg := cluster.Config{HedgeAfter: *hedgeAfter}
	if injector != nil && !*workerMode {
		// Router-side chaos rides the router's HTTP client, faulting the
		// wire between router and workers.
		clusterCfg.HTTPClient = &http.Client{Transport: faults.NewRoundTripper(nil, injector)}
	}
	be, err := cluster.Resolve(*backendName, *shards, splitWorkers(*clusterW), clusterCfg)
	if err != nil {
		fatal(err)
	}
	if injector != nil && !*workerMode && *backendName != "remote" {
		// Local-backend chaos wraps the serving path directly.
		be = faults.NewBackend(be, injector)
	}
	var worker *server.Worker
	if *workerMode {
		if *backendName == "remote" {
			fatal(fmt.Errorf("-worker does not compose with -backend remote: a worker serves a local backend"))
		}
		worker = server.NewWorker(be, logger)
		logger.Info("llmqserve: cluster worker mode, serving /v1/batch", "backend", *backendName)
	}

	var rt *runtime.Runtime
	if len(csvs) > 0 || len(datasets) > 0 {
		db := sqlfront.NewDB()
		for _, name := range datasets {
			d, err := datagen.RelationalByName(name, datagen.Options{Scale: *scale, Seed: *seed})
			if err != nil {
				fatal(err)
			}
			db.Register(name, d.Table)
		}
		for _, spec := range csvs {
			i := strings.IndexByte(spec, '=')
			if i <= 0 || i == len(spec)-1 {
				fatal(fmt.Errorf("malformed -csv %q: want name=path", spec))
			}
			name, path := spec[:i], spec[i+1:]
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			t, err := table.ReadCSV(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			db.Register(name, t)
		}
		rt = runtime.New(db, runtime.Config{
			Workers:          *workers,
			BatchWindow:      *window,
			BatchClassWindow: *classWindow,
			FIFOAdmission:    *fifo,
			CacheCapacity:    *cache,
			Backend:          be,
			DefaultQuota: runtime.Quota{
				CallsPerSec:  *quotaCalls,
				CallBurst:    *quotaCallB,
				TokensPerSec: *quotaToks,
				TokenBurst:   *quotaTokB,
			},
			SlowQueryThreshold: *slowQuery,
			SlowLogger:         logger,
		})
		admission := "weighted-fair"
		if *fifo {
			admission = "FIFO"
		}
		logger.Info("llmqserve: /v1/sql serving",
			"tables", strings.Join(db.Tables(), ","),
			"workers", *workers,
			"batchWindow", window.String(),
			"backend", *backendName,
			"admission", admission,
			"slowQuery", slowQuery.String())
	} else {
		logger.Info("llmqserve: no tables registered; /v1/sql disabled (use -csv/-dataset)")
	}

	router, _ := be.(*cluster.Router)
	handler := server.NewWithConfig(server.Config{Runtime: rt, Worker: worker, Cluster: router, AccessLog: logger})
	if injector != nil && *workerMode {
		// Worker-side chaos faults the wire as served: 5xx answers, corrupt
		// bodies, aborted connections, latched crashes — including /healthz,
		// so routers see exactly what a dead process looks like.
		handler = faults.Middleware(injector, handler)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = startDebugServer(*debugAddr, rt, logger)
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections, let
	// in-flight statements finish (bounded by -drain), then drain the
	// runtime's worker pool so nothing dies mid-batch.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("llmqserve listening", "addr", *addr)

	select {
	case err := <-errCh:
		// Listener died on its own; drain what we can and report.
		shutdown(rt, be, debugSrv)
		logger.Error("llmqserve: listener failed", "error", err)
		os.Exit(1)
	case <-sigCtx.Done():
		stop() // restore default signal behavior: a second signal kills hard
		logger.Info("llmqserve: signal received, draining", "deadline", drain.String())
		if worker != nil {
			// Flip the drain flag BEFORE shutting the listener down: /healthz
			// starts answering 503, so cluster routers mark this worker down
			// and re-ring its stages while in-flight batches finish below.
			worker.SetDraining(true)
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			logger.Warn("llmqserve: shutdown", "error", err)
		}
		shutdown(rt, be, debugSrv)
		logger.Info("llmqserve: drained, exiting")
	}
}

// buildLogger constructs the process logger for -log-format.
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q: want text or json", format)
	}
}

// startDebugServer serves pprof and expvar on their own listener, separate
// from the public API mux: profiles and runtime internals never ride the
// address a load balancer exposes. Handlers are registered on a private mux
// (not http.DefaultServeMux) so nothing else the process imports can leak
// endpoints onto it.
func startDebugServer(addr string, rt *runtime.Runtime, logger *slog.Logger) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if rt != nil {
		// Publish the runtime metrics snapshot as an expvar, computed on
		// demand per scrape.
		expvar.Publish("llmq", expvar.Func(func() any { return rt.Metrics() }))
		mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(rt.Metrics())
		})
	}
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Warn("llmqserve: debug listener failed", "error", err)
		}
	}()
	logger.Info("llmqserve debug listening", "addr", addr)
	return srv
}

// shutdown drains the runtime (in-flight statements complete, pending
// batches flush), releases the backend's long-lived engines, and closes the
// debug listener.
func shutdown(rt *runtime.Runtime, be backend.Backend, debugSrv *http.Server) {
	if rt != nil {
		rt.Close()
	}
	if be != nil {
		_ = be.Close()
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
}

// splitWorkers parses the -cluster-workers flag: comma-separated addresses,
// empty entries dropped.
func splitWorkers(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "llmqserve: %v\n", err)
	os.Exit(1)
}
