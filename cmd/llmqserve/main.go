// Command llmqserve runs the reordering optimizer as an HTTP service.
//
//	llmqserve -addr :8080
//
// Endpoints (JSON over POST):
//
//	/v1/reorder   {table:{columns,rows,fds}, algorithm?} -> schedule + PHC
//	/v1/estimate  {provider, hitOriginal, hitGGR}        -> cost savings
//	/v1/simulate  {table, prompt, policy?}               -> serving metrics
//	/healthz      (GET)
//
// Example:
//
//	curl -s localhost:8080/v1/estimate -d \
//	  '{"provider":"openai","hitOriginal":0.11,"hitGGR":0.67}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}
	log.Printf("llmqserve listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
