// Command llmqserve runs the reordering optimizer — and, when tables are
// registered, a concurrent LLM-SQL serving runtime — as an HTTP service.
//
//	llmqserve -addr :8080
//	llmqserve -addr :8080 -csv tickets=tickets.csv -dataset Movies -workers 8
//
// Endpoints (JSON over POST):
//
//	/v1/reorder   {table:{columns,rows,fds}, algorithm?} -> schedule + PHC
//	/v1/estimate  {provider, hitOriginal, hitGGR}        -> cost savings
//	/v1/simulate  {table, prompt, policy?}               -> serving metrics
//	/v1/sql       {sql, naive?, policy?}                 -> result relation +
//	              per-statement serving stats + fleet-wide runtime metrics
//	/healthz      (GET)
//
// /v1/sql executes LLM-SQL statements over the tables registered with -csv
// (name=path, repeatable) and -dataset (bundled dataset name, repeatable) on
// the concurrent serving runtime: statements run on a bounded worker pool,
// pending LLM calls that share a prompt coalesce across requests into
// GGR-reordered batches (-batch-window), and an exact-match result cache
// plus inflight dedup keep repeated dashboard statements from paying for
// model calls twice. Without registrations the endpoint answers 503 and the
// three stateless endpoints work as before.
//
// Example:
//
//	curl -s localhost:8080/v1/sql -d \
//	  '{"sql":"SELECT region, COUNT(*) AS n FROM tickets GROUP BY region HAVING COUNT(*) > 3 ORDER BY n DESC, region"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/sqlfront"
	"repro/internal/table"
)

// repeatable collects every occurrence of a repeated string flag.
type repeatable []string

func (r *repeatable) String() string { return strings.Join(*r, ",") }

func (r *repeatable) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var csvs, datasets repeatable
	flag.Var(&csvs, "csv", "CSV to register for /v1/sql, as name=path (repeatable)")
	flag.Var(&datasets, "dataset", "bundled dataset to register under its own name (repeatable)")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		scale   = flag.Float64("scale", 0.05, "dataset scale when -dataset is used")
		seed    = flag.Int64("seed", 1, "dataset seed")
		workers = flag.Int("workers", 4, "concurrent statement executors")
		window  = flag.Duration("batch-window", 2*time.Millisecond, "cross-query batch coalescing window")
		cache   = flag.Int("cache", 65536, "result cache capacity in entries (negative disables)")
	)
	flag.Parse()

	var rt *runtime.Runtime
	if len(csvs) > 0 || len(datasets) > 0 {
		db := sqlfront.NewDB()
		for _, name := range datasets {
			d, err := datagen.RelationalByName(name, datagen.Options{Scale: *scale, Seed: *seed})
			if err != nil {
				fatal(err)
			}
			db.Register(name, d.Table)
		}
		for _, spec := range csvs {
			i := strings.IndexByte(spec, '=')
			if i <= 0 || i == len(spec)-1 {
				fatal(fmt.Errorf("malformed -csv %q: want name=path", spec))
			}
			name, path := spec[:i], spec[i+1:]
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			t, err := table.ReadCSV(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			db.Register(name, t)
		}
		rt = runtime.New(db, runtime.Config{
			Workers:       *workers,
			BatchWindow:   *window,
			CacheCapacity: *cache,
		})
		log.Printf("llmqserve: /v1/sql serving tables %s (%d workers, %s batch window)",
			strings.Join(db.Tables(), ", "), *workers, *window)
	} else {
		log.Printf("llmqserve: no tables registered; /v1/sql disabled (use -csv/-dataset)")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewWithRuntime(rt),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}
	log.Printf("llmqserve listening on %s", *addr)
	err := srv.ListenAndServe()
	if rt != nil {
		// Drain in-flight statements before exiting (log.Fatal would skip
		// deferred calls).
		rt.Close()
	}
	log.Fatal(err)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "llmqserve: %v\n", err)
	os.Exit(1)
}
