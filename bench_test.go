// Benchmarks regenerating every table and figure of the paper's evaluation
// (DESIGN.md §4 maps IDs to paper artifacts). Each benchmark executes the
// corresponding experiment end to end — data generation, scheduling, serving
// simulation, and report formatting — at a reduced scale; run
// cmd/llmqbench -scale 1 for the full-scale numbers recorded in
// EXPERIMENTS.md.
package llmq

import (
	"testing"
)

// benchCfg keeps per-iteration cost moderate while still exercising cache
// eviction (the pool shrinks with scale).
var benchCfg = ExperimentConfig{Scale: 0.02, Seed: 1, BootstrapReps: 500, OPHRNodeBudget: 300_000}

func benchmarkExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := RunExperiment(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

// Fig. 1a/1b case studies (Sec. 3.2).
func BenchmarkFig1a(b *testing.B) { benchmarkExperiment(b, "fig1a") }
func BenchmarkFig1b(b *testing.B) { benchmarkExperiment(b, "fig1b") }

// Table 1 dataset summary (Sec. 6.1.1).
func BenchmarkTable1(b *testing.B) { benchmarkExperiment(b, "table1") }

// Fig. 3a filter-query latency; Fig. 3b projection + RAG latency (Sec. 6.2).
func BenchmarkFig3a(b *testing.B) { benchmarkExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B) { benchmarkExperiment(b, "fig3b") }

// Fig. 4 multi-LLM + aggregation latency (Sec. 6.2).
func BenchmarkFig4(b *testing.B) { benchmarkExperiment(b, "fig4") }

// Fig. 5 Llama-3-70B filter latency on 8×L4 (Sec. 6.2).
func BenchmarkFig5(b *testing.B) { benchmarkExperiment(b, "fig5") }

// Table 2 prefix hit rates (Sec. 6.2).
func BenchmarkTable2(b *testing.B) { benchmarkExperiment(b, "table2") }

// Table 3 measured API costs; Table 4 estimated savings (Sec. 6.3).
func BenchmarkTable3(b *testing.B) { benchmarkExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchmarkExperiment(b, "table4") }

// Fig. 6 accuracy bootstrap (Sec. 6.4).
func BenchmarkFig6(b *testing.B) { benchmarkExperiment(b, "fig6") }

// Table 5 solver time (Sec. 6.5).
func BenchmarkTable5(b *testing.B) { benchmarkExperiment(b, "table5") }

// Table 6 GGR vs OPHR (Appendix D.1).
func BenchmarkTable6(b *testing.B) { benchmarkExperiment(b, "table6") }

// Table 7 Llama-3.2-1B ablation (Appendix D.2).
func BenchmarkTable7(b *testing.B) { benchmarkExperiment(b, "table7") }

// Design-choice ablations beyond the paper (DESIGN.md §4).
func BenchmarkAblationFD(b *testing.B)    { benchmarkExperiment(b, "ablation_fd") }
func BenchmarkAblationDepth(b *testing.B) { benchmarkExperiment(b, "ablation_depth") }
func BenchmarkAblationBlock(b *testing.B) { benchmarkExperiment(b, "ablation_block") }
func BenchmarkAblationFixed(b *testing.B) { benchmarkExperiment(b, "ablation_fixed") }

// BenchmarkReorderGGR isolates the solver itself on the Movies dataset — the
// quantity Table 5 reports.
func BenchmarkReorderGGR(b *testing.B) {
	t, err := Dataset("Movies", 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reorder(t, ReorderOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
