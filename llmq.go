// Package llmq is the public API of the reproduction of "Optimizing LLM
// Queries in Relational Data Analytics Workloads" (MLSys 2025).
//
// The library reorders the rows of a relational table — and, independently
// per row, the fields within each row — so that consecutive LLM requests
// share the longest possible prompt prefixes, maximizing KV-cache reuse in a
// serving engine and cached-token discounts on commercial APIs.
//
// Typical use:
//
//	t := llmq.NewTable("product", "review")
//	t.MustAppendRow("Widget", "Great value for money")
//	...
//	res, err := llmq.Reorder(t, llmq.ReorderOptions{})
//	// res.Schedule lists the rows in serving order, each with its own
//	// field order; res.PHC is the prefix hit count achieved.
//
// Higher layers expose the paper's full evaluation stack: the 16-query
// benchmark (RunQuery), the synthetic datasets (Dataset/RAGDataset), the
// vLLM-style serving simulator, API cost models (EstimateSavings), and every
// table/figure runner (RunExperiment).
//
// Execution is pluggable behind the Backend seam (a database/sql-driver-
// style interface): every layer — direct stages, LLM-SQL, prepared
// statements, the concurrent runtime, and the HTTP service — hands its
// scheduled batches to a Backend instead of constructing engines inline.
// NewSimBackend reproduces the paper's one-engine-per-batch setting (the
// default), NewPersistentBackend keeps pools of long-lived engine replicas
// whose KV caches survive between batches so prefix hits span batch
// windows, NewShardedBackend fans one batch out over concurrent engine runs
// at its prefix-group boundaries, and NewRecordingBackend taps batches for
// tests and metrics. Every execution
// entry point has a Context variant (ExecSQLContext, RunQueryContext,
// Runtime.SubmitContext/ExecContext, ...): canceling the context stops the
// statement between LLM stages and mid-batch, returning an error wrapping
// context.Canceled.
package llmq

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/pricing"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/sqlfront"
	"repro/internal/table"
	"repro/internal/tokenizer"
)

// Table is a column-named row store; see NewTable.
type Table = table.Table

// FDSet declares bidirectional functional dependencies between columns.
type FDSet = table.FDSet

// Schedule is a reordered request list: rows in serving order, each with its
// own field order.
type Schedule = core.Schedule

// ReorderResult carries the schedule and its prefix hit count.
type ReorderResult = core.Result

// NewTable creates an empty table with the given columns.
func NewTable(cols ...string) *Table { return table.New(cols...) }

// NewFDSet creates an empty functional-dependency set; attach it to a table
// with Table.SetFDs.
func NewFDSet() *FDSet { return table.NewFDSet() }

// Algorithm selects the reordering solver.
type Algorithm string

const (
	// GGR is Greedy Group Recursion (Algorithm 1) — the practical solver.
	GGR Algorithm = "ggr"
	// OPHR is the exact, exponential-time solver; small tables only.
	OPHR Algorithm = "ophr"
	// BestFixed uses one statistics-chosen field order for all rows.
	BestFixed Algorithm = "bestfixed"
)

// ReorderOptions configures Reorder. The zero value runs GGR with the
// paper's evaluation settings (FDs on, row depth 4, column depth 2, 0.1M
// hit-count threshold) over token lengths.
type ReorderOptions struct {
	Algorithm Algorithm
	// Exhaustive disables GGR early stopping (ignored for other algorithms).
	Exhaustive bool
	// CharLengths measures PHC in bytes instead of tokens.
	CharLengths bool
	// DisableFDs ignores the table's functional dependencies.
	DisableFDs bool
	// OPHRNodeBudget bounds the exact solver (default 5e6 nodes).
	OPHRNodeBudget int64
}

// Reorder computes a cache-maximizing request schedule for t. The schedule
// is verified to preserve query semantics (every row exactly once, each
// row's cells a permutation of the original) before it is returned.
func Reorder(t *Table, opt ReorderOptions) (*ReorderResult, error) {
	lenOf := table.LenFunc(TokenLen)
	if opt.CharLengths {
		lenOf = table.CharLen
	}
	var res *core.Result
	switch opt.Algorithm {
	case GGR, "":
		o := core.DefaultGGROptions(lenOf)
		if opt.Exhaustive {
			o = core.ExhaustiveGGROptions(lenOf)
		}
		o.UseFDs = !opt.DisableFDs
		res = core.GGR(t, o)
	case OPHR:
		var err error
		res, err = core.OPHR(t, core.OPHROptions{LenOf: lenOf, MaxNodes: opt.OPHRNodeBudget})
		if err != nil {
			return nil, err
		}
	case BestFixed:
		s := core.BestFixed(t, lenOf)
		res = &core.Result{Schedule: s, PHC: core.PHC(s, lenOf), Estimate: core.PHC(s, lenOf)}
	default:
		return nil, fmt.Errorf("llmq: unknown algorithm %q", opt.Algorithm)
	}
	if err := core.Verify(t, res.Schedule); err != nil {
		return nil, fmt.Errorf("llmq: internal error, schedule failed verification: %w", err)
	}
	return res, nil
}

// PHC computes the prefix hit count (Eq. 1–2 of the paper) of a schedule in
// token units.
func PHC(s *Schedule) int64 { return core.PHC(s, TokenLen) }

// HitRate estimates the fraction of data tokens an adjacent-row prefix cache
// would reuse under this schedule.
func HitRate(s *Schedule) float64 { return core.Hits(s, TokenLen).Rate() }

// OriginalSchedule is the identity schedule (no reordering) — the baseline.
func OriginalSchedule(t *Table) *Schedule { return core.Original(t) }

// Advice is the reorder-or-not verdict computed from table statistics alone.
type Advice = core.Advice

// Advise estimates, without running a solver, whether reordering t is worth
// the scheduling overhead: how much of the table's token mass is repeated
// and how much of that the current layout already exploits. sampleRows
// bounds the statistics scan (0 = all rows).
func Advise(t *Table, sampleRows int) Advice {
	return core.Advise(t, TokenLen, sampleRows)
}

// TokenLen counts tokens in a value with the library's deterministic
// tokenizer.
func TokenLen(v string) int { return tokenizer.Count(v) }

// --- benchmark suite --------------------------------------------------------

// QuerySpec describes one of the 16 benchmark queries; Policy and
// QueryConfig parameterize execution against the serving simulator.
type (
	QuerySpec   = query.Spec
	Policy      = query.Policy
	QueryConfig = query.Config
	QueryResult = query.Result
)

// Execution policies (Sec. 6.1.3 baselines).
const (
	PolicyNoCache       = query.NoCache
	PolicyCacheOriginal = query.CacheOriginal
	PolicyCacheGGR      = query.CacheGGR
)

// Queries lists the 16-query benchmark suite.
func Queries() []QuerySpec { return query.Specs() }

// QueryByName resolves a benchmark query.
func QueryByName(name string) (QuerySpec, error) { return query.ByName(name) }

// RunQuery executes a benchmark query over t under cfg (model, cluster, and
// scheduling policy) on the serving simulator.
func RunQuery(spec QuerySpec, t *Table, cfg QueryConfig) (*QueryResult, error) {
	return query.Run(spec, t, cfg)
}

// RunQueryContext is RunQuery honoring ctx: cancellation is checked before
// every stage and between engine steps within one.
func RunQueryContext(ctx context.Context, spec QuerySpec, t *Table, cfg QueryConfig) (*QueryResult, error) {
	return query.RunContext(ctx, spec, t, cfg)
}

// --- datasets ----------------------------------------------------------------

// Dataset generates one of the paper's five relational datasets ("Movies",
// "Products", "BIRD", "PDMX", "Beer") at the given scale (1.0 = paper size).
func Dataset(name string, scale float64, seed int64) (*Table, error) {
	d, err := datagen.RelationalByName(name, datagen.Options{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	return d.Table, nil
}

// RAGDataset generates "FEVER" or "SQuAD" and materializes the retrieval
// join (question plus top-k contexts per row).
func RAGDataset(name string, scale float64, seed int64) (*Table, error) {
	d, err := datagen.RAGByName(name, datagen.Options{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	return query.BuildRAGTable(d)
}

// --- pricing -----------------------------------------------------------------

// PriceBook is a provider price card; the two cards of the paper's cost
// study are exported as GPT4oMini and Claude35Sonnet.
type PriceBook = pricing.Book

// Provider price cards (Sec. 6.3).
var (
	GPT4oMini      = pricing.GPT4oMini
	Claude35Sonnet = pricing.Claude35Sonnet
)

// EstimateSavings computes the relative input-cost reduction of moving from
// one prefix hit rate to another under a provider's caching prices
// (Table 4's arithmetic).
func EstimateSavings(book PriceBook, hitRateBefore, hitRateAfter float64) float64 {
	return pricing.EstimatedSavings(book, hitRateBefore, hitRateAfter)
}

// --- LLM-SQL -------------------------------------------------------------------

// SQLDB is a registry of named tables for LLM-SQL statements; SQLResult an
// executed statement's relation plus serving statistics.
type (
	SQLDB     = sqlfront.DB
	SQLConfig = sqlfront.ExecConfig
	SQLResult = sqlfront.Result
)

// NewSQLDB returns an empty LLM-SQL database. Register every table a
// statement's FROM clause names, then Exec: statements may join any number
// of registered tables with inner equi-joins
// (FROM t1 AS a JOIN t2 AS b ON a.k = b.k), qualifying columns as
// alias.column anywhere a column is legal.
func NewSQLDB() *SQLDB { return sqlfront.NewDB() }

// ExecSQL is the single-table convenience: it runs one LLM-SQL statement
// against exactly one table, registered under tableName for the call's
// duration. Statements whose FROM clause joins several tables are rejected
// with an error pointing at SQLDB — build one with NewSQLDB, Register each
// table, and call its Exec instead.
//
// The dialect (see the sqlfront package comment for the full EBNF) is the
// paper's interface grown into a small analytics language:
//
//	SELECT ticket_id, LLM('Did it help?', response, request) AS ok
//	FROM tickets
//	WHERE region = 'emea' AND LLM('Spam?', request) <> 'Yes'
//
//	SELECT region, COUNT(*) AS n, AVG(LLM('Rate 1-5', request)) AS score
//	FROM tickets GROUP BY region ORDER BY n DESC LIMIT 3
//
// SELECT lists mix plain columns, LLM('prompt', fields...) calls, and the
// aggregates COUNT/SUM/MIN/MAX/AVG (COUNT(*) included); WHERE clauses are
// AND/OR/NOT trees over LLM and plain-column comparisons (=, <>, <, <=, >,
// >=) against string or numeric literals; HAVING filters groups on
// aggregate outputs, and ORDER BY takes multiple keys. Every statement
// passes through a logical planner that
// pushes LLM-free predicates below any model call (and, on a SQLDB, below
// the join), runs each distinct LLM call exactly once per statement, and
// cascades multiple LLM filters cheapest-first; set SQLConfig.Naive to true
// to bypass the optimizations and measure their benefit.
func ExecSQL(sql string, tableName string, t *Table, cfg SQLConfig) (*SQLResult, error) {
	//llmqlint:detached -- no-cancellation convenience wrapper over ExecSQLContext
	return ExecSQLContext(context.Background(), sql, tableName, t, cfg)
}

// ExecSQLContext is ExecSQL honoring ctx: cancellation is checked before
// every LLM stage and between engine steps within one, returning an error
// wrapping ctx.Err().
func ExecSQLContext(ctx context.Context, sql string, tableName string, t *Table, cfg SQLConfig) (*SQLResult, error) {
	q, err := sqlfront.Parse(sql)
	if err != nil {
		return nil, err
	}
	if n := len(q.From); n > 1 {
		return nil, fmt.Errorf("llmq: ExecSQL executes against a single table, but the statement joins %d; register each table on a SQLDB (NewSQLDB) and use its Exec", n)
	}
	db := NewSQLDB()
	db.Register(tableName, t)
	return db.ExecParsedContext(ctx, q, cfg)
}

// --- engine backends -----------------------------------------------------------

// Backend is the pluggable execution boundary between every query layer and
// an LLM serving engine, in the style of a database/sql driver: the layers
// above decide what to serve (rows, order, per-row output budgets, as a
// BatchSpec) and the backend decides where and how. Backends change serving
// cost only — answers are content-keyed above the seam, so result relations
// are byte-identical across backends. Set one on QueryConfig.Backend (LLM-
// SQL inherits it through SQLConfig) or RuntimeConfig.Backend; nil means a
// fresh confined engine per batch, the paper's setting.
type (
	Backend     = backend.Backend
	BatchSpec   = backend.BatchSpec
	BatchResult = backend.BatchResult
	// SimBackend is the per-batch engine; PersistentBackend keeps a pool
	// of long-lived engine replicas per stage fingerprint so the prefix
	// cache survives between batches and concurrent batches overlap;
	// ShardedBackend fans one batch out over concurrent engine runs at its
	// prefix-group boundaries; RecordingBackend decorates another backend
	// with a batch log for tests and metrics.
	SimBackend        = backend.Sim
	PersistentBackend = backend.Persistent
	ShardedBackend    = backend.Sharded
	RecordingBackend  = backend.Recording
	RecordedBatch     = backend.RecordedBatch
	// RemoteBackend serves batches on a cluster worker over POST /v1/batch;
	// ClusterRouter consistent-hashes stage fingerprints across a worker
	// fleet (stage-affine placement, capacity-driven fan-out, health-checked
	// failover). Both implement Backend; see internal/cluster.
	RemoteBackend       = backend.Remote
	RemoteBackendConfig = backend.RemoteConfig
	ClusterRouter       = cluster.Router
	ClusterConfig       = cluster.Config
)

// NewSimBackend returns the default per-batch backend: one confined engine
// and KV cache per scheduled batch, exactly the paper's evaluation setting.
func NewSimBackend() *SimBackend { return backend.NewSim() }

// NewPersistentBackend returns a backend that serves each stage fingerprint
// on a pool of long-lived engine replicas whose KV caches survive between
// batches, so prefix hits span batch windows and statements while
// concurrent batches on one hot stage overlap on separate replicas. It
// retains at most engineBudget replicas, evicted LRU (<= 0 uses the default
// budget). Close it to release the engines.
func NewPersistentBackend(engineBudget int) *PersistentBackend {
	return backend.NewPersistent(engineBudget)
}

// NewShardedBackend wraps inner (nil wraps a fresh sim backend) with a
// data-parallel fan-out: each batch is split at its prefix-group boundaries
// into up to shards balanced sub-batches served concurrently, cutting batch
// latency while keeping relations byte-identical. shards < 1 is an error.
func NewShardedBackend(inner Backend, shards int) (*ShardedBackend, error) {
	return backend.NewSharded(inner, shards)
}

// NewRecordingBackend decorates inner (nil wraps a fresh sim backend) with
// a log of every batch served — stage key, rows, output budgets, engine
// metrics — for tests and metrics pipelines.
func NewRecordingBackend(inner Backend) *RecordingBackend { return backend.NewRecording(inner) }

// NewRemoteBackend returns a backend serving every batch on the cluster
// worker at cfg.Addr over POST /v1/batch, with context deadline propagation
// and bounded retries on transient failures. Start the worker with
// `llmqserve -worker`.
func NewRemoteBackend(cfg RemoteBackendConfig) (*RemoteBackend, error) { return backend.NewRemote(cfg) }

// NewClusterRouter returns the fleet backend: batches are consistent-hashed
// by stage fingerprint onto the worker ring so persistent engines stay
// stage-affine across nodes, fanned out by live spare capacity, replicated
// off a saturated primary, and failed over past dead or draining workers.
func NewClusterRouter(cfg ClusterConfig) (*ClusterRouter, error) { return cluster.NewRouter(cfg) }

// --- serving runtime -----------------------------------------------------------

// Runtime is the concurrent LLM-SQL serving layer: statements submitted
// from any number of goroutines run on a bounded worker pool; pending LLM
// calls that share a prompt coalesce across queries into GGR-ordered
// batches; an exact-match result cache plus inflight dedup keep repeated
// statements from paying for the same model call twice; and Prepare/Execute
// handles skip parse and planning on every rerun. See internal/runtime for
// the architecture.
type (
	Runtime        = runtime.Runtime
	RuntimeConfig  = runtime.Config
	RuntimeOptions = runtime.Options
	RuntimeMetrics = runtime.Metrics
)

// Admission is multi-tenant: every statement runs on behalf of a ClientID in
// a service Class, the admission scheduler shares workers weighted-fairly
// across (client, class) flows, per-client quotas answer overdraw with a
// QuotaError carrying a retry horizon, and RuntimeMetrics breaks calls,
// tokens, and queue waits down per client. ClientID is the one identity type
// used across the runtime, the HTTP server, and metrics.
type (
	ClientID      = runtime.ClientID
	Class         = runtime.Class
	ClientQuota   = runtime.Quota
	QuotaError    = runtime.QuotaError
	ClientStats   = runtime.ClientMetrics
	WaitHistogram = runtime.WaitHistogram
)

// Observability: setting RuntimeOptions.Trace (or options.trace on the HTTP
// API) records a span-per-stage execution trace — EXPLAIN ANALYZE for an
// LLM-SQL statement — retrievable from the statement's Handle as a Trace
// whose span tree conserves the statement's charged totals (LLM calls,
// prompt tokens, JCT). Independent of per-statement tracing, the runtime
// aggregates per-StageKey rollups (selectivity, cache hit rate, JCT
// percentiles) surfaced in RuntimeMetrics.Stages, and a slow-query log
// captures statements over RuntimeConfig.SlowQueryThreshold in a bounded
// ring (Runtime.Traces, GET /v1/traces).
type (
	Trace       = obs.Trace
	TraceSpan   = obs.SpanTree
	StageRollup = obs.StageRollup
	StmtSummary = runtime.StmtSummary
)

// Service classes: interactive statements get the high admission weight and
// the short coalescing window (joining one even closes a batch-held window
// early); batch statements wait longer to coalesce more.
const (
	ClassInteractive = runtime.ClassInteractive
	ClassBatch       = runtime.ClassBatch
	// DefaultClient is the identity anonymous statements are accounted to.
	DefaultClient = runtime.DefaultClient
)

// ParseClass resolves the wire form of a service class ("" means
// interactive).
func ParseClass(s string) (Class, error) { return runtime.ParseClass(s) }

// NewRuntime starts a serving runtime over a SQL database. Close it to
// drain the worker pool.
func NewRuntime(db *SQLDB, cfg RuntimeConfig) *Runtime { return runtime.New(db, cfg) }

// --- experiment harness --------------------------------------------------------

// ExperimentConfig scales an experiment run; ExperimentReport is its rendered
// result.
type (
	ExperimentConfig = bench.Config
	ExperimentReport = bench.Report
)

// Experiments lists every reproducible table/figure ID (see DESIGN.md §4).
func Experiments() []string { return bench.Experiments() }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentReport, error) {
	return bench.Run(id, cfg)
}

// RunExperimentContext is RunExperiment honoring ctx: a canceled context
// stops the experiment at its next simulated query.
func RunExperimentContext(ctx context.Context, id string, cfg ExperimentConfig) (*ExperimentReport, error) {
	return bench.RunContext(ctx, id, cfg)
}
