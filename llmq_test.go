package llmq

import (
	"fmt"
	"testing"
)

func TestReorderFacade(t *testing.T) {
	tb := NewTable("entity", "note")
	tb.MustAppendRow("shared-entity-description", "alpha")
	tb.MustAppendRow("another-entity-altogether", "beta")
	tb.MustAppendRow("shared-entity-description", "gamma")
	res, err := Reorder(tb, ReorderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PHC <= 0 {
		t.Errorf("PHC = %d, want positive (two rows share an entity)", res.PHC)
	}
	if got := PHC(res.Schedule); got != res.PHC {
		t.Errorf("PHC() = %d, result says %d", got, res.PHC)
	}
	if HitRate(res.Schedule) <= HitRate(OriginalSchedule(tb)) {
		t.Error("reordering did not improve hit rate")
	}
}

func TestReorderAlgorithms(t *testing.T) {
	tb := NewTable("a", "b")
	tb.MustAppendRow("x", "1")
	tb.MustAppendRow("x", "2")
	tb.MustAppendRow("y", "1")
	for _, alg := range []Algorithm{GGR, OPHR, BestFixed} {
		res, err := Reorder(tb, ReorderOptions{Algorithm: alg, CharLengths: true})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Schedule.Rows) != 3 {
			t.Fatalf("%s: %d rows", alg, len(res.Schedule.Rows))
		}
	}
	if _, err := Reorder(tb, ReorderOptions{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestFacadeDatasets(t *testing.T) {
	tb, err := Dataset("Movies", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() == 0 || tb.NumCols() != 8 {
		t.Errorf("Movies: %dx%d", tb.NumRows(), tb.NumCols())
	}
	if _, err := Dataset("nope", 0.01, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	rag, err := RAGDataset("FEVER", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rag.NumCols() != 5 {
		t.Errorf("FEVER join has %d cols", rag.NumCols())
	}
}

func TestFacadeQueryRoundTrip(t *testing.T) {
	tb, err := Dataset("Beer", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := QueryByName("beer-filter")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunQuery(spec, tb, QueryConfig{Policy: PolicyCacheGGR})
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT <= 0 || len(res.Outputs) != tb.NumRows() {
		t.Errorf("JCT=%f outputs=%d", res.JCT, len(res.Outputs))
	}
	if len(Queries()) != 16 {
		t.Errorf("suite has %d queries", len(Queries()))
	}
}

func TestFacadeSavings(t *testing.T) {
	if s := EstimateSavings(GPT4oMini, 0.1, 0.8); s <= 0 {
		t.Errorf("savings = %f", s)
	}
	if s := EstimateSavings(Claude35Sonnet, 0.1, 0.8); s <= 0 {
		t.Errorf("anthropic savings = %f", s)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) < 14 {
		t.Fatalf("only %d experiments", len(ids))
	}
	rep, err := RunExperiment("fig1a", ExperimentConfig{Scale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig1a" {
		t.Errorf("report id %q", rep.ID)
	}
}

func TestTokenLen(t *testing.T) {
	if TokenLen("") != 0 {
		t.Error("empty string has tokens")
	}
	if TokenLen("hello world") != 2 {
		t.Errorf("TokenLen = %d", TokenLen("hello world"))
	}
}

func TestExecSQLFacade(t *testing.T) {
	tb := NewTable("name", "bio")
	tb.MustAppendRow("alpha", "a shared biography text")
	tb.MustAppendRow("beta", "a shared biography text")
	res, err := ExecSQL(`SELECT name, LLM('Summarize', bio) AS s FROM people`, "people", tb,
		SQLConfig{Config: QueryConfig{Policy: PolicyCacheGGR}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Columns[1] != "s" {
		t.Fatalf("result = %+v", res)
	}
	if res.JCT <= 0 {
		t.Error("no serving time")
	}
	if _, err := ExecSQL(`SELECT missing FROM people`, "people", tb, SQLConfig{}); err == nil {
		t.Error("invalid SQL accepted")
	}
}

func TestAdviseFacade(t *testing.T) {
	tb := NewTable("unique", "shared")
	for i := 0; i < 20; i++ {
		tb.MustAppendRow(fmt.Sprintf("u-%d", i), "a long shared description value")
	}
	adv := Advise(tb, 0)
	if !adv.Reorder {
		t.Errorf("advisor declined: %+v", adv)
	}
	flat := NewTable("a")
	flat.MustAppendRow("x1")
	flat.MustAppendRow("y2")
	if Advise(flat, 0).Reorder {
		t.Error("advisor recommended a repetition-free table")
	}
}
