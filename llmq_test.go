package llmq

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestReorderFacade(t *testing.T) {
	tb := NewTable("entity", "note")
	tb.MustAppendRow("shared-entity-description", "alpha")
	tb.MustAppendRow("another-entity-altogether", "beta")
	tb.MustAppendRow("shared-entity-description", "gamma")
	res, err := Reorder(tb, ReorderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PHC <= 0 {
		t.Errorf("PHC = %d, want positive (two rows share an entity)", res.PHC)
	}
	if got := PHC(res.Schedule); got != res.PHC {
		t.Errorf("PHC() = %d, result says %d", got, res.PHC)
	}
	if HitRate(res.Schedule) <= HitRate(OriginalSchedule(tb)) {
		t.Error("reordering did not improve hit rate")
	}
}

func TestReorderAlgorithms(t *testing.T) {
	tb := NewTable("a", "b")
	tb.MustAppendRow("x", "1")
	tb.MustAppendRow("x", "2")
	tb.MustAppendRow("y", "1")
	for _, alg := range []Algorithm{GGR, OPHR, BestFixed} {
		res, err := Reorder(tb, ReorderOptions{Algorithm: alg, CharLengths: true})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Schedule.Rows) != 3 {
			t.Fatalf("%s: %d rows", alg, len(res.Schedule.Rows))
		}
	}
	if _, err := Reorder(tb, ReorderOptions{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestFacadeDatasets(t *testing.T) {
	tb, err := Dataset("Movies", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() == 0 || tb.NumCols() != 8 {
		t.Errorf("Movies: %dx%d", tb.NumRows(), tb.NumCols())
	}
	if _, err := Dataset("nope", 0.01, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	rag, err := RAGDataset("FEVER", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rag.NumCols() != 5 {
		t.Errorf("FEVER join has %d cols", rag.NumCols())
	}
}

func TestFacadeQueryRoundTrip(t *testing.T) {
	tb, err := Dataset("Beer", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := QueryByName("beer-filter")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunQuery(spec, tb, QueryConfig{Policy: PolicyCacheGGR})
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT <= 0 || len(res.Outputs) != tb.NumRows() {
		t.Errorf("JCT=%f outputs=%d", res.JCT, len(res.Outputs))
	}
	if len(Queries()) != 16 {
		t.Errorf("suite has %d queries", len(Queries()))
	}
}

func TestFacadeSavings(t *testing.T) {
	if s := EstimateSavings(GPT4oMini, 0.1, 0.8); s <= 0 {
		t.Errorf("savings = %f", s)
	}
	if s := EstimateSavings(Claude35Sonnet, 0.1, 0.8); s <= 0 {
		t.Errorf("anthropic savings = %f", s)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) < 14 {
		t.Fatalf("only %d experiments", len(ids))
	}
	rep, err := RunExperiment("fig1a", ExperimentConfig{Scale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig1a" {
		t.Errorf("report id %q", rep.ID)
	}
}

func TestTokenLen(t *testing.T) {
	if TokenLen("") != 0 {
		t.Error("empty string has tokens")
	}
	if TokenLen("hello world") != 2 {
		t.Errorf("TokenLen = %d", TokenLen("hello world"))
	}
}

func TestExecSQLFacade(t *testing.T) {
	tb := NewTable("name", "bio")
	tb.MustAppendRow("alpha", "a shared biography text")
	tb.MustAppendRow("beta", "a shared biography text")
	res, err := ExecSQL(`SELECT name, LLM('Summarize', bio) AS s FROM people`, "people", tb,
		SQLConfig{Config: QueryConfig{Policy: PolicyCacheGGR}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Columns[1] != "s" {
		t.Fatalf("result = %+v", res)
	}
	if res.JCT <= 0 {
		t.Error("no serving time")
	}
	if _, err := ExecSQL(`SELECT missing FROM people`, "people", tb, SQLConfig{}); err == nil {
		t.Error("invalid SQL accepted")
	}
}

// TestExecSQLFullDialect runs one statement combining every grown operator —
// a plain-column predicate pushed below an AND-joined LLM predicate, a
// repeated (deduplicated) LLM aggregate, GROUP BY, and ORDER BY ... LIMIT —
// and checks that the planned execution issues strictly fewer LLM calls than
// the naive plan of the same statement.
func TestExecSQLFullDialect(t *testing.T) {
	tb := NewTable("ticket_id", "region", "request", "support_response")
	for i := 0; i < 30; i++ {
		region := "emea"
		if i >= 18 {
			region = "apac"
		}
		// Responses vary per row: the simulated model answers by content, so
		// identical inputs get identical answers (as a real model would).
		tb.MustAppendRow(
			fmt.Sprintf("T-%d", 100+i),
			region,
			fmt.Sprintf("Request %d about an account issue", i),
			fmt.Sprintf("We reset password %d and emailed a confirmation link.", i),
		)
	}

	sql := `SELECT region, COUNT(*) AS n,
	               AVG(LLM('Rate the request urgency 1-5', request)) AS urgency,
	               MAX(LLM('Rate the request urgency 1-5', request)) AS worst
	        FROM tickets
	        WHERE region <> 'noise' AND LLM('Is the reply helpful?', support_response) = 'Yes'
	        GROUP BY region ORDER BY n DESC LIMIT 2`
	cfg := SQLConfig{Config: QueryConfig{Policy: PolicyCacheGGR}}
	res, err := ExecSQL(sql, "tickets", tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"region", "n", "urgency", "worst"}; len(res.Columns) != 4 ||
		res.Columns[1] != want[1] || res.Columns[2] != want[2] {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) == 0 || len(res.Rows) > 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// The repeated urgency call must have run once: one filter stage plus
	// one aggregation stage.
	if res.Stages != 2 {
		t.Errorf("stages = %d, want 2", res.Stages)
	}

	naiveCfg := cfg
	naiveCfg.Naive = true
	naive, err := ExecSQL(sql, "tickets", tb, naiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Stages != 3 {
		t.Errorf("naive stages = %d, want 3", naive.Stages)
	}
	if res.LLMCalls >= naive.LLMCalls {
		t.Errorf("planner did not save calls: planned %d, naive %d", res.LLMCalls, naive.LLMCalls)
	}
}

// TestExecSQLRejectsJoins: the single-table convenience routes multi-table
// statements to SQLDB with a targeted error instead of a parse failure.
func TestExecSQLRejectsJoins(t *testing.T) {
	tb := NewTable("k", "v")
	tb.MustAppendRow("1", "x")
	_, err := ExecSQL(`SELECT a.v FROM t AS a JOIN t AS b ON a.k = b.k`, "t", tb, SQLConfig{})
	if err == nil {
		t.Fatal("multi-table statement accepted by ExecSQL")
	}
	if want := "SQLDB"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not point at %s", err, want)
	}

	// The same statement runs on a SQLDB.
	db := NewSQLDB()
	db.Register("t", tb)
	res, err := db.Exec(`SELECT a.v FROM t AS a JOIN t AS b ON a.k = b.k`, SQLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "x" {
		t.Errorf("rows = %v", res.Rows)
	}

	// An unregistered table fails with a clear registry error.
	_, err = db.Exec(`SELECT v FROM elsewhere`, SQLConfig{})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Errorf("unregistered-table error = %v", err)
	}
}

func TestAdviseFacade(t *testing.T) {
	tb := NewTable("unique", "shared")
	for i := 0; i < 20; i++ {
		tb.MustAppendRow(fmt.Sprintf("u-%d", i), "a long shared description value")
	}
	adv := Advise(tb, 0)
	if !adv.Reorder {
		t.Errorf("advisor declined: %+v", adv)
	}
	flat := NewTable("a")
	flat.MustAppendRow("x1")
	flat.MustAppendRow("y2")
	if Advise(flat, 0).Reorder {
		t.Error("advisor recommended a repetition-free table")
	}
}

// TestBackendFacade covers the public Backend seam: a recording backend
// observes the batches a statement serves, results are identical to the
// default per-batch engine, and a canceled context stops execution with
// context.Canceled.
func TestBackendFacade(t *testing.T) {
	tb := NewTable("ticket", "request")
	for i := 0; i < 9; i++ {
		tb.MustAppendRow(fmt.Sprintf("T-%d", i), fmt.Sprintf("please fix defect %d", i%4))
	}
	sql := `SELECT ticket, LLM('Is this urgent?', request) AS urgent FROM tickets`

	base, err := ExecSQL(sql, "tickets", tb, SQLConfig{})
	if err != nil {
		t.Fatal(err)
	}

	rec := NewRecordingBackend(NewPersistentBackend(2))
	defer rec.Close()
	cfg := SQLConfig{}
	cfg.Backend = rec
	res, err := ExecSQL(sql, "tickets", tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows) != fmt.Sprint(base.Rows) {
		t.Errorf("backend changed results:\nwant %v\ngot  %v", base.Rows, res.Rows)
	}
	batches := rec.Batches()
	if len(batches) != 1 {
		t.Fatalf("recorded %d batches, want 1", len(batches))
	}
	if batches[0].Rows != res.LLMCalls {
		t.Errorf("recorded rows = %d, statement reported %d calls", batches[0].Rows, res.LLMCalls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecSQLContext(ctx, sql, "tickets", tb, SQLConfig{}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ExecSQLContext returned %v, want context.Canceled", err)
	}
}
