// RAG runs the FEVER-style retrieval pipeline: embed a corpus, retrieve
// top-k evidence per claim, and compare request orderings for the resulting
// (claim, evidence1..4) table — the paper's T5 query type.
//
//	go run ./examples/rag
package main

import (
	"fmt"
	"log"

	llmq "repro"
)

func main() {
	// The library bundles a FEVER-shaped generator: claims grouped by topic
	// over a passage corpus, so different claims retrieve overlapping
	// evidence sets. Scale 0.02 keeps this demo quick (~400 claims).
	tbl, err := llmq.RAGDataset("FEVER", 0.02, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieval-joined table: %d claims x %d fields (claim + 4 evidence passages)\n\n",
		tbl.NumRows(), tbl.NumCols())

	spec, err := llmq.QueryByName("fever-rag")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %12s %10s\n", "policy", "JCT (s)", "hit rate")
	var answers []string
	for _, p := range []llmq.Policy{llmq.PolicyNoCache, llmq.PolicyCacheOriginal, llmq.PolicyCacheGGR} {
		res, err := llmq.RunQuery(spec, tbl, llmq.QueryConfig{Policy: p})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12.1f %9.0f%%\n", string(p), res.JCT, 100*res.HitRate)
		answers = res.Outputs
	}

	counts := map[string]int{}
	for _, a := range answers {
		counts[a]++
	}
	fmt.Printf("\nverdicts: SUPPORTS=%d REFUTES=%d NOT ENOUGH INFO=%d\n",
		counts["SUPPORTS"], counts["REFUTES"], counts["NOT ENOUGH INFO"])
	fmt.Println("\nClaims about the same topic retrieve overlapping evidence;")
	fmt.Println("GGR aligns the shared passages into common prefixes (and rows")
	fmt.Println("by shared leading evidence), which is where the hit-rate gain")
	fmt.Println("over the original retrieval order comes from.")
}
