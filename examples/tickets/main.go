// Tickets runs the paper's introductory example end to end: an LLM filter
// over a customer-support table ("Did {support_response} address
// {request}?"), executed on the serving simulator under all three baselines
// so the latency and hit-rate differences are visible.
//
//	go run ./examples/tickets
package main

import (
	"fmt"
	"log"
	"math/rand"

	llmq "repro"
)

// cannedRequests are the support macros agents paste — the repeated values
// that make caching profitable in real ticket tables.
var cannedResponses = []string{
	"We have reset your account password and sent a confirmation email. Please allow up to ten minutes for delivery and check your spam folder before contacting us again.",
	"Your refund has been issued to the original payment method. Depending on your bank it can take three to five business days to appear on your statement.",
	"We have escalated your report to the engineering team and will follow up as soon as a fix ships. Thank you for the detailed reproduction steps.",
	"The shipping carrier has confirmed the package is in transit. You can track it with the link in your order confirmation email.",
	"Our records show the subscription was cancelled before the renewal date, so no further charges will occur. The final invoice reflects a zero balance.",
}

var requestTemplates = []string{
	"I cannot log into my account since the last update, error code %d",
	"My order %d arrived damaged and I would like a refund",
	"The app crashes on startup, build %d, please advise",
	"Where is my package? Order number %d has not moved in days",
	"I was charged twice on invoice %d, please fix this",
}

func main() {
	r := rand.New(rand.NewSource(7))
	t := llmq.NewTable("ticket_id", "request", "support_response")
	for i := 0; i < 400; i++ {
		k := r.Intn(len(cannedResponses))
		t.MustAppendRow(
			fmt.Sprintf("T-%05d", 10000+i),
			fmt.Sprintf(requestTemplates[k], 1000+r.Intn(9000)),
			cannedResponses[k],
		)
	}
	// Ground truth for the oracle: canned responses address their matching
	// template in this synthetic workload.
	labels := make([]string, t.NumRows())
	for i := range labels {
		labels[i] = "Yes"
	}
	if err := t.SetHidden("label", labels); err != nil {
		log.Fatal(err)
	}

	// An ad-hoc query spec: the intro's SELECT ... LLM('Did {response}
	// address {request}?') per row.
	spec := llmq.QuerySpec{
		Name:        "tickets-filter",
		Dataset:     "Tickets",
		Type:        "filter",
		UserPrompt:  "Did the support_response address the request? Answer ONLY 'Yes' or 'No'.",
		OutTokens:   2,
		KeyField:    "support_response",
		Choices:     []string{"Yes", "No"},
		TruthHidden: "label",
	}

	fmt.Println("LLM filter over customer_tickets (400 rows, 5 canned responses)")
	fmt.Printf("%-18s %12s %10s %10s\n", "policy", "JCT (s)", "hit rate", "prefilled")
	for _, p := range []llmq.Policy{llmq.PolicyNoCache, llmq.PolicyCacheOriginal, llmq.PolicyCacheGGR} {
		res, err := llmq.RunQuery(spec, t, llmq.QueryConfig{Policy: p})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Stages[0].Metrics
		fmt.Printf("%-18s %12.1f %9.0f%% %10d\n", string(p), res.JCT, 100*res.HitRate, m.PrefilledTokens)
	}
	fmt.Println("\nGGR groups tickets by canned response and serializes the long")
	fmt.Println("response before the unique ticket id, so consecutive prompts")
	fmt.Println("share their longest fields and skip most prefill compute.")
}
