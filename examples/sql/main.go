// SQL runs the paper's Appendix A queries verbatim through the LLM-SQL
// front end, showing that the reordering optimization is transparent to the
// SQL user: same results, different serving cost.
//
//	go run ./examples/sql
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/sqlfront"
)

func main() {
	movies := datagen.Movies(datagen.Options{Scale: 0.01, Seed: 4})
	db := sqlfront.NewDB()
	db.Register("MOVIES", movies.Table)

	queries := []struct{ title, sql string }{
		{"LLM filter (T1)", `
SELECT movietitle FROM MOVIES
WHERE LLM('Given the following fields, determine whether the movie is suitable for kids. Answer ONLY with "Yes" or "No".',
          movieinfo, reviewcontent, reviewtype, movietitle) = 'Yes'`},
		{"LLM projection (T2)", `
SELECT LLM('Given the following information, summarize good qualities in this movie that led to a favorable rating.',
           reviewcontent, movieinfo) FROM MOVIES`},
		{"LLM aggregation (T4)", `
SELECT AVG(LLM('Rate sentiment in numerical values from 1 (bad) to 5 (good).', reviewcontent, movieinfo)) AS AverageScore
FROM MOVIES`},
	}

	for _, q := range queries {
		fmt.Printf("=== %s ===\n", q.title)
		for _, p := range []query.Policy{query.CacheOriginal, query.CacheGGR} {
			res, err := db.Exec(q.sql, sqlfront.ExecConfig{Config: query.Config{Policy: p}})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s rows=%-5d serving=%7.1fs  hit rate=%5.1f%%  solver=%.3fs\n",
				p, len(res.Rows), res.JCT, 100*res.HitRate, res.SolverSeconds)
		}
		fmt.Println()
	}
	fmt.Println("Identical result relations under every policy; only the serving")
	fmt.Println("cost changes — the optimization never alters query semantics.")
}
