// SQL runs the paper's Appendix A queries verbatim through the LLM-SQL
// front end, showing that the reordering optimization is transparent to the
// SQL user: same results, different serving cost. It then runs a statement
// using the grown dialect — boolean WHERE trees, GROUP BY, ORDER BY/LIMIT —
// both through the logical planner and naively, showing that predicate
// pushdown and LLM-call dedup cut model invocations without changing the
// result relation. Finally it joins two tables and filters with two LLM
// predicates, showing join pushdown plus cost-ordered filter cascading cut
// both calls and serving time against the naive plan of the same statement.
//
//	go run ./examples/sql
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/sqlfront"
	"repro/internal/table"
)

func main() {
	movies := datagen.Movies(datagen.Options{Scale: 0.01, Seed: 4})
	db := sqlfront.NewDB()
	db.Register("MOVIES", movies.Table)

	queries := []struct{ title, sql string }{
		{"LLM filter (T1)", `
SELECT movietitle FROM MOVIES
WHERE LLM('Given the following fields, determine whether the movie is suitable for kids. Answer ONLY with "Yes" or "No".',
          movieinfo, reviewcontent, reviewtype, movietitle) = 'Yes'`},
		{"LLM projection (T2)", `
SELECT LLM('Given the following information, summarize good qualities in this movie that led to a favorable rating.',
           reviewcontent, movieinfo) FROM MOVIES`},
		{"LLM aggregation (T4)", `
SELECT AVG(LLM('Rate sentiment in numerical values from 1 (bad) to 5 (good).', reviewcontent, movieinfo)) AS AverageScore
FROM MOVIES`},
	}

	for _, q := range queries {
		fmt.Printf("=== %s ===\n", q.title)
		for _, p := range []query.Policy{query.CacheOriginal, query.CacheGGR} {
			res, err := db.Exec(q.sql, sqlfront.ExecConfig{Config: query.Config{Policy: p}})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s rows=%-5d serving=%7.1fs  hit rate=%5.1f%%  solver=%.3fs\n",
				p, len(res.Rows), res.JCT, 100*res.HitRate, res.SolverSeconds)
		}
		fmt.Println()
	}
	fmt.Println("Identical result relations under every policy; only the serving")
	fmt.Println("cost changes — the optimization never alters query semantics.")
	fmt.Println()

	// The grown dialect: a plain-column predicate AND-joined with an LLM
	// filter, a repeated LLM aggregate (deduplicated to one stage), GROUP
	// BY, and ORDER BY ... LIMIT. The planner pushes reviewtype = 'Fresh'
	// ahead of both model stages and runs the repeated sentiment call once.
	grown := `
SELECT genres, COUNT(*) AS n,
       AVG(LLM('Rate sentiment from 1 (bad) to 5 (good).', reviewcontent)) AS score,
       MAX(LLM('Rate sentiment from 1 (bad) to 5 (good).', reviewcontent)) AS best
FROM MOVIES
WHERE reviewtype = 'Fresh' AND LLM('Is the movie suitable for kids?', movieinfo) = 'Yes'
GROUP BY genres ORDER BY n DESC LIMIT 5`

	fmt.Println("=== Grown dialect: planner vs naive ===")
	for _, naive := range []bool{false, true} {
		cfg := sqlfront.ExecConfig{Config: query.Config{Policy: query.CacheGGR}, Naive: naive}
		res, err := db.Exec(grown, cfg)
		if err != nil {
			log.Fatal(err)
		}
		mode := "planned"
		if naive {
			mode = "naive  "
		}
		fmt.Printf("  %s groups=%-3d stages=%d  LLM calls=%-5d serving=%7.1fs\n",
			mode, len(res.Rows), res.Stages, res.LLMCalls, res.JCT)
	}
	fmt.Println("Predicate pushdown prunes rows before any model call and the")
	fmt.Println("repeated sentiment call runs one stage instead of two.")
	fmt.Println()

	// Multi-table: tickets join their customers; the tier predicate is
	// pushed below the join, and of the two LLM filters — written
	// expensive-first — the planner runs the cheap, selective region filter
	// first, so the long request/response filter pays only for its
	// survivors. The naive plan joins everything and runs both filters over
	// every joined row in occurrence order.
	tickets := table.New("ticket_id", "customer_id", "request", "response")
	for i := 0; i < 120; i++ {
		tickets.MustAppendRow(
			"T-"+strconv.Itoa(1000+i),
			"C-"+strconv.Itoa(i%24),
			fmt.Sprintf("A long, detailed request %d describing an account issue with plenty of context to read", i),
			fmt.Sprintf("A long support response %d walking through each remediation step in detail", i),
		)
	}
	customers := table.New("customer_id", "tier", "region")
	for i := 0; i < 24; i++ {
		tier := "free"
		if i%2 == 0 {
			tier = "pro"
		}
		customers.MustAppendRow("C-"+strconv.Itoa(i), tier, "region-"+strconv.Itoa(i))
	}
	jdb := sqlfront.NewDB()
	jdb.Register("tickets", tickets)
	jdb.Register("customers", customers)

	joinSQL := `
SELECT t.ticket_id, c.region
FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id
WHERE LLM('Does the response fully resolve the request?', t.request, t.response) = 'Yes'
  AND c.tier = 'pro'
  AND LLM('Is this a priority region?', c.region) = 'Yes'`

	fmt.Println("=== Two-table join: cost-ordered LLM filters vs naive ===")
	for _, naive := range []bool{false, true} {
		cfg := sqlfront.ExecConfig{Config: query.Config{Policy: query.CacheGGR}, Naive: naive}
		res, err := jdb.Exec(joinSQL, cfg)
		if err != nil {
			log.Fatal(err)
		}
		mode := "planned"
		if naive {
			mode = "naive  "
		}
		fmt.Printf("  %s rows=%-4d stages=%d  LLM calls=%-5d serving=%7.1fs\n",
			mode, len(res.Rows), res.Stages, res.LLMCalls, res.JCT)
	}
	fmt.Println("Same joined relation either way; the planner pushes the tier")
	fmt.Println("predicate below the join and cascades the cheap region filter")
	fmt.Println("ahead of the expensive request/response one.")
	fmt.Println()

	// Multi-tenant serving: the same statements through the concurrent
	// runtime, each on behalf of a named client in a service class — the
	// shape /v1/sql's request envelope carries ({"sql": ..., "client":
	// "dashboard", "class": "interactive", "options": {...}}). An analytics
	// tenant floods the admission queue with batch-class statements while a
	// dashboard runs one interactive statement against the backlog;
	// weighted-fair admission serves the dashboard ahead of the flood, and
	// the metrics snapshot accounts each tenant separately.
	fmt.Println("=== Multi-tenant runtime: batch flood vs one interactive statement ===")
	rt := runtime.New(jdb, runtime.Config{Workers: 1})
	var handles []*runtime.Handle
	for i := 0; i < 30; i++ {
		handles = append(handles, rt.Submit(
			fmt.Sprintf(`SELECT ticket_id, LLM('Sweep %d: does the response resolve the request?', request, response) AS ok FROM tickets`, i),
			runtime.Options{Client: "analytics", Class: runtime.ClassBatch}))
	}
	start := time.Now()
	if _, err := rt.Exec(
		`SELECT t.ticket_id FROM tickets AS t WHERE LLM('Is this request urgent?', t.request) = 'Yes'`,
		runtime.Options{Client: "dashboard", Class: runtime.ClassInteractive}); err != nil {
		log.Fatal(err)
	}
	dashLatency := time.Since(start)
	for _, h := range handles {
		if _, err := h.Wait(); err != nil {
			log.Fatal(err)
		}
	}
	m := rt.Metrics()
	rt.Close()
	for _, who := range []runtime.ClientID{"dashboard", "analytics"} {
		c := m.Clients[who]
		fmt.Printf("  %-10s statements=%-3d LLM calls=%-5d queue wait=%6.1fms\n",
			who, c.Statements, c.LLMCalls, 1000*c.QueueWaitSeconds)
	}
	fmt.Printf("  dashboard wall latency %v against a %d-statement batch backlog\n",
		dashLatency.Round(time.Millisecond), len(handles))
	fmt.Println("Fair admission serves the interactive tenant ahead of the flood;")
	fmt.Println("per-client accounting shows who spent the model calls.")
}
