// SQL runs the paper's Appendix A queries verbatim through the LLM-SQL
// front end, showing that the reordering optimization is transparent to the
// SQL user: same results, different serving cost. It then runs a statement
// using the grown dialect — boolean WHERE trees, GROUP BY, ORDER BY/LIMIT —
// both through the logical planner and naively, showing that predicate
// pushdown and LLM-call dedup cut model invocations without changing the
// result relation.
//
//	go run ./examples/sql
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/sqlfront"
)

func main() {
	movies := datagen.Movies(datagen.Options{Scale: 0.01, Seed: 4})
	db := sqlfront.NewDB()
	db.Register("MOVIES", movies.Table)

	queries := []struct{ title, sql string }{
		{"LLM filter (T1)", `
SELECT movietitle FROM MOVIES
WHERE LLM('Given the following fields, determine whether the movie is suitable for kids. Answer ONLY with "Yes" or "No".',
          movieinfo, reviewcontent, reviewtype, movietitle) = 'Yes'`},
		{"LLM projection (T2)", `
SELECT LLM('Given the following information, summarize good qualities in this movie that led to a favorable rating.',
           reviewcontent, movieinfo) FROM MOVIES`},
		{"LLM aggregation (T4)", `
SELECT AVG(LLM('Rate sentiment in numerical values from 1 (bad) to 5 (good).', reviewcontent, movieinfo)) AS AverageScore
FROM MOVIES`},
	}

	for _, q := range queries {
		fmt.Printf("=== %s ===\n", q.title)
		for _, p := range []query.Policy{query.CacheOriginal, query.CacheGGR} {
			res, err := db.Exec(q.sql, sqlfront.ExecConfig{Config: query.Config{Policy: p}})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s rows=%-5d serving=%7.1fs  hit rate=%5.1f%%  solver=%.3fs\n",
				p, len(res.Rows), res.JCT, 100*res.HitRate, res.SolverSeconds)
		}
		fmt.Println()
	}
	fmt.Println("Identical result relations under every policy; only the serving")
	fmt.Println("cost changes — the optimization never alters query semantics.")
	fmt.Println()

	// The grown dialect: a plain-column predicate AND-joined with an LLM
	// filter, a repeated LLM aggregate (deduplicated to one stage), GROUP
	// BY, and ORDER BY ... LIMIT. The planner pushes reviewtype = 'Fresh'
	// ahead of both model stages and runs the repeated sentiment call once.
	grown := `
SELECT genres, COUNT(*) AS n,
       AVG(LLM('Rate sentiment from 1 (bad) to 5 (good).', reviewcontent)) AS score,
       MAX(LLM('Rate sentiment from 1 (bad) to 5 (good).', reviewcontent)) AS best
FROM MOVIES
WHERE reviewtype = 'Fresh' AND LLM('Is the movie suitable for kids?', movieinfo) = 'Yes'
GROUP BY genres ORDER BY n DESC LIMIT 5`

	fmt.Println("=== Grown dialect: planner vs naive ===")
	for _, naive := range []bool{false, true} {
		cfg := sqlfront.ExecConfig{Config: query.Config{Policy: query.CacheGGR}, Naive: naive}
		res, err := db.Exec(grown, cfg)
		if err != nil {
			log.Fatal(err)
		}
		mode := "planned"
		if naive {
			mode = "naive  "
		}
		fmt.Printf("  %s groups=%-3d stages=%d  LLM calls=%-5d serving=%7.1fs\n",
			mode, len(res.Rows), res.Stages, res.LLMCalls, res.JCT)
	}
	fmt.Println("Predicate pushdown prunes rows before any model call and the")
	fmt.Println("repeated sentiment call runs one stage instead of two.")
}
