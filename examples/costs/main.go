// Costs estimates commercial-API spend for a reordered workload under the
// OpenAI and Anthropic prompt-caching price models (the paper's Sec. 6.3
// analysis), from nothing but the measured hit rates of the two orderings.
//
//	go run ./examples/costs
package main

import (
	"fmt"
	"log"

	llmq "repro"
)

func main() {
	// Measure hit rates for original vs GGR ordering on a BIRD-style table
	// (long post bodies repeated across comments).
	tbl, err := llmq.Dataset("BIRD", 0.02, 9)
	if err != nil {
		log.Fatal(err)
	}
	orig := llmq.HitRate(llmq.OriginalSchedule(tbl))
	res, err := llmq.Reorder(tbl, llmq.ReorderOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ggr := llmq.HitRate(res.Schedule)
	fmt.Printf("BIRD sample: %d rows, adjacent-prefix hit rate %.0f%% -> %.0f%% after GGR\n\n",
		tbl.NumRows(), 100*orig, 100*ggr)

	for _, book := range []llmq.PriceBook{llmq.GPT4oMini, llmq.Claude35Sonnet} {
		savings := llmq.EstimateSavings(book, orig, ggr)
		fmt.Printf("%-18s input $%.2f/M", book.Name, book.InputPerM)
		if book.WritePerM > 0 {
			fmt.Printf(", cache write $%.2f/M, read $%.2f/M", book.WritePerM, book.CachedPerM)
		} else {
			fmt.Printf(", cached $%.3f/M", book.CachedPerM)
		}
		fmt.Printf("\n  estimated input-cost savings from reordering: %.0f%%\n\n", 100*savings)
	}
	fmt.Println("OpenAI bills cached tokens at half price; Anthropic reads cost")
	fmt.Println("10% of base but misses pay a 25% write premium, so raising the")
	fmt.Println("hit rate moves Anthropic bills much further (cf. paper Table 4).")
}
