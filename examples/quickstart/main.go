// Quickstart: build a small table, reorder it for prefix-cache reuse, and
// inspect what the solver did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	llmq "repro"
)

func main() {
	// A review table joined with product metadata: the description repeats
	// across a product's reviews, the review text is unique per row — the
	// repetition pattern the paper's algorithms exploit.
	t := llmq.NewTable("review", "product", "description")
	rows := [][3]string{
		{"Arrived quickly, works as advertised", "Widget", "A compact widget with a brushed-steel finish and two-year warranty"},
		{"Stopped working after a week", "Gadget", "A rechargeable gadget with modular attachments for home use"},
		{"Best purchase this year, very sturdy", "Widget", "A compact widget with a brushed-steel finish and two-year warranty"},
		{"Average at best, packaging was damaged", "Gadget", "A rechargeable gadget with modular attachments for home use"},
		{"Gave it to my brother, he loves it", "Widget", "A compact widget with a brushed-steel finish and two-year warranty"},
	}
	for _, r := range rows {
		t.MustAppendRow(r[0], r[1], r[2])
	}

	// The product name functionally determines its description: declaring
	// the FD lets the solver pull both into the prefix together.
	fds := llmq.NewFDSet()
	fds.AddGroup("product", "description")
	if err := t.SetFDs(fds); err != nil {
		log.Fatal(err)
	}

	before := llmq.OriginalSchedule(t)
	fmt.Printf("original ordering: PHC=%d, adjacent hit rate=%.0f%%\n",
		llmq.PHC(before), 100*llmq.HitRate(before))

	res, err := llmq.Reorder(t, llmq.ReorderOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GGR ordering:      PHC=%d, adjacent hit rate=%.0f%%\n\n",
		res.PHC, 100*llmq.HitRate(res.Schedule))

	fmt.Println("schedule (rows in serving order, per-row field order):")
	for i, row := range res.Schedule.Rows {
		fmt.Printf("  %d. source row %d:", i+1, row.Source)
		for _, c := range row.Cells {
			v := c.Value
			if len(v) > 24 {
				v = v[:24] + "..."
			}
			fmt.Printf("  %s=%q", c.Field, v)
		}
		fmt.Println()
	}
	fmt.Println("\nRows of the same product are now adjacent with the shared")
	fmt.Println("(product, description) pair leading each prompt, so a prefix")
	fmt.Println("KV cache reuses those tokens across consecutive requests.")
}
