package cluster

import (
	"testing"
	"time"
)

func TestBreakerConsecutiveFailuresOpen(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 3, cooldown: time.Hour})
	if !b.allow() {
		t.Fatal("closed breaker denied traffic")
	}
	if b.record(true, 1) || b.record(true, 1) {
		t.Fatal("breaker opened below the threshold")
	}
	if !b.record(true, 1) {
		t.Fatal("threshold failure did not open the breaker")
	}
	if b.allow() {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}
	if st, opens := b.snapshot(); st != BreakerOpen || opens != 1 {
		t.Fatalf("state = %s opens = %d, want open/1", st, opens)
	}
}

func TestBreakerWeightedFailureOpensAtOnce(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 2, cooldown: time.Hour})
	// A failed batch (already retried by the remote) counts threshold at
	// once — one bad batch opens the circuit immediately.
	if !b.record(true, 2) {
		t.Fatal("weighted failure did not open the breaker")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 2, cooldown: time.Hour, minSamples: 100})
	b.record(true, 1)
	b.record(false, 1)
	if b.record(true, 1) {
		t.Fatal("breaker opened although a success reset the streak")
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 1, cooldown: 20 * time.Millisecond})
	b.record(true, 1)
	if b.allow() {
		t.Fatal("open breaker admitted traffic before the cooldown")
	}
	time.Sleep(25 * time.Millisecond)
	// Exactly one probe is admitted; a concurrent second caller stays out.
	if !b.allow() {
		t.Fatal("cooldown elapsed but the probe was not admitted")
	}
	if st, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", st)
	}
	if b.allow() {
		t.Fatal("second caller was admitted alongside the half-open probe")
	}
	// Probe fails: straight back to open, cooldown restarts.
	if !b.record(true, 1) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted traffic")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("second probe was not admitted")
	}
	// Probe succeeds: closed, traffic flows.
	b.record(false, 1)
	if st, opens := b.snapshot(); st != BreakerClosed || opens != 2 {
		t.Fatalf("state = %s opens = %d, want closed/2", st, opens)
	}
	if !b.allow() {
		t.Fatal("closed breaker denied traffic after recovery")
	}
}

func TestBreakerErrorRateOpens(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 100, window: 10, minSamples: 10, errorRate: 0.5, cooldown: time.Hour})
	// Alternate failure/success: the consecutive streak never exceeds 1,
	// but the windowed rate holds at 50%.
	opened := false
	for i := 0; i < 12; i++ {
		opened = b.record(i%2 == 0, 1) || opened
	}
	if !opened {
		t.Fatal("50% windowed error rate did not open the breaker")
	}
}

func TestBreakerRecoveryClearsWindow(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 1, window: 10, minSamples: 2, errorRate: 0.5, cooldown: time.Hour})
	b.record(true, 1) // open, window now [fail]
	b.record(false, 1)
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state = %s, want closed after successful probe", st)
	}
	// The stale pre-outage failure must not combine with one fresh failure
	// to instantly re-trip the rate rule... threshold 1 would open anyway;
	// check the window reset directly instead.
	b.mu.Lock()
	tripped := b.rateTrippedLocked()
	b.mu.Unlock()
	if tripped {
		t.Fatal("recovery kept the stale outcome window")
	}
}
