package cluster

import (
	"fmt"
	"testing"
)

// TestRingRebalanceMovement pins the consistent-hash property live
// rebalance rests on: adding one worker to a fleet of N moves roughly 1/N+1
// of the keys — all of them TO the joiner — and removing one moves exactly
// the leaver's keys, nothing else.
func TestRingRebalanceMovement(t *testing.T) {
	const keys = 2000
	key := func(i int) string { return fmt.Sprintf("stage-%d#sql-where", i) }

	base := []string{"w1:1", "w2:1", "w3:1"}
	r3 := mustRing(t, base)
	r4 := mustRing(t, append(append([]string{}, base...), "w4:1"))

	moved := 0
	for i := 0; i < keys; i++ {
		a, b := r3.owner(key(i)), r4.owner(key(i))
		if a == b {
			continue
		}
		moved++
		if b != "w4:1" {
			t.Fatalf("key %d moved %s -> %s, not to the joiner", i, a, b)
		}
	}
	// Ideal movement is 1/4 = 25%; vnode variance allows a band around it.
	if frac := float64(moved) / keys; frac < 0.12 || frac > 0.40 {
		t.Errorf("join moved %.1f%% of keys, want ~25%% (1/N band 12–40%%)", frac*100)
	}

	// Removing w2 moves exactly its keys; survivors keep theirs.
	r2 := mustRing(t, []string{"w1:1", "w3:1"})
	movedOut, kept := 0, 0
	for i := 0; i < keys; i++ {
		a, b := r3.owner(key(i)), r2.owner(key(i))
		if a == "w2:1" {
			movedOut++
			if b == "w2:1" {
				t.Fatalf("key %d still owned by the removed worker", i)
			}
			continue
		}
		if a != b {
			t.Fatalf("key %d moved %s -> %s although its owner survived", i, a, b)
		}
		kept++
	}
	if movedOut == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: movedOut=%d kept=%d", movedOut, kept)
	}
	t.Logf("join moved %d/%d keys; leave moved %d/%d", moved, keys, movedOut, keys)
}

func mustRing(t *testing.T, addrs []string) *ring {
	t.Helper()
	r, err := newRing(addrs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
