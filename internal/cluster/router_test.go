// Router tests run real worker HTTP stacks (internal/server muxes hosted on
// httptest) behind the cluster router and hold it to the seam contract:
// routed relations byte-identical to single-process runs, stage affinity
// that keeps one worker's persistent engines hot across batches, failover
// that degrades instead of failing, and conserved accounting throughout.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/llmsim"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/sqlfront"
	"repro/internal/table"
	"repro/internal/tokenizer"
)

func ticketsTable(rows int) *table.Table {
	t := table.New("ticket_id", "region", "request", "response")
	regions := []string{"emea", "amer", "apac"}
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			fmt.Sprintf("T-%04d", i),
			regions[i%len(regions)],
			fmt.Sprintf("my device model %d stopped working after the update", i%7),
			fmt.Sprintf("we suggest resetting configuration profile %d and retrying", i%5),
		)
	}
	return t
}

func execWith(t *testing.T, be backend.Backend, sql string) *sqlfront.Result {
	t.Helper()
	db := sqlfront.NewDB()
	db.Register("tickets", ticketsTable(24))
	res, err := db.Exec(sql, sqlfront.ExecConfig{Config: query.Config{Backend: be}})
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	return res
}

// startWorker hosts a full worker HTTP stack (the same mux llmqserve -worker
// serves) over the given local backend and returns its server.
func startWorker(be backend.Backend) (*httptest.Server, *server.Worker) {
	wk := server.NewWorker(be, nil)
	return httptest.NewServer(server.NewWithConfig(server.Config{Worker: wk})), wk
}

// newCluster boots n workers, each over its own backend from mk, and a
// router across them. Close order matters: router first, then workers.
func newCluster(t *testing.T, n int, mk func() backend.Backend, cfg cluster.Config) (*cluster.Router, []*httptest.Server) {
	t.Helper()
	var srvs []*httptest.Server
	for i := 0; i < n; i++ {
		srv, _ := startWorker(mk())
		srvs = append(srvs, srv)
		cfg.Workers = append(cfg.Workers, srv.URL)
	}
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rt.Close()
		for _, s := range srvs {
			s.Close()
		}
	})
	return rt, srvs
}

var clusterStatements = []string{
	`SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS ok
	 FROM tickets WHERE region = 'emea'`,
	`SELECT ticket_id FROM tickets
	 WHERE LLM('Is the request about a hardware fault?', request) = 'Yes' AND region <> 'apac'`,
	`SELECT region, COUNT(*) AS n, AVG(LLM('Rate the anger 1-5.', request)) AS anger
	 FROM tickets GROUP BY region ORDER BY n DESC, region`,
}

// TestClusterIdenticalRelations is the distributed tier's correctness bar:
// the same statements through a 2-worker cluster return relations and
// model-call counts byte-identical to the single-process oracle, and the
// batches demonstrably went over the wire.
func TestClusterIdenticalRelations(t *testing.T) {
	rt, _ := newCluster(t, 2, func() backend.Backend { return backend.NewSim() },
		cluster.Config{HealthInterval: -1})
	for _, sql := range clusterStatements {
		want := execWith(t, nil, sql) // nil = single-process default backend
		got := execWith(t, rt, sql)
		if fmt.Sprint(got.Columns) != fmt.Sprint(want.Columns) {
			t.Errorf("%q: columns differ: %v vs %v", sql, got.Columns, want.Columns)
		}
		if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
			t.Errorf("%q: rows differ\nwant %v\ngot  %v", sql, want.Rows, got.Rows)
		}
		if got.LLMCalls != want.LLMCalls {
			t.Errorf("%q: model calls = %d, oracle made %d", sql, got.LLMCalls, want.LLMCalls)
		}
	}
	var remote int64
	for _, wm := range rt.Metrics().Workers {
		remote += wm.Batches
	}
	if remote == 0 {
		t.Error("no remote batches recorded: statements did not go over the wire")
	}
}

// TestClusterStageAffinity pins the tentpole property: two batch windows
// sharing a stage key land on the SAME stage-affine worker, whose persistent
// engine carries the prefix cache across them — cumulative hit tokens
// strictly above the per-batch sim baseline, relations identical.
// Capacity 1 keeps fan-out width at 1 so whole batches follow the ring.
func TestClusterStageAffinity(t *testing.T) {
	stmts := []string{
		`SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS ok
		 FROM tickets WHERE region = 'emea'`,
		`SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS ok
		 FROM tickets WHERE region = 'amer'`,
	}
	run := func(be backend.Backend) (int64, []*sqlfront.Result) {
		rec := backend.NewRecording(be)
		var results []*sqlfront.Result
		for _, sql := range stmts {
			results = append(results, execWith(t, rec, sql))
		}
		var matched int64
		for _, b := range rec.Batches() {
			matched += b.Metrics.MatchedTokens
		}
		return matched, results
	}

	simHit, simRes := run(backend.NewSim())

	rt, _ := newCluster(t, 2, func() backend.Backend { return backend.NewPersistent(0) },
		cluster.Config{Capacity: 1, HealthInterval: -1})
	clusterHit, clusterRes := run(rt)

	if clusterHit <= simHit {
		t.Errorf("cluster hit tokens = %d, want strictly above per-batch sim's %d (stage affinity keeps the worker's engine warm)",
			clusterHit, simHit)
	}
	for i := range simRes {
		if fmt.Sprint(simRes[i].Rows) != fmt.Sprint(clusterRes[i].Rows) {
			t.Errorf("statement %d: relations differ between sim and cluster", i)
		}
	}

	serving := 0
	for addr, wm := range rt.Metrics().Workers {
		if wm.Batches > 0 {
			serving++
			t.Logf("worker %s served %d batches", addr, wm.Batches)
		}
	}
	if serving != 1 {
		t.Errorf("%d workers served the shared stage, want exactly 1 (stage-affine placement)", serving)
	}
	t.Logf("cumulative hit tokens: sim %d, cluster %d", simHit, clusterHit)
}

// TestClusterFailoverOnKilledWorker: killing the worker serving a stage
// mid-run degrades to failover — the next statement lands on the survivor
// with an identical relation — and the death is visible as a markdown.
func TestClusterFailoverOnKilledWorker(t *testing.T) {
	rt, srvs := newCluster(t, 2, func() backend.Backend { return backend.NewSim() },
		cluster.Config{Capacity: 1, HealthInterval: -1, MaxRetries: -1, RetryBackoff: time.Millisecond})

	sql := clusterStatements[0]
	want := execWith(t, rt, sql)

	// Find and kill the worker that served the stage.
	var victim string
	for addr, wm := range rt.Metrics().Workers {
		if wm.Batches > 0 {
			victim = addr
		}
	}
	if victim == "" {
		t.Fatal("no worker served the first statement")
	}
	for _, s := range srvs {
		if s.URL == victim {
			s.Close()
		}
	}

	got := execWith(t, rt, sql)
	if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Errorf("relation after failover differs\nwant %v\ngot  %v", want.Rows, got.Rows)
	}

	// A further statement places with the victim already marked down, so the
	// stage is served off its ring owner — a counted ring move.
	execWith(t, rt, sql)

	m := rt.Metrics()
	if wm := m.Workers[victim]; wm.Markdowns < 1 || !wm.Down {
		t.Errorf("killed worker %s = %+v, want marked down with Markdowns >= 1", victim, wm)
	}
	survived := false
	for addr, wm := range m.Workers {
		if addr != victim && wm.Batches > 0 {
			survived = true
		}
	}
	if !survived {
		t.Error("no surviving worker served the failed-over statement")
	}
	if m.RingMoves < 1 {
		t.Errorf("ring moves = %d, want >= 1 (stage served off its dead owner)", m.RingMoves)
	}
}

// clusterSpec hand-builds a grouped BatchSpec for seam-level router tests.
func clusterSpec(stageKey string, groups []int, promptLen, outTokens int) backend.BatchSpec {
	spec := backend.BatchSpec{StageKey: stageKey, Engine: llmsim.Config{
		Cost:         llmsim.CostModel{Model: llmsim.Llama3_8B, Cluster: llmsim.SingleL4},
		CacheEnabled: true,
	}}
	for _, n := range groups {
		spec.Groups = append(spec.Groups, len(spec.Requests))
		for i := 0; i < n; i++ {
			spec.Requests = append(spec.Requests, &llmsim.Request{
				ID:        len(spec.Requests),
				Prompt:    make([]tokenizer.Token, promptLen),
				OutTokens: outTokens,
			})
		}
	}
	return spec
}

// gateBackend blocks its first batch until released (later calls pass) and
// counts requests served — shared by both workers in the hot-replication
// test so the saturated primary and the replica hit one ledger.
type gateBackend struct {
	mu      sync.Mutex
	calls   int
	rows    int
	started chan struct{}
	release chan struct{}
}

func newGateBackend() *gateBackend {
	return &gateBackend{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateBackend) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	g.mu.Lock()
	g.calls++
	g.rows += len(spec.Requests)
	first := g.calls == 1
	g.mu.Unlock()
	if first {
		close(g.started)
		select {
		case <-g.release:
		case <-ctx.Done():
			return backend.BatchResult{}, ctx.Err()
		}
	}
	return backend.BatchResult{ModelCalls: len(spec.Requests)}, nil
}

func (g *gateBackend) Close() error { return nil }

// TestClusterHotStageReplication: with the stage's primary saturated
// (in-flight at the watermark), a grouped batch brings in the next ring node
// as a replica and spreads its parts — the hot stage trades one extra
// warm-up for parallelism, and the accounting stays conserved.
func TestClusterHotStageReplication(t *testing.T) {
	gate := newGateBackend()
	srvA, _ := startWorker(gate)
	srvB, _ := startWorker(gate) // same ledger: both workers serve from gate
	defer srvA.Close()
	defer srvB.Close()

	rt, err := cluster.NewRouter(cluster.Config{
		Workers:            []string{srvA.URL, srvB.URL},
		Capacity:           1,
		ReplicateWatermark: 1,
		HealthInterval:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Batch 1 parks on the stage's primary, holding its in-flight gauge at
	// the watermark.
	firstDone := make(chan error, 1)
	go func() {
		_, err := rt.RunBatch(context.Background(), clusterSpec("hot", []int{4}, 16, 4))
		firstDone <- err
	}()
	<-gate.started

	// Batch 2, same stage, two groups: the saturated primary pulls in the
	// replica; width 2 sends one part to each worker.
	res, err := rt.RunBatch(context.Background(), clusterSpec("hot", []int{2, 2}, 16, 4))
	if err != nil {
		t.Fatalf("replicated batch: %v", err)
	}
	if res.ModelCalls != 4 {
		t.Errorf("replicated batch model calls = %d, want 4 (conserved across parts)", res.ModelCalls)
	}

	close(gate.release)
	if err := <-firstDone; err != nil {
		t.Fatalf("parked batch: %v", err)
	}

	m := rt.Metrics()
	if m.HotReplications != 1 {
		t.Errorf("hot replications = %d, want 1", m.HotReplications)
	}
	for addr, wm := range m.Workers {
		if wm.Batches == 0 {
			t.Errorf("worker %s served no batches: the replica never joined", addr)
		}
	}
	gate.mu.Lock()
	defer gate.mu.Unlock()
	if gate.rows != 8 {
		t.Errorf("workers served %d rows, want 8 (4 parked + 2+2 replicated)", gate.rows)
	}
}

// TestClusterRefusesDeadContext: the router honors the Backend contract's
// cancellation clause at entry.
func TestClusterRefusesDeadContext(t *testing.T) {
	rt, _ := newCluster(t, 2, func() backend.Backend { return backend.NewSim() },
		cluster.Config{HealthInterval: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rt.RunBatch(ctx, clusterSpec("any", []int{2}, 8, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestClusterHealthRecovery: a worker that dies is marked down by the probe
// loop and recovers (marked up, serving again) once its /healthz answers —
// mark-down and mark-up both happen without any batch traffic.
func TestClusterHealthRecovery(t *testing.T) {
	be := backend.NewSim()
	defer be.Close()
	wk := server.NewWorker(be, nil)
	srv := httptest.NewServer(server.NewWithConfig(server.Config{Worker: wk}))
	defer srv.Close()

	rt, err := cluster.NewRouter(cluster.Config{
		Workers:        []string{srv.URL},
		HealthInterval: 10 * time.Millisecond,
		MarkdownAfter:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	waitFor := func(desc string, pred func(cluster.WorkerMetrics) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if pred(rt.Metrics().Workers[srv.URL]) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for worker to be %s", desc)
	}

	// Draining flips /healthz to 503: the probe loop marks the worker down.
	wk.SetDraining(true)
	waitFor("marked down", func(wm cluster.WorkerMetrics) bool { return wm.Down })

	// Un-draining restores 200: the next probe marks it back up.
	wk.SetDraining(false)
	waitFor("marked up", func(wm cluster.WorkerMetrics) bool { return !wm.Down })
}
