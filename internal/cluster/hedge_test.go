// Hedged-dispatch tests: tail-latency hedging races a slow primary against
// the next ring node, the first answer wins, and — the accounting bar —
// hedges never double-charge.
package cluster_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
)

// laggardBackend serves every batch instantly except the first, which
// blocks until its context dies (a stuck worker, not a failed one). All
// workers in the hedge tests share one instance, so its ledger counts what
// the whole fleet actually served.
type laggardBackend struct {
	mu         sync.Mutex
	calls      int
	servedReqs int   // requests on batches that returned a result
	stuck      int32 // 1 while the laggard batch is blocked
}

func (l *laggardBackend) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	l.mu.Lock()
	l.calls++
	first := l.calls == 1
	l.mu.Unlock()
	if first {
		atomic.StoreInt32(&l.stuck, 1)
		<-ctx.Done()
		return backend.BatchResult{}, ctx.Err()
	}
	l.mu.Lock()
	l.servedReqs += len(spec.Requests)
	l.mu.Unlock()
	return backend.BatchResult{ModelCalls: len(spec.Requests)}, nil
}

func (l *laggardBackend) Close() error { return nil }

// TestHedgeNoDoubleCharge: the primary hangs, the hedge answers, and the
// batch's merged accounting counts each request exactly once — the loser's
// canceled attempt contributes nothing.
func TestHedgeNoDoubleCharge(t *testing.T) {
	shared := &laggardBackend{}
	srvA, _ := startWorker(shared)
	srvB, _ := startWorker(shared)
	defer srvA.Close()
	defer srvB.Close()

	rt, err := cluster.NewRouter(cluster.Config{
		Workers:        []string{srvA.URL, srvB.URL},
		Capacity:       4,
		HealthInterval: -1,
		MaxRetries:     -1,
		HedgeAfter:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	res, err := rt.RunBatch(context.Background(), clusterSpec("hedged-stage", []int{3}, 16, 4))
	if err != nil {
		t.Fatalf("hedged batch: %v", err)
	}
	if res.ModelCalls != 3 {
		t.Errorf("merged model calls = %d, want 3 (hedge must not double-charge)", res.ModelCalls)
	}

	m := rt.Metrics()
	if m.HedgesLaunched != 1 {
		t.Errorf("hedges launched = %d, want 1", m.HedgesLaunched)
	}
	if m.HedgeWins != 1 {
		t.Errorf("hedge wins = %d, want 1 (the stuck primary cannot have answered)", m.HedgeWins)
	}

	shared.mu.Lock()
	served := shared.servedReqs
	shared.mu.Unlock()
	if served != 3 {
		t.Errorf("fleet served %d requests to completion, want 3 (single execution)", served)
	}
	// Conservation across the fleet ledger: router batches = hedge winner
	// only; the canceled primary is an error, not a serve.
	var batches, errs int64
	for _, wm := range m.Workers {
		batches += wm.Batches
		errs += wm.Errors
	}
	if batches != 1 {
		t.Errorf("worker batches = %d, want 1 (only the winner's attempt counts)", batches)
	}
	t.Logf("fleet: batches=%d errors=%d hedges=%d wins=%d", batches, errs, m.HedgesLaunched, m.HedgeWins)
}

// TestHedgePrimaryWinCancelsHedge: the mirror race — the primary answers
// right after the hedge launches, the hedge is canceled, accounting still
// single-counts.
func TestHedgePrimaryWinCancelsHedge(t *testing.T) {
	slow := &slowBackend{delay: 60 * time.Millisecond}
	srvA, _ := startWorker(slow)
	srvB, _ := startWorker(slow)
	defer srvA.Close()
	defer srvB.Close()

	rt, err := cluster.NewRouter(cluster.Config{
		Workers:        []string{srvA.URL, srvB.URL},
		HealthInterval: -1,
		MaxRetries:     -1,
		HedgeAfter:     15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	res, err := rt.RunBatch(context.Background(), clusterSpec("slow-stage", []int{2}, 16, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelCalls != 2 {
		t.Errorf("model calls = %d, want 2", res.ModelCalls)
	}
	m := rt.Metrics()
	if m.HedgesLaunched != 1 {
		t.Errorf("hedges launched = %d, want 1", m.HedgesLaunched)
	}
	if m.HedgeWins+m.HedgesCanceled != 1 {
		t.Errorf("wins %d + canceled %d != 1: every decided race resolves exactly once",
			m.HedgeWins, m.HedgesCanceled)
	}
}

// slowBackend delays every batch by a fixed amount, honoring cancellation.
type slowBackend struct{ delay time.Duration }

func (s *slowBackend) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	select {
	case <-ctx.Done():
		return backend.BatchResult{}, ctx.Err()
	case <-time.After(s.delay):
	}
	return backend.BatchResult{ModelCalls: len(spec.Requests)}, nil
}

func (s *slowBackend) Close() error { return nil }

// TestHedgeRespectsDeadline: with the caller's remaining deadline shorter
// than the hedge delay, no hedge launches — the batch dies on its deadline
// without spawning doomed work.
func TestHedgeRespectsDeadline(t *testing.T) {
	slow := &slowBackend{delay: 10 * time.Second}
	srvA, _ := startWorker(slow)
	srvB, _ := startWorker(slow)
	defer srvA.Close()
	defer srvB.Close()

	rt, err := cluster.NewRouter(cluster.Config{
		Workers:        []string{srvA.URL, srvB.URL},
		HealthInterval: -1,
		MaxRetries:     -1,
		HedgeAfter:     500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	_, err = rt.RunBatch(ctx, clusterSpec("deadlined-stage", []int{2}, 16, 4))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if m := rt.Metrics(); m.HedgesLaunched != 0 {
		t.Errorf("hedges launched = %d, want 0 (deadline < hedge delay suppresses the hedge)", m.HedgesLaunched)
	}
}

// TestHedgeDisabled: a negative HedgeAfter turns hedging off entirely.
func TestHedgeDisabled(t *testing.T) {
	slow := &slowBackend{delay: 40 * time.Millisecond}
	srvA, _ := startWorker(slow)
	srvB, _ := startWorker(slow)
	defer srvA.Close()
	defer srvB.Close()

	rt, err := cluster.NewRouter(cluster.Config{
		Workers:        []string{srvA.URL, srvB.URL},
		HealthInterval: -1,
		MaxRetries:     -1,
		HedgeAfter:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if _, err := rt.RunBatch(context.Background(), clusterSpec("s", []int{2}, 16, 4)); err != nil {
		t.Fatal(err)
	}
	if m := rt.Metrics(); m.HedgesLaunched != 0 {
		t.Errorf("hedges launched = %d, want 0 (hedging disabled)", m.HedgesLaunched)
	}
}
