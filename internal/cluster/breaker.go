package cluster

import (
	"sync"
	"time"
)

// BreakerState names a circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed: traffic flows; failures are being counted.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the worker is cut off until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe batch is
	// in flight; its outcome closes or re-opens the circuit.
	BreakerHalfOpen BreakerState = "half-open"
)

// breakerConfig sizes one worker's circuit breaker.
type breakerConfig struct {
	// threshold opens the circuit on this many consecutive failures.
	threshold int
	// window and errorRate open the circuit when at least minSamples
	// outcomes are in the rolling window and the failure fraction reaches
	// errorRate — catching a worker that fails often without ever failing
	// threshold times in a row.
	window     int
	minSamples int
	errorRate  float64
	// cooldown is how long an open circuit blocks before admitting the
	// half-open probe.
	cooldown time.Duration
}

// breaker is a per-worker circuit breaker: closed → open on consecutive
// failures or windowed error rate, open → half-open after the cooldown,
// half-open → closed on a probe success (or back to open on failure). It
// replaces the raw consecutive-failure mark-down: an open breaker is what
// "down" means to the router, and health-probe outcomes feed the same
// circuit as batch outcomes, so a recovered worker closes its breaker on
// the first healthy answer.
type breaker struct {
	cfg breakerConfig

	mu       sync.Mutex
	state    BreakerState // guarded by mu
	failures int          // consecutive failures; guarded by mu
	outcomes []bool       // rolling window, true = failure; guarded by mu
	next     int          // next outcome slot (ring index); guarded by mu
	openedAt time.Time    // when the circuit last opened; guarded by mu
	probing  bool         // half-open probe in flight; guarded by mu
	opens    int64        // closed/half-open → open transitions; guarded by mu
}

func newBreaker(cfg breakerConfig) *breaker {
	if cfg.threshold <= 0 {
		cfg.threshold = 2
	}
	if cfg.window <= 0 {
		cfg.window = 20
	}
	if cfg.minSamples <= 0 {
		cfg.minSamples = 10
	}
	if cfg.errorRate <= 0 || cfg.errorRate > 1 {
		cfg.errorRate = 0.5
	}
	if cfg.cooldown <= 0 {
		cfg.cooldown = time.Second
	}
	return &breaker{cfg: cfg, state: BreakerClosed}
}

// allow reports whether a batch may be dispatched to the worker right now.
// A closed circuit always admits; an open one admits nothing until the
// cooldown elapses, at which point exactly one caller is admitted as the
// half-open probe (concurrent callers keep seeing the circuit open).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cfg.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record feeds one outcome (from a batch or a health probe) into the
// circuit. weight counts a batch failure as that many consecutive failures
// — a failed batch already survived the remote's own retries, so it is
// stronger evidence than one failed probe. It reports whether this call
// opened the circuit.
func (b *breaker) record(failed bool, weight int) bool {
	if weight <= 0 {
		weight = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Rolling window: one slot per call (not per weight unit), so the rate
	// reflects observed events.
	if len(b.outcomes) < b.cfg.window {
		b.outcomes = append(b.outcomes, failed)
	} else {
		b.outcomes[b.next] = failed
		b.next = (b.next + 1) % b.cfg.window
	}
	if !failed {
		b.failures = 0
		b.probing = false
		if b.state != BreakerClosed {
			b.state = BreakerClosed
			// A recovered worker starts with a clean slate: stale window
			// failures from before the outage must not instantly re-open.
			b.outcomes = b.outcomes[:0]
			b.next = 0
		}
		return false
	}
	b.failures += weight
	b.probing = false
	if b.state == BreakerOpen {
		return false
	}
	if b.state == BreakerHalfOpen || b.failures >= b.cfg.threshold || b.rateTrippedLocked() {
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.opens++
		return true
	}
	return false
}

// rateTrippedLocked reports whether the rolling-window error rate crossed
// the configured threshold.
//
//llmqlint:holds mu
func (b *breaker) rateTrippedLocked() bool {
	if len(b.outcomes) < b.cfg.minSamples {
		return false
	}
	fails := 0
	for _, f := range b.outcomes {
		if f {
			fails++
		}
	}
	return float64(fails)/float64(len(b.outcomes)) >= b.cfg.errorRate
}

// snapshot returns the current state and the open-transition count.
func (b *breaker) snapshot() (BreakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}

// isOpen reports whether the circuit currently blocks regular traffic
// (open or probing half-open) — the router's notion of "down".
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != BreakerClosed
}
