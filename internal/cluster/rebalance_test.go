// Live fleet membership tests: workers join and leave a serving router
// without dropping in-flight batches.
package cluster_test

import (
	"context"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
)

// TestLiveRemoveWorkerDrainsInFlight is the live-rebalance pin: a batch is
// parked on a worker, that worker leaves the fleet mid-flight, and the batch
// still completes on its old assignment — zero dropped work — while new
// routing excludes the leaver immediately.
func TestLiveRemoveWorkerDrainsInFlight(t *testing.T) {
	gates := make(map[string]*gateBackend, 3)
	var srvs []*httptest.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		g := newGateBackend()
		srv, _ := startWorker(g)
		defer srv.Close()
		gates[srv.URL] = g
		srvs = append(srvs, srv)
		addrs = append(addrs, srv.URL)
	}
	_ = srvs

	rt, err := cluster.NewRouter(cluster.Config{
		Workers:        addrs,
		HealthInterval: -1,
		MaxRetries:     -1,
		HedgeAfter:     -1, // a hedge would rescue the parked batch and mask the drain
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	done := make(chan error, 1)
	go func() {
		_, err := rt.RunBatch(context.Background(), clusterSpec("drain-stage", []int{2}, 16, 4))
		done <- err
	}()

	// Find the worker actually serving the parked batch.
	var serving string
	select {
	case serving = <-firstStarted(gates):
	case <-time.After(5 * time.Second):
		t.Fatal("no worker picked up the batch")
	}

	if err := rt.RemoveWorker(serving); err != nil {
		t.Fatalf("remove mid-flight: %v", err)
	}
	if got := rt.Workers(); slices.Contains(got, serving) {
		t.Fatalf("removed worker %s still listed in %v", serving, got)
	}
	if len(rt.Workers()) != 2 {
		t.Fatalf("fleet size = %d, want 2", len(rt.Workers()))
	}

	// The parked batch is still in flight on the leaver; release it.
	close(gates[serving].release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("in-flight batch dropped during rebalance: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight batch never completed after the drain release")
	}

	m := rt.Metrics()
	if m.RebalanceLeaves != 1 {
		t.Errorf("rebalance leaves = %d, want 1", m.RebalanceLeaves)
	}
	// Post-drain traffic lands on survivors only (un-gate them first so
	// their own first batch doesn't park).
	for a, g := range gates {
		if a != serving {
			close(g.release)
		}
	}
	if _, err := rt.RunBatch(context.Background(), clusterSpec("drain-stage", []int{1}, 16, 4)); err != nil {
		t.Fatalf("post-rebalance batch: %v", err)
	}
	g := gates[serving]
	g.mu.Lock()
	leaverCalls := g.calls
	g.mu.Unlock()
	if leaverCalls > 1 {
		t.Errorf("leaver served %d batches, want 1 (no new work after removal)", leaverCalls)
	}
}

// firstStarted reports which gate signals a parked first batch; buffered so
// late signals from other gates (e.g. post-rebalance traffic) don't block or
// race.
func firstStarted(gates map[string]*gateBackend) <-chan string {
	out := make(chan string, len(gates))
	for a, g := range gates {
		go func(a string, g *gateBackend) {
			<-g.started
			out <- a
		}(a, g)
	}
	return out
}

// TestLiveAddWorkerJoins: a joiner enters the serving fleet, shows up in the
// membership list and counters, and takes traffic for stages the ring now
// assigns to it.
func TestLiveAddWorkerJoins(t *testing.T) {
	mk := func() backend.Backend { return backend.NewSim() }
	rt, srvs := newCluster(t, 2, mk, cluster.Config{HealthInterval: -1, HedgeAfter: -1})
	defer rt.Close()
	for _, s := range srvs {
		defer s.Close()
	}

	joiner, _ := startWorker(mk())
	defer joiner.Close()

	if err := rt.AddWorker(joiner.URL); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddWorker(joiner.URL); err == nil {
		t.Fatal("duplicate join was accepted")
	}
	if got := rt.Workers(); !slices.Contains(got, joiner.URL) || len(got) != 3 {
		t.Fatalf("workers = %v, want 3 including the joiner", got)
	}
	if m := rt.Metrics(); m.RebalanceJoins != 1 {
		t.Errorf("rebalance joins = %d, want 1", m.RebalanceJoins)
	}

	// Spray enough distinct stages that the joiner owns some (~1/3).
	for i := 0; i < 24; i++ {
		spec := clusterSpec(string(rune('a'+i))+"-stage", []int{1}, 16, 4)
		if _, err := rt.RunBatch(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	}
	wm := rt.Metrics().Workers[joiner.URL]
	if wm.Batches == 0 {
		t.Error("joiner served no batches across 24 distinct stages")
	}
	t.Logf("joiner served %d/24 stage batches", wm.Batches)
}

// TestRemoveLastWorkerRefused: the fleet never shrinks to zero.
func TestRemoveLastWorkerRefused(t *testing.T) {
	srv, _ := startWorker(backend.NewSim())
	defer srv.Close()
	rt, err := cluster.NewRouter(cluster.Config{Workers: []string{srv.URL}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.RemoveWorker(srv.URL); err == nil {
		t.Fatal("removing the last worker was accepted")
	}
	if err := rt.RemoveWorker("http://nope:1"); err == nil {
		t.Fatal("removing an unknown worker was accepted")
	}
}
