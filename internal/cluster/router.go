package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/obs"
)

// Config sizes a Router.
type Config struct {
	// Workers are the fleet's /v1/batch addresses ("host:port" or full
	// URLs). At least one is required.
	Workers []string
	// Capacity is a worker's nominal concurrent-batch budget, the unit the
	// fan-out and hot-replication decisions are made in (default 4).
	Capacity int
	// ReplicateWatermark is the in-flight batch count at which a stage's
	// primary counts as saturated and the batch also considers the next
	// ring node (default: Capacity).
	ReplicateWatermark int
	// HealthInterval is the period between health sweeps (default 2s;
	// negative disables the health loop — worker circuits are then only
	// opened by failed batches and never close without traffic).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 500ms).
	HealthTimeout time.Duration
	// MarkdownAfter is the circuit breaker's consecutive-failure threshold:
	// how many consecutive probe failures open a worker's circuit (default
	// 2; a failed batch counts MarkdownAfter at once, since it already
	// survived the remote backend's own retries).
	MarkdownAfter int
	// BreakerCooldown is how long an opened circuit blocks before one
	// half-open probe batch is admitted (default 1s). Health probes are
	// never blocked, and a healthy probe answer closes the circuit early.
	BreakerCooldown time.Duration
	// BreakerWindow / BreakerMinSamples / BreakerErrorRate open the circuit
	// on failure rate: with at least BreakerMinSamples outcomes in a
	// rolling window of BreakerWindow, a failure fraction at or above
	// BreakerErrorRate opens the circuit even without a consecutive streak
	// (defaults 20 / 10 / 0.5).
	BreakerWindow     int
	BreakerMinSamples int
	BreakerErrorRate  float64
	// HedgeAfter controls hedged batch sends: after this long without an
	// answer, the same part is also dispatched to the next admitted ring
	// node and the first answer wins (the loser is canceled; only the
	// winner's result is merged, so accounting never double-charges). Zero
	// derives the delay from the router's observed p99 batch latency;
	// negative disables hedging.
	HedgeAfter time.Duration
	// MaxRetries / RetryBackoff configure each worker's backend.Remote
	// (see backend.RemoteConfig); failover to the next ring node happens
	// only after a worker exhausts these.
	MaxRetries   int
	RetryBackoff time.Duration
	// RetryBudgetRatio / RetryBudgetBurst size the retry budget shared by
	// every worker's Remote (see backend.RetryBudget; defaults 0.2 / 10).
	// RetryBudgetBurst < 0 disables the budget.
	RetryBudgetRatio float64
	RetryBudgetBurst int
	// HTTPClient is shared by batch dispatch and health probes; nil builds
	// a default client. Chaos runs mount a faults.RoundTripper here.
	HTTPClient *http.Client
}

func (c Config) capacity() int {
	if c.Capacity > 0 {
		return c.Capacity
	}
	return 4
}

func (c Config) replicateWatermark() int {
	if c.ReplicateWatermark > 0 {
		return c.ReplicateWatermark
	}
	return c.capacity()
}

func (c Config) healthInterval() time.Duration {
	if c.HealthInterval != 0 {
		return c.HealthInterval
	}
	return 2 * time.Second
}

func (c Config) healthTimeout() time.Duration {
	if c.HealthTimeout > 0 {
		return c.HealthTimeout
	}
	return 500 * time.Millisecond
}

func (c Config) markdownAfter() int {
	if c.MarkdownAfter > 0 {
		return c.MarkdownAfter
	}
	return 2
}

func (c Config) breaker() breakerConfig {
	return breakerConfig{
		threshold:  c.markdownAfter(),
		window:     c.BreakerWindow,
		minSamples: c.BreakerMinSamples,
		errorRate:  c.BreakerErrorRate,
		cooldown:   c.BreakerCooldown,
	}
}

// defaultHedgeDelay is the adaptive hedge delay before any latency samples
// exist — deliberately conservative so a cold router does not hedge its
// first batches.
const defaultHedgeDelay = 250 * time.Millisecond

// worker is the router's view of one fleet member. A worker's "down" state
// is its circuit breaker being non-closed.
type worker struct {
	addr      string
	healthURL string
	remote    *backend.Remote
	capacity  int
	cb        *breaker

	inflight atomic.Int64 // batches currently dispatched to this worker
}

func (w *worker) isDown() bool { return w.cb.isOpen() }

// Router is the cluster Backend: it consistent-hashes each batch's StageKey
// onto the worker ring so persistent engines stay stage-affine fleet-wide,
// fans a grouped batch out across workers sized by live capacity, and
// degrades — not fails — when workers die, drain, or lie.
//
// Placement per batch:
//
//  1. The ring names the stage's owner; an owner whose circuit breaker is
//     open fails over to the next distinct ring node (counted as a ring
//     move), so a broken worker's stages land deterministically on its
//     successor.
//  2. If the primary is saturated (in-flight ≥ ReplicateWatermark) the next
//     ring node joins as a replica target (counted as a hot replication):
//     the stage's prefix warms on a second node, trading one extra warm-up
//     for parallelism — the dynamic version of backend.Sharded's static
//     fan-out.
//  3. Fan-out width is min(group count, live spare capacity across the
//     chosen targets), never a static flag: the batch splits along its
//     prefix-group boundaries (backend.SplitByGroups) and parts go to the
//     least-loaded target first.
//  4. A part without an answer after the hedge delay is also dispatched to
//     the next admitted ring node; the first answer wins and the loser is
//     canceled — only the winner's result merges, so hedges never
//     double-charge.
//  5. A part whose worker fails (after backend.Remote's own retries) feeds
//     that worker's circuit breaker and retries on the next ring node;
//     deterministic 4xx rejections and the caller's own cancellation do
//     not fail over.
//
// The fleet is live: AddWorker/RemoveWorker rebalance the consistent-hash
// ring on a running router (~1/N of stages move), in-flight batches drain
// on their old assignment, and removed workers stop counting toward ring
// moves the moment they leave.
//
// Results merge with backend.MergeBatchResults, so accounting is conserved:
// each part's tokens and calls count exactly once however many workers were
// tried.
type Router struct {
	cfg    Config
	hc     *http.Client
	budget *backend.RetryBudget

	mu      sync.RWMutex
	ring    *ring              // guarded by mu
	workers map[string]*worker // guarded by mu

	ringMoves       atomic.Int64
	hotReplications atomic.Int64
	hedgesLaunched  atomic.Int64
	hedgeWins       atomic.Int64
	hedgesCanceled  atomic.Int64
	rebalanceJoins  atomic.Int64
	rebalanceLeaves atomic.Int64

	latMu   sync.Mutex
	lats    []time.Duration // successful-batch latency reservoir; guarded by latMu
	latNext int             // next reservoir slot; guarded by latMu

	closed   atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	loopDone sync.WaitGroup
	drains   sync.WaitGroup
}

var _ backend.Backend = (*Router)(nil)

// latencyWindow is the reservoir size the adaptive hedge delay derives its
// p99 from.
const latencyWindow = 128

// NewRouter builds the router and starts its health loop.
func NewRouter(cfg Config) (*Router, error) {
	rg, err := newRing(cfg.Workers)
	if err != nil {
		return nil, err
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	var budget *backend.RetryBudget
	if cfg.RetryBudgetBurst >= 0 {
		budget = backend.NewRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst)
	}
	workers := make(map[string]*worker, len(cfg.Workers))
	for _, addr := range cfg.Workers {
		w, err := newWorker(cfg, hc, budget, addr)
		if err != nil {
			return nil, err
		}
		workers[addr] = w
	}
	rt := &Router{cfg: cfg, hc: hc, budget: budget, ring: rg, workers: workers, stop: make(chan struct{})}
	if cfg.healthInterval() > 0 {
		rt.loopDone.Add(1)
		go rt.healthLoop(hc)
	}
	return rt, nil
}

// newWorker builds the router's view of one fleet member.
func newWorker(cfg Config, hc *http.Client, budget *backend.RetryBudget, addr string) (*worker, error) {
	rem, err := backend.NewRemote(backend.RemoteConfig{
		Addr:         addr,
		Client:       hc,
		MaxRetries:   cfg.MaxRetries,
		RetryBackoff: cfg.RetryBackoff,
		Budget:       budget,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", addr, err)
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &worker{
		addr:      addr,
		healthURL: strings.TrimRight(base, "/") + "/healthz",
		remote:    rem,
		capacity:  cfg.capacity(),
		cb:        newBreaker(cfg.breaker()),
	}, nil
}

// Workers lists the fleet's current addresses, sorted.
func (rt *Router) Workers() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	addrs := make([]string, 0, len(rt.workers))
	for addr := range rt.workers {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	return addrs
}

// AddWorker joins a worker to the running fleet: the consistent-hash ring
// rebuilds with the new member (≈1/N of stages move to it; everything else
// keeps its assignment), and subsequent batches route on the new ring.
func (rt *Router) AddWorker(addr string) error {
	if rt.closed.Load() {
		return fmt.Errorf("cluster: router is closed")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.workers[addr]; ok {
		return fmt.Errorf("cluster: worker %s is already in the fleet", addr)
	}
	addrs := make([]string, 0, len(rt.workers)+1)
	for a := range rt.workers {
		addrs = append(addrs, a)
	}
	addrs = append(addrs, addr)
	rg, err := newRing(addrs)
	if err != nil {
		return err
	}
	w, err := newWorker(rt.cfg, rt.hc, rt.budget, addr)
	if err != nil {
		return err
	}
	rt.workers[addr] = w
	rt.ring = rg
	rt.rebalanceJoins.Add(1)
	return nil
}

// RemoveWorker removes a worker from the running fleet. The ring rebuilds
// without it immediately — its stages move to their ring successors and it
// stops counting toward ring moves — while batches already dispatched to it
// drain on the old assignment; its connections close once they finish. The
// last worker cannot be removed.
func (rt *Router) RemoveWorker(addr string) error {
	rt.mu.Lock()
	w, ok := rt.workers[addr]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: worker %s is not in the fleet", addr)
	}
	if len(rt.workers) == 1 {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: cannot remove the last worker %s", addr)
	}
	delete(rt.workers, addr)
	addrs := make([]string, 0, len(rt.workers))
	for a := range rt.workers {
		addrs = append(addrs, a)
	}
	rg, err := newRing(addrs)
	if err != nil {
		// Unreachable (non-empty, deduplicated by construction); restore.
		rt.workers[addr] = w
		rt.mu.Unlock()
		return err
	}
	rt.ring = rg
	rt.rebalanceLeaves.Add(1)
	rt.mu.Unlock()

	// Drain: in-flight batches hold their worker and finish on the old
	// assignment; the remote closes only when the last one lands (or the
	// router itself closes).
	rt.drains.Add(1)
	go func() {
		defer rt.drains.Done()
		for w.inflight.Load() > 0 && !rt.closed.Load() {
			time.Sleep(5 * time.Millisecond)
		}
		_ = w.remote.Close()
	}()
	return nil
}

// candidates returns the stage's failover preference list — ring order from
// the owner, admitted (circuit-closed) workers first, ring order preserved
// within each tier — plus the owning address on the current ring. With the
// whole fleet's circuits open the raw ring order is returned: batches still
// try the owner, so a flapping fleet cannot wedge the router.
func (rt *Router) candidates(stageKey string) (cands []*worker, owner string) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var healthy, down []*worker
	for _, addr := range rt.ring.ordered(stageKey) {
		w := rt.workers[addr]
		if w == nil {
			continue // removed mid-iteration; ring and map swap atomically under mu
		}
		if w.isDown() {
			down = append(down, w)
		} else {
			healthy = append(healthy, w)
		}
	}
	return append(healthy, down...), rt.ring.owner(stageKey)
}

// RunBatch routes the batch per the placement rules above.
func (rt *Router) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return backend.BatchResult{}, err
	}
	if rt.closed.Load() {
		return backend.BatchResult{}, fmt.Errorf("cluster: router is closed")
	}

	cands, owner := rt.candidates(spec.StageKey)
	if len(cands) == 0 {
		return backend.BatchResult{}, fmt.Errorf("cluster: no workers in the fleet")
	}
	primary := cands[0]
	if primary.addr != owner {
		rt.ringMoves.Add(1)
	}
	targets := []*worker{primary}
	if primary.inflight.Load() >= int64(rt.cfg.replicateWatermark()) && len(cands) > 1 {
		targets = append(targets, cands[1])
		rt.hotReplications.Add(1)
	}

	// Fan-out width from group structure and live spare capacity — never a
	// static flag. An unsplittable batch serves whole on the primary.
	width := 1
	if len(spec.Groups) > 1 && len(spec.Requests) >= 2 {
		spare := 0
		for _, w := range targets {
			if s := w.capacity - int(w.inflight.Load()); s > 1 {
				spare += s
			} else {
				spare++ // a saturated target still serves at least one part
			}
		}
		if spare < len(spec.Groups) {
			width = spare
		} else {
			width = len(spec.Groups)
		}
	}
	parts, err := backend.SplitByGroups(spec, width)
	if err != nil {
		return backend.BatchResult{}, err
	}

	sp := obs.FromContext(ctx)
	sp.Set("cluster.primary", primary.addr)
	if len(parts) > 1 {
		sp.Set("cluster.fanout", len(parts))
	}

	// Assign parts to the least-loaded target first (live in-flight plus
	// what this batch already assigned).
	assigned := make(map[*worker]int, len(targets))
	pick := func() *worker {
		best := targets[0]
		bestLoad := int(best.inflight.Load()) + assigned[best]
		for _, w := range targets[1:] {
			if load := int(w.inflight.Load()) + assigned[w]; load < bestLoad {
				best, bestLoad = w, load
			}
		}
		assigned[best]++
		return best
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]backend.BatchResult, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		first := pick()
		wg.Add(1)
		go func(i int, part backend.BatchSpec, first *worker) {
			defer wg.Done()
			results[i], errs[i] = rt.runPart(runCtx, part, first, cands)
			if errs[i] != nil {
				cancel() // fail fast: peer parts stop between engine steps
			}
		}(i, part, first)
	}
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		// Prefer the root cause over peers' fail-fast cancellations (same
		// contract as backend.Sharded).
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(firstErr, ctxErr) {
			return backend.BatchResult{}, ctxErr
		}
		return backend.BatchResult{}, firstErr
	}

	sizes := make([]int, len(parts))
	for i, part := range parts {
		sizes[i] = len(part.Requests)
	}
	return backend.MergeBatchResults(results, sizes), nil
}

// runPart serves one part, failing over along the candidate list. first is
// the load-balanced choice; on a transient failure the part walks the
// remaining candidates in ring order. A worker whose circuit breaker denies
// admission is skipped while an admitted candidate remains (the breaker
// itself meters half-open probes); with every circuit open the walk tries
// workers anyway, so a fleet-wide brownout degrades instead of wedging.
// Deterministic worker rejections (4xx) and the caller's own cancellation
// are final.
func (rt *Router) runPart(ctx context.Context, part backend.BatchSpec, first *worker, cands []*worker) (backend.BatchResult, error) {
	order := make([]*worker, 0, len(cands)+1)
	seen := make(map[*worker]bool, len(cands)+1)
	for _, w := range append([]*worker{first}, cands...) {
		if !seen[w] {
			seen[w] = true
			order = append(order, w)
		}
	}
	tried := make(map[*worker]bool, len(order))
	anyClosed := func(from int) bool {
		for _, w := range order[from:] {
			if !tried[w] && !w.cb.isOpen() {
				return true
			}
		}
		return false
	}
	var lastErr error
	for i, w := range order {
		if tried[w] {
			continue
		}
		// Breaker admission: allow() grants closed traffic and metered
		// half-open probes; a denied worker is skipped only while a
		// closed-circuit candidate remains untried.
		if !w.cb.allow() && anyClosed(i+1) {
			continue
		}
		tried[w] = true
		hedge := rt.hedgeTarget(order, tried, i+1)
		res, err := rt.dispatch(ctx, part, w, hedge, tried)
		if err == nil {
			return res, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return backend.BatchResult{}, ctxErr
		}
		var re *backend.RemoteError
		if errors.As(err, &re) && !re.Transient() {
			return backend.BatchResult{}, err
		}
		lastErr = err
	}
	return backend.BatchResult{}, fmt.Errorf("cluster: all %d workers failed for stage part: %w", len(order), lastErr)
}

// hedgeTarget picks the hedge candidate for a dispatch: the first untried
// worker from position from whose circuit is closed (a hedge is a latency
// optimization — it never spends a half-open probe slot).
func (rt *Router) hedgeTarget(order []*worker, tried map[*worker]bool, from int) *worker {
	for _, w := range order[from:] {
		if !tried[w] && !w.cb.isOpen() {
			return w
		}
	}
	return nil
}

// dispatch serves one part on primary, hedging to hedge if no answer lands
// within the hedge delay. The first success wins and the loser is canceled;
// only the winner's result is returned, so accounting never double-charges.
// A hedge launched during the race marks its worker tried in the caller's
// failover walk — its outcome (either way) already fed that worker's
// breaker.
func (rt *Router) dispatch(ctx context.Context, part backend.BatchSpec, primary, hedge *worker, tried map[*worker]bool) (backend.BatchResult, error) {
	delay, ok := rt.hedgeDelay(ctx)
	if hedge == nil || !ok {
		return rt.send(ctx, part, primary)
	}

	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res    backend.BatchResult
		err    error
		hedged bool
	}
	ch := make(chan outcome, 2)
	go func() {
		res, err := rt.send(dctx, part, primary)
		ch <- outcome{res, err, false}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	launched := false
	var firstFail *outcome
	for {
		select {
		case o := <-ch:
			if o.err == nil {
				cancel()
				if launched {
					if o.hedged {
						rt.hedgeWins.Add(1)
					} else {
						rt.hedgesCanceled.Add(1)
					}
				}
				return o.res, nil
			}
			if !launched {
				// Primary failed before the hedge would launch: hedging is
				// for tail latency, failover handles failures.
				return backend.BatchResult{}, o.err
			}
			if firstFail == nil {
				firstFail = &o
				continue // the race partner may still answer
			}
			// Both failed: surface the non-hedged error first (the hedge's
			// failure is usually the same root cause one hop later).
			if firstFail.hedged {
				return backend.BatchResult{}, o.err
			}
			return backend.BatchResult{}, firstFail.err
		case <-timer.C:
			if launched {
				continue
			}
			launched = true
			tried[hedge] = true
			rt.hedgesLaunched.Add(1)
			go func() {
				res, err := rt.send(dctx, part, hedge)
				ch <- outcome{res, err, true}
			}()
		}
	}
}

// hedgeDelay resolves the effective hedge delay for this dispatch, and
// whether hedging applies at all: disabled by config, or suppressed when
// the caller's remaining deadline could not outlive the hedge anyway.
func (rt *Router) hedgeDelay(ctx context.Context) (time.Duration, bool) {
	d := rt.cfg.HedgeAfter
	if d < 0 {
		return 0, false
	}
	if d == 0 {
		if d = rt.latencyP99(); d == 0 {
			d = defaultHedgeDelay
		}
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
		return 0, false
	}
	return d, true
}

// send runs one part on one worker, feeding its circuit breaker: a success
// closes/credits the circuit and lands in the latency reservoir; a
// transient failure counts MarkdownAfter consecutive failures at once
// (the remote already retried). The caller's own death is not the
// worker's fault and is never charged to the breaker.
func (rt *Router) send(ctx context.Context, part backend.BatchSpec, w *worker) (backend.BatchResult, error) {
	w.inflight.Add(1)
	start := time.Now()
	res, err := w.remote.RunBatch(ctx, part)
	w.inflight.Add(-1)
	if err == nil {
		rt.observeLatency(time.Since(start))
		w.cb.record(false, 1)
		return res, nil
	}
	if ctx.Err() == nil {
		var re *backend.RemoteError
		if transient := !errors.As(err, &re) || re.Transient(); transient {
			w.cb.record(true, rt.cfg.markdownAfter())
		}
	}
	return backend.BatchResult{}, err
}

// observeLatency folds one successful batch latency into the reservoir the
// adaptive hedge delay derives its p99 from.
func (rt *Router) observeLatency(d time.Duration) {
	rt.latMu.Lock()
	defer rt.latMu.Unlock()
	if len(rt.lats) < latencyWindow {
		rt.lats = append(rt.lats, d)
		return
	}
	rt.lats[rt.latNext] = d
	rt.latNext = (rt.latNext + 1) % latencyWindow
}

// latencyP99 reports the reservoir's p99 batch latency (0 with no samples).
func (rt *Router) latencyP99() time.Duration {
	rt.latMu.Lock()
	defer rt.latMu.Unlock()
	if len(rt.lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(rt.lats))
	copy(sorted, rt.lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*99 + 99) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// snapshotWorkers copies the live worker set for lock-free iteration.
func (rt *Router) snapshotWorkers() []*worker {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	ws := make([]*worker, 0, len(rt.workers))
	for _, w := range rt.workers {
		ws = append(ws, w)
	}
	return ws
}

// healthLoop probes every worker each HealthInterval: a 200 from /healthz
// counts as a breaker success (closing an open circuit on recovery),
// anything else — including a draining worker's 503 — counts one failure
// toward the breaker's threshold. Open-circuit workers keep being probed;
// the first healthy answer closes the circuit.
func (rt *Router) healthLoop(hc *http.Client) {
	defer rt.loopDone.Done()
	ticker := time.NewTicker(rt.cfg.healthInterval())
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		for _, w := range rt.snapshotWorkers() {
			rt.probe(hc, w)
		}
	}
}

// probe performs one health check against w, feeding its circuit breaker.
func (rt *Router) probe(hc *http.Client, w *worker) {
	// The health loop outlives any one batch; its probes are detached from
	// request contexts by design.
	//llmqlint:detached -- background health loop, bounded by HealthTimeout
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.healthTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.healthURL, nil)
	if err != nil {
		w.cb.record(true, 1)
		return
	}
	resp, err := hc.Do(req)
	if err != nil {
		w.cb.record(true, 1)
		return
	}
	resp.Body.Close()
	w.cb.record(resp.StatusCode != http.StatusOK, 1)
}

// WorkerMetrics is one worker's routing accounting.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type WorkerMetrics struct {
	// Batches/Retries/Errors/BudgetDenied are the worker's
	// backend.RemoteStats; Markdowns counts circuit-open transitions;
	// InFlight is the live dispatched-batch gauge.
	Batches      int64 `json:"batches"`
	Retries      int64 `json:"retries"`
	Errors       int64 `json:"errors"`
	BudgetDenied int64 `json:"budgetDenied"`
	Markdowns    int64 `json:"markdowns"`
	InFlight     int64 `json:"inFlight"`
	// Down reports a non-closed circuit; Breaker names the state exactly.
	Down    bool         `json:"down"`
	Breaker BreakerState `json:"breaker"`
}

// Metrics is the router's fleet accounting, folded into runtime.Metrics and
// the Prometheus exposition.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type Metrics struct {
	// Workers maps worker address to its counters (current fleet members
	// only; a removed worker's counters leave with it).
	Workers map[string]WorkerMetrics `json:"workers"`
	// RingMoves counts batches served off their ring owner (failover);
	// HotReplications counts batches that added a replica target because
	// the primary was saturated.
	RingMoves       int64 `json:"ringMoves"`
	HotReplications int64 `json:"hotReplications"`
	// HedgesLaunched counts hedge dispatches; HedgeWins the races the hedge
	// answered first; HedgesCanceled the races the primary won after the
	// hedge launched. Wins + canceled ≤ launched (races whose winner was an
	// error resolve as neither).
	HedgesLaunched int64 `json:"hedgesLaunched"`
	HedgeWins      int64 `json:"hedgeWins"`
	HedgesCanceled int64 `json:"hedgesCanceled"`
	// RebalanceJoins / RebalanceLeaves count live fleet membership changes.
	RebalanceJoins  int64 `json:"rebalanceJoins"`
	RebalanceLeaves int64 `json:"rebalanceLeaves"`
}

// Metrics snapshots the fleet counters.
func (rt *Router) Metrics() Metrics {
	rt.mu.RLock()
	ws := make(map[string]WorkerMetrics, len(rt.workers))
	for addr, w := range rt.workers {
		rs := w.remote.Stats()
		state, opens := w.cb.snapshot()
		ws[addr] = WorkerMetrics{
			Batches:      rs.Batches,
			Retries:      rs.Retries,
			Errors:       rs.Errors,
			BudgetDenied: rs.BudgetDenied,
			Markdowns:    opens,
			InFlight:     w.inflight.Load(),
			Down:         state != BreakerClosed,
			Breaker:      state,
		}
	}
	rt.mu.RUnlock()
	return Metrics{
		Workers:         ws,
		RingMoves:       rt.ringMoves.Load(),
		HotReplications: rt.hotReplications.Load(),
		HedgesLaunched:  rt.hedgesLaunched.Load(),
		HedgeWins:       rt.hedgeWins.Load(),
		HedgesCanceled:  rt.hedgesCanceled.Load(),
		RebalanceJoins:  rt.rebalanceJoins.Load(),
		RebalanceLeaves: rt.rebalanceLeaves.Load(),
	}
}

// Close stops the health loop, waits for removed-worker drains, and closes
// every worker connection. Worker processes are not owned by the router and
// keep serving.
func (rt *Router) Close() error {
	rt.closed.Store(true)
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.loopDone.Wait()
	rt.drains.Wait()
	var firstErr error
	for _, w := range rt.snapshotWorkers() {
		if err := w.remote.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
