package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/obs"
)

// Config sizes a Router.
type Config struct {
	// Workers are the fleet's /v1/batch addresses ("host:port" or full
	// URLs). At least one is required.
	Workers []string
	// Capacity is a worker's nominal concurrent-batch budget, the unit the
	// fan-out and hot-replication decisions are made in (default 4).
	Capacity int
	// ReplicateWatermark is the in-flight batch count at which a stage's
	// primary counts as saturated and the batch also considers the next
	// ring node (default: Capacity).
	ReplicateWatermark int
	// HealthInterval is the period between health sweeps (default 2s;
	// negative disables the health loop — workers are then only marked
	// down by failed batches).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 500ms).
	HealthTimeout time.Duration
	// MarkdownAfter is how many consecutive probe/batch failures mark a
	// worker down (default 2; a failed batch counts MarkdownAfter at once,
	// since it already survived the remote backend's own retries).
	MarkdownAfter int
	// MaxRetries / RetryBackoff configure each worker's backend.Remote
	// (see backend.RemoteConfig); failover to the next ring node happens
	// only after a worker exhausts these.
	MaxRetries   int
	RetryBackoff time.Duration
	// HTTPClient is shared by batch dispatch and health probes; nil builds
	// a default client.
	HTTPClient *http.Client
}

func (c Config) capacity() int {
	if c.Capacity > 0 {
		return c.Capacity
	}
	return 4
}

func (c Config) replicateWatermark() int {
	if c.ReplicateWatermark > 0 {
		return c.ReplicateWatermark
	}
	return c.capacity()
}

func (c Config) healthInterval() time.Duration {
	if c.HealthInterval != 0 {
		return c.HealthInterval
	}
	return 2 * time.Second
}

func (c Config) healthTimeout() time.Duration {
	if c.HealthTimeout > 0 {
		return c.HealthTimeout
	}
	return 500 * time.Millisecond
}

func (c Config) markdownAfter() int {
	if c.MarkdownAfter > 0 {
		return c.MarkdownAfter
	}
	return 2
}

// worker is the router's view of one fleet member.
type worker struct {
	addr      string
	healthURL string
	remote    *backend.Remote
	capacity  int

	inflight  atomic.Int64 // batches currently dispatched to this worker
	markdowns atomic.Int64 // up→down transitions

	mu       sync.Mutex
	down     bool // guarded by mu
	failures int  // guarded by mu
}

func (w *worker) isDown() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.down
}

// noteFailure records n consecutive failures and marks the worker down at
// the threshold; it reports whether this call made the up→down transition.
func (w *worker) noteFailure(n, markdownAfter int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failures += n
	if w.failures >= markdownAfter && !w.down {
		w.down = true
		w.markdowns.Add(1)
		return true
	}
	return false
}

// noteSuccess resets the failure streak and marks the worker back up.
func (w *worker) noteSuccess() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failures = 0
	w.down = false
}

// Router is the cluster Backend: it consistent-hashes each batch's StageKey
// onto the worker ring so persistent engines stay stage-affine fleet-wide,
// fans a grouped batch out across workers sized by live capacity, and
// degrades — not fails — when workers die or drain.
//
// Placement per batch:
//
//  1. The ring names the stage's owner; a health-marked-down owner fails
//     over to the next distinct ring node (counted as a ring move), so a
//     draining worker's stages land deterministically on its successor.
//  2. If the primary is saturated (in-flight ≥ ReplicateWatermark) the next
//     ring node joins as a replica target (counted as a hot replication):
//     the stage's prefix warms on a second node, trading one extra warm-up
//     for parallelism — the dynamic version of backend.Sharded's static
//     fan-out.
//  3. Fan-out width is min(group count, live spare capacity across the
//     chosen targets), never a static flag: the batch splits along its
//     prefix-group boundaries (backend.SplitByGroups) and parts go to the
//     least-loaded target first.
//  4. A part whose worker fails (after backend.Remote's own retries) marks
//     that worker down and retries on the next ring node; deterministic 4xx
//     rejections and the caller's own cancellation do not fail over.
//
// Results merge with backend.MergeBatchResults, so accounting is conserved:
// each part's tokens and calls count exactly once however many workers were
// tried.
type Router struct {
	ring    *ring
	workers map[string]*worker // immutable after construction
	cfg     Config

	ringMoves       atomic.Int64
	hotReplications atomic.Int64

	closed   atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	loopDone sync.WaitGroup
}

var _ backend.Backend = (*Router)(nil)

// NewRouter builds the router and starts its health loop.
func NewRouter(cfg Config) (*Router, error) {
	rg, err := newRing(cfg.Workers)
	if err != nil {
		return nil, err
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	workers := make(map[string]*worker, len(cfg.Workers))
	for _, addr := range cfg.Workers {
		rem, err := backend.NewRemote(backend.RemoteConfig{
			Addr:         addr,
			Client:       hc,
			MaxRetries:   cfg.MaxRetries,
			RetryBackoff: cfg.RetryBackoff,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %s: %w", addr, err)
		}
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		workers[addr] = &worker{
			addr:      addr,
			healthURL: strings.TrimRight(base, "/") + "/healthz",
			remote:    rem,
			capacity:  cfg.capacity(),
		}
	}
	rt := &Router{ring: rg, workers: workers, cfg: cfg, stop: make(chan struct{})}
	if cfg.healthInterval() > 0 {
		rt.loopDone.Add(1)
		go rt.healthLoop(hc)
	}
	return rt, nil
}

// Workers lists the fleet's addresses, sorted.
func (rt *Router) Workers() []string {
	addrs := make([]string, 0, len(rt.workers))
	for addr := range rt.workers {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	return addrs
}

// candidates returns the stage's failover preference list: ring order from
// the owner, healthy workers first (ring order preserved within each tier).
// With the whole fleet marked down the raw ring order is returned — batches
// still try the owner, so a flapping health check cannot wedge the router.
func (rt *Router) candidates(stageKey string) []*worker {
	var healthy, down []*worker
	for _, addr := range rt.ring.ordered(stageKey) {
		w := rt.workers[addr]
		if w.isDown() {
			down = append(down, w)
		} else {
			healthy = append(healthy, w)
		}
	}
	return append(healthy, down...)
}

// RunBatch routes the batch per the placement rules above.
func (rt *Router) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return backend.BatchResult{}, err
	}
	if rt.closed.Load() {
		return backend.BatchResult{}, fmt.Errorf("cluster: router is closed")
	}

	cands := rt.candidates(spec.StageKey)
	primary := cands[0]
	if primary.addr != rt.ring.owner(spec.StageKey) {
		rt.ringMoves.Add(1)
	}
	targets := []*worker{primary}
	if primary.inflight.Load() >= int64(rt.cfg.replicateWatermark()) && len(cands) > 1 {
		targets = append(targets, cands[1])
		rt.hotReplications.Add(1)
	}

	// Fan-out width from group structure and live spare capacity — never a
	// static flag. An unsplittable batch serves whole on the primary.
	width := 1
	if len(spec.Groups) > 1 && len(spec.Requests) >= 2 {
		spare := 0
		for _, w := range targets {
			if s := w.capacity - int(w.inflight.Load()); s > 1 {
				spare += s
			} else {
				spare++ // a saturated target still serves at least one part
			}
		}
		if spare < len(spec.Groups) {
			width = spare
		} else {
			width = len(spec.Groups)
		}
	}
	parts, err := backend.SplitByGroups(spec, width)
	if err != nil {
		return backend.BatchResult{}, err
	}

	sp := obs.FromContext(ctx)
	sp.Set("cluster.primary", primary.addr)
	if len(parts) > 1 {
		sp.Set("cluster.fanout", len(parts))
	}

	// Assign parts to the least-loaded target first (live in-flight plus
	// what this batch already assigned).
	assigned := make(map[*worker]int, len(targets))
	pick := func() *worker {
		best := targets[0]
		bestLoad := int(best.inflight.Load()) + assigned[best]
		for _, w := range targets[1:] {
			if load := int(w.inflight.Load()) + assigned[w]; load < bestLoad {
				best, bestLoad = w, load
			}
		}
		assigned[best]++
		return best
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]backend.BatchResult, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		first := pick()
		wg.Add(1)
		go func(i int, part backend.BatchSpec, first *worker) {
			defer wg.Done()
			results[i], errs[i] = rt.runPart(runCtx, part, first, cands)
			if errs[i] != nil {
				cancel() // fail fast: peer parts stop between engine steps
			}
		}(i, part, first)
	}
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		// Prefer the root cause over peers' fail-fast cancellations (same
		// contract as backend.Sharded).
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(firstErr, ctxErr) {
			return backend.BatchResult{}, ctxErr
		}
		return backend.BatchResult{}, firstErr
	}

	sizes := make([]int, len(parts))
	for i, part := range parts {
		sizes[i] = len(part.Requests)
	}
	return backend.MergeBatchResults(results, sizes), nil
}

// runPart serves one part, failing over along the candidate list. first is
// the load-balanced choice; on a transient failure the part walks the
// remaining candidates in ring order. Deterministic worker rejections (4xx)
// and the caller's own cancellation are final.
func (rt *Router) runPart(ctx context.Context, part backend.BatchSpec, first *worker, cands []*worker) (backend.BatchResult, error) {
	tried := make(map[*worker]bool, len(cands))
	var lastErr error
	for _, w := range append([]*worker{first}, cands...) {
		if tried[w] {
			continue
		}
		tried[w] = true
		w.inflight.Add(1)
		res, err := w.remote.RunBatch(ctx, part)
		w.inflight.Add(-1)
		if err == nil {
			w.noteSuccess()
			return res, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return backend.BatchResult{}, ctxErr
		}
		var re *backend.RemoteError
		if errors.As(err, &re) && !re.Transient() {
			return backend.BatchResult{}, err
		}
		// Connect errors and 5xx after the remote's own retries: mark the
		// worker down immediately and fail over to the next ring node.
		w.noteFailure(rt.cfg.markdownAfter(), rt.cfg.markdownAfter())
		lastErr = err
	}
	return backend.BatchResult{}, fmt.Errorf("cluster: all %d workers failed for stage part: %w", len(cands), lastErr)
}

// healthLoop probes every worker each HealthInterval: a 200 from /healthz
// marks it up (clearing any failure streak), anything else — including a
// draining worker's 503 — counts toward MarkdownAfter. Marked-down workers
// keep being probed and recover on the first healthy answer.
func (rt *Router) healthLoop(hc *http.Client) {
	defer rt.loopDone.Done()
	ticker := time.NewTicker(rt.cfg.healthInterval())
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		for _, w := range rt.workers {
			rt.probe(hc, w)
		}
	}
}

// probe performs one health check against w.
func (rt *Router) probe(hc *http.Client, w *worker) {
	// The health loop outlives any one batch; its probes are detached from
	// request contexts by design.
	//llmqlint:detached -- background health loop, bounded by HealthTimeout
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.healthTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.healthURL, nil)
	if err != nil {
		w.noteFailure(1, rt.cfg.markdownAfter())
		return
	}
	resp, err := hc.Do(req)
	if err != nil {
		w.noteFailure(1, rt.cfg.markdownAfter())
		return
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		w.noteSuccess()
	} else {
		w.noteFailure(1, rt.cfg.markdownAfter())
	}
}

// WorkerMetrics is one worker's routing accounting.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type WorkerMetrics struct {
	// Batches/Retries/Errors are the worker's backend.RemoteStats; Markdowns
	// counts up→down health transitions; InFlight is the live dispatched-
	// batch gauge.
	Batches   int64 `json:"batches"`
	Retries   int64 `json:"retries"`
	Errors    int64 `json:"errors"`
	Markdowns int64 `json:"markdowns"`
	InFlight  int64 `json:"inFlight"`
	Down      bool  `json:"down"`
}

// Metrics is the router's fleet accounting, folded into runtime.Metrics and
// the Prometheus exposition.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type Metrics struct {
	// Workers maps worker address to its counters.
	Workers map[string]WorkerMetrics `json:"workers"`
	// RingMoves counts batches served off their ring owner (failover);
	// HotReplications counts batches that added a replica target because
	// the primary was saturated.
	RingMoves       int64 `json:"ringMoves"`
	HotReplications int64 `json:"hotReplications"`
}

// Metrics snapshots the fleet counters.
func (rt *Router) Metrics() Metrics {
	ws := make(map[string]WorkerMetrics, len(rt.workers))
	for addr, w := range rt.workers {
		rs := w.remote.Stats()
		ws[addr] = WorkerMetrics{
			Batches:   rs.Batches,
			Retries:   rs.Retries,
			Errors:    rs.Errors,
			Markdowns: w.markdowns.Load(),
			InFlight:  w.inflight.Load(),
			Down:      w.isDown(),
		}
	}
	return Metrics{
		Workers:         ws,
		RingMoves:       rt.ringMoves.Load(),
		HotReplications: rt.hotReplications.Load(),
	}
}

// Close stops the health loop and closes every worker connection. Worker
// processes are not owned by the router and keep serving.
func (rt *Router) Close() error {
	rt.closed.Store(true)
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.loopDone.Wait()
	var firstErr error
	for _, w := range rt.workers {
		if err := w.remote.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
