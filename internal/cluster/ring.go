// Package cluster turns one llmqserve into a fleet: a consistent-hash
// router (Router) that keeps batches stage-affine across worker processes,
// so each hot stage's KV cache warms on exactly one node fleet-wide, plus
// the name resolution (Resolve) both CLIs share.
//
// The seam is the existing backend contract: workers expose their local
// Backend over POST /v1/batch (internal/server), the router speaks it via
// backend.Remote, and the query layers above notice nothing — answers are
// content-keyed above the seam, so routed relations are byte-identical to
// single-process ones.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodes is how many ring points each worker contributes. 64 keeps the
// per-worker key share within a few percent of uniform at fleet sizes this
// router targets (units to tens of workers) while keeping the ring tiny.
const vnodes = 64

// ring is an immutable consistent-hash ring over worker addresses. Stage
// keys hash onto the same circle as the workers' virtual nodes; a key is
// owned by the first virtual node clockwise from it. Adding or removing one
// worker moves only ~1/N of the keys — the property that keeps persistent
// engines stage-affine across fleet changes.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	addr string
}

// newRing builds the ring for the given worker addresses. Duplicate
// addresses are an error: they would silently double a worker's key share.
func newRing(addrs []string) (*ring, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one worker")
	}
	seen := make(map[string]bool, len(addrs))
	points := make([]ringPoint, 0, len(addrs)*vnodes)
	for _, addr := range addrs {
		if addr == "" {
			return nil, fmt.Errorf("cluster: empty worker address")
		}
		if seen[addr] {
			return nil, fmt.Errorf("cluster: duplicate worker address %q", addr)
		}
		seen[addr] = true
		for i := 0; i < vnodes; i++ {
			points = append(points, ringPoint{
				hash: ringHash(fmt.Sprintf("%s#%d", addr, i)),
				addr: addr,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].addr < points[j].addr // deterministic under collisions
	})
	return &ring{points: points}, nil
}

// ringHash hashes a ring label (vnode name or stage key) to its circle
// position. Raw FNV-1a has poor avalanche on short strings differing only in
// a suffix — a worker's vnodes would cluster into one arc and ownership
// degenerates — so the sum is pushed through a 64-bit finalizer
// (MurmurHash3's fmix64) to spread the points uniformly.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// owner returns the worker owning key: the first virtual node at or after
// the key's hash, wrapping around.
func (r *ring) owner(key string) string {
	return r.points[r.start(key)].addr
}

// ordered returns every distinct worker in ring order starting from key's
// owner — the failover preference list: index 0 is the owner, index 1 the
// node a drained or dead owner's keys fall to.
func (r *ring) ordered(key string) []string {
	start := r.start(key)
	var addrs []string
	seen := make(map[string]bool)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.addr] {
			continue
		}
		seen[p.addr] = true
		addrs = append(addrs, p.addr)
	}
	return addrs
}

// start locates the first ring point at or after key's hash.
func (r *ring) start(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
