// Chaos conformance suite: the correctness bar under injected faults. For
// every fault profile the fleet must return relations byte-identical to the
// fault-free single-process oracle with conserved model-call accounting —
// faults may cost retries, failovers, and hedges, never answers.
package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/server"
)

// chaosProfiles are the wire-fault mixes driven through the router's HTTP
// client. Every profile is seeded (deterministic replay) and bounded (count=
// or probability + retries) so each statement eventually lands.
var chaosProfiles = []struct {
	name string
	spec string
}{
	{"latency-spikes", "seed=11;latency:delay=30ms:p=0.5"},
	{"5xx-burst", "seed=12;5xx:count=4"},
	{"conn-errors", "seed=13;conn:p=0.4:count=6"},
	{"corrupt-bodies", "seed=14;corrupt:count=3"},
	{"hang-capped", "seed=15;hang:delay=40ms:count=2"},
	{"mixed-storm", "seed=16;latency:delay=10ms:p=0.3;5xx:count=2;conn:count=2;corrupt:count=1"},
}

// chaosConfig is the router tuning shared by the conformance runs: fast
// retries, no background probes (the faults are the only failure source).
func chaosConfig() cluster.Config {
	return cluster.Config{
		HealthInterval: -1,
		MaxRetries:     3,
		RetryBackoff:   time.Millisecond,
	}
}

// TestChaosConformance runs the full statement set through a 3-worker fleet
// under each fault profile and diffs rows, columns, and model-call counts
// against the fault-free oracle.
func TestChaosConformance(t *testing.T) {
	for _, prof := range chaosProfiles {
		t.Run(prof.name, func(t *testing.T) {
			inj, err := faults.Parse(prof.spec)
			if err != nil {
				t.Fatalf("parse %q: %v", prof.spec, err)
			}
			cfg := chaosConfig()
			cfg.HTTPClient = &http.Client{Transport: faults.NewRoundTripper(nil, inj)}
			rt, _ := newCluster(t, 3, func() backend.Backend { return backend.NewSim() }, cfg)

			for _, sql := range clusterStatements {
				want := execWith(t, nil, sql) // fault-free single-process oracle
				got := execWith(t, rt, sql)
				if fmt.Sprint(got.Columns) != fmt.Sprint(want.Columns) {
					t.Errorf("%q: columns differ under %s", sql, prof.name)
				}
				if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
					t.Errorf("%q: rows differ under %s\nwant %v\ngot  %v", sql, prof.name, want.Rows, got.Rows)
				}
				if got.LLMCalls != want.LLMCalls {
					t.Errorf("%q: model calls = %d, oracle made %d (accounting not conserved under %s)",
						sql, got.LLMCalls, want.LLMCalls, prof.name)
				}
			}

			st := inj.Stats()
			if st.Injected == 0 {
				t.Errorf("profile %s injected no faults — the run proved nothing", prof.name)
			}
			t.Logf("profile %s: %d events, %d injected (latency=%d 5xx=%d conn=%d corrupt=%d hang=%d)",
				prof.name, st.Events, st.Injected, st.Latency, st.Err5xx, st.Conn, st.Corrupt, st.Hang)
		})
	}
}

// TestChaosDeterministicInjection: two identical chaos runs draw identical
// fault sequences — the replay property operators rely on to reproduce a
// chaos failure from its spec.
func TestChaosDeterministicInjection(t *testing.T) {
	run := func() faults.Stats {
		inj, err := faults.Parse("seed=99;5xx:count=3;latency:delay=5ms:p=0.5")
		if err != nil {
			t.Fatal(err)
		}
		cfg := chaosConfig()
		cfg.HTTPClient = &http.Client{Transport: faults.NewRoundTripper(nil, inj)}
		rt, _ := newCluster(t, 2, func() backend.Backend { return backend.NewSim() }, cfg)
		if _, err := rt.RunBatch(t.Context(), clusterSpec("replay-stage", []int{4, 4}, 16, 4)); err != nil {
			t.Fatal(err)
		}
		return inj.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical chaos runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestChaosCrashedWorkerBreakerOpens: one worker of three is crash-latched
// via the server-side middleware (connection aborts, indistinguishable from
// a killed process). Statements stay byte-identical, the crashed worker's
// circuit opens, and the fleet reports it down. Hedging is off so the
// crashed primary's failure is always observed (a winning hedge would
// cancel it first and mask the markdown — that race has its own tests).
func TestChaosCrashedWorkerBreakerOpens(t *testing.T) {
	crashInj, err := faults.Parse("seed=7;crash")
	if err != nil {
		t.Fatal(err)
	}

	var srvs []*httptest.Server
	var crashed string
	cfg := chaosConfig()
	cfg.HedgeAfter = -1
	for i := 0; i < 3; i++ {
		wk := server.NewWorker(backend.NewSim(), nil)
		var h http.Handler = server.NewWithConfig(server.Config{Worker: wk})
		if i == 0 {
			h = faults.Middleware(crashInj, h)
		}
		srv := httptest.NewServer(h)
		defer srv.Close()
		srvs = append(srvs, srv)
		cfg.Workers = append(cfg.Workers, srv.URL)
		if i == 0 {
			crashed = srv.URL
		}
	}
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Two passes over a spray of distinct stages (enough that the crashed
	// worker owns some): the first discovers the crash inline (failover
	// inside the batch), the second routes with the circuit already open —
	// the owner is demoted in candidate order, which is what RingMoves
	// counts.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 16; i++ {
			spec := clusterSpec(fmt.Sprintf("crash-stage-%d", i), []int{1}, 16, 4)
			if _, err := rt.RunBatch(context.Background(), spec); err != nil {
				t.Fatalf("pass %d stage %d: batch lost to the crashed worker: %v", pass, i, err)
			}
		}
	}
	// Byte-identity with the crashed worker still in the fleet and its
	// circuit open.
	for _, sql := range clusterStatements {
		want := execWith(t, nil, sql)
		got := execWith(t, rt, sql)
		if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) || got.LLMCalls != want.LLMCalls {
			t.Errorf("%q: diverged with a crashed worker in the fleet", sql)
		}
	}

	m := rt.Metrics()
	wm := m.Workers[crashed]
	if !wm.Down || wm.Breaker == cluster.BreakerClosed {
		t.Errorf("crashed worker breaker = %s down = %v, want open/true", wm.Breaker, wm.Down)
	}
	if wm.Markdowns == 0 {
		t.Error("crashed worker's circuit never opened")
	}
	if m.RingMoves == 0 {
		t.Error("no ring moves recorded: the crashed worker's stages never failed over")
	}
	if st := crashInj.Stats(); st.Crash == 0 {
		t.Error("crash middleware never fired")
	}
}
