package cluster

import (
	"fmt"
	"testing"
)

// TestRingStability pins the consistent-hash property the stage-affine tier
// rests on: growing the fleet by one worker moves only the keys the new
// worker claims (~1/N of them), and every moved key lands on the newcomer —
// no existing stage is shuffled between surviving workers.
func TestRingStability(t *testing.T) {
	old3 := []string{"w1:8080", "w2:8080", "w3:8080"}
	r3, err := newRing(old3)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := newRing(append(append([]string{}, old3...), "w4:8080"))
	if err != nil {
		t.Fatal(err)
	}

	const keys = 1000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("stage-%d", i)
		before, after := r3.owner(key), r4.owner(key)
		if before == after {
			continue
		}
		moved++
		if after != "w4:8080" {
			t.Errorf("key %q moved %s -> %s: moved keys must land on the new worker", key, before, after)
		}
	}
	// Ideal movement is 1/4 of the keys; allow generous slack for hash
	// variance but reject anything near a full reshuffle.
	if frac := float64(moved) / keys; frac > 0.45 {
		t.Errorf("adding one worker moved %.0f%% of keys, want ~25%%", frac*100)
	}
	if moved == 0 {
		t.Error("adding a worker moved no keys: the newcomer would stay idle")
	}
	t.Logf("moved %d/%d keys (%.1f%%)", moved, keys, float64(moved)/keys*100)
}

// TestRingOrdered: the failover preference list starts at the owner, covers
// every distinct worker exactly once, and is stable per key.
func TestRingOrdered(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1", "d:1"}
	r, err := newRing(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("stage-%d", i)
		got := r.ordered(key)
		if len(got) != len(addrs) {
			t.Fatalf("ordered(%q) has %d workers, want %d", key, len(got), len(addrs))
		}
		if got[0] != r.owner(key) {
			t.Errorf("ordered(%q)[0] = %s, owner = %s", key, got[0], r.owner(key))
		}
		seen := map[string]bool{}
		for _, a := range got {
			if seen[a] {
				t.Errorf("ordered(%q) repeats %s", key, a)
			}
			seen[a] = true
		}
		if again := r.ordered(key); fmt.Sprint(again) != fmt.Sprint(got) {
			t.Errorf("ordered(%q) is not stable: %v vs %v", key, got, again)
		}
	}
}

// TestRingConstructionErrors: empty fleets, empty addresses, and duplicates
// are configuration mistakes, not runtime surprises.
func TestRingConstructionErrors(t *testing.T) {
	for _, addrs := range [][]string{
		nil,
		{""},
		{"w1:8080", "w1:8080"},
	} {
		if _, err := newRing(addrs); err == nil {
			t.Errorf("newRing(%q) succeeded, want error", addrs)
		}
	}
}
