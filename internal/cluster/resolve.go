package cluster

import (
	"fmt"

	"repro/internal/backend"
)

// Resolve is the fleet-aware backend resolver both CLIs share: the name
// "remote" builds a Router over the given worker addresses, and every other
// name delegates to backend.ByNameShards — one source of truth, so the
// local and distributed flag surfaces cannot drift apart.
//
// shards composes only with local backends: the router picks its fan-out
// width per batch from group structure and live worker capacity, so a
// static shard count is rejected rather than silently ignored.
//
// cfg carries router tuning (hedge delay, breaker thresholds, a chaos
// HTTPClient, ...); its Workers field is overridden by the workers
// argument. The zero Config is the production default.
func Resolve(name string, shards int, workers []string, cfg Config) (backend.Backend, error) {
	if name == "remote" {
		if len(workers) == 0 {
			return nil, fmt.Errorf("cluster: backend %q needs worker addresses: pass -cluster-workers host:port,...", name)
		}
		if shards > 1 {
			return nil, fmt.Errorf("cluster: -shards does not compose with backend %q: the router picks fan-out per batch from groups and live capacity", name)
		}
		cfg.Workers = workers
		return NewRouter(cfg)
	}
	if len(workers) > 0 {
		return nil, fmt.Errorf("cluster: -cluster-workers only composes with -backend remote, got %q", name)
	}
	return backend.ByNameShards(name, shards)
}
