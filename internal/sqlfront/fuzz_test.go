package sqlfront

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseSQL drives the LLM-SQL parser with arbitrary byte strings. The
// parser's contract is total: any input either yields a *Query or an error —
// never a panic, never an unbounded loop — and on success the printed form
// must itself re-parse (the AST the binder and planner consume is closed
// under String/Parse). CI runs this briefly on every push
// (-fuzztime=10s); longer local runs: go test -fuzz=FuzzParseSQL ./internal/sqlfront
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"",
		"SELECT a, b FROM t",
		"SELECT LLM('Summarize: ', reviewcontent, movieinfo) FROM movies",
		`SELECT movietitle FROM movies WHERE LLM('Suitable for kids?', movieinfo, genres) = 'Yes'`,
		`SELECT a FROM t WHERE LLM('sentiment?', a) <> 'POSITIVE'`,
		`SELECT AVG(LLM('Rate 1-5', reviewcontent)) AS AverageScore FROM movies`,
		`SELECT COUNT(*) AS n, SUM(price), MIN(name), MAX(LLM('Rate', text)) FROM t`,
		`SELECT a FROM t WHERE a = 'x' OR b <> 'y' AND NOT LLM('p', c) = 'Yes'`,
		`SELECT a FROM t JOIN u ON t.id = u.id WHERE u.n >= 3 ORDER BY a DESC LIMIT 5`,
		`SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1`,
		"SELECT 'unterminated",
		"SELECT ((((((((((a))))))))))",
		"SELECT \x00 FROM \xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input: fine, as long as we got here
		}
		if q == nil {
			t.Fatalf("Parse(%q) = nil, nil", src)
		}
		// Round-trip: the printed form of an accepted query must re-parse.
		// (Printed forms are normalized, so we only require acceptance, not
		// that a second print is byte-identical to the first.)
		printed := q.String()
		if !utf8.ValidString(printed) && utf8.ValidString(src) {
			t.Fatalf("Parse(%q).String() is not valid UTF-8: %q", src, printed)
		}
		if _, err := Parse(printed); err != nil {
			t.Fatalf("re-parse of printed form failed\n src: %q\nprinted: %q\n err: %v", src, printed, err)
		}
		if strings.TrimSpace(printed) == "" {
			t.Fatalf("Parse(%q) accepted but prints empty", src)
		}
	})
}
