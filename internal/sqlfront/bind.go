package sqlfront

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/table"
)

// scope is a statement's resolved FROM clause: every referenced table, its
// effective name, and the canonical column namespace of the joined working
// relation. Single-table statements keep bare column names; join statements
// qualify every working-relation column as "alias.column" so two tables may
// share column names without collision.
type scope struct {
	multi   bool
	tables  []scopedTable
	tableOf map[string]int // canonical column name -> FROM index
}

type scopedTable struct {
	name  string // registered table name
	alias string // effective name: the AS alias, or the table name
	tbl   *table.Table
}

// scopeFor resolves a parsed FROM clause against the registry. The table
// pointers and the returned registry version are read under one lock, so the
// scope is a consistent snapshot: later Register calls do not disturb it.
func (db *DB) scopeFor(q *Query) (*scope, uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sc := &scope{multi: len(q.From) > 1, tableOf: map[string]int{}}
	seen := map[string]int{}
	for i, ref := range q.From {
		t, ok := db.tables[ref.Table]
		if !ok {
			return nil, 0, fmt.Errorf("sql: table %q is not registered (%s)", ref.Table, db.registeredListLocked())
		}
		alias := ref.Name()
		if j, dup := seen[alias]; dup {
			return nil, 0, fmt.Errorf("sql: duplicate table name %q in FROM (tables %d and %d); disambiguate with AS", alias, j+1, i+1)
		}
		seen[alias] = i
		sc.tables = append(sc.tables, scopedTable{name: ref.Table, alias: alias, tbl: t})
	}
	for i, st := range sc.tables {
		for _, col := range st.tbl.Columns() {
			sc.tableOf[sc.canonical(i, col)] = i
		}
	}
	return sc, db.version, nil
}

// registeredListLocked needs db.mu held (either mode).
func (db *DB) registeredListLocked() string {
	if len(db.tables) == 0 {
		return "no tables registered"
	}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return "registered: " + strings.Join(names, ", ")
}

// canonical is the working-relation name of table i's column col.
func (sc *scope) canonical(i int, col string) string {
	if !sc.multi {
		return col
	}
	return sc.tables[i].alias + "." + col
}

// byAlias finds the FROM index of an effective table name.
func (sc *scope) byAlias(alias string) (int, bool) {
	for i, t := range sc.tables {
		if t.alias == alias {
			return i, true
		}
	}
	return 0, false
}

// resolve maps a reference to its canonical working-relation column name and
// owning FROM index. limit bounds the visible FROM prefix (len(sc.tables)
// for full scope); ON conditions use it so a join cannot reference tables
// joined later.
func (sc *scope) resolve(ref ColRef, limit int, ctx string) (string, int, error) {
	if ref.Qualifier != "" {
		i, ok := sc.byAlias(ref.Qualifier)
		if !ok || i >= limit {
			return "", 0, fmt.Errorf("sql: unknown table %q in reference %s%s", ref.Qualifier, ref.display(), ctx)
		}
		if _, ok := sc.tables[i].tbl.ColIndex(ref.Column); !ok {
			return "", 0, fmt.Errorf("sql: table %q has no column %q%s", ref.Qualifier, ref.Column, ctx)
		}
		return sc.canonical(i, ref.Column), i, nil
	}
	found := -1
	for i := 0; i < limit; i++ {
		if _, ok := sc.tables[i].tbl.ColIndex(ref.Column); ok {
			if found >= 0 {
				return "", 0, fmt.Errorf("sql: ambiguous column %q (in %s and %s)%s; qualify it",
					ref.Column, sc.tables[found].alias, sc.tables[i].alias, ctx)
			}
			found = i
		}
	}
	if found < 0 {
		return "", 0, fmt.Errorf("sql: unknown column %q%s", ref.Column, ctx)
	}
	return sc.canonical(found, ref.Column), found, nil
}

// lookupFor returns a column-index function resolving canonical names
// against table i's base relation (used to evaluate predicates pushed below
// the join).
func (sc *scope) lookupFor(i int) func(string) (int, bool) {
	t := sc.tables[i].tbl
	if !sc.multi {
		return t.ColIndex
	}
	prefix := sc.tables[i].alias + "."
	return func(name string) (int, bool) {
		if !strings.HasPrefix(name, prefix) {
			return 0, false
		}
		return t.ColIndex(name[len(prefix):])
	}
}

// boundJoin is one resolved ON condition: the canonical column of the
// relation accumulated so far and the base-table column index of the newly
// joined table.
type boundJoin struct {
	outer string
	inner int
}

// bind resolves every column reference of q in place to its canonical
// working-relation name (qualifiers fold into the column name), expands
// alias.* field expressions, drops duplicate LLM fields, and resolves the
// join conditions. ORDER BY is left untouched: it names an output column of
// the statement, which exists only after execution.
func bind(q *Query, sc *scope) ([]boundJoin, error) {
	joins := make([]boundJoin, 0, len(q.From)-1)
	for i := 1; i < len(q.From); i++ {
		on := q.From[i].On
		lCanon, lIdx, err := sc.resolve(on.Left, i+1, " in ON")
		if err != nil {
			return nil, err
		}
		rCanon, rIdx, err := sc.resolve(on.Right, i+1, " in ON")
		if err != nil {
			return nil, err
		}
		// Normalize so outer references the accumulated relation and inner
		// the newly joined table.
		outer, innerCanon := lCanon, rCanon
		outerIdx, innerIdx := lIdx, rIdx
		if lIdx == i {
			outer, innerCanon = rCanon, lCanon
			outerIdx, innerIdx = rIdx, lIdx
		}
		if innerIdx != i || outerIdx == i {
			return nil, fmt.Errorf("sql: ON condition %s = %s must link table %q to a table before it in FROM",
				on.Left.display(), on.Right.display(), q.From[i].Name())
		}
		base := strings.TrimPrefix(innerCanon, sc.tables[i].alias+".")
		ci, _ := sc.tables[i].tbl.ColIndex(base)
		joins = append(joins, boundJoin{outer: outer, inner: ci})
	}

	bindCol := func(c *ColRef, ctx string) error {
		canon, _, err := sc.resolve(*c, len(sc.tables), ctx)
		if err != nil {
			return err
		}
		*c = ColRef{Column: canon}
		return nil
	}
	bindCall := func(call *LLMCall, ctx string) error {
		fields := make([]ColRef, 0, len(call.Fields))
		seen := map[string]bool{}
		add := func(canon string) {
			// A field listed twice adds nothing to the prompt; dropping the
			// duplicate also keeps the projected stage table well-formed.
			if !seen[canon] {
				seen[canon] = true
				fields = append(fields, ColRef{Column: canon})
			}
		}
		for _, f := range call.Fields {
			canon, _, err := sc.resolve(f, len(sc.tables), ctx)
			if err != nil {
				return err
			}
			add(canon)
		}
		for _, qual := range call.StarOf {
			i, ok := sc.byAlias(qual)
			if !ok {
				return fmt.Errorf("sql: unknown table %q in field %s.*%s", qual, qual, ctx)
			}
			for _, col := range sc.tables[i].tbl.Columns() {
				add(sc.canonical(i, col))
			}
		}
		call.Fields = fields
		call.StarOf = nil
		return nil
	}

	for i := range q.Select {
		item := &q.Select[i]
		switch {
		case item.Star, item.AggStar:
		case item.LLM != nil:
			if err := bindCall(item.LLM, " in SELECT"); err != nil {
				return nil, err
			}
		default:
			ctx := ""
			if item.Agg != AggNone {
				ctx = fmt.Sprintf(" under %s", item.Agg)
			}
			if err := bindCol(&item.Col, ctx); err != nil {
				return nil, err
			}
		}
	}
	var werr error
	walkCompares(q.Where, func(c *Compare) {
		if werr != nil {
			return
		}
		if c.LLM != nil {
			werr = bindCall(c.LLM, " in WHERE")
		} else {
			werr = bindCol(&c.Col, " in WHERE")
		}
	})
	if werr != nil {
		return nil, werr
	}
	walkCompares(q.Having, func(c *Compare) {
		if werr != nil || c.AggStar {
			return
		}
		if c.LLM != nil {
			werr = bindCall(c.LLM, " in HAVING")
		} else {
			werr = bindCol(&c.Col, " in HAVING")
		}
	})
	if werr != nil {
		return nil, werr
	}
	for i := range q.GroupBy {
		if err := bindCol(&q.GroupBy[i], " in GROUP BY"); err != nil {
			return nil, err
		}
	}
	return joins, nil
}

// joinAll materializes the statement's working relation from the (already
// table-locally filtered) base relations. Joins are inner equi-joins on
// string equality, evaluated left to right with the accumulated relation's
// row order preserved (matching inner rows appended in their table order),
// so results are deterministic. Hidden ground-truth columns do not survive
// a join — the joined row is new content, and the SQL surface's synthetic
// truth machinery (content-keyed) covers it.
func (sc *scope) joinAll(bases []*table.Table, joins []boundJoin) *table.Table {
	if !sc.multi {
		return bases[0]
	}
	acc := canonicalView(bases[0], sc, 0)
	for k, j := range joins {
		inner := bases[k+1]
		byKey := map[string][]int{}
		for r := 0; r < inner.NumRows(); r++ {
			v := inner.Cell(r, j.inner)
			byKey[v] = append(byKey[v], r)
		}
		cols := append(append([]string(nil), acc.Columns()...), canonicalCols(inner, sc, k+1)...)
		out := table.New(cols...)
		oi, _ := acc.ColIndex(j.outer)
		for r := 0; r < acc.NumRows(); r++ {
			for _, ir := range byKey[acc.Cell(r, oi)] {
				out.MustAppendRow(append(append([]string(nil), acc.Row(r)...), inner.Row(ir)...)...)
			}
		}
		acc = out
	}
	return acc
}

// canonicalView copies table i's relation under its canonical column names.
func canonicalView(t *table.Table, sc *scope, i int) *table.Table {
	out := table.New(canonicalCols(t, sc, i)...)
	for r := 0; r < t.NumRows(); r++ {
		out.MustAppendRow(t.Row(r)...)
	}
	return out
}

func canonicalCols(t *table.Table, sc *scope, i int) []string {
	cols := make([]string, t.NumCols())
	for j, c := range t.Columns() {
		cols[j] = sc.canonical(i, c)
	}
	return cols
}
