package sqlfront

import (
	"fmt"
)

// Parse compiles one LLM-SQL statement into its AST.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input after query")
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token          { return p.toks[p.i] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == kw
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %s, found %s %q", k, p.cur().kind, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s, found %s %q", kw, p.cur().kind, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// query := SELECT selectList FROM ident [WHERE predicate]
func (p *parser) query() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	items, err := p.selectList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	q := &Query{Select: items, From: from.text}
	if p.atKeyword("WHERE") {
		p.advance()
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		q.Where = pred
	}
	return q, nil
}

func (p *parser) selectList() ([]SelectItem, error) {
	var items []SelectItem
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.at(tokComma) {
			return items, nil
		}
		p.advance()
	}
}

// selectItem := '*' | AVG '(' llm ')' [AS ident] | llm [AS ident] | ident [AS ident]
func (p *parser) selectItem() (SelectItem, error) {
	switch {
	case p.at(tokStar):
		p.advance()
		return SelectItem{Star: true}, nil
	case p.atKeyword("AVG"):
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return SelectItem{}, err
		}
		call, err := p.llmCall()
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Avg: true, LLM: &call}
		return p.withAlias(item)
	case p.atKeyword("LLM"):
		call, err := p.llmCall()
		if err != nil {
			return SelectItem{}, err
		}
		return p.withAlias(SelectItem{LLM: &call})
	case p.at(tokIdent):
		col := p.advance().text
		return p.withAlias(SelectItem{Column: col})
	}
	return SelectItem{}, p.errf("expected select item, found %s %q", p.cur().kind, p.cur().text)
}

func (p *parser) withAlias(item SelectItem) (SelectItem, error) {
	if p.atKeyword("AS") {
		p.advance()
		alias, err := p.expect(tokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias.text
	}
	return item, nil
}

// llmCall := LLM '(' string (',' field)* ')'
// field   := ident | '*' | ident '.' '*'
func (p *parser) llmCall() (LLMCall, error) {
	if err := p.expectKeyword("LLM"); err != nil {
		return LLMCall{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return LLMCall{}, err
	}
	prompt, err := p.expect(tokString)
	if err != nil {
		return LLMCall{}, err
	}
	call := LLMCall{Prompt: prompt.text}
	for p.at(tokComma) {
		p.advance()
		switch {
		case p.at(tokStar):
			p.advance()
			call.AllFields = true
		case p.at(tokIdent):
			name := p.advance().text
			// Allow table-qualified forms: t.col and t.* .
			if p.at(tokDot) {
				p.advance()
				if p.at(tokStar) {
					p.advance()
					call.AllFields = true
					break
				}
				col, err := p.expect(tokIdent)
				if err != nil {
					return LLMCall{}, err
				}
				name = col.text
			}
			call.Fields = append(call.Fields, name)
		default:
			return LLMCall{}, p.errf("expected field name or '*', found %s %q", p.cur().kind, p.cur().text)
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return LLMCall{}, err
	}
	if !call.AllFields && len(call.Fields) == 0 {
		return LLMCall{}, p.errf("LLM call needs at least one field expression")
	}
	return call, nil
}

// predicate := llmCall ('='|'<>') string
func (p *parser) predicate() (*Predicate, error) {
	call, err := p.llmCall()
	if err != nil {
		return nil, err
	}
	var negated bool
	switch {
	case p.at(tokEq):
		p.advance()
	case p.at(tokNeq):
		p.advance()
		negated = true
	default:
		return nil, p.errf("expected '=' or '<>' after LLM predicate, found %s %q", p.cur().kind, p.cur().text)
	}
	lit, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	return &Predicate{Call: call, Negated: negated, Literal: lit.text}, nil
}
