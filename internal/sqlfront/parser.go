package sqlfront

import (
	"fmt"
	"strconv"
)

// Parse compiles one LLM-SQL statement into its AST.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input after query")
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	// inHaving permits aggregate left sides in comparisons while the HAVING
	// expression is being parsed.
	inHaving bool
}

func (p *parser) cur() token          { return p.toks[p.i] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == kw
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %s, found %s %q", k, p.cur().kind, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s, found %s %q", kw, p.cur().kind, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// aggFuncs maps aggregate keywords to their AggFunc.
var aggFuncs = map[string]AggFunc{
	"AVG": AggAvg, "COUNT": AggCount, "SUM": AggSum, "MIN": AggMin, "MAX": AggMax,
}

// query := SELECT selectList FROM tableRef {JOIN tableRef ON colRef '=' colRef}
//
//	[WHERE expr] [GROUP BY colRef {',' colRef}] [HAVING havingExpr]
//	[ORDER BY colRef [ASC|DESC] {',' colRef [ASC|DESC]}] [LIMIT number]
func (p *parser) query() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	items, err := p.selectList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.fromClause()
	if err != nil {
		return nil, err
	}
	q := &Query{Select: items, From: from, Limit: -1}
	if p.atKeyword("WHERE") {
		p.advance()
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.atKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.colRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
	}
	if p.atKeyword("HAVING") {
		p.advance()
		p.inHaving = true
		e, err := p.orExpr()
		p.inHaving = false
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	if p.atKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.colRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			switch {
			case p.atKeyword("ASC"):
				p.advance()
			case p.atKeyword("DESC"):
				p.advance()
				item.Desc = true
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
	}
	if p.atKeyword("LIMIT") {
		p.advance()
		n, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil {
			return nil, fmt.Errorf("sql: offset %d: LIMIT must be an integer, got %q", n.pos, n.text)
		}
		q.Limit = v
	}
	return q, nil
}

// fromClause := tableRef { JOIN tableRef ON colRef '=' colRef }
// tableRef   := ident [ AS ident ]
func (p *parser) fromClause() ([]TableRef, error) {
	first, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	from := []TableRef{first}
	for p.atKeyword("JOIN") {
		p.advance()
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		left, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return nil, err
		}
		right, err := p.colRef()
		if err != nil {
			return nil, err
		}
		ref.On = &JoinOn{Left: left, Right: right}
		from = append(from, ref)
	}
	return from, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name.text}
	if p.atKeyword("AS") {
		p.advance()
		alias, err := p.expect(tokIdent)
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias.text
	}
	return ref, nil
}

// colRef := ident [ '.' ident ]
func (p *parser) colRef() (ColRef, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return ColRef{}, err
	}
	if p.at(tokDot) {
		p.advance()
		col, err := p.expect(tokIdent)
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: name.text, Column: col.text}, nil
	}
	return ColRef{Column: name.text}, nil
}

func (p *parser) selectList() ([]SelectItem, error) {
	var items []SelectItem
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.at(tokComma) {
			return items, nil
		}
		p.advance()
	}
}

// selectItem := '*' | aggFunc '(' (llm | colRef | '*') ')' [AS ident]
//
//	| llm [AS ident] | colRef [AS ident]
func (p *parser) selectItem() (SelectItem, error) {
	switch {
	case p.at(tokStar):
		p.advance()
		return SelectItem{Star: true}, nil
	case p.cur().kind == tokKeyword && aggFuncs[p.cur().text] != AggNone:
		fn := aggFuncs[p.advance().text]
		if _, err := p.expect(tokLParen); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Agg: fn}
		switch {
		case p.at(tokStar):
			if fn != AggCount {
				return SelectItem{}, p.errf("'*' is only valid under COUNT, not %s", fn)
			}
			p.advance()
			item.AggStar = true
		case p.atKeyword("LLM"):
			call, err := p.llmCall()
			if err != nil {
				return SelectItem{}, err
			}
			item.LLM = &call
		case p.at(tokIdent):
			col, err := p.colRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = col
		default:
			return SelectItem{}, p.errf("expected LLM call, column, or '*' under %s, found %s %q", fn, p.cur().kind, p.cur().text)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return SelectItem{}, err
		}
		return p.withAlias(item)
	case p.atKeyword("LLM"):
		call, err := p.llmCall()
		if err != nil {
			return SelectItem{}, err
		}
		return p.withAlias(SelectItem{LLM: &call})
	case p.at(tokIdent):
		col, err := p.colRef()
		if err != nil {
			return SelectItem{}, err
		}
		return p.withAlias(SelectItem{Col: col})
	}
	return SelectItem{}, p.errf("expected select item, found %s %q", p.cur().kind, p.cur().text)
}

func (p *parser) withAlias(item SelectItem) (SelectItem, error) {
	if p.atKeyword("AS") {
		p.advance()
		alias, err := p.expect(tokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias.text
	}
	return item, nil
}

// llmCall := LLM '(' string (',' field)* ')'
// field   := colRef | '*' | ident '.' '*'
func (p *parser) llmCall() (LLMCall, error) {
	if err := p.expectKeyword("LLM"); err != nil {
		return LLMCall{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return LLMCall{}, err
	}
	prompt, err := p.expect(tokString)
	if err != nil {
		return LLMCall{}, err
	}
	call := LLMCall{Prompt: prompt.text}
	for p.at(tokComma) {
		p.advance()
		switch {
		case p.at(tokStar):
			p.advance()
			call.AllFields = true
		case p.at(tokIdent):
			name := p.advance().text
			// Table-qualified forms: t.col and t.* .
			if p.at(tokDot) {
				p.advance()
				if p.at(tokStar) {
					p.advance()
					call.StarOf = append(call.StarOf, name)
					break
				}
				col, err := p.expect(tokIdent)
				if err != nil {
					return LLMCall{}, err
				}
				call.Fields = append(call.Fields, ColRef{Qualifier: name, Column: col.text})
				break
			}
			call.Fields = append(call.Fields, ColRef{Column: name})
		default:
			return LLMCall{}, p.errf("expected field name or '*', found %s %q", p.cur().kind, p.cur().text)
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return LLMCall{}, err
	}
	if !call.AllFields && len(call.StarOf) == 0 && len(call.Fields) == 0 {
		return LLMCall{}, p.errf("LLM call needs at least one field expression")
	}
	return call, nil
}

// orExpr := andExpr { OR andExpr }   (left-associative)
func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.advance()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

// andExpr := notExpr { AND notExpr }   (left-associative)
func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

// notExpr := NOT notExpr | '(' orExpr ')' | comparison
func (p *parser) notExpr() (Expr, error) {
	switch {
	case p.atKeyword("NOT"):
		p.advance()
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	case p.at(tokLParen):
		p.advance()
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.comparison()
}

// comparison := lhs compareOp (string | number)
// lhs        := llm | colRef
//
//	| aggFunc '(' (llm | colRef | '*') ')'   (HAVING only)
func (p *parser) comparison() (Expr, error) {
	c := &Compare{}
	switch {
	case p.cur().kind == tokKeyword && aggFuncs[p.cur().text] != AggNone:
		if !p.inHaving {
			return nil, p.errf("aggregate %s is only valid in HAVING, not WHERE", p.cur().text)
		}
		c.Agg = aggFuncs[p.advance().text]
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		switch {
		case p.at(tokStar):
			if c.Agg != AggCount {
				return nil, p.errf("'*' is only valid under COUNT, not %s", c.Agg)
			}
			p.advance()
			c.AggStar = true
		case p.atKeyword("LLM"):
			call, err := p.llmCall()
			if err != nil {
				return nil, err
			}
			c.LLM = &call
		case p.at(tokIdent):
			col, err := p.colRef()
			if err != nil {
				return nil, err
			}
			c.Col = col
		default:
			return nil, p.errf("expected LLM call, column, or '*' under %s, found %s %q", c.Agg, p.cur().kind, p.cur().text)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	case p.atKeyword("LLM"):
		call, err := p.llmCall()
		if err != nil {
			return nil, err
		}
		c.LLM = &call
	case p.at(tokIdent):
		col, err := p.colRef()
		if err != nil {
			return nil, err
		}
		c.Col = col
	default:
		clause := "WHERE"
		if p.inHaving {
			clause = "HAVING"
		}
		return nil, p.errf("expected LLM call, column, NOT, or '(' in %s, found %s %q", clause, p.cur().kind, p.cur().text)
	}
	switch {
	case p.at(tokEq):
		p.advance()
		c.Op = OpEq
	case p.at(tokNeq):
		p.advance()
		c.Op = OpNeq
	case p.at(tokLt):
		p.advance()
		c.Op = OpLt
	case p.at(tokLe):
		p.advance()
		c.Op = OpLe
	case p.at(tokGt):
		p.advance()
		c.Op = OpGt
	case p.at(tokGe):
		p.advance()
		c.Op = OpGe
	default:
		return nil, p.errf("expected a comparison operator (=, <>, <, <=, >, >=), found %s %q", p.cur().kind, p.cur().text)
	}
	switch {
	case p.at(tokString):
		c.Literal = p.advance().text
	case p.at(tokNumber):
		c.Literal = p.advance().text
		c.IsNumber = true
	default:
		return nil, p.errf("expected string or number literal, found %s %q", p.cur().kind, p.cur().text)
	}
	return c, nil
}
