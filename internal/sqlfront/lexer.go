// Package sqlfront implements the SQL surface of the paper's interface: a
// lexer, parser, logical planner, and executor for an LLM-query analytics
// dialect. FROM clauses join any number of registered tables with inner
// equi-joins; SELECT lists mix plain columns, LLM('prompt', fields...)
// calls, and aggregates; WHERE clauses are boolean trees over LLM predicates
// and plain-column comparisons (all six operators); GROUP BY / HAVING /
// multi-key ORDER BY / LIMIT shape the output. Columns may be qualified with
// the table name or alias (alias.column) anywhere a column is legal.
// Statements execute one at a time through DB.Exec, repeatedly through
// DB.Prepare, and concurrently — with cross-query batching and result
// caching — through internal/runtime, which injects itself via
// ExecConfig.StageRunner.
//
// Grammar (case-insensitive keywords; "..." are terminals):
//
//	query      = "SELECT" selectList "FROM" tableRef { "JOIN" tableRef "ON" colRef "=" colRef }
//	             [ "WHERE" expr ]
//	             [ "GROUP" "BY" colRef { "," colRef } ]
//	             [ "HAVING" havingExpr ]
//	             [ "ORDER" "BY" orderItem { "," orderItem } ]
//	             [ "LIMIT" number ] .
//	tableRef   = ident [ "AS" ident ] .
//	selectList = selectItem { "," selectItem } .
//	selectItem = "*"
//	           | aggFunc "(" ( llm | colRef | "*" ) ")" [ "AS" ident ]
//	           | llm [ "AS" ident ]
//	           | colRef [ "AS" ident ] .
//	aggFunc    = "AVG" | "COUNT" | "SUM" | "MIN" | "MAX" .  (* "*" only under COUNT *)
//	llm        = "LLM" "(" string { "," field } ")" .
//	field      = colRef | "*" | ident "." "*" .
//	colRef     = ident [ "." ident ] .
//	orderItem  = colRef [ "ASC" | "DESC" ] .
//	expr       = andExpr { "OR" andExpr } .
//	andExpr    = notExpr { "AND" notExpr } .
//	notExpr    = "NOT" notExpr | "(" expr ")" | comparison .
//	comparison = ( llm | colRef ) compareOp ( string | number ) .
//	havingExpr = like expr, but a comparison's left side may additionally be
//	             aggFunc "(" ( llm | colRef | "*" ) ")" .
//	compareOp  = "=" | "<>" | "!=" | "<" | "<=" | ">" | ">=" .
//	string     = "'" chars-with-''-escape "'" .
//	number     = digits [ "." digits ] .
//	ident      = bare identifier (letters, digits, "_", "/")
//	           | '"' chars-with-""-escape '"' .   (* non-empty *)
//
// Statements compile through a logical planner (plan.go) that pushes each
// table-local LLM-free predicate below the join onto its base table, places
// the join ahead of every model stage so LLM calls see only the
// joined-and-filtered relation, runs each distinct LLM call exactly once per
// statement, and orders multiple LLM filter stages cheapest-first using
// estimated per-call prompt cost and selectivity (cost.go). Every query
// therefore benefits from request reordering, predicate and join pushdown,
// invocation dedup, and cost-based filter ordering transparently;
// ExecConfig.Naive reverts all of it for A/B measurement.
package sqlfront

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokStar
	tokDot
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokKeyword
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string literal"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokStar:
		return "'*'"
	case tokDot:
		return "'.'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'<>'"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokKeyword:
		return "keyword"
	}
	return "unknown token"
}

// keywords of the dialect (case-insensitive). LLM and the aggregate names are
// recognized as keywords so the parser can dispatch without lookahead. A
// column that collides with a keyword is still reachable via a double-quoted
// identifier ("and", "count", ...).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AS": true,
	"JOIN": true, "ON": true,
	"LLM": true,
	"AVG": true, "COUNT": true, "SUM": true, "MIN": true, "MAX": true,
	"AND": true, "OR": true, "NOT": true,
	"GROUP": true, "BY": true, "ORDER": true, "HAVING": true,
	"ASC": true, "DESC": true, "LIMIT": true,
}

type token struct {
	kind tokenKind
	text string // keyword text is upper-cased; strings are unquoted
	pos  int    // byte offset for error messages
}

type lexer struct {
	src string
	i   int
}

// lex tokenizes the whole input eagerly; LLM queries are short.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.i < len(l.src) && isSpace(l.src[l.i]) {
		l.i++
	}
	if l.i >= len(l.src) {
		return token{kind: tokEOF, pos: l.i}, nil
	}
	start := l.i
	c := l.src[l.i]
	switch {
	case c == '(':
		l.i++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.i++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.i++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '*':
		l.i++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '.':
		l.i++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case c == '=':
		l.i++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == '<':
		if l.i+1 < len(l.src) && l.src[l.i+1] == '>' {
			l.i += 2
			return token{kind: tokNeq, text: "<>", pos: start}, nil
		}
		if l.i+1 < len(l.src) && l.src[l.i+1] == '=' {
			l.i += 2
			return token{kind: tokLe, text: "<=", pos: start}, nil
		}
		l.i++
		return token{kind: tokLt, text: "<", pos: start}, nil
	case c == '>':
		if l.i+1 < len(l.src) && l.src[l.i+1] == '=' {
			l.i += 2
			return token{kind: tokGe, text: ">=", pos: start}, nil
		}
		l.i++
		return token{kind: tokGt, text: ">", pos: start}, nil
	case c == '!':
		if l.i+1 < len(l.src) && l.src[l.i+1] == '=' {
			l.i += 2
			return token{kind: tokNeq, text: "!=", pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected '!' at offset %d (did you mean '!=')", start)
	case c == '\'':
		return l.stringLit()
	case c == '"':
		return l.quotedIdent()
	case isDigit(c):
		return l.number()
	case isIdentStart(c):
		return l.ident()
	}
	return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

// stringLit scans a single-quoted literal with ” as the escape for a quote.
func (l *lexer) stringLit() (token, error) {
	start := l.i
	l.i++ // opening quote
	var sb strings.Builder
	for l.i < len(l.src) {
		c := l.src[l.i]
		if c == '\'' {
			if l.i+1 < len(l.src) && l.src[l.i+1] == '\'' {
				sb.WriteByte('\'')
				l.i += 2
				continue
			}
			l.i++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.i++
	}
	return token{}, fmt.Errorf("sql: unterminated string starting at offset %d", start)
}

// quotedIdent scans a double-quoted identifier (for columns like
// "beer/beerId" whose bare form would not lex, or columns shadowed by a
// keyword). "" escapes a literal quote, mirroring the string-literal rule,
// and the empty identifier "" is rejected.
func (l *lexer) quotedIdent() (token, error) {
	start := l.i
	l.i++ // opening quote
	var sb strings.Builder
	for l.i < len(l.src) {
		c := l.src[l.i]
		if c == '"' {
			if l.i+1 < len(l.src) && l.src[l.i+1] == '"' {
				sb.WriteByte('"')
				l.i += 2
				continue
			}
			l.i++
			if sb.Len() == 0 {
				return token{}, fmt.Errorf("sql: empty quoted identifier at offset %d", start)
			}
			return token{kind: tokIdent, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.i++
	}
	return token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
}

// number scans an unsigned numeric literal: digits with an optional single
// fractional part (42, 4.5). The raw text is preserved so rendering
// round-trips exactly.
func (l *lexer) number() (token, error) {
	start := l.i
	for l.i < len(l.src) && isDigit(l.src[l.i]) {
		l.i++
	}
	if l.i+1 < len(l.src) && l.src[l.i] == '.' && isDigit(l.src[l.i+1]) {
		l.i++
		for l.i < len(l.src) && isDigit(l.src[l.i]) {
			l.i++
		}
	}
	return token{kind: tokNumber, text: l.src[start:l.i], pos: start}, nil
}

func (l *lexer) ident() (token, error) {
	start := l.i
	for l.i < len(l.src) && isIdentPart(l.src[l.i]) {
		l.i++
	}
	text := l.src[start:l.i]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return token{kind: tokKeyword, text: upper, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// isIdentPart additionally admits '/' and digits so raw RateBeer-style
// column names (review/overall) lex as single identifiers.
func isIdentPart(c byte) bool {
	return isIdentStart(c) || c == '/' || (c >= '0' && c <= '9')
}
