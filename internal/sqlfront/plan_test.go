package sqlfront

import (
	"reflect"
	"strconv"
	"testing"

	"repro/internal/query"
	"repro/internal/table"
)

// catTicketsTable is ticketsTable plus a plain category column (first 24
// rows "billing", the rest "refund") and a numeric priority column, so
// plain-predicate pushdown has something to prune on. The billing rows come
// first so the pushed-down working table is a prefix of the base table:
// per-row oracle draws then agree between the planned and naive executions
// and result relations can be compared exactly.
func catTicketsTable() *table.Table {
	t := table.New("ticket_id", "category", "priority", "request", "support_response")
	responses := []string{
		"We reset your password and emailed a confirmation link to your inbox.",
		"Your refund was issued and will appear within five business days.",
	}
	for i := 0; i < 40; i++ {
		cat := "billing"
		if i >= 24 {
			cat = "refund"
		}
		t.MustAppendRow(
			"T-"+strconv.Itoa(1000+i),
			cat,
			strconv.Itoa(i%3),
			"Request number "+strconv.Itoa(i)+" about an account issue",
			responses[i%2],
		)
	}
	labels := make([]string, 40)
	for i := range labels {
		if i%4 == 0 {
			labels[i] = "No"
		} else {
			labels[i] = "Yes"
		}
	}
	if err := t.SetHidden("label", labels); err != nil {
		panic(err)
	}
	return t
}

// --- planner -----------------------------------------------------------------

// cols builds an unqualified ColRef list from bare column names.
func cols(names ...string) []ColRef {
	out := make([]ColRef, len(names))
	for i, n := range names {
		out[i] = ColRef{Column: n}
	}
	return out
}

func mustPlan(t *testing.T, q *Query, optimize bool) *Plan {
	t.Helper()
	pl, err := BuildPlan(q, nil, optimize)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	return pl
}

func TestBuildPlanSplitsConjuncts(t *testing.T) {
	q := mustParse(t, `SELECT ticket_id FROM t WHERE category = 'billing' AND LLM('help?', request) = 'Yes' AND priority <> '2'`)
	pl := mustPlan(t, q, true)
	if pl.TablePushed[0] == nil || pl.Residual == nil {
		t.Fatalf("plan = %+v", pl)
	}
	if got := len(conjuncts(pl.TablePushed[0])); got != 2 {
		t.Errorf("pushed conjuncts = %d, want 2 (%s)", got, pl.TablePushed[0])
	}
	if containsLLM(pl.TablePushed[0]) {
		t.Errorf("LLM call leaked into pushed predicate: %s", pl.TablePushed[0])
	}
	if !containsLLM(pl.Residual) {
		t.Errorf("residual lost its LLM comparison: %s", pl.Residual)
	}
	if len(pl.PreStages) != 1 || len(pl.PostStages) != 0 {
		t.Errorf("stages = %d pre, %d post, want 1/0", len(pl.PreStages), len(pl.PostStages))
	}
	if pl.PreStages[0].Type != query.Filter || pl.PreStages[0].Name() != "sql-where-1" {
		t.Errorf("stage = %+v", pl.PreStages[0])
	}
}

func TestBuildPlanNaiveKeepsWhereWhole(t *testing.T) {
	q := mustParse(t, `SELECT a FROM t WHERE a = 'x' AND LLM('p', b) = 'Yes'`)
	pl := mustPlan(t, q, false)
	if pl.Pushed != nil || pl.TablePushed[0] != nil {
		t.Errorf("naive plan pushed a predicate: %+v", pl)
	}
	if !reflect.DeepEqual(pl.Residual, q.Where) {
		t.Errorf("naive residual = %s, want the full WHERE", pl.Residual)
	}
}

func TestBuildPlanOrBlocksPushdown(t *testing.T) {
	// A plain comparison OR-joined with an LLM comparison cannot run early.
	q := mustParse(t, `SELECT a FROM t WHERE a = 'x' OR LLM('p', b) = 'Yes'`)
	pl := mustPlan(t, q, true)
	if pl.Pushed != nil || pl.TablePushed[0] != nil {
		t.Errorf("unsound pushdown through OR: %+v", pl)
	}
	if pl.Residual == nil {
		t.Error("residual missing")
	}
}

func TestBuildPlanDedupsRepeatedCalls(t *testing.T) {
	q := mustParse(t, `SELECT LLM('p', a) AS x, LLM('p', a) AS y FROM t WHERE LLM('p', a) = 'Yes' AND LLM('q', a) = 'Yes'`)
	planned := mustPlan(t, q, true)
	if got := planned.Stages(); got != 2 {
		t.Errorf("planned stages = %d, want 2 (one per distinct call)", got)
	}
	naive := mustPlan(t, q, false)
	if got := naive.Stages(); got != 4 {
		t.Errorf("naive stages = %d, want 4 (one per occurrence)", got)
	}
	// The call shared between WHERE and SELECT keeps filter semantics.
	for _, st := range planned.PreStages {
		if st.Call.Prompt == "p" && st.Type != query.Filter {
			t.Errorf("shared call type = %s, want filter", st.Type)
		}
	}
	if len(planned.PostStages) != 0 {
		t.Errorf("post stages = %d, want 0 (both calls already run for WHERE)", len(planned.PostStages))
	}
}

func TestBuildPlanStageNumbering(t *testing.T) {
	// Several filter stages per statement must get distinct names.
	q := mustParse(t, `SELECT a FROM t WHERE LLM('p', a) = 'Yes' AND LLM('q', b) = 'Yes'`)
	pl := mustPlan(t, q, true)
	if len(pl.PreStages) != 2 {
		t.Fatalf("stages = %d", len(pl.PreStages))
	}
	if pl.PreStages[0].Name() == pl.PreStages[1].Name() {
		t.Errorf("duplicate stage name %q", pl.PreStages[0].Name())
	}
	if pl.PreStages[0].Name() != "sql-where-1" || pl.PreStages[1].Name() != "sql-where-2" {
		t.Errorf("names = %q, %q", pl.PreStages[0].Name(), pl.PreStages[1].Name())
	}
}

// --- executor: pushdown and dedup win measurably ------------------------------

func TestExecPushdownFewerCallsSameRows(t *testing.T) {
	sql := `SELECT ticket_id FROM tickets WHERE category = 'billing' AND LLM('Did the response help?', support_response) = 'Yes'`
	db := NewDB()
	db.Register("tickets", catTicketsTable())

	planned, err := db.Exec(sql, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	naiveCfg := execCfg()
	naiveCfg.Naive = true
	naive, err := db.Exec(sql, naiveCfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(planned.Rows, naive.Rows) {
		t.Fatalf("plans disagree:\nplanned %v\nnaive   %v", planned.Rows, naive.Rows)
	}
	if planned.LLMCalls >= naive.LLMCalls {
		t.Errorf("pushdown did not reduce calls: planned %d, naive %d", planned.LLMCalls, naive.LLMCalls)
	}
	if planned.LLMCalls != 24 || naive.LLMCalls != 40 {
		t.Errorf("calls = %d planned / %d naive, want 24/40", planned.LLMCalls, naive.LLMCalls)
	}
	if planned.JCT >= naive.JCT {
		t.Errorf("pushdown did not reduce JCT: planned %.1f, naive %.1f", planned.JCT, naive.JCT)
	}
}

func TestExecDedupFewerCallsSameRows(t *testing.T) {
	sql := `SELECT ticket_id, LLM('Summarize the request', request) AS a, LLM('Summarize the request', request) AS b FROM tickets`
	db := NewDB()
	db.Register("tickets", catTicketsTable())

	planned, err := db.Exec(sql, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	naiveCfg := execCfg()
	naiveCfg.Naive = true
	naive, err := db.Exec(sql, naiveCfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(planned.Rows, naive.Rows) {
		t.Fatalf("plans disagree:\nplanned %v\nnaive   %v", planned.Rows, naive.Rows)
	}
	if planned.Stages != 1 || naive.Stages != 2 {
		t.Errorf("stages = %d planned / %d naive, want 1/2", planned.Stages, naive.Stages)
	}
	if planned.LLMCalls != 40 || naive.LLMCalls != 80 {
		t.Errorf("calls = %d planned / %d naive, want 40/80", planned.LLMCalls, naive.LLMCalls)
	}
	for i, row := range planned.Rows {
		if row[1] != row[2] {
			t.Fatalf("row %d: deduped columns disagree: %q vs %q", i, row[1], row[2])
		}
	}
}

func TestExecSharedWhereSelectCallRunsOnce(t *testing.T) {
	// The same call filters in WHERE and projects in SELECT: one stage, and
	// every surviving row's projected value is the literal that passed.
	sql := `SELECT ticket_id, LLM('Did the response help?', support_response) AS verdict FROM tickets WHERE LLM('Did the response help?', support_response) = 'Yes'`
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(sql, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages != 1 {
		t.Errorf("stages = %d, want 1", res.Stages)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows survived")
	}
	for i, row := range res.Rows {
		if row[1] != "Yes" {
			t.Errorf("row %d: verdict = %q, want the passing literal", i, row[1])
		}
	}
}

func TestExecSameCallMultipleLiterals(t *testing.T) {
	// Two comparisons of one call against different literals share a single
	// stage whose synthetic answer alphabet covers both branches, so each
	// branch is reachable.
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT ticket_id, LLM('Mood?', request) AS mood FROM tickets WHERE LLM('Mood?', request) = 'happy' OR LLM('Mood?', request) = 'sad'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages != 1 {
		t.Errorf("stages = %d, want 1", res.Stages)
	}
	if len(res.Rows) == 0 || len(res.Rows) == 40 {
		t.Fatalf("rows = %d, want a strict subset", len(res.Rows))
	}
	seen := map[string]int{}
	for _, row := range res.Rows {
		seen[row[1]]++
	}
	if seen["happy"] == 0 || seen["sad"] == 0 {
		t.Errorf("one OR branch unreachable: moods = %v", seen)
	}
	if len(seen) != 2 {
		t.Errorf("unexpected moods passed the filter: %v", seen)
	}

	// One answer per row can never equal two different literals at once.
	and, err := db.Exec(`SELECT ticket_id FROM tickets WHERE LLM('Mood?', request) = 'happy' AND LLM('Mood?', request) = 'sad'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(and.Rows) != 0 {
		t.Errorf("contradictory AND matched %d rows", len(and.Rows))
	}
}

func TestExecAggregatedCallSharedWithWhere(t *testing.T) {
	// Aggregate use outranks the WHERE comparison when classifying a shared
	// call: the one deduplicated stage emits numeric scores, so filtering on
	// a score and averaging the survivors is meaningful.
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT COUNT(*) AS n, AVG(LLM('Rate the urgency 1-5', request)) AS score FROM tickets WHERE LLM('Rate the urgency 1-5', request) = '5'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages != 1 {
		t.Errorf("stages = %d, want one shared aggregation stage", res.Stages)
	}
	n, err := strconv.Atoi(res.Rows[0][0])
	if err != nil || n == 0 || n == 40 {
		t.Fatalf("n = %q, want a strict subset of rows rated 5", res.Rows[0][0])
	}
	if res.Rows[0][1] != "5.000" {
		t.Errorf("score = %q, want 5.000 (all survivors were rated 5)", res.Rows[0][1])
	}
}

func TestBuildPlanRejectsNonNumericEqualityOnAggregatedCall(t *testing.T) {
	q := mustParse(t, `SELECT AVG(LLM('Rate', a)) FROM t WHERE LLM('Rate', a) = 'Yes'`)
	if _, err := BuildPlan(q, nil, true); err == nil {
		t.Error("unsatisfiable aggregated equality accepted")
	}
	if _, err := BuildPlan(q, nil, false); err == nil {
		t.Error("naive plan accepted the unsatisfiable statement")
	}
	// Negated form is trivially true and must stay legal, as must numeric
	// equality (quoted or bare).
	for _, src := range []string{
		`SELECT AVG(LLM('Rate', a)) FROM t WHERE LLM('Rate', a) <> 'N/A'`,
		`SELECT AVG(LLM('Rate', a)) FROM t WHERE LLM('Rate', a) = '5'`,
		`SELECT AVG(LLM('Rate', a)) FROM t WHERE LLM('Rate', a) = 5`,
	} {
		if _, err := BuildPlan(mustParse(t, src), nil, true); err != nil {
			t.Errorf("BuildPlan(%q): %v", src, err)
		}
	}
}

func TestLLMCallKeyInjective(t *testing.T) {
	cases := []LLMCall{
		{Prompt: "p", Fields: cols("a", "b")},
		{Prompt: "p", Fields: cols("a")},
		{Prompt: "p", Fields: cols("ab")},
		{Prompt: "p", Fields: cols("*")},                               // column literally named *
		{Prompt: "p", AllFields: true},                                 // LLM('p', *)
		{Prompt: "p", StarOf: []string{"a"}},                           // LLM('p', a.*)
		{Prompt: "p\x00a", Fields: cols("b")},                          // NUL in prompt
		{Prompt: "p", Fields: cols("a\x00b")},                          // NUL in field
		{Prompt: "p;1:a", Fields: cols("b")},                           // delimiter chars in prompt
		{Prompt: "p", Fields: []ColRef{{Qualifier: "a", Column: "b"}}}, // qualified field
		{Prompt: "p", Fields: cols("a.b")},                             // dot folded into the name
	}
	seen := map[string]LLMCall{}
	for _, c := range cases {
		k := c.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision %q between %#v and %#v", k, prev, c)
		}
		seen[k] = c
	}
}

func TestExecQuotedNumericLiteralMatchesScore(t *testing.T) {
	// '5.0' (a string literal that parses as a number) must match the
	// aggregation stage's integer score outputs numerically.
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	quoted, err := db.Exec(`SELECT COUNT(*) AS n, AVG(LLM('Rate the urgency 1-5', request)) AS s FROM tickets WHERE LLM('Rate the urgency 1-5', request) = '5.0'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	bare, err := db.Exec(`SELECT COUNT(*) AS n, AVG(LLM('Rate the urgency 1-5', request)) AS s FROM tickets WHERE LLM('Rate the urgency 1-5', request) = 5`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if quoted.Rows[0][0] == "0" {
		t.Error("quoted numeric literal matched nothing")
	}
	if !reflect.DeepEqual(quoted.Rows, bare.Rows) {
		t.Errorf("quoted %v != bare %v", quoted.Rows, bare.Rows)
	}
}

func TestFilterChoicesComplementAvoidsLiterals(t *testing.T) {
	tbl := table.New("a")
	for i := 0; i < 8; i++ {
		tbl.MustAppendRow("row " + strconv.Itoa(i))
	}
	choices, _ := filterChoices(tbl, "ok?", []string{"Yes", "NOT Yes"})
	seen := map[string]bool{}
	for _, c := range choices {
		if seen[c] {
			t.Fatalf("duplicate choice %q in %v", c, choices)
		}
		seen[c] = true
	}
	if len(choices) != 3 {
		t.Errorf("choices = %v, want the two literals plus a distinct complement", choices)
	}
}

func TestSyntheticTruthVariesByPrompt(t *testing.T) {
	// Two different questions over the same rows must draw independent
	// synthetic truths, or opposite predicates become perfectly correlated.
	mk := func() *table.Table {
		tbl := table.New("a")
		for i := 0; i < 16; i++ {
			tbl.MustAppendRow("row " + strconv.Itoa(i))
		}
		return tbl
	}
	pos, neg := mk(), mk()
	filterChoices(pos, "Positive sentiment?", []string{"Yes"})
	filterChoices(neg, "Negative sentiment?", []string{"Yes"})
	a, _ := pos.Hidden("__sql_truth")
	b, _ := neg.Hidden("__sql_truth")
	if reflect.DeepEqual(a, b) {
		t.Error("synthetic truths identical across different prompts")
	}
}

func TestValueLessTotalOrderWithNaN(t *testing.T) {
	// "NaN" parses as a float but must order as a plain string, or MIN/MAX
	// and ORDER BY become input-order dependent.
	a := aggregate(AggMin, false, []string{"NaN", "5", "1"}, 3)
	b := aggregate(AggMin, false, []string{"1", "NaN", "5"}, 3)
	if a != b || a != "1" {
		t.Errorf("MIN order-dependent: %q vs %q, want 1", a, b)
	}
	if !valueLess("5", "NaN") || valueLess("NaN", "5") {
		t.Error("numbers must order before the non-finite string NaN")
	}
}

func TestExecPlainWhereNeedsNoLLM(t *testing.T) {
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT ticket_id FROM tickets WHERE category = 'billing' AND NOT ticket_id = 'T-1000'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.LLMCalls != 0 || res.Stages != 0 {
		t.Errorf("plain WHERE ran %d LLM calls over %d stages", res.LLMCalls, res.Stages)
	}
	if len(res.Rows) != 23 {
		t.Errorf("rows = %d, want 23", len(res.Rows))
	}
}

// --- executor: new operators --------------------------------------------------

func TestExecGroupByCount(t *testing.T) {
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT category, COUNT(*) AS n FROM tickets GROUP BY category ORDER BY n DESC`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"billing", "24"}, {"refund", "16"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
	if res.LLMCalls != 0 {
		t.Errorf("plain GROUP BY ran %d LLM calls", res.LLMCalls)
	}
}

func TestExecGroupByWithLLMAggregate(t *testing.T) {
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT category, AVG(LLM('Rate 1-5', request)) AS score, COUNT(*) AS n FROM tickets GROUP BY category`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages != 1 {
		t.Errorf("stages = %d, want one shared aggregation stage", res.Stages)
	}
	if len(res.Rows) != 2 || len(res.Columns) != 3 {
		t.Fatalf("shape = %v %v", res.Columns, res.Rows)
	}
	for _, row := range res.Rows {
		score, err := strconv.ParseFloat(row[1], 64)
		if err != nil || score < 1 || score > 5 {
			t.Errorf("group %q: score = %q", row[0], row[1])
		}
	}
}

func TestExecPlainAggregates(t *testing.T) {
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT COUNT(*), SUM(priority), MIN(ticket_id), MAX(ticket_id), AVG(priority) FROM tickets`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// priorities cycle 0,1,2 over 40 rows: 14 zeros, 13 ones, 13 twos.
	want := []string{"40", "39.000", "T-1000", "T-1039", "0.975"}
	if !reflect.DeepEqual(res.Rows[0], want) {
		t.Errorf("aggregates = %v, want %v", res.Rows[0], want)
	}
}

func TestExecNumericPredicate(t *testing.T) {
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT ticket_id FROM tickets WHERE priority = 2`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Errorf("rows = %d, want 13", len(res.Rows))
	}
	neg, err := db.Exec(`SELECT ticket_id FROM tickets WHERE priority <> 2`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows)+len(neg.Rows) != 40 {
		t.Errorf("complement broken: %d + %d != 40", len(res.Rows), len(neg.Rows))
	}
}

func TestExecNotOrSemantics(t *testing.T) {
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT ticket_id FROM tickets WHERE NOT (category = 'billing' OR category = 'refund')`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(res.Rows))
	}
}

func TestExecOrderByLimitRowwise(t *testing.T) {
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT ticket_id FROM tickets ORDER BY ticket_id DESC LIMIT 5`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || res.Rows[0][0] != "T-1039" || res.Rows[4][0] != "T-1035" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecOrderByNumericColumn(t *testing.T) {
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT priority, ticket_id FROM tickets ORDER BY priority DESC LIMIT 1`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "2" {
		t.Errorf("top priority = %q, want 2", res.Rows[0][0])
	}
}

func TestExecAggregateOverEmptyRelation(t *testing.T) {
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	res, err := db.Exec(`SELECT COUNT(*) AS n FROM tickets WHERE category = 'nope'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "0" {
		t.Errorf("rows = %v, want one row with 0", res.Rows)
	}
	// With GROUP BY there is nothing to group, so no rows at all.
	res, err = db.Exec(`SELECT category, COUNT(*) FROM tickets WHERE category = 'nope' GROUP BY category`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("grouped rows = %v, want none", res.Rows)
	}
}

func TestExecValidationErrors(t *testing.T) {
	db := NewDB()
	db.Register("t", catTicketsTable())
	bad := []string{
		`SELECT * FROM t GROUP BY category`,                        // star with grouping
		`SELECT ticket_id FROM t GROUP BY category`,                // ungrouped column
		`SELECT ticket_id, COUNT(*) FROM t`,                        // mixed without GROUP BY
		`SELECT LLM('p', request) FROM t GROUP BY category`,        // bare LLM with grouping
		`SELECT category FROM t GROUP BY nope`,                     // unknown group column
		`SELECT SUM(nope) FROM t`,                                  // unknown aggregate column
		`SELECT category FROM t WHERE nope = 'x'`,                  // unknown WHERE column
		`SELECT category FROM t WHERE NOT (a = 'x' OR nope = 'y')`, // nested unknown column
		`SELECT category FROM t ORDER BY nope`,                     // unknown ORDER BY column
	}
	for _, src := range bad {
		if _, err := db.Exec(src, execCfg()); err == nil {
			t.Errorf("Exec(%q) succeeded", src)
		}
	}
}
