package sqlfront

import (
	"context"
	"sync"
)

// Prepared is a reusable statement handle: the SQL is parsed, bound,
// validated, and planned once (both the optimized and the naive plan), and
// every Exec reuses that work. This is the "prepared statements + plan
// cache" layer repeated dashboard statements ride on — re-running a prepared
// statement costs zero parse/bind/plan time.
//
// A Prepared is safe for concurrent Exec from any number of goroutines. It
// snapshots the registry at preparation time; if tables are (re)registered
// afterwards, the next Exec transparently re-prepares against the new
// registry before running.
type Prepared struct {
	db  *DB
	src string

	mu sync.Mutex
	st *preparedState // guarded by mu
}

// Prepare parses, binds, validates, and plans one LLM-SQL statement for
// repeated execution.
func (db *DB) Prepare(src string) (*Prepared, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	st, err := db.prepareParsed(q)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, src: src, st: st}, nil
}

// SQL returns the statement text the handle was prepared from.
func (p *Prepared) SQL() string { return p.src }

// Exec runs the prepared statement. cfg.Naive selects the cached naive plan
// instead of the optimized one; both were built at Prepare time, so the
// toggle costs nothing. When the registry changed since preparation the
// statement is re-prepared first (a changed FROM table may have a new
// schema, making the cached binding invalid). Exec is ExecContext without
// cancellation.
func (p *Prepared) Exec(cfg ExecConfig) (*Result, error) {
	//llmqlint:detached -- no-cancellation convenience wrapper over ExecContext
	return p.ExecContext(context.Background(), cfg)
}

// ExecContext is Exec honoring ctx: cancellation is checked before every
// LLM stage and between engine steps within one.
func (p *Prepared) ExecContext(ctx context.Context, cfg ExecConfig) (*Result, error) {
	p.mu.Lock()
	st := p.st
	if st.version != p.db.Version() {
		q, err := Parse(p.src)
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		st, err = p.db.prepareParsed(q)
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		p.st = st
	}
	p.mu.Unlock()
	return p.db.execPlan(ctx, st, cfg)
}

// Query exposes the bound AST (canonical column names, expanded stars) for
// callers that inspect statements, e.g. to route or log them. The AST must
// not be modified.
func (p *Prepared) Query() *Query {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st.q
}
