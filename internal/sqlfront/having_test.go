package sqlfront

import (
	"reflect"
	"strconv"
	"testing"

	"repro/internal/query"
	"repro/internal/table"
)

func havingDB() *DB {
	db := NewDB()
	db.Register("tickets", catTicketsTable())
	return db
}

func tableFromRows(t *testing.T, cols []string, rows [][]string) *table.Table {
	t.Helper()
	tb := table.New(cols...)
	for _, r := range rows {
		tb.MustAppendRow(r...)
	}
	return tb
}

func mustExec(t *testing.T, db *DB, sql string, cfg ExecConfig) *Result {
	t.Helper()
	res, err := db.Exec(sql, cfg)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// --- HAVING ------------------------------------------------------------------

func TestHavingCountFiltersGroups(t *testing.T) {
	db := havingDB()
	// 24 billing rows, 16 refund rows; priority splits 0/1/2.
	all := mustExec(t, db, `SELECT category, COUNT(*) AS n FROM tickets GROUP BY category`, ExecConfig{})
	if len(all.Rows) != 2 {
		t.Fatalf("groups = %v", all.Rows)
	}
	res := mustExec(t, db, `SELECT category, COUNT(*) AS n FROM tickets GROUP BY category HAVING COUNT(*) > 20`, ExecConfig{})
	if len(res.Rows) != 1 || res.Rows[0][0] != "billing" || res.Rows[0][1] != "24" {
		t.Fatalf("HAVING kept %v", res.Rows)
	}
}

func TestHavingOrderedOperators(t *testing.T) {
	db := havingDB()
	for _, tc := range []struct {
		op   string
		want int // groups kept of billing=24, refund=16
	}{
		{">= 16", 2}, {"> 16", 1}, {"< 17", 1}, {"<= 24", 2}, {"= 16", 1}, {"<> 16", 1},
	} {
		res := mustExec(t, db,
			`SELECT category, COUNT(*) AS n FROM tickets GROUP BY category HAVING COUNT(*) `+tc.op, ExecConfig{})
		if len(res.Rows) != tc.want {
			t.Errorf("HAVING COUNT(*) %s kept %d groups, want %d: %v", tc.op, len(res.Rows), tc.want, res.Rows)
		}
	}
}

func TestHavingBooleanTreeAndGroupedColumn(t *testing.T) {
	db := havingDB()
	res := mustExec(t, db,
		`SELECT category, COUNT(*) AS n FROM tickets GROUP BY category
		 HAVING COUNT(*) > 10 AND NOT category = 'refund'`, ExecConfig{})
	if len(res.Rows) != 1 || res.Rows[0][0] != "billing" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestHavingOverLLMAggregate runs an aggregate over an LLM call in HAVING
// only (not selected): the planner must still schedule the stage, and the
// filter must act on its folded score.
func TestHavingOverLLMAggregate(t *testing.T) {
	db := havingDB()
	prompt := "Rate the urgency from 1 to 5."
	all := mustExec(t, db,
		`SELECT category, AVG(LLM('`+prompt+`', request)) AS score FROM tickets GROUP BY category`, ExecConfig{})
	if len(all.Rows) != 2 {
		t.Fatalf("groups = %v", all.Rows)
	}
	// Pick a threshold between the two group scores so HAVING keeps exactly
	// one group.
	a, _ := strconv.ParseFloat(all.Rows[0][1], 64)
	b, _ := strconv.ParseFloat(all.Rows[1][1], 64)
	if a == b {
		t.Skipf("degenerate fixture: equal group scores %v", a)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	threshold := strconv.FormatFloat((lo+hi)/2, 'f', 3, 64)
	res := mustExec(t, db,
		`SELECT category, COUNT(*) AS n FROM tickets GROUP BY category
		 HAVING AVG(LLM('`+prompt+`', request)) > `+threshold, ExecConfig{})
	if len(res.Rows) != 1 {
		t.Fatalf("HAVING over LLM aggregate kept %v (scores %v / %v)", res.Rows, a, b)
	}
	if res.Stages != 1 {
		t.Errorf("stages = %d, want 1 (HAVING LLM call planned once)", res.Stages)
	}
}

// TestHavingDedupsWithSelect: the same LLM aggregate in SELECT and HAVING
// runs one stage under the optimizer.
func TestHavingDedupsWithSelect(t *testing.T) {
	db := havingDB()
	sql := `SELECT category, AVG(LLM('Rate 1-5.', request)) AS score FROM tickets GROUP BY category
	        HAVING AVG(LLM('Rate 1-5.', request)) > 0`
	res := mustExec(t, db, sql, ExecConfig{})
	if res.Stages != 1 {
		t.Errorf("planned stages = %d, want 1", res.Stages)
	}
	naive := mustExec(t, db, sql, ExecConfig{Naive: true})
	if naive.Stages != 2 {
		t.Errorf("naive stages = %d, want 2", naive.Stages)
	}
	if !reflect.DeepEqual(res.Rows, naive.Rows) {
		t.Errorf("planned %v != naive %v", res.Rows, naive.Rows)
	}
}

// TestHavingWithoutGroupByAggregatesGlobally: HAVING over an ungrouped
// statement treats the whole relation as one group.
func TestHavingWithoutGroupBy(t *testing.T) {
	db := havingDB()
	res := mustExec(t, db, `SELECT COUNT(*) AS n FROM tickets HAVING COUNT(*) > 100`, ExecConfig{})
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v, want none (40 < 100)", res.Rows)
	}
	res = mustExec(t, db, `SELECT COUNT(*) AS n FROM tickets HAVING COUNT(*) >= 40`, ExecConfig{})
	if len(res.Rows) != 1 || res.Rows[0][0] != "40" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestHavingValidation(t *testing.T) {
	db := havingDB()
	for _, sql := range []string{
		// Ungrouped plain column in HAVING.
		`SELECT category, COUNT(*) FROM tickets GROUP BY category HAVING priority = '1'`,
		// Bare per-row LLM call in HAVING.
		`SELECT category, COUNT(*) FROM tickets GROUP BY category HAVING LLM('ok?', request) = 'Yes'`,
		// Aggregates are HAVING-only, not WHERE.
		`SELECT ticket_id FROM tickets WHERE COUNT(*) > 3`,
	} {
		if _, err := db.Exec(sql, ExecConfig{}); err == nil {
			t.Errorf("%s: accepted", sql)
		}
	}
}

// --- multi-key ORDER BY ------------------------------------------------------

func TestOrderByMultipleKeys(t *testing.T) {
	db := havingDB()
	res := mustExec(t, db,
		`SELECT category, priority, ticket_id FROM tickets ORDER BY category DESC, priority, ticket_id DESC LIMIT 4`,
		ExecConfig{})
	want := [][]string{
		// refund rows first (DESC), then priority ascending, ticket DESC.
		{"refund", "0", "T-1039"}, {"refund", "0", "T-1036"},
		{"refund", "0", "T-1033"}, {"refund", "0", "T-1030"},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderBySecondKeyBreaksTies(t *testing.T) {
	db := havingDB()
	one := mustExec(t, db, `SELECT priority, ticket_id FROM tickets ORDER BY priority LIMIT 3`, ExecConfig{})
	two := mustExec(t, db, `SELECT priority, ticket_id FROM tickets ORDER BY priority, ticket_id DESC LIMIT 3`, ExecConfig{})
	// Single-key sort is stable (original order); adding the DESC tiebreak
	// must reverse the ticket order within the priority-0 block.
	if one.Rows[0][1] != "T-1000" {
		t.Fatalf("stable single-key order lost: %v", one.Rows)
	}
	if two.Rows[0][1] != "T-1039" {
		t.Fatalf("tiebreak not applied: %v", two.Rows)
	}
}

func TestOrderByNumericEqualityFallsThrough(t *testing.T) {
	// '5' and '5.0' are equal under the numeric order; the second key must
	// decide their relative position.
	db := NewDB()
	t2 := tableFromRows(t, []string{"v", "k"}, [][]string{{"5.0", "b"}, {"5", "a"}, {"4", "z"}})
	db.Register("t", t2)
	res := mustExec(t, db, `SELECT v, k FROM t ORDER BY v, k`, ExecConfig{})
	want := [][]string{{"4", "z"}, {"5", "a"}, {"5.0", "b"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// --- ordered comparisons in WHERE -------------------------------------------

func TestWhereOrderedComparison(t *testing.T) {
	db := havingDB()
	res := mustExec(t, db, `SELECT ticket_id FROM tickets WHERE priority >= 2`, ExecConfig{})
	if len(res.Rows) != 13 { // ceil(40/3) rows with i%3 == 2
		t.Fatalf("rows = %d, want 13", len(res.Rows))
	}
	res = mustExec(t, db, `SELECT ticket_id FROM tickets WHERE priority < 1 AND category = 'billing'`, ExecConfig{})
	for _, r := range res.Rows {
		n, _ := strconv.Atoi(r[0][2:])
		if (n-1000)%3 != 0 {
			t.Fatalf("row %v has priority != 0", r)
		}
	}
}

// TestWhereOrderedAgainstLLMScore filters on an LLM aggregate-typed score
// with an ordered operator.
func TestWhereOrderedAgainstLLMScore(t *testing.T) {
	db := havingDB()
	sql := `SELECT ticket_id, AVG(LLM('Rate 1-5.', request)) AS s FROM tickets
	        WHERE LLM('Rate 1-5.', request) >= 3 GROUP BY ticket_id`
	res := mustExec(t, db, sql, ExecConfig{})
	for _, r := range res.Rows {
		v, err := strconv.ParseFloat(r[1], 64)
		if err != nil || v < 3 {
			t.Fatalf("row %v passed >= 3", r)
		}
	}
	if len(res.Rows) == 0 || len(res.Rows) == 40 {
		t.Fatalf("ordered LLM filter kept %d of 40 rows; expected a proper subset", len(res.Rows))
	}
}

// --- Prepared ---------------------------------------------------------------

func TestPreparedReusesAcrossConfigs(t *testing.T) {
	db := havingDB()
	p, err := db.Prepare(`SELECT category, COUNT(*) AS n FROM tickets GROUP BY category HAVING COUNT(*) > 20 ORDER BY n DESC, category`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Exec(ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := p.Exec(ExecConfig{Config: query.Config{Policy: query.CacheOriginal}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Rows, again.Rows) {
			t.Fatalf("run %d: %v != %v", i, again.Rows, first.Rows)
		}
	}
	naive, err := p.Exec(ExecConfig{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Rows, naive.Rows) {
		t.Fatalf("naive plan diverged: %v", naive.Rows)
	}
}

func TestPreparedTracksReregistration(t *testing.T) {
	db := NewDB()
	db.Register("t", tableFromRows(t, []string{"a"}, [][]string{{"x"}, {"y"}}))
	p, err := db.Prepare(`SELECT COUNT(*) AS n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Exec(ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "2" {
		t.Fatalf("count = %v", res.Rows)
	}
	db.Register("t", tableFromRows(t, []string{"a"}, [][]string{{"x"}, {"y"}, {"z"}}))
	res, err = p.Exec(ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "3" {
		t.Fatalf("count after re-registration = %v", res.Rows)
	}
}
