package sqlfront

import (
	"sort"

	"repro/internal/query"
	"repro/internal/table"
	"repro/internal/tokenizer"
)

// Cost-based ordering of LLM filter stages. When a statement carries several
// LLM predicates, the executor runs them as a cascade — each residual
// conjunct prunes the working relation as soon as its stage outputs exist —
// so the order of the pre-stages decides how many model calls the later,
// more expensive stages pay for. For independent predicates the cascade cost
//
//	N·c₁ + N·s₁·c₂ + N·s₁·s₂·c₃ + …
//
// is minimized by sorting stages on ascending rank cᵢ/(1−sᵢ), where cᵢ is
// the estimated per-call prompt cost in tokens and sᵢ the estimated
// selectivity (fraction of rows surviving the stage's conjuncts): cheap,
// selective filters first. ExecConfig.Naive keeps occurrence order instead,
// so the two orderings can be A/B measured on identical statements.

const (
	// costSampleRows bounds the rows sampled when estimating per-call prompt
	// tokens and label frequencies.
	costSampleRows = 64
	// aggScoreSpan is the synthetic aggregation alphabet 1..aggScoreSpan.
	aggScoreSpan = 5
)

// orderStagesByCost returns the pre-stages sorted cheapest-rank-first over
// the working relation tbl. residual is the statement's LLM-dependent WHERE
// remainder. Stages whose conjuncts prune nothing (selectivity ~1) rank
// last; the sort is stable, so ties keep occurrence order.
func orderStagesByCost(stages []PlannedStage, residual Expr, tbl *table.Table) []PlannedStage {
	if len(stages) < 2 {
		return stages
	}
	type ranked struct {
		st   PlannedStage
		rank float64
	}
	rs := make([]ranked, len(stages))
	for i, st := range stages {
		cost := estimateCallCost(st.Call, tbl)
		sel := estimateSelectivity(st, residual, tbl)
		rs[i] = ranked{st: st, rank: cost / (1 - sel + 1e-9)}
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].rank < rs[b].rank })
	out := make([]PlannedStage, len(rs))
	for i, r := range rs {
		out[i] = r.st
	}
	return out
}

// estimateCallCost estimates the mean prompt tokens of one invocation of c
// over tbl: the static prefix (system prompt + question) plus the token mass
// of the referenced fields, averaged over a row sample.
func estimateCallCost(c LLMCall, tbl *table.Table) float64 {
	cost := float64(tokenizer.Count(query.PromptPrefix(c.Prompt)))
	var cols []int
	if c.AllFields {
		for i := 0; i < tbl.NumCols(); i++ {
			cols = append(cols, i)
		}
	} else {
		for _, f := range c.Fields {
			if ci, ok := tbl.ColIndex(f.Column); ok {
				cols = append(cols, ci)
			}
		}
	}
	n := tbl.NumRows()
	if n > costSampleRows {
		n = costSampleRows
	}
	if n == 0 || len(cols) == 0 {
		return cost
	}
	var data int
	for r := 0; r < n; r++ {
		for _, ci := range cols {
			data += tokenizer.Count(tbl.Cell(r, ci))
		}
	}
	return cost + float64(data)/float64(n)
}

// estimateSelectivity estimates the fraction of rows that survive the
// residual conjuncts depending solely on st's call: for each such conjunct,
// the pass probability is the expectation over the stage's answer alphabet
// (the compared literals plus a none-of-the-above complement, or the
// sampled label distribution when the relation carries covering ground
// truth — the same alphabet filterChoices anchors at execution time).
// Conjuncts that also involve other stages or plain columns cannot cascade
// on this stage alone and contribute nothing; with no solo conjunct the
// estimate is 1 (the stage prunes nothing by itself).
func estimateSelectivity(st PlannedStage, residual Expr, tbl *table.Table) float64 {
	key := st.Call.Key()
	var solo []Expr
	for _, c := range conjuncts(residual) {
		keys := llmKeysOf(c)
		if len(keys) != 1 || !keys[key] {
			continue
		}
		plain := false
		walkCompares(c, func(cmp *Compare) {
			if cmp.LLM == nil {
				plain = true
			}
		})
		if !plain {
			solo = append(solo, c)
		}
	}
	if len(solo) == 0 {
		return 1
	}
	choices, probs := stageAlphabet(st, tbl)
	sel := 1.0
	for _, c := range solo {
		p := 0.0
		for i, choice := range choices {
			if evalWithOutput(c, choice) {
				p += probs[i]
			}
		}
		sel *= p
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// stageAlphabet models the stage's answer distribution. Aggregation stages
// score 1..aggScoreSpan uniformly. Filter stages answer from the relation's
// ground-truth labels when those cover every compared literal (probabilities
// sampled from the label column), and otherwise from the synthetic alphabet
// of compared literals plus a uniform none-of-the-above complement —
// mirroring filterChoices, which anchors the same alphabet at execution
// time.
func stageAlphabet(st PlannedStage, tbl *table.Table) (choices []string, probs []float64) {
	if st.Type == query.Aggregation {
		for s := 1; s <= aggScoreSpan; s++ {
			choices = append(choices, string(rune('0'+s)))
			probs = append(probs, 1.0/aggScoreSpan)
		}
		return choices, probs
	}
	literals := st.Literals
	if len(literals) == 0 {
		literals = []string{"Yes"}
	}
	if labels, ok := tbl.Hidden("label"); ok && len(labels) > 0 {
		n := len(labels)
		if n > 4*costSampleRows {
			n = 4 * costSampleRows
		}
		freq := map[string]int{}
		for _, l := range labels[:n] {
			freq[l]++
		}
		covered := true
		for _, lit := range literals {
			if freq[lit] == 0 {
				covered = false
				break
			}
		}
		if covered {
			for l, c := range freq {
				choices = append(choices, l)
				probs = append(probs, float64(c)/float64(n))
			}
			return choices, probs
		}
	}
	choices = append(append([]string(nil), literals...), complementLiteral(literals))
	probs = make([]float64, len(choices))
	for i := range probs {
		probs[i] = 1.0 / float64(len(choices))
	}
	return choices, probs
}

// evalWithOutput evaluates a conjunct whose only leaves are comparisons of
// one LLM call, with that call's output fixed to out.
func evalWithOutput(e Expr, out string) bool {
	leaf := map[*Compare]func(int) string{}
	walkCompares(e, func(c *Compare) {
		leaf[c] = func(int) string { return out }
	})
	return evalExpr(e, 0, leaf)
}
