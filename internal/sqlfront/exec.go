package sqlfront

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

// DB is a registry of named tables that LLM-SQL statements run against.
// Statements may join any number of registered tables (FROM a JOIN b ON ...),
// including the same table under two aliases.
//
// A DB is safe for concurrent use: registration is guarded, statements
// resolve their tables against a consistent snapshot of the registry, and
// execution never mutates a registered table (stages project fresh copies).
// Registering a new table under an existing name does not affect statements
// already executing against the old one.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*table.Table // guarded by mu
	version uint64                  // guarded by mu
}

// NewDB returns an empty registry.
func NewDB() *DB {
	return &DB{tables: make(map[string]*table.Table)}
}

// Register makes t queryable under name (case-sensitive, last write wins).
func (db *DB) Register(name string, t *table.Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[name] = t
	db.version++
}

// Version increments on every Register; prepared statements use it to detect
// a stale registry snapshot.
func (db *DB) Version() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.version
}

// Tables returns the registered names in sorted order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExecConfig extends the query execution config with output-length defaults
// for ad-hoc statements (benchmark specs carry their own).
type ExecConfig struct {
	query.Config
	// FilterOutTokens / ProjectionOutTokens / AggOutTokens default to
	// 2 / 40 / 2 — the regimes of Table 1.
	FilterOutTokens     int
	ProjectionOutTokens int
	AggOutTokens        int
	// Naive disables the logical planner's optimizations: no predicate
	// pushdown (below or above the join), one LLM stage per call occurrence
	// instead of per distinct call, occurrence order instead of cost-based
	// filter ordering, and no cascading of residual conjuncts between
	// stages. Query semantics are unchanged — the simulated oracle keys its
	// per-row draws by row content, so a row's answer does not depend on
	// which plan fed it to a stage — but serving cost (LLMCalls, JCT) is.
	// One caveat survives, faithfully to the paper's Sec. 6.4: on relations
	// whose name carries a non-zero oracle position coefficient (the bundled
	// datasets), per-row accuracy still depends on where GGR serializes the
	// key field, and reordering may choose different field orders for
	// different stage inputs — so borderline rows can flip between plans
	// there, exactly as a position-sensitive real model would.
	Naive bool
	// StageRunner, when non-nil, executes every LLM stage in place of
	// query.RunStageContext. The concurrent serving runtime
	// (internal/runtime) injects its cross-query batching and
	// result-caching executor here; the hook must honor ctx and return
	// outputs indexed by the stage table's rows, exactly as
	// query.RunStageContext does. The serving backend itself is selected by
	// the embedded query.Config.Backend — StageRunner sits above that seam.
	StageRunner func(ctx context.Context, spec query.Spec, tbl *table.Table, cfg query.Config) (*query.StageResult, error)
	// StageObserver, when non-nil, receives one StageObservation per LLM
	// stage the statement executed, after the statement completes
	// successfully. RowsOut is filled in (and selectivity thereby observed)
	// only for stages whose output the WHERE cascade consumed to prune the
	// working relation; projection and aggregate stages report RowsOut = -1.
	// The serving runtime injects its per-StageKey rollup collector here.
	StageObserver func(obs.StageObservation)
}

func (c ExecConfig) filterOut() int {
	if c.FilterOutTokens > 0 {
		return c.FilterOutTokens
	}
	return 2
}

func (c ExecConfig) projOut() int {
	if c.ProjectionOutTokens > 0 {
		return c.ProjectionOutTokens
	}
	return 40
}

func (c ExecConfig) aggOut() int {
	if c.AggOutTokens > 0 {
		return c.AggOutTokens
	}
	return 2
}

// Result is an executed statement's output relation plus serving statistics.
type Result struct {
	Columns []string
	Rows    [][]string
	// JCT is total virtual serving time over all LLM stages; HitRate the
	// prompt-token-weighted prefix cache hit rate; SolverSeconds total
	// reordering time; LLMCalls the number of model invocations.
	JCT           float64
	HitRate       float64
	SolverSeconds float64
	LLMCalls      int
	Stages        int
}

// Exec parses, plans, and runs one LLM-SQL statement. Every LLM stage is
// scheduled under cfg.Policy, so switching the policy (no-cache / original /
// GGR) changes only performance, never results. The logical plan additionally
// pushes table-local plain predicates below the join, places the join ahead
// of every LLM stage, runs each distinct LLM call once, and cascades
// cost-ordered LLM filters so expensive stages see only rows the cheap ones
// kept (see Plan); cfg.Naive reverts to the unoptimized plan for comparison.
// Exec is ExecContext without cancellation.
func (db *DB) Exec(src string, cfg ExecConfig) (*Result, error) {
	//llmqlint:detached -- no-cancellation convenience wrapper over ExecContext
	return db.ExecContext(context.Background(), src, cfg)
}

// ExecContext is Exec honoring ctx: cancellation is checked before every
// LLM stage (and between engine steps within one), and a canceled statement
// returns an error wrapping ctx.Err().
func (db *DB) ExecContext(ctx context.Context, src string, cfg ExecConfig) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return db.ExecParsedContext(ctx, q, cfg)
}

// ExecParsed is Exec for an already-parsed statement (callers that inspect
// the AST first, e.g. llmq.ExecSQL, avoid parsing twice). Binding resolves
// q's column references in place, so q is consumed: executing it again
// requires a fresh Parse (or a Prepared statement, which keeps the bound
// form and both plans for repeated execution).
func (db *DB) ExecParsed(q *Query, cfg ExecConfig) (*Result, error) {
	//llmqlint:detached -- no-cancellation convenience wrapper over ExecParsedContext
	return db.ExecParsedContext(context.Background(), q, cfg)
}

// ExecParsedContext is ExecParsed honoring ctx.
func (db *DB) ExecParsedContext(ctx context.Context, q *Query, cfg ExecConfig) (*Result, error) {
	st, err := db.prepareParsed(q)
	if err != nil {
		return nil, err
	}
	return db.execPlan(ctx, st, cfg)
}

// preparedState is a statement after parsing, binding, validation, and
// planning: everything execution needs except the per-run configuration.
// It is immutable after construction, so any number of executions may share
// it concurrently.
type preparedState struct {
	q       *Query
	sc      *scope
	joins   []boundJoin
	planned *Plan // optimized
	naive   *Plan // occurrence-ordered, no pushdown
	version uint64
}

// prepareParsed binds and plans a parsed statement against the current
// registry snapshot. q is consumed (binding rewrites it in place).
func (db *DB) prepareParsed(q *Query) (*preparedState, error) {
	sc, version, err := db.scopeFor(q)
	if err != nil {
		return nil, err
	}
	joins, err := bind(q, sc)
	if err != nil {
		return nil, err
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	planned, err := BuildPlan(q, sc, true)
	if err != nil {
		return nil, err
	}
	naive, err := BuildPlan(q, sc, false)
	if err != nil {
		return nil, err
	}
	return &preparedState{q: q, sc: sc, joins: joins, planned: planned, naive: naive, version: version}, nil
}

// execPlan runs a prepared statement. It never mutates st, so concurrent
// executions of the same prepared statement are safe. ctx is checked before
// every LLM stage and passed through to the stage runner, so a canceled
// statement stops between stages (mid-cascade, the remaining costlier
// stages never run) and mid-batch inside one.
func (db *DB) execPlan(ctx context.Context, st *preparedState, cfg ExecConfig) (*Result, error) {
	q, sc, joins := st.q, st.sc, st.joins
	pl := st.planned
	if cfg.Naive {
		pl = st.naive
	}

	res := &Result{}
	var promptTok, matchedTok int64

	// Observability: when the statement is traced (a span rides ctx) or a
	// StageObserver is attached, every LLM stage gets a "stage:<name>" child
	// span and a StageObservation record. Both are skipped entirely otherwise
	// — the nil-span fast path keeps untraced statements allocation-free.
	traceSp := obs.FromContext(ctx)
	observing := traceSp != nil || cfg.StageObserver != nil
	type stageRecord struct {
		ob obs.StageObservation
		sp *obs.Span
	}
	var records []*stageRecord
	var lastRec *stageRecord

	runStage := func(spec query.Spec, tbl *table.Table) (*query.StageResult, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		run := query.RunStageContext
		if cfg.StageRunner != nil {
			run = cfg.StageRunner
		}
		sctx := ctx
		var sp *obs.Span
		if observing {
			sp = traceSp.Child("stage:" + spec.Name)
			sp.Set("dataset", spec.Dataset)
			sp.Set("rows", tbl.NumRows())
			sctx = obs.With(sctx, sp)
		}
		st, err := run(sctx, spec, tbl, cfg.Config)
		sp.End()
		if err != nil {
			sp.Set("error", err.Error())
			return nil, err
		}
		res.Stages++
		res.JCT += st.Metrics.JCT
		res.SolverSeconds += st.SolverSeconds
		res.LLMCalls += st.ModelCalls
		promptTok += st.Metrics.PromptTokens
		matchedTok += st.Metrics.MatchedTokens
		if observing {
			lastRec = &stageRecord{
				ob: obs.StageObservation{
					StageKey:      query.StageKey(spec, tbl.Columns(), cfg.Config),
					Name:          spec.Name,
					Dataset:       spec.Dataset,
					Rows:          tbl.NumRows(),
					RowsOut:       -1, // unobserved until the cascade prunes on this stage
					ModelCalls:    st.ModelCalls,
					PromptTokens:  st.Metrics.PromptTokens,
					MatchedTokens: st.Metrics.MatchedTokens,
					JCTSeconds:    st.Metrics.JCT,
					SolverSeconds: st.SolverSeconds,
				},
				sp: sp,
			}
			records = append(records, lastRec)
		}
		return st, nil
	}

	// 1. Table-local pushdown: prune each base table with its own plain
	// predicates below the join, so the join itself is cheaper and no LLM
	// stage ever sees a row a cheap filter can discard.
	bases := make([]*table.Table, len(sc.tables))
	for i := range sc.tables {
		bases[i] = sc.tables[i].tbl
		if pl.TablePushed[i] == nil {
			continue
		}
		passing, err := passingRows(bases[i], pl.TablePushed[i], nil, sc.lookupFor(i))
		if err != nil {
			return nil, err
		}
		bases[i] = bases[i].FilterRows(passing)
	}

	// 2. Join placement: materialize the joined working relation before any
	// model stage, so LLM calls run on the joined-and-filtered relation only.
	working := sc.joinAll(bases, joins)

	// 3. Plain predicates spanning tables run right after the join.
	if pl.Pushed != nil {
		passing, err := passingRows(working, pl.Pushed, nil, working.ColIndex)
		if err != nil {
			return nil, err
		}
		working = working.FilterRows(passing)
	}

	// 4. Stages the WHERE residual depends on, one per distinct call,
	// cheapest-rank-first (cost.go). Each residual conjunct is evaluated —
	// and the working relation pruned — as soon as the stage outputs it
	// needs exist, so later, costlier stages run over fewer rows. Naive mode
	// keeps occurrence order and evaluates the WHERE in one piece at the
	// end, exactly the unoptimized cascade.
	pre := pl.PreStages
	var pending []Expr
	if pl.Residual != nil {
		if cfg.Naive {
			pending = []Expr{pl.Residual}
		} else {
			pre = orderStagesByCost(pre, pl.Residual, working)
			pending = conjuncts(pl.Residual)
		}
	}
	outputs := map[string][]string{}
	// recordByKey maps a residual call's key to its stage record, so the
	// prune that consumes the stage's outputs can back-fill the observed
	// RowsOut (and thereby the stage's selectivity).
	recordByKey := map[string]*stageRecord{}
	applyReady := func() error {
		var ready Expr
		var rest []Expr
		for _, c := range pending {
			ok := true
			for k := range llmKeysOf(c) {
				if _, have := outputs[k]; !have {
					ok = false
					break
				}
			}
			if ok {
				ready = conjoin(ready, c)
			} else {
				rest = append(rest, c)
			}
		}
		pending = rest
		if ready == nil {
			return nil
		}
		passing, err := passingRows(working, ready, outputs, working.ColIndex)
		if err != nil {
			return err
		}
		working = working.FilterRows(passing)
		for k, outs := range outputs {
			kept := make([]string, len(passing))
			for i, p := range passing {
				if p < len(outs) {
					kept[i] = outs[p]
				}
			}
			outputs[k] = kept
		}
		for k := range llmKeysOf(ready) {
			rec := recordByKey[k]
			if rec == nil || rec.ob.RowsOut >= 0 {
				continue
			}
			rec.ob.RowsOut = len(passing)
			rec.sp.Set("rowsOut", len(passing))
			if rec.ob.Rows > 0 {
				rec.sp.Set("selectivity", float64(len(passing))/float64(rec.ob.Rows))
			}
		}
		return nil
	}
	for _, st := range pre {
		lastRec = nil
		outs, err := runPlannedStage(st, sc.datasetName(), working, cfg, runStage)
		if err != nil {
			return nil, err
		}
		outputs[st.Call.Key()] = outs
		if lastRec != nil {
			recordByKey[st.Call.Key()] = lastRec
		}
		// Naive mode does not cascade: every occurrence-ordered stage runs
		// over the same unpruned relation, and the WHERE applies once below.
		if !cfg.Naive {
			if err := applyReady(); err != nil {
				return nil, err
			}
		}
	}
	// Naive WHERE evaluation (and the no-LLM WHERE, which waits on nothing).
	if err := applyReady(); err != nil {
		return nil, err
	}

	// 5. Remaining stages (SELECT projections, aggregate arguments) over
	// surviving rows only.
	for _, st := range pl.PostStages {
		outs, err := runPlannedStage(st, sc.datasetName(), working, cfg, runStage)
		if err != nil {
			return nil, err
		}
		outputs[st.Call.Key()] = outs
	}

	// 6. Materialize the output relation (HAVING filters groups here).
	var err error
	if isAggregated(q) {
		err = buildGrouped(q, working, outputs, res)
	} else {
		err = buildRowwise(q, working, outputs, res)
	}
	if err != nil {
		return nil, err
	}

	// 7. ORDER BY and LIMIT shape the final relation.
	if err := applyOrderLimit(q, res, sc); err != nil {
		return nil, err
	}
	finishStats(res, promptTok, matchedTok)
	// Flush observations only on success: a failed statement's partial
	// stages would skew the per-StageKey rollups.
	if cfg.StageObserver != nil {
		for _, rec := range records {
			cfg.StageObserver(rec.ob)
		}
	}
	return res, nil
}

// datasetName identifies the statement's relation in stage specs and oracle
// seeds: the table name, or the aliases of a join.
func (sc *scope) datasetName() string {
	if !sc.multi {
		return sc.tables[0].name
	}
	parts := make([]string, len(sc.tables))
	for i, t := range sc.tables {
		parts[i] = t.alias
	}
	return strings.Join(parts, "+")
}

// runPlannedStage projects the stage's fields, fills in the serving spec for
// its type, and runs it on the simulator, returning per-row outputs.
func runPlannedStage(st PlannedStage, dataset string, working *table.Table, cfg ExecConfig,
	runStage func(query.Spec, *table.Table) (*query.StageResult, error)) ([]string, error) {

	proj, err := projectCall(working, st.Call)
	if err != nil {
		return nil, err
	}
	spec := query.Spec{
		Name:       st.Name(),
		Dataset:    dataset,
		Type:       st.Type,
		UserPrompt: st.Call.Prompt,
		KeyField:   keyField(proj, st.Call),
		// Key the oracle's latent draws by row content (not position), so a
		// row's answer is independent of how the plan ordered, joined, or
		// pruned the stage's input; planned and naive executions then return
		// identical relations up to the oracle's field-position accuracy
		// model (see ExecConfig.Naive).
		RowKeys: rowKeysFor(proj, st.Call.Prompt),
	}
	switch st.Type {
	case query.Filter:
		spec.OutTokens = cfg.filterOut()
		spec.Choices, spec.TruthHidden = filterChoices(proj, st.Call.Prompt, st.Literals)
	case query.Aggregation:
		spec.OutTokens = cfg.aggOut()
		truthCol := "score"
		if _, ok := proj.Hidden("score"); !ok {
			truthCol = synthesizeScores(proj, st.Call.Prompt)
		}
		spec.TruthHidden = truthCol
	default:
		spec.OutTokens = cfg.projOut()
	}
	stRes, err := runStage(spec, proj)
	if err != nil {
		return nil, err
	}
	return stRes.Outputs, nil
}

// rowKeysFor derives content-keyed oracle row keys for a stage over t,
// seeded by the call's prompt so different questions draw independently.
func rowKeysFor(t *table.Table, prompt string) func(int) uint64 {
	seed := strHash(prompt)
	return func(row int) uint64 { return splitmix(rowHash(t, row) + seed) }
}

// passingRows evaluates e over every row of t, resolving LLM comparisons
// against the outputs map (keyed by LLMCall.Key, indexed by row) and plain
// columns through lookup (t.ColIndex for relations in their own namespace;
// scope.lookupFor for canonical names over a base table). Each comparison
// leaf is resolved to its value source once, not per row.
func passingRows(t *table.Table, e Expr, outputs map[string][]string, lookup func(string) (int, bool)) ([]int, error) {
	leaf := map[*Compare]func(row int) string{}
	var lerr error
	walkCompares(e, func(c *Compare) {
		if lerr != nil {
			return
		}
		if c.LLM != nil {
			outs, ok := outputs[c.LLM.Key()]
			if !ok {
				lerr = fmt.Errorf("sql: internal error: no stage outputs for %s", c.LLM)
				return
			}
			leaf[c] = func(row int) string {
				if row < len(outs) {
					return outs[row]
				}
				return ""
			}
		} else {
			ci, ok := lookup(c.Col.Column)
			if !ok {
				lerr = fmt.Errorf("sql: unknown column %q in WHERE", c.Col.Column)
				return
			}
			leaf[c] = func(row int) string { return t.Cell(row, ci) }
		}
	})
	if lerr != nil {
		return nil, lerr
	}
	var passing []int
	for i := 0; i < t.NumRows(); i++ {
		if evalExpr(e, i, leaf) {
			passing = append(passing, i)
		}
	}
	return passing, nil
}

// evalExpr evaluates a boolean tree for one row; leaf holds the pre-resolved
// value source of every comparison (passingRows built it, so every leaf of e
// is present).
func evalExpr(e Expr, row int, leaf map[*Compare]func(int) string) bool {
	switch n := e.(type) {
	case *BinaryExpr:
		left := evalExpr(n.Left, row, leaf)
		if (n.Op == "AND" && !left) || (n.Op == "OR" && left) {
			return left
		}
		return evalExpr(n.Right, row, leaf)
	case *NotExpr:
		return !evalExpr(n.Inner, row, leaf)
	case *Compare:
		return n.matches(leaf[n](row))
	}
	return false
}

// matches compares a cell or model output against the comparison's literal.
// Equality (and its negation) holds numerically whenever both sides parse as
// finite numbers ('5.0' equals a score of 5, quoted or not) and by exact
// string equality otherwise; the ordered operators use valueLess's total
// order, where finite numbers compare numerically and sort before every
// non-numeric string.
func (c *Compare) matches(actual string) bool {
	switch c.Op {
	case OpLt:
		return valueLess(actual, c.Literal)
	case OpLe:
		return !valueLess(c.Literal, actual)
	case OpGt:
		return valueLess(c.Literal, actual)
	case OpGe:
		return !valueLess(actual, c.Literal)
	}
	eq := actual == c.Literal
	if !eq {
		if av, okA := parseNum(actual); okA {
			if lv, okL := parseNum(c.Literal); okL {
				eq = av == lv
			}
		}
	}
	return eq != (c.Op == OpNeq)
}

// buildRowwise materializes a non-aggregate SELECT: one output row per
// surviving input row, mixing static columns and LLM stage outputs.
func buildRowwise(q *Query, working *table.Table, outputs map[string][]string, res *Result) error {
	type colSource struct {
		name    string
		static  int      // column index into working, or -1
		outputs []string // LLM outputs when static < 0
	}
	var sources []colSource
	llmSeq := 0
	for _, item := range q.Select {
		switch {
		case item.Star:
			for ci, c := range working.Columns() {
				sources = append(sources, colSource{name: c, static: ci})
			}
		case item.LLM == nil:
			ci, ok := working.ColIndex(item.Col.Column)
			if !ok {
				return fmt.Errorf("sql: unknown column %q", item.Col.Column)
			}
			sources = append(sources, colSource{name: aliasOr(item, item.Col.Column), static: ci})
		default:
			llmSeq++
			outs, ok := outputs[item.LLM.Key()]
			if !ok {
				return fmt.Errorf("sql: internal error: no stage outputs for %s", item.LLM)
			}
			sources = append(sources, colSource{
				name:    aliasOr(item, fmt.Sprintf("llm_%d", llmSeq)),
				static:  -1,
				outputs: outs,
			})
		}
	}

	for _, s := range sources {
		res.Columns = append(res.Columns, s.name)
	}
	for i := 0; i < working.NumRows(); i++ {
		row := make([]string, len(sources))
		for j, s := range sources {
			if s.static >= 0 {
				row[j] = working.Cell(i, s.static)
			} else if i < len(s.outputs) {
				row[j] = s.outputs[i]
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}

// buildGrouped materializes an aggregated SELECT: one output row per GROUP
// BY group (or a single global group), folding plain columns and LLM stage
// outputs through the aggregate functions.
func buildGrouped(q *Query, working *table.Table, outputs map[string][]string, res *Result) error {
	groupIdx := make([]int, len(q.GroupBy))
	for i, c := range q.GroupBy {
		ci, ok := working.ColIndex(c.Column)
		if !ok {
			return fmt.Errorf("sql: unknown column %q in GROUP BY", c.Column)
		}
		groupIdx[i] = ci
	}

	// Groups in first-appearance order; no GROUP BY = one global group, which
	// aggregates even an empty relation into one row (COUNT(*) = 0).
	var keys []string
	rowsByKey := map[string][]int{}
	if len(q.GroupBy) == 0 {
		all := make([]int, working.NumRows())
		for i := range all {
			all[i] = i
		}
		keys = []string{""}
		rowsByKey[""] = all
	} else {
		for i := 0; i < working.NumRows(); i++ {
			var kb strings.Builder
			for _, ci := range groupIdx {
				kb.WriteString(working.Cell(i, ci))
				kb.WriteByte(0)
			}
			k := kb.String()
			if _, ok := rowsByKey[k]; !ok {
				keys = append(keys, k)
			}
			rowsByKey[k] = append(rowsByKey[k], i)
		}
	}

	aggSeq := 0
	for _, item := range q.Select {
		if item.Agg == AggNone {
			res.Columns = append(res.Columns, aliasOr(item, item.Col.Column))
		} else {
			aggSeq++
			def := strings.ToLower(string(item.Agg)) + "_" + strconv.Itoa(aggSeq)
			res.Columns = append(res.Columns, aliasOr(item, def))
		}
	}

	for _, k := range keys {
		rows := rowsByKey[k]
		if q.Having != nil {
			pass, err := groupPasses(q.Having, working, rows, outputs)
			if err != nil {
				return err
			}
			if !pass {
				continue
			}
		}
		out := make([]string, 0, len(q.Select))
		for _, item := range q.Select {
			if item.Agg == AggNone {
				// validate guarantees the column is grouped, so it is
				// constant within the group.
				ci, ok := working.ColIndex(item.Col.Column)
				if !ok {
					return fmt.Errorf("sql: unknown column %q", item.Col.Column)
				}
				var v string
				if len(rows) > 0 {
					v = working.Cell(rows[0], ci)
				}
				out = append(out, v)
				continue
			}
			vals, err := aggInputs(item, working, rows, outputs)
			if err != nil {
				return err
			}
			out = append(out, aggregate(item.Agg, item.AggStar, vals, len(rows)))
		}
		res.Rows = append(res.Rows, out)
	}
	return nil
}

// groupPasses evaluates a HAVING expression for one group. Aggregate leaves
// fold the group's values through the same aggregate machinery as SELECT
// items; plain-column leaves read the group's (validated-constant) value.
func groupPasses(e Expr, t *table.Table, rows []int, outputs map[string][]string) (bool, error) {
	leaf := map[*Compare]func(int) string{}
	var lerr error
	walkCompares(e, func(c *Compare) {
		if lerr != nil {
			return
		}
		var v string
		if c.Agg != AggNone {
			item := SelectItem{Agg: c.Agg, AggStar: c.AggStar, LLM: c.LLM, Col: c.Col}
			vals, err := aggInputs(item, t, rows, outputs)
			if err != nil {
				lerr = err
				return
			}
			v = aggregate(c.Agg, c.AggStar, vals, len(rows))
		} else {
			// validate guarantees the column is grouped, so it is constant
			// within the group.
			ci, ok := t.ColIndex(c.Col.Column)
			if !ok {
				lerr = fmt.Errorf("sql: unknown column %q in HAVING", c.Col.Column)
				return
			}
			if len(rows) > 0 {
				v = t.Cell(rows[0], ci)
			}
		}
		val := v
		leaf[c] = func(int) string { return val }
	})
	if lerr != nil {
		return false, lerr
	}
	return evalExpr(e, 0, leaf), nil
}

// aggInputs collects the values one aggregate ranges over within a group.
func aggInputs(item SelectItem, t *table.Table, rows []int, outputs map[string][]string) ([]string, error) {
	if item.AggStar {
		return nil, nil // COUNT(*) needs only the group size
	}
	vals := make([]string, 0, len(rows))
	if item.LLM != nil {
		outs, ok := outputs[item.LLM.Key()]
		if !ok {
			return nil, fmt.Errorf("sql: internal error: no stage outputs for %s", item.LLM)
		}
		for _, r := range rows {
			if r < len(outs) {
				vals = append(vals, outs[r])
			}
		}
		return vals, nil
	}
	ci, ok := t.ColIndex(item.Col.Column)
	if !ok {
		return nil, fmt.Errorf("sql: unknown column %q under %s", item.Col.Column, item.Agg)
	}
	for _, r := range rows {
		vals = append(vals, t.Cell(r, ci))
	}
	return vals, nil
}

// aggregate folds one group's values. COUNT counts non-empty values
// (COUNT(*) counts rows); SUM and AVG fold the values that parse as numbers;
// MIN and MAX pick the extremum under valueLess's total order, returning the
// chosen value verbatim.
func aggregate(fn AggFunc, star bool, vals []string, groupSize int) string {
	switch fn {
	case AggCount:
		if star {
			return strconv.Itoa(groupSize)
		}
		n := 0
		for _, v := range vals {
			if v != "" {
				n++
			}
		}
		return strconv.Itoa(n)
	case AggSum, AggAvg:
		var sum float64
		var n int
		for _, v := range vals {
			if f, ok := parseNum(v); ok {
				sum += f
				n++
			}
		}
		if fn == AggAvg {
			if n == 0 {
				return strconv.FormatFloat(0, 'f', 3, 64)
			}
			return strconv.FormatFloat(sum/float64(n), 'f', 3, 64)
		}
		return strconv.FormatFloat(sum, 'f', 3, 64)
	case AggMin, AggMax:
		if len(vals) == 0 {
			return ""
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if (fn == AggMin && valueLess(v, best)) || (fn == AggMax && valueLess(best, v)) {
				best = v
			}
		}
		return best
	}
	return ""
}

// applyOrderLimit sorts the result relation by the ORDER BY keys (compared
// left to right, each ascending or descending independently) and truncates it
// to LIMIT. Every key must name an output column of the statement: an alias,
// a column as it was selected, or any spelling (qualified or not) that
// resolves to a selected column's canonical name.
func applyOrderLimit(q *Query, res *Result, sc *scope) error {
	if len(q.OrderBy) > 0 {
		type sortKey struct {
			col  int
			desc bool
		}
		keys := make([]sortKey, len(q.OrderBy))
		for i, o := range q.OrderBy {
			name := o.Col.display()
			col := slices.Index(res.Columns, name)
			if col < 0 && sc != nil {
				// Not an alias or verbatim header; try the reference's
				// canonical working-relation name (ORDER BY request ↔
				// SELECT t.request).
				if canon, _, err := sc.resolve(o.Col, len(sc.tables), ""); err == nil {
					col = slices.Index(res.Columns, canon)
				}
			}
			if col < 0 {
				return fmt.Errorf("sql: ORDER BY column %q is not an output column of the statement", name)
			}
			keys[i] = sortKey{col: col, desc: o.Desc}
		}
		sort.SliceStable(res.Rows, func(i, j int) bool {
			for _, k := range keys {
				a, b := res.Rows[i][k.col], res.Rows[j][k.col]
				if a == b {
					continue
				}
				if k.desc {
					a, b = b, a
				}
				if valueLess(a, b) {
					return true
				}
				if valueLess(b, a) {
					return false
				}
				// Equal under the order (e.g. '5' vs '5.0'): next key.
			}
			return false
		})
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return nil
}

// parseNum parses a finite number. "NaN" and "Inf" (which ParseFloat
// accepts) are treated as plain strings: NaN compares as neither less nor
// greater than anything and would break valueLess's strict weak ordering.
func parseNum(s string) (float64, bool) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, false
	}
	return f, true
}

// valueLess is a total order over cell values: finite numbers order among
// themselves numerically and before every non-numeric string; non-numeric
// strings order lexicographically. Keeping it a strict weak ordering (no
// mixed numeric/lexicographic cycles) is what sort.SliceStable and the
// MIN/MAX fold both require.
func valueLess(a, b string) bool {
	af, okA := parseNum(a)
	bf, okB := parseNum(b)
	switch {
	case okA && okB:
		return af < bf
	case okA:
		return true
	case okB:
		return false
	}
	return a < b
}

func finishStats(res *Result, promptTok, matchedTok int64) {
	if promptTok > 0 {
		res.HitRate = float64(matchedTok) / float64(promptTok)
	}
}

// isAggregated reports whether the statement needs grouped evaluation.
// HAVING forces it: a group filter over an ungrouped statement treats the
// whole relation as one group, exactly like a bare aggregate select.
func isAggregated(q *Query) bool {
	if len(q.GroupBy) > 0 || q.Having != nil {
		return true
	}
	for _, item := range q.Select {
		if item.Agg != AggNone {
			return true
		}
	}
	return false
}

// validate checks the aggregate/grouping shape of a bound statement; column
// existence and ambiguity were already settled by bind. ORDER BY is resolved
// against the output relation at execution time (aliases and star expansion
// are only known then).
func validate(q *Query) error {
	grouped := map[string]bool{}
	for _, c := range q.GroupBy {
		grouped[c.Column] = true
	}
	aggregated := isAggregated(q)

	for _, item := range q.Select {
		switch {
		case item.Star:
			if aggregated {
				return fmt.Errorf("sql: SELECT * cannot be combined with aggregates, GROUP BY, or HAVING")
			}
		case item.Agg != AggNone:
			// Any aggregate argument shape is legal.
		case item.LLM != nil:
			if aggregated {
				return fmt.Errorf("sql: LLM projection must be wrapped in an aggregate when aggregates, GROUP BY, or HAVING are present")
			}
		default:
			if aggregated && !grouped[item.Col.Column] {
				return fmt.Errorf("sql: column %q must appear in GROUP BY or under an aggregate", item.Col.Column)
			}
		}
	}

	// HAVING is evaluated per group: every leaf must be an aggregate or a
	// grouped column; a bare LLM call would be a per-row value.
	var herr error
	walkCompares(q.Having, func(c *Compare) {
		if herr != nil || c.Agg != AggNone {
			return
		}
		switch {
		case c.LLM != nil:
			herr = fmt.Errorf("sql: LLM call in HAVING must be wrapped in an aggregate (it is a per-row value; HAVING filters groups)")
		case !grouped[c.Col.Column]:
			herr = fmt.Errorf("sql: column %q in HAVING must appear in GROUP BY or under an aggregate", c.Col.Column)
		}
	})
	return herr
}

func aliasOr(item SelectItem, def string) string {
	if item.Alias != "" {
		return item.Alias
	}
	return def
}

// projectCall restricts the table to the call's field list (or keeps all
// fields for {T.*}); hidden columns and restricted FDs carry over. The
// result is always a fresh table so stages may attach synthetic truth
// columns without mutating the registered relation.
func projectCall(t *table.Table, c LLMCall) (*table.Table, error) {
	if c.AllFields {
		return t.Select(t.Columns()...)
	}
	cols := make([]string, len(c.Fields))
	for i, f := range c.Fields {
		cols[i] = f.Column
	}
	return t.Select(cols...)
}

// keyField picks the field the oracle's position model watches: the first
// listed field (the paper's examples put the semantic key first).
func keyField(t *table.Table, c LLMCall) string {
	if len(c.Fields) > 0 {
		return c.Fields[0].Column
	}
	cols := t.Columns()
	if len(cols) > 0 {
		return cols[0]
	}
	return ""
}

// filterChoices determines the answer alphabet for an ad-hoc filter stage.
// When the table carries ground-truth labels containing every compared
// literal, the oracle answers from them; otherwise a synthetic truth column
// is attached with a deterministic per-row draw over all compared literals
// plus a none-of-the-above complement, so every comparison branch of the
// statement is reachable. The draw is seeded by the call's prompt so two
// different questions over the same fields get independent truths.
func filterChoices(t *table.Table, prompt string, literals []string) (choices []string, truthCol string) {
	if len(literals) == 0 {
		literals = []string{"Yes"}
	}
	if labels, ok := t.Hidden("label"); ok {
		distinct := map[string]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		all := true
		for _, lit := range literals {
			if !distinct[lit] {
				all = false
				break
			}
		}
		if all {
			for l := range distinct {
				choices = append(choices, l)
			}
			sort.Strings(choices)
			return choices, "label"
		}
	}
	choices = append(append([]string(nil), literals...), complementLiteral(literals))
	seed := strHash(prompt)
	for _, lit := range literals {
		seed += uint64(len(lit))
	}
	vals := make([]string, t.NumRows())
	for i := range vals {
		vals[i] = choices[splitmix(rowHash(t, i)+seed)%uint64(len(choices))]
	}
	const col = "__sql_truth"
	if err := t.SetHidden(col, vals); err != nil {
		// Unreachable: vals matches the row count by construction.
		panic(err)
	}
	return choices, col
}

// complementLiteral is the none-of-the-above answer of a synthetic filter
// alphabet. It must not collide with a literal the user actually compares
// against, or that branch's draw is skewed and ambiguous.
func complementLiteral(literals []string) string {
	comp := "NOT " + literals[0]
	for slices.Contains(literals, comp) {
		comp = "NOT " + comp
	}
	return comp
}

// rowHash keys synthetic ground truth — and, via Spec.RowKeys, the oracle's
// latent answer draws — by row content rather than position, so a row keeps
// its truth and its answer no matter how pushdown, joins, or projection
// reindex the stage's input table (a real model's answer does not depend on
// where a row sits in the batch either).
func rowHash(t *table.Table, row int) uint64 {
	var h uint64 = 1469598103934665603
	for _, cell := range t.Row(row) {
		h = fnvMix(h, cell)
	}
	return h
}

func strHash(s string) uint64 {
	return fnvMix(1469598103934665603, s)
}

func fnvMix(h uint64, s string) uint64 {
	const prime = 1099511628211
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= 0x1f
	h *= prime
	return h
}

// synthesizeScores attaches a deterministic 1..5 ground-truth score column
// for ad-hoc aggregates over tables without one, keyed by row content and
// the call's prompt (see rowHash).
func synthesizeScores(t *table.Table, prompt string) string {
	seed := strHash(prompt)
	vals := make([]string, t.NumRows())
	for i := range vals {
		vals[i] = strconv.Itoa(1 + int(splitmix(rowHash(t, i)+seed+77)%5))
	}
	const col = "__sql_score"
	if err := t.SetHidden(col, vals); err != nil {
		panic(err)
	}
	return col
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
