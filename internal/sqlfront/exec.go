package sqlfront

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/query"
	"repro/internal/table"
)

// DB is a registry of named tables that LLM-SQL statements run against.
type DB struct {
	tables map[string]*table.Table
}

// NewDB returns an empty registry.
func NewDB() *DB {
	return &DB{tables: make(map[string]*table.Table)}
}

// Register makes t queryable under name (case-sensitive, last write wins).
func (db *DB) Register(name string, t *table.Table) {
	db.tables[name] = t
}

// ExecConfig extends the query execution config with output-length defaults
// for ad-hoc statements (benchmark specs carry their own).
type ExecConfig struct {
	query.Config
	// FilterOutTokens / ProjectionOutTokens / AggOutTokens default to
	// 2 / 40 / 2 — the regimes of Table 1.
	FilterOutTokens     int
	ProjectionOutTokens int
	AggOutTokens        int
}

func (c ExecConfig) filterOut() int {
	if c.FilterOutTokens > 0 {
		return c.FilterOutTokens
	}
	return 2
}

func (c ExecConfig) projOut() int {
	if c.ProjectionOutTokens > 0 {
		return c.ProjectionOutTokens
	}
	return 40
}

func (c ExecConfig) aggOut() int {
	if c.AggOutTokens > 0 {
		return c.AggOutTokens
	}
	return 2
}

// Result is an executed statement's output relation plus serving statistics.
type Result struct {
	Columns []string
	Rows    [][]string
	// JCT is total virtual serving time over all LLM stages; HitRate the
	// prompt-token-weighted prefix cache hit rate; SolverSeconds total
	// reordering time; LLMCalls the number of model invocations.
	JCT           float64
	HitRate       float64
	SolverSeconds float64
	LLMCalls      int
	Stages        int
}

// Exec parses and runs one LLM-SQL statement. Every LLM stage is scheduled
// under cfg.Policy, so switching the policy (no-cache / original / GGR)
// changes only performance, never results.
func (db *DB) Exec(src string, cfg ExecConfig) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	base, ok := db.tables[q.From]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", q.From)
	}
	if err := validate(q, base); err != nil {
		return nil, err
	}

	res := &Result{}
	stageSeq := 0
	var promptTok, matchedTok int64
	runStage := func(spec query.Spec, tbl *table.Table) (*query.StageResult, error) {
		st, err := query.RunStage(spec, tbl, cfg.Config)
		if err != nil {
			return nil, err
		}
		stageSeq++
		res.Stages++
		res.JCT += st.Metrics.JCT
		res.SolverSeconds += st.SolverSeconds
		res.LLMCalls += st.Rows
		promptTok += st.Metrics.PromptTokens
		matchedTok += st.Metrics.MatchedTokens
		return st, nil
	}

	// WHERE: one filter stage over the predicate's fields.
	working := base
	if q.Where != nil {
		proj, err := projectCall(base, q.Where.Call)
		if err != nil {
			return nil, err
		}
		choices, truthCol := filterChoices(proj, q.Where.Literal)
		spec := query.Spec{
			Name:        fmt.Sprintf("sql-where-%d", stageSeq),
			Dataset:     q.From,
			Type:        query.Filter,
			UserPrompt:  q.Where.Call.Prompt,
			OutTokens:   cfg.filterOut(),
			KeyField:    keyField(proj, q.Where.Call),
			Choices:     choices,
			TruthHidden: truthCol,
		}
		st, err := runStage(spec, proj)
		if err != nil {
			return nil, err
		}
		var passing []int
		for i, out := range st.Outputs {
			if (out == q.Where.Literal) != q.Where.Negated {
				passing = append(passing, i)
			}
		}
		working = base.FilterRows(passing)
	}

	// SELECT: aggregates collapse to one row; otherwise one output row per
	// surviving input row.
	if hasAggregate(q) {
		return db.execAggregates(q, working, cfg, res, runStage, &promptTok, &matchedTok)
	}
	return db.execRowwise(q, working, cfg, res, runStage, &promptTok, &matchedTok)
}

// execRowwise evaluates plain columns and per-row LLM projections.
func (db *DB) execRowwise(q *Query, working *table.Table, cfg ExecConfig, res *Result,
	runStage func(query.Spec, *table.Table) (*query.StageResult, error), promptTok, matchedTok *int64) (*Result, error) {

	type colSource struct {
		name    string
		static  int      // column index into working, or -1
		outputs []string // LLM outputs when static < 0
	}
	var sources []colSource
	llmSeq := 0
	for _, item := range q.Select {
		switch {
		case item.Star:
			for ci, c := range working.Columns() {
				sources = append(sources, colSource{name: c, static: ci})
			}
		case item.LLM == nil:
			ci, _ := working.ColIndex(item.Column)
			sources = append(sources, colSource{name: aliasOr(item, item.Column), static: ci})
		default:
			proj, err := projectCall(working, *item.LLM)
			if err != nil {
				return nil, err
			}
			llmSeq++
			spec := query.Spec{
				Name:       fmt.Sprintf("sql-select-%d", llmSeq),
				Dataset:    q.From,
				Type:       query.Projection,
				UserPrompt: item.LLM.Prompt,
				OutTokens:  cfg.projOut(),
				KeyField:   keyField(proj, *item.LLM),
			}
			st, err := runStage(spec, proj)
			if err != nil {
				return nil, err
			}
			sources = append(sources, colSource{
				name:    aliasOr(item, fmt.Sprintf("llm_%d", llmSeq)),
				static:  -1,
				outputs: st.Outputs,
			})
		}
	}

	for _, s := range sources {
		res.Columns = append(res.Columns, s.name)
	}
	for i := 0; i < working.NumRows(); i++ {
		row := make([]string, len(sources))
		for j, s := range sources {
			if s.static >= 0 {
				row[j] = working.Cell(i, s.static)
			} else if i < len(s.outputs) {
				row[j] = s.outputs[i]
			}
		}
		res.Rows = append(res.Rows, row)
	}
	finishStats(res, *promptTok, *matchedTok)
	return res, nil
}

// execAggregates evaluates AVG(LLM(...)) items into a single result row.
func (db *DB) execAggregates(q *Query, working *table.Table, cfg ExecConfig, res *Result,
	runStage func(query.Spec, *table.Table) (*query.StageResult, error), promptTok, matchedTok *int64) (*Result, error) {

	var row []string
	llmSeq := 0
	for _, item := range q.Select {
		if !item.Avg {
			return nil, fmt.Errorf("sql: cannot mix aggregate and non-aggregate select items without GROUP BY")
		}
		proj, err := projectCall(working, *item.LLM)
		if err != nil {
			return nil, err
		}
		llmSeq++
		truthCol := "score"
		if _, ok := proj.Hidden("score"); !ok {
			truthCol = synthesizeScores(proj)
		}
		spec := query.Spec{
			Name:        fmt.Sprintf("sql-avg-%d", llmSeq),
			Dataset:     q.From,
			Type:        query.Aggregation,
			UserPrompt:  item.LLM.Prompt,
			OutTokens:   cfg.aggOut(),
			KeyField:    keyField(proj, *item.LLM),
			TruthHidden: truthCol,
		}
		st, err := runStage(spec, proj)
		if err != nil {
			return nil, err
		}
		var sum, n float64
		for _, out := range st.Outputs {
			if v, err := strconv.ParseFloat(out, 64); err == nil {
				sum += v
				n++
			}
		}
		avg := 0.0
		if n > 0 {
			avg = sum / n
		}
		res.Columns = append(res.Columns, aliasOr(item, fmt.Sprintf("avg_%d", llmSeq)))
		row = append(row, strconv.FormatFloat(avg, 'f', 3, 64))
	}
	res.Rows = [][]string{row}
	finishStats(res, *promptTok, *matchedTok)
	return res, nil
}

func finishStats(res *Result, promptTok, matchedTok int64) {
	if promptTok > 0 {
		res.HitRate = float64(matchedTok) / float64(promptTok)
	}
}

// validate checks column references ahead of execution.
func validate(q *Query, t *table.Table) error {
	checkCall := func(c LLMCall) error {
		for _, f := range c.Fields {
			if _, ok := t.ColIndex(f); !ok {
				return fmt.Errorf("sql: unknown column %q in LLM call", f)
			}
		}
		return nil
	}
	for _, item := range q.Select {
		if item.LLM != nil {
			if err := checkCall(*item.LLM); err != nil {
				return err
			}
		} else if !item.Star {
			if _, ok := t.ColIndex(item.Column); !ok {
				return fmt.Errorf("sql: unknown column %q", item.Column)
			}
		}
	}
	if q.Where != nil {
		if err := checkCall(q.Where.Call); err != nil {
			return err
		}
	}
	return nil
}

func hasAggregate(q *Query) bool {
	for _, item := range q.Select {
		if item.Avg {
			return true
		}
	}
	return false
}

func aliasOr(item SelectItem, def string) string {
	if item.Alias != "" {
		return item.Alias
	}
	return def
}

// projectCall restricts the table to the call's field list (or keeps all
// fields for {T.*}); hidden columns and restricted FDs carry over. The
// result is always a fresh table so stages may attach synthetic truth
// columns without mutating the registered relation.
func projectCall(t *table.Table, c LLMCall) (*table.Table, error) {
	if c.AllFields {
		return t.Select(t.Columns()...)
	}
	return t.Select(c.Fields...)
}

// keyField picks the field the oracle's position model watches: the first
// listed field (the paper's examples put the semantic key first).
func keyField(t *table.Table, c LLMCall) string {
	if len(c.Fields) > 0 {
		return c.Fields[0]
	}
	cols := t.Columns()
	if len(cols) > 0 {
		return cols[0]
	}
	return ""
}

// filterChoices determines the answer alphabet for an ad-hoc filter. When
// the table carries ground-truth labels containing the literal, the oracle
// answers from them; otherwise a synthetic truth column is attached with a
// deterministic per-row coin between the literal and its complement.
func filterChoices(t *table.Table, literal string) (choices []string, truthCol string) {
	if labels, ok := t.Hidden("label"); ok {
		distinct := map[string]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if distinct[literal] {
			for l := range distinct {
				choices = append(choices, l)
			}
			sort.Strings(choices)
			return choices, "label"
		}
	}
	choices = []string{literal, "NOT " + literal}
	vals := make([]string, t.NumRows())
	for i := range vals {
		if splitmix(uint64(i)*2654435761+uint64(len(literal)))%2 == 0 {
			vals[i] = choices[0]
		} else {
			vals[i] = choices[1]
		}
	}
	const col = "__sql_truth"
	if err := t.SetHidden(col, vals); err != nil {
		// Unreachable: vals matches the row count by construction.
		panic(err)
	}
	return choices, col
}

// synthesizeScores attaches a deterministic 1..5 ground-truth score column
// for ad-hoc aggregates over tables without one.
func synthesizeScores(t *table.Table) string {
	vals := make([]string, t.NumRows())
	for i := range vals {
		vals[i] = strconv.Itoa(1 + int(splitmix(uint64(i)+77)%5))
	}
	const col = "__sql_score"
	if err := t.SetHidden(col, vals); err != nil {
		panic(err)
	}
	return col
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
