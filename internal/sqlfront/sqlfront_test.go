package sqlfront

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/table"
)

// --- lexer -------------------------------------------------------------------

func kinds(t *testing.T, src string) []tokenKind {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	out := make([]tokenKind, len(toks))
	for i, tk := range toks {
		out[i] = tk.kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := kinds(t, "SELECT a, b FROM t")
	want := []tokenKind{tokKeyword, tokIdent, tokComma, tokIdent, tokKeyword, tokIdent, tokEOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex("'it''s quoted'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "it's quoted" {
		t.Errorf("string = %q", toks[0].text)
	}
}

func TestLexSlashIdentifiers(t *testing.T) {
	toks, err := lex("review/overall beer/beerId")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "review/overall" || toks[1].text != "beer/beerId" {
		t.Errorf("idents = %q, %q", toks[0].text, toks[1].text)
	}
}

func TestLexQuotedIdentifier(t *testing.T) {
	toks, err := lex(`"weird col"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].text != "weird col" {
		t.Errorf("quoted ident = %+v", toks[0])
	}
}

func TestLexQuotedIdentifierEscapes(t *testing.T) {
	// "" inside a quoted identifier is a literal quote, mirroring the
	// string-literal rule.
	toks, err := lex(`"a""b"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].text != `a"b` {
		t.Errorf("escaped quoted ident = %+v", toks[0])
	}
}

func TestLexEmptyQuotedIdentifierRejected(t *testing.T) {
	if _, err := lex(`""`); err == nil {
		t.Error(`lex("") succeeded, want empty-identifier error`)
	}
	// But "" as an escape inside a non-empty identifier is fine.
	if _, err := lex(`""""`); err != nil {
		t.Errorf(`lex("""") = %v, want identifier '"'`, err)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("42 4.5 LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokNumber || toks[0].text != "42" {
		t.Errorf("token 0 = %+v", toks[0])
	}
	if toks[1].kind != tokNumber || toks[1].text != "4.5" {
		t.Errorf("token 1 = %+v", toks[1])
	}
	if toks[2].kind != tokKeyword || toks[2].text != "LIMIT" {
		t.Errorf("token 2 = %+v", toks[2])
	}
}

func TestLexOperators(t *testing.T) {
	got := kinds(t, "= <> != < <= > >=")
	want := []tokenKind{tokEq, tokNeq, tokNeq, tokLt, tokLe, tokGt, tokGe}
	for i, k := range want {
		if got[i] != k {
			t.Errorf("operator %d = %v, want %v", i, got[i], k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "!x", "#"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded", src)
		}
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	toks, err := lex("select From wHeRe llm avg")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"SELECT", "FROM", "WHERE", "LLM", "AVG"} {
		if toks[i].kind != tokKeyword || toks[i].text != want {
			t.Errorf("token %d = %+v, want keyword %s", i, toks[i], want)
		}
	}
}

// --- parser ------------------------------------------------------------------

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseProjectionQuery(t *testing.T) {
	q := mustParse(t, "SELECT LLM('Summarize: ', reviewcontent, movieinfo) FROM movies")
	if len(q.From) != 1 || q.From[0].Table != "movies" || len(q.Select) != 1 {
		t.Fatalf("query = %+v", q)
	}
	call := q.Select[0].LLM
	if call == nil || call.Prompt != "Summarize: " {
		t.Fatalf("call = %+v", call)
	}
	if len(call.Fields) != 2 || call.Fields[0].Column != "reviewcontent" {
		t.Errorf("fields = %v", call.Fields)
	}
}

func TestParseFilterQuery(t *testing.T) {
	q := mustParse(t, `SELECT movietitle FROM movies WHERE LLM('Suitable for kids?', movieinfo, genres) = 'Yes'`)
	cmp, ok := q.Where.(*Compare)
	if !ok || cmp.Literal != "Yes" || cmp.Op != OpEq || cmp.LLM == nil {
		t.Fatalf("where = %+v", q.Where)
	}
	if len(cmp.LLM.Fields) != 2 {
		t.Errorf("where fields = %v", cmp.LLM.Fields)
	}
}

func TestParseNegatedPredicate(t *testing.T) {
	q := mustParse(t, `SELECT a FROM t WHERE LLM('sentiment?', a) <> 'POSITIVE'`)
	if q.Where.(*Compare).Op != OpNeq {
		t.Error("negation lost")
	}
}

func TestParseAggregate(t *testing.T) {
	q := mustParse(t, `SELECT AVG(LLM('Rate 1-5', reviewcontent)) AS AverageScore FROM movies`)
	item := q.Select[0]
	if item.Agg != AggAvg || item.Alias != "AverageScore" {
		t.Fatalf("item = %+v", item)
	}
}

func TestParseAggregateForms(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(*) AS n, SUM(price), MIN(name), MAX(LLM('Rate', text)) FROM t`)
	if q.Select[0].Agg != AggCount || !q.Select[0].AggStar || q.Select[0].Alias != "n" {
		t.Fatalf("COUNT(*) item = %+v", q.Select[0])
	}
	if q.Select[1].Agg != AggSum || q.Select[1].Col.Column != "price" {
		t.Fatalf("SUM item = %+v", q.Select[1])
	}
	if q.Select[2].Agg != AggMin || q.Select[2].Col.Column != "name" {
		t.Fatalf("MIN item = %+v", q.Select[2])
	}
	if q.Select[3].Agg != AggMax || q.Select[3].LLM == nil {
		t.Fatalf("MAX item = %+v", q.Select[3])
	}
}

func TestParseBooleanWhereTree(t *testing.T) {
	q := mustParse(t, `SELECT a FROM t WHERE a = 'x' OR b <> 'y' AND NOT LLM('p', c) = 'Yes'`)
	or, ok := q.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %+v", q.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("AND should bind tighter than OR: %+v", or.Right)
	}
	if _, ok := and.Right.(*NotExpr); !ok {
		t.Fatalf("NOT lost: %+v", and.Right)
	}
}

func TestParseParenthesizedWhere(t *testing.T) {
	q := mustParse(t, `SELECT a FROM t WHERE (a = 'x' OR b = 'y') AND c = 'z'`)
	and, ok := q.Where.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("top = %+v", q.Where)
	}
	if or, ok := and.Left.(*BinaryExpr); !ok || or.Op != "OR" {
		t.Fatalf("parens ignored: %+v", and.Left)
	}
}

func TestParseNumericComparison(t *testing.T) {
	q := mustParse(t, `SELECT a FROM t WHERE score = 4.5`)
	cmp := q.Where.(*Compare)
	if !cmp.IsNumber || cmp.Literal != "4.5" || cmp.Col.Column != "score" {
		t.Fatalf("cmp = %+v", cmp)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	q := mustParse(t, `SELECT category, COUNT(*) AS n FROM t GROUP BY category ORDER BY n DESC LIMIT 3`)
	if len(q.GroupBy) != 1 || q.GroupBy[0].Column != "category" {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Col.Column != "n" || !q.OrderBy[0].Desc {
		t.Fatalf("order by = %+v", q.OrderBy)
	}
	if q.Limit != 3 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseLimitAbsentIsMinusOne(t *testing.T) {
	q := mustParse(t, `SELECT a FROM t`)
	if q.Limit != -1 {
		t.Fatalf("limit = %d, want -1 for absent LIMIT", q.Limit)
	}
}

func TestParseKeywordCollidingColumnViaQuotes(t *testing.T) {
	// A column named "and" is reachable through a quoted identifier.
	q := mustParse(t, `SELECT "and" FROM t WHERE "count" = 'x'`)
	if q.Select[0].Col.Column != "and" {
		t.Fatalf("select = %+v", q.Select[0])
	}
	if q.Where.(*Compare).Col.Column != "count" {
		t.Fatalf("where = %+v", q.Where)
	}
}

func TestParseStarForms(t *testing.T) {
	q := mustParse(t, `SELECT LLM('Summarize: ', pr.*) FROM pr`)
	if len(q.Select[0].LLM.StarOf) != 1 || q.Select[0].LLM.StarOf[0] != "pr" {
		t.Error("pr.* not recognized")
	}
	q = mustParse(t, `SELECT LLM('Summarize: ', *) FROM pr`)
	if !q.Select[0].LLM.AllFields {
		t.Error("bare * not recognized")
	}
	q = mustParse(t, `SELECT * FROM pr`)
	if !q.Select[0].Star {
		t.Error("select * not recognized")
	}
}

func TestParseMixedSelectList(t *testing.T) {
	q := mustParse(t, `SELECT user_id, request, LLM('Did it help?', support_response, request) AS success FROM tickets`)
	if len(q.Select) != 3 {
		t.Fatalf("select = %+v", q.Select)
	}
	if q.Select[2].Alias != "success" {
		t.Errorf("alias = %q", q.Select[2].Alias)
	}
}

func TestParseJoinClause(t *testing.T) {
	q := mustParse(t, `SELECT t.ticket_id, c.region FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id`)
	if len(q.From) != 2 {
		t.Fatalf("from = %+v", q.From)
	}
	if q.From[0].Table != "tickets" || q.From[0].Alias != "t" || q.From[0].On != nil {
		t.Fatalf("anchor = %+v", q.From[0])
	}
	j := q.From[1]
	if j.Table != "customers" || j.Alias != "c" || j.On == nil {
		t.Fatalf("joined = %+v", j)
	}
	want := JoinOn{Left: ColRef{Qualifier: "t", Column: "customer_id"}, Right: ColRef{Qualifier: "c", Column: "customer_id"}}
	if *j.On != want {
		t.Errorf("on = %+v", *j.On)
	}
	if q.Select[0].Col != (ColRef{Qualifier: "t", Column: "ticket_id"}) {
		t.Errorf("qualified select = %+v", q.Select[0])
	}
}

func TestParseMultiJoinWithoutAliases(t *testing.T) {
	q := mustParse(t, `SELECT a FROM t1 JOIN t2 ON t1.k = t2.k JOIN t3 ON t2.j = t3.j`)
	if len(q.From) != 3 || q.From[2].Table != "t3" || q.From[2].On == nil {
		t.Fatalf("from = %+v", q.From)
	}
	if q.From[1].Name() != "t2" {
		t.Errorf("effective name = %q", q.From[1].Name())
	}
}

func TestParseQualifiedEverywhere(t *testing.T) {
	q := mustParse(t, `SELECT a.x, AVG(b.y) FROM ta AS a JOIN tb AS b ON a.k = b.k WHERE LLM('p', a.text, b.note) = 'Yes' AND b.z = 'v' GROUP BY a.x ORDER BY a.x`)
	if q.Select[1].Col != (ColRef{Qualifier: "b", Column: "y"}) {
		t.Errorf("agg arg = %+v", q.Select[1])
	}
	if q.GroupBy[0] != (ColRef{Qualifier: "a", Column: "x"}) {
		t.Errorf("group by = %+v", q.GroupBy)
	}
	if q.OrderBy[0].Col != (ColRef{Qualifier: "a", Column: "x"}) {
		t.Errorf("order by = %+v", q.OrderBy)
	}
	cmp := q.Where.(*BinaryExpr).Left.(*Compare)
	if cmp.LLM.Fields[1] != (ColRef{Qualifier: "b", Column: "note"}) {
		t.Errorf("llm fields = %+v", cmp.LLM.Fields)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE LLM('x', a)",     // missing comparison
		"SELECT a FROM t WHERE LLM('x', a) = b", // non-literal comparand
		"SELECT LLM() FROM t",                   // no prompt
		"SELECT LLM('p') FROM t",                // no fields
		"SELECT a FROM t extra",                 // trailing tokens
		"SELECT AVG(*) FROM t",                  // '*' only under COUNT
		"SELECT SUM() FROM t",                   // empty aggregate
		"SELECT a FROM t WHERE LLM('x', a) = 'y' = ", // garbage tail
		"SELECT a FROM t WHERE (a = 'x'",             // unclosed paren
		"SELECT a FROM t WHERE a = 'x' AND",          // dangling AND
		"SELECT a FROM t WHERE NOT",                  // dangling NOT
		"SELECT a FROM t GROUP category",             // missing BY
		"SELECT a FROM t ORDER BY",                   // missing key
		"SELECT a FROM t LIMIT 4.5",                  // fractional limit
		"SELECT a FROM t LIMIT x",                    // non-numeric limit
		"SELECT a FROM t JOIN",                       // dangling JOIN
		"SELECT a FROM t JOIN u",                     // missing ON
		"SELECT a FROM t JOIN u ON",                  // missing condition
		"SELECT a FROM t JOIN u ON t.a = ",           // missing right side
		"SELECT a FROM t JOIN u ON t.a <> u.a",       // only equality joins
		"SELECT a FROM t JOIN u ON t.a = 'x'",        // literal join comparand
		"SELECT t. FROM t",                           // dangling qualifier
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `SELECT movietitle, LLM('Summarize: ', movieinfo) AS s FROM movies WHERE LLM('Kids?', genres) = 'Yes'`
	q := mustParse(t, src)
	q2 := mustParse(t, q.String())
	if q.String() != q2.String() {
		t.Errorf("round trip changed query:\n%s\n%s", q.String(), q2.String())
	}
}

// --- executor -----------------------------------------------------------------

func ticketsTable() *table.Table {
	t := table.New("ticket_id", "request", "support_response")
	responses := []string{
		"We reset your password and emailed a confirmation link to your inbox.",
		"Your refund was issued and will appear within five business days.",
	}
	for i := 0; i < 40; i++ {
		t.MustAppendRow(
			"T-"+strconv.Itoa(1000+i),
			"Request number "+strconv.Itoa(i)+" about an account issue",
			responses[i%2],
		)
	}
	labels := make([]string, 40)
	for i := range labels {
		if i%4 == 0 {
			labels[i] = "No"
		} else {
			labels[i] = "Yes"
		}
	}
	if err := t.SetHidden("label", labels); err != nil {
		panic(err)
	}
	return t
}

func execCfg() ExecConfig {
	return ExecConfig{Config: query.Config{Policy: query.CacheGGR}}
}

func TestExecIntroExample(t *testing.T) {
	// The paper's introductory query shape.
	db := NewDB()
	db.Register("customer_tickets", ticketsTable())
	res, err := db.Exec(`SELECT ticket_id, request, LLM('Did {support_response} address {request}?', support_response, request) AS success FROM customer_tickets`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 || res.Columns[2] != "success" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.LLMCalls != 40 || res.Stages != 1 {
		t.Errorf("calls=%d stages=%d", res.LLMCalls, res.Stages)
	}
	if res.JCT <= 0 {
		t.Error("JCT not positive")
	}
	for i, row := range res.Rows {
		if row[2] == "" {
			t.Fatalf("row %d: empty LLM output", i)
		}
	}
}

func TestExecFilterWithLabels(t *testing.T) {
	db := NewDB()
	db.Register("tickets", ticketsTable())
	res, err := db.Exec(`SELECT ticket_id FROM tickets WHERE LLM('Did the response help?', support_response, request) = 'Yes'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) == 40 {
		t.Errorf("filter passed %d rows, want a strict subset", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !strings.HasPrefix(row[0], "T-") {
			t.Fatalf("unexpected ticket id %q", row[0])
		}
	}
}

func TestExecNegatedFilterComplements(t *testing.T) {
	db := NewDB()
	db.Register("tickets", ticketsTable())
	pos, err := db.Exec(`SELECT ticket_id FROM tickets WHERE LLM('help?', support_response) = 'Yes'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	neg, err := db.Exec(`SELECT ticket_id FROM tickets WHERE LLM('help?', support_response) <> 'Yes'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pos.Rows)+len(neg.Rows) != 40 {
		t.Errorf("complement broken: %d + %d != 40", len(pos.Rows), len(neg.Rows))
	}
}

func TestExecAggregate(t *testing.T) {
	d := datagen.Products(datagen.Options{Scale: 0.005, Seed: 3})
	db := NewDB()
	db.Register("products", d.Table)
	res, err := db.Exec(`SELECT AVG(LLM('Rate the sentiment 1-5', text, description)) AS score FROM products`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("aggregate shape = %v", res.Rows)
	}
	avg, err := strconv.ParseFloat(res.Rows[0][0], 64)
	if err != nil || avg < 1 || avg > 5 {
		t.Errorf("avg = %q", res.Rows[0][0])
	}
	if res.Columns[0] != "score" {
		t.Errorf("column = %q", res.Columns[0])
	}
}

func TestExecMultiLLMPipeline(t *testing.T) {
	// WHERE filter plus SELECT projection = the paper's T3 in SQL form.
	d := datagen.Movies(datagen.Options{Scale: 0.005, Seed: 3})
	db := NewDB()
	db.Register("movies", d.Table)
	res, err := db.Exec(`SELECT LLM('Summarize the good qualities', movieinfo, reviewcontent) FROM movies WHERE LLM('Is it suitable for kids?', movieinfo, genres) = 'Yes'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages != 2 {
		t.Fatalf("stages = %d, want 2", res.Stages)
	}
	if len(res.Rows) == 0 {
		t.Error("no rows passed the filter")
	}
	if res.HitRate <= 0 {
		t.Error("hit rate missing")
	}
}

func TestExecSelectStar(t *testing.T) {
	db := NewDB()
	db.Register("tickets", ticketsTable())
	res, err := db.Exec(`SELECT * FROM tickets WHERE LLM('help?', support_response) = 'Yes'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestExecSyntheticTruthIsDeterministic(t *testing.T) {
	// A filter whose literal is not in the label domain falls back to the
	// synthetic truth column; two runs must agree.
	db := NewDB()
	db.Register("tickets", ticketsTable())
	sql := `SELECT ticket_id FROM tickets WHERE LLM('custom?', request) = 'MAYBE'`
	a, err := db.Exec(sql, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Exec(sql, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Errorf("nondeterministic synthetic filter: %d vs %d rows", len(a.Rows), len(b.Rows))
	}
}

func TestExecGGRNotSlowerThanOriginal(t *testing.T) {
	d := datagen.BIRD(datagen.Options{Scale: 0.01, Seed: 5})
	db := NewDB()
	db.Register("bird", d.Table)
	sql := `SELECT LLM('Summarize the comment', Body, Text) FROM bird`
	cfgGGR := execCfg()
	cfgOrig := ExecConfig{Config: query.Config{Policy: query.CacheOriginal}}
	g, err := db.Exec(sql, cfgGGR)
	if err != nil {
		t.Fatal(err)
	}
	o, err := db.Exec(sql, cfgOrig)
	if err != nil {
		t.Fatal(err)
	}
	if g.JCT > o.JCT*1.05 {
		t.Errorf("GGR JCT %.1f worse than original %.1f", g.JCT, o.JCT)
	}
}

func TestExecErrors(t *testing.T) {
	db := NewDB()
	db.Register("t", ticketsTable())
	bad := []string{
		`SELECT a FROM missing`,
		`SELECT nope FROM t`,
		`SELECT LLM('p', nope) FROM t`,
		`SELECT a FROM t WHERE LLM('p', nope) = 'x'`,
		`SELECT AVG(LLM('p', request)), ticket_id FROM t`, // mixed agg
		`SELECT !! FROM t`,
	}
	for _, src := range bad {
		if _, err := db.Exec(src, execCfg()); err == nil {
			t.Errorf("Exec(%q) succeeded", src)
		}
	}
}

func TestExecDoesNotMutateRegisteredTable(t *testing.T) {
	tbl := ticketsTable()
	db := NewDB()
	db.Register("t", tbl)
	if _, err := db.Exec(`SELECT ticket_id FROM t WHERE LLM('odd?', request, *) = 'MAYBE'`, execCfg()); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Hidden("__sql_truth"); ok {
		t.Error("executor attached synthetic truth to the registered table")
	}
}
