package sqlfront

import (
	"fmt"
	"strconv"

	"repro/internal/query"
)

// Plan is the logical plan of one LLM-SQL statement. The planner applies the
// paper's two SQL-level optimizations on top of request reordering:
//
//   - Predicate pushdown: WHERE conjuncts free of LLM calls (Pushed) are
//     evaluated before any model stage, so LLM filters and projections only
//     see rows that survive the cheap plain-column predicates.
//   - Invocation dedup: each distinct LLM(prompt, fields...) call — keyed by
//     LLMCall.Key — runs exactly one stage per statement, no matter how many
//     times it appears across SELECT and WHERE.
//
// Execution order: Pushed → PreStages → Residual → PostStages → select/
// aggregate evaluation → ORDER BY / LIMIT.
type Plan struct {
	// Pushed is the conjunction of LLM-free WHERE conjuncts (nil if none).
	Pushed Expr
	// Residual is the WHERE remainder that needs LLM outputs (nil if none).
	Residual Expr
	// PreStages are the distinct LLM calls Residual depends on; they run
	// after Pushed pruning and before Residual evaluation.
	PreStages []PlannedStage
	// PostStages are the remaining distinct calls (SELECT projections and
	// aggregate arguments); they run over rows surviving the whole WHERE.
	PostStages []PlannedStage
}

// PlannedStage is one LLM invocation the executor will run.
type PlannedStage struct {
	// Seq numbers stages of the same Type within the statement, starting
	// at 1; it feeds the stage name (sql-where-1, sql-select-2, ...).
	Seq  int
	Call LLMCall
	// Type fixes the stage's serving profile and output semantics: Filter
	// (short categorical answers), Projection (free text), or Aggregation
	// (numeric scores). A deduplicated call used several ways gets the
	// richest type its uses need — aggregate use outranks WHERE comparison,
	// which outranks bare projection — so one stage can serve all of them:
	// an aggregated call emits numeric scores that WHERE can compare against
	// numeric literals, and a WHERE-compared call projected in SELECT shows
	// the categorical answer that passed the filter.
	Type query.Type
	// Literals are the distinct literals the call is compared against in
	// WHERE (in appearance order); they anchor a filter stage's answer
	// alphabet so every comparison branch is reachable.
	Literals []string
}

// Name is the stage identifier used in query.Spec and serving logs.
func (s PlannedStage) Name() string {
	switch s.Type {
	case query.Filter:
		return fmt.Sprintf("sql-where-%d", s.Seq)
	case query.Aggregation:
		return fmt.Sprintf("sql-agg-%d", s.Seq)
	default:
		return fmt.Sprintf("sql-select-%d", s.Seq)
	}
}

// Stages counts the LLM invocations the plan will run.
func (p *Plan) Stages() int { return len(p.PreStages) + len(p.PostStages) }

// BuildPlan lowers a parsed statement into its logical plan. With optimize
// false it produces the naive plan — no pushdown, one stage per LLM call
// occurrence — which the executor exposes (ExecConfig.Naive) so the planned
// and unplanned costs can be compared on identical statements. It errors on
// statements whose deduplicated stage types make a comparison unsatisfiable
// (an aggregated call compared against a non-numeric literal).
func BuildPlan(q *Query, optimize bool) (*Plan, error) {
	pl := &Plan{}
	if q.Where != nil {
		if optimize {
			pl.Pushed, pl.Residual = splitConjuncts(q.Where)
		} else {
			pl.Residual = q.Where
		}
	}

	// Classify every distinct call by its richest use: Aggregation outranks
	// Filter outranks Projection (see PlannedStage.Type). All literals a
	// call is compared against are collected so a filter stage's answer
	// alphabet covers every comparison branch.
	typ := map[string]query.Type{}
	literals := map[string][]string{}
	for _, item := range q.Select {
		if item.LLM != nil && item.Agg != AggNone {
			typ[item.LLM.Key()] = query.Aggregation
		}
	}
	walkCompares(pl.Residual, func(c *Compare) {
		if c.LLM == nil {
			return
		}
		k := c.LLM.Key()
		if typ[k] == "" {
			typ[k] = query.Filter
		}
		for _, l := range literals[k] {
			if l == c.Literal {
				return
			}
		}
		literals[k] = append(literals[k], c.Literal)
	})
	for _, item := range q.Select {
		if item.LLM == nil {
			continue
		}
		if k := item.LLM.Key(); typ[k] == "" {
			typ[k] = query.Projection
		}
	}

	// An aggregation-typed stage emits numeric scores, so an equality
	// against a literal that can never be a number would silently match
	// nothing — reject the statement instead. The negated form is trivially
	// true and stays legal.
	var perr error
	walkCompares(pl.Residual, func(c *Compare) {
		if perr != nil || c.LLM == nil || c.Negated || typ[c.LLM.Key()] != query.Aggregation {
			return
		}
		if _, err := strconv.ParseFloat(c.Literal, 64); err != nil {
			perr = fmt.Errorf("sql: %s is aggregated in SELECT, so its WHERE equality needs a numeric literal, not %q", c.LLM, c.Literal)
		}
	})
	if perr != nil {
		return nil, perr
	}

	seen := map[string]bool{}
	counters := map[query.Type]int{}
	add := func(list *[]PlannedStage, c LLMCall) {
		k := c.Key()
		if optimize && seen[k] {
			return
		}
		seen[k] = true
		counters[typ[k]]++
		*list = append(*list, PlannedStage{
			Seq:      counters[typ[k]],
			Call:     c,
			Type:     typ[k],
			Literals: literals[k],
		})
	}
	walkCompares(pl.Residual, func(c *Compare) {
		if c.LLM != nil {
			add(&pl.PreStages, *c.LLM)
		}
	})
	for _, item := range q.Select {
		if item.LLM != nil {
			add(&pl.PostStages, *item.LLM)
		}
	}
	return pl, nil
}

// splitConjuncts partitions a WHERE tree's top-level AND conjuncts into the
// LLM-free part (safe to evaluate before any model call) and the rest. A
// conjunct mixing plain and LLM comparisons under OR/NOT is not splittable
// and stays residual whole.
func splitConjuncts(e Expr) (pushed, residual Expr) {
	for _, c := range conjuncts(e) {
		if containsLLM(c) {
			residual = conjoin(residual, c)
		} else {
			pushed = conjoin(pushed, c)
		}
	}
	return pushed, residual
}

// conjuncts flattens nested top-level ANDs into a left-to-right list.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// conjoin ANDs two optional expressions, preserving left-to-right order.
func conjoin(a, b Expr) Expr {
	if a == nil {
		return b
	}
	return &BinaryExpr{Op: "AND", Left: a, Right: b}
}

func containsLLM(e Expr) bool {
	found := false
	walkCompares(e, func(c *Compare) {
		if c.LLM != nil {
			found = true
		}
	})
	return found
}

// walkCompares visits every comparison leaf of e in left-to-right order.
func walkCompares(e Expr, f func(*Compare)) {
	switch n := e.(type) {
	case *BinaryExpr:
		walkCompares(n.Left, f)
		walkCompares(n.Right, f)
	case *NotExpr:
		walkCompares(n.Inner, f)
	case *Compare:
		f(n)
	}
}
