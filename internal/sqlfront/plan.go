package sqlfront

import (
	"fmt"
	"strconv"

	"repro/internal/query"
)

// Plan is the logical plan of one LLM-SQL statement. The planner applies the
// paper's SQL-level optimizations on top of request reordering:
//
//   - Predicate pushdown below the join: WHERE conjuncts free of LLM calls
//     that reference a single table (TablePushed) are evaluated on that base
//     table before the join; LLM-free conjuncts spanning tables (Pushed) run
//     right after the join. Either way, no model stage ever sees a row a
//     cheap plain-column predicate can discard.
//   - Join placement before every LLM stage: the executor materializes the
//     joined working relation first, so model calls run over the
//     joined-and-filtered relation only.
//   - Invocation dedup: each distinct LLM(prompt, fields...) call — keyed by
//     LLMCall.Key after binding, so qualified and unqualified spellings of
//     the same column collapse — runs exactly one stage per statement, no
//     matter how many times it appears across SELECT and WHERE.
//   - Cost-based filter ordering: the executor reorders PreStages
//     cheapest-rank-first (cost.go) and evaluates each residual conjunct as
//     soon as its stage outputs exist, so expensive filters run over rows
//     already pruned by cheap, selective ones. PreStages are recorded here
//     in occurrence order; ordering needs the materialized working relation
//     for its cost sample and therefore happens at execution time.
//
// Execution order: TablePushed (per base table) → join → Pushed → PreStages
// interleaved with residual-conjunct evaluation → PostStages → select/
// aggregate evaluation → ORDER BY / LIMIT.
type Plan struct {
	// TablePushed[i] is the conjunction of LLM-free WHERE conjuncts
	// referencing only columns of q.From[i] (nil if none), evaluated on the
	// base table below the join.
	TablePushed []Expr
	// Pushed is the conjunction of LLM-free conjuncts spanning more than one
	// table (nil if none), evaluated after the join and before any LLM
	// stage.
	Pushed Expr
	// Residual is the WHERE remainder that needs LLM outputs (nil if none).
	Residual Expr
	// PreStages are the distinct LLM calls Residual depends on, in
	// occurrence order; they run after all pushdown pruning and before the
	// residual conjuncts that consume them.
	PreStages []PlannedStage
	// PostStages are the remaining distinct calls (SELECT projections and
	// aggregate arguments); they run over rows surviving the whole WHERE.
	PostStages []PlannedStage
}

// PlannedStage is one LLM invocation the executor will run.
type PlannedStage struct {
	// Seq numbers stages of the same Type within the statement, starting
	// at 1; it feeds the stage name (sql-where-1, sql-select-2, ...).
	Seq  int
	Call LLMCall
	// Type fixes the stage's serving profile and output semantics: Filter
	// (short categorical answers), Projection (free text), or Aggregation
	// (numeric scores). A deduplicated call used several ways gets the
	// richest type its uses need — aggregate use outranks WHERE comparison,
	// which outranks bare projection — so one stage can serve all of them:
	// an aggregated call emits numeric scores that WHERE can compare against
	// numeric literals, and a WHERE-compared call projected in SELECT shows
	// the categorical answer that passed the filter.
	Type query.Type
	// Literals are the distinct literals the call is compared against in
	// WHERE (in appearance order); they anchor a filter stage's answer
	// alphabet so every comparison branch is reachable.
	Literals []string
}

// Name is the stage identifier used in query.Spec and serving logs.
func (s PlannedStage) Name() string {
	switch s.Type {
	case query.Filter:
		return fmt.Sprintf("sql-where-%d", s.Seq)
	case query.Aggregation:
		return fmt.Sprintf("sql-agg-%d", s.Seq)
	default:
		return fmt.Sprintf("sql-select-%d", s.Seq)
	}
}

// Stages counts the LLM invocations the plan will run.
func (p *Plan) Stages() int { return len(p.PreStages) + len(p.PostStages) }

// BuildPlan lowers a parsed (and, when sc is non-nil, bound) statement into
// its logical plan. With optimize false it produces the naive plan — no
// pushdown, one stage per LLM call occurrence, occurrence-ordered — which
// the executor exposes (ExecConfig.Naive) so the planned and unplanned costs
// can be compared on identical statements. A nil sc plans as if the
// statement had a single table (every column lands on FROM index 0), which
// is exact for single-table statements. It errors on statements whose
// deduplicated stage types make a comparison unsatisfiable (an aggregated
// call compared against a non-numeric literal).
func BuildPlan(q *Query, sc *scope, optimize bool) (*Plan, error) {
	n := len(q.From)
	if n == 0 {
		n = 1
	}
	pl := &Plan{TablePushed: make([]Expr, n)}
	if q.Where != nil {
		if optimize {
			for _, c := range conjuncts(q.Where) {
				switch idx := homeTable(c, sc); {
				case idx == tableLLM:
					pl.Residual = conjoin(pl.Residual, c)
				case idx == tableMulti:
					pl.Pushed = conjoin(pl.Pushed, c)
				default:
					pl.TablePushed[idx] = conjoin(pl.TablePushed[idx], c)
				}
			}
		} else {
			pl.Residual = q.Where
		}
	}

	// Classify every distinct call by its richest use: Aggregation outranks
	// Filter outranks Projection (see PlannedStage.Type). All literals a
	// call is compared against are collected so a filter stage's answer
	// alphabet covers every comparison branch. Calls appearing under HAVING
	// aggregates are Aggregation-typed like their SELECT counterparts.
	typ := map[string]query.Type{}
	literals := map[string][]string{}
	for _, item := range q.Select {
		if item.LLM != nil && item.Agg != AggNone {
			typ[item.LLM.Key()] = query.Aggregation
		}
	}
	walkCompares(q.Having, func(c *Compare) {
		if c.LLM != nil && c.Agg != AggNone {
			typ[c.LLM.Key()] = query.Aggregation
		}
	})
	walkCompares(pl.Residual, func(c *Compare) {
		if c.LLM == nil {
			return
		}
		k := c.LLM.Key()
		if typ[k] == "" {
			typ[k] = query.Filter
		}
		for _, l := range literals[k] {
			if l == c.Literal {
				return
			}
		}
		literals[k] = append(literals[k], c.Literal)
	})
	for _, item := range q.Select {
		if item.LLM == nil {
			continue
		}
		if k := item.LLM.Key(); typ[k] == "" {
			typ[k] = query.Projection
		}
	}

	// An aggregation-typed stage emits numeric scores, so an equality
	// against a literal that can never be a number would silently match
	// nothing — reject the statement instead. Every other operator stays
	// legal: <> is trivially true, and the ordered operators compare under
	// valueLess's total order, where numbers sort before non-numeric strings.
	var perr error
	walkCompares(pl.Residual, func(c *Compare) {
		if perr != nil || c.LLM == nil || typ[c.LLM.Key()] != query.Aggregation {
			return
		}
		if c.Op != OpEq && c.Op != "" {
			return
		}
		if _, err := strconv.ParseFloat(c.Literal, 64); err != nil {
			perr = fmt.Errorf("sql: %s is aggregated elsewhere in the statement, so its WHERE equality needs a numeric literal, not %q", c.LLM, c.Literal)
		}
	})
	if perr != nil {
		return nil, perr
	}

	seen := map[string]bool{}
	counters := map[query.Type]int{}
	add := func(list *[]PlannedStage, c LLMCall) {
		k := c.Key()
		if optimize && seen[k] {
			return
		}
		seen[k] = true
		counters[typ[k]]++
		*list = append(*list, PlannedStage{
			Seq:      counters[typ[k]],
			Call:     c,
			Type:     typ[k],
			Literals: literals[k],
		})
	}
	walkCompares(pl.Residual, func(c *Compare) {
		if c.LLM != nil {
			add(&pl.PreStages, *c.LLM)
		}
	})
	for _, item := range q.Select {
		if item.LLM != nil {
			add(&pl.PostStages, *item.LLM)
		}
	}
	// HAVING aggregates over LLM calls run as post stages too: they range
	// over the rows surviving the whole WHERE, exactly like SELECT
	// aggregates, and dedup against them via the same key.
	walkCompares(q.Having, func(c *Compare) {
		if c.LLM != nil {
			add(&pl.PostStages, *c.LLM)
		}
	})
	return pl, nil
}

// Sentinel results of homeTable.
const (
	tableLLM   = -1 // conjunct contains an LLM call: not pushable
	tableMulti = -2 // LLM-free but references more than one table
)

// homeTable classifies one conjunct: the single FROM index all its column
// references live in, tableMulti when they span tables, or tableLLM when the
// conjunct contains a model call. With a nil scope every column maps to
// index 0.
func homeTable(e Expr, sc *scope) int {
	if containsLLM(e) {
		return tableLLM
	}
	home := -1
	multi := false
	walkCompares(e, func(c *Compare) {
		idx := 0
		if sc != nil {
			if i, ok := sc.tableOf[c.Col.Column]; ok {
				idx = i
			}
		}
		if home >= 0 && idx != home {
			multi = true
		}
		home = idx
	})
	if multi {
		return tableMulti
	}
	if home < 0 {
		home = 0
	}
	return home
}

// conjuncts flattens nested top-level ANDs into a left-to-right list.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// conjoin ANDs two optional expressions, preserving left-to-right order.
func conjoin(a, b Expr) Expr {
	if a == nil {
		return b
	}
	return &BinaryExpr{Op: "AND", Left: a, Right: b}
}

func containsLLM(e Expr) bool {
	found := false
	walkCompares(e, func(c *Compare) {
		if c.LLM != nil {
			found = true
		}
	})
	return found
}

// llmKeysOf collects the distinct LLM call keys a conjunct's evaluation
// depends on.
func llmKeysOf(e Expr) map[string]bool {
	keys := map[string]bool{}
	walkCompares(e, func(c *Compare) {
		if c.LLM != nil {
			keys[c.LLM.Key()] = true
		}
	})
	return keys
}

// walkCompares visits every comparison leaf of e in left-to-right order.
func walkCompares(e Expr, f func(*Compare)) {
	switch n := e.(type) {
	case *BinaryExpr:
		walkCompares(n.Left, f)
		walkCompares(n.Right, f)
	case *NotExpr:
		walkCompares(n.Inner, f)
	case *Compare:
		f(n)
	}
}
