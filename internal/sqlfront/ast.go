package sqlfront

import (
	"fmt"
	"strings"
)

// Query is a parsed LLM-SQL statement:
//
//	SELECT <items> FROM <table> [WHERE <expr>]
//	  [GROUP BY <cols>] [ORDER BY <col> [ASC|DESC]] [LIMIT <n>]
type Query struct {
	Select  []SelectItem
	From    string
	Where   Expr       // nil when absent
	GroupBy []string   // nil when absent
	OrderBy *OrderItem // nil when absent
	// Limit is -1 when absent. Note the zero value therefore means LIMIT 0
	// (an empty result); construct queries via Parse, which sets the
	// sentinel.
	Limit int
}

// AggFunc names an aggregate function in a select item ("" = not an
// aggregate).
type AggFunc string

const (
	AggNone  AggFunc = ""
	AggAvg   AggFunc = "AVG"
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// SelectItem is one output column: '*', a plain column, an LLM call, or an
// aggregate over an LLM call, a plain column, or (COUNT only) '*'.
type SelectItem struct {
	Star    bool
	Column  string
	LLM     *LLMCall
	Agg     AggFunc
	AggStar bool // COUNT(*)
	Alias   string
}

// LLMCall is the generic LLM operator of Sec. 3.1: a prompt plus field
// expressions ({T.a, T.b} or {T.*}) whose serialization order the optimizer
// is free to choose.
type LLMCall struct {
	Prompt    string
	Fields    []string
	AllFields bool
}

// Key canonically identifies a call for the planner's invocation dedup: two
// calls with the same prompt and field expression run as one stage. Every
// component is length-prefixed so the encoding is injective — no prompt or
// field content (NUL bytes, a column literally named "*") can collide two
// distinct calls into one stage.
func (c LLMCall) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:%s;%t;%d", len(c.Prompt), c.Prompt, c.AllFields, len(c.Fields))
	for _, f := range c.Fields {
		fmt.Fprintf(&sb, ";%d:%s", len(f), f)
	}
	return sb.String()
}

// OrderItem is an ORDER BY key over an output column of the statement.
type OrderItem struct {
	Column string
	Desc   bool
}

// Expr is a boolean WHERE expression: AND/OR/NOT combinations over
// comparison leaves.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// BinaryExpr is an AND or OR node.
type BinaryExpr struct {
	Op          string // "AND" or "OR"
	Left, Right Expr
}

// NotExpr negates its inner expression.
type NotExpr struct {
	Inner Expr
}

// Compare is a leaf predicate: an LLM call or a plain column compared to a
// string or numeric literal.
type Compare struct {
	LLM      *LLMCall // nil for a plain-column comparison
	Column   string   // set when LLM is nil
	Negated  bool     // true for <> / !=
	Literal  string   // raw comparand text (unquoted)
	IsNumber bool     // literal was a numeric token
}

func (*BinaryExpr) isExpr() {}
func (*NotExpr) isExpr()    {}
func (*Compare) isExpr()    {}

// exprPrec orders operators for minimal-parenthesis rendering: OR < AND <
// NOT < comparison.
func exprPrec(e Expr) int {
	switch n := e.(type) {
	case *BinaryExpr:
		if n.Op == "OR" {
			return 1
		}
		return 2
	case *NotExpr:
		return 3
	default:
		return 4
	}
}

func (e *BinaryExpr) String() string {
	// The parser is left-associative, so a right child at the same
	// precedence needs parentheses to round-trip structurally.
	left := childString(e.Left, exprPrec(e), false)
	right := childString(e.Right, exprPrec(e), true)
	return left + " " + e.Op + " " + right
}

func (e *NotExpr) String() string {
	return "NOT " + childString(e.Inner, exprPrec(e), true)
}

func (e *Compare) String() string {
	var lhs string
	if e.LLM != nil {
		lhs = e.LLM.String()
	} else {
		lhs = renderIdent(e.Column)
	}
	op := "="
	if e.Negated {
		op = "<>"
	}
	rhs := "'" + strings.ReplaceAll(e.Literal, "'", "''") + "'"
	if e.IsNumber {
		rhs = e.Literal
	}
	return lhs + " " + op + " " + rhs
}

func childString(c Expr, parentPrec int, right bool) string {
	p := exprPrec(c)
	if p < parentPrec || (right && p == parentPrec) {
		return "(" + c.String() + ")"
	}
	return c.String()
}

// String renders the query back to SQL (normalized), useful in errors and
// logs; Parse(q.String()) reproduces the AST.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.String())
	}
	fmt.Fprintf(&sb, " FROM %s", renderIdent(q.From))
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(renderIdent(c))
		}
	}
	if q.OrderBy != nil {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(renderIdent(q.OrderBy.Column))
		if q.OrderBy.Desc {
			sb.WriteString(" DESC")
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

func (s SelectItem) String() string {
	var base string
	switch {
	case s.Star:
		return "*"
	case s.Agg != AggNone:
		var arg string
		switch {
		case s.AggStar:
			arg = "*"
		case s.LLM != nil:
			arg = s.LLM.String()
		default:
			arg = renderIdent(s.Column)
		}
		base = fmt.Sprintf("%s(%s)", s.Agg, arg)
	case s.LLM != nil:
		base = s.LLM.String()
	default:
		base = renderIdent(s.Column)
	}
	if s.Alias != "" {
		return base + " AS " + renderIdent(s.Alias)
	}
	return base
}

func (c LLMCall) String() string {
	var sb strings.Builder
	sb.WriteString("LLM('")
	sb.WriteString(strings.ReplaceAll(c.Prompt, "'", "''"))
	sb.WriteString("'")
	if c.AllFields {
		sb.WriteString(", *")
	}
	for _, f := range c.Fields {
		sb.WriteString(", ")
		sb.WriteString(renderIdent(f))
	}
	sb.WriteString(")")
	return sb.String()
}

// renderIdent emits an identifier, double-quoting it when its bare form
// would not lex back to the same token (keyword collision, empty, or
// characters outside the bare-identifier alphabet).
func renderIdent(s string) string {
	bare := s != "" && isIdentStart(s[0])
	for i := 0; bare && i < len(s); i++ {
		if !isIdentPart(s[i]) {
			bare = false
		}
	}
	if bare && keywords[strings.ToUpper(s)] {
		bare = false
	}
	if bare {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
