package sqlfront

import (
	"fmt"
	"strings"
)

// Query is a parsed LLM-SQL statement:
//
//	SELECT <items> FROM <tables> [WHERE <expr>]
//	  [GROUP BY <cols>] [HAVING <expr>]
//	  [ORDER BY <col> [ASC|DESC] {, <col> [ASC|DESC]}] [LIMIT <n>]
type Query struct {
	Select []SelectItem
	// From lists the statement's tables: the first entry is the anchor
	// relation, every later entry carries the inner equi-join condition
	// linking it to the tables before it.
	From    []TableRef
	Where   Expr     // nil when absent
	GroupBy []ColRef // nil when absent
	// Having filters groups after aggregation; its comparison leaves may
	// have aggregate left sides (Compare.Agg). nil when absent.
	Having  Expr
	OrderBy []OrderItem // nil when absent; keys compared left to right
	// Limit is -1 when absent. Note the zero value therefore means LIMIT 0
	// (an empty result); construct queries via Parse, which sets the
	// sentinel.
	Limit int
}

// TableRef is one entry of a FROM clause: a registered table, an optional
// alias, and — for every table after the first — the ON condition joining it
// to the relation accumulated so far.
type TableRef struct {
	Table string
	Alias string  // "" when absent; the effective name is Alias or Table
	On    *JoinOn // nil for the first table
}

// Name is the effective name the table is referenced by: its alias when one
// was given, its registered name otherwise.
func (r TableRef) Name() string {
	if r.Alias != "" {
		return r.Alias
	}
	return r.Table
}

// JoinOn is an inner equi-join condition: one side must reference the newly
// joined table, the other a table earlier in the FROM list (either order).
type JoinOn struct {
	Left, Right ColRef
}

// ColRef is a possibly table-qualified column reference (alias.column or a
// bare column). Binding against a statement's FROM scope rewrites Column to
// the working relation's canonical column name and clears Qualifier.
type ColRef struct {
	Qualifier string // "" when unqualified
	Column    string
}

// display is the raw (unquoted) rendering of the reference; it names output
// columns and matches ORDER BY keys against them.
func (c ColRef) display() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Column
	}
	return c.Column
}

// render emits the reference as SQL, quoting each part as needed.
func (c ColRef) render() string {
	if c.Qualifier != "" {
		return renderIdent(c.Qualifier) + "." + renderIdent(c.Column)
	}
	return renderIdent(c.Column)
}

func (c ColRef) String() string { return c.display() }

// AggFunc names an aggregate function in a select item ("" = not an
// aggregate).
type AggFunc string

const (
	AggNone  AggFunc = ""
	AggAvg   AggFunc = "AVG"
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// SelectItem is one output column: '*', a plain column, an LLM call, or an
// aggregate over an LLM call, a plain column, or (COUNT only) '*'.
type SelectItem struct {
	Star    bool
	Col     ColRef
	LLM     *LLMCall
	Agg     AggFunc
	AggStar bool // COUNT(*)
	Alias   string
}

// LLMCall is the generic LLM operator of Sec. 3.1: a prompt plus field
// expressions ({T.a, T.b} or {T.*}) whose serialization order the optimizer
// is free to choose.
type LLMCall struct {
	Prompt string
	Fields []ColRef
	// AllFields is a bare '*' field expression: every column of the
	// statement's (joined) working relation.
	AllFields bool
	// StarOf lists the qualifiers of alias.* field expressions: every column
	// of that one table. Binding expands them into Fields.
	StarOf []string
}

// Key canonically identifies a call for the planner's invocation dedup: two
// calls with the same prompt and field expression run as one stage. Every
// component is length-prefixed so the encoding is injective — no prompt or
// field content (NUL bytes, a column literally named "*") can collide two
// distinct calls into one stage. Binding canonicalizes field references
// first, so LLM('p', col) and LLM('p', t.col) dedup to one stage whenever
// they resolve to the same column.
func (c LLMCall) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:%s;%t;%d", len(c.Prompt), c.Prompt, c.AllFields, len(c.StarOf))
	for _, q := range c.StarOf {
		fmt.Fprintf(&sb, ";%d:%s", len(q), q)
	}
	fmt.Fprintf(&sb, ";%d", len(c.Fields))
	for _, f := range c.Fields {
		fmt.Fprintf(&sb, ";%d:%s,%d:%s", len(f.Qualifier), f.Qualifier, len(f.Column), f.Column)
	}
	return sb.String()
}

// OrderItem is an ORDER BY key over an output column of the statement.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

// Expr is a boolean WHERE expression: AND/OR/NOT combinations over
// comparison leaves.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// BinaryExpr is an AND or OR node.
type BinaryExpr struct {
	Op          string // "AND" or "OR"
	Left, Right Expr
}

// NotExpr negates its inner expression.
type NotExpr struct {
	Inner Expr
}

// CompareOp is a comparison operator. The zero value renders and evaluates
// as OpEq.
type CompareOp string

const (
	OpEq  CompareOp = "="
	OpNeq CompareOp = "<>"
	OpLt  CompareOp = "<"
	OpLe  CompareOp = "<="
	OpGt  CompareOp = ">"
	OpGe  CompareOp = ">="
)

// Compare is a leaf predicate: an LLM call, a plain column, or (in HAVING
// only) an aggregate over either, compared to a string or numeric literal.
// Ordered operators use valueLess's total order: finite numbers compare
// numerically and sort before every non-numeric string.
type Compare struct {
	LLM *LLMCall // nil for a plain-column comparison
	Col ColRef   // set when LLM is nil (and Agg is not COUNT(*))
	// Agg wraps the left side in an aggregate (HAVING only): Agg(Col),
	// Agg(LLM(...)), or COUNT(*) when AggStar is set.
	Agg      AggFunc
	AggStar  bool
	Op       CompareOp
	Literal  string // raw comparand text (unquoted)
	IsNumber bool   // literal was a numeric token
}

func (*BinaryExpr) isExpr() {}
func (*NotExpr) isExpr()    {}
func (*Compare) isExpr()    {}

// exprPrec orders operators for minimal-parenthesis rendering: OR < AND <
// NOT < comparison.
func exprPrec(e Expr) int {
	switch n := e.(type) {
	case *BinaryExpr:
		if n.Op == "OR" {
			return 1
		}
		return 2
	case *NotExpr:
		return 3
	default:
		return 4
	}
}

func (e *BinaryExpr) String() string {
	// The parser is left-associative, so a right child at the same
	// precedence needs parentheses to round-trip structurally.
	left := childString(e.Left, exprPrec(e), false)
	right := childString(e.Right, exprPrec(e), true)
	return left + " " + e.Op + " " + right
}

func (e *NotExpr) String() string {
	return "NOT " + childString(e.Inner, exprPrec(e), true)
}

func (e *Compare) String() string {
	var lhs string
	switch {
	case e.AggStar:
		lhs = string(e.Agg) + "(*)"
	case e.LLM != nil:
		lhs = e.LLM.String()
	default:
		lhs = e.Col.render()
	}
	if e.Agg != AggNone && !e.AggStar {
		lhs = string(e.Agg) + "(" + lhs + ")"
	}
	op := string(e.Op)
	if op == "" {
		op = string(OpEq)
	}
	rhs := "'" + strings.ReplaceAll(e.Literal, "'", "''") + "'"
	if e.IsNumber {
		rhs = e.Literal
	}
	return lhs + " " + op + " " + rhs
}

func childString(c Expr, parentPrec int, right bool) string {
	p := exprPrec(c)
	if p < parentPrec || (right && p == parentPrec) {
		return "(" + c.String() + ")"
	}
	return c.String()
}

// String renders the query back to SQL (normalized), useful in errors and
// logs; Parse(q.String()) reproduces the AST.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.String())
	}
	sb.WriteString(" FROM ")
	for i, r := range q.From {
		if i > 0 {
			sb.WriteString(" JOIN ")
		}
		sb.WriteString(renderIdent(r.Table))
		if r.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(renderIdent(r.Alias))
		}
		if r.On != nil {
			sb.WriteString(" ON ")
			sb.WriteString(r.On.Left.render())
			sb.WriteString(" = ")
			sb.WriteString(r.On.Right.render())
		}
	}
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.render())
		}
	}
	if q.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(q.Having.String())
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Col.render())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

func (s SelectItem) String() string {
	var base string
	switch {
	case s.Star:
		return "*"
	case s.Agg != AggNone:
		var arg string
		switch {
		case s.AggStar:
			arg = "*"
		case s.LLM != nil:
			arg = s.LLM.String()
		default:
			arg = s.Col.render()
		}
		base = fmt.Sprintf("%s(%s)", s.Agg, arg)
	case s.LLM != nil:
		base = s.LLM.String()
	default:
		base = s.Col.render()
	}
	if s.Alias != "" {
		return base + " AS " + renderIdent(s.Alias)
	}
	return base
}

func (c LLMCall) String() string {
	var sb strings.Builder
	sb.WriteString("LLM('")
	sb.WriteString(strings.ReplaceAll(c.Prompt, "'", "''"))
	sb.WriteString("'")
	if c.AllFields {
		sb.WriteString(", *")
	}
	for _, q := range c.StarOf {
		sb.WriteString(", ")
		sb.WriteString(renderIdent(q))
		sb.WriteString(".*")
	}
	for _, f := range c.Fields {
		sb.WriteString(", ")
		sb.WriteString(f.render())
	}
	sb.WriteString(")")
	return sb.String()
}

// renderIdent emits an identifier, double-quoting it when its bare form
// would not lex back to the same token (keyword collision, empty, or
// characters outside the bare-identifier alphabet).
func renderIdent(s string) string {
	bare := s != "" && isIdentStart(s[0])
	for i := 0; bare && i < len(s); i++ {
		if !isIdentPart(s[i]) {
			bare = false
		}
	}
	if bare && keywords[strings.ToUpper(s)] {
		bare = false
	}
	if bare {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
