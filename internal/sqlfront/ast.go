package sqlfront

import (
	"fmt"
	"strings"
)

// Query is a parsed LLM-SQL statement:
//
//	SELECT <items> FROM <table> [WHERE LLM(...) {=|<>} 'literal']
type Query struct {
	Select []SelectItem
	From   string
	Where  *Predicate
}

// SelectItem is one output column: '*', a plain column, an LLM call, or an
// AVG-aggregated LLM call.
type SelectItem struct {
	Star   bool
	Column string
	LLM    *LLMCall
	Avg    bool
	Alias  string
}

// LLMCall is the generic LLM operator of Sec. 3.1: a prompt plus field
// expressions ({T.a, T.b} or {T.*}) whose serialization order the optimizer
// is free to choose.
type LLMCall struct {
	Prompt    string
	Fields    []string
	AllFields bool
}

// Predicate is a WHERE clause comparing an LLM call's output to a literal.
type Predicate struct {
	Call    LLMCall
	Negated bool // true for <> / !=
	Literal string
}

// String renders the query back to SQL (normalized), useful in errors and
// logs.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.String())
	}
	fmt.Fprintf(&sb, " FROM %s", q.From)
	if q.Where != nil {
		op := "="
		if q.Where.Negated {
			op = "<>"
		}
		fmt.Fprintf(&sb, " WHERE %s %s '%s'", q.Where.Call.String(), op,
			strings.ReplaceAll(q.Where.Literal, "'", "''"))
	}
	return sb.String()
}

func (s SelectItem) String() string {
	var base string
	switch {
	case s.Star:
		return "*"
	case s.Avg:
		base = fmt.Sprintf("AVG(%s)", s.LLM.String())
	case s.LLM != nil:
		base = s.LLM.String()
	default:
		base = s.Column
	}
	if s.Alias != "" {
		return base + " AS " + s.Alias
	}
	return base
}

func (c LLMCall) String() string {
	var sb strings.Builder
	sb.WriteString("LLM('")
	sb.WriteString(strings.ReplaceAll(c.Prompt, "'", "''"))
	sb.WriteString("'")
	if c.AllFields {
		sb.WriteString(", *")
	}
	for _, f := range c.Fields {
		sb.WriteString(", ")
		sb.WriteString(f)
	}
	sb.WriteString(")")
	return sb.String()
}
