package sqlfront

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var (
	propIdents  = []string{"alpha", "beta_col", "review/overall", "c3", "text", "and", "weird col"}
	propTables  = []string{"some_table", "other", "facts", "join"}
	propPrompts = []string{"Summarize", "Is it good?", "Rate 1-5", "it's 'quoted'"}
	propNumbers = []string{"0", "7", "42", "4.5"}
	propAliases = []string{"a1", "score", "out"}
	propAggs    = []AggFunc{AggAvg, AggCount, AggSum, AggMin, AggMax}
)

func randIdent(r *rand.Rand) string { return propIdents[r.Intn(len(propIdents))] }

// randColRef generates a column reference, qualified with one of the FROM
// clause's effective table names one time in three.
func randColRef(r *rand.Rand, quals []string) ColRef {
	c := ColRef{Column: randIdent(r)}
	if len(quals) > 0 && r.Intn(3) == 0 {
		c.Qualifier = quals[r.Intn(len(quals))]
	}
	return c
}

// randFrom generates a FROM clause of 1–3 tables with optional aliases and
// qualified equi-join conditions, returning it plus the effective names
// column references may use as qualifiers.
func randFrom(r *rand.Rand) ([]TableRef, []string) {
	n := 1 + r.Intn(3)
	var from []TableRef
	var quals []string
	for i := 0; i < n; i++ {
		ref := TableRef{Table: propTables[i]}
		if r.Intn(2) == 0 {
			ref.Alias = propAliases[r.Intn(len(propAliases))] + "_t"
		}
		if i > 0 {
			on := &JoinOn{
				Left:  ColRef{Qualifier: quals[r.Intn(len(quals))], Column: randIdent(r)},
				Right: ColRef{Qualifier: ref.Name(), Column: randIdent(r)},
			}
			if r.Intn(2) == 0 {
				on.Left, on.Right = on.Right, on.Left
			}
			ref.On = on
		}
		from = append(from, ref)
		quals = append(quals, ref.Name())
	}
	return from, quals
}

func randCall(r *rand.Rand, quals []string) LLMCall {
	c := LLMCall{Prompt: propPrompts[r.Intn(len(propPrompts))]}
	switch r.Intn(6) {
	case 0:
		c.AllFields = true
		return c
	case 1:
		if len(quals) > 0 {
			c.StarOf = []string{quals[r.Intn(len(quals))]}
			return c
		}
	}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		c.Fields = append(c.Fields, randColRef(r, quals))
	}
	return c
}

var propOps = []CompareOp{OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe}

func randCompare(r *rand.Rand, quals []string) *Compare {
	c := &Compare{Op: propOps[r.Intn(len(propOps))]}
	if r.Intn(2) == 0 {
		call := randCall(r, quals)
		c.LLM = &call
	} else {
		c.Col = randColRef(r, quals)
	}
	if r.Intn(3) == 0 {
		c.IsNumber = true
		c.Literal = propNumbers[r.Intn(len(propNumbers))]
	} else {
		c.Literal = propPrompts[r.Intn(len(propPrompts))]
	}
	return c
}

// randHavingCompare generates a HAVING comparison leaf: an aggregate over a
// column, an LLM call, or COUNT(*), compared against a literal.
func randHavingCompare(r *rand.Rand, quals []string) *Compare {
	c := randCompare(r, quals)
	c.Agg = propAggs[r.Intn(len(propAggs))]
	if c.Agg == AggCount && r.Intn(2) == 0 {
		c.AggStar = true
		c.LLM = nil
		c.Col = ColRef{}
	}
	return c
}

// randExpr generates a boolean tree of bounded depth; leaf draws one
// comparison leaf.
func randExpr(r *rand.Rand, depth int, quals []string, leaf func(*rand.Rand, []string) *Compare) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		return leaf(r, quals)
	}
	switch r.Intn(4) {
	case 0:
		return &NotExpr{Inner: randExpr(r, depth-1, quals, leaf)}
	case 1:
		return &BinaryExpr{Op: "OR", Left: randExpr(r, depth-1, quals, leaf), Right: randExpr(r, depth-1, quals, leaf)}
	default:
		return &BinaryExpr{Op: "AND", Left: randExpr(r, depth-1, quals, leaf), Right: randExpr(r, depth-1, quals, leaf)}
	}
}

func randAggItem(r *rand.Rand, quals []string) SelectItem {
	fn := propAggs[r.Intn(len(propAggs))]
	item := SelectItem{Agg: fn}
	switch {
	case fn == AggCount && r.Intn(2) == 0:
		item.AggStar = true
	case r.Intn(2) == 0:
		call := randCall(r, quals)
		item.LLM = &call
	default:
		item.Col = randColRef(r, quals)
	}
	if r.Intn(2) == 0 {
		item.Alias = propAliases[r.Intn(len(propAliases))]
	}
	return item
}

// randomQuery generates a structurally valid AST covering the full dialect:
// multi-table FROM clauses with aliases and equi-joins, qualified column
// references, boolean WHERE trees over all six comparison operators, the
// five aggregates, GROUP BY, HAVING, multi-key ORDER BY, and LIMIT.
func randomQuery(r *rand.Rand) *Query {
	from, quals := randFrom(r)
	q := &Query{From: from, Limit: -1}
	if r.Intn(3) == 0 {
		// Aggregated select list, optionally grouped, optionally HAVING.
		if r.Intn(2) == 0 {
			n := 1 + r.Intn(2)
			for i := 0; i < n; i++ {
				col := randColRef(r, quals)
				q.GroupBy = append(q.GroupBy, col)
				q.Select = append(q.Select, SelectItem{Col: col})
			}
		}
		n := 1 + r.Intn(2)
		for i := 0; i < n; i++ {
			q.Select = append(q.Select, randAggItem(r, quals))
		}
		if r.Intn(2) == 0 {
			q.Having = randExpr(r, 2, quals, randHavingCompare)
		}
	} else {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				q.Select = append(q.Select, SelectItem{Star: true})
			case 1:
				item := SelectItem{Col: randColRef(r, quals)}
				if r.Intn(3) == 0 {
					item.Alias = propAliases[r.Intn(len(propAliases))]
				}
				q.Select = append(q.Select, item)
			default:
				call := randCall(r, quals)
				item := SelectItem{LLM: &call}
				if r.Intn(3) == 0 {
					item.Alias = propAliases[r.Intn(len(propAliases))]
				}
				q.Select = append(q.Select, item)
			}
		}
	}
	if r.Intn(2) == 0 {
		q.Where = randExpr(r, 3, quals, randCompare)
	}
	if r.Intn(3) == 0 {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			q.OrderBy = append(q.OrderBy, OrderItem{Col: randColRef(r, quals), Desc: r.Intn(2) == 0})
		}
	}
	if r.Intn(3) == 0 {
		q.Limit = r.Intn(10)
	}
	return q
}

func TestParseStringRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		parsed, err := Parse(q.String())
		if err != nil {
			t.Logf("render: %s\nerr: %v", q.String(), err)
			return false
		}
		if !reflect.DeepEqual(q, parsed) {
			t.Logf("render: %s\nwant: %#v\ngot:  %#v", q.String(), q, parsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseIdempotentRendering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		once, err := Parse(q.String())
		if err != nil {
			return false
		}
		twice, err := Parse(once.String())
		if err != nil {
			return false
		}
		return once.String() == twice.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPlanInvariantQuick checks planner invariants over random queries: the
// planned stage count never exceeds the naive one, and dedup preserves the
// classification of every distinct call.
func TestPlanInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		planned, errP := BuildPlan(q, nil, true)
		naive, errN := BuildPlan(q, nil, false)
		if (errP == nil) != (errN == nil) {
			t.Logf("query %s: planned err %v, naive err %v", q.String(), errP, errN)
			return false
		}
		if errP != nil {
			// Unsatisfiable statement (aggregated call compared against a
			// non-numeric literal) — rejected consistently by both plans.
			return true
		}
		if planned.Stages() > naive.Stages() {
			t.Logf("query %s: planned %d stages > naive %d", q.String(), planned.Stages(), naive.Stages())
			return false
		}
		distinct := map[string]bool{}
		for _, st := range append(append([]PlannedStage(nil), planned.PreStages...), planned.PostStages...) {
			if distinct[st.Call.Key()] {
				t.Logf("query %s: call %s planned twice", q.String(), st.Call)
				return false
			}
			distinct[st.Call.Key()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = lex(s) // error or tokens, never a panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		_, _ = Parse("SELECT " + s + " FROM t")
		_, _ = Parse("SELECT a FROM t WHERE " + s)
		_, _ = Parse("SELECT a FROM t JOIN u ON " + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
