package sqlfront

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var (
	propIdents  = []string{"alpha", "beta_col", "review/overall", "c3", "text", "and", "weird col"}
	propPrompts = []string{"Summarize", "Is it good?", "Rate 1-5", "it's 'quoted'"}
	propNumbers = []string{"0", "7", "42", "4.5"}
	propAliases = []string{"a1", "score", "out"}
	propAggs    = []AggFunc{AggAvg, AggCount, AggSum, AggMin, AggMax}
)

func randIdent(r *rand.Rand) string { return propIdents[r.Intn(len(propIdents))] }

func randCall(r *rand.Rand) LLMCall {
	c := LLMCall{Prompt: propPrompts[r.Intn(len(propPrompts))]}
	if r.Intn(5) == 0 {
		c.AllFields = true
		return c
	}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		c.Fields = append(c.Fields, randIdent(r))
	}
	return c
}

func randCompare(r *rand.Rand) *Compare {
	c := &Compare{Negated: r.Intn(2) == 0}
	if r.Intn(2) == 0 {
		call := randCall(r)
		c.LLM = &call
	} else {
		c.Column = randIdent(r)
	}
	if r.Intn(3) == 0 {
		c.IsNumber = true
		c.Literal = propNumbers[r.Intn(len(propNumbers))]
	} else {
		c.Literal = propPrompts[r.Intn(len(propPrompts))]
	}
	return c
}

// randExpr generates a boolean WHERE tree of bounded depth.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		return randCompare(r)
	}
	switch r.Intn(4) {
	case 0:
		return &NotExpr{Inner: randExpr(r, depth-1)}
	case 1:
		return &BinaryExpr{Op: "OR", Left: randExpr(r, depth-1), Right: randExpr(r, depth-1)}
	default:
		return &BinaryExpr{Op: "AND", Left: randExpr(r, depth-1), Right: randExpr(r, depth-1)}
	}
}

func randAggItem(r *rand.Rand) SelectItem {
	fn := propAggs[r.Intn(len(propAggs))]
	item := SelectItem{Agg: fn}
	switch {
	case fn == AggCount && r.Intn(2) == 0:
		item.AggStar = true
	case r.Intn(2) == 0:
		call := randCall(r)
		item.LLM = &call
	default:
		item.Column = randIdent(r)
	}
	if r.Intn(2) == 0 {
		item.Alias = propAliases[r.Intn(len(propAliases))]
	}
	return item
}

// randomQuery generates a structurally valid AST covering the full dialect:
// boolean WHERE trees, the five aggregates, GROUP BY, ORDER BY, and LIMIT.
func randomQuery(r *rand.Rand) *Query {
	q := &Query{From: "some_table", Limit: -1}
	if r.Intn(3) == 0 {
		// Aggregated select list, optionally grouped.
		if r.Intn(2) == 0 {
			n := 1 + r.Intn(2)
			for i := 0; i < n; i++ {
				col := randIdent(r)
				q.GroupBy = append(q.GroupBy, col)
				q.Select = append(q.Select, SelectItem{Column: col})
			}
		}
		n := 1 + r.Intn(2)
		for i := 0; i < n; i++ {
			q.Select = append(q.Select, randAggItem(r))
		}
	} else {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				q.Select = append(q.Select, SelectItem{Star: true})
			case 1:
				item := SelectItem{Column: randIdent(r)}
				if r.Intn(3) == 0 {
					item.Alias = propAliases[r.Intn(len(propAliases))]
				}
				q.Select = append(q.Select, item)
			default:
				call := randCall(r)
				item := SelectItem{LLM: &call}
				if r.Intn(3) == 0 {
					item.Alias = propAliases[r.Intn(len(propAliases))]
				}
				q.Select = append(q.Select, item)
			}
		}
	}
	if r.Intn(2) == 0 {
		q.Where = randExpr(r, 3)
	}
	if r.Intn(3) == 0 {
		q.OrderBy = &OrderItem{Column: randIdent(r), Desc: r.Intn(2) == 0}
	}
	if r.Intn(3) == 0 {
		q.Limit = r.Intn(10)
	}
	return q
}

func TestParseStringRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		parsed, err := Parse(q.String())
		if err != nil {
			t.Logf("render: %s\nerr: %v", q.String(), err)
			return false
		}
		if !reflect.DeepEqual(q, parsed) {
			t.Logf("render: %s\nwant: %#v\ngot:  %#v", q.String(), q, parsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseIdempotentRendering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		once, err := Parse(q.String())
		if err != nil {
			return false
		}
		twice, err := Parse(once.String())
		if err != nil {
			return false
		}
		return once.String() == twice.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPlanInvariantQuick checks planner invariants over random queries: the
// planned stage count never exceeds the naive one, and dedup preserves the
// classification of every distinct call.
func TestPlanInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		planned, errP := BuildPlan(q, true)
		naive, errN := BuildPlan(q, false)
		if (errP == nil) != (errN == nil) {
			t.Logf("query %s: planned err %v, naive err %v", q.String(), errP, errN)
			return false
		}
		if errP != nil {
			// Unsatisfiable statement (aggregated call compared against a
			// non-numeric literal) — rejected consistently by both plans.
			return true
		}
		if planned.Stages() > naive.Stages() {
			t.Logf("query %s: planned %d stages > naive %d", q.String(), planned.Stages(), naive.Stages())
			return false
		}
		distinct := map[string]bool{}
		for _, st := range append(append([]PlannedStage(nil), planned.PreStages...), planned.PostStages...) {
			if distinct[st.Call.Key()] {
				t.Logf("query %s: call %s planned twice", q.String(), st.Call)
				return false
			}
			distinct[st.Call.Key()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = lex(s) // error or tokens, never a panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		_, _ = Parse("SELECT " + s + " FROM t")
		_, _ = Parse("SELECT a FROM t WHERE " + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
