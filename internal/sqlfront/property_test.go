package sqlfront

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomQuery generates a structurally valid AST from a random source.
func randomQuery(r *rand.Rand) *Query {
	idents := []string{"alpha", "beta_col", "review/overall", "c3", "text"}
	prompts := []string{"Summarize", "Is it good?", "Rate 1-5", "it's 'quoted'"}
	randCall := func() LLMCall {
		c := LLMCall{Prompt: prompts[r.Intn(len(prompts))]}
		if r.Intn(5) == 0 {
			c.AllFields = true
			return c
		}
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			c.Fields = append(c.Fields, idents[r.Intn(len(idents))])
		}
		return c
	}
	q := &Query{From: "some_table"}
	if r.Intn(3) == 0 {
		// Aggregate-only select list.
		n := 1 + r.Intn(2)
		for i := 0; i < n; i++ {
			call := randCall()
			item := SelectItem{Avg: true, LLM: &call}
			if r.Intn(2) == 0 {
				item.Alias = "agg_" + idents[r.Intn(len(idents))][:2]
			}
			q.Select = append(q.Select, item)
		}
	} else {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				q.Select = append(q.Select, SelectItem{Star: true})
			case 1:
				q.Select = append(q.Select, SelectItem{Column: idents[r.Intn(len(idents))]})
			default:
				call := randCall()
				q.Select = append(q.Select, SelectItem{LLM: &call})
			}
		}
	}
	if r.Intn(2) == 0 {
		q.Where = &Predicate{
			Call:    randCall(),
			Negated: r.Intn(2) == 0,
			Literal: prompts[r.Intn(len(prompts))],
		}
	}
	return q
}

// normalizeStars collapses the lexical difference between `LLM('p', *)` and
// `LLM('p', t.*)` — both parse to AllFields — so DeepEqual comparisons hold.
func TestParseStringRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		parsed, err := Parse(q.String())
		if err != nil {
			t.Logf("render: %s\nerr: %v", q.String(), err)
			return false
		}
		if !reflect.DeepEqual(q, parsed) {
			t.Logf("render: %s\nwant: %#v\ngot:  %#v", q.String(), q, parsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseIdempotentRendering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		once, err := Parse(q.String())
		if err != nil {
			return false
		}
		twice, err := Parse(once.String())
		if err != nil {
			return false
		}
		return once.String() == twice.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = lex(s) // error or tokens, never a panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		_, _ = Parse("SELECT " + s + " FROM t")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
