package sqlfront

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/table"
)

// joinFixture is a two-table workload: 40 tickets referencing 10 customers,
// half of whom are pro tier. Text cells vary per row so the content-keyed
// oracle draws differ across rows.
func joinFixture() (tickets, customers *table.Table) {
	tickets = table.New("ticket_id", "customer_id", "request", "response")
	for i := 0; i < 40; i++ {
		tickets.MustAppendRow(
			"T-"+strconv.Itoa(1000+i),
			"C-"+strconv.Itoa(i%10),
			fmt.Sprintf("A long and detailed request %d describing an account issue with many words of context", i),
			fmt.Sprintf("A long support response %d walking through every remediation step in detail", i),
		)
	}
	customers = table.New("customer_id", "tier", "region")
	for i := 0; i < 10; i++ {
		tier := "free"
		if i < 5 {
			tier = "pro"
		}
		customers.MustAppendRow("C-"+strconv.Itoa(i), tier, "region-"+strconv.Itoa(i))
	}
	return tickets, customers
}

func joinDB() *DB {
	db := NewDB()
	tk, cu := joinFixture()
	db.Register("tickets", tk)
	db.Register("customers", cu)
	return db
}

// --- join semantics -----------------------------------------------------------

func TestExecJoinPlainPredicate(t *testing.T) {
	db := joinDB()
	res, err := db.Exec(`SELECT t.ticket_id, c.region FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id WHERE c.tier = 'pro'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := []string{"t.ticket_id", "c.region"}; !reflect.DeepEqual(res.Columns, got) {
		t.Errorf("columns = %v, want %v", res.Columns, got)
	}
	// Customers C-0..C-4 are pro; tickets cycle customers mod 10, so 4 rows
	// per customer → 20 rows, in ticket order.
	if len(res.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(res.Rows))
	}
	for _, row := range res.Rows {
		id, _ := strconv.Atoi(strings.TrimPrefix(row[0], "T-"))
		if (id-1000)%10 >= 5 {
			t.Errorf("non-pro ticket %q passed", row[0])
		}
		if want := "region-" + strconv.Itoa((id-1000)%10); row[1] != want {
			t.Errorf("ticket %q joined region %q, want %q", row[0], row[1], want)
		}
	}
	if res.LLMCalls != 0 || res.Stages != 0 {
		t.Errorf("plain join ran %d LLM calls", res.LLMCalls)
	}
}

func TestExecJoinUnqualifiedUnambiguousColumns(t *testing.T) {
	db := joinDB()
	// ticket_id, tier, region are unique across the two tables; only the
	// join key needs qualification.
	res, err := db.Exec(`SELECT ticket_id, region FROM tickets JOIN customers ON tickets.customer_id = customers.customer_id WHERE tier = 'free' ORDER BY tickets.ticket_id LIMIT 3`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Unqualified references bind to their canonical qualified names.
	if got := []string{"tickets.ticket_id", "customers.region"}; !reflect.DeepEqual(res.Columns, got) {
		t.Errorf("columns = %v, want %v", res.Columns, got)
	}
	if len(res.Rows) != 3 || res.Rows[0][0] != "T-1005" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecJoinOrderPreservesLeftTable(t *testing.T) {
	db := joinDB()
	res, err := db.Exec(`SELECT t.ticket_id FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("rows = %d, want 40", len(res.Rows))
	}
	for i, row := range res.Rows {
		if want := "T-" + strconv.Itoa(1000+i); row[0] != want {
			t.Fatalf("row %d = %q, want %q (left order lost)", i, row[0], want)
		}
	}
}

func TestExecSelfJoin(t *testing.T) {
	db := joinDB()
	res, err := db.Exec(`SELECT a.ticket_id, b.ticket_id FROM tickets AS a JOIN tickets AS b ON a.customer_id = b.customer_id WHERE a.ticket_id = 'T-1000'`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	// T-1000's customer C-0 owns tickets 1000, 1010, 1020, 1030.
	if len(res.Rows) != 4 {
		t.Fatalf("self-join rows = %v", res.Rows)
	}
	if res.Rows[1][1] != "T-1010" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecThreeWayJoin(t *testing.T) {
	db := joinDB()
	plans := table.New("tier", "price")
	plans.MustAppendRow("pro", "99")
	plans.MustAppendRow("free", "0")
	db.Register("plans", plans)
	res, err := db.Exec(`SELECT p.price, COUNT(*) AS n FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id JOIN plans AS p ON c.tier = p.tier GROUP BY p.price ORDER BY n`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"99", "20"}, {"0", "20"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestExecJoinGroupByWithLLMAggregate(t *testing.T) {
	db := joinDB()
	res, err := db.Exec(`SELECT c.tier, COUNT(*) AS n, AVG(LLM('Rate the urgency 1-5', t.request)) AS urgency FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id GROUP BY c.tier`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Stages != 1 {
		t.Fatalf("rows = %v, stages = %d", res.Rows, res.Stages)
	}
	for _, row := range res.Rows {
		if row[1] != "20" {
			t.Errorf("group %q size = %q, want 20", row[0], row[1])
		}
		if v, err := strconv.ParseFloat(row[2], 64); err != nil || v < 1 || v > 5 {
			t.Errorf("group %q urgency = %q", row[0], row[2])
		}
	}
}

func TestExecJoinErrors(t *testing.T) {
	db := joinDB()
	bad := map[string]string{
		`SELECT a FROM missing JOIN customers ON missing.x = customers.customer_id`:                     "not registered",
		`SELECT a FROM tickets JOIN missing ON tickets.customer_id = missing.x`:                         "not registered",
		`SELECT customer_id FROM tickets JOIN customers ON tickets.customer_id = customers.customer_id`: "ambiguous",
		`SELECT x.ticket_id FROM tickets AS x JOIN customers AS x ON x.customer_id = x.customer_id`:     "duplicate table name",
		`SELECT t.ticket_id FROM tickets AS t JOIN customers AS c ON t.customer_id = t.ticket_id`:       "must link",
		`SELECT t.ticket_id FROM tickets AS t JOIN customers AS c ON c.tier = c.region`:                 "must link",
		`SELECT z.ticket_id FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id`:     "unknown table",
		`SELECT t.nope FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id`:          "no column",
	}
	for src, want := range bad {
		_, err := db.Exec(src, execCfg())
		if err == nil {
			t.Errorf("Exec(%q) succeeded", src)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Exec(%q) error %q, want it to mention %q", src, err, want)
		}
	}
}

func TestExecUnregisteredTableErrorListsRegistered(t *testing.T) {
	db := joinDB()
	_, err := db.Exec(`SELECT a FROM nope`, execCfg())
	if err == nil {
		t.Fatal("unregistered table accepted")
	}
	for _, want := range []string{`"nope"`, "not registered", "customers", "tickets"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
	empty := NewDB()
	if _, err := empty.Exec(`SELECT a FROM nope`, execCfg()); err == nil || !strings.Contains(err.Error(), "no tables registered") {
		t.Errorf("empty-registry error = %v", err)
	}
}

func TestExecOrderByQualifiedSpellings(t *testing.T) {
	db := joinDB()
	// Single table: a qualified ORDER BY key resolves to the bare output
	// column.
	single, err := db.Exec(`SELECT ticket_id FROM tickets ORDER BY tickets.ticket_id DESC LIMIT 1`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if single.Rows[0][0] != "T-1039" {
		t.Errorf("single-table qualified ORDER BY rows = %v", single.Rows)
	}
	// Join: an unqualified ORDER BY key resolves to the canonical qualified
	// output column.
	joined, err := db.Exec(`SELECT t.ticket_id FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id ORDER BY ticket_id DESC LIMIT 1`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if joined.Rows[0][0] != "T-1039" {
		t.Errorf("join unqualified ORDER BY rows = %v", joined.Rows)
	}
	// A key that is neither an output column nor resolvable still errors.
	if _, err := db.Exec(`SELECT t.ticket_id FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id ORDER BY c.region`, execCfg()); err == nil {
		t.Error("ORDER BY on an unselected column accepted")
	}
}

func TestExecDuplicateLLMFieldsCollapse(t *testing.T) {
	// A field listed twice (directly or via qualification) must not break
	// the projected stage table.
	db := joinDB()
	res, err := db.Exec(`SELECT LLM('Summarize', request, request, tickets.request) AS s FROM tickets`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 || res.Rows[0][0] == "" {
		t.Fatalf("rows = %v", res.Rows[:1])
	}
}

func TestExecQualifiedAndBareSpellingsDedup(t *testing.T) {
	// LLM('p', request) and LLM('p', tickets.request) resolve to the same
	// canonical column and must share one stage.
	db := joinDB()
	res, err := db.Exec(`SELECT LLM('Summarize', request) AS a, LLM('Summarize', tickets.request) AS b FROM tickets`, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages != 1 {
		t.Errorf("stages = %d, want 1 (qualified spelling dedup)", res.Stages)
	}
	for i, row := range res.Rows {
		if row[0] != row[1] {
			t.Fatalf("row %d: deduped columns disagree", i)
		}
	}
}

// --- cost-ordered LLM filters -------------------------------------------------

// costSQL carries two LLM filters with the expensive one written first, so
// only cost-based reordering (not occurrence order) can run the cheap,
// selective region filter ahead of the long request/response filter.
const costSQL = `SELECT t.ticket_id
	FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id
	WHERE LLM('Does the response fully resolve the request?', t.request, t.response) = 'Yes'
	  AND c.tier = 'pro'
	  AND LLM('Is this region on fire?', c.region) = 'Yes'`

// TestExecJoinCostOrderedFewerCallsSameRows is the acceptance check: a
// two-table join with two LLM filters returns the same relation under the
// planned and naive executions, with the planned one issuing strictly fewer
// model calls and finishing sooner on the simulator.
func TestExecJoinCostOrderedFewerCallsSameRows(t *testing.T) {
	db := joinDB()
	planned, err := db.Exec(costSQL, execCfg())
	if err != nil {
		t.Fatal(err)
	}
	naiveCfg := execCfg()
	naiveCfg.Naive = true
	naive, err := db.Exec(costSQL, naiveCfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(planned.Rows, naive.Rows) {
		t.Fatalf("plans disagree:\nplanned %v\nnaive   %v", planned.Rows, naive.Rows)
	}
	if len(planned.Rows) == 0 {
		t.Fatal("no rows survived; fixture does not exercise the filters")
	}
	if planned.LLMCalls >= naive.LLMCalls {
		t.Errorf("planned %d calls, naive %d — want strictly fewer", planned.LLMCalls, naive.LLMCalls)
	}
	if planned.JCT >= naive.JCT {
		t.Errorf("planned JCT %.1f, naive %.1f — want strictly lower", planned.JCT, naive.JCT)
	}
	// The naive plan pays both filters over all 40 joined rows. The planned
	// plan pushes the tier predicate below the join (20 rows), runs the
	// cheap region filter first (20 calls), and pays the expensive filter
	// only for its survivors — strictly under 20 of the naive plan's calls.
	if naive.LLMCalls != 80 {
		t.Errorf("naive calls = %d, want 80", naive.LLMCalls)
	}
	if planned.LLMCalls >= 40 {
		t.Errorf("planned calls = %d, want < 40 (pushdown + cascade)", planned.LLMCalls)
	}
}

// TestOrderStagesByCost pins the planner-level ordering: the cheap, selective
// filter ranks ahead of the expensive one regardless of occurrence order.
func TestOrderStagesByCost(t *testing.T) {
	tk, _ := joinFixture()
	q := mustParse(t, `SELECT ticket_id FROM tickets WHERE LLM('Resolved?', request, response) = 'Yes' AND LLM('Short?', ticket_id) = 'Yes'`)
	db := NewDB()
	db.Register("tickets", tk)
	sc, _, err := db.scopeFor(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bind(q, sc); err != nil {
		t.Fatal(err)
	}
	pl := mustPlan(t, q, true)
	if len(pl.PreStages) != 2 {
		t.Fatalf("stages = %d", len(pl.PreStages))
	}
	if got := pl.PreStages[0].Call.Fields[0].Column; got != "request" {
		t.Fatalf("occurrence order lost before ordering: %q", got)
	}
	ordered := orderStagesByCost(pl.PreStages, pl.Residual, tk)
	if got := ordered[0].Call.Fields[0].Column; got != "ticket_id" {
		t.Errorf("cheap filter not first: %q", got)
	}
	if got := ordered[1].Call.Fields[0].Column; got != "request" {
		t.Errorf("expensive filter not last: %q", got)
	}
}

// TestOrderStagesByCostPrefersSelective checks the selectivity term: with
// equal per-call cost, the filter whose conjunct passes fewer rows ranks
// first (1/3 of a three-way alphabet vs 2/3).
func TestOrderStagesByCostPrefersSelective(t *testing.T) {
	tk, _ := joinFixture()
	q := mustParse(t, `SELECT ticket_id FROM tickets WHERE (LLM('Wide?', request) = 'A' OR LLM('Wide?', request) = 'B') AND LLM('Narrow?', request) = 'A'`)
	db := NewDB()
	db.Register("tickets", tk)
	sc, _, err := db.scopeFor(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bind(q, sc); err != nil {
		t.Fatal(err)
	}
	pl := mustPlan(t, q, true)
	ordered := orderStagesByCost(pl.PreStages, pl.Residual, tk)
	if got := ordered[0].Call.Prompt; got != "Narrow?" {
		t.Errorf("selective filter not first: %q", got)
	}
}

func TestBuildPlanJoinPushdownClassification(t *testing.T) {
	db := joinDB()
	q := mustParse(t, `SELECT t.ticket_id FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id
		WHERE t.ticket_id <> 'T-9999' AND c.tier = 'pro' AND (t.ticket_id = 'T-1000' OR c.region <> 'region-3') AND LLM('ok?', t.request) = 'Yes'`)
	sc, _, err := db.scopeFor(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bind(q, sc); err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPlan(q, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if pl.TablePushed[0] == nil || containsLLM(pl.TablePushed[0]) {
		t.Errorf("tickets-local conjunct not pushed: %v", pl.TablePushed[0])
	}
	if pl.TablePushed[1] == nil {
		t.Errorf("customers-local conjunct not pushed")
	}
	if pl.Pushed == nil || containsLLM(pl.Pushed) {
		t.Errorf("cross-table plain conjunct not pushed post-join: %v", pl.Pushed)
	}
	if pl.Residual == nil || !containsLLM(pl.Residual) {
		t.Errorf("LLM conjunct not residual: %v", pl.Residual)
	}
	if len(pl.PreStages) != 1 || len(pl.PostStages) != 0 {
		t.Errorf("stages = %d pre / %d post", len(pl.PreStages), len(pl.PostStages))
	}
	if pl.PreStages[0].Type != query.Filter {
		t.Errorf("stage type = %v", pl.PreStages[0].Type)
	}
}

// TestExecJoinLLMFilterPolicyInvariant: scheduling policy changes serving
// cost, never the joined result relation.
func TestExecJoinLLMFilterPolicyInvariant(t *testing.T) {
	db := joinDB()
	sql := `SELECT t.ticket_id FROM tickets AS t JOIN customers AS c ON t.customer_id = c.customer_id WHERE LLM('Is this region on fire?', c.region) = 'Yes'`
	ggr, err := db.Exec(sql, ExecConfig{Config: query.Config{Policy: query.CacheGGR}})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := db.Exec(sql, ExecConfig{Config: query.Config{Policy: query.CacheOriginal}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ggr.Rows, orig.Rows) {
		t.Errorf("policy changed results:\nggr  %v\norig %v", ggr.Rows, orig.Rows)
	}
}
