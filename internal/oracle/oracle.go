// Package oracle is a deterministic stand-in for LLM answer behaviour. The
// serving simulator accounts time and memory; this package decides what the
// model says, so the accuracy experiments (Fig. 6) can run end to end.
//
// The model: for a labelled classification row, the simulated LLM answers
// correctly with probability
//
//	acc = base(model, dataset) + coef(model, dataset) × (relPos − ½)
//
// where relPos ∈ [0,1] is the relative position of the dataset's key field
// (the field the question is actually about) within that row's prompt. The
// per-row random draw is a hash of (model, dataset, source row), so the same
// row compares consistently across schedules: reordering changes the outcome
// only through the position term. The coefficients encode the paper's
// observed sensitivities — small for large models, and a strong positive
// claim-position effect for Llama-3-8B on FEVER (Sec. 6.4: +14.2% when GGR
// moves the claim to the end of the prompt).
package oracle

import (
	"fmt"
	"strings"
)

// Profile is one model's behavioural parameters.
type Profile struct {
	Name string
	// Base accuracy per dataset; DefaultBase covers unlisted datasets.
	Base        map[string]float64
	DefaultBase float64
	// Coef is the accuracy swing per dataset as the key field moves from the
	// front (relPos 0) to the back (relPos 1) of the prompt.
	Coef map[string]float64
}

// Profiles for the three models of the accuracy study (Fig. 6). Base rates
// approximate the figure's levels; coefficient signs match the reported
// median deltas (GGR generally moves unique content fields later and grouped
// fields earlier).
var (
	Llama8B = Profile{
		Name:        "llama-3-8b",
		DefaultBase: 0.72,
		Base: map[string]float64{
			"Movies": 0.78, "Products": 0.75, "BIRD": 0.72,
			"PDMX": 0.68, "Beer": 0.81, "FEVER": 0.60,
		},
		Coef: map[string]float64{
			"Movies": 0.07, "Products": -0.02, "BIRD": 0.00,
			"PDMX": 0.02, "Beer": 0.13, "FEVER": 0.145,
		},
	}
	Llama70B = Profile{
		Name:        "llama-3-70b",
		DefaultBase: 0.80,
		Base: map[string]float64{
			"Movies": 0.85, "Products": 0.82, "BIRD": 0.80,
			"PDMX": 0.76, "Beer": 0.86, "FEVER": 0.75,
		},
		Coef: map[string]float64{
			"Movies": 0.09, "Products": 0.02, "BIRD": 0.02,
			"PDMX": -0.02, "Beer": 0.07, "FEVER": 0.017,
		},
	}
	GPT4o = Profile{
		Name:        "gpt-4o",
		DefaultBase: 0.84,
		Base: map[string]float64{
			"Movies": 0.88, "Products": 0.85, "BIRD": 0.83,
			"PDMX": 0.80, "Beer": 0.88, "FEVER": 0.80,
		},
		Coef: map[string]float64{
			"Movies": -0.07, "Products": -0.04, "BIRD": -0.02,
			"PDMX": 0.08, "Beer": 0.07, "FEVER": -0.024,
		},
	}
)

// Accuracy returns the per-row correctness probability for the key field at
// the given relative position, clamped to [0.02, 0.99].
func (p Profile) Accuracy(dataset string, relPos float64) float64 {
	base, ok := p.Base[dataset]
	if !ok {
		base = p.DefaultBase
	}
	acc := base + p.Coef[dataset]*(relPos-0.5)
	if acc < 0.02 {
		acc = 0.02
	}
	if acc > 0.99 {
		acc = 0.99
	}
	return acc
}

// Answer decides the model's output for a classification row. truth is the
// ground-truth label, choices the label alphabet (must contain truth), and
// relPos the key field's relative position in this row's prompt. The same
// (profile, dataset, rowKey) always consumes the same latent random draw.
func (p Profile) Answer(dataset string, rowKey uint64, truth string, choices []string, relPos float64) string {
	u := hash01(p.Name, dataset, rowKey, "answer")
	if u < p.Accuracy(dataset, relPos) {
		return truth
	}
	// Deterministically pick a wrong choice.
	var wrong []string
	for _, c := range choices {
		if c != truth {
			wrong = append(wrong, c)
		}
	}
	if len(wrong) == 0 {
		return truth
	}
	idx := hashN(uint64(len(wrong)), p.Name, dataset, rowKey, "wrong")
	return wrong[idx]
}

// Score returns a 1..maxScore sentiment score for aggregation queries: the
// ground-truth score perturbed by ±1 with the complement of the accuracy
// probability.
func (p Profile) Score(dataset string, rowKey uint64, truth int, maxScore int, relPos float64) int {
	u := hash01(p.Name, dataset, rowKey, "score")
	if u < p.Accuracy(dataset, relPos) {
		return clampScore(truth, maxScore)
	}
	if hashN(2, p.Name, dataset, rowKey, "dir") == 0 {
		return clampScore(truth-1, maxScore)
	}
	return clampScore(truth+1, maxScore)
}

func clampScore(s, maxScore int) int {
	if s < 1 {
		return 1
	}
	if s > maxScore {
		return maxScore
	}
	return s
}

// FreeText synthesizes a deterministic free-form answer of roughly the given
// token budget, for projection/summarization outputs whose content is
// incidental to the experiments.
func FreeText(rowKey uint64, tokens int) string {
	if tokens <= 0 {
		tokens = 1
	}
	// Every word is at most six bytes, so each word plus its leading space
	// fits one tokenizer piece and the budget is met exactly.
	words := []string{
		"the", "notes", "good", "with", "points", "and", "minor",
		"flaws", "a", "review", "says", "tone", "is", "clear",
		"brief", "solid", "mixed", "rating", "holds", "up",
	}
	var sb strings.Builder
	h := rowKey
	for i := 0; i < tokens; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		h = h*6364136223846793005 + 1442695040888963407
		sb.WriteString(words[h%uint64(len(words))])
	}
	return sb.String()
}

// hash01 maps the inputs to [0, 1).
func hash01(parts ...interface{}) float64 {
	return float64(hashN(1<<52, parts...)) / float64(uint64(1)<<52)
}

// hashN maps the inputs to [0, n).
func hashN(n uint64, parts ...interface{}) uint64 {
	var h uint64 = 1469598103934665603
	const prime = 1099511628211
	mix := func(b byte) { h ^= uint64(b); h *= prime }
	for _, p := range parts {
		for _, b := range []byte(fmt.Sprint(p)) {
			mix(b)
		}
		mix(0x1f)
	}
	if n == 0 {
		return 0
	}
	return h % n
}
