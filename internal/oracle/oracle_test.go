package oracle

import (
	"strings"
	"testing"

	"repro/internal/tokenizer"
)

func TestAnswerDeterministic(t *testing.T) {
	for i := uint64(0); i < 50; i++ {
		a := Llama8B.Answer("Movies", i, "Yes", []string{"Yes", "No"}, 0.5)
		b := Llama8B.Answer("Movies", i, "Yes", []string{"Yes", "No"}, 0.5)
		if a != b {
			t.Fatalf("row %d nondeterministic: %q vs %q", i, a, b)
		}
	}
}

func TestAnswerInChoices(t *testing.T) {
	choices := []string{"SUPPORTS", "REFUTES", "NOT ENOUGH INFO"}
	ok := map[string]bool{}
	for _, c := range choices {
		ok[c] = true
	}
	for i := uint64(0); i < 200; i++ {
		got := Llama8B.Answer("FEVER", i, "SUPPORTS", choices, 0.2)
		if !ok[got] {
			t.Fatalf("answer %q not in choices", got)
		}
	}
}

func TestEmpiricalAccuracyNearNominal(t *testing.T) {
	const n = 20000
	correct := 0
	for i := uint64(0); i < n; i++ {
		if Llama8B.Answer("Movies", i, "Yes", []string{"Yes", "No"}, 0.5) == "Yes" {
			correct++
		}
	}
	got := float64(correct) / n
	want := Llama8B.Accuracy("Movies", 0.5)
	if got < want-0.02 || got > want+0.02 {
		t.Errorf("empirical accuracy %.3f, nominal %.3f", got, want)
	}
}

func TestPositionEffectDirection(t *testing.T) {
	// FEVER on 8B: claim later in the prompt => higher accuracy (the paper's
	// +14.2% observation).
	early := Llama8B.Accuracy("FEVER", 0.0)
	late := Llama8B.Accuracy("FEVER", 1.0)
	if late <= early {
		t.Errorf("FEVER position effect inverted: %.3f vs %.3f", early, late)
	}
	if delta := late - early; delta < 0.10 || delta > 0.20 {
		t.Errorf("FEVER swing = %.3f, want ≈ 0.145 (the paper's +14.2%%)", delta)
	}
	// Larger models are less sensitive.
	if s70 := Llama70B.Coef["FEVER"]; s70 >= Llama8B.Coef["FEVER"] {
		t.Errorf("70B FEVER coef %.3f not below 8B %.3f", s70, Llama8B.Coef["FEVER"])
	}
}

func TestAccuracyClamped(t *testing.T) {
	p := Profile{Name: "degenerate", DefaultBase: 2.0, Coef: map[string]float64{"X": -5}}
	if a := p.Accuracy("X", 1.0); a < 0.02 || a > 0.99 {
		t.Errorf("accuracy %f outside clamp", a)
	}
	if a := p.Accuracy("Y", 0.5); a != 0.99 {
		t.Errorf("high base not clamped: %f", a)
	}
}

func TestPositionChangesOnlyMarginalRows(t *testing.T) {
	// The same latent draw decides both positions: rows that are correct at
	// relPos 0 under a positive coefficient must remain correct at relPos 1.
	flippedToWrong := 0
	for i := uint64(0); i < 5000; i++ {
		early := Llama8B.Answer("FEVER", i, "SUPPORTS", []string{"SUPPORTS", "REFUTES"}, 0.0)
		late := Llama8B.Answer("FEVER", i, "SUPPORTS", []string{"SUPPORTS", "REFUTES"}, 1.0)
		if early == "SUPPORTS" && late != "SUPPORTS" {
			flippedToWrong++
		}
	}
	if flippedToWrong != 0 {
		t.Errorf("%d rows flipped against a positive position effect", flippedToWrong)
	}
}

func TestScoreBounds(t *testing.T) {
	for i := uint64(0); i < 500; i++ {
		s := Llama8B.Score("Movies", i, 5, 5, 0.5)
		if s < 1 || s > 5 {
			t.Fatalf("score %d out of bounds", s)
		}
	}
	// A wrong draw on truth=1 must not go below 1.
	for i := uint64(0); i < 500; i++ {
		if s := Llama8B.Score("Movies", i, 1, 5, 0.5); s < 1 {
			t.Fatalf("score %d below 1", s)
		}
	}
}

func TestScoreMeanTracksTruth(t *testing.T) {
	var sum int
	const n = 10000
	for i := uint64(0); i < n; i++ {
		sum += Llama8B.Score("Products", i, 4, 5, 0.5)
	}
	mean := float64(sum) / n
	if mean < 3.7 || mean > 4.3 {
		t.Errorf("score mean %.2f drifted from truth 4", mean)
	}
}

func TestFreeTextBudget(t *testing.T) {
	for _, want := range []int{1, 10, 50, 107} {
		text := FreeText(42, want)
		got := tokenizer.Count(text)
		if got < want-2 || got > want+2 {
			t.Errorf("FreeText(%d) = %d tokens", want, got)
		}
	}
	if FreeText(0, 0) == "" {
		t.Error("zero-budget FreeText should still emit one word")
	}
	if FreeText(1, 20) == FreeText(2, 20) && strings.Count(FreeText(1, 20), " ") > 3 {
		t.Error("different rows produced identical free text")
	}
}

func TestAnswerSingleChoiceFallsBack(t *testing.T) {
	got := Llama8B.Answer("Movies", 7, "only", []string{"only"}, 0.5)
	if got != "only" {
		t.Errorf("single-choice answer = %q", got)
	}
}
