// Package server exposes the reordering optimizer as an HTTP service, the
// integration path the paper targets ("can be easily applied to existing
// analytics systems and serving platforms"): an analytics engine POSTs the
// rows and fields an LLM operator is about to send, and receives the
// cache-maximizing request schedule plus the expected savings. With a
// serving runtime attached (NewWithRuntime), the service additionally
// executes whole LLM-SQL statements over its registered tables on POST
// /v1/sql — concurrent requests share the runtime's result cache and
// cross-query batcher, so a fleet of dashboard clients costs far fewer
// model calls than the statements run in isolation.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/obs"
	"repro/internal/pricing"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/table"
	"repro/internal/tokenizer"
)

// Error codes of the /v1 error envelope: every /v1/* error response is
//
//	{"error": {"code": "<one of these>", "message": "<human text>"}}
//
// Codes are stable API; messages are not. See docs/API.md.
const (
	// ErrCodeInvalidRequest — the body failed to decode or validate (400).
	ErrCodeInvalidRequest = "invalid_request"
	// ErrCodeMethodNotAllowed — wrong HTTP method for the endpoint (405).
	ErrCodeMethodNotAllowed = "method_not_allowed"
	// ErrCodeExecutionFailed — the statement was well-formed but failed to
	// plan or execute (422).
	ErrCodeExecutionFailed = "execution_failed"
	// ErrCodeQuotaExceeded — the client's quota buckets are overdrawn (429);
	// the response carries a Retry-After header and retryAfterMs field.
	ErrCodeQuotaExceeded = "quota_exceeded"
	// ErrCodeCanceled — the request's context died before completion (499,
	// the nginx client-closed-request convention).
	ErrCodeCanceled = "canceled"
	// ErrCodeUnavailable — no serving runtime is attached (503).
	ErrCodeUnavailable = "unavailable"
	// ErrCodeDeadlineExceeded — the statement's deadline expired (504).
	ErrCodeDeadlineExceeded = "deadline_exceeded"
	// ErrCodeInternal — an invariant broke server-side (500).
	ErrCodeInternal = "internal"
)

// ErrorBody is the inner error object of the /v1 envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMs rides only on quota_exceeded: how long until the client's
	// buckets refill (the Retry-After header carries the same figure in
	// whole seconds).
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

// ErrorResponse is the uniform /v1 error envelope.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// TableJSON is the wire form of an input relation.
type TableJSON struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// FDs lists bidirectional functional-dependency groups.
	FDs [][]string `json:"fds,omitempty"`
}

// decode materializes the wire table.
func (tj *TableJSON) decode() (*table.Table, error) {
	if len(tj.Columns) == 0 {
		return nil, fmt.Errorf("table needs at least one column")
	}
	seen := map[string]bool{}
	for _, c := range tj.Columns {
		if c == "" || seen[c] {
			return nil, fmt.Errorf("invalid or duplicate column %q", c)
		}
		seen[c] = true
	}
	t := table.New(tj.Columns...)
	for i, r := range tj.Rows {
		if err := t.AppendRow(r...); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	fds := table.NewFDSet()
	for _, g := range tj.FDs {
		fds.AddGroup(g...)
	}
	if err := t.SetFDs(fds); err != nil {
		return nil, err
	}
	return t, nil
}

// ReorderRequest is the /v1/reorder body.
type ReorderRequest struct {
	Table TableJSON `json:"table"`
	// Algorithm: "ggr" (default), "ophr", or "bestfixed".
	Algorithm string `json:"algorithm,omitempty"`
	// Exhaustive disables GGR early stopping.
	Exhaustive bool `json:"exhaustive,omitempty"`
}

// ReorderResponse carries the schedule in serving order.
type ReorderResponse struct {
	// Order lists source row indices in serving order; FieldOrders the
	// per-row field permutation (column names) aligned with Order.
	Order       [][2]interface{} `json:"-"`
	Rows        []ScheduledRow   `json:"rows"`
	PHC         int64            `json:"phc"`
	HitRate     float64          `json:"hitRate"`
	SolverMs    float64          `json:"solverMs"`
	RowCount    int              `json:"rowCount"`
	ColumnCount int              `json:"columnCount"`
}

// ScheduledRow is one request of the schedule.
type ScheduledRow struct {
	Source int      `json:"source"`
	Fields []string `json:"fields"`
}

// EstimateRequest is the /v1/estimate body.
type EstimateRequest struct {
	// Provider: "openai", "anthropic", or "gemini".
	Provider    string  `json:"provider"`
	HitOriginal float64 `json:"hitOriginal"`
	HitGGR      float64 `json:"hitGGR"`
}

// EstimateResponse reports the relative input-cost reduction.
type EstimateResponse struct {
	Book    string  `json:"book"`
	Savings float64 `json:"savings"`
}

// SimulateRequest is the /v1/simulate body: run a prompt over the table on
// the serving simulator under a policy.
type SimulateRequest struct {
	Table  TableJSON `json:"table"`
	Prompt string    `json:"prompt"`
	// Policy: "no-cache", "cache-original", "cache-ggr" (default).
	Policy string `json:"policy,omitempty"`
	// OutTokens is the per-row output budget (default 8).
	OutTokens int `json:"outTokens,omitempty"`
}

// SimulateResponse reports engine metrics for the run.
type SimulateResponse struct {
	JCT           float64 `json:"jctSeconds"`
	HitRate       float64 `json:"hitRate"`
	PromptTokens  int64   `json:"promptTokens"`
	MatchedTokens int64   `json:"matchedTokens"`
	MaxBatch      int     `json:"maxBatch"`
	SolverMs      float64 `json:"solverMs"`
}

// Config wires the optional service collaborators.
type Config struct {
	// Runtime, when non-nil, serves POST /v1/sql, GET /v1/metrics, and
	// GET /v1/traces; those endpoints respond 503 without it.
	Runtime *runtime.Runtime
	// Worker, when non-nil, serves POST /v1/batch against its local backend
	// (cluster worker mode, llmqserve -worker); without it that endpoint
	// responds 503. A draining worker also answers 503 on /healthz so
	// cluster routers mark it down before shutdown.
	Worker *Worker
	// AccessLog, when non-nil, gets one structured record per /v1/sql
	// request: client, class, outcome code, queue wait, JCT, and model calls.
	// A Worker logs its /v1/batch requests to the same logger.
	AccessLog *slog.Logger
	// Cluster, when non-nil, serves the GET/POST /v1/cluster/workers fleet
	// admin endpoint: list the live worker set and join/remove workers on
	// the running router (live ring rebalance). Without it that endpoint
	// responds 503.
	Cluster *cluster.Router
}

// New builds the stateless service mux (reorder/estimate/simulate only);
// /v1/sql responds 503 until a runtime is attached via NewWithRuntime.
func New() http.Handler { return NewWithConfig(Config{}) }

// NewWithRuntime builds the full service mux over rt with no access log.
func NewWithRuntime(rt *runtime.Runtime) http.Handler {
	return NewWithConfig(Config{Runtime: rt})
}

// NewWithConfig builds the full service mux. cfg.Runtime, when non-nil,
// serves POST /v1/sql — LLM-SQL statements over the runtime's registered
// tables, executed concurrently with cross-query batching and result caching
// — GET /v1/metrics, the fleet-wide runtime accounting (JSON by default,
// Prometheus text with ?format=prometheus or Accept: text/plain), and
// GET /v1/traces, the retained statement traces (explicitly traced plus
// slow-query captures).
func NewWithConfig(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		handleHealth(cfg, w, r)
	})
	mux.HandleFunc("/v1/reorder", handleReorder)
	mux.HandleFunc("/v1/estimate", handleEstimate)
	mux.HandleFunc("/v1/simulate", handleSimulate)
	mux.HandleFunc("/v1/sql", func(w http.ResponseWriter, r *http.Request) {
		handleSQL(cfg, w, r)
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) {
		handleBatch(cfg, w, r)
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(cfg, w, r)
	})
	mux.HandleFunc("/v1/traces", func(w http.ResponseWriter, r *http.Request) {
		handleTraces(cfg.Runtime, w, r)
	})
	mux.HandleFunc("/v1/cluster/workers", func(w http.ResponseWriter, r *http.Request) {
		handleClusterWorkers(cfg, w, r)
	})
	return mux
}

// ClusterWorkersRequest is the POST /v1/cluster/workers body: one live
// fleet-membership change on the running router.
type ClusterWorkersRequest struct {
	// Op is "add" or "remove".
	Op string `json:"op"`
	// Addr is the worker address ("host:port" or a full URL).
	Addr string `json:"addr"`
}

// ClusterWorkersResponse answers both GET and POST with the resulting live
// worker set.
type ClusterWorkersResponse struct {
	Workers []string `json:"workers"`
}

// handleClusterWorkers serves the fleet admin endpoint: GET lists the live
// worker set; POST {"op":"add"|"remove","addr":...} rebalances the
// consistent-hash ring on the running router — ~1/N of stages move, batches
// in flight on a removed worker drain on their old assignment.
func handleClusterWorkers(cfg Config, w http.ResponseWriter, r *http.Request) {
	if cfg.Cluster == nil {
		writeError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
			fmt.Errorf("no cluster router attached; start llmqserve with -backend remote"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, ClusterWorkersResponse{Workers: cfg.Cluster.Workers()})
	case http.MethodPost:
		var req ClusterWorkersRequest
		if !readJSON(w, r, &req) {
			return
		}
		if req.Addr == "" {
			writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest,
				fmt.Errorf("missing worker addr"))
			return
		}
		var err error
		switch req.Op {
		case "add":
			err = cfg.Cluster.AddWorker(req.Addr)
		case "remove":
			err = cfg.Cluster.RemoveWorker(req.Addr)
		default:
			writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest,
				fmt.Errorf("unknown op %q: want add or remove", req.Op))
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, ClusterWorkersResponse{Workers: cfg.Cluster.Workers()})
	default:
		writeError(w, http.StatusMethodNotAllowed, ErrCodeInvalidRequest,
			fmt.Errorf("method %s not allowed", r.Method))
	}
}

// SQLOptions is the execution-options envelope of a /v1/sql request — the
// home of every plan/policy toggle, so QoS identity (client, class,
// deadline) and execution tuning don't share a flat namespace.
type SQLOptions struct {
	// Naive runs the statement's unoptimized plan (no pushdown, dedup, or
	// cost-ordered filter cascade) for A/B comparison.
	Naive bool `json:"naive,omitempty"`
	// Policy overrides the scheduling policy for this statement:
	// "no-cache", "cache-original", or "cache-ggr" ("" keeps the runtime's
	// default).
	Policy string `json:"policy,omitempty"`
	// Trace records a span tree for this statement — EXPLAIN ANALYZE for the
	// serving path — returned in the response's "trace" field and retained
	// in GET /v1/traces. Untraced statements pay nothing.
	Trace bool `json:"trace,omitempty"`
}

// SQLRequest is the /v1/sql body: one LLM-SQL statement over the serving
// runtime's registered tables, executed as the named client and class.
type SQLRequest struct {
	SQL string `json:"sql"`
	// Client names the tenant this statement runs for: its fair-admission
	// flow, quota bucket, and per-client metrics row. Empty accounts under
	// the runtime's default (anonymous) client.
	Client string `json:"client,omitempty"`
	// Class is the statement's service class, "interactive" (default) or
	// "batch": it selects the admission weight and the micro-batcher's
	// coalescing window.
	Class string `json:"class,omitempty"`
	// DeadlineMs bounds the statement's total time in milliseconds. The
	// deadline also closes any batch window the statement is parked in
	// early, so a deadlined statement is not taxed by coalescing.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
	// Options is the execution-options envelope.
	Options *SQLOptions `json:"options,omitempty"`

	// Naive and Policy at the top level are deprecated in favor of the
	// options envelope. Both forms are accepted for one release; using the
	// top-level fields adds a "deprecated" warning list to the response,
	// and the envelope wins when both are present.
	Naive  *bool  `json:"naive,omitempty"`
	Policy string `json:"policy,omitempty"`
}

// SQLResponse carries the result relation, the statement's own serving
// statistics, and a snapshot of the runtime's fleet-wide metrics.
type SQLResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Client / Class echo the identity the statement was accounted under
	// (normalized: empty client maps to the runtime default, empty class to
	// interactive).
	Client string `json:"client"`
	Class  string `json:"class"`
	// JCT attributes every coalesced engine run the statement waited on;
	// LLMCalls counts only rows this statement itself sent to an engine
	// (cache hits and piggybacked calls are free).
	JCT      float64 `json:"jctSeconds"`
	HitRate  float64 `json:"hitRate"`
	SolverMs float64 `json:"solverMs"`
	LLMCalls int     `json:"llmCalls"`
	Stages   int     `json:"stages"`
	// Deprecated warns, per deprecated request field used, what to use
	// instead. Absent when the request used only current fields.
	Deprecated []string `json:"deprecated,omitempty"`
	// Trace is the statement's span tree, present only when the request set
	// options.trace. See docs/API.md for the schema.
	Trace *obs.Trace `json:"trace,omitempty"`
	// Runtime is the fleet-wide accounting after this statement finished.
	Runtime runtime.Metrics `json:"runtime"`
}

func handleSQL(cfg Config, w http.ResponseWriter, r *http.Request) {
	rt := cfg.Runtime
	if rt == nil {
		writeError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
			fmt.Errorf("no serving runtime attached; start the server with registered tables (llmqserve -csv/-dataset)"))
		return
	}
	var req SQLRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, fmt.Errorf("sql is required"))
		return
	}
	class, err := runtime.ParseClass(req.Class)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err)
		return
	}
	if req.DeadlineMs < 0 {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest,
			fmt.Errorf("deadlineMs must be >= 0, got %d", req.DeadlineMs))
		return
	}
	opts := runtime.Options{Client: runtime.ClientID(req.Client), Class: class}
	var deprecated []string
	if req.Options != nil {
		opts.Naive = req.Options.Naive
		opts.Policy = query.Policy(req.Options.Policy)
		opts.Trace = req.Options.Trace
	}
	if req.Naive != nil {
		deprecated = append(deprecated, `top-level "naive" is deprecated: use options.naive`)
		if req.Options == nil {
			opts.Naive = *req.Naive
		}
	}
	if req.Policy != "" {
		deprecated = append(deprecated, `top-level "policy" is deprecated: use options.policy`)
		if req.Options == nil {
			opts.Policy = query.Policy(req.Policy)
		}
	}
	// The statement is scoped to the request: a client that disconnects (or
	// times out) cancels its statement instead of leaving it running. A
	// request deadline tightens that scope.
	ctx := r.Context()
	if req.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
		defer cancel()
	}
	// Submit + Wait (rather than ExecContext) keeps the handle: the settled
	// summary feeds the access log and the trace rides the response.
	h := rt.SubmitContext(ctx, req.SQL, opts)
	res, err := h.Wait()
	code := "ok"
	if err != nil {
		code = writeExecError(w, err)
	} else {
		resp := SQLResponse{
			Columns:    res.Columns,
			Rows:       res.Rows,
			Client:     string(normalizeClient(req.Client)),
			Class:      string(class),
			JCT:        res.JCT,
			HitRate:    res.HitRate,
			SolverMs:   res.SolverSeconds * 1000,
			LLMCalls:   res.LLMCalls,
			Stages:     res.Stages,
			Deprecated: deprecated,
			Runtime:    rt.Metrics(),
		}
		if opts.Trace {
			resp.Trace = h.Trace()
		}
		writeJSON(w, http.StatusOK, resp)
	}
	if cfg.AccessLog != nil {
		sum := h.Summary()
		cfg.AccessLog.Info("sql",
			"client", string(normalizeClient(req.Client)),
			"class", string(class),
			"code", code,
			"queueWaitMs", float64(sum.QueueWait.Microseconds())/1e3,
			"jctSeconds", sum.JCTSeconds,
			"llmCalls", sum.LLMCalls)
	}
}

// normalizeClient mirrors the runtime's admission normalization for the
// response echo.
func normalizeClient(c string) runtime.ClientID {
	if c == "" {
		return runtime.DefaultClient
	}
	return runtime.ClientID(c)
}

// writeExecError maps a statement-execution error onto the envelope: quota
// breaches become 429 with a retry horizon, context deaths keep their
// cancellation statuses, everything else is an execution failure. It returns
// the error code it wrote (the access log's outcome field).
func writeExecError(w http.ResponseWriter, err error) string {
	var qe *runtime.QuotaError
	switch {
	case errors.As(err, &qe):
		secs := int64(math.Ceil(qe.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: ErrorBody{
			Code:         ErrCodeQuotaExceeded,
			Message:      err.Error(),
			RetryAfterMs: qe.RetryAfter.Milliseconds(),
		}})
		return ErrCodeQuotaExceeded
	case errors.Is(err, context.Canceled):
		writeError(w, 499, ErrCodeCanceled, err) // client closed request (nginx convention)
		return ErrCodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, ErrCodeDeadlineExceeded, err)
		return ErrCodeDeadlineExceeded
	default:
		writeError(w, http.StatusUnprocessableEntity, ErrCodeExecutionFailed, err)
		return ErrCodeExecutionFailed
	}
}

// handleHealth answers liveness probes. A draining worker reports 503 so
// cluster routers mark it down and fail its stages over while in-flight
// batches finish under graceful shutdown.
func handleHealth(cfg Config, w http.ResponseWriter, r *http.Request) {
	if cfg.Worker != nil && cfg.Worker.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves GET /v1/metrics: the fleet-wide runtime accounting
// that previously only rode piggybacked on /v1/sql responses. JSON by
// default; ?format=prometheus (or an Accept header preferring text/plain)
// switches to the Prometheus text exposition format. A runtime-less cluster
// worker serves its batch accounting instead.
func handleMetrics(cfg Config, w http.ResponseWriter, r *http.Request) {
	rt := cfg.Runtime
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	if rt == nil && cfg.Worker == nil {
		writeError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
			fmt.Errorf("no serving runtime attached; start the server with registered tables (llmqserve -csv/-dataset)"))
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "prometheus":
	default:
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest,
			fmt.Errorf("unknown format %q (want json or prometheus)", format))
		return
	}
	prom := format == "prometheus" ||
		(format == "" && strings.HasPrefix(r.Header.Get("Accept"), "text/plain"))
	if rt == nil {
		// Worker mode: batch-serving accounting only.
		st := cfg.Worker.Stats()
		if prom {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(renderWorkerPrometheus(st)))
			return
		}
		writeJSON(w, http.StatusOK, map[string]WorkerStats{"worker": st})
		return
	}
	if prom {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(renderPrometheus(rt.Metrics())))
		return
	}
	writeJSON(w, http.StatusOK, rt.Metrics())
}

// TracesResponse is the GET /v1/traces body: retained statement traces,
// newest first — statements that opted in with options.trace plus those the
// slow-query threshold captured.
type TracesResponse struct {
	Traces []*obs.Trace `json:"traces"`
}

func handleTraces(rt *runtime.Runtime, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	if rt == nil {
		writeError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
			fmt.Errorf("no serving runtime attached; start the server with registered tables (llmqserve -csv/-dataset)"))
		return
	}
	traces := rt.Traces()
	if traces == nil {
		traces = []*obs.Trace{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: traces})
}

func handleReorder(w http.ResponseWriter, r *http.Request) {
	var req ReorderRequest
	if !readJSON(w, r, &req) {
		return
	}
	t, err := req.Table.decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err)
		return
	}
	lenOf := func(v string) int { return tokenizer.Count(v) }
	start := time.Now()
	var res *core.Result
	switch req.Algorithm {
	case "", "ggr":
		opt := core.DefaultGGROptions(lenOf)
		if req.Exhaustive {
			opt = core.ExhaustiveGGROptions(lenOf)
		}
		res = core.GGR(t, opt)
	case "ophr":
		res, err = core.OPHR(t, core.OPHROptions{LenOf: lenOf})
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, ErrCodeExecutionFailed, err)
			return
		}
	case "bestfixed":
		s := core.BestFixed(t, lenOf)
		res = &core.Result{Schedule: s, PHC: core.PHC(s, lenOf)}
	default:
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, fmt.Errorf("unknown algorithm %q", req.Algorithm))
		return
	}
	solver := time.Since(start)
	if err := core.Verify(t, res.Schedule); err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, err)
		return
	}
	out := ReorderResponse{
		PHC:         res.PHC,
		HitRate:     core.Hits(res.Schedule, lenOf).Rate(),
		SolverMs:    float64(solver.Microseconds()) / 1000,
		RowCount:    t.NumRows(),
		ColumnCount: t.NumCols(),
	}
	for _, row := range res.Schedule.Rows {
		fields := make([]string, len(row.Cells))
		for i, c := range row.Cells {
			fields[i] = c.Field
		}
		out.Rows = append(out.Rows, ScheduledRow{Source: row.Source, Fields: fields})
	}
	writeJSON(w, http.StatusOK, out)
}

func handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.HitOriginal < 0 || req.HitOriginal > 1 || req.HitGGR < 0 || req.HitGGR > 1 {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, fmt.Errorf("hit rates must be in [0,1]"))
		return
	}
	var book pricing.Book
	switch pricing.Provider(req.Provider) {
	case pricing.OpenAI:
		book = pricing.GPT4oMini
	case pricing.Anthropic:
		book = pricing.Claude35Sonnet
	case pricing.Gemini:
		book = pricing.GeminiFlash15
	default:
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, fmt.Errorf("unknown provider %q", req.Provider))
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Book:    book.Name,
		Savings: pricing.EstimatedSavings(book, req.HitOriginal, req.HitGGR),
	})
}

func handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !readJSON(w, r, &req) {
		return
	}
	t, err := req.Table.decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err)
		return
	}
	if t.NumRows() == 0 {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, fmt.Errorf("table has no rows"))
		return
	}
	if req.Prompt == "" {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, fmt.Errorf("prompt is required"))
		return
	}
	policy := query.Policy(req.Policy)
	if req.Policy == "" {
		policy = query.CacheGGR
	}
	out := req.OutTokens
	if out <= 0 {
		out = 8
	}
	spec := query.Spec{
		Name: "http-simulate", Dataset: "http", Type: query.Projection,
		UserPrompt: req.Prompt, OutTokens: out,
	}
	st, err := query.RunStageContext(r.Context(), spec, t, query.Config{
		Policy: policy, Model: llmsim.Llama3_8B, Cluster: llmsim.SingleL4,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		JCT:           st.Metrics.JCT,
		HitRate:       st.Metrics.HitRate(),
		PromptTokens:  st.Metrics.PromptTokens,
		MatchedTokens: st.Metrics.MatchedTokens,
		MaxBatch:      st.Metrics.MaxRunning,
		SolverMs:      st.SolverSeconds * 1000,
	})
}

// readJSON enforces POST + a body-size cap and decodes into dst.
func readJSON(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the uniform /v1 error envelope. Every error path of
// every /v1 endpoint goes through here (or writeExecError, which adds the
// quota retry horizon), so clients can always dispatch on error.code.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: err.Error()}})
}
