// Package server exposes the reordering optimizer as an HTTP service, the
// integration path the paper targets ("can be easily applied to existing
// analytics systems and serving platforms"): an analytics engine POSTs the
// rows and fields an LLM operator is about to send, and receives the
// cache-maximizing request schedule plus the expected savings. With a
// serving runtime attached (NewWithRuntime), the service additionally
// executes whole LLM-SQL statements over its registered tables on POST
// /v1/sql — concurrent requests share the runtime's result cache and
// cross-query batcher, so a fleet of dashboard clients costs far fewer
// model calls than the statements run in isolation.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/pricing"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/table"
	"repro/internal/tokenizer"
)

// TableJSON is the wire form of an input relation.
type TableJSON struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// FDs lists bidirectional functional-dependency groups.
	FDs [][]string `json:"fds,omitempty"`
}

// decode materializes the wire table.
func (tj *TableJSON) decode() (*table.Table, error) {
	if len(tj.Columns) == 0 {
		return nil, fmt.Errorf("table needs at least one column")
	}
	seen := map[string]bool{}
	for _, c := range tj.Columns {
		if c == "" || seen[c] {
			return nil, fmt.Errorf("invalid or duplicate column %q", c)
		}
		seen[c] = true
	}
	t := table.New(tj.Columns...)
	for i, r := range tj.Rows {
		if err := t.AppendRow(r...); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	fds := table.NewFDSet()
	for _, g := range tj.FDs {
		fds.AddGroup(g...)
	}
	if err := t.SetFDs(fds); err != nil {
		return nil, err
	}
	return t, nil
}

// ReorderRequest is the /v1/reorder body.
type ReorderRequest struct {
	Table TableJSON `json:"table"`
	// Algorithm: "ggr" (default), "ophr", or "bestfixed".
	Algorithm string `json:"algorithm,omitempty"`
	// Exhaustive disables GGR early stopping.
	Exhaustive bool `json:"exhaustive,omitempty"`
}

// ReorderResponse carries the schedule in serving order.
type ReorderResponse struct {
	// Order lists source row indices in serving order; FieldOrders the
	// per-row field permutation (column names) aligned with Order.
	Order       [][2]interface{} `json:"-"`
	Rows        []ScheduledRow   `json:"rows"`
	PHC         int64            `json:"phc"`
	HitRate     float64          `json:"hitRate"`
	SolverMs    float64          `json:"solverMs"`
	RowCount    int              `json:"rowCount"`
	ColumnCount int              `json:"columnCount"`
}

// ScheduledRow is one request of the schedule.
type ScheduledRow struct {
	Source int      `json:"source"`
	Fields []string `json:"fields"`
}

// EstimateRequest is the /v1/estimate body.
type EstimateRequest struct {
	// Provider: "openai", "anthropic", or "gemini".
	Provider    string  `json:"provider"`
	HitOriginal float64 `json:"hitOriginal"`
	HitGGR      float64 `json:"hitGGR"`
}

// EstimateResponse reports the relative input-cost reduction.
type EstimateResponse struct {
	Book    string  `json:"book"`
	Savings float64 `json:"savings"`
}

// SimulateRequest is the /v1/simulate body: run a prompt over the table on
// the serving simulator under a policy.
type SimulateRequest struct {
	Table  TableJSON `json:"table"`
	Prompt string    `json:"prompt"`
	// Policy: "no-cache", "cache-original", "cache-ggr" (default).
	Policy string `json:"policy,omitempty"`
	// OutTokens is the per-row output budget (default 8).
	OutTokens int `json:"outTokens,omitempty"`
}

// SimulateResponse reports engine metrics for the run.
type SimulateResponse struct {
	JCT           float64 `json:"jctSeconds"`
	HitRate       float64 `json:"hitRate"`
	PromptTokens  int64   `json:"promptTokens"`
	MatchedTokens int64   `json:"matchedTokens"`
	MaxBatch      int     `json:"maxBatch"`
	SolverMs      float64 `json:"solverMs"`
}

// New builds the stateless service mux (reorder/estimate/simulate only);
// /v1/sql responds 503 until a runtime is attached via NewWithRuntime.
func New() http.Handler { return NewWithRuntime(nil) }

// NewWithRuntime builds the full service mux. rt, when non-nil, serves
// POST /v1/sql — LLM-SQL statements over the runtime's registered tables,
// executed concurrently with cross-query batching and result caching — and
// GET /v1/metrics, the fleet-wide runtime accounting on its own endpoint
// (scrapers should not have to run a statement to read it).
func NewWithRuntime(rt *runtime.Runtime) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealth)
	mux.HandleFunc("/v1/reorder", handleReorder)
	mux.HandleFunc("/v1/estimate", handleEstimate)
	mux.HandleFunc("/v1/simulate", handleSimulate)
	mux.HandleFunc("/v1/sql", func(w http.ResponseWriter, r *http.Request) {
		handleSQL(rt, w, r)
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(rt, w, r)
	})
	return mux
}

// SQLRequest is the /v1/sql body: one LLM-SQL statement over the serving
// runtime's registered tables.
type SQLRequest struct {
	SQL string `json:"sql"`
	// Naive runs the statement's unoptimized plan (no pushdown, dedup, or
	// cost-ordered filter cascade) for A/B comparison.
	Naive bool `json:"naive,omitempty"`
	// Policy overrides the scheduling policy for this statement:
	// "no-cache", "cache-original", or "cache-ggr" ("" keeps the runtime's
	// default).
	Policy string `json:"policy,omitempty"`
}

// SQLResponse carries the result relation, the statement's own serving
// statistics, and a snapshot of the runtime's fleet-wide metrics.
type SQLResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// JCT attributes every coalesced engine run the statement waited on;
	// LLMCalls counts only rows this statement itself sent to an engine
	// (cache hits and piggybacked calls are free).
	JCT      float64 `json:"jctSeconds"`
	HitRate  float64 `json:"hitRate"`
	SolverMs float64 `json:"solverMs"`
	LLMCalls int     `json:"llmCalls"`
	Stages   int     `json:"stages"`
	// Runtime is the fleet-wide accounting after this statement finished.
	Runtime runtime.Metrics `json:"runtime"`
}

func handleSQL(rt *runtime.Runtime, w http.ResponseWriter, r *http.Request) {
	if rt == nil {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("no serving runtime attached; start the server with registered tables (llmqserve -csv/-dataset)"))
		return
	}
	var req SQLRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sql is required"))
		return
	}
	// The statement is scoped to the request: a client that disconnects (or
	// times out) cancels its statement instead of leaving it running.
	res, err := rt.ExecContext(r.Context(), req.SQL,
		runtime.Options{Naive: req.Naive, Policy: query.Policy(req.Policy)})
	if err != nil {
		status := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, context.Canceled):
			status = 499 // client closed request (nginx convention)
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, SQLResponse{
		Columns:  res.Columns,
		Rows:     res.Rows,
		JCT:      res.JCT,
		HitRate:  res.HitRate,
		SolverMs: res.SolverSeconds * 1000,
		LLMCalls: res.LLMCalls,
		Stages:   res.Stages,
		Runtime:  rt.Metrics(),
	})
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves GET /v1/metrics: the fleet-wide runtime accounting
// that previously only rode piggybacked on /v1/sql responses.
func handleMetrics(rt *runtime.Runtime, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	if rt == nil {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("no serving runtime attached; start the server with registered tables (llmqserve -csv/-dataset)"))
		return
	}
	writeJSON(w, http.StatusOK, rt.Metrics())
}

func handleReorder(w http.ResponseWriter, r *http.Request) {
	var req ReorderRequest
	if !readJSON(w, r, &req) {
		return
	}
	t, err := req.Table.decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	lenOf := func(v string) int { return tokenizer.Count(v) }
	start := time.Now()
	var res *core.Result
	switch req.Algorithm {
	case "", "ggr":
		opt := core.DefaultGGROptions(lenOf)
		if req.Exhaustive {
			opt = core.ExhaustiveGGROptions(lenOf)
		}
		res = core.GGR(t, opt)
	case "ophr":
		res, err = core.OPHR(t, core.OPHROptions{LenOf: lenOf})
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
	case "bestfixed":
		s := core.BestFixed(t, lenOf)
		res = &core.Result{Schedule: s, PHC: core.PHC(s, lenOf)}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q", req.Algorithm))
		return
	}
	solver := time.Since(start)
	if err := core.Verify(t, res.Schedule); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := ReorderResponse{
		PHC:         res.PHC,
		HitRate:     core.Hits(res.Schedule, lenOf).Rate(),
		SolverMs:    float64(solver.Microseconds()) / 1000,
		RowCount:    t.NumRows(),
		ColumnCount: t.NumCols(),
	}
	for _, row := range res.Schedule.Rows {
		fields := make([]string, len(row.Cells))
		for i, c := range row.Cells {
			fields[i] = c.Field
		}
		out.Rows = append(out.Rows, ScheduledRow{Source: row.Source, Fields: fields})
	}
	writeJSON(w, http.StatusOK, out)
}

func handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.HitOriginal < 0 || req.HitOriginal > 1 || req.HitGGR < 0 || req.HitGGR > 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("hit rates must be in [0,1]"))
		return
	}
	var book pricing.Book
	switch pricing.Provider(req.Provider) {
	case pricing.OpenAI:
		book = pricing.GPT4oMini
	case pricing.Anthropic:
		book = pricing.Claude35Sonnet
	case pricing.Gemini:
		book = pricing.GeminiFlash15
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown provider %q", req.Provider))
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Book:    book.Name,
		Savings: pricing.EstimatedSavings(book, req.HitOriginal, req.HitGGR),
	})
}

func handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !readJSON(w, r, &req) {
		return
	}
	t, err := req.Table.decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if t.NumRows() == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("table has no rows"))
		return
	}
	if req.Prompt == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("prompt is required"))
		return
	}
	policy := query.Policy(req.Policy)
	if req.Policy == "" {
		policy = query.CacheGGR
	}
	out := req.OutTokens
	if out <= 0 {
		out = 8
	}
	spec := query.Spec{
		Name: "http-simulate", Dataset: "http", Type: query.Projection,
		UserPrompt: req.Prompt, OutTokens: out,
	}
	st, err := query.RunStageContext(r.Context(), spec, t, query.Config{
		Policy: policy, Model: llmsim.Llama3_8B, Cluster: llmsim.SingleL4,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		JCT:           st.Metrics.JCT,
		HitRate:       st.Metrics.HitRate(),
		PromptTokens:  st.Metrics.PromptTokens,
		MatchedTokens: st.Metrics.MatchedTokens,
		MaxBatch:      st.Metrics.MaxRunning,
		SolverMs:      st.SolverSeconds * 1000,
	})
}

// readJSON enforces POST + a body-size cap and decodes into dst.
func readJSON(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
