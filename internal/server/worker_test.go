package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/llmsim"
	"repro/internal/tokenizer"
)

func wireBatch(client, class string, rows int) backend.WireBatch {
	wb := backend.WireBatch{
		StageKey: "worker-test-stage",
		Client:   client,
		Class:    class,
		Engine: llmsim.Config{
			Cost:         llmsim.CostModel{Model: llmsim.Llama3_8B, Cluster: llmsim.SingleL4},
			CacheEnabled: true,
		},
	}
	for i := 0; i < rows; i++ {
		wb.Requests = append(wb.Requests, backend.WireRequest{
			ID:        i,
			Prompt:    make([]tokenizer.Token, 12),
			OutTokens: 4,
		})
	}
	return wb
}

func workerHandler() (http.Handler, *Worker) {
	wk := NewWorker(backend.NewSim(), nil)
	return NewWithConfig(Config{Worker: wk}), wk
}

func TestWorkerBatchEndpoint(t *testing.T) {
	h, wk := workerHandler()
	rec := post(t, h, "/v1/batch", wireBatch("dashboard-1", "batch", 3))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	res := decode[backend.WireResult](t, rec)
	if res.ModelCalls != 3 {
		t.Errorf("model calls = %d, want 3", res.ModelCalls)
	}
	if res.Metrics.PromptTokens == 0 {
		t.Error("result carries no prompt accounting")
	}
	st := wk.Stats()
	if st.Batches != 1 || st.Rows != 3 || st.Errors != 0 {
		t.Errorf("stats = %+v, want 1 batch / 3 rows / 0 errors", st)
	}
	if c := st.Clients["dashboard-1"]; c.Batches != 1 || c.Rows != 3 {
		t.Errorf("client share = %+v, want {Batches:1 Rows:3}", c)
	}

	// Anonymous batches account under "anon".
	post(t, h, "/v1/batch", wireBatch("", "", 2))
	if c := wk.Stats().Clients["anon"]; c.Batches != 1 || c.Rows != 2 {
		t.Errorf("anon share = %+v, want {Batches:1 Rows:2}", c)
	}
}

func TestWorkerBatchRejections(t *testing.T) {
	h, wk := workerHandler()

	// GET is not allowed (readJSON's POST-only contract).
	req := httptest.NewRequest(http.MethodGet, "/v1/batch", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", rec.Code)
	}

	// Malformed JSON.
	req = httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader("{nope"))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d, want 400", rec.Code)
	}

	// Valid JSON, invalid spec: no requests.
	rec = post(t, h, "/v1/batch", backend.WireBatch{StageKey: "empty"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", rec.Code)
	}
	env := decode[struct {
		Error struct{ Code, Message string } `json:"error"`
	}](t, rec)
	if env.Error.Code != ErrCodeInvalidRequest {
		t.Errorf("error code = %q, want %q", env.Error.Code, ErrCodeInvalidRequest)
	}

	// Invalid group annotation.
	wb := wireBatch("", "", 2)
	wb.Groups = []int{1, 0} // out of order
	rec = post(t, h, "/v1/batch", wb)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad groups status = %d, want 400", rec.Code)
	}

	// Invalid deadline header.
	b := post(t, h, "/v1/batch", wireBatch("", "", 1)) // warm-up sanity
	if b.Code != http.StatusOK {
		t.Fatalf("sanity batch status = %d", b.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(`{"stageKey":"x","requests":[{"id":0,"prompt":[1],"outTokens":1}],"engine":{}}`))
	req.Header.Set(backend.DeadlineHeader, "not-a-number")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad deadline header status = %d, want 400", rec.Code)
	}

	// Rejections never count as served batches.
	if st := wk.Stats(); st.Batches != 1 {
		t.Errorf("served batches = %d, want 1 (only the sanity batch)", st.Batches)
	}
}

func TestWorkerBatchWithoutWorker(t *testing.T) {
	// A plain (non -worker) server refuses /v1/batch with 503.
	rec := post(t, New(), "/v1/batch", wireBatch("", "", 1))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", rec.Code)
	}
}

func TestWorkerDraining(t *testing.T) {
	h, wk := workerHandler()
	wk.SetDraining(true)

	// Draining refuses new batches...
	rec := post(t, h, "/v1/batch", wireBatch("", "", 1))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining batch status = %d, want 503", rec.Code)
	}

	// ...and flips /healthz to 503 so routers mark the worker down.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrec := httptest.NewRecorder()
	h.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz status = %d, want 503", hrec.Code)
	}

	wk.SetDraining(false)
	hrec = httptest.NewRecorder()
	h.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusOK {
		t.Errorf("recovered /healthz status = %d, want 200", hrec.Code)
	}
}

func TestWorkerMetricsEndpoint(t *testing.T) {
	h, _ := workerHandler()
	if rec := post(t, h, "/v1/batch", wireBatch("tenant-a", "batch", 2)); rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d", rec.Code)
	}

	// JSON form.
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d: %s", rec.Code, rec.Body.String())
	}
	body := decode[map[string]WorkerStats](t, rec)
	if body["worker"].Batches != 1 || body["worker"].Rows != 2 {
		t.Errorf("worker metrics = %+v, want 1 batch / 2 rows", body["worker"])
	}

	// Prometheus form.
	req = httptest.NewRequest(http.MethodGet, "/v1/metrics?format=prometheus", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("prometheus status = %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"llmq_worker_batches_total 1",
		"llmq_worker_rows_total 2",
		"llmq_worker_draining 0",
		`llmq_worker_client_batches_total{client="tenant-a"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}
