package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/runtime"
)

// renderPrometheus serializes a runtime metrics snapshot in the Prometheus
// text exposition format (version 0.0.4), hand-rolled so the server carries
// no client-library dependency. Every metric family appears with exactly one
// HELP and one TYPE line; per-client and per-class series are labeled rows
// under one family; the admission-wait histograms are converted from the
// runtime's exclusive buckets to Prometheus's cumulative le-buckets. Map
// iteration orders are sorted, so the output is deterministic.
func renderPrometheus(m runtime.Metrics) string {
	var b strings.Builder
	w := promWriter{b: &b}

	// Fleet counters. Prometheus counters must be monotonic, which every
	// runtime counter is (the runtime never resets them while alive).
	w.family("llmq_statements_submitted_total", "counter", "Statements admitted into the pipeline.")
	w.row("llmq_statements_submitted_total", "", float64(m.StatementsSubmitted))
	w.family("llmq_statements_done_total", "counter", "Statements that reached a terminal state.")
	w.row("llmq_statements_done_total", "", float64(m.StatementsDone))
	w.family("llmq_statements_failed_total", "counter", "Statements that failed execution.")
	w.row("llmq_statements_failed_total", "", float64(m.StatementsFailed))
	w.family("llmq_statements_canceled_total", "counter", "Statements whose context died.")
	w.row("llmq_statements_canceled_total", "", float64(m.StatementsCanceled))
	w.family("llmq_abandoned_resolved_total", "counter", "Result-cache reservations settled by the detached resolver after cancellation.")
	w.row("llmq_abandoned_resolved_total", "", float64(m.AbandonedResolved))
	w.family("llmq_quota_rejections_total", "counter", "Statements refused admission on overdrawn quota.")
	w.row("llmq_quota_rejections_total", "", float64(m.QuotaRejections))

	w.family("llmq_plan_cache_hits_total", "counter", "Statement preparations served from the parse+plan cache.")
	w.row("llmq_plan_cache_hits_total", "", float64(m.PlanCacheHits))
	w.family("llmq_plan_cache_misses_total", "counter", "Statement preparations that parsed and planned afresh.")
	w.row("llmq_plan_cache_misses_total", "", float64(m.PlanCacheMisses))

	w.family("llmq_result_cache_hits_total", "counter", "Per-row result-cache hits.")
	w.row("llmq_result_cache_hits_total", "", float64(m.CacheHits))
	w.family("llmq_result_cache_misses_total", "counter", "Per-row result-cache misses (rows owned and computed).")
	w.row("llmq_result_cache_misses_total", "", float64(m.CacheMisses))
	w.family("llmq_inflight_deduped_total", "counter", "Rows that piggybacked on a concurrent identical call.")
	w.row("llmq_inflight_deduped_total", "", float64(m.InflightDeduped))
	w.family("llmq_rows_deduped_total", "counter", "Duplicate rows collapsed within one stage.")
	w.row("llmq_rows_deduped_total", "", float64(m.RowsDeduped))

	w.family("llmq_batches_total", "counter", "Engine runs.")
	w.row("llmq_batches_total", "", float64(m.Batches))
	w.family("llmq_coalesced_runs_total", "counter", "Engine runs that merged rows from more than one statement.")
	w.row("llmq_coalesced_runs_total", "", float64(m.CoalescedRuns))
	w.family("llmq_coalesced_rows_total", "counter", "Rows served in coalesced runs.")
	w.row("llmq_coalesced_rows_total", "", float64(m.CoalescedRows))
	w.family("llmq_llm_calls_total", "counter", "Rows actually sent to a serving engine.")
	w.row("llmq_llm_calls_total", "", float64(m.LLMCalls))
	w.family("llmq_direct_stages_total", "counter", "Stages executed outside the cache/batch path.")
	w.row("llmq_direct_stages_total", "", float64(m.DirectStages))
	w.family("llmq_batch_windows_shortened_total", "counter", "Batch windows whose close was pulled forward by a nearer-horizon joiner.")
	w.row("llmq_batch_windows_shortened_total", "", float64(m.BatchWindowsShortened))

	w.family("llmq_reorder_cache_hits_total", "counter", "GGR reorder-cache hits.")
	w.row("llmq_reorder_cache_hits_total", "", float64(m.ReorderCacheHits))
	w.family("llmq_reorder_cache_misses_total", "counter", "GGR reorder-cache misses.")
	w.row("llmq_reorder_cache_misses_total", "", float64(m.ReorderCacheMisses))
	w.family("llmq_reorder_solves_total", "counter", "GGR solver runs performed.")
	w.row("llmq_reorder_solves_total", "", float64(m.ReorderSolves))
	w.family("llmq_prompt_cache_hits_total", "counter", "Memoized prompt tokenization hits.")
	w.row("llmq_prompt_cache_hits_total", "", float64(m.PromptCacheHits))
	w.family("llmq_prompt_cache_misses_total", "counter", "Prompt tokenizations computed afresh.")
	w.row("llmq_prompt_cache_misses_total", "", float64(m.PromptCacheMisses))

	// Distributed-tier families, present only when the serving backend is a
	// cluster.Router.
	if m.Cluster != nil {
		c := m.Cluster
		addrs := make([]string, 0, len(c.Workers))
		for a := range c.Workers {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		workerRows := func(name, typ, help string, get func(cluster.WorkerMetrics) float64) {
			w.family(name, typ, help)
			for _, a := range addrs {
				w.row(name, labels("worker", a), get(c.Workers[a]))
			}
		}
		workerRows("llmq_cluster_worker_batches_total", "counter", "Remote batches served per worker.",
			func(wm cluster.WorkerMetrics) float64 { return float64(wm.Batches) })
		workerRows("llmq_cluster_worker_retries_total", "counter", "Remote batch retries per worker.",
			func(wm cluster.WorkerMetrics) float64 { return float64(wm.Retries) })
		workerRows("llmq_cluster_worker_errors_total", "counter", "Remote batches failed per worker.",
			func(wm cluster.WorkerMetrics) float64 { return float64(wm.Errors) })
		workerRows("llmq_cluster_worker_markdowns_total", "counter", "Health mark-down transitions per worker.",
			func(wm cluster.WorkerMetrics) float64 { return float64(wm.Markdowns) })
		workerRows("llmq_cluster_worker_budget_denied_total", "counter", "Batches failed fast per worker because the shared retry budget was empty.",
			func(wm cluster.WorkerMetrics) float64 { return float64(wm.BudgetDenied) })
		workerRows("llmq_cluster_worker_inflight", "gauge", "Batches currently dispatched per worker.",
			func(wm cluster.WorkerMetrics) float64 { return float64(wm.InFlight) })
		workerRows("llmq_cluster_worker_down", "gauge", "1 while the worker is marked down.",
			func(wm cluster.WorkerMetrics) float64 { return boolGauge(wm.Down) })
		workerRows("llmq_cluster_breaker_state", "gauge", "Worker circuit-breaker state: 0 closed, 1 half-open, 2 open.",
			func(wm cluster.WorkerMetrics) float64 { return breakerGauge(wm.Breaker) })
		workerRows("llmq_cluster_breaker_opens_total", "counter", "Circuit-open transitions per worker.",
			func(wm cluster.WorkerMetrics) float64 { return float64(wm.Markdowns) })
		w.family("llmq_cluster_ring_moves_total", "counter", "Batches served off their ring owner (failover).")
		w.row("llmq_cluster_ring_moves_total", "", float64(c.RingMoves))
		w.family("llmq_cluster_hot_replications_total", "counter", "Batches that replicated a hot stage onto a second worker.")
		w.row("llmq_cluster_hot_replications_total", "", float64(c.HotReplications))
		w.family("llmq_cluster_hedge_launched_total", "counter", "Hedged batch dispatches launched.")
		w.row("llmq_cluster_hedge_launched_total", "", float64(c.HedgesLaunched))
		w.family("llmq_cluster_hedge_wins_total", "counter", "Hedge races the hedge answered first.")
		w.row("llmq_cluster_hedge_wins_total", "", float64(c.HedgeWins))
		w.family("llmq_cluster_hedge_canceled_total", "counter", "Hedge races the primary won (hedge canceled).")
		w.row("llmq_cluster_hedge_canceled_total", "", float64(c.HedgesCanceled))
		w.family("llmq_cluster_rebalance_joins_total", "counter", "Workers joined to the live ring.")
		w.row("llmq_cluster_rebalance_joins_total", "", float64(c.RebalanceJoins))
		w.family("llmq_cluster_rebalance_leaves_total", "counter", "Workers removed from the live ring.")
		w.row("llmq_cluster_rebalance_leaves_total", "", float64(c.RebalanceLeaves))
	}

	w.family("llmq_sharded_batches_total", "counter", "Batches split across engine replicas.")
	w.row("llmq_sharded_batches_total", "", float64(m.ShardedBatches))
	w.family("llmq_shard_runs_total", "counter", "Sub-batches dispatched by the sharded backend.")
	w.row("llmq_shard_runs_total", "", float64(m.ShardRuns))
	w.family("llmq_shard_jct_seconds_total", "counter", "Summed per-shard virtual JCT.")
	w.row("llmq_shard_jct_seconds_total", "", m.ShardJCTSeconds)

	w.family("llmq_jct_seconds_total", "counter", "Virtual serving time summed over engine runs.")
	w.row("llmq_jct_seconds_total", "", m.TotalJCT)
	w.family("llmq_solver_seconds_total", "counter", "Scheduling time summed over engine runs.")
	w.row("llmq_solver_seconds_total", "", m.TotalSolverSeconds)
	w.family("llmq_prompt_tokens_total", "counter", "Prompt tokens submitted to engines.")
	w.row("llmq_prompt_tokens_total", "", float64(m.PromptTokens))
	w.family("llmq_matched_tokens_total", "counter", "Prompt tokens served from the prefix cache.")
	w.row("llmq_matched_tokens_total", "", float64(m.MatchedTokens))
	w.family("llmq_prefilled_tokens_total", "counter", "Prompt tokens prefilled by engines.")
	w.row("llmq_prefilled_tokens_total", "", float64(m.PrefilledTokens))

	// Per-client labeled families.
	if len(m.Clients) > 0 {
		ids := make([]string, 0, len(m.Clients))
		for id := range m.Clients {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		clientRows := func(name, typ, help string, get func(runtime.ClientMetrics) float64) {
			w.family(name, typ, help)
			for _, id := range ids {
				w.row(name, labels("client", id), get(m.Clients[runtime.ClientID(id)]))
			}
		}
		clientRows("llmq_client_statements_total", "counter", "Admitted statements per client.",
			func(c runtime.ClientMetrics) float64 { return float64(c.Statements) })
		clientRows("llmq_client_canceled_total", "counter", "Canceled statements per client.",
			func(c runtime.ClientMetrics) float64 { return float64(c.Canceled) })
		clientRows("llmq_client_quota_rejections_total", "counter", "Quota rejections per client.",
			func(c runtime.ClientMetrics) float64 { return float64(c.QuotaRejections) })
		clientRows("llmq_client_llm_calls_total", "counter", "Model rows charged per client.",
			func(c runtime.ClientMetrics) float64 { return float64(c.LLMCalls) })
		clientRows("llmq_client_prompt_tokens_total", "counter", "Prompt tokens charged per client.",
			func(c runtime.ClientMetrics) float64 { return float64(c.PromptTokens) })
		clientRows("llmq_client_jct_seconds_total", "counter", "Execution time summed per client.",
			func(c runtime.ClientMetrics) float64 { return c.JCTSeconds })
		clientRows("llmq_client_queue_wait_seconds_total", "counter", "Admission-queue wait summed per client.",
			func(c runtime.ClientMetrics) float64 { return c.QueueWaitSeconds })
	}

	// Admission-wait histograms, one labeled series set per service class.
	// The runtime's buckets are exclusive; Prometheus buckets are cumulative.
	if len(m.QueueWait) > 0 {
		classes := make([]string, 0, len(m.QueueWait))
		for c := range m.QueueWait {
			classes = append(classes, string(c))
		}
		sort.Strings(classes)
		w.family("llmq_queue_wait_seconds", "histogram", "Admission-queue wait by service class.")
		for _, c := range classes {
			h := m.QueueWait[runtime.Class(c)]
			cum := float64(h.Le1ms)
			w.row("llmq_queue_wait_seconds_bucket", labels("class", c, "le", "0.001"), cum)
			cum += float64(h.Le10ms)
			w.row("llmq_queue_wait_seconds_bucket", labels("class", c, "le", "0.01"), cum)
			cum += float64(h.Le100ms)
			w.row("llmq_queue_wait_seconds_bucket", labels("class", c, "le", "0.1"), cum)
			cum += float64(h.Le1s)
			w.row("llmq_queue_wait_seconds_bucket", labels("class", c, "le", "1"), cum)
			w.row("llmq_queue_wait_seconds_bucket", labels("class", c, "le", "+Inf"), float64(h.Count))
			w.row("llmq_queue_wait_seconds_sum", labels("class", c), float64(h.TotalMicros)/1e6)
			w.row("llmq_queue_wait_seconds_count", labels("class", c), float64(h.Count))
		}
	}

	// Per-StageKey rollups, labeled by the short stage id plus its
	// human-readable name.
	if len(m.Stages) > 0 {
		ids := make([]string, 0, len(m.Stages))
		for id := range m.Stages {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		stageRows := func(name, typ, help string, get func(r runtime.Metrics, id string) float64) {
			w.family(name, typ, help)
			for _, id := range ids {
				w.row(name, labels("stage", id, "name", m.Stages[id].Name), get(m, id))
			}
		}
		stageRows("llmq_stage_executions_total", "counter", "Stage executions per stage key.",
			func(m runtime.Metrics, id string) float64 { return float64(m.Stages[id].Count) })
		stageRows("llmq_stage_llm_calls_total", "counter", "Model rows per stage key.",
			func(m runtime.Metrics, id string) float64 { return float64(m.Stages[id].LLMCalls) })
		stageRows("llmq_stage_jct_seconds_total", "counter", "Virtual serving time per stage key.",
			func(m runtime.Metrics, id string) float64 { return m.Stages[id].JCTSeconds })
		stageRows("llmq_stage_mean_jct_seconds", "gauge", "Mean stage JCT per stage key.",
			func(m runtime.Metrics, id string) float64 { return m.Stages[id].MeanJCTSeconds })
		stageRows("llmq_stage_p99_jct_seconds", "gauge", "p99 stage JCT over the rollup reservoir.",
			func(m runtime.Metrics, id string) float64 { return m.Stages[id].P99JCTSeconds })
		stageRows("llmq_stage_selectivity", "gauge", "Observed selectivity (-1 when unobserved).",
			func(m runtime.Metrics, id string) float64 { return m.Stages[id].Selectivity })
		stageRows("llmq_stage_cache_hit_rate", "gauge", "Result-cache hit rate per stage key.",
			func(m runtime.Metrics, id string) float64 { return m.Stages[id].CacheHitRate })
	}

	return b.String()
}

// promWriter emits exposition-format lines.
type promWriter struct {
	b *strings.Builder
}

// family writes the one HELP + TYPE header a metric family gets.
func (w promWriter) family(name, typ, help string) {
	fmt.Fprintf(w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// row writes one sample line; lbls is the pre-rendered label set ("" for
// none).
func (w promWriter) row(name, lbls string, v float64) {
	if lbls != "" {
		fmt.Fprintf(w.b, "%s{%s} %s\n", name, lbls, strconv.FormatFloat(v, 'g', -1, 64))
		return
	}
	fmt.Fprintf(w.b, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
}

// labels renders key/value pairs as a label set, escaping values per the
// exposition format.
func labels(kv ...string) string {
	var sb strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, kv[i], escapeLabel(kv[i+1]))
	}
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline. (%q adds the surrounding quotes and escapes the
// rest, but would also escape non-ASCII; the format is UTF-8, so only the
// three mandated characters are escaped here.)
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
