package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/sqlfront"
	"repro/internal/table"
)

// slowHandler builds a service whose runtime treats every statement as slow,
// so GET /v1/traces has something to serve without opting in per statement.
func slowHandler(t *testing.T) http.Handler {
	t.Helper()
	tbl := table.New("ticket_id", "request")
	for i := 0; i < 8; i++ {
		tbl.MustAppendRow("T-"+string(rune('a'+i)), "please fix issue number "+string(rune('0'+i%3)))
	}
	db := sqlfront.NewDB()
	db.Register("tickets", tbl)
	rt := runtime.New(db, runtime.Config{Workers: 2,
		SlowQueryThreshold: time.Nanosecond, TraceRingSize: 4})
	t.Cleanup(rt.Close)
	return NewWithRuntime(rt)
}

// TestSQLTraceOption pins the options.trace round trip: the response carries
// a span tree rooted at the statement, and untraced requests carry none.
func TestSQLTraceOption(t *testing.T) {
	h, _ := sqlHandler(t)
	sql := `SELECT ticket_id, LLM('Is this urgent?', request) AS urgent FROM tickets WHERE region = 'emea'`

	rec := post(t, h, "/v1/sql", SQLRequest{SQL: sql, Options: &SQLOptions{Trace: true}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	res := decode[SQLResponse](t, rec)
	if res.Trace == nil || res.Trace.Spans == nil {
		t.Fatal("options.trace did not return a trace")
	}
	if res.Trace.Spans.Name != "statement" {
		t.Errorf("trace root = %q, want statement", res.Trace.Spans.Name)
	}
	if res.Trace.SQL != sql {
		t.Errorf("trace SQL = %q", res.Trace.SQL)
	}
	calls, _, _ := res.Trace.Spans.Totals()
	if calls != int64(res.LLMCalls) {
		t.Errorf("trace calls = %d, response charged %d", calls, res.LLMCalls)
	}

	rec = post(t, h, "/v1/sql", SQLRequest{SQL: sql})
	if res := decode[SQLResponse](t, rec); res.Trace != nil {
		t.Error("untraced request returned a trace")
	}
}

// TestTracesEndpoint pins GET /v1/traces: retained slow statements come back
// newest first, and the endpoint is read-only.
func TestTracesEndpoint(t *testing.T) {
	h := slowHandler(t)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if res := decode[TracesResponse](t, rec); len(res.Traces) != 0 {
		t.Errorf("fresh service already holds %d traces", len(res.Traces))
	}

	post(t, h, "/v1/sql", SQLRequest{SQL: `SELECT ticket_id, LLM('Summarize.', request) AS s FROM tickets`})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces", nil))
	res := decode[TracesResponse](t, rec)
	if len(res.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(res.Traces))
	}
	if !res.Traces[0].Slow || res.Traces[0].Spans == nil {
		t.Errorf("retained trace = %+v, want slow with spans", res.Traces[0])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/traces = %d, want 405", rec.Code)
	}

	// Without a runtime the endpoint reports unavailable, like /v1/sql.
	rec = httptest.NewRecorder()
	New().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("no-runtime /v1/traces = %d, want 503", rec.Code)
	}
}

// TestMetricsPrometheus pins the text exposition: well-formed families with
// no duplicate headers, cumulative histogram buckets, per-stage series after
// traffic, and content negotiation via both ?format= and Accept.
func TestMetricsPrometheus(t *testing.T) {
	h, _ := sqlHandler(t)
	post(t, h, "/v1/sql", SQLRequest{SQL: `SELECT ticket_id, LLM('Is this urgent?', request) AS urgent FROM tickets`})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics?format=prometheus", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	if body == "" {
		t.Fatal("empty exposition")
	}

	seenHelp := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "# HELP ") {
			continue
		}
		name := strings.Fields(line)[2]
		if seenHelp[name] {
			t.Errorf("duplicate HELP for %s", name)
		}
		seenHelp[name] = true
	}

	for _, want := range []string{
		"llmq_llm_calls_total",
		"llmq_statements_done_total 1",
		`llmq_client_llm_calls_total{client="anon"}`,
		`llmq_queue_wait_seconds_bucket{class="interactive",le="+Inf"}`,
		"llmq_queue_wait_seconds_sum",
		"llmq_stage_executions_total",
		"llmq_stage_selectivity",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}

	// Accept negotiation selects the same rendering without ?format=.
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain") {
		t.Errorf("Accept: text/plain served %q", rec.Header().Get("Content-Type"))
	}

	// JSON remains the default, and unknown formats are rejected.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		t.Errorf("default metrics content type = %q", rec.Header().Get("Content-Type"))
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics?format=xml", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("format=xml = %d, want 400", rec.Code)
	}
}
