package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/runtime"
	"repro/internal/sqlfront"
	"repro/internal/table"
)

func post(t *testing.T, h http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var out T
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode response %q: %v", rec.Body.String(), err)
	}
	return out
}

func sampleTable() TableJSON {
	return TableJSON{
		Columns: []string{"review", "product", "description"},
		Rows: [][]string{
			{"great value", "Widget", "a compact widget with a steel finish"},
			{"broke fast", "Gadget", "a rechargeable gadget for home use"},
			{"very sturdy", "Widget", "a compact widget with a steel finish"},
			{"meh quality", "Gadget", "a rechargeable gadget for home use"},
		},
		FDs: [][]string{{"product", "description"}},
	}
}

func TestHealth(t *testing.T) {
	h := New()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestReorderEndpoint(t *testing.T) {
	rec := post(t, New(), "/v1/reorder", ReorderRequest{Table: sampleTable()})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	res := decode[ReorderResponse](t, rec)
	if res.RowCount != 4 || res.ColumnCount != 3 {
		t.Errorf("shape = %d x %d", res.RowCount, res.ColumnCount)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("schedule has %d rows", len(res.Rows))
	}
	if res.PHC <= 0 {
		t.Errorf("PHC = %d", res.PHC)
	}
	// Every row's field list is a permutation of the columns.
	for _, row := range res.Rows {
		if len(row.Fields) != 3 {
			t.Fatalf("row fields = %v", row.Fields)
		}
	}
	// The shared (product, description) pair should lead the scheduled rows.
	if res.Rows[0].Fields[0] == "review" {
		t.Errorf("unique review field leads the prompt: %v", res.Rows[0].Fields)
	}
}

func TestReorderAlgorithms(t *testing.T) {
	for _, alg := range []string{"ggr", "ophr", "bestfixed"} {
		rec := post(t, New(), "/v1/reorder", ReorderRequest{Table: sampleTable(), Algorithm: alg})
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status %d: %s", alg, rec.Code, rec.Body.String())
		}
	}
	rec := post(t, New(), "/v1/reorder", ReorderRequest{Table: sampleTable(), Algorithm: "bogus"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bogus algorithm: status %d", rec.Code)
	}
}

func TestReorderValidation(t *testing.T) {
	cases := []TableJSON{
		{},                            // no columns
		{Columns: []string{"a", "a"}}, // duplicate
		{Columns: []string{""}},       // empty name
		{Columns: []string{"a"}, Rows: [][]string{{"1", "2"}}}, // ragged
	}
	for i, tj := range cases {
		rec := post(t, New(), "/v1/reorder", ReorderRequest{Table: tj})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("case %d: status %d", i, rec.Code)
		}
	}
}

func TestReorderMethodGuard(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/v1/reorder", nil)
	rec := httptest.NewRecorder()
	New().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET allowed: %d", rec.Code)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	for _, provider := range []string{"openai", "anthropic", "gemini"} {
		rec := post(t, New(), "/v1/estimate", EstimateRequest{
			Provider: provider, HitOriginal: 0.1, HitGGR: 0.8,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", provider, rec.Code, rec.Body.String())
		}
		res := decode[EstimateResponse](t, rec)
		if res.Savings <= 0 {
			t.Errorf("%s: savings = %f", provider, res.Savings)
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	rec := post(t, New(), "/v1/estimate", EstimateRequest{Provider: "nope", HitOriginal: 0.1, HitGGR: 0.8})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown provider: %d", rec.Code)
	}
	rec = post(t, New(), "/v1/estimate", EstimateRequest{Provider: "openai", HitOriginal: -1, HitGGR: 2})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("out-of-range rates: %d", rec.Code)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	h := New()
	run := func(policy string) SimulateResponse {
		rec := post(t, h, "/v1/simulate", SimulateRequest{
			Table: sampleTable(), Prompt: "Summarize the product", Policy: policy,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", policy, rec.Code, rec.Body.String())
		}
		return decode[SimulateResponse](t, rec)
	}
	ggr := run("cache-ggr")
	none := run("no-cache")
	if ggr.JCT <= 0 || none.JCT <= 0 {
		t.Fatal("no serving time")
	}
	if ggr.JCT > none.JCT {
		t.Errorf("GGR %.2fs slower than no-cache %.2fs", ggr.JCT, none.JCT)
	}
	if ggr.HitRate <= 0 {
		t.Error("GGR produced no hits")
	}
}

func TestSimulateValidation(t *testing.T) {
	h := New()
	rec := post(t, h, "/v1/simulate", SimulateRequest{Table: sampleTable()})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing prompt: %d", rec.Code)
	}
	rec = post(t, h, "/v1/simulate", SimulateRequest{
		Table:  TableJSON{Columns: []string{"a"}},
		Prompt: "p",
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty table: %d", rec.Code)
	}
	rec = post(t, h, "/v1/simulate", SimulateRequest{Table: sampleTable(), Prompt: "p", Policy: "bogus"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bogus policy: %d", rec.Code)
	}
}

func TestRejectsUnknownFields(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate",
		bytes.NewReader([]byte(`{"provider":"openai","hitOriginal":0.1,"hitGGR":0.5,"bogus":1}`)))
	rec := httptest.NewRecorder()
	New().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", rec.Code)
	}
}

// sqlHandler builds a service with a serving runtime over one ad-hoc table.
func sqlHandler(t *testing.T) (http.Handler, *runtime.Runtime) {
	t.Helper()
	tbl := table.New("ticket_id", "region", "request")
	for i := 0; i < 12; i++ {
		tbl.MustAppendRow(
			"T-"+string(rune('0'+i%10))+string(rune('a'+i)),
			[]string{"emea", "amer"}[i%2],
			"please fix issue number "+string(rune('0'+i%3)),
		)
	}
	db := sqlfront.NewDB()
	db.Register("tickets", tbl)
	rt := runtime.New(db, runtime.Config{Workers: 2})
	t.Cleanup(rt.Close)
	return NewWithRuntime(rt), rt
}

func TestSQLEndpoint(t *testing.T) {
	h, _ := sqlHandler(t)
	rec := post(t, h, "/v1/sql", SQLRequest{
		SQL: `SELECT ticket_id, LLM('Is this urgent?', request) AS urgent FROM tickets WHERE region = 'emea'`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	res := decode[SQLResponse](t, rec)
	if len(res.Columns) != 2 || res.Columns[1] != "urgent" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 6 {
		t.Errorf("rows = %d, want 6 (emea half)", len(res.Rows))
	}
	if res.LLMCalls == 0 || res.Stages != 1 {
		t.Errorf("llmCalls = %d, stages = %d", res.LLMCalls, res.Stages)
	}
	if res.Runtime.StatementsDone != 1 {
		t.Errorf("runtime statements = %d", res.Runtime.StatementsDone)
	}

	// A repeated dashboard statement is served from the result cache.
	rec = post(t, h, "/v1/sql", SQLRequest{
		SQL: `SELECT ticket_id, LLM('Is this urgent?', request) AS urgent FROM tickets WHERE region = 'emea'`,
	})
	res2 := decode[SQLResponse](t, rec)
	if res2.LLMCalls != 0 {
		t.Errorf("repeat made %d model calls, want 0", res2.LLMCalls)
	}
	if res2.Runtime.CacheHits == 0 || res2.Runtime.PlanCacheHits == 0 {
		t.Errorf("runtime metrics after repeat = %+v", res2.Runtime)
	}
}

func TestSQLEndpointNaiveToggle(t *testing.T) {
	h, _ := sqlHandler(t)
	stmt := `SELECT ticket_id, LLM('Summarize.', request) AS s FROM tickets
	         WHERE LLM('Summarize.', request) <> 'x' AND region = 'amer'`
	planned := decode[SQLResponse](t, post(t, h, "/v1/sql", SQLRequest{
		SQL: stmt, Options: &SQLOptions{Policy: "no-cache"},
	}))
	naive := decode[SQLResponse](t, post(t, h, "/v1/sql", SQLRequest{
		SQL: stmt, Options: &SQLOptions{Naive: true, Policy: "no-cache"},
	}))
	if naive.Stages <= planned.Stages {
		t.Errorf("naive stages = %d, planned = %d; naive should run the duplicated call twice", naive.Stages, planned.Stages)
	}
	if len(naive.Rows) != len(planned.Rows) {
		t.Errorf("naive rows = %d, planned rows = %d", len(naive.Rows), len(planned.Rows))
	}
	if len(naive.Deprecated) != 0 || len(planned.Deprecated) != 0 {
		t.Errorf("options envelope flagged as deprecated: %v %v", naive.Deprecated, planned.Deprecated)
	}
}

// TestSQLEndpointLegacyBody: a pre-envelope request body — top-level naive
// and policy, no options object — still executes identically, and the
// response carries deprecation warnings naming the replacement fields.
func TestSQLEndpointLegacyBody(t *testing.T) {
	h, _ := sqlHandler(t)
	stmt := `SELECT ticket_id, LLM('Summarize.', request) AS s FROM tickets
	         WHERE LLM('Summarize.', request) <> 'x' AND region = 'amer'`
	raw := `{"sql": ` + strconv.Quote(stmt) + `, "naive": true, "policy": "no-cache"}`
	req := httptest.NewRequest(http.MethodPost, "/v1/sql", bytes.NewReader([]byte(raw)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("legacy body rejected: %d: %s", rec.Code, rec.Body.String())
	}
	legacy := decode[SQLResponse](t, rec)
	if len(legacy.Deprecated) != 2 {
		t.Errorf("deprecated warnings = %v, want one each for naive and policy", legacy.Deprecated)
	}
	enveloped := decode[SQLResponse](t, post(t, h, "/v1/sql", SQLRequest{
		SQL: stmt, Options: &SQLOptions{Naive: true, Policy: "no-cache"},
	}))
	if len(legacy.Rows) != len(enveloped.Rows) || legacy.Stages != enveloped.Stages {
		t.Errorf("legacy body executed differently: %d rows/%d stages vs %d rows/%d stages",
			len(legacy.Rows), legacy.Stages, len(enveloped.Rows), enveloped.Stages)
	}
	// When both forms are present, the envelope wins.
	raw = `{"sql": ` + strconv.Quote(stmt) + `, "naive": true, "options": {"policy": "no-cache"}}`
	req = httptest.NewRequest(http.MethodPost, "/v1/sql", bytes.NewReader([]byte(raw)))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	both := decode[SQLResponse](t, rec)
	if both.Stages != enveloped.Stages-1 {
		t.Errorf("envelope should win over top-level naive: stages = %d, want planned %d", both.Stages, enveloped.Stages-1)
	}
	if len(both.Deprecated) != 1 {
		t.Errorf("deprecated warnings = %v, want one for naive", both.Deprecated)
	}
}

// TestSQLEndpointQoSFields: client, class, and deadlineMs flow through to
// the runtime's accounting and back in the response echo.
func TestSQLEndpointQoSFields(t *testing.T) {
	h, rt := sqlHandler(t)
	rec := post(t, h, "/v1/sql", SQLRequest{
		SQL:        `SELECT ticket_id, LLM('Is this urgent?', request) AS urgent FROM tickets`,
		Client:     "dashboard",
		Class:      "batch",
		DeadlineMs: 60_000,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	res := decode[SQLResponse](t, rec)
	if res.Client != "dashboard" || res.Class != "batch" {
		t.Errorf("identity echo = %q/%q", res.Client, res.Class)
	}
	m := rt.Metrics()
	cm, ok := m.Clients[runtime.ClientID("dashboard")]
	if !ok {
		t.Fatalf("no per-client metrics row: %+v", m.Clients)
	}
	if cm.Statements != 1 || cm.LLMCalls == 0 || cm.PromptTokens == 0 {
		t.Errorf("dashboard accounting = %+v", cm)
	}
	if m.QueueWait[runtime.ClassBatch].Count != 1 {
		t.Errorf("batch-class queue-wait histogram = %+v", m.QueueWait)
	}

	// Anonymous requests account under the default client.
	post(t, h, "/v1/sql", SQLRequest{SQL: `SELECT region FROM tickets`})
	if cm := rt.Metrics().Clients[runtime.DefaultClient]; cm.Statements != 1 {
		t.Errorf("anonymous accounting = %+v", cm)
	}

	if rec := post(t, h, "/v1/sql", SQLRequest{SQL: `SELECT region FROM tickets`, Class: "bogus"}); rec.Code != http.StatusBadRequest {
		t.Errorf("bogus class: %d, want 400", rec.Code)
	}
	if rec := post(t, h, "/v1/sql", SQLRequest{SQL: `SELECT region FROM tickets`, DeadlineMs: -1}); rec.Code != http.StatusBadRequest {
		t.Errorf("negative deadline: %d, want 400", rec.Code)
	}
}

// TestSQLEndpointQuota: an over-quota client gets the 429 envelope with a
// retry horizon in both the Retry-After header and the error body.
func TestSQLEndpointQuota(t *testing.T) {
	tbl := table.New("ticket_id", "request")
	for i := 0; i < 8; i++ {
		tbl.MustAppendRow("T-"+string(rune('a'+i)), "please fix issue "+string(rune('0'+i)))
	}
	db := sqlfront.NewDB()
	db.Register("tickets", tbl)
	rt := runtime.New(db, runtime.Config{
		Workers: 2,
		ClientQuotas: map[runtime.ClientID]runtime.Quota{
			"miser": {CallsPerSec: 0.001, CallBurst: 1},
		},
	})
	t.Cleanup(rt.Close)
	h := NewWithRuntime(rt)

	stmt := `SELECT ticket_id, LLM('Is this urgent?', request) AS urgent FROM tickets`
	if rec := post(t, h, "/v1/sql", SQLRequest{SQL: stmt, Client: "miser"}); rec.Code != http.StatusOK {
		t.Fatalf("first statement: %d: %s", rec.Code, rec.Body.String())
	}
	rec := post(t, h, "/v1/sql", SQLRequest{SQL: stmt, Client: "miser"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota statement: %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	envelope := decode[ErrorResponse](t, rec)
	if envelope.Error.Code != ErrCodeQuotaExceeded || envelope.Error.RetryAfterMs <= 0 {
		t.Errorf("quota envelope = %+v", envelope.Error)
	}
	// An unthrottled client is unaffected.
	if rec := post(t, h, "/v1/sql", SQLRequest{SQL: stmt, Client: "other"}); rec.Code != http.StatusOK {
		t.Errorf("unthrottled client: %d", rec.Code)
	}
	if m := rt.Metrics(); m.QuotaRejections != 1 || m.Clients["miser"].QuotaRejections != 1 {
		t.Errorf("quota rejection accounting = %d fleet / %d client, want 1/1",
			m.QuotaRejections, m.Clients["miser"].QuotaRejections)
	}
}

func TestSQLEndpointErrors(t *testing.T) {
	h, _ := sqlHandler(t)
	if rec := post(t, h, "/v1/sql", SQLRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty sql: %d", rec.Code)
	}
	if rec := post(t, h, "/v1/sql", SQLRequest{SQL: "SELECT nope FROM tickets"}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown column: %d", rec.Code)
	}
	if rec := post(t, New(), "/v1/sql", SQLRequest{SQL: "SELECT a FROM t"}); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("no runtime: %d", rec.Code)
	}
}

// TestSQLEndpointHonorsRequestContext: a request whose context is already
// dead must not execute the statement and must report a cancellation
// status, not a generic SQL error.
func TestSQLEndpointHonorsRequestContext(t *testing.T) {
	h, rt := sqlHandler(t)
	b, err := json.Marshal(SQLRequest{
		SQL: `SELECT ticket_id, LLM('Is this urgent?', request) AS urgent FROM tickets`,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/sql", bytes.NewReader(b)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Errorf("status = %d, want 499 (client closed request)", rec.Code)
	}
	if m := rt.Metrics(); m.StatementsCanceled != 1 {
		t.Errorf("statements canceled = %d, want 1", m.StatementsCanceled)
	}
}

// TestMetricsEndpoint: the fleet metrics are readable on their own GET
// endpoint, not only piggybacked on /v1/sql responses.
func TestMetricsEndpoint(t *testing.T) {
	h, _ := sqlHandler(t)
	post(t, h, "/v1/sql", SQLRequest{
		SQL: `SELECT ticket_id, LLM('Is this urgent?', request) AS urgent FROM tickets`,
	})

	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	m := decode[runtime.Metrics](t, rec)
	if m.StatementsDone != 1 || m.StatementsSubmitted != 1 {
		t.Errorf("metrics = %+v, want one statement accounted", m)
	}
	if m.LLMCalls == 0 || m.PromptTokens == 0 {
		t.Errorf("no serving accounting in metrics: %+v", m)
	}
	// The PR 5 planning-amortization counters ride on the same endpoint: one
	// statement = one batch window = one GGR solve through the reorder
	// cache, and every prompt text is a first-time tokenization.
	if m.ReorderSolves != 1 || m.ReorderCacheMisses != 1 {
		t.Errorf("reorder accounting not exposed: solves=%d misses=%d, want 1/1",
			m.ReorderSolves, m.ReorderCacheMisses)
	}
	if m.PromptCacheMisses == 0 {
		t.Errorf("prompt-cache accounting not exposed: %+v", m)
	}

	// Method and availability guards.
	if rec := post(t, h, "/v1/metrics", struct{}{}); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/metrics: %d, want 405", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec = httptest.NewRecorder()
	New().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("GET /v1/metrics without runtime: %d, want 503", rec.Code)
	}
}

// TestErrorEnvelope: every /v1/* error path answers with the structured
// envelope — a non-empty stable code and a human message — never a bare
// string.
func TestErrorEnvelope(t *testing.T) {
	h, _ := sqlHandler(t)
	cases := []struct {
		name   string
		rec    *httptest.ResponseRecorder
		status int
		code   string
	}{
		{"sql missing", post(t, h, "/v1/sql", SQLRequest{}), http.StatusBadRequest, ErrCodeInvalidRequest},
		{"sql bad class", post(t, h, "/v1/sql", SQLRequest{SQL: "SELECT region FROM tickets", Class: "nope"}), http.StatusBadRequest, ErrCodeInvalidRequest},
		{"sql exec failure", post(t, h, "/v1/sql", SQLRequest{SQL: "SELECT nope FROM tickets"}), http.StatusUnprocessableEntity, ErrCodeExecutionFailed},
		{"sql no runtime", post(t, New(), "/v1/sql", SQLRequest{SQL: "SELECT a FROM t"}), http.StatusServiceUnavailable, ErrCodeUnavailable},
		{"reorder bad table", post(t, h, "/v1/reorder", ReorderRequest{}), http.StatusBadRequest, ErrCodeInvalidRequest},
		{"reorder bad algorithm", post(t, h, "/v1/reorder", ReorderRequest{Table: sampleTable(), Algorithm: "bogus"}), http.StatusBadRequest, ErrCodeInvalidRequest},
		{"estimate bad provider", post(t, h, "/v1/estimate", EstimateRequest{Provider: "nope"}), http.StatusBadRequest, ErrCodeInvalidRequest},
		{"simulate no prompt", post(t, h, "/v1/simulate", SimulateRequest{Table: sampleTable()}), http.StatusBadRequest, ErrCodeInvalidRequest},
	}
	get := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	cases = append(cases,
		struct {
			name   string
			rec    *httptest.ResponseRecorder
			status int
			code   string
		}{"reorder wrong method", get("/v1/reorder"), http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed},
		struct {
			name   string
			rec    *httptest.ResponseRecorder
			status int
			code   string
		}{"metrics wrong method", post(t, h, "/v1/metrics", struct{}{}), http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed},
	)
	for _, tc := range cases {
		if tc.rec.Code != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, tc.rec.Code, tc.status)
		}
		envelope := decode[ErrorResponse](t, tc.rec)
		if envelope.Error.Code != tc.code {
			t.Errorf("%s: code = %q, want %q (body %s)", tc.name, envelope.Error.Code, tc.code, tc.rec.Body.String())
		}
		if envelope.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}
