package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
)

// Worker is a cluster worker's serving state: the local backend that
// POST /v1/batch executes against, the drain flag the graceful-shutdown
// path and /healthz share, and per-client batch accounting so remote
// batches stay attributed to the tenant that caused them (the identity
// rides the wire envelope — see backend.WireBatch).
type Worker struct {
	be  backend.Backend
	log *slog.Logger

	draining atomic.Bool
	batches  atomic.Int64
	errors   atomic.Int64
	rows     atomic.Int64

	mu      sync.Mutex
	clients map[string]*workerClient // guarded by mu
}

// workerClient is one tenant's batch counters on this worker.
type workerClient struct {
	batches int64
	rows    int64
}

// NewWorker builds the worker state over the local backend be. log, when
// non-nil, gets one structured record per /v1/batch request.
func NewWorker(be backend.Backend, log *slog.Logger) *Worker {
	return &Worker{be: be, log: log, clients: make(map[string]*workerClient)}
}

// SetDraining flips the drain flag: a draining worker answers 503 on
// /healthz (so routers mark it down and re-ring its stages) and refuses new
// /v1/batch work while in-flight batches finish under the server's graceful
// shutdown.
func (wk *Worker) SetDraining(v bool) { wk.draining.Store(v) }

// Draining reports the drain flag.
func (wk *Worker) Draining() bool { return wk.draining.Load() }

// record accounts one served batch to its originating tenant.
func (wk *Worker) record(client string, rows int) {
	wk.batches.Add(1)
	wk.rows.Add(int64(rows))
	if client == "" {
		client = "anon"
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	c := wk.clients[client]
	if c == nil {
		c = &workerClient{}
		wk.clients[client] = c
	}
	c.batches++
	c.rows += int64(rows)
}

// WorkerStats is the worker's batch-serving accounting, the /v1/metrics
// body in worker mode.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type WorkerStats struct {
	// Batches counts batches served; Errors the batches that failed; Rows
	// the requests across served batches.
	Batches int64 `json:"batches"`
	Errors  int64 `json:"errors"`
	Rows    int64 `json:"rows"`
	// Clients maps originating tenant to its share.
	Clients map[string]WorkerClientStats `json:"clients,omitempty"`
	// Draining reports the drain flag.
	Draining bool `json:"draining"`
}

// WorkerClientStats is one tenant's share of a worker's batches.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type WorkerClientStats struct {
	Batches int64 `json:"batches"`
	Rows    int64 `json:"rows"`
}

// Stats snapshots the worker counters.
func (wk *Worker) Stats() WorkerStats {
	st := WorkerStats{
		Batches:  wk.batches.Load(),
		Errors:   wk.errors.Load(),
		Rows:     wk.rows.Load(),
		Draining: wk.Draining(),
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if len(wk.clients) > 0 {
		st.Clients = make(map[string]WorkerClientStats, len(wk.clients))
		for id, c := range wk.clients {
			st.Clients[id] = WorkerClientStats{Batches: c.batches, Rows: c.rows}
		}
	}
	return st
}

// handleBatch serves POST /v1/batch: one backend.WireBatch executed on the
// worker's local backend, answering a backend.WireResult — the wire half of
// backend.Remote. Errors ride the uniform /v1 envelope, so the router's
// failover logic dispatches on the same codes every client does.
func handleBatch(cfg Config, w http.ResponseWriter, r *http.Request) {
	wk := cfg.Worker
	if wk == nil {
		writeError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
			fmt.Errorf("not a cluster worker; start the server with -worker"))
		return
	}
	if wk.Draining() {
		// Retry-After steers a well-behaved client (backend.Remote honors it
		// over its own backoff) past the drain window instead of hammering.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
			fmt.Errorf("worker is draining"))
		return
	}
	var wb backend.WireBatch
	if !readJSON(w, r, &wb) {
		return
	}
	spec, err := wb.Spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err)
		return
	}
	// The request context already dies with the router's connection; the
	// deadline header additionally bounds the run when the caller's budget
	// is tighter than the transport's view of it.
	ctx := r.Context()
	if h := r.Header.Get(backend.DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, ErrCodeInvalidRequest,
				fmt.Errorf("invalid %s header %q", backend.DeadlineHeader, h))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	res, err := wk.be.RunBatch(ctx, spec)
	code := "ok"
	switch {
	case err == nil:
		wk.record(wb.Client, len(spec.Requests))
		writeJSON(w, http.StatusOK, backend.WireResult{Metrics: res.Metrics, ModelCalls: res.ModelCalls})
	case errors.Is(err, context.Canceled):
		wk.errors.Add(1)
		code = ErrCodeCanceled
		writeError(w, 499, ErrCodeCanceled, err) // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		wk.errors.Add(1)
		code = ErrCodeDeadlineExceeded
		writeError(w, http.StatusGatewayTimeout, ErrCodeDeadlineExceeded, err)
	default:
		wk.errors.Add(1)
		code = ErrCodeExecutionFailed
		writeError(w, http.StatusUnprocessableEntity, ErrCodeExecutionFailed, err)
	}
	if wk.log != nil {
		client := wb.Client
		if client == "" {
			client = "anon"
		}
		wk.log.Info("batch",
			"client", client,
			"class", wb.Class,
			"stageKey", shortStageKey(wb.StageKey),
			"rows", len(spec.Requests),
			"code", code,
			"wallMs", float64(time.Since(start).Microseconds())/1e3)
	}
}

// shortStageKey truncates the stage fingerprint for log lines; full keys
// run to hundreds of bytes.
func shortStageKey(k string) string {
	if len(k) > 32 {
		return k[:32] + "…"
	}
	return k
}

// renderWorkerPrometheus serializes the worker's batch accounting in the
// Prometheus text exposition format — the worker-mode half of /v1/metrics.
func renderWorkerPrometheus(st WorkerStats) string {
	var b strings.Builder
	w := promWriter{b: &b}
	w.family("llmq_worker_batches_total", "counter", "Remote batches served by this worker.")
	w.row("llmq_worker_batches_total", "", float64(st.Batches))
	w.family("llmq_worker_errors_total", "counter", "Remote batches that failed on this worker.")
	w.row("llmq_worker_errors_total", "", float64(st.Errors))
	w.family("llmq_worker_rows_total", "counter", "Requests served across remote batches.")
	w.row("llmq_worker_rows_total", "", float64(st.Rows))
	w.family("llmq_worker_draining", "gauge", "1 while the worker is draining.")
	w.row("llmq_worker_draining", "", boolGauge(st.Draining))
	if len(st.Clients) > 0 {
		ids := make([]string, 0, len(st.Clients))
		for id := range st.Clients {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		w.family("llmq_worker_client_batches_total", "counter", "Remote batches per originating client.")
		for _, id := range ids {
			w.row("llmq_worker_client_batches_total", labels("client", id), float64(st.Clients[id].Batches))
		}
		w.family("llmq_worker_client_rows_total", "counter", "Requests per originating client.")
		for _, id := range ids {
			w.row("llmq_worker_client_rows_total", labels("client", id), float64(st.Clients[id].Rows))
		}
	}
	return b.String()
}

func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// breakerGauge encodes a circuit-breaker state for the Prometheus gauge:
// 0 closed, 1 half-open, 2 open.
func breakerGauge(s cluster.BreakerState) float64 {
	switch s {
	case cluster.BreakerOpen:
		return 2
	case cluster.BreakerHalfOpen:
		return 1
	default:
		return 0
	}
}
