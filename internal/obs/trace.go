package obs

import (
	"sync"
	"time"
)

// Trace is one completed statement's identity plus rendered span tree: the
// unit stored in the trace ring, returned by Handle.Trace, and served by
// GET /v1/traces and options.trace on /v1/sql.
type Trace struct {
	SQL         string    `json:"sql"`
	Client      string    `json:"client"`
	Class       string    `json:"class"`
	Start       time.Time `json:"start"`
	WallSeconds float64   `json:"wallSeconds"`
	Slow        bool      `json:"slow,omitempty"`
	Error       string    `json:"error,omitempty"`
	Spans       *SpanTree `json:"spans"`
}

// Ring is the bounded FIFO buffer behind GET /v1/traces: once full, every
// Add evicts the oldest retained trace.
type Ring struct {
	mu    sync.Mutex
	buf   []*Trace // guarded by mu; circular, next points at the eviction slot
	next  int      // guarded by mu
	count int      // guarded by mu
}

// NewRing returns a ring retaining up to capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]*Trace, capacity)}
}

// Add retains t, evicting the oldest trace when the ring is full. Nil
// receivers and nil traces are ignored.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (r *Ring) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, r.count)
	for i := 1; i <= r.count; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len reports how many traces are retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}
