package obs

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"
)

// TestNilSpanIsFree pins the zero-cost-when-off contract: every Span method
// no-ops on a nil receiver and With refuses to allocate a context for a nil
// span, so an untraced statement never pays for the recorder.
func TestNilSpanIsFree(t *testing.T) {
	var s *Span
	if c := s.Child("x"); c != nil {
		t.Errorf("nil.Child = %v, want nil", c)
	}
	if c := s.ChildAt("x", time.Now(), time.Second); c != nil {
		t.Errorf("nil.ChildAt = %v, want nil", c)
	}
	s.Adopt(NewSpan("orphan")) // must not panic
	s.Adopt(nil)
	s.Set("k", "v")
	s.Charge(1, 2, 3)
	s.End()
	if tr := s.Tree(time.Now()); tr != nil {
		t.Errorf("nil.Tree = %v, want nil", tr)
	}

	ctx := context.Background()
	if got := With(ctx, nil); got != ctx {
		t.Error("With(ctx, nil) allocated a new context")
	}
	if sp := FromContext(ctx); sp != nil {
		t.Errorf("FromContext(plain ctx) = %v, want nil", sp)
	}
	live := NewSpan("live")
	if sp := FromContext(With(ctx, live)); sp != live {
		t.Error("FromContext did not return the span With stored")
	}
}

// TestSpanTreeTotalsConserve builds a tree charging at several depths —
// including a shared, adopted span, the coalesced-batch shape — and requires
// Totals to sum every charge exactly once.
func TestSpanTreeTotalsConserve(t *testing.T) {
	base := time.Now()
	root := NewSpanAt("statement", base)
	stage := root.Child("stage:s0")
	stage.Charge(3, 120, 1.5)

	batch := NewSpan("batch") // shared span, adopted not parented
	stage.Adopt(batch)
	backend := batch.Child("backend")
	backend.Charge(2, 80, 0.5)
	backend.End()
	batch.End()
	stage.End()

	prep := root.ChildAt("prepare", base, 5*time.Millisecond)
	prep.Set("planCache", "miss")
	root.End()

	tree := root.Tree(base)
	if tree == nil {
		t.Fatal("Tree returned nil for a live span")
	}
	calls, tokens, jct := tree.Totals()
	if calls != 5 || tokens != 200 || math.Abs(jct-2.0) > 1e-12 {
		t.Errorf("Totals = (%d, %d, %g), want (5, 200, 2)", calls, tokens, jct)
	}

	if got := tree.Find("batch"); got == nil {
		t.Error("Find could not locate the adopted batch span")
	}
	p := tree.Find("prepare")
	if p == nil {
		t.Fatal("Find could not locate the retroactive prepare span")
	}
	if math.Abs(p.DurationMs-5) > 1e-9 {
		t.Errorf("prepare DurationMs = %g, want 5", p.DurationMs)
	}
	if p.Attrs["planCache"] != "miss" {
		t.Errorf("prepare attrs = %v", p.Attrs)
	}

	var order []string
	tree.Walk(func(n *SpanTree) { order = append(order, n.Name) })
	if order[0] != "statement" {
		t.Errorf("Walk visited %v, want the root first", order)
	}
}

// TestRingEvictsFIFO pins the bounded trace buffer: at capacity every Add
// drops the oldest trace, and Snapshot lists newest first.
func TestRingEvictsFIFO(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(&Trace{SQL: fmt.Sprintf("q%d", i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Snapshot()
	want := []string{"q5", "q4", "q3"}
	for i, tr := range got {
		if tr.SQL != want[i] {
			t.Errorf("Snapshot[%d] = %s, want %s", i, tr.SQL, want[i])
		}
	}

	if NewRing(0).buf == nil || len(NewRing(0).buf) != 1 {
		t.Error("NewRing(0) did not clamp capacity to 1")
	}
	var nilRing *Ring
	nilRing.Add(&Trace{})
	if nilRing.Snapshot() != nil || nilRing.Len() != 0 {
		t.Error("nil ring is not inert")
	}
	r.Add(nil) // ignored, not stored
	if r.Len() != 3 {
		t.Error("nil trace was retained")
	}
}

// TestRollupsAggregate pins the per-StageKey statistics: selectivity is
// learned only from filter-consumed executions, the cache hit rate counts
// inflight joins as lookups, and the store is bounded.
func TestRollupsAggregate(t *testing.T) {
	r := NewRollups(2)
	r.Observe(StageObservation{StageKey: "A", Name: "s0", Dataset: "tickets",
		Rows: 10, RowsOut: 4, ModelCalls: 10, PromptTokens: 100, MatchedTokens: 40,
		JCTSeconds: 2, SolverSeconds: 0.1})
	// Projection execution: outputs never fed a prune, must not skew selectivity.
	r.Observe(StageObservation{StageKey: "A", Name: "s0", Dataset: "tickets",
		Rows: 10, RowsOut: -1, ModelCalls: 10, PromptTokens: 100, MatchedTokens: 60,
		JCTSeconds: 4, SolverSeconds: 0.1})
	r.ObserveCache("A", 6, 2, 2, 1)

	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d keys, want 1", len(snap))
	}
	var a StageRollup
	for _, v := range snap {
		a = v
	}
	if a.Name != "s0" || a.Count != 2 || a.Rows != 20 || a.LLMCalls != 20 {
		t.Errorf("rollup = %+v", a)
	}
	if math.Abs(a.Selectivity-0.4) > 1e-12 {
		t.Errorf("selectivity = %g, want 0.4 (only the filter-consumed execution counts)", a.Selectivity)
	}
	if math.Abs(a.MeanJCTSeconds-3) > 1e-12 {
		t.Errorf("mean JCT = %g, want 3", a.MeanJCTSeconds)
	}
	if math.Abs(a.CacheHitRate-0.6) > 1e-12 {
		t.Errorf("cache hit rate = %g, want 6/(6+2+2)", a.CacheHitRate)
	}
	if a.RowsDeduped != 1 {
		t.Errorf("rowsDeduped = %d, want 1", a.RowsDeduped)
	}

	// Bounded: a second key fits, a third is dropped.
	r.Observe(StageObservation{StageKey: "B", Name: "s1", Dataset: "", Rows: 1, RowsOut: -1,
		ModelCalls: 1, PromptTokens: 1, MatchedTokens: 0, JCTSeconds: 1, SolverSeconds: 0})
	r.Observe(StageObservation{StageKey: "C", Name: "s2", Dataset: "", Rows: 1, RowsOut: -1,
		ModelCalls: 1, PromptTokens: 1, MatchedTokens: 0, JCTSeconds: 1, SolverSeconds: 0})
	if got := len(r.Snapshot()); got != 2 {
		t.Errorf("snapshot has %d keys after overflow, want 2 (bounded)", got)
	}

	// A stage never observed for execution still gets a rollup from cache
	// outcomes alone: selectivity stays at the -1 sentinel.
	r2 := NewRollups(4)
	r2.ObserveCache("X", 3, 0, 0, 0)
	for _, v := range r2.Snapshot() {
		if v.Selectivity != -1 {
			t.Errorf("unobserved selectivity = %g, want -1", v.Selectivity)
		}
		if v.CacheHitRate != 1 {
			t.Errorf("cache hit rate = %g, want 1", v.CacheHitRate)
		}
	}
}

// TestPercentile pins nearest-rank semantics on the JCT reservoir.
func TestPercentile(t *testing.T) {
	var s []float64
	for i := 1; i <= 100; i++ {
		s = append(s, float64(i))
	}
	if got := percentile(s, 0.99); got != 99 {
		t.Errorf("p99 of 1..100 = %g, want 99", got)
	}
	if got := percentile(s, 1); got != 100 {
		t.Errorf("p100 = %g, want 100", got)
	}
	if got := percentile([]float64{7}, 0.5); got != 7 {
		t.Errorf("p50 of one sample = %g, want 7", got)
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("p99 of empty = %g, want 0", got)
	}
}
