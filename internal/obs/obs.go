// Package obs is the serving runtime's observability kit: a
// context-propagated, allocation-light span recorder (EXPLAIN ANALYZE for
// LLM statements), a bounded ring of recent and slow statement traces, and
// per-StageKey rollups of observed latency/selectivity — the seed of the
// learned-optimization feedback store (ROADMAP item 5).
//
// Every Span method is nil-safe: when tracing is off no recorder exists,
// contexts carry no span, and every call — Child, Set, Charge, End — is a
// no-op on the nil receiver without allocating. That nil fast path is the
// zero-cost-when-off contract BenchmarkTracingOff pins.
//
// Charged accounting is deliberately separate from descriptive attributes:
// a span's Charge counters are summed by SpanTree.Totals and must conserve
// — the sum over one statement's tree equals the statement's charged model
// calls, prompt tokens, and virtual JCT. Shared spans (a coalesced batch
// adopted into several members' trees) therefore carry charges of zero and
// describe the whole run in attributes only; each member charges its own
// proportional share on its own stage span.
package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one timed node of a statement's trace tree. The name and start
// time are fixed at creation; everything else is mutated behind the mutex
// so concurrent annotators (sharded backends fan out goroutines) are safe.
type Span struct {
	name  string
	start time.Time

	mu           sync.Mutex
	end          time.Time // guarded by mu; zero while the span is open
	attrs        []attr    // guarded by mu
	children     []*Span   // guarded by mu
	calls        int64     // guarded by mu; charged model calls (conserved)
	promptTokens int64     // guarded by mu; charged prompt tokens (conserved)
	jctSeconds   float64   // guarded by mu; charged virtual serving seconds (conserved)
}

// attr is one ordered key/value annotation; duplicate keys keep the last
// value at render time.
type attr struct {
	key string
	val any
}

// NewSpan starts a span now.
func NewSpan(name string) *Span {
	return NewSpanAt(name, time.Now())
}

// NewSpanAt starts a span with an explicit start time (for events observed
// after the fact, like queue admission).
func NewSpanAt(name string, start time.Time) *Span {
	return &Span{name: name, start: start}
}

// Child starts a new open child span. Child of a nil span is nil, so an
// untraced call path costs nothing.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(name)
	s.adopt(c)
	return c
}

// ChildAt records an already-completed child with explicit timing — used
// for phases measured before the recorder existed (queue wait, prepare).
func (s *Span) ChildAt(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := NewSpanAt(name, start)
	c.mu.Lock() // uncontended: c is not shared yet
	c.end = start.Add(d)
	c.mu.Unlock()
	s.adopt(c)
	return c
}

// Adopt attaches an existing span (possibly shared with other trees, like a
// coalesced batch's span) as a child.
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.adopt(c)
}

func (s *Span) adopt(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// Set records a descriptive attribute. Values must be JSON-marshalable
// (strings, numbers, bools).
func (s *Span) Set(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, val: val})
	s.mu.Unlock()
}

// Charge adds to the span's conserved accounting: model calls, prompt
// tokens, and virtual serving seconds attributed to this span. The sum of
// charges over a statement's tree must equal the statement's charged
// totals — callers charge exactly where the runtime's own accounting does.
func (s *Span) Charge(calls, promptTokens int64, jctSeconds float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.calls += calls
	s.promptTokens += promptTokens
	s.jctSeconds += jctSeconds
	s.mu.Unlock()
}

// End closes the span now; later Ends are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Tree renders the span and its descendants with offsets relative to base
// (the trace root's start), so a shared span renders correctly inside any
// adopting tree. Open spans render with a zero duration.
func (s *Span) Tree(base time.Time) *SpanTree {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	t := &SpanTree{
		Name:         s.name,
		StartMs:      durMs(s.start.Sub(base)),
		DurationMs:   0,
		Calls:        s.calls,
		PromptTokens: s.promptTokens,
		JCTSeconds:   s.jctSeconds,
	}
	if !s.end.IsZero() {
		t.DurationMs = durMs(s.end.Sub(s.start))
	}
	if len(s.attrs) > 0 {
		t.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			t.Attrs[a.key] = a.val
		}
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		t.Children = append(t.Children, c.Tree(base))
	}
	return t
}

func durMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// SpanTree is the rendered wire form of a span: what /v1/sql returns under
// options.trace and what /v1/traces serves.
//
//llmqlint:accounting
type SpanTree struct {
	Name         string         `json:"name"`
	StartMs      float64        `json:"startMs"`
	DurationMs   float64        `json:"durationMs"`
	Calls        int64          `json:"calls,omitempty"`
	PromptTokens int64          `json:"promptTokens,omitempty"`
	JCTSeconds   float64        `json:"jctSeconds,omitempty"`
	Attrs        map[string]any `json:"attrs,omitempty"`
	Children     []*SpanTree    `json:"children,omitempty"`
}

// Totals sums the charged accounting over the tree — the conservation
// check: for a completed statement these equal its charged model calls,
// prompt tokens, and virtual JCT.
func (t *SpanTree) Totals() (calls, promptTokens int64, jctSeconds float64) {
	if t == nil {
		return 0, 0, 0
	}
	calls, promptTokens, jctSeconds = t.Calls, t.PromptTokens, t.JCTSeconds
	for _, c := range t.Children {
		cc, cp, cj := c.Totals()
		calls += cc
		promptTokens += cp
		jctSeconds += cj
	}
	return calls, promptTokens, jctSeconds
}

// Find returns the first span (depth-first) with the exact name, or nil.
func (t *SpanTree) Find(name string) *SpanTree {
	var found *SpanTree
	t.Walk(func(n *SpanTree) {
		if found == nil && n.Name == name {
			found = n
		}
	})
	return found
}

// Walk visits the tree depth-first, parents before children.
func (t *SpanTree) Walk(fn func(*SpanTree)) {
	if t == nil {
		return
	}
	fn(t)
	for _, c := range t.Children {
		c.Walk(fn)
	}
}

// ctxKey carries the active span through a statement's context.
type ctxKey struct{}

// With returns ctx carrying sp as the active span. With a nil span it
// returns ctx unchanged, so untraced statements never pay a context
// allocation.
func With(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the active span, or nil when tracing is off — every
// Span method no-ops on nil, so callers never need to check.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
