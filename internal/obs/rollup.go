package obs

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// rollupSampleCap bounds the per-key JCT reservoir the p99 is computed
// over: a circular window of the most recent executions.
const rollupSampleCap = 256

// StageObservation is one executed LLM stage's observed statistics, as
// reported by the SQL executor after the statement's relational pruning has
// run: the ground truth the static cost model guessed at. RowsOut is -1
// when no WHERE conjunct consumed the stage's outputs (projections,
// aggregates), so selectivity is only learned from real filter prunes.
//
//llmqlint:accounting
type StageObservation struct {
	StageKey      string
	Name          string
	Dataset       string
	Rows          int
	RowsOut       int
	ModelCalls    int
	PromptTokens  int64
	MatchedTokens int64
	JCTSeconds    float64
	SolverSeconds float64
}

// Rollups accumulates per-StageKey statistics across statements: observed
// selectivity, latency (mean and p99 over a bounded reservoir), token and
// cache accounting. It is bounded: past limit distinct keys, new keys are
// dropped (the limit is far above any realistic stage cardinality and the
// bound keeps /v1/metrics small).
type Rollups struct {
	mu    sync.Mutex
	limit int
	m     map[string]*rollup // guarded by mu; keyed by full StageKey
}

// rollup fields are owned by the enclosing Rollups' mutex — the struct has
// no lock of its own; all access goes through Rollups methods.
type rollup struct {
	name, dataset string

	count           int64
	rows            int64
	calls           int64
	promptTokens    int64
	matchedTokens   int64
	jctSeconds      float64
	solverSeconds   float64
	filteredRows    int64 // rows in, over executions whose outputs fed a prune
	filteredRowsOut int64 // rows surviving those prunes
	cacheHits       int64
	cacheMisses     int64
	inflightDeduped int64
	rowsDeduped     int64

	samples    []float64 // circular JCT reservoir for the p99
	sampleNext int
}

// NewRollups returns a store bounded to limit distinct stage keys
// (minimum 1).
func NewRollups(limit int) *Rollups {
	if limit < 1 {
		limit = 1
	}
	return &Rollups{limit: limit, m: make(map[string]*rollup)}
}

// Observe folds one stage execution into its key's rollup.
func (r *Rollups) Observe(ob StageObservation) {
	if r == nil || ob.StageKey == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ru := r.getLocked(ob.StageKey)
	if ru == nil {
		return
	}
	if ru.name == "" {
		ru.name, ru.dataset = ob.Name, ob.Dataset
	}
	ru.count++
	ru.rows += int64(ob.Rows)
	ru.calls += int64(ob.ModelCalls)
	ru.promptTokens += ob.PromptTokens
	ru.matchedTokens += ob.MatchedTokens
	ru.jctSeconds += ob.JCTSeconds
	ru.solverSeconds += ob.SolverSeconds
	if ob.RowsOut >= 0 {
		ru.filteredRows += int64(ob.Rows)
		ru.filteredRowsOut += int64(ob.RowsOut)
	}
	if len(ru.samples) < rollupSampleCap {
		ru.samples = append(ru.samples, ob.JCTSeconds)
	} else {
		ru.samples[ru.sampleNext] = ob.JCTSeconds
		ru.sampleNext = (ru.sampleNext + 1) % rollupSampleCap
	}
}

// ObserveCache folds one stage execution's result-cache outcomes into its
// key's rollup (the runtime's cache layer reports these; the executor
// cannot see them).
func (r *Rollups) ObserveCache(stageKey string, hits, misses, inflightDeduped, rowsDeduped int64) {
	if r == nil || stageKey == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ru := r.getLocked(stageKey)
	if ru == nil {
		return
	}
	ru.cacheHits += hits
	ru.cacheMisses += misses
	ru.inflightDeduped += inflightDeduped
	ru.rowsDeduped += rowsDeduped
}

//llmqlint:holds mu
func (r *Rollups) getLocked(key string) *rollup {
	ru := r.m[key]
	if ru == nil {
		if len(r.m) >= r.limit {
			return nil // bounded: new keys past the limit are dropped
		}
		ru = &rollup{}
		r.m[key] = ru
	}
	return ru
}

// StageRollup is the exported per-StageKey aggregate merged into
// /v1/metrics — the feedback-store seed for learned optimization.
// Selectivity is observed rows-out / rows-in over filter-consumed
// executions (-1 when never observed); CacheHitRate is hits over cache
// lookups (hits + misses + inflight joins).
//
//llmqlint:accounting
type StageRollup struct {
	Name            string  `json:"name"`
	Dataset         string  `json:"dataset,omitempty"`
	Count           int64   `json:"count"`
	Rows            int64   `json:"rows"`
	LLMCalls        int64   `json:"llmCalls"`
	PromptTokens    int64   `json:"promptTokens"`
	MatchedTokens   int64   `json:"matchedTokens"`
	JCTSeconds      float64 `json:"jctSeconds"`
	SolverSeconds   float64 `json:"solverSeconds"`
	MeanJCTSeconds  float64 `json:"meanJctSeconds"`
	P99JCTSeconds   float64 `json:"p99JctSeconds"`
	Selectivity     float64 `json:"selectivity"`
	CacheHitRate    float64 `json:"cacheHitRate"`
	CacheHits       int64   `json:"cacheHits"`
	CacheMisses     int64   `json:"cacheMisses"`
	InflightDeduped int64   `json:"inflightDeduped"`
	RowsDeduped     int64   `json:"rowsDeduped"`
}

// Snapshot renders the rollups keyed by a short stable id (FNV-64a of the
// full StageKey, hex) — compact for metrics consumers while Name/Dataset
// keep rows human-readable.
func (r *Rollups) Snapshot() map[string]StageRollup {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.m) == 0 {
		return nil
	}
	out := make(map[string]StageRollup, len(r.m))
	for key, ru := range r.m {
		sr := StageRollup{
			Name:            ru.name,
			Dataset:         ru.dataset,
			Count:           ru.count,
			Rows:            ru.rows,
			LLMCalls:        ru.calls,
			PromptTokens:    ru.promptTokens,
			MatchedTokens:   ru.matchedTokens,
			JCTSeconds:      ru.jctSeconds,
			SolverSeconds:   ru.solverSeconds,
			MeanJCTSeconds:  0,
			P99JCTSeconds:   percentile(ru.samples, 0.99),
			Selectivity:     -1,
			CacheHitRate:    0,
			CacheHits:       ru.cacheHits,
			CacheMisses:     ru.cacheMisses,
			InflightDeduped: ru.inflightDeduped,
			RowsDeduped:     ru.rowsDeduped,
		}
		if ru.count > 0 {
			sr.MeanJCTSeconds = ru.jctSeconds / float64(ru.count)
		}
		if ru.filteredRows > 0 {
			sr.Selectivity = float64(ru.filteredRowsOut) / float64(ru.filteredRows)
		}
		if lookups := ru.cacheHits + ru.cacheMisses + ru.inflightDeduped; lookups > 0 {
			sr.CacheHitRate = float64(ru.cacheHits) / float64(lookups)
		}
		out[shortID(key)] = sr
	}
	return out
}

// percentile returns the p-quantile (0 < p <= 1) of samples by
// nearest-rank on a sorted copy; 0 when empty.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	idx := int(p*float64(len(s))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// shortID is the display key: FNV-64a of the full stage fingerprint in
// hex. Collisions are astronomically unlikely at rollup cardinality, and
// Name/Dataset disambiguate for humans regardless.
func shortID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return strconv.FormatUint(h.Sum64(), 16)
}
