package faults

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/backend"
)

// Backend is the backend-seam fault decorator: every RunBatch is one
// injector event keyed by the batch's stage key, so a spec can spike one
// hot stage's latency while leaving the rest of the fleet clean. Corrupt
// rules never fire here — there is no wire below the seam to corrupt.
//
// Crash latches the whole decorator: once tripped, every subsequent batch
// fails with a permanent InjectedError, the backend-seam shape of a dead
// process.
type Backend struct {
	inner backend.Backend
	in    *Injector

	crashed atomic.Bool
}

var _ backend.Backend = (*Backend)(nil)

// NewBackend wraps inner with the injector's faults. A nil injector (or an
// empty spec) is a passthrough.
func NewBackend(inner backend.Backend, in *Injector) *Backend {
	return &Backend{inner: inner, in: in}
}

// Unwrap exposes the decorated backend, so metrics folding that dispatches
// on the serving backend's concrete type (runtime.Metrics) sees through a
// chaos wrapper.
func (b *Backend) Unwrap() backend.Backend { return b.inner }

// RunBatch evaluates one fault decision for the batch, then serves it on
// the inner backend (or doesn't).
func (b *Backend) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return backend.BatchResult{}, err
	}
	if b.crashed.Load() {
		return backend.BatchResult{}, &InjectedError{Kind: Crash}
	}
	if b.in != nil {
		d := b.in.decide(backendKinds, spec.StageKey, "")
		switch d.Kind {
		case Latency:
			if err := sleepCtx(ctx, d.Delay); err != nil {
				return backend.BatchResult{}, err
			}
		case Err5xx, Conn:
			return backend.BatchResult{}, &InjectedError{Kind: d.Kind}
		case Hang:
			if err := hangCtx(ctx, d.Delay); err != nil {
				return backend.BatchResult{}, err
			}
			return backend.BatchResult{}, &InjectedError{Kind: Hang}
		case Crash:
			b.crashed.Store(true)
			return backend.BatchResult{}, &InjectedError{Kind: Crash}
		}
	}
	return b.inner.RunBatch(ctx, spec)
}

// Close closes the inner backend.
func (b *Backend) Close() error { return b.inner.Close() }

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// hangCtx blocks until the context dies, or until the limit elapses when
// the rule set one (so uncancellable chaos tests still terminate). It
// returns the context's error if that is what ended the hang.
func hangCtx(ctx context.Context, limit time.Duration) error {
	if limit <= 0 {
		<-ctx.Done()
		return ctx.Err()
	}
	t := time.NewTimer(limit)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
