package faults

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/llmsim"
)

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"explode",                  // unknown kind
		"latency:delay",            // malformed param
		"5xx:p=1.5",                // p out of range
		"5xx:status=200",           // non-5xx status
		"latency:delay=soon",       // bad duration
		"seed=ten;latency",         // bad seed
		"latency:volume=11",        // unknown param
		"crash:after=x",            // bad int
		"corrupt:count=notanumber", // bad int
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
	for _, spec := range []string{
		"",
		"seed=42",
		"latency:delay=200ms:p=0.3;5xx:count=3;crash:after=10",
		"conn:worker=18091;hang:stage=sql-where;corrupt:p=0.5:after=2",
	} {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q) = %v, want ok", spec, err)
		}
	}
}

// TestDeterministicReplay: two injectors parsed from the same spec make
// identical decisions over an identical event sequence — the property the
// chaos suite's fault-free diffing rests on.
func TestDeterministicReplay(t *testing.T) {
	const spec = "seed=7;latency:p=0.4:delay=1ms;5xx:p=0.3;conn:p=0.2"
	run := func() []Kind {
		in := MustParse(spec)
		var kinds []Kind
		for i := 0; i < 200; i++ {
			kinds = append(kinds, in.decide(wireKinds, "", "w1").Kind)
		}
		return kinds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d: %q vs %q — replay diverged", i, a[i], b[i])
		}
	}
}

func TestCountAfterAndProbability(t *testing.T) {
	in := MustParse("5xx:count=3:after=2")
	var fired int
	for i := 0; i < 10; i++ {
		if in.decide(wireKinds, "", "").Faulted() {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d faults, want 3 (count cap)", fired)
	}
	st := in.Stats()
	if st.Events != 10 || st.Injected != 3 || st.Err5xx != 3 {
		t.Errorf("stats = %+v, want Events 10, Injected 3, Err5xx 3", st)
	}

	// after=2 means events 1 and 2 pass clean.
	in2 := MustParse("conn:after=2")
	if in2.decide(wireKinds, "", "").Faulted() || in2.decide(wireKinds, "", "").Faulted() {
		t.Error("fault fired within the after window")
	}
	if !in2.decide(wireKinds, "", "").Faulted() {
		t.Error("fault did not fire after the window")
	}

	// p=0 never fires, p=1 always fires.
	if MustParse("5xx:p=0").decide(wireKinds, "", "").Faulted() {
		t.Error("p=0 fired")
	}
	if !MustParse("5xx:p=1").decide(wireKinds, "", "").Faulted() {
		t.Error("p=1 did not fire")
	}
}

func TestSelectorsScopeRules(t *testing.T) {
	in := MustParse("5xx:worker=18091;conn:stage=hot-stage")
	// Wrong host, wrong stage: nothing fires.
	if in.decide(wireKinds, "", "127.0.0.1:18092").Faulted() {
		t.Error("worker selector matched the wrong host")
	}
	if in.decide(backendKinds, "cold-stage", "").Faulted() {
		t.Error("stage selector matched the wrong stage")
	}
	// A selector requiring a coordinate the seam lacks never matches.
	if in.decide(wireKinds, "", "").Faulted() {
		t.Error("selector fired without its coordinate")
	}
	if d := in.decide(wireKinds, "", "127.0.0.1:18091"); d.Kind != Err5xx {
		t.Errorf("host match fired %q, want 5xx", d.Kind)
	}
	if d := in.decide(backendKinds, "sql-where-hot-stage-1", ""); d.Kind != Conn {
		t.Errorf("stage match fired %q, want conn", d.Kind)
	}
}

// TestCorruptNeverFiresOnBackendSeam: there is no wire below the Backend
// seam; a corrupt rule waits for an HTTP seam instead of misfiring.
func TestCorruptNeverFiresOnBackendSeam(t *testing.T) {
	in := MustParse("corrupt")
	if in.decide(backendKinds, "any", "").Faulted() {
		t.Fatal("corrupt fired on the backend seam")
	}
	if !in.decide(wireKinds, "", "").Faulted() {
		t.Fatal("corrupt did not fire on the wire seam")
	}
}

// okBackend is a minimal deterministic inner backend.
type okBackend struct{ batches int }

func (o *okBackend) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return backend.BatchResult{}, err
	}
	o.batches++
	return backend.BatchResult{ModelCalls: len(spec.Requests)}, nil
}
func (o *okBackend) Close() error { return nil }

func oneRowSpec(stage string) backend.BatchSpec {
	return backend.BatchSpec{
		StageKey: stage,
		Requests: []*llmsim.Request{{ID: 0, OutTokens: 4}},
	}
}

func TestBackendDecorator(t *testing.T) {
	ctx := context.Background()

	// Passthrough: nil injector and empty spec change nothing.
	inner := &okBackend{}
	fb := NewBackend(inner, nil)
	if _, err := fb.RunBatch(ctx, oneRowSpec("s")); err != nil || inner.batches != 1 {
		t.Fatalf("nil-injector passthrough: err=%v batches=%d", err, inner.batches)
	}
	if fb.Unwrap() != backend.Backend(inner) {
		t.Error("Unwrap did not return the inner backend")
	}

	// Transient error injection surfaces as InjectedError; the inner
	// backend never sees the batch.
	inner2 := &okBackend{}
	fb2 := NewBackend(inner2, MustParse("5xx:count=1"))
	if _, err := fb2.RunBatch(ctx, oneRowSpec("s")); !IsInjected(err) {
		t.Fatalf("err = %v, want injected", err)
	}
	if inner2.batches != 0 {
		t.Error("inner backend served a faulted batch")
	}
	if _, err := fb2.RunBatch(ctx, oneRowSpec("s")); err != nil {
		t.Fatalf("count-exhausted rule still fired: %v", err)
	}

	// Latency delays but serves.
	fb3 := NewBackend(&okBackend{}, MustParse("latency:delay=30ms"))
	start := time.Now()
	if _, err := fb3.RunBatch(ctx, oneRowSpec("s")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("latency fault delayed only %v", el)
	}

	// Crash latches permanently.
	inner4 := &okBackend{}
	fb4 := NewBackend(inner4, MustParse("crash:after=1"))
	if _, err := fb4.RunBatch(ctx, oneRowSpec("s")); err != nil {
		t.Fatalf("pre-crash batch failed: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := fb4.RunBatch(ctx, oneRowSpec("s")); !IsInjected(err) {
			t.Fatalf("post-crash batch %d: err = %v, want injected", i, err)
		}
	}
	if inner4.batches != 1 {
		t.Errorf("inner served %d batches, want 1 (crash latched)", inner4.batches)
	}

	// Hang blocks until the context dies.
	fb5 := NewBackend(&okBackend{}, MustParse("hang"))
	hctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := fb5.RunBatch(hctx, oneRowSpec("s")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang err = %v, want deadline exceeded", err)
	}
}

func TestRoundTripperInjectsWireFaults(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true,"payload":"0123456789abcdef"}`))
	}))
	defer srv.Close()

	get := func(c *http.Client) (*http.Response, error) {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		return c.Do(req)
	}

	// 5xx synthesized without touching the server.
	c := &http.Client{Transport: NewRoundTripper(nil, MustParse("5xx:count=1:status=500"))}
	resp, err := get(c)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 500 {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	resp.Body.Close()
	if served != 0 {
		t.Error("server saw a synthesized-5xx request")
	}
	// Rule exhausted: real response passes through.
	resp, err = get(c)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("passthrough after count: %v / %v", err, resp)
	}
	resp.Body.Close()

	// Conn error: no response at all, chain dispatchable.
	c = &http.Client{Transport: NewRoundTripper(nil, MustParse("conn"))}
	if _, err := get(c); err == nil || !IsInjected(err) {
		t.Errorf("conn fault err = %v, want injected", err)
	}

	// Corrupt: 200 with an undecodable body.
	c = &http.Client{Transport: NewRoundTripper(nil, MustParse("corrupt"))}
	resp, err = get(c)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("corrupt status = %d, want 200", resp.StatusCode)
	}
	var v map[string]any
	if json.Unmarshal(body, &v) == nil {
		t.Errorf("corrupt body %q still decodes", body)
	}

	// Crash latches the host dead.
	c = &http.Client{Transport: NewRoundTripper(nil, MustParse("crash:after=1"))}
	if resp, err := get(c); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	for i := 0; i < 2; i++ {
		if _, err := get(c); err == nil || !IsInjected(err) {
			t.Fatalf("post-crash request %d: err = %v, want injected", i, err)
		}
	}
}

func TestMiddlewareInjectsServerSideFaults(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"ok":true}`))
	})

	// 5xx answer.
	srv := httptest.NewServer(Middleware(MustParse("5xx:count=1"), inner))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	if resp, err = http.Get(srv.URL); err != nil || resp.StatusCode != 200 {
		t.Fatalf("passthrough after count: %v / %v", err, resp)
	}
	resp.Body.Close()

	// Conn abort: the client sees a transport error, not a status.
	srv2 := httptest.NewServer(Middleware(MustParse("conn"), inner))
	defer srv2.Close()
	if _, err := http.Get(srv2.URL); err == nil {
		t.Error("aborted connection produced a response")
	}

	// Crash latches: every request after the trigger aborts, including
	// paths the inner handler would have served.
	srv3 := httptest.NewServer(Middleware(MustParse("crash:after=1"), inner))
	defer srv3.Close()
	if resp, err := http.Get(srv3.URL); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	for i := 0; i < 2; i++ {
		if _, err := http.Get(srv3.URL); err == nil {
			t.Fatalf("post-crash request %d succeeded", i)
		}
	}

	// Corrupt: 200 with a truncated JSON body.
	srv4 := httptest.NewServer(Middleware(MustParse("corrupt"), inner))
	defer srv4.Close()
	resp, err = http.Get(srv4.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v map[string]any
	if json.Unmarshal(body, &v) == nil {
		t.Errorf("corrupt body %q still decodes", body)
	}
}
