// Package faults is the deterministic fault-injection layer the chaos
// conformance suite and `-faults` chaos runs drive the fleet with. Failure
// is an input here, not an accident: an Injector is parsed from a compact
// spec string, draws every probabilistic decision from one seeded generator
// (same spec + same seed + same event order = same faults), and is mounted
// at three seams —
//
//   - Backend (backend.go): a backend.Backend decorator injecting latency
//     spikes, transient errors, hangs, and permanent crashes per stage key,
//     for chaos on a local serving path;
//   - RoundTripper (http.go): an http.RoundTripper decorator on a cluster
//     router's client injecting connect errors, 5xx bursts, corrupt
//     response bodies, and per-worker crashes between router and workers;
//   - Middleware (http.go): an http.Handler decorator on a worker's mux
//     injecting the same wire faults server-side (`llmqserve -worker
//     -faults ...`), including connection aborts a router cannot tell from
//     a dead process.
//
// Spec grammar (documented for operators in docs/API.md):
//
//	spec  := entry { ";" entry }
//	entry := "seed=" INT | rule
//	rule  := kind { ":" param }
//	kind  := "latency" | "5xx" | "conn" | "corrupt" | "hang" | "crash"
//	param := "p=" FLOAT      probability per matching event (default 1)
//	       | "count=" INT    at most this many injections (default unlimited)
//	       | "after=" INT    skip the first N matching events (default 0)
//	       | "delay=" DUR    latency to add / hang cap (latency default 250ms)
//	       | "status=" INT   HTTP status for 5xx (default 503)
//	       | "stage=" SUBSTR match on the batch's stage key (backend seam)
//	       | "worker=" SUBSTR match on the target host (round-tripper seam)
//
// Example: "seed=42;latency:delay=200ms:p=0.3;5xx:count=3;crash:after=10".
// Rules are evaluated in spec order and at most one fault fires per event.
// "crash" latches: once its after-threshold passes, every subsequent
// matching event is crashed (p and count do not apply), which is what makes
// a crashed worker indistinguishable from a dead process.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind names one injectable fault.
type Kind string

const (
	// Latency adds a delay before the event proceeds normally.
	Latency Kind = "latency"
	// Err5xx fails the event with a transient server error (HTTP seams
	// answer the configured status; the backend seam returns a transient
	// InjectedError).
	Err5xx Kind = "5xx"
	// Conn fails the event with a connect-level error: no response at all.
	Conn Kind = "conn"
	// Corrupt delivers a truncated/garbled response body instead of the
	// real one (HTTP seams only; the backend seam never fires it — there is
	// no wire to corrupt below the seam).
	Corrupt Kind = "corrupt"
	// Hang blocks the event until its context dies (or the rule's delay
	// cap elapses, after which it degrades to a connect error).
	Hang Kind = "hang"
	// Crash latches the target dead: every subsequent matching event fails
	// like a killed process (connection aborts on the wire, a permanent
	// error on the backend seam).
	Crash Kind = "crash"
)

// DefaultLatency is the latency rule's delay when the spec names none.
const DefaultLatency = 250 * time.Millisecond

// rule is one parsed spec entry plus its firing state.
type rule struct {
	kind   Kind
	p      float64       // probability per matching event (1 = always)
	count  int           // max injections, 0 = unlimited
	after  int           // matching events to skip before arming
	delay  time.Duration // latency amount / hang cap
	status int           // HTTP status for 5xx
	stage  string        // substring selector on the stage key
	worker string        // substring selector on the target host

	seen     int // matching events observed; the owning Injector's mu serializes access
	injected int // faults fired; the owning Injector's mu serializes access
}

// matches reports whether the rule applies to an event at the given seam
// coordinates. A stage/worker selector requires the seam to supply that
// coordinate, so one spec can direct rules at different seams.
func (r *rule) matches(stage, worker string) bool {
	if r.stage != "" && (stage == "" || !strings.Contains(stage, r.stage)) {
		return false
	}
	if r.worker != "" && (worker == "" || !strings.Contains(worker, r.worker)) {
		return false
	}
	return true
}

// Decision is one event's injected fault; the zero value means "no fault,
// proceed normally".
type Decision struct {
	Kind   Kind
	Delay  time.Duration // Latency amount or Hang cap (0 = hang forever)
	Status int           // Err5xx HTTP status
}

// Faulted reports whether a fault fired for the event.
func (d Decision) Faulted() bool { return d.Kind != "" }

// Injector evaluates a parsed fault spec against a stream of events. All
// randomness comes from one seeded generator under the mutex, so a given
// spec replays identically for an identical event sequence — the property
// the chaos conformance suite's fault-free diffing depends on.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand // guarded by mu
	rules []*rule    // firing state guarded by mu
	stats Stats      // guarded by mu
}

// Parse builds an Injector from a spec string (grammar in the package
// comment). An empty spec yields an injector that never fires — a valid
// passthrough for wiring tests.
func Parse(spec string) (*Injector, error) {
	var rules []*rule
	seed := int64(1)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(entry, "seed="); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %w", rest, err)
			}
			seed = v
			continue
		}
		r, err := parseRule(entry)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return &Injector{rules: rules, rng: rand.New(rand.NewSource(seed))}, nil
}

// MustParse is Parse for specs fixed at compile time (tests, CI profiles).
func MustParse(spec string) *Injector {
	in, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return in
}

// parseRule parses one "kind:param:param" entry.
func parseRule(entry string) (*rule, error) {
	parts := strings.Split(entry, ":")
	r := &rule{p: 1, status: 503}
	switch k := Kind(parts[0]); k {
	case Latency, Err5xx, Conn, Corrupt, Hang, Crash:
		r.kind = k
	default:
		return nil, fmt.Errorf("faults: unknown fault kind %q (want latency, 5xx, conn, corrupt, hang, or crash)", parts[0])
	}
	if r.kind == Latency {
		r.delay = DefaultLatency
	}
	for _, param := range parts[1:] {
		key, val, ok := strings.Cut(param, "=")
		if !ok {
			return nil, fmt.Errorf("faults: rule %q: malformed param %q (want key=value)", entry, param)
		}
		var err error
		switch key {
		case "p":
			r.p, err = strconv.ParseFloat(val, 64)
			if err == nil && (r.p < 0 || r.p > 1) {
				err = fmt.Errorf("p must be in [0,1], got %v", r.p)
			}
		case "count":
			r.count, err = strconv.Atoi(val)
		case "after":
			r.after, err = strconv.Atoi(val)
		case "delay":
			r.delay, err = time.ParseDuration(val)
		case "status":
			r.status, err = strconv.Atoi(val)
			if err == nil && (r.status < 500 || r.status > 599) {
				err = fmt.Errorf("status must be 5xx, got %d", r.status)
			}
		case "stage":
			r.stage = val
		case "worker":
			r.worker = val
		default:
			err = fmt.Errorf("unknown param %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: rule %q: %v", entry, err) //llmqlint:nowrap -- flattened: the param context is the message
		}
	}
	return r, nil
}

// allowed filters the kinds a seam can express; decide never fires others
// there (a corrupt rule simply waits for a wire seam, for example).
type allowed map[Kind]bool

var (
	backendKinds = allowed{Latency: true, Err5xx: true, Conn: true, Hang: true, Crash: true}
	wireKinds    = allowed{Latency: true, Err5xx: true, Conn: true, Corrupt: true, Hang: true, Crash: true}
)

// decide evaluates one event at the given seam coordinates. Rules run in
// spec order; the first eligible rule fires and wins the event. Every
// matching rule's seen counter advances whether or not it fires, so "after"
// counts matching traffic, not quiet time.
func (in *Injector) decide(kinds allowed, stage, worker string) Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Events++
	var d Decision
	for _, r := range in.rules {
		if !kinds[r.kind] || !r.matches(stage, worker) {
			continue
		}
		r.seen++
		if d.Faulted() || r.seen <= r.after {
			continue
		}
		// Crash latches: once armed it fires forever — p and count
		// deliberately do not apply, a dead process stays dead.
		if r.kind != Crash {
			if r.count > 0 && r.injected >= r.count {
				continue
			}
			if r.p < 1 && in.rng.Float64() >= r.p {
				continue
			}
		}
		r.injected++
		d = Decision{Kind: r.kind, Delay: r.delay, Status: r.status}
		in.stats.Injected++
		switch r.kind {
		case Latency:
			in.stats.Latency++
		case Err5xx:
			in.stats.Err5xx++
		case Conn:
			in.stats.Conn++
		case Corrupt:
			in.stats.Corrupt++
		case Hang:
			in.stats.Hang++
		case Crash:
			in.stats.Crash++
		}
	}
	return d
}

// Stats is the injector's fault accounting: events seen and faults fired by
// kind. Injected always equals the sum of the per-kind counters.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type Stats struct {
	// Events counts seam events evaluated; Injected the subset that drew a
	// fault.
	Events   int64 `json:"events"`
	Injected int64 `json:"injected"`
	// Per-kind injection counts.
	Latency int64 `json:"latency"`
	Err5xx  int64 `json:"err5xx"`
	Conn    int64 `json:"conn"`
	Corrupt int64 `json:"corrupt"`
	Hang    int64 `json:"hang"`
	Crash   int64 `json:"crash"`
}

// Stats snapshots the injector's accounting.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// InjectedError is a fault surfaced as an error; seams and tests dispatch
// on it via errors.As / IsInjected to tell chaos from genuine failures.
type InjectedError struct {
	Kind Kind
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s fault", e.Kind)
}

// IsInjected reports whether err (anywhere in its chain) was injected by
// this package.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}
