package faults

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
)

// RoundTripper is the client-side wire fault decorator: mounted on a
// cluster router's http.Client it injects faults between the router and its
// workers — synthesized 5xx answers, connect errors, truncated/corrupt
// response bodies, latency, hangs, and per-worker crashes — without the
// workers ever seeing the traffic the fault swallowed. Events are keyed by
// the target host, so "worker=" selectors aim rules at one fleet member.
type RoundTripper struct {
	base http.RoundTripper
	in   *Injector

	mu      sync.Mutex
	crashed map[string]bool // hosts latched dead; guarded by mu
}

var _ http.RoundTripper = (*RoundTripper)(nil)

// NewRoundTripper wraps base (nil means http.DefaultTransport) with the
// injector's faults.
func NewRoundTripper(base http.RoundTripper, in *Injector) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &RoundTripper{base: base, in: in, crashed: make(map[string]bool)}
}

// RoundTrip evaluates one fault decision for the request's target host and
// either forwards, delays, fails, or corrupts the exchange.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	rt.mu.Lock()
	dead := rt.crashed[host]
	rt.mu.Unlock()
	if dead {
		return nil, &InjectedError{Kind: Crash}
	}
	if rt.in == nil {
		return rt.base.RoundTrip(req)
	}
	d := rt.in.decide(wireKinds, "", host)
	switch d.Kind {
	case Latency:
		if err := sleepCtx(req.Context(), d.Delay); err != nil {
			return nil, err
		}
	case Err5xx:
		return synthesize5xx(req, d.Status), nil
	case Conn:
		return nil, &InjectedError{Kind: Conn}
	case Hang:
		if err := hangCtx(req.Context(), d.Delay); err != nil {
			return nil, err
		}
		return nil, &InjectedError{Kind: Hang}
	case Crash:
		rt.mu.Lock()
		rt.crashed[host] = true
		rt.mu.Unlock()
		return nil, &InjectedError{Kind: Crash}
	case Corrupt:
		resp, err := rt.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return corruptResponse(resp), nil
	}
	return rt.base.RoundTrip(req)
}

// synthesize5xx fabricates a transient server error without touching the
// network, shaped like the /v1 error envelope so clients exercise their
// real decode path.
func synthesize5xx(req *http.Request, status int) *http.Response {
	body := `{"error":{"code":"unavailable","message":"faults: injected 5xx"}}`
	return &http.Response{
		StatusCode: status,
		Status:     http.StatusText(status),
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// corruptResponse truncates the real response body mid-JSON and flips its
// first byte, modeling a connection that died mid-transfer or a worker that
// answered garbage. Status and headers pass through untouched — the
// corruption is only detectable by actually decoding the body, which is
// exactly the failure mode retry paths must survive.
func corruptResponse(resp *http.Response) *http.Response {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		data = nil
	}
	cut := data[:len(data)/2]
	if len(cut) > 0 {
		cut = append([]byte{}, cut...)
		cut[0] ^= 0xFF
	}
	resp.Body = io.NopCloser(bytes.NewReader(cut))
	resp.ContentLength = int64(len(cut))
	resp.Header.Del("Content-Length")
	return resp
}

// Middleware is the server-side wire fault decorator for a worker's mux
// (`llmqserve -worker -faults ...`): it injects 5xx answers, corrupt
// bodies, latency, hangs, connection aborts, and latched crashes before the
// real handler runs. A crashed worker aborts every connection — including
// /healthz — so routers observe exactly what a killed process looks like.
func Middleware(in *Injector, next http.Handler) http.Handler {
	var mu sync.Mutex
	var dead bool
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		isDead := dead
		mu.Unlock()
		if isDead {
			panic(http.ErrAbortHandler)
		}
		if in == nil {
			next.ServeHTTP(w, r)
			return
		}
		d := in.decide(wireKinds, "", "")
		switch d.Kind {
		case Latency:
			if err := sleepCtx(r.Context(), d.Delay); err != nil {
				panic(http.ErrAbortHandler)
			}
		case Err5xx:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(d.Status)
			_, _ = w.Write([]byte(`{"error":{"code":"unavailable","message":"faults: injected 5xx"}}`))
			return
		case Conn:
			panic(http.ErrAbortHandler)
		case Corrupt:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"metrics":{"jct":`)) // truncated mid-JSON
			return
		case Hang:
			if err := hangCtx(r.Context(), d.Delay); err != nil {
				panic(http.ErrAbortHandler)
			}
			panic(http.ErrAbortHandler)
		case Crash:
			mu.Lock()
			dead = true
			mu.Unlock()
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}
