// Package runtime is the concurrent serving layer between the LLM-SQL front
// end and the simulated serving engine: where sqlfront executes one
// statement at a time, this package serves many at once and makes them
// cheaper together than apart — the missing piece between the paper's
// single-query optimizer and the serving platforms it targets.
//
// Architecture, top to bottom:
//
//	Submit/Exec/Prepare                    (statement API; Options carries the
//	      │                                 tenant's ClientID and service Class)
//	quota gate                             (per-client token/call buckets;
//	      │                                 overdrawn clients get a QuotaError —
//	      │                                 429 + Retry-After on the wire)
//	      ▼
//	fair admission queue ──► worker pool   (deficit-round-robin over
//	      │                                 per-(client, class) flows: a heavy
//	      │                                 analytics tenant cannot starve an
//	      │                                 interactive one; workers bound
//	      │                                 concurrency as before)
//	      ▼
//	plan cache                             (sql text → Prepared: parse, bind,
//	      │                                 validate, and plan exactly once)
//	      ▼
//	per-stage RunStage hook                (injected as ExecConfig.StageRunner)
//	      │
//	      ├─ result cache    exact-match (prompt, row content, truth, budget)
//	      │                  → answer; repeated dashboard rows skip the model
//	      ├─ inflight dedup  identical concurrent calls run once; later
//	      │                  statements piggyback on the first
//	      └─ micro-batcher   pending misses that share a stage fingerprint
//	            │            coalesce for an SLO-aware batch window —
//	            │            interactive statements close it early, batch-class
//	            │            statements hold it open longer to coalesce more,
//	            │            and a statement deadline closes it in time — then
//	            │            run as ONE GGR-reordered stage over the union of
//	            │            rows (identical repeated windows skip the solve
//	            ▼            via the reorder cache; prompts use a token memo)
//	      backend.Backend    (the pluggable engine seam: Sim confines one
//	                          engine + kvcache to each coalesced run, the
//	                          paper's setting; Persistent keeps a pool of
//	                          long-lived engine replicas per stage
//	                          fingerprint so the prefix cache survives
//	                          BETWEEN batch windows and concurrent windows
//	                          overlap; Sharded splits a batch at its
//	                          prefix-group boundaries and fans the shards
//	                          out to concurrent engine runs; Recording taps
//	                          batches for tests)
//
// The cross-query batcher is what turns the paper's reordering from a
// per-query optimization into a fleet-level one: rows from different
// statements that share a prompt prefix are scheduled adjacently, so the
// prefix cache hits across queries, not just within one. With a persistent
// backend the same effect extends across batch windows: the second
// dashboard refresh finds the first refresh's prefixes still cached.
//
// Cancellation: every submission path has a Context variant. A canceled
// statement fails fast in the admission queue, stops between LLM stages,
// and abandons a pending batch wait — without poisoning shared state: the
// coalesced run it joined still completes (it may carry other statements'
// rows), and a detached resolver commits or fails the canceled statement's
// result-cache reservations when that run lands, so concurrent subscribers
// and later statements proceed as if nothing happened.
//
// Semantics: answers are content-keyed (sqlfront stages key every oracle
// draw by row content), so caching, dedup, batching, and backend choice
// never change what a statement returns — with the same field-position
// caveat that sqlfront.ExecConfig.Naive documents for the bundled datasets,
// whose simulated accuracy depends on where the reordering places the key
// field. On ad-hoc (CSV) tables, concurrent results are bit-identical to
// sequential ones; the stress tests assert exactly that.
package runtime

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sqlfront"
)

// Config sizes the runtime. The zero value serves with 4 workers, a 64-deep
// admission queue, a 2ms batch window, and a 64k-entry result cache.
type Config struct {
	// Workers bounds concurrently executing statements.
	Workers int
	// QueueDepth bounds admitted-but-unscheduled statements; Submit blocks
	// (backpressure) once the queue is full.
	QueueDepth int
	// BatchWindow is how long the first pending call of a stage fingerprint
	// waits for concurrent statements to join its batch. Longer windows
	// coalesce more at the cost of added latency; negative disables
	// coalescing (every stage flushes immediately, dedup and caching still
	// apply). This is the window interactive-class statements pay; an
	// interactive statement joining a window scheduled further out (by a
	// batch-class opener) pulls its close forward to this horizon.
	BatchWindow time.Duration
	// BatchClassWindow is the coalescing window for batch-class statements,
	// which prefer throughput over latency: they hold a batch open longer so
	// more concurrent calls ride one engine run. Zero defaults to 10×
	// BatchWindow; negative makes batch-class flush immediately too. A
	// statement deadline (context deadline) closer than the window always
	// closes the batch in time.
	BatchClassWindow time.Duration
	// InteractiveWeight and BatchWeight are the admission scheduler's DRR
	// quantums per class (defaults 4 and 1): of every 5 admission slots
	// under contention, interactive flows get 4. Each distinct (client,
	// class) pair is its own flow, so no tenant — and no tenant's batch
	// backlog — can starve another's interactive traffic.
	InteractiveWeight int
	BatchWeight       int
	// FIFOAdmission reverts the admission scheduler to PR 3's anonymous
	// single FIFO — the A/B baseline for the QoS acceptance test, in the
	// Naive tradition.
	FIFOAdmission bool
	// DefaultQuota, when enabled, bounds every client's model-call and
	// prompt-token draw (post-paid token buckets; see Quota). ClientQuotas
	// overrides it per client. Statements over quota fail admission with a
	// *QuotaError carrying the retry horizon.
	DefaultQuota Quota
	ClientQuotas map[ClientID]Quota
	// MaxBatchRows flushes a batch early once it holds this many rows
	// (default 4096; negative disables the cap).
	MaxBatchRows int
	// CacheCapacity bounds the result cache in entries, evicted LRU
	// (default 65536; negative disables result caching — inflight dedup
	// still collapses concurrent identical calls).
	CacheCapacity int
	// PlanCacheCapacity bounds the parse+plan cache in distinct statement
	// texts (default 1024; negative disables plan caching). Statements that
	// inline varying literals each count as a distinct text, so the bound
	// keeps an open /v1/sql endpoint from growing memory without limit.
	PlanCacheCapacity int
	// Exec is the base execution config statements run under (policy,
	// model, out-token defaults). Per-statement Options override Naive and
	// Policy; StageRunner is always the runtime's own.
	Exec sqlfront.ExecConfig
	// Backend is the serving target every engine run goes to. Nil keeps
	// Exec.Backend (and the package default — one confined engine per
	// batch — when that is nil too). A persistent backend here is what
	// lets prefix hits span batch windows; a backend.Sharded wrapper is what
	// fans one hot batch out over engine replicas; see internal/backend.
	Backend backend.Backend
	// ReorderCacheCapacity bounds the GGR reorder cache in schedules
	// (default query.DefaultReorderCacheCapacity; negative disables): a
	// batch window identical to an earlier one — same stage fingerprint,
	// same rows — reuses its schedule instead of re-running the solver.
	ReorderCacheCapacity int
	// PromptCacheCapacity bounds the prompt tokenization memo in distinct
	// texts (default query.DefaultPromptCacheCapacity; negative disables):
	// row payloads repeated across stages and batch windows are tokenized
	// once, on one long-lived tokenizer.
	PromptCacheCapacity int
	// SlowQueryThreshold, when positive, turns on the slow-query log: every
	// statement is recorded (a trace cannot be reconstructed after the
	// fact), and those whose wall time — admission to settlement — meets the
	// threshold are retained in the trace ring and reported to SlowLogger.
	// Zero records only statements that opt in with Options.Trace.
	SlowQueryThreshold time.Duration
	// TraceRingSize bounds the ring of retained traces behind
	// Runtime.Traces / GET /v1/traces (default 128; negative disables
	// retention — Handle.Trace still works).
	TraceRingSize int
	// SlowLogger, when non-nil, gets one structured record per statement
	// exceeding SlowQueryThreshold. Nil disables slow logging (traces are
	// still retained in the ring).
	SlowLogger *slog.Logger
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 4
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) batchWindow() time.Duration {
	if c.BatchWindow != 0 {
		return c.BatchWindow
	}
	return 2 * time.Millisecond
}

// windowFor resolves the coalescing window a statement's class buys.
func (c Config) windowFor(class Class) time.Duration {
	w := c.batchWindow()
	if class != ClassBatch {
		return w
	}
	if c.BatchClassWindow != 0 {
		return c.BatchClassWindow
	}
	if w <= 0 {
		return w
	}
	return 10 * w
}

func (c Config) interactiveWeight() int {
	if c.InteractiveWeight > 0 {
		return c.InteractiveWeight
	}
	return 4
}

func (c Config) batchWeight() int {
	if c.BatchWeight > 0 {
		return c.BatchWeight
	}
	return 1
}

func (c Config) maxBatchRows() int {
	if c.MaxBatchRows != 0 {
		return c.MaxBatchRows
	}
	return 4096
}

func (c Config) cacheCapacity() int {
	if c.CacheCapacity != 0 {
		return c.CacheCapacity
	}
	return 65536
}

func (c Config) planCacheCapacity() int {
	if c.PlanCacheCapacity != 0 {
		return c.PlanCacheCapacity
	}
	return 1024
}

func (c Config) traceRingSize() int {
	if c.TraceRingSize != 0 {
		return c.TraceRingSize
	}
	return 128
}

// rollupLimit bounds distinct StageKeys the per-stage rollup store tracks —
// far above any realistic stage cardinality, it only guards /v1/metrics
// against unbounded growth on adversarial workloads.
const rollupLimit = 512

// Options tunes one statement's execution.
type Options struct {
	// Naive runs the statement's naive plan (no pushdown, dedup, or
	// cost-ordered cascade) — the same A/B toggle as sqlfront.
	Naive bool
	// Policy overrides the runtime's base scheduling policy ("" keeps it).
	Policy query.Policy
	// Client names the tenant this statement runs for: its fair-queue flow,
	// quota bucket, and metrics row. Empty is normalized to DefaultClient.
	Client ClientID
	// Class is the statement's service class (empty means
	// ClassInteractive): it selects the admission weight and the
	// micro-batcher's coalescing window.
	Class Class
	// Trace records a span tree for this statement — EXPLAIN ANALYZE for
	// the serving path. The tree is available on Handle.Trace after the
	// statement settles and is retained in the /v1/traces ring. Untraced
	// statements pay nothing: no recorder is created and every span call
	// no-ops on a nil receiver.
	Trace bool
}

// Runtime is a concurrent LLM-SQL server over one table registry. Create it
// with New, submit statements from any number of goroutines, and Close it to
// drain. See the package comment for the architecture.
type Runtime struct {
	db      *sqlfront.DB
	cfg     Config
	queue   *fairQueue
	wg      sync.WaitGroup
	cache   *resultCache
	batcher *batcher
	reorder *query.ReorderCache
	prompts *query.PromptCache
	c       counters
	traces  *obs.Ring    // nil when retention is disabled
	rollups *obs.Rollups // per-StageKey feedback store

	// waitInteractive / waitBatch are the admission-queue wait histograms
	// by service class (atomic internals; no lock).
	waitInteractive waitHist
	waitBatch       waitHist

	planMu sync.Mutex
	plans  map[string]*sqlfront.Prepared // guarded by planMu

	quotaMu sync.Mutex
	quotas  map[ClientID]*quotaBucket // guarded by quotaMu

	clientMu sync.Mutex
	clients  map[ClientID]*clientCounters // guarded by clientMu

	closeMu sync.RWMutex
	closed  bool // guarded by closeMu
}

// errClosed is the submission error of a closed runtime.
var errClosed = errors.New("runtime: closed")

type job struct {
	ctx        context.Context
	p          *sqlfront.Prepared
	opts       Options
	h          *Handle
	client     ClientID
	class      Class
	enqueuedAt time.Time

	// planState / prepDur feed the trace's prepare span: how the statement's
	// plan was resolved ("hit" / "miss" / "prepared") and how long it took.
	planState string
	prepDur   time.Duration
	// roundsAtPush / drrRounds are the DRR scheduler's ring-pass counter at
	// enqueue and the passes this statement waited through (set at pop; zero
	// under FIFO admission).
	roundsAtPush int64
	drrRounds    int64
}

// Handle is a pending statement's future.
type Handle struct {
	done    chan struct{}
	res     *sqlfront.Result
	err     error
	trace   *obs.Trace  // set before done closes; nil unless recorded
	summary StmtSummary // set before done closes
}

// StmtSummary is the per-statement accounting settled on every handle —
// the data an access log line needs without a full trace.
type StmtSummary struct {
	Client       ClientID
	Class        Class
	QueueWait    time.Duration
	Wall         time.Duration
	JCTSeconds   float64
	LLMCalls     int64
	PromptTokens int64
}

// Trace returns the statement's recorded span tree, nil unless the
// statement ran with Options.Trace (or under a slow-query threshold) and
// has settled — valid only after Wait returns.
func (h *Handle) Trace() *obs.Trace { return h.trace }

// Summary returns the statement's settled accounting — valid only after
// Wait returns. Statements that failed admission report a zero summary.
func (h *Handle) Summary() StmtSummary { return h.summary }

// Wait blocks until the statement finishes and returns its result. It is
// WaitContext without a way to give up.
func (h *Handle) Wait() (*sqlfront.Result, error) {
	//llmqlint:detached -- no-cancellation convenience wrapper over WaitContext
	return h.WaitContext(context.Background())
}

// WaitContext blocks until the statement finishes or ctx dies, whichever
// comes first. Abandoning the wait does not abandon the statement: it keeps
// running under its own submission context, its result stays settled on the
// handle (a later Wait still returns it), and no goroutine is parked on the
// caller's behalf — so a caller can stop caring about a future without
// leaking its result.
func (h *Handle) WaitContext(ctx context.Context) (*sqlfront.Result, error) {
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// New starts a runtime over db. The caller owns db's registrations (tables
// may be registered before or after New) and must Close the runtime to
// release its workers.
func New(db *sqlfront.DB, cfg Config) *Runtime {
	rt := &Runtime{
		db:      db,
		cfg:     cfg,
		queue:   newFairQueue(cfg.queueDepth(), cfg.interactiveWeight(), cfg.batchWeight(), cfg.FIFOAdmission),
		cache:   newResultCache(cfg.cacheCapacity()),
		plans:   make(map[string]*sqlfront.Prepared),
		quotas:  make(map[ClientID]*quotaBucket),
		clients: make(map[ClientID]*clientCounters),
		rollups: obs.NewRollups(rollupLimit),
	}
	if cfg.traceRingSize() > 0 {
		rt.traces = obs.NewRing(cfg.traceRingSize())
	}
	if cfg.ReorderCacheCapacity >= 0 {
		rt.reorder = query.NewReorderCache(cfg.ReorderCacheCapacity)
	}
	if cfg.PromptCacheCapacity >= 0 {
		rt.prompts = query.NewPromptCache(cfg.PromptCacheCapacity)
	}
	rt.batcher = newBatcher(rt)
	for i := 0; i < cfg.workers(); i++ {
		rt.wg.Add(1)
		go rt.worker()
	}
	return rt
}

// DB returns the registry statements run against.
func (rt *Runtime) DB() *sqlfront.DB { return rt.db }

// Metrics snapshots the runtime's accounting, folding in the reorder
// cache's solver accounting and — when the serving backend is a
// backend.Sharded — the data-parallel shard counters.
func (rt *Runtime) Metrics() Metrics {
	m := rt.c.snapshot()
	if rt.reorder != nil {
		s := rt.reorder.Stats()
		m.ReorderCacheHits, m.ReorderCacheMisses, m.ReorderSolves = s.Hits, s.Misses, s.Solves
	}
	if rt.prompts != nil {
		m.PromptCacheHits, m.PromptCacheMisses = rt.prompts.Hits(), rt.prompts.Misses()
	}
	if sh, ok := unwrapBackend(rt.servingBackend()).(*backend.Sharded); ok {
		s := sh.Stats()
		m.ShardedBatches, m.ShardRuns, m.ShardJCTSeconds = s.ShardedBatches, s.ShardRuns, s.ShardJCTSeconds
	}
	if cr, ok := unwrapBackend(rt.servingBackend()).(*cluster.Router); ok {
		cm := cr.Metrics()
		m.Cluster = &cm
	}
	rt.clientMu.Lock()
	if len(rt.clients) > 0 {
		m.Clients = make(map[ClientID]ClientMetrics, len(rt.clients))
		for id, cc := range rt.clients {
			m.Clients[id] = ClientMetrics{
				Statements:       cc.statements,
				Canceled:         cc.canceled,
				QuotaRejections:  cc.quotaRejections,
				LLMCalls:         cc.llmCalls,
				PromptTokens:     cc.promptTokens,
				JCTSeconds:       float64(cc.jctMicros) / 1e6,
				QueueWaitSeconds: float64(cc.queueWaitMicros) / 1e6,
			}
		}
	}
	rt.clientMu.Unlock()
	qw := make(map[Class]WaitHistogram, 2)
	if h := rt.waitInteractive.snapshot(); h.Count > 0 {
		qw[ClassInteractive] = h
	}
	if h := rt.waitBatch.snapshot(); h.Count > 0 {
		qw[ClassBatch] = h
	}
	if len(qw) > 0 {
		m.QueueWait = qw
	}
	m.Stages = rt.rollups.Snapshot()
	return m
}

// Traces returns the retained statement traces, newest first: explicitly
// traced statements plus those over the slow-query threshold, bounded FIFO
// by Config.TraceRingSize.
func (rt *Runtime) Traces() []*obs.Trace { return rt.traces.Snapshot() }

// observeStage is the executor's per-stage feedback hook (wired as
// ExecConfig.StageObserver): it folds one executed stage's observed rows,
// selectivity, tokens, and latency into the per-StageKey rollups.
func (rt *Runtime) observeStage(ob obs.StageObservation) { rt.rollups.Observe(ob) }

// waitFor picks the class's admission-wait histogram.
func (rt *Runtime) waitFor(class Class) *waitHist {
	if class == ClassBatch {
		return &rt.waitBatch
	}
	return &rt.waitInteractive
}

// clientLocked resolves (creating on first sight) a client's counters.
//
//llmqlint:holds clientMu
func (rt *Runtime) clientLocked(id ClientID) *clientCounters {
	cc := rt.clients[id]
	if cc == nil {
		cc = &clientCounters{}
		rt.clients[id] = cc
	}
	return cc
}

// quotaFor resolves the client's quota bucket, nil when unlimited. Buckets
// are created lazily so an open-ended client population cannot preallocate
// memory; the map is bounded by clients actually seen.
func (rt *Runtime) quotaFor(client ClientID) *quotaBucket {
	q, ok := rt.cfg.ClientQuotas[client]
	if !ok {
		q = rt.cfg.DefaultQuota
	}
	if !q.Enabled() {
		return nil
	}
	rt.quotaMu.Lock()
	defer rt.quotaMu.Unlock()
	b := rt.quotas[client]
	if b == nil {
		b = newQuotaBucket(q, time.Now())
		rt.quotas[client] = b
	}
	return b
}

// servingBackend resolves the backend statements actually run on, mirroring
// the worker's override order: Config.Backend wins over Exec's embedded one.
func (rt *Runtime) servingBackend() backend.Backend {
	if rt.cfg.Backend != nil {
		return rt.cfg.Backend
	}
	return rt.cfg.Exec.Backend
}

// unwrapBackend strips decorator backends (e.g. a faults.Backend chaos
// wrapper) so metrics folding that dispatches on the serving backend's
// concrete type still finds it.
func unwrapBackend(be backend.Backend) backend.Backend {
	for {
		u, ok := be.(interface{ Unwrap() backend.Backend })
		if !ok {
			return be
		}
		be = u.Unwrap()
	}
}

// CachedResults reports the result cache's current entry count.
func (rt *Runtime) CachedResults() int { return rt.cache.len() }

// Submit admits one statement and returns immediately with its future.
// Admission blocks while the queue is full; a closed runtime fails fast.
func (rt *Runtime) Submit(sql string, opts Options) *Handle {
	//llmqlint:detached -- no-cancellation convenience wrapper over SubmitContext
	return rt.SubmitContext(context.Background(), sql, opts)
}

// SubmitContext is Submit with a statement-scoped context. Canceling ctx
// cancels the statement wherever it is: still queued (it fails fast when a
// worker picks it up), between LLM stages, or parked in a batch window. The
// handle then resolves with an error wrapping ctx.Err(); shared state —
// coalesced batches, inflight dedup entries, result-cache reservations — is
// handed over cleanly, so concurrent statements are unaffected.
func (rt *Runtime) SubmitContext(ctx context.Context, sql string, opts Options) *Handle {
	prepStart := time.Now()
	p, hit, err := rt.prepared(sql)
	if err != nil {
		return failedHandle(err)
	}
	planState := "miss"
	if hit {
		planState = "hit"
	}
	return rt.submitPrepared(ctx, p, opts, planState, time.Since(prepStart))
}

// Exec is Submit + Wait: run one statement to completion.
func (rt *Runtime) Exec(sql string, opts Options) (*sqlfront.Result, error) {
	return rt.Submit(sql, opts).Wait()
}

// ExecContext is SubmitContext + Wait.
func (rt *Runtime) ExecContext(ctx context.Context, sql string, opts Options) (*sqlfront.Result, error) {
	return rt.SubmitContext(ctx, sql, opts).Wait()
}

// Stmt is a prepared statement bound to the runtime: Execute skips parse,
// bind, and planning on every run.
type Stmt struct {
	rt *Runtime
	p  *sqlfront.Prepared
}

// Prepare parses and plans sql once, through the runtime's plan cache:
// preparing the same text twice returns the same underlying plan.
func (rt *Runtime) Prepare(sql string) (*Stmt, error) {
	p, _, err := rt.prepared(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{rt: rt, p: p}, nil
}

// SQL returns the statement text.
func (s *Stmt) SQL() string { return s.p.SQL() }

// Submit admits the prepared statement and returns its future.
//
//llmqlint:detached -- no-cancellation convenience wrapper over SubmitContext
func (s *Stmt) Submit(opts Options) *Handle { return s.SubmitContext(context.Background(), opts) }

// SubmitContext is Submit with a statement-scoped context (see
// Runtime.SubmitContext for the cancellation semantics).
func (s *Stmt) SubmitContext(ctx context.Context, opts Options) *Handle {
	return s.rt.submitPrepared(ctx, s.p, opts, "prepared", 0)
}

// Execute runs the prepared statement to completion.
func (s *Stmt) Execute(opts Options) (*sqlfront.Result, error) {
	return s.Submit(opts).Wait()
}

// ExecuteContext is SubmitContext + Wait.
func (s *Stmt) ExecuteContext(ctx context.Context, opts Options) (*sqlfront.Result, error) {
	return s.SubmitContext(ctx, opts).Wait()
}

// Close drains the admission queue, waits for in-flight statements, and
// flushes any batch still waiting on its window. Statements submitted after
// Close fail immediately.
func (rt *Runtime) Close() {
	rt.closeMu.Lock()
	if rt.closed {
		rt.closeMu.Unlock()
		return
	}
	rt.closed = true
	rt.queue.close()
	rt.closeMu.Unlock()
	rt.wg.Wait()
	rt.batcher.flushAll()
}

// prepared resolves sql through the plan cache, reporting whether it was a
// cache hit (the trace's prepare span). The cache is bounded: past
// capacity an arbitrary entry is evicted — a plan is cheap to rebuild, so
// the bound (not the replacement policy) is what matters here.
func (rt *Runtime) prepared(sql string) (*sqlfront.Prepared, bool, error) {
	limit := rt.cfg.planCacheCapacity()
	rt.planMu.Lock()
	p, ok := rt.plans[sql]
	rt.planMu.Unlock()
	if ok {
		rt.c.planCacheHits.Add(1)
		return p, true, nil
	}
	p, err := rt.db.Prepare(sql)
	if err != nil {
		return nil, false, err
	}
	rt.c.planCacheMisses.Add(1)
	if limit <= 0 {
		return p, false, nil
	}
	rt.planMu.Lock()
	if prev, ok := rt.plans[sql]; ok {
		p = prev // lost a prepare race; share the winner
	} else {
		for len(rt.plans) >= limit {
			for k := range rt.plans {
				delete(rt.plans, k)
				break
			}
		}
		rt.plans[sql] = p
	}
	rt.planMu.Unlock()
	return p, false, nil
}

func (rt *Runtime) submitPrepared(ctx context.Context, p *sqlfront.Prepared, opts Options, planState string, prepDur time.Duration) *Handle {
	h := &Handle{done: make(chan struct{})}
	client := opts.Client.orDefault()
	class := opts.Class.orDefault()
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if rt.closed {
		h.err = errClosed
		close(h.done)
		return h
	}
	if b := rt.quotaFor(client); b != nil {
		if retry, ok := b.admit(time.Now()); !ok {
			// Over quota: reject before the statement takes a queue slot.
			// Not counted as submitted — the statement never entered the
			// pipeline, so submitted == done stays an invariant of admitted
			// work only.
			rt.c.quotaRejections.Add(1)
			rt.clientMu.Lock()
			rt.clientLocked(client).quotaRejections++
			rt.clientMu.Unlock()
			h.err = &QuotaError{Client: client, RetryAfter: retry}
			close(h.done)
			return h
		}
	}
	rt.c.statementsSubmitted.Add(1)
	j := &job{ctx: ctx, p: p, opts: opts, h: h, client: client, class: class,
		enqueuedAt: time.Now(), planState: planState, prepDur: prepDur}
	if err := rt.queue.push(ctx, j); err != nil {
		// Admission blocked on a full queue and the statement died waiting
		// (or the runtime closed underneath it): fail fast instead of
		// holding the caller (and backpressure slot) until a worker frees
		// up. Counted as done so submitted == done still holds once the
		// fleet drains.
		rt.c.statementsDone.Add(1)
		if errors.Is(err, errClosed) {
			rt.c.statementsFailed.Add(1)
		} else {
			rt.c.statementsCanceled.Add(1)
		}
		h.err = err
		close(h.done)
	}
	return h
}

func failedHandle(err error) *Handle {
	h := &Handle{done: make(chan struct{}), err: err}
	close(h.done)
	return h
}

// worker executes admitted statements until the queue closes. Each statement
// runs through sqlfront's planner with the runtime's stage executor hooked
// in, so every LLM stage it reaches goes through the result cache, inflight
// dedup, and the cross-query batcher. Statements whose context died while
// queued fail fast without touching the planner, so a cancellation storm
// never wedges the pool.
func (rt *Runtime) worker() {
	defer rt.wg.Done()
	for {
		j, ok := rt.queue.pop()
		if !ok {
			return
		}
		wait := time.Since(j.enqueuedAt)
		rt.waitFor(j.class).observe(wait)
		if err := j.ctx.Err(); err != nil {
			rt.c.statementsDone.Add(1)
			rt.c.statementsCanceled.Add(1)
			rt.settleClient(j, nil, wait, 0, true)
			j.h.summary = StmtSummary{Client: j.client, Class: j.class, QueueWait: wait,
				Wall: wait + j.prepDur, JCTSeconds: 0, LLMCalls: 0, PromptTokens: 0}
			j.h.trace = rt.finishTrace(rt.traceRoot(j, wait), j, wait+j.prepDur, err)
			j.h.err = err
			close(j.h.done)
			continue
		}
		cfg := rt.cfg.Exec
		cfg.Naive = j.opts.Naive
		if j.opts.Policy != "" {
			cfg.Policy = j.opts.Policy
		}
		if rt.cfg.Backend != nil {
			cfg.Backend = rt.cfg.Backend
		}
		if cfg.ReorderCache == nil {
			cfg.ReorderCache = rt.reorder
		}
		if cfg.PromptCache == nil {
			cfg.PromptCache = rt.prompts
		}
		cfg.StageRunner = rt.RunStage
		cfg.StageObserver = rt.observeStage
		root := rt.traceRoot(j, wait)
		si := &stmtInfo{client: j.client, class: j.class}
		start := time.Now()
		// The tenant identity also rides as backend.ClientInfo so a network
		// backend (cluster router → remote worker) attributes direct-path
		// batches to the originating client; the batcher re-derives it per
		// coalesced batch from its members.
		ectx := backend.WithClientInfo(j.ctx, backend.ClientInfo{Client: string(j.client), Class: string(j.class)})
		res, err := j.p.ExecContext(obs.With(withStmtInfo(ectx, si), root), cfg)
		jct := time.Since(start)
		rt.c.statementsDone.Add(1)
		canceled := false
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			rt.c.statementsCanceled.Add(1)
			canceled = true
		default:
			rt.c.statementsFailed.Add(1)
		}
		rt.settleClient(j, si, wait, jct, canceled)
		if b := rt.quotaFor(j.client); b != nil {
			b.debit(time.Now(), si.calls, si.tokens)
		}
		sum := StmtSummary{Client: j.client, Class: j.class, QueueWait: wait,
			Wall: j.prepDur + wait + jct, JCTSeconds: 0, LLMCalls: si.calls, PromptTokens: si.tokens}
		if res != nil {
			sum.JCTSeconds = res.JCT
		}
		j.h.summary = sum
		j.h.trace = rt.finishTrace(root, j, sum.Wall, err)
		j.h.res, j.h.err = res, err
		close(j.h.done)
	}
}

// traceRoot builds the recorder for one admitted statement — nil (the
// zero-cost path) unless the statement opted in with Options.Trace or the
// slow-query log is armed. The prepare and admission phases, measured
// before the recorder existed, are recorded retroactively.
func (rt *Runtime) traceRoot(j *job, wait time.Duration) *obs.Span {
	if !j.opts.Trace && rt.cfg.SlowQueryThreshold <= 0 {
		return nil
	}
	start := j.enqueuedAt.Add(-j.prepDur)
	root := obs.NewSpanAt("statement", start)
	root.Set("client", string(j.client))
	root.Set("class", string(j.class))
	root.ChildAt("prepare", start, j.prepDur).Set("planCache", j.planState)
	adm := root.ChildAt("admission", j.enqueuedAt, wait)
	if !rt.cfg.FIFOAdmission {
		adm.Set("drrRounds", j.drrRounds)
	}
	return root
}

// finishTrace closes and renders one settled statement's trace, retains it
// in the ring when the statement asked for it or crossed the slow-query
// threshold, and emits the slow-query log line. Returns the trace for the
// handle (nil when recording was only armed for the slow log and the
// statement was fast).
func (rt *Runtime) finishTrace(root *obs.Span, j *job, wall time.Duration, err error) *obs.Trace {
	if root == nil {
		return nil
	}
	root.End()
	slow := rt.cfg.SlowQueryThreshold > 0 && wall >= rt.cfg.SlowQueryThreshold
	if !j.opts.Trace && !slow {
		return nil
	}
	start := j.enqueuedAt.Add(-j.prepDur)
	tr := &obs.Trace{
		SQL:         j.p.SQL(),
		Client:      string(j.client),
		Class:       string(j.class),
		Start:       start,
		WallSeconds: wall.Seconds(),
		Slow:        slow,
		Spans:       root.Tree(start),
	}
	if err != nil {
		tr.Error = err.Error()
	}
	rt.traces.Add(tr)
	if slow && rt.cfg.SlowLogger != nil {
		rt.cfg.SlowLogger.Warn("slow statement",
			"sql", tr.SQL,
			"client", tr.Client,
			"class", tr.Class,
			"wallMs", float64(wall.Microseconds())/1e3,
			"error", tr.Error)
	}
	return tr
}

// settleClient folds one finished (or queue-canceled) statement into its
// client's accounting row. si is nil when the statement died before running.
func (rt *Runtime) settleClient(j *job, si *stmtInfo, wait, jct time.Duration, canceled bool) {
	rt.clientMu.Lock()
	cc := rt.clientLocked(j.client)
	cc.statements++
	if canceled {
		cc.canceled++
	}
	if si != nil {
		cc.llmCalls += si.calls
		cc.promptTokens += si.tokens
	}
	cc.jctMicros += jct.Microseconds()
	cc.queueWaitMicros += wait.Microseconds()
	rt.clientMu.Unlock()
}
