package runtime

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sqlfront"
)

// TestStressManyClients is the satellite stress test: many goroutines ×
// many statements through one runtime, asserting every concurrent result is
// bit-identical to its sequential reference and the accounting stays
// coherent. CI runs this under -race, which is the point: it exercises the
// registry, plan cache, result cache, inflight table, and batcher from
// every direction at once.
func TestStressManyClients(t *testing.T) {
	const (
		clients   = 8
		perClient = 12
		rows      = 30
	)
	db := newDB(rows)
	want, seqCalls, _ := seqBaseline(t, db, dashboardStatements)

	rt := New(db, Config{
		Workers:     6,
		QueueDepth:  16,
		BatchWindow: 5 * time.Millisecond,
	})
	defer rt.Close()

	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				idx := (c + i) % len(dashboardStatements)
				res, err := rt.Exec(dashboardStatements[idx], Options{})
				if err != nil {
					errs <- err
					return
				}
				// sameRelation uses t.Errorf, which is goroutine-safe.
				sameRelation(t, dashboardStatements[idx], want[idx], res)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := rt.Metrics()
	if got, want := m.StatementsDone, int64(clients*perClient); got != want {
		t.Errorf("statements done = %d, want %d", got, want)
	}
	if m.StatementsFailed != 0 {
		t.Errorf("failed statements = %d", m.StatementsFailed)
	}
	// Every statement repeats many times across clients; the result cache
	// (plus inflight dedup) must keep total model calls at most one
	// sequential pass over the distinct statements — and far below the
	// clients × perClient naive total.
	if m.LLMCalls > seqCalls {
		t.Errorf("model calls = %d, want <= %d (one sequential pass)", m.LLMCalls, seqCalls)
	}
	if m.CacheHits == 0 {
		t.Error("no result-cache hits in a workload full of repeats")
	}
	if got, want := m.PlanCacheMisses, int64(len(dashboardStatements)); got != want {
		t.Errorf("plan cache misses = %d, want %d (one per distinct statement)", got, want)
	}
	// hits + misses + within-stage dup rows + inflight piggybacks must
	// account for every row of every stage the runtime saw.
	lookups := m.CacheHits + m.CacheMisses + m.InflightDeduped + m.RowsDeduped
	if lookups == 0 {
		t.Error("no cache lookups recorded")
	}
}

// TestStressRegistrationDuringExecution re-registers tables while
// statements execute against them. Execution binds against a registry
// snapshot, so every statement must see a coherent table (either the old or
// the new registration, never a mix) and return one of the two valid
// relations; under -race this doubles as the registry's concurrency audit.
func TestStressRegistrationDuringExecution(t *testing.T) {
	db := newDB(15)
	sql := `SELECT region, COUNT(*) AS n FROM tickets GROUP BY region ORDER BY region`
	small, err := db.Exec(sql, sqlfront.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bigDB := sqlfront.NewDB()
	bigDB.Register("tickets", ticketsTable(30))
	big, err := bigDB.Exec(sql, sqlfront.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}

	rt := New(db, Config{Workers: 4, CacheCapacity: -1, BatchWindow: -1})
	defer rt.Close()
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.Register("tickets", ticketsTable(15+15*(i%2)))
		}
	}()
	var clients sync.WaitGroup
	for g := 0; g < 4; g++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for i := 0; i < 20; i++ {
				res, err := rt.Exec(sql, Options{})
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(res.Rows, small.Rows) && !reflect.DeepEqual(res.Rows, big.Rows) {
					t.Errorf("torn relation: %v", res.Rows)
					return
				}
			}
		}()
	}
	clients.Wait()
	close(stop)
	churn.Wait()
}

// TestStressRepeatedPrepared hammers a single prepared statement from many
// goroutines; the plan is shared, so this doubles as a race check on
// Prepared's immutable execution state.
func TestStressRepeatedPrepared(t *testing.T) {
	db := newDB(20)
	sql := dashboardStatements[0]
	solo, err := db.Exec(sql, sqlfront.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}

	rt := New(db, Config{Workers: 4, BatchWindow: 2 * time.Millisecond})
	defer rt.Close()
	stmt, err := rt.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := stmt.Execute(Options{})
				if err != nil {
					t.Error(err)
					return
				}
				sameRelation(t, sql, solo, res)
			}
		}()
	}
	wg.Wait()
	if m := rt.Metrics(); m.LLMCalls > int64(solo.LLMCalls) {
		t.Errorf("model calls = %d, want <= %d", m.LLMCalls, solo.LLMCalls)
	}
}
