package runtime

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/sqlfront"
	"repro/internal/table"
)

// ticketsTable builds a deterministic ad-hoc relation. Its name is not a
// bundled dataset, so the simulated oracle's field-position coefficient is
// zero and answers depend on row content only — concurrent, batched, and
// sequential executions must then return bit-identical relations.
func ticketsTable(rows int) *table.Table {
	t := table.New("ticket_id", "region", "request", "response")
	regions := []string{"emea", "amer", "apac"}
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			fmt.Sprintf("T-%04d", i),
			regions[i%len(regions)],
			fmt.Sprintf("my device model %d stopped working after the update", i%7),
			fmt.Sprintf("we suggest resetting configuration profile %d and retrying", i%5),
		)
	}
	return t
}

func newDB(rows int) *sqlfront.DB {
	db := sqlfront.NewDB()
	db.Register("tickets", ticketsTable(rows))
	return db
}

// dashboardStatements is a small workload mixing LLM filters, projections,
// aggregates, and plain predicates. Several statements share the same LLM
// call over different plain filters, which is what cross-query batching and
// inflight dedup exploit.
var dashboardStatements = []string{
	`SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS resolved
	 FROM tickets WHERE region = 'emea'`,
	`SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS resolved
	 FROM tickets WHERE region = 'amer'`,
	`SELECT ticket_id FROM tickets
	 WHERE LLM('Is the request about a hardware fault?', request) = 'Yes' AND region <> 'apac'`,
	`SELECT region, COUNT(*) AS n, AVG(LLM('Rate the anger of this request from 1 to 5.', request)) AS anger
	 FROM tickets GROUP BY region ORDER BY n DESC, region`,
	`SELECT region, COUNT(*) AS n FROM tickets
	 GROUP BY region HAVING COUNT(*) > 3 ORDER BY region`,
}

func seqBaseline(t testing.TB, db *sqlfront.DB, stmts []string) (results []*sqlfront.Result, calls int64, jct float64) {
	t.Helper()
	for _, sql := range stmts {
		res, err := db.Exec(sql, sqlfront.ExecConfig{})
		if err != nil {
			t.Fatalf("sequential %q: %v", sql, err)
		}
		results = append(results, res)
		calls += int64(res.LLMCalls)
		jct += res.JCT
	}
	return results, calls, jct
}

func sameRelation(t *testing.T, sql string, want, got *sqlfront.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Columns, got.Columns) {
		t.Errorf("%q: columns differ\nwant %v\ngot  %v", sql, want.Columns, got.Columns)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Errorf("%q: rows differ\nwant %v\ngot  %v", sql, want.Rows, got.Rows)
	}
}

// TestRuntimeMatchesSequential runs the workload once sequentially through
// sqlfront and once concurrently through the runtime, and requires identical
// result relations statement by statement.
func TestRuntimeMatchesSequential(t *testing.T) {
	db := newDB(36)
	want, _, _ := seqBaseline(t, db, dashboardStatements)

	rt := New(db, Config{Workers: len(dashboardStatements), BatchWindow: 40 * time.Millisecond})
	defer rt.Close()
	handles := make([]*Handle, len(dashboardStatements))
	for i, sql := range dashboardStatements {
		handles[i] = rt.Submit(sql, Options{})
	}
	for i, h := range handles {
		got, err := h.Wait()
		if err != nil {
			t.Fatalf("concurrent %q: %v", dashboardStatements[i], err)
		}
		sameRelation(t, dashboardStatements[i], want[i], got)
	}
}

// TestResultCacheAccounting re-runs one statement and requires the second
// run to be served entirely from the result cache: zero model calls, zero
// added JCT, and hit/miss counters that add up.
func TestResultCacheAccounting(t *testing.T) {
	db := newDB(24)
	rt := New(db, Config{Workers: 2})
	defer rt.Close()
	sql := dashboardStatements[0]

	first, err := rt.Exec(sql, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.LLMCalls == 0 {
		t.Fatal("first run made no model calls")
	}
	m1 := rt.Metrics()
	if m1.CacheMisses != int64(first.LLMCalls) {
		t.Errorf("misses = %d, want %d (every first-run call is a miss)", m1.CacheMisses, first.LLMCalls)
	}
	if m1.CacheHits != 0 {
		t.Errorf("hits after first run = %d", m1.CacheHits)
	}
	if rt.CachedResults() != first.LLMCalls {
		t.Errorf("cached entries = %d, want %d", rt.CachedResults(), first.LLMCalls)
	}

	second, err := rt.Exec(sql, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, sql, first, second)
	if second.LLMCalls != 0 {
		t.Errorf("second run made %d model calls, want 0", second.LLMCalls)
	}
	if second.JCT != 0 {
		t.Errorf("second run JCT = %v, want 0 (no engine run)", second.JCT)
	}
	m2 := rt.Metrics()
	if m2.CacheHits != int64(first.LLMCalls) {
		t.Errorf("hits = %d, want %d", m2.CacheHits, first.LLMCalls)
	}
	if m2.LLMCalls != m1.LLMCalls {
		t.Errorf("model calls grew from %d to %d on a fully cached run", m1.LLMCalls, m2.LLMCalls)
	}
	if m2.PlanCacheHits == 0 {
		t.Error("second run did not hit the plan cache")
	}
}

// TestInflightDedup disables the result cache and fires identical
// statements concurrently: inflight dedup alone must keep the model-call
// count strictly below K independent runs.
func TestInflightDedup(t *testing.T) {
	db := newDB(18)
	sql := dashboardStatements[2]
	solo, err := db.Exec(sql, sqlfront.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}

	const k = 5
	rt := New(db, Config{
		Workers:       k,
		BatchWindow:   400 * time.Millisecond,
		CacheCapacity: -1, // only inflight dedup may collapse calls
	})
	defer rt.Close()
	handles := make([]*Handle, k)
	for i := range handles {
		handles[i] = rt.Submit(sql, Options{})
	}
	for _, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		sameRelation(t, sql, solo, res)
	}
	m := rt.Metrics()
	if m.LLMCalls >= int64(k*solo.LLMCalls) {
		t.Errorf("model calls = %d, want < %d (no dedup happened)", m.LLMCalls, k*solo.LLMCalls)
	}
	if m.InflightDeduped == 0 {
		t.Error("no inflight dedup recorded for identical concurrent statements")
	}
	if rt.CachedResults() != 0 {
		t.Errorf("result cache disabled but holds %d entries", rt.CachedResults())
	}
}

// TestPreparedStatements covers the Prepare/Execute path: repeated Execute
// reuses the plan, and re-registering a table transparently re-prepares.
func TestPreparedStatements(t *testing.T) {
	db := newDB(12)
	rt := New(db, Config{Workers: 2})
	defer rt.Close()

	stmt, err := rt.Prepare(dashboardStatements[3])
	if err != nil {
		t.Fatal(err)
	}
	first, err := stmt.Execute(Options{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := stmt.Execute(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, stmt.SQL(), first, again)
	if m := rt.Metrics(); m.PlanCacheMisses != 1 {
		t.Errorf("plan cache misses = %d, want 1", m.PlanCacheMisses)
	}

	// A schema-compatible re-registration must be picked up (new rows), not
	// served from the stale binding.
	db.Register("tickets", ticketsTable(20))
	bigger, err := stmt.Execute(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var nFirst, nBigger int
	fmt.Sscan(first.Rows[0][1], &nFirst)
	fmt.Sscan(bigger.Rows[0][1], &nBigger)
	if nBigger <= nFirst {
		t.Errorf("after re-registration largest group = %d, want > %d", nBigger, nFirst)
	}
}

// TestPlanCacheBounded evicts past capacity instead of growing without
// limit, and evicted statements still execute (they just re-prepare).
func TestPlanCacheBounded(t *testing.T) {
	db := newDB(6)
	rt := New(db, Config{Workers: 1, PlanCacheCapacity: 2})
	defer rt.Close()
	stmts := []string{
		`SELECT ticket_id FROM tickets WHERE region = 'emea'`,
		`SELECT ticket_id FROM tickets WHERE region = 'amer'`,
		`SELECT ticket_id FROM tickets WHERE region = 'apac'`,
	}
	for round := 0; round < 3; round++ {
		for _, sql := range stmts {
			if _, err := rt.Exec(sql, Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	rt.planMu.Lock()
	n := len(rt.plans)
	rt.planMu.Unlock()
	if n > 2 {
		t.Errorf("plan cache holds %d entries, capacity 2", n)
	}
	m := rt.Metrics()
	if m.PlanCacheMisses < 3 {
		t.Errorf("plan cache misses = %d, want >= 3", m.PlanCacheMisses)
	}
	if m.StatementsDone != 9 {
		t.Errorf("statements done = %d, want 9", m.StatementsDone)
	}
}

// TestNaivePlannedToggle checks the per-statement A/B switch: the naive plan
// must cost at least as many model calls and return the same relation.
func TestNaivePlannedToggle(t *testing.T) {
	db := newDB(24)
	rt := New(db, Config{Workers: 2, CacheCapacity: -1})
	defer rt.Close()
	sql := `SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS ok
	        FROM tickets
	        WHERE region = 'emea' AND LLM('Did the response resolve the request?', request, response) = 'Yes'`

	planned, err := rt.Exec(sql, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := rt.Exec(sql, Options{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, sql, planned, naive)
	if naive.LLMCalls <= planned.LLMCalls {
		t.Errorf("naive calls = %d, planned = %d; naive should pay more", naive.LLMCalls, planned.LLMCalls)
	}
}

// TestSubmitAfterClose fails fast instead of hanging.
func TestSubmitAfterClose(t *testing.T) {
	rt := New(newDB(4), Config{Workers: 1})
	rt.Close()
	if _, err := rt.Exec(dashboardStatements[0], Options{}); err == nil {
		t.Fatal("Exec on a closed runtime succeeded")
	}
	rt.Close() // idempotent
}

// TestErrorStatement propagates planner errors through the handle.
func TestErrorStatement(t *testing.T) {
	rt := New(newDB(4), Config{Workers: 1})
	defer rt.Close()
	if _, err := rt.Exec(`SELECT nope FROM tickets`, Options{}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := rt.Exec(`SELECT * FROM missing`, Options{}); err == nil {
		t.Fatal("unknown table accepted")
	}
	if m := rt.Metrics(); m.StatementsFailed != 0 {
		// Both failures happen at prepare time, before admission.
		t.Errorf("failed statements = %d, want 0 (prepare-time errors)", m.StatementsFailed)
	}
}
