package runtime

import (
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// counters is the runtime's hot-path accounting. Everything is atomic so
// workers, batch flushes, and metric readers never contend on a lock.
type counters struct {
	statementsSubmitted atomic.Int64
	statementsDone      atomic.Int64
	statementsFailed    atomic.Int64
	statementsCanceled  atomic.Int64
	abandonedResolved   atomic.Int64

	planCacheHits   atomic.Int64
	planCacheMisses atomic.Int64

	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	inflightDeduped atomic.Int64
	rowsDeduped     atomic.Int64

	batches         atomic.Int64
	coalescedRuns   atomic.Int64
	coalescedRows   atomic.Int64
	llmCalls        atomic.Int64
	directStages    atomic.Int64
	jctMicros       atomic.Int64
	solverMicros    atomic.Int64
	promptTokens    atomic.Int64
	matchedTokens   atomic.Int64
	prefilledTokens atomic.Int64

	quotaRejections       atomic.Int64
	batchWindowsShortened atomic.Int64
}

// Metrics is a point-in-time snapshot of the runtime's accounting. The
// JSON form rides in every /v1/sql response.
type Metrics struct {
	// StatementsSubmitted / StatementsDone / StatementsFailed /
	// StatementsCanceled count statements through the admission queue
	// (failed and canceled are disjoint subsets of done; canceled means the
	// statement's context died — context.Canceled or DeadlineExceeded —
	// rather than execution erroring).
	StatementsSubmitted int64 `json:"statementsSubmitted"`
	StatementsDone      int64 `json:"statementsDone"`
	StatementsFailed    int64 `json:"statementsFailed"`
	StatementsCanceled  int64 `json:"statementsCanceled"`
	// AbandonedResolved counts result-cache reservations a canceled
	// statement left behind that the detached resolver settled when its
	// batch landed — the counter that proves cancellation leaks nothing.
	AbandonedResolved int64 `json:"abandonedResolved"`

	// PlanCacheHits / PlanCacheMisses count statement preparations served
	// from (or inserted into) the parse+plan cache.
	PlanCacheHits   int64 `json:"planCacheHits"`
	PlanCacheMisses int64 `json:"planCacheMisses"`

	// CacheHits / CacheMisses count per-row result-cache lookups.
	// InflightDeduped counts rows that piggybacked on an identical call
	// already being computed by a concurrent statement; RowsDeduped counts
	// duplicate rows collapsed within one stage.
	CacheHits       int64 `json:"cacheHits"`
	CacheMisses     int64 `json:"cacheMisses"`
	InflightDeduped int64 `json:"inflightDeduped"`
	RowsDeduped     int64 `json:"rowsDeduped"`

	// Batches counts engine runs; CoalescedRuns those that merged rows from
	// more than one statement, CoalescedRows the rows that rode in them.
	Batches       int64 `json:"batches"`
	CoalescedRuns int64 `json:"coalescedRuns"`
	CoalescedRows int64 `json:"coalescedRows"`
	// LLMCalls counts rows actually sent to the serving engine — the number
	// the result cache and both dedup layers exist to minimize.
	LLMCalls int64 `json:"llmCalls"`
	// DirectStages counts stages executed outside the cache/batch path
	// (specs without content row keys cannot be cached).
	DirectStages int64 `json:"directStages"`

	// ReorderCacheHits / ReorderCacheMisses count GGR reorder-cache lookups
	// by the stage scheduler; ReorderSolves the solver runs actually
	// performed (misses that reached GGR). A repeated batch window shows up
	// as hits > 0 with solves pinned.
	ReorderCacheHits   int64 `json:"reorderCacheHits"`
	ReorderCacheMisses int64 `json:"reorderCacheMisses"`
	ReorderSolves      int64 `json:"reorderSolves"`
	// PromptCacheHits / PromptCacheMisses count memoized prompt
	// tokenizations (prefixes and row payloads shared across stages and
	// batch windows).
	PromptCacheHits   int64 `json:"promptCacheHits"`
	PromptCacheMisses int64 `json:"promptCacheMisses"`

	// ShardedBatches / ShardRuns / ShardJCTSeconds mirror the serving
	// backend's data-parallel accounting when it is a backend.Sharded:
	// batches split across engine replicas, sub-batches dispatched, and the
	// summed per-shard virtual JCT (ShardJCTSeconds / ShardRuns is the mean
	// per-shard latency; TotalJCT counts only the slowest shard of each
	// batch, so the difference is the parallel speedup).
	ShardedBatches  int64   `json:"shardedBatches"`
	ShardRuns       int64   `json:"shardRuns"`
	ShardJCTSeconds float64 `json:"shardJctSeconds"`

	// TotalJCT / TotalSolverSeconds sum virtual serving time and scheduling
	// time over engine runs, each run counted exactly once (per-statement
	// results instead attribute a shared batch to every participant).
	TotalJCT           float64 `json:"totalJctSeconds"`
	TotalSolverSeconds float64 `json:"totalSolverSeconds"`
	// PromptTokens / MatchedTokens / PrefilledTokens aggregate the engines'
	// prompt accounting; MatchedTokens/PromptTokens is the fleet-wide prefix
	// cache hit rate.
	PromptTokens    int64 `json:"promptTokens"`
	MatchedTokens   int64 `json:"matchedTokens"`
	PrefilledTokens int64 `json:"prefilledTokens"`

	// QuotaRejections counts statements refused admission because their
	// client's quota buckets were overdrawn (the /v1 429 path). They are NOT
	// part of StatementsSubmitted — a rejected statement never entered the
	// pipeline.
	QuotaRejections int64 `json:"quotaRejections"`
	// BatchWindowsShortened counts batch windows whose close was pulled
	// forward by a later joiner with a nearer horizon — an interactive
	// statement landing in a batch-class window, or a statement deadline
	// inside the window. It is the observable proof the batcher is SLO-aware.
	BatchWindowsShortened int64 `json:"batchWindowsShortened"`

	// Clients breaks the fleet accounting down by tenant; nil until the
	// first statement is admitted. Keys are normalized ClientIDs (anonymous
	// traffic accounts under DefaultClient).
	Clients map[ClientID]ClientMetrics `json:"clients,omitempty"`
	// QueueWait is the admission-queue wait histogram by service class; nil
	// until a statement has been through the queue. Under a fair scheduler
	// the interactive histogram stays low-bucketed even when the batch one
	// grows a tail — the QoS property in one map.
	QueueWait map[Class]WaitHistogram `json:"queueWait,omitempty"`
	// Stages is the per-StageKey rollup of observed execution statistics —
	// count, rows, latency (mean/p99), observed selectivity, cache hit rate
	// — keyed by a short fingerprint hash. It is the feedback store seed
	// for learned optimization (ROADMAP item 5): the observed selectivities
	// and latencies a future planner re-ranks cascades with. Nil until an
	// LLM stage has executed.
	Stages map[string]obs.StageRollup `json:"stages,omitempty"`

	// Cluster is the distributed tier's fleet accounting — per-worker
	// batches/retries/errors/markdowns, ring moves, hot-stage replications —
	// present only when the serving backend is a cluster.Router.
	Cluster *cluster.Metrics `json:"cluster,omitempty"`
}

// ClientMetrics is one client's slice of the fleet accounting.
//
//llmqlint:accounting
type ClientMetrics struct {
	// Statements counts the client's admitted statements that reached a
	// terminal state; Canceled the subset whose context died; QuotaRejections
	// the refused admissions (not part of Statements).
	Statements      int64 `json:"statements"`
	Canceled        int64 `json:"canceled"`
	QuotaRejections int64 `json:"quotaRejections"`
	// LLMCalls / PromptTokens are the model rows and prompt tokens the
	// client's statements were charged — coalesced batches are attributed
	// proportionally by row share, so the fleet total is conserved.
	LLMCalls     int64 `json:"llmCalls"`
	PromptTokens int64 `json:"promptTokens"`
	// JCTSeconds / QueueWaitSeconds sum execution and admission-queue time
	// over the client's statements.
	JCTSeconds       float64 `json:"jctSeconds"`
	QueueWaitSeconds float64 `json:"queueWaitSeconds"`
}

// WaitHistogram is a fixed-bucket admission-wait distribution. Buckets are
// cumulative-exclusive counts (a 5ms wait lands in Le10ms only).
//
//llmqlint:accounting
type WaitHistogram struct {
	Count       int64 `json:"count"`
	TotalMicros int64 `json:"totalMicros"`
	Le1ms       int64 `json:"le1ms"`
	Le10ms      int64 `json:"le10ms"`
	Le100ms     int64 `json:"le100ms"`
	Le1s        int64 `json:"le1s"`
	Over1s      int64 `json:"over1s"`
}

// HitRate is the fleet-wide prompt-token-weighted prefix-cache hit rate.
func (m Metrics) HitRate() float64 {
	if m.PromptTokens == 0 {
		return 0
	}
	return float64(m.MatchedTokens) / float64(m.PromptTokens)
}

func (c *counters) snapshot() Metrics {
	return Metrics{
		StatementsSubmitted: c.statementsSubmitted.Load(),
		StatementsDone:      c.statementsDone.Load(),
		StatementsFailed:    c.statementsFailed.Load(),
		StatementsCanceled:  c.statementsCanceled.Load(),
		AbandonedResolved:   c.abandonedResolved.Load(),
		PlanCacheHits:       c.planCacheHits.Load(),
		PlanCacheMisses:     c.planCacheMisses.Load(),
		CacheHits:           c.cacheHits.Load(),
		CacheMisses:         c.cacheMisses.Load(),
		InflightDeduped:     c.inflightDeduped.Load(),
		RowsDeduped:         c.rowsDeduped.Load(),
		Batches:             c.batches.Load(),
		CoalescedRuns:       c.coalescedRuns.Load(),
		CoalescedRows:       c.coalescedRows.Load(),
		LLMCalls:            c.llmCalls.Load(),
		DirectStages:        c.directStages.Load(),
		TotalJCT:            float64(c.jctMicros.Load()) / 1e6,
		TotalSolverSeconds:  float64(c.solverMicros.Load()) / 1e6,
		PromptTokens:        c.promptTokens.Load(),
		MatchedTokens:       c.matchedTokens.Load(),
		PrefilledTokens:     c.prefilledTokens.Load(),

		QuotaRejections:       c.quotaRejections.Load(),
		BatchWindowsShortened: c.batchWindowsShortened.Load(),
	}
}
