package runtime

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/sqlfront"
)

// TestCancelSurvivorCompletes is the inflight-poisoning regression test:
// two identical statements run concurrently, the first (which owns every
// inflight-dedup entry) is canceled while parked in the batch window, and
// the second — which subscribed to the first's entries — must still
// complete with the correct relation and coherent accounting. The canceled
// owner's result-cache reservations must be settled, not leaked: a third
// run afterwards is served entirely from cache.
func TestCancelSurvivorCompletes(t *testing.T) {
	db := newDB(24)
	sql := dashboardStatements[0]
	solo, err := db.Exec(sql, sqlfront.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}

	rt := New(db, Config{Workers: 2, BatchWindow: 800 * time.Millisecond})
	defer rt.Close()

	ctx, cancel := context.WithCancel(context.Background())
	hA := rt.SubmitContext(ctx, sql, Options{})
	time.Sleep(100 * time.Millisecond) // A classifies rows, owns them, parks in the window
	hB := rt.SubmitContext(context.Background(), sql, Options{})
	time.Sleep(100 * time.Millisecond) // B subscribes to A's inflight entries
	cancel()

	if _, errA := hA.Wait(); !errors.Is(errA, context.Canceled) {
		t.Fatalf("canceled statement returned %v, want context.Canceled", errA)
	}
	resB, errB := hB.Wait()
	if errB != nil {
		t.Fatalf("survivor failed: %v", errB)
	}
	sameRelation(t, sql, solo, resB)
	if resB.LLMCalls != 0 {
		t.Errorf("survivor reported %d model calls, want 0 (it only subscribed)", resB.LLMCalls)
	}

	m := rt.Metrics()
	if m.StatementsCanceled != 1 {
		t.Errorf("statements canceled = %d, want 1", m.StatementsCanceled)
	}
	if m.StatementsFailed != 0 {
		t.Errorf("statements failed = %d, want 0 (cancellation is not failure)", m.StatementsFailed)
	}
	if m.InflightDeduped == 0 {
		t.Error("survivor never subscribed; the test raced its setup")
	}
	if m.AbandonedResolved == 0 {
		t.Error("no abandoned reservations resolved; the detached resolver never ran")
	}

	// The canceled statement's reservations were committed when its batch
	// landed: a rerun must be pure cache hits, no model calls, same rows.
	resC, errC := rt.Exec(sql, Options{})
	if errC != nil {
		t.Fatal(errC)
	}
	sameRelation(t, sql, solo, resC)
	if resC.LLMCalls != 0 {
		t.Errorf("rerun made %d model calls, want 0 (reservations should have committed)", resC.LLMCalls)
	}
}

// TestCancelDeadlineExceeded covers the deadline flavor: a statement whose
// context expires mid-wait returns DeadlineExceeded and counts as canceled.
// The deadline has to expire while the statement is still queued: once it
// executes, the SLO-aware batcher closes windows early for deadlined members
// (see TestQoSDeadlineClosesWindowEarly), so a parked statement would finish
// in time instead of expiring.
func TestCancelDeadlineExceeded(t *testing.T) {
	db := newDB(24)
	rt := New(db, Config{Workers: 1, BatchWindow: 600 * time.Millisecond})
	defer rt.Close()

	// Occupy the single worker (parked in its long batch window), then
	// submit with a deadline that expires before the worker frees up.
	blocker := rt.Submit(dashboardStatements[1], Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	_, err := rt.ExecContext(ctx, dashboardStatements[0], Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := blocker.Wait(); err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
	if m := rt.Metrics(); m.StatementsCanceled != 1 {
		t.Errorf("statements canceled = %d, want 1", m.StatementsCanceled)
	}
}

// TestCancelBeforePickup cancels statements still sitting in the admission
// queue: the worker must fail them fast without running the planner.
func TestCancelBeforePickup(t *testing.T) {
	db := newDB(12)
	rt := New(db, Config{Workers: 1, QueueDepth: 8, BatchWindow: 200 * time.Millisecond})
	defer rt.Close()

	// Occupy the single worker, then queue a statement and cancel it before
	// the worker can reach it.
	blocker := rt.Submit(dashboardStatements[0], Options{})
	ctx, cancel := context.WithCancel(context.Background())
	queued := rt.SubmitContext(ctx, dashboardStatements[1], Options{})
	cancel()
	if _, err := queued.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-then-canceled statement returned %v, want context.Canceled", err)
	}
	if _, err := blocker.Wait(); err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
}

// TestCancelUnblocksFullQueue: SubmitContext must honor ctx while blocked
// on a full admission queue — a canceled caller gets its handle resolved
// immediately instead of waiting for a worker slot.
func TestCancelUnblocksFullQueue(t *testing.T) {
	db := newDB(24)
	rt := New(db, Config{Workers: 1, QueueDepth: 1, BatchWindow: 300 * time.Millisecond})
	defer rt.Close()

	// One statement occupies the worker (parked in its batch window), one
	// fills the queue; the third submission blocks on admission.
	running := rt.Submit(dashboardStatements[0], Options{})
	queued := rt.Submit(dashboardStatements[1], Options{})
	ctx, cancel := context.WithCancel(context.Background())
	blockedDone := make(chan *Handle, 1)
	go func() { blockedDone <- rt.SubmitContext(ctx, dashboardStatements[2], Options{}) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case h := <-blockedDone:
		if _, err := h.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked submission returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SubmitContext stayed blocked on a full queue after cancellation")
	}
	for _, h := range []*Handle{running, queued} {
		if _, err := h.Wait(); err != nil {
			t.Fatalf("unrelated statement failed: %v", err)
		}
	}
	m := rt.Metrics()
	if m.StatementsCanceled != 1 {
		t.Errorf("statements canceled = %d, want 1", m.StatementsCanceled)
	}
	if m.StatementsSubmitted != m.StatementsDone {
		t.Errorf("submitted %d != done %d after drain", m.StatementsSubmitted, m.StatementsDone)
	}
}

// TestStressCancelStorm is the acceptance stress: many clients submit with
// contexts canceled at random points while others run to completion. The
// pool must drain (no deadlock), canceled statements must return a context
// error, survivors must return correct relations, and the runtime must
// still serve fresh statements afterwards. CI runs this under -race.
func TestStressCancelStorm(t *testing.T) {
	const clients = 10
	const perClient = 8
	db := newDB(30)
	want, _, _ := seqBaseline(t, db, dashboardStatements)

	rt := New(db, Config{Workers: 4, QueueDepth: 8, BatchWindow: 3 * time.Millisecond})
	defer rt.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				idx := (c + i) % len(dashboardStatements)
				ctx, cancel := context.WithCancel(context.Background())
				h := rt.SubmitContext(ctx, dashboardStatements[idx], Options{})
				if rng.Intn(2) == 0 {
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					cancel()
				}
				res, err := h.Wait()
				cancel()
				switch {
				case err == nil:
					sameRelation(t, dashboardStatements[idx], want[idx], res)
				case errors.Is(err, context.Canceled):
					// expected for the canceled half
				default:
					t.Errorf("statement %d/%d: unexpected error %v", c, i, err)
				}
			}
		}(c)
	}
	wg.Wait()

	m := rt.Metrics()
	if m.StatementsDone != int64(clients*perClient) {
		t.Errorf("statements done = %d, want %d (pool wedged?)", m.StatementsDone, clients*perClient)
	}
	if m.StatementsFailed != 0 {
		t.Errorf("statements failed = %d, want 0", m.StatementsFailed)
	}

	// The runtime must still be fully serviceable after the storm.
	for i, sql := range dashboardStatements {
		res, err := rt.Exec(sql, Options{})
		if err != nil {
			t.Fatalf("post-storm %q: %v", sql, err)
		}
		sameRelation(t, sql, want[i], res)
	}
}
