package runtime

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/obs"
	"repro/internal/sqlfront"
	"repro/internal/table"
)

// joinDB extends the tickets fixture with a small dimension table so a
// statement can exercise the join path under tracing.
func joinDB(rows int) *sqlfront.DB {
	db := newDB(rows)
	dim := table.New("region", "tier")
	dim.MustAppendRow("emea", "gold")
	dim.MustAppendRow("amer", "silver")
	dim.MustAppendRow("apac", "bronze")
	db.Register("regions", dim)
	return db
}

// TestTraceConservation is the tentpole invariant: a traced statement's span
// tree must account for exactly the model calls, prompt tokens, and virtual
// JCT the statement was charged — through plan cache, admission, the WHERE
// cascade, the coalescing batch window, and a sharded backend.
func TestTraceConservation(t *testing.T) {
	db := joinDB(30)
	sh, err := backend.NewSharded(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	rt := New(db, Config{Workers: 4, BatchWindow: 10 * time.Millisecond, Backend: sh})
	defer rt.Close()

	joinStmt := `SELECT t.ticket_id, r.tier, LLM('Summarize the request.', t.request) AS s
	             FROM tickets AS t JOIN regions AS r ON t.region = r.region
	             WHERE LLM('Is the request about a hardware fault?', t.request) = 'Yes'`
	stmts := []string{joinStmt, dashboardStatements[0], dashboardStatements[1]}

	handles := make([]*Handle, len(stmts))
	for i, sql := range stmts {
		handles[i] = rt.Submit(sql, Options{Trace: true})
	}
	for i, h := range handles {
		if _, err := h.Wait(); err != nil {
			t.Fatalf("statement %d: %v", i, err)
		}
	}

	// Every traced statement conserves, including the two dashboards whose
	// shared LLM call coalesces (proportional token attribution) or dedups.
	for i, h := range handles {
		tr := h.Trace()
		if tr == nil || tr.Spans == nil {
			t.Fatalf("statement %d: no trace recorded", i)
		}
		sum := h.Summary()
		calls, tokens, jct := tr.Spans.Totals()
		if calls != sum.LLMCalls {
			t.Errorf("statement %d: trace calls = %d, charged %d", i, calls, sum.LLMCalls)
		}
		if tokens != sum.PromptTokens {
			t.Errorf("statement %d: trace tokens = %d, charged %d", i, tokens, sum.PromptTokens)
		}
		if math.Abs(jct-sum.JCTSeconds) > 1e-6 {
			t.Errorf("statement %d: trace JCT = %g, charged %g", i, jct, sum.JCTSeconds)
		}
	}

	// The join statement's tree carries every pipeline phase.
	tr := handles[0].Trace()
	if tr.Spans.Name != "statement" {
		t.Errorf("root span = %q, want statement", tr.Spans.Name)
	}
	sum := handles[0].Summary()
	if sum.LLMCalls == 0 {
		t.Fatal("join statement made no model calls; the fixture is inert")
	}
	for _, name := range []string{"prepare", "admission", "schedule", "backend"} {
		if tr.Spans.Find(name) == nil {
			t.Errorf("trace is missing a %q span", name)
		}
	}
	var stages, batches int
	tr.Spans.Walk(func(n *obs.SpanTree) {
		if strings.HasPrefix(n.Name, "stage:") {
			stages++
		}
		if n.Name == "batch" {
			batches++
		}
	})
	if stages < 2 {
		t.Errorf("trace has %d stage spans, want >= 2 (filter + projection)", stages)
	}
	if batches == 0 {
		t.Error("trace has no batch span despite a batch window")
	}
	if p := tr.Spans.Find("prepare"); p.Attrs["planCache"] == nil {
		t.Error("prepare span lacks the planCache attribute")
	}

	// The trace ring retains explicitly traced statements too.
	if got := len(rt.Traces()); got != len(stmts) {
		t.Errorf("trace ring holds %d traces, want %d", got, len(stmts))
	}
}

// TestTraceOffIsFree pins the default path: without Options.Trace and
// without a slow-query threshold, no trace is recorded, the ring stays
// empty, and the summary still settles.
func TestTraceOffIsFree(t *testing.T) {
	db := newDB(12)
	rt := New(db, Config{Workers: 2})
	defer rt.Close()
	h := rt.Submit(dashboardStatements[0], Options{})
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if h.Trace() != nil {
		t.Error("untraced statement recorded a trace")
	}
	if len(rt.Traces()) != 0 {
		t.Error("trace ring retained an untraced statement")
	}
	if h.Summary().LLMCalls == 0 {
		t.Error("summary did not settle without tracing")
	}
}

// TestSlowQueryLog pins the slow-query path: statements over the threshold
// are captured without opting in, logged through SlowLogger, and the ring
// evicts oldest-first at its bound.
func TestSlowQueryLog(t *testing.T) {
	db := newDB(12)
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	rt := New(db, Config{Workers: 1, SlowQueryThreshold: time.Nanosecond,
		TraceRingSize: 2, SlowLogger: logger})
	defer rt.Close()

	stmts := []string{
		`SELECT ticket_id, LLM('Classify the fault.', request) AS c FROM tickets WHERE region = 'emea'`,
		`SELECT ticket_id, LLM('Classify the fault.', request) AS c FROM tickets WHERE region = 'amer'`,
		`SELECT ticket_id, LLM('Classify the fault.', request) AS c FROM tickets WHERE region = 'apac'`,
	}
	for _, sql := range stmts {
		h := rt.Submit(sql, Options{}) // no explicit trace: the threshold arms it
		if _, err := h.Wait(); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if h.Trace() == nil {
			t.Fatalf("%q: slow statement settled without a trace", sql)
		}
	}

	traces := rt.Traces()
	if len(traces) != 2 {
		t.Fatalf("ring holds %d traces, want 2 (bounded)", len(traces))
	}
	// Newest first; the oldest statement was evicted.
	if !strings.Contains(traces[0].SQL, "apac") || !strings.Contains(traces[1].SQL, "amer") {
		t.Errorf("ring order = [%q, %q], want newest first with emea evicted",
			traces[0].SQL, traces[1].SQL)
	}
	for _, tr := range traces {
		if !tr.Slow {
			t.Errorf("%q: retained trace not marked slow", tr.SQL)
		}
		if tr.Spans == nil || tr.Spans.Find("backend") == nil {
			t.Errorf("%q: slow trace lacks spans", tr.SQL)
		}
	}
	if got := buf.String(); strings.Count(got, "slow statement") != len(stmts) {
		t.Errorf("slow log emitted %d records, want %d:\n%s",
			strings.Count(got, "slow statement"), len(stmts), got)
	}
}

// TestStageRollups pins the per-StageKey aggregation surfaced in Metrics:
// executions accumulate, the WHERE cascade's observed selectivity lands on
// the filter stage, and cache outcomes are attributed per key.
func TestStageRollups(t *testing.T) {
	db := newDB(24)
	rt := New(db, Config{Workers: 2})
	defer rt.Close()
	sql := `SELECT ticket_id FROM tickets
	        WHERE LLM('Is the request about a hardware fault?', request) = 'Yes' AND region <> 'apac'`
	for i := 0; i < 2; i++ { // second run hits the result cache
		if _, err := rt.Exec(sql, Options{}); err != nil {
			t.Fatal(err)
		}
	}

	m := rt.Metrics()
	if len(m.Stages) == 0 {
		t.Fatal("no stage rollups recorded")
	}
	var filter *obs.StageRollup
	for id, sr := range m.Stages {
		sr := sr
		if sr.Count > 0 && sr.Selectivity >= 0 {
			filter = &sr
		}
		if sr.Name == "" {
			t.Errorf("rollup %s has no stage name", id)
		}
	}
	if filter == nil {
		t.Fatal("no rollup learned a selectivity from the WHERE cascade")
	}
	if filter.Selectivity < 0 || filter.Selectivity > 1 {
		t.Errorf("selectivity = %g, want within [0, 1]", filter.Selectivity)
	}
	if filter.Count != 2 {
		t.Errorf("filter stage observed %d executions, want 2", filter.Count)
	}
	if filter.CacheHits == 0 {
		t.Error("repeat run recorded no cache hits on the stage rollup")
	}
	if filter.MeanJCTSeconds <= 0 || filter.P99JCTSeconds < filter.MeanJCTSeconds {
		t.Errorf("latency stats mean=%g p99=%g", filter.MeanJCTSeconds, filter.P99JCTSeconds)
	}
}

// BenchmarkTracingOff is the perf guard for the default path: the
// multi-client serving bench with tracing disabled, directly comparable to
// BenchmarkMultiClientServing. The recorder must never allocate here — no
// span, no context value, no attribute.
func BenchmarkTracingOff(b *testing.B) {
	stmts := multiClientWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := newDB(45)
		rt := New(db, Config{Workers: 8, BatchWindow: 5 * time.Millisecond})
		handles := make([]*Handle, len(stmts))
		for j, sql := range stmts {
			handles[j] = rt.Submit(sql, Options{})
		}
		for j, h := range handles {
			if _, err := h.Wait(); err != nil {
				b.Fatalf("client %d: %v", j, err)
			}
			if h.Trace() != nil {
				b.Fatal("tracing-off run recorded a trace")
			}
		}
		m := rt.Metrics()
		rt.Close()
		if i == b.N-1 {
			b.ReportMetric(float64(m.LLMCalls), "llmcalls/op")
			b.ReportMetric(m.TotalJCT, "jct-s/op")
		}
	}
}
