package runtime

import (
	"context"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

// batcher coalesces pending LLM calls from concurrent statements into shared
// engine runs. Submissions are grouped by stage fingerprint (same prompt,
// schema, answer alphabet, and serving config — see stageFingerprint); a
// group stays open for its batch window, or until it reaches MaxBatchRows,
// then flushes as one GGR-reordered stage over the union of its members'
// rows. Rows from different statements that share the prompt prefix are
// therefore scheduled next to each other, so the prefix cache hits across
// queries, not just within one.
//
// The window is SLO-aware: each member buys the window its service class
// configures (interactive short, batch-class long — Config.BatchWindow and
// BatchClassWindow), clamped by its statement deadline, and a group closes
// at the NEAREST horizon any member has asked for. So batch-class openers
// hold a window open to coalesce aggressively, but the moment an interactive
// statement (or one with a tight deadline) joins, the close is pulled
// forward to its horizon — throughput traffic never taxes latency traffic
// with its own window. Every pull-forward is counted in
// Metrics.BatchWindowsShortened.
type batcher struct {
	rt     *Runtime
	mu     sync.Mutex
	groups map[string]*group // guarded by mu
}

// member is one statement's contribution to a group: the rows of its stage
// table it needs computed. The flush closes done and fills outputs (aligned
// with rows) or err.
type member struct {
	spec query.Spec
	tbl  *table.Table
	rows []int
	done chan struct{}

	offset  int
	outputs []string
	batch   *query.StageResult
	err     error

	// Trace plumbing: traced marks a member whose statement is recording
	// (captured at submit); window / pulledForward describe the batch wait
	// its class bought; bspan is the shared batch span run() records when
	// any member is traced — adopted (charges zero) into each traced
	// member's tree. All are written before done closes and read only by
	// the owning statement after it.
	traced        bool
	window        time.Duration
	pulledForward bool
	bspan         *obs.Span

	// client / class identify the submitting statement (captured at submit,
	// since the flush runs on a detached context): a single-tenant batch is
	// attributed to that tenant on remote workers, a mixed one to "shared".
	client ClientID
	class  Class
}

// group accumulates members with one fingerprint until flush.
type group struct {
	fp      string
	cols    []string
	qcfg    query.Config
	members []*member
	rows    int
	flushed bool
	// fireAt / timer are the group's scheduled close. fireAt only ever moves
	// earlier (a joiner with a nearer horizon resets the timer); nil timer
	// means the group flushes inline (window disabled). Guarded by batcher.mu.
	fireAt time.Time
	timer  *time.Timer
}

func newBatcher(rt *Runtime) *batcher {
	return &batcher{rt: rt, groups: make(map[string]*group)}
}

// submit enqueues rows of tbl under fp and returns the member handle; the
// caller blocks on member.done. Never called with an empty row set. ctx is
// the submitting statement's context: its service class picks the window
// this member is willing to wait, and its deadline clamps it.
func (b *batcher) submit(ctx context.Context, fp string, spec query.Spec, tbl *table.Table, rows []int, qcfg query.Config) *member {
	m := &member{spec: spec, tbl: tbl, rows: rows, done: make(chan struct{}),
		traced: obs.FromContext(ctx) != nil}
	if si := stmtInfoFrom(ctx); si != nil {
		m.client, m.class = si.client, si.class
	}
	window := b.rt.cfg.windowFor(classFrom(ctx))
	m.window = window
	now := time.Now()
	fire := now.Add(window)
	if dl, ok := ctx.Deadline(); ok {
		if remaining := dl.Sub(now); remaining <= 0 {
			fire = now // already expired: flush inline, the caller will see ctx.Err
		} else if clamp := dl.Add(-remaining / 5); clamp.Before(fire) {
			// Close before the deadline, not at it: keep a slice of the
			// budget for the engine run so the statement can still finish.
			fire = clamp
		}
	}
	immediate := window <= 0 || !fire.After(now)
	shortened := false
	b.mu.Lock()
	g := b.groups[fp]
	if g == nil {
		g = &group{fp: fp, cols: tbl.Columns(), qcfg: qcfg}
		b.groups[fp] = g
		if !immediate {
			g.fireAt = fire
			g.timer = time.AfterFunc(fire.Sub(now), func() { b.flush(g) })
		}
	} else if g.timer != nil && fire.Before(g.fireAt) {
		// This member's horizon is nearer than the group's scheduled close:
		// pull the close forward (an interactive statement joining a
		// batch-class window, or a deadline inside it). Flush is idempotent,
		// so losing a race with the old timer firing is harmless.
		g.fireAt = fire
		if immediate {
			g.timer.Stop()
		} else {
			g.timer.Reset(time.Until(fire))
		}
		shortened = true
	}
	g.members = append(g.members, m)
	g.rows += len(rows)
	full := b.rt.cfg.maxBatchRows() > 0 && g.rows >= b.rt.cfg.maxBatchRows()
	b.mu.Unlock()
	if shortened {
		b.rt.c.batchWindowsShortened.Add(1)
		m.pulledForward = true
	}
	if full || immediate {
		b.flush(g)
	}
	return m
}

// flush detaches the group (idempotently) and runs it. Called from the
// window timer, from submit when the group fills or the window is disabled,
// and from Close for stragglers.
func (b *batcher) flush(g *group) {
	b.mu.Lock()
	if g.flushed {
		b.mu.Unlock()
		return
	}
	g.flushed = true
	if g.timer != nil {
		g.timer.Stop()
	}
	if b.groups[g.fp] == g {
		delete(b.groups, g.fp)
	}
	members := g.members
	b.mu.Unlock()
	b.run(g, members)
}

// flushAll drains every open group synchronously (shutdown path).
func (b *batcher) flushAll() {
	b.mu.Lock()
	var gs []*group
	for _, g := range b.groups {
		gs = append(gs, g)
	}
	b.mu.Unlock()
	for _, g := range gs {
		b.flush(g)
	}
}

// run executes one coalesced stage: the union of the members' rows as a
// single table, reordered by the configured policy and served by one engine
// instance (the engine and its kvcache.Cache are confined to this call — the
// cache type is not concurrency-safe, so no engine is ever shared). Each
// member's spec hooks (RowKeys, OutTokensFor) are dispatched per row, so a
// row's oracle draw and output budget are exactly what its own statement
// would have used.
func (b *batcher) run(g *group, members []*member) {
	// One shared batch span serves every traced member: it carries the
	// whole run's detail as attributes but charges nothing — each member
	// charges its own proportional share on its own stage span, so a batch
	// shared by k traced statements never double-counts.
	var bsp *obs.Span
	for _, m := range members {
		if m.traced {
			bsp = obs.NewSpan("batch")
			break
		}
	}
	tmpl := members[0].spec
	combined := table.New(g.cols...)
	var truths []string
	total := 0
	for _, m := range members {
		m.offset = total
		total += len(m.rows)
		for _, r := range m.rows {
			combined.MustAppendRow(m.tbl.Row(r)...)
			if tmpl.TruthHidden != "" {
				truths = append(truths, m.tbl.HiddenValue(tmpl.TruthHidden, r))
			}
		}
	}
	if tmpl.TruthHidden != "" {
		if err := combined.SetHidden(tmpl.TruthHidden, truths); err != nil {
			panic(err) // unreachable: truths matches the row count by construction
		}
	}
	// FDs steer GGR's column scoring; every member projects the same
	// statement shape, so the first member's (schema-identical) FDs apply.
	if err := combined.SetFDs(members[0].tbl.FDs()); err != nil {
		panic(err) // unreachable: identical schema by fingerprint
	}

	rowKeys := make([]uint64, total)
	outTok := make([]int, total)
	for _, m := range members {
		for j, r := range m.rows {
			rowKeys[m.offset+j] = m.spec.RowKeys(r)
			outTok[m.offset+j] = m.spec.OutTokensFor(r)
		}
	}
	spec := tmpl
	spec.RowKeys = func(row int) uint64 { return rowKeys[row] }
	spec.RowOutTokens = func(row int) int { return outTok[row] }

	bsp.Set("members", len(members))
	bsp.Set("rows", total)

	// The run is deliberately detached from any one statement's context: a
	// coalesced batch may carry rows from several statements, and canceling
	// one must not starve the others (a canceled member's reservations are
	// settled by its detached resolver when this run lands — see RunStage).
	// The shared batch span rides the detached context so the query and
	// backend layers annotate it; so does the batch's tenant identity, so a
	// network backend attributes the batch on the remote worker: a batch
	// whose members all belong to one tenant travels as that tenant, a
	// coalesced multi-tenant batch as client "shared".
	ci := backend.ClientInfo{Client: string(members[0].client), Class: string(members[0].class)}
	for _, m := range members[1:] {
		if m.client != members[0].client {
			ci = backend.ClientInfo{Client: "shared", Class: ""}
			break
		}
	}
	//llmqlint:detached -- batch outlives any single member statement's context
	bctx := obs.With(backend.WithClientInfo(context.Background(), ci), bsp)
	st, err := query.RunStageContext(bctx, spec, combined, g.qcfg)
	if err != nil {
		bsp.Set("error", err.Error())
		bsp.End()
		for _, m := range members {
			m.err = err
			m.bspan = bsp
			close(m.done)
		}
		return
	}

	c := &b.rt.c
	c.batches.Add(1)
	c.llmCalls.Add(int64(total))
	c.jctMicros.Add(int64(st.Metrics.JCT * 1e6))
	c.solverMicros.Add(int64(st.SolverSeconds * 1e6))
	c.promptTokens.Add(st.Metrics.PromptTokens)
	c.matchedTokens.Add(st.Metrics.MatchedTokens)
	c.prefilledTokens.Add(st.Metrics.PrefilledTokens)
	if len(members) > 1 {
		c.coalescedRuns.Add(1)
		c.coalescedRows.Add(int64(total))
	}
	if bsp != nil {
		bsp.Set("shared", len(members) > 1)
		bsp.Set("jctSeconds", st.Metrics.JCT)
		bsp.Set("solverSeconds", st.SolverSeconds)
		bsp.Set("promptTokens", st.Metrics.PromptTokens)
		bsp.Set("matchedTokens", st.Metrics.MatchedTokens)
		bsp.End()
	}
	for _, m := range members {
		m.batch = st
		m.outputs = st.Outputs[m.offset : m.offset+len(m.rows)]
		m.bspan = bsp
		close(m.done)
	}
}
