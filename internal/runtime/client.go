package runtime

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ClientID identifies the tenant a statement runs on behalf of. It is the
// single identity type carried through the whole stack — /v1/sql's request
// envelope, the admission scheduler's per-client queues, quota buckets, and
// the per-client rows of Metrics — so no layer falls back to a stringly-typed
// name of its own. The empty ID is normalized to DefaultClient at admission.
type ClientID string

// DefaultClient is the identity statements run under when the caller names
// none: anonymous traffic shares one fair-queue flow and one metrics row
// instead of hiding from accounting.
const DefaultClient ClientID = "anon"

// orDefault normalizes the empty identity.
func (c ClientID) orDefault() ClientID {
	if c == "" {
		return DefaultClient
	}
	return c
}

// Class is a statement's service class: it selects the admission scheduler's
// weight and the micro-batcher's coalescing window.
type Class string

const (
	// ClassInteractive is latency-sensitive traffic (dashboards, operators):
	// high admission weight, short batch window — an interactive statement
	// joining an open batch window closes it early.
	ClassInteractive Class = "interactive"
	// ClassBatch is throughput traffic (analytics sweeps): low admission
	// weight, long batch window so calls coalesce more aggressively.
	ClassBatch Class = "batch"
)

// ParseClass resolves the wire form of a service class; "" means
// interactive (the conservative default: unlabeled traffic must not be
// penalized with batch-class latency).
func ParseClass(s string) (Class, error) {
	switch Class(s) {
	case "", ClassInteractive:
		return ClassInteractive, nil
	case ClassBatch:
		return ClassBatch, nil
	}
	return "", fmt.Errorf("unknown class %q: want %q or %q", s, ClassInteractive, ClassBatch)
}

// orDefault normalizes the zero Class.
func (c Class) orDefault() Class {
	if c == "" {
		return ClassInteractive
	}
	return c
}

// Quota bounds one client's resource draw as leaky token buckets, one for
// model calls and one for prompt tokens. Usage is post-paid: a statement is
// admitted while both buckets are non-negative and its actual calls/tokens
// are debited when it finishes, so a client that overdraws is locked out
// until the buckets refill rather than mid-statement. A zero rate leaves
// that dimension unlimited; the zero Quota disables limiting entirely.
type Quota struct {
	// CallsPerSec refills the call bucket; CallBurst caps it (default
	// max(1, CallsPerSec)).
	CallsPerSec float64
	CallBurst   float64
	// TokensPerSec refills the prompt-token bucket; TokenBurst caps it
	// (default max(1, TokensPerSec)).
	TokensPerSec float64
	TokenBurst   float64
}

// Enabled reports whether the quota limits anything.
func (q Quota) Enabled() bool { return q.CallsPerSec > 0 || q.TokensPerSec > 0 }

func (q Quota) callBurst() float64 {
	if q.CallBurst > 0 {
		return q.CallBurst
	}
	return math.Max(1, q.CallsPerSec)
}

func (q Quota) tokenBurst() float64 {
	if q.TokenBurst > 0 {
		return q.TokenBurst
	}
	return math.Max(1, q.TokensPerSec)
}

// QuotaError reports an admission rejected because the client's quota
// buckets are overdrawn. RetryAfter is how long until both buckets refill
// to zero; /v1/sql surfaces it as a 429 with a Retry-After header.
type QuotaError struct {
	Client     ClientID
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("runtime: client %q over quota, retry after %s", e.Client, e.RetryAfter)
}

// quotaBucket is one client's live quota state.
type quotaBucket struct {
	mu     sync.Mutex
	quota  Quota
	calls  float64   // guarded by mu
	tokens float64   // guarded by mu
	last   time.Time // guarded by mu
}

func newQuotaBucket(q Quota, now time.Time) *quotaBucket {
	return &quotaBucket{quota: q, calls: q.callBurst(), tokens: q.tokenBurst(), last: now}
}

// refillLocked advances the buckets to now.
//
//llmqlint:holds mu
func (b *quotaBucket) refillLocked(now time.Time) {
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.last = now
	b.calls = math.Min(b.quota.callBurst(), b.calls+dt*b.quota.CallsPerSec)
	b.tokens = math.Min(b.quota.tokenBurst(), b.tokens+dt*b.quota.TokensPerSec)
}

// admit decides whether a new statement may start now. On rejection it
// reports how long until both buckets are back to zero.
func (b *quotaBucket) admit(now time.Time) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.calls >= 0 && b.tokens >= 0 {
		return 0, true
	}
	var wait float64
	if b.calls < 0 && b.quota.CallsPerSec > 0 {
		wait = -b.calls / b.quota.CallsPerSec
	}
	if b.tokens < 0 && b.quota.TokensPerSec > 0 {
		wait = math.Max(wait, -b.tokens/b.quota.TokensPerSec)
	}
	retry := time.Duration(math.Ceil(wait*1000)) * time.Millisecond
	if retry <= 0 {
		retry = time.Millisecond
	}
	return retry, false
}

// debit charges a finished statement's actual usage. Buckets may go
// negative — that is the post-paid lockout admit enforces.
func (b *quotaBucket) debit(now time.Time, calls, tokens int64) {
	b.mu.Lock()
	b.refillLocked(now)
	if b.quota.CallsPerSec > 0 {
		b.calls -= float64(calls)
	}
	if b.quota.TokensPerSec > 0 {
		b.tokens -= float64(tokens)
	}
	b.mu.Unlock()
}

// stmtInfo rides in the statement's context from the worker down into
// RunStage, carrying identity for the batcher's window choice and
// accumulating the statement's own resource usage for quota debiting and
// per-client accounting. Stages of one statement run sequentially, so the
// counters need no synchronization; only the owning worker reads them back.
type stmtInfo struct {
	client ClientID
	class  Class
	calls  int64
	tokens int64
}

type stmtInfoKey struct{}

func withStmtInfo(ctx context.Context, si *stmtInfo) context.Context {
	return context.WithValue(ctx, stmtInfoKey{}, si)
}

// stmtInfoFrom recovers the statement info; nil when the stage runs outside
// a runtime worker (direct library use).
func stmtInfoFrom(ctx context.Context) *stmtInfo {
	si, _ := ctx.Value(stmtInfoKey{}).(*stmtInfo)
	return si
}

// classFrom is the batcher's view: which service class is asking.
func classFrom(ctx context.Context) Class {
	if si := stmtInfoFrom(ctx); si != nil {
		return si.class
	}
	return ClassInteractive
}

// clientCounters is one client's slice of the fleet accounting. Plain
// fields, deliberately unannotated: they are guarded by Runtime.clientMu —
// an OWNING-struct mutex the guardedby analyzer cannot name from here (it
// only checks sibling-field guards). Every access path goes through
// Runtime.clients, whose own `guarded by clientMu` annotation is what the
// analyzer enforces; reach these counters only via Runtime.clientLocked.
type clientCounters struct {
	statements      int64
	canceled        int64
	quotaRejections int64
	llmCalls        int64
	promptTokens    int64
	jctMicros       int64
	queueWaitMicros int64
}

// waitHist is a fixed-bucket latency histogram for admission-queue waits,
// atomically updated on the worker hot path.
type waitHist struct {
	count       atomic.Int64
	totalMicros atomic.Int64
	le1ms       atomic.Int64
	le10ms      atomic.Int64
	le100ms     atomic.Int64
	le1s        atomic.Int64
	over1s      atomic.Int64
}

func (h *waitHist) observe(d time.Duration) {
	h.count.Add(1)
	h.totalMicros.Add(d.Microseconds())
	switch {
	case d <= time.Millisecond:
		h.le1ms.Add(1)
	case d <= 10*time.Millisecond:
		h.le10ms.Add(1)
	case d <= 100*time.Millisecond:
		h.le100ms.Add(1)
	case d <= time.Second:
		h.le1s.Add(1)
	default:
		h.over1s.Add(1)
	}
}

func (h *waitHist) snapshot() WaitHistogram {
	return WaitHistogram{
		Count:       h.count.Load(),
		TotalMicros: h.totalMicros.Load(),
		Le1ms:       h.le1ms.Load(),
		Le10ms:      h.le10ms.Load(),
		Le100ms:     h.le100ms.Load(),
		Le1s:        h.le1s.Load(),
		Over1s:      h.over1s.Load(),
	}
}
