package runtime

import (
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/sqlfront"
)

// hotStageStatements is the sharding workload: four clients whose
// statements all share ONE stage fingerprint (the same LLM call over the
// same schema), so the batch window coalesces them into a single hot batch —
// the traffic shape where the old design ran one sequential engine no
// matter how many workers were configured.
var hotStageStatements = []string{
	dashboardStatements[0], // emea
	dashboardStatements[1], // amer
	`SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS resolved
	 FROM tickets WHERE region = 'apac'`,
	`SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS resolved
	 FROM tickets`,
}

// runHotWorkload serves the hot-stage workload on a fresh runtime over be
// and returns the fleet metrics plus per-statement results.
func runHotWorkload(t testing.TB, be backend.Backend, rows int) (Metrics, []*sqlfront.Result) {
	t.Helper()
	db := newDB(rows)
	rt := New(db, Config{
		Workers:     len(hotStageStatements),
		BatchWindow: 60 * time.Millisecond,
		Backend:     be,
	})
	defer rt.Close()
	handles := make([]*Handle, len(hotStageStatements))
	for i, sql := range hotStageStatements {
		handles[i] = rt.Submit(sql, Options{})
	}
	results := make([]*sqlfront.Result, len(handles))
	for i, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("client %d (%q): %v", i, hotStageStatements[i], err)
		}
		results[i] = res
	}
	return rt.Metrics(), results
}

// TestShardedBeatsUnsharded is the tentpole's acceptance bar: on a 4-way
// concurrent hot-stage workload, serving with shards=4 must finish in
// strictly less total virtual JCT than shards=1 — while returning
// byte-identical relations and keeping at least 90% of the unsharded run's
// prefix hit tokens (cuts land only on prefix-group boundaries; the only
// loss is each shard warming the fixed prompt prefix).
func TestShardedBeatsUnsharded(t *testing.T) {
	const rows = 72
	baseM, baseRes := runHotWorkload(t, backend.NewSim(), rows)

	sh, err := backend.NewSharded(backend.NewSim(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	shardM, shardRes := runHotWorkload(t, sh, rows)

	for i := range baseRes {
		sameRelation(t, hotStageStatements[i], baseRes[i], shardRes[i])
	}
	if shardM.TotalJCT >= baseM.TotalJCT {
		t.Errorf("sharded JCT = %.2fs, want strictly below unsharded %.2fs",
			shardM.TotalJCT, baseM.TotalJCT)
	}
	if min := baseM.MatchedTokens * 9 / 10; shardM.MatchedTokens < min {
		t.Errorf("sharded hit tokens = %d, want >= 90%% of unsharded %d",
			shardM.MatchedTokens, baseM.MatchedTokens)
	}
	if shardM.ShardedBatches == 0 || shardM.ShardRuns < 2 {
		t.Errorf("no fan-out happened: %d sharded batches, %d shard runs",
			shardM.ShardedBatches, shardM.ShardRuns)
	}
	if shardM.ShardJCTSeconds <= shardM.TotalJCT {
		t.Errorf("summed shard JCT %.2fs should exceed the parallel (max-shard) total %.2fs",
			shardM.ShardJCTSeconds, shardM.TotalJCT)
	}
	t.Logf("JCT: unsharded %.2fs, sharded %.2fs (%d sub-runs over %d batches); hit tokens %d -> %d",
		baseM.TotalJCT, shardM.TotalJCT, shardM.ShardRuns, shardM.ShardedBatches,
		baseM.MatchedTokens, shardM.MatchedTokens)
}

// TestShardedOverPersistentPool composes the two tentpole pieces: a Sharded
// decorator over a Persistent replica pool. Shards of one hot batch share
// the stage key and land on the same replica pool; relations must stay
// identical and the parallel JCT must beat the unsharded persistent run.
// (How many replicas the pool actually grows depends on real-time overlap —
// a fast machine can drain sub-millisecond shard runs one after another —
// so replica growth under contention is pinned deterministically by the
// white-box pool tests in internal/backend, not here.)
func TestShardedOverPersistentPool(t *testing.T) {
	const rows = 72
	baseM, baseRes := runHotWorkload(t, backend.NewPersistent(0), rows)

	per := backend.NewPersistent(0)
	sh, err := backend.NewSharded(per, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	shardM, shardRes := runHotWorkload(t, sh, rows)

	for i := range baseRes {
		sameRelation(t, hotStageStatements[i], baseRes[i], shardRes[i])
	}
	if shardM.TotalJCT >= baseM.TotalJCT {
		t.Errorf("sharded-persistent JCT = %.2fs, want strictly below unsharded %.2fs",
			shardM.TotalJCT, baseM.TotalJCT)
	}
	t.Logf("JCT: persistent %.2fs, sharded-persistent %.2fs; replicas %d",
		baseM.TotalJCT, shardM.TotalJCT, per.Engines())
}

// TestReorderCacheRepeatedWindow is the serving-level satellite pin: with
// the result cache disabled (so rows recompute), an identical repeated
// batch window re-runs the engine but NOT the solver — GGR solves stay at 1
// while the second window is a reorder-cache hit.
func TestReorderCacheRepeatedWindow(t *testing.T) {
	db := newDB(36)
	rt := New(db, Config{Workers: 2, CacheCapacity: -1})
	defer rt.Close()
	sql := dashboardStatements[0]

	first, err := rt.Exec(sql, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := rt.Metrics()
	if m1.ReorderSolves != 1 || m1.ReorderCacheHits != 0 {
		t.Fatalf("first window: solves=%d hits=%d, want 1/0", m1.ReorderSolves, m1.ReorderCacheHits)
	}
	second, err := rt.Exec(sql, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := rt.Metrics()
	if m2.ReorderSolves != 1 {
		t.Errorf("repeated window re-solved: %d solves, want 1", m2.ReorderSolves)
	}
	if m2.ReorderCacheHits != 1 {
		t.Errorf("repeated window: %d reorder-cache hits, want 1", m2.ReorderCacheHits)
	}
	if m2.LLMCalls <= m1.LLMCalls {
		t.Errorf("result cache disabled but second window made no engine calls (%d then %d)",
			m1.LLMCalls, m2.LLMCalls)
	}
	sameRelation(t, sql, first, second)

	// The prompt memo must have served the second window's repeated texts.
	if m2.PromptCacheHits == 0 {
		t.Error("prompt tokenization memo saw no hits across identical windows")
	}
}

// TestReorderCacheDisabled pins the off switch: negative capacity reports
// no reorder accounting and still serves correctly.
func TestReorderCacheDisabled(t *testing.T) {
	db := newDB(12)
	rt := New(db, Config{Workers: 1, ReorderCacheCapacity: -1, PromptCacheCapacity: -1})
	defer rt.Close()
	if _, err := rt.Exec(dashboardStatements[0], Options{}); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if m.ReorderSolves != 0 || m.ReorderCacheHits != 0 || m.ReorderCacheMisses != 0 {
		t.Errorf("disabled reorder cache still accounted: %+v", m)
	}
	if m.PromptCacheHits != 0 || m.PromptCacheMisses != 0 {
		t.Errorf("disabled prompt cache still accounted: hits=%d misses=%d",
			m.PromptCacheHits, m.PromptCacheMisses)
	}
}
