package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// qosStatement builds a distinct-prompt statement: every (who, i) pair asks
// the oracle a different question, so no two statements share result-cache
// keys and the total model-call count of a workload is exactly the sum of
// its statements' rows — an order-invariant figure the FIFO-vs-fair A/B
// below can compare across admission disciplines.
func qosStatement(who string, i int) string {
	return fmt.Sprintf(
		`SELECT ticket_id, LLM('Probe %s-%d: is this request urgent?', request) AS a FROM tickets`,
		who, i)
}

func p99(latencies []time.Duration) time.Duration {
	s := append([]time.Duration(nil), latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*99 + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// runMixedWorkload replays the acceptance workload on a fresh runtime: N
// batch clients flood the admission queue with distinct statements, then one
// interactive client runs its statements sequentially against that backlog.
// It returns the interactive client's per-statement latencies and the
// fleet's total model calls.
func runMixedWorkload(t *testing.T, fifo bool) (interactive []time.Duration, llmCalls int64) {
	t.Helper()
	const (
		batchClients = 4
		batchStmts   = 80
		interStmts   = 6
		warmStmts    = 2
	)
	db := newDB(40)
	rt := New(db, Config{
		Workers:       1, // admission order is the whole story
		QueueDepth:    512,
		BatchWindow:   -1, // no coalescing: per-statement time stays tight
		FIFOAdmission: fifo,
	})
	defer rt.Close()

	// Pay first-run costs (tokenizer, prompt cache, solver) before the
	// measured phase, identically in both modes: under FIFO the backlog
	// would otherwise absorb warmup before the interactive client runs,
	// while under fair admission the interactive client would pay it inside
	// its own measured latency — a confounder, not an admission effect.
	for i := 0; i < warmStmts; i++ {
		if _, err := rt.Exec(qosStatement("warm", i), Options{Client: "warm", Class: ClassBatch}); err != nil {
			t.Fatalf("warmup statement %d: %v", i, err)
		}
	}

	var batchHandles []*Handle
	for c := 0; c < batchClients; c++ {
		for i := 0; i < batchStmts; i++ {
			batchHandles = append(batchHandles, rt.Submit(
				qosStatement(fmt.Sprintf("bulk%d", c), i),
				Options{Client: ClientID(fmt.Sprintf("bulk%d", c)), Class: ClassBatch},
			))
		}
	}

	for i := 0; i < interStmts; i++ {
		start := time.Now()
		if _, err := rt.Exec(qosStatement("dash", i), Options{Client: "dash", Class: ClassInteractive}); err != nil {
			t.Fatalf("interactive statement %d: %v", i, err)
		}
		interactive = append(interactive, time.Since(start))
	}
	for i, h := range batchHandles {
		if _, err := h.Wait(); err != nil {
			t.Fatalf("batch statement %d: %v", i, err)
		}
	}
	m := rt.Metrics()
	if got, want := m.StatementsDone, int64(batchClients*batchStmts+interStmts+warmStmts); got != want {
		t.Fatalf("statements done = %d, want %d", got, want)
	}
	return interactive, m.LLMCalls
}

// TestQoSInteractiveBeatsFIFO is the acceptance A/B (the PR 3
// TestConcurrentBeatsSequential of this PR): under a mixed workload — one
// interactive client against a deep batch backlog over the same relation —
// weighted-fair admission must cut the interactive client's p99 latency
// sharply versus FIFO, without changing total model calls (fairness
// reorders work, it does not add any).
func TestQoSInteractiveBeatsFIFO(t *testing.T) {
	fifoLat, fifoCalls := runMixedWorkload(t, true)
	fairLat, fairCalls := runMixedWorkload(t, false)

	if fifoCalls != fairCalls {
		t.Errorf("total model calls changed: fifo %d, fair %d (fairness must only reorder)", fifoCalls, fairCalls)
	}
	fifoP99, fairP99 := p99(fifoLat), p99(fairLat)
	t.Logf("interactive p99: fifo %v, fair %v (%0.1fx)", fifoP99, fairP99, float64(fifoP99)/float64(fairP99))
	if fairP99*2 >= fifoP99 {
		t.Errorf("interactive p99 under fair admission = %v, want < half of FIFO's %v", fairP99, fifoP99)
	}
}

// TestQoSStarvationFreedom is the fair scheduler's property test: with
// unit-cost statements and every quantum >= 1, DRR serves each backlogged
// flow at least once per ring pass, so the gap between consecutive pops of
// one flow is bounded by the sum of all flows' quantums — no client can be
// starved no matter how deep any other client's backlog is. The test drives
// randomized interleavings straight against the queue and checks the bound
// (and within-flow FIFO order) on every pop sequence.
func TestQoSStarvationFreedom(t *testing.T) {
	const (
		interactiveQuantum = 4
		batchQuantum       = 1
	)
	flows := []flowKey{
		{client: "dash", class: ClassInteractive},
		{client: "bulk0", class: ClassBatch},
		{client: "bulk1", class: ClassBatch},
		{client: "bulk0", class: ClassInteractive}, // same tenant, distinct flow
	}
	quantum := map[flowKey]int{}
	for _, k := range flows {
		q := interactiveQuantum
		if k.class == ClassBatch {
			q = batchQuantum
		}
		quantum[k] = q
	}
	sumQuantums := 0
	for _, q := range quantum {
		sumQuantums += q
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		counts := map[flowKey]int{}
		var jobs []*job
		for _, k := range flows {
			n := 1 + rng.Intn(60)
			counts[k] = n
			for i := 0; i < n; i++ {
				jobs = append(jobs, &job{client: k.client, class: k.class, enqueuedAt: time.Unix(int64(i), 0)})
			}
		}
		rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })

		q := newFairQueue(len(jobs), interactiveQuantum, batchQuantum, false)
		seq := map[flowKey][]int{} // per-flow push sequence numbers, in push order
		for _, j := range jobs {
			k := flowKey{client: j.client, class: j.class}
			j.enqueuedAt = time.Unix(0, int64(len(seq[k])))
			seq[k] = append(seq[k], len(seq[k]))
			if err := q.push(context.Background(), j); err != nil {
				t.Fatal(err)
			}
		}

		lastPop := map[flowKey]int{}
		popped := map[flowKey]int{}
		for pos := 0; pos < len(jobs); pos++ {
			j, ok := q.pop()
			if !ok {
				t.Fatalf("trial %d: queue closed after %d pops, want %d", trial, pos, len(jobs))
			}
			k := flowKey{client: j.client, class: j.class}
			if want := int64(popped[k]); j.enqueuedAt.UnixNano() != want {
				t.Fatalf("trial %d: flow %v popped out of FIFO order: got seq %d, want %d",
					trial, k, j.enqueuedAt.UnixNano(), want)
			}
			if prev, seen := lastPop[k]; seen && popped[k] < counts[k] {
				if gap := pos - prev; gap > sumQuantums {
					t.Fatalf("trial %d: flow %v waited %d pops between serves, bound %d",
						trial, k, gap, sumQuantums)
				}
			}
			lastPop[k] = pos
			popped[k]++
		}
		q.close()
		if _, ok := q.pop(); ok {
			t.Fatalf("trial %d: pop succeeded on closed empty queue", trial)
		}
	}
}

// TestQuotaBucket pins the post-paid token-bucket arithmetic with synthetic
// clocks: admit while non-negative, debit actual usage afterwards (possibly
// overdrawing), lock out until refilled, and report the exact retry horizon.
func TestQuotaBucket(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newQuotaBucket(Quota{CallsPerSec: 1, CallBurst: 2}, t0)

	if _, ok := b.admit(t0); !ok {
		t.Fatal("fresh bucket rejected")
	}
	b.debit(t0, 5, 0) // post-paid: usage may overdraw to -3
	retry, ok := b.admit(t0)
	if ok {
		t.Fatal("overdrawn bucket admitted")
	}
	if want := 3 * time.Second; retry != want {
		t.Errorf("retry = %v, want %v (-3 calls at 1/s)", retry, want)
	}
	if _, ok := b.admit(t0.Add(2 * time.Second)); ok {
		t.Error("admitted while still overdrawn")
	}
	if _, ok := b.admit(t0.Add(3 * time.Second)); !ok {
		t.Error("rejected after full refill to zero")
	}

	// Token dimension limits independently, and the longer deficit wins.
	b2 := newQuotaBucket(Quota{CallsPerSec: 1, TokensPerSec: 10, TokenBurst: 10}, t0)
	b2.debit(t0, 2, 50) // calls -1 (retry 1s), tokens -40 (retry 4s)
	retry, ok = b2.admit(t0)
	if ok || retry != 4*time.Second {
		t.Errorf("retry = %v ok=%v, want 4s rejection (token deficit dominates)", retry, ok)
	}

	// A zero-rate dimension is unlimited: debits to it don't lock out.
	b3 := newQuotaBucket(Quota{CallsPerSec: 100}, t0)
	b3.debit(t0, 0, 1_000_000)
	if _, ok := b3.admit(t0); !ok {
		t.Error("unlimited token dimension caused a rejection")
	}
}

// TestQuotaRejectsOverdrawnClient covers the runtime-level 429 path: a
// client that overdraws its quota gets a *QuotaError with a retry horizon on
// its NEXT admission, other clients are untouched, and both fleet and
// per-client rejection counters advance.
func TestQuotaRejectsOverdrawnClient(t *testing.T) {
	db := newDB(12)
	rt := New(db, Config{
		Workers: 2,
		ClientQuotas: map[ClientID]Quota{
			"miser": {CallsPerSec: 0.001, CallBurst: 1},
		},
	})
	defer rt.Close()

	if _, err := rt.Exec(qosStatement("q", 0), Options{Client: "miser"}); err != nil {
		t.Fatalf("first statement within burst: %v", err)
	}
	_, err := rt.Exec(qosStatement("q", 1), Options{Client: "miser"})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota error = %v, want *QuotaError", err)
	}
	if qe.Client != "miser" || qe.RetryAfter <= 0 {
		t.Errorf("quota error = %+v, want miser with positive retry", qe)
	}
	if _, err := rt.Exec(qosStatement("q", 2), Options{Client: "spender"}); err != nil {
		t.Errorf("unthrottled client rejected: %v", err)
	}
	m := rt.Metrics()
	if m.QuotaRejections != 1 || m.Clients["miser"].QuotaRejections != 1 {
		t.Errorf("rejection accounting = %d fleet / %d client, want 1/1",
			m.QuotaRejections, m.Clients["miser"].QuotaRejections)
	}
	if m.Clients["miser"].LLMCalls == 0 || m.Clients["spender"].LLMCalls == 0 {
		t.Errorf("per-client call accounting missing: %+v", m.Clients)
	}
}

// TestQoSInteractiveClosesWindowEarly: a batch-class statement opens a long
// coalescing window; an interactive statement with the same stage
// fingerprint joins and must pull the close forward to its own short
// horizon — both finish far before the batch window would have fired, the
// run still coalesces, and the shortening is counted.
func TestQoSInteractiveClosesWindowEarly(t *testing.T) {
	db := newDB(24)
	rt := New(db, Config{
		Workers:          2,
		BatchWindow:      5 * time.Millisecond,
		BatchClassWindow: 2 * time.Second,
	})
	defer rt.Close()

	start := time.Now()
	// dashboardStatements[0] and [1] share the LLM stage fingerprint (same
	// prompt) over disjoint plain filters — the coalescing pair.
	hBatch := rt.Submit(dashboardStatements[0], Options{Client: "bulk", Class: ClassBatch})
	time.Sleep(150 * time.Millisecond) // the batch window is open and parked
	hInter := rt.Submit(dashboardStatements[1], Options{Client: "dash", Class: ClassInteractive})
	if _, err := hInter.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := hBatch.Wait(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed >= 1500*time.Millisecond {
		t.Errorf("mixed pair took %v: the interactive joiner did not close the batch window early", elapsed)
	}
	m := rt.Metrics()
	if m.BatchWindowsShortened == 0 {
		t.Error("no batch window recorded as shortened")
	}
	if m.CoalescedRuns == 0 {
		t.Error("the pair did not coalesce into one run")
	}
}

// TestQoSDeadlineClosesWindowEarly: a statement whose context deadline is
// tighter than its class's batch window must not be parked past it — the
// batcher clamps the window inside the deadline and the statement finishes
// in time instead of dying of DeadlineExceeded under its own coalescing
// delay.
func TestQoSDeadlineClosesWindowEarly(t *testing.T) {
	db := newDB(18)
	rt := New(db, Config{Workers: 1, BatchWindow: 2 * time.Second})
	defer rt.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := rt.ExecContext(ctx, dashboardStatements[0], Options{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadlined statement failed after %v: %v (window not clamped?)", elapsed, err)
	}
	if elapsed >= 1500*time.Millisecond {
		t.Errorf("statement took %v with a 700ms deadline and 2s window", elapsed)
	}
}

// TestWaitContext: abandoning a future with WaitContext returns the caller
// promptly, does not cancel the statement, and leaves the result claimable
// by a later Wait.
func TestWaitContext(t *testing.T) {
	db := newDB(12)
	rt := New(db, Config{Workers: 1, BatchWindow: 300 * time.Millisecond})
	defer rt.Close()

	h := rt.Submit(dashboardStatements[0], Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := h.WaitContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned wait returned %v, want context.DeadlineExceeded", err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatalf("statement was canceled by an abandoned wait: %v", err)
	}
	if res == nil || len(res.Rows) == 0 {
		t.Fatal("no result after abandoned wait")
	}
	if m := rt.Metrics(); m.StatementsCanceled != 0 {
		t.Errorf("statements canceled = %d, want 0 (WaitContext must not cancel)", m.StatementsCanceled)
	}
}
