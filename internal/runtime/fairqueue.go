package runtime

import (
	"context"
	"sync"
)

// fairQueue is the admission scheduler: a deficit-round-robin (DRR) queue
// over per-(client, class) flows that replaced PR 3's single anonymous FIFO
// channel. Each flow gets a quantum proportional to its class weight
// (interactive high, batch low); the scheduler visits flows in a ring,
// topping up each flow's deficit by its quantum per visit and serving a
// statement per unit of deficit. Every statement costs one unit, so a
// backlogged flow is served at least once every ring pass once its deficit
// accumulates — bounded-turn admission for every client no matter how deep
// any other client's backlog is (the starvation-freedom property test pins
// this). FIFO mode (Config.FIFOAdmission) restores the old behavior as the
// A/B baseline the QoS acceptance test compares against.
//
// Blocking semantics match the channel it replaced: push blocks while the
// queue is at capacity (backpressure, honoring ctx), pop blocks while it is
// empty, and after close pop drains what is queued and then reports done.
type fairQueue struct {
	interactiveQuantum int
	batchQuantum       int

	mu     sync.Mutex
	limit  int
	fifo   bool
	closed bool   // guarded by mu
	size   int    // guarded by mu
	jobs   []*job // guarded by mu; FIFO mode only

	flows  map[flowKey]*flow // guarded by mu; active (non-empty) flows
	ring   []*flow           // guarded by mu; round-robin order over flows
	cur    int               // guarded by mu; ring position of the DRR pointer
	rounds int64             // guarded by mu; cumulative ring passes (trace attr)

	popWaiters  []chan struct{} // guarded by mu
	pushWaiters []*pushWaiter   // guarded by mu
}

// flowKey separates flows by client AND class, so one tenant's interactive
// statements never queue behind its own batch backlog either.
type flowKey struct {
	client ClientID
	class  Class
}

// flow is one (client, class) pair's pending statements plus DRR state. A
// flow exists only while it has jobs queued; deficit resets when it drains
// (standard DRR — an idle flow cannot bank credit).
type flow struct {
	key     flowKey
	jobs    []*job
	deficit int
	quantum int
}

type pushWaiter struct {
	ch   chan struct{}
	gone bool
}

func newFairQueue(limit, interactiveQuantum, batchQuantum int, fifo bool) *fairQueue {
	return &fairQueue{
		interactiveQuantum: interactiveQuantum,
		batchQuantum:       batchQuantum,
		limit:              limit,
		fifo:               fifo,
		flows:              make(map[flowKey]*flow),
	}
}

// push admits j, blocking while the queue is full. It fails fast when ctx
// dies during the wait or the queue closes.
func (q *fairQueue) push(ctx context.Context, j *job) error {
	q.mu.Lock()
	for {
		if q.closed {
			q.mu.Unlock()
			return errClosed
		}
		if q.size < q.limit {
			break
		}
		w := &pushWaiter{ch: make(chan struct{}, 1)}
		q.pushWaiters = append(q.pushWaiters, w)
		q.mu.Unlock()
		select {
		case <-w.ch:
			q.mu.Lock()
		case <-ctx.Done():
			q.mu.Lock()
			w.gone = true
			select {
			case <-w.ch:
				// Lost the race with a wakeup: pass the freed slot on so it
				// is not leaked with us.
				q.wakePusherLocked()
			default:
			}
			q.mu.Unlock()
			return ctx.Err()
		}
	}
	q.enqueueLocked(j)
	q.size++
	q.wakePopperLocked()
	q.mu.Unlock()
	return nil
}

// pop hands out the next statement by DRR order, blocking while the queue
// is empty. After close it keeps draining queued statements; ok=false means
// drained and closed (the worker's exit signal).
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	for {
		if q.size > 0 {
			j := q.nextLocked()
			q.size--
			q.wakePusherLocked()
			q.mu.Unlock()
			return j, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		ch := make(chan struct{}, 1)
		q.popWaiters = append(q.popWaiters, ch)
		q.mu.Unlock()
		<-ch
		q.mu.Lock()
	}
}

// close wakes every waiter; pending statements stay poppable.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	for _, ch := range q.popWaiters {
		ch <- struct{}{}
	}
	q.popWaiters = nil
	for _, w := range q.pushWaiters {
		if !w.gone {
			w.ch <- struct{}{}
		}
	}
	q.pushWaiters = nil
	q.mu.Unlock()
}

// len reports queued statements (tests and backpressure introspection).
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

//llmqlint:holds mu
func (q *fairQueue) enqueueLocked(j *job) {
	if q.fifo {
		q.jobs = append(q.jobs, j)
		return
	}
	j.roundsAtPush = q.rounds
	k := flowKey{client: j.client, class: j.class}
	f := q.flows[k]
	if f == nil {
		quantum := q.interactiveQuantum
		if j.class == ClassBatch {
			quantum = q.batchQuantum
		}
		f = &flow{key: k, quantum: quantum}
		q.flows[k] = f
		q.ring = append(q.ring, f)
	}
	f.jobs = append(f.jobs, j)
}

// nextLocked picks the next statement. Within a flow order is FIFO; across
// flows it is DRR. Only called with size > 0, so some flow is non-empty and
// the quantum top-ups (every quantum >= 1) guarantee termination within one
// ring pass.
//
//llmqlint:holds mu
func (q *fairQueue) nextLocked() *job {
	if q.fifo {
		j := q.jobs[0]
		q.jobs[0] = nil // release the reference eagerly; the slice is reused
		q.jobs = q.jobs[1:]
		if len(q.jobs) == 0 {
			q.jobs = nil
		}
		return j
	}
	for {
		f := q.ring[q.cur]
		if len(f.jobs) == 0 {
			q.removeCurLocked(f)
			continue
		}
		if f.deficit >= 1 {
			f.deficit--
			j := f.jobs[0]
			f.jobs[0] = nil
			f.jobs = f.jobs[1:]
			if len(f.jobs) == 0 {
				q.removeCurLocked(f)
			}
			j.drrRounds = q.rounds - j.roundsAtPush
			return j
		}
		f.deficit += f.quantum
		q.cur = (q.cur + 1) % len(q.ring)
		if q.cur == 0 {
			q.rounds++
		}
	}
}

// removeCurLocked retires the flow under the DRR pointer (it drained); the
// pointer then addresses the next flow in ring order.
//
//llmqlint:holds mu
func (q *fairQueue) removeCurLocked(f *flow) {
	f.deficit = 0
	delete(q.flows, f.key)
	copy(q.ring[q.cur:], q.ring[q.cur+1:])
	q.ring[len(q.ring)-1] = nil // drop the stale tail reference
	q.ring = q.ring[:len(q.ring)-1]
	if len(q.ring) == 0 {
		q.cur = 0
	} else {
		q.cur %= len(q.ring)
	}
}

//llmqlint:holds mu
func (q *fairQueue) wakePopperLocked() {
	if len(q.popWaiters) == 0 {
		return
	}
	ch := q.popWaiters[0]
	q.popWaiters = q.popWaiters[1:]
	ch <- struct{}{}
}

//llmqlint:holds mu
func (q *fairQueue) wakePusherLocked() {
	for len(q.pushWaiters) > 0 {
		w := q.pushWaiters[0]
		q.pushWaiters = q.pushWaiters[1:]
		if !w.gone {
			w.ch <- struct{}{}
			return
		}
	}
}
