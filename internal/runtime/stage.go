package runtime

import (
	"fmt"
	"strings"

	"repro/internal/query"
	"repro/internal/table"
)

// RunStage is the runtime's stage executor, injected into
// sqlfront.ExecConfig.StageRunner for every statement the runtime serves.
// For each row of the stage it decides, in one atomic cache step, whether
// the call's answer is already cached, already being computed by a
// concurrent statement (inflight dedup), or ours to compute; owned rows go
// through the cross-query micro-batcher. The returned StageResult matches
// query.RunStage's contract — Outputs indexed by tbl's rows — with
// ModelCalls reporting only the rows that actually reached an engine.
//
// Specs without content-derived row keys (Spec.RowKeys == nil) bypass the
// cache and batcher: a positional row identity says nothing about the row's
// content, so exact-match caching would be unsound. The LLM-SQL executor
// always content-keys its stages.
func (rt *Runtime) RunStage(spec query.Spec, tbl *table.Table, qcfg query.Config) (*query.StageResult, error) {
	n := tbl.NumRows()
	if n == 0 {
		return &query.StageResult{Spec: spec, Rows: 0}, nil
	}
	if spec.RowKeys == nil {
		rt.c.directStages.Add(1)
		st, err := query.RunStage(spec, tbl, qcfg)
		if err != nil {
			return nil, err
		}
		rt.c.batches.Add(1)
		rt.c.llmCalls.Add(int64(st.ModelCalls))
		rt.c.jctMicros.Add(int64(st.Metrics.JCT * 1e6))
		rt.c.solverMicros.Add(int64(st.SolverSeconds * 1e6))
		rt.c.promptTokens.Add(st.Metrics.PromptTokens)
		rt.c.matchedTokens.Add(st.Metrics.MatchedTokens)
		rt.c.prefilledTokens.Add(st.Metrics.PrefilledTokens)
		return st, nil
	}

	fp := stageFingerprint(spec, tbl.Columns(), qcfg)
	keys := make([]string, n)
	vals := make(map[string]string) // resolved outputs by row key
	subs := make(map[string]*inflight)
	seen := make(map[string]bool)
	var ownedRows []int
	var ownedKeys []string
	for i := 0; i < n; i++ {
		key := stageRowKey(fp, tbl, spec, i)
		keys[i] = key
		if seen[key] {
			// Duplicate row content within this stage: one computation
			// serves every copy.
			rt.c.rowsDeduped.Add(1)
			continue
		}
		seen[key] = true
		switch state, val, fl := rt.cache.acquire(key); state {
		case acquireHit:
			rt.c.cacheHits.Add(1)
			vals[key] = val
		case acquireSubscribed:
			rt.c.inflightDeduped.Add(1)
			subs[key] = fl
		case acquireOwned:
			rt.c.cacheMisses.Add(1)
			ownedRows = append(ownedRows, i)
			ownedKeys = append(ownedKeys, key)
		}
	}

	st := &query.StageResult{Spec: spec, Rows: n, ModelCalls: len(ownedRows)}
	if len(ownedRows) > 0 {
		m := rt.batcher.submit(fp, spec, tbl, ownedRows, qcfg)
		<-m.done
		if m.err != nil {
			for _, key := range ownedKeys {
				rt.cache.fail(key, m.err)
			}
			return nil, m.err
		}
		for j, key := range ownedKeys {
			rt.cache.commit(key, m.outputs[j])
			vals[key] = m.outputs[j]
		}
		// Attribute the coalesced run's serving cost to this statement: it
		// waited for exactly this engine run. A batch shared by k statements
		// is counted once in the runtime totals (see batcher.run) but
		// appears in each participant's own Result.
		st.Metrics = m.batch.Metrics
		st.SolverSeconds = m.batch.SolverSeconds
		st.PHC = m.batch.PHC
	}
	for key, fl := range subs {
		v, err := fl.wait()
		if err != nil {
			return nil, fmt.Errorf("runtime: deduplicated call failed in its owning statement: %w", err)
		}
		vals[key] = v
	}

	outputs := make([]string, n)
	for i, key := range keys {
		outputs[i] = vals[key]
	}
	st.Outputs = outputs
	return st, nil
}

// stageFingerprint identifies a batchable stage shape: two stages with equal
// fingerprints ask the same question over the same schema under the same
// serving configuration, so their rows may share one engine run and their
// (content-keyed) answers may share cache entries. Every component is
// length-prefixed, making the encoding injective.
func stageFingerprint(spec query.Spec, cols []string, qcfg query.Config) string {
	var sb strings.Builder
	part := func(s string) {
		fmt.Fprintf(&sb, "%d:%s;", len(s), s)
	}
	part(spec.Dataset)
	part(string(spec.Type))
	part(spec.UserPrompt)
	part(spec.KeyField)
	part(spec.TruthHidden)
	fmt.Fprintf(&sb, "%d;", len(spec.Choices))
	for _, c := range spec.Choices {
		part(c)
	}
	fmt.Fprintf(&sb, "%d;", len(cols))
	for _, c := range cols {
		part(c)
	}
	// The serving config changes engine timing and (via the policy's field
	// ordering) the oracle's position term, so it is part of the identity.
	// GGR options are compared by pointer: distinct custom solvers never
	// share a batch. Profile maps print with sorted keys, so the rendering
	// is deterministic.
	part(fmt.Sprintf("%s|%+v|%+v|%+v|%d|%d|%d|%p",
		qcfg.Policy, qcfg.Model, qcfg.Cluster, qcfg.Oracle,
		qcfg.MaxBatchSeqs, qcfg.MaxBatchTokens, qcfg.KVPoolBlocks, qcfg.GGR))
	return sb.String()
}

// stageRowKey is the exact-match result-cache key of one row's LLM call: the
// stage fingerprint plus the row's visible cells, its hidden ground truth
// (two rows that read the same but carry different labels answer
// differently), and its output budget (free-text answers scale with it).
func stageRowKey(fp string, tbl *table.Table, spec query.Spec, row int) string {
	var sb strings.Builder
	sb.Grow(len(fp) + 64)
	sb.WriteString(fp)
	for _, cell := range tbl.Row(row) {
		fmt.Fprintf(&sb, "%d:%s;", len(cell), cell)
	}
	truth := ""
	if spec.TruthHidden != "" {
		truth = tbl.HiddenValue(spec.TruthHidden, row)
	}
	fmt.Fprintf(&sb, "|%d:%s|%d", len(truth), truth, spec.OutTokensFor(row))
	return sb.String()
}
