package runtime

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

// RunStage is the runtime's stage executor, injected into
// sqlfront.ExecConfig.StageRunner for every statement the runtime serves.
// For each row of the stage it decides, in one atomic cache step, whether
// the call's answer is already cached, already being computed by a
// concurrent statement (inflight dedup), or ours to compute; owned rows go
// through the cross-query micro-batcher. The returned StageResult matches
// query.RunStageContext's contract — Outputs indexed by tbl's rows — with
// ModelCalls reporting only the rows that actually reached an engine.
//
// Cancellation: ctx is honored at entry, while parked in the batch window,
// and while waiting on another statement's inflight computation. A canceled
// owner abandons its wait but never its obligations — the coalesced run it
// joined completes regardless (it may carry other statements' rows), and a
// detached resolver commits or fails the owner's result-cache reservations
// when the run lands, so subscribed statements still complete and nothing
// stays reserved forever.
//
// Specs without content-derived row keys (Spec.RowKeys == nil) bypass the
// cache and batcher: a positional row identity says nothing about the row's
// content, so exact-match caching would be unsound. The LLM-SQL executor
// always content-keys its stages.
func (rt *Runtime) RunStage(ctx context.Context, spec query.Spec, tbl *table.Table, qcfg query.Config) (*query.StageResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := tbl.NumRows()
	if n == 0 {
		return &query.StageResult{Spec: spec}, nil
	}
	if spec.RowKeys == nil {
		rt.c.directStages.Add(1)
		st, err := query.RunStageContext(ctx, spec, tbl, qcfg)
		if err != nil {
			return nil, err
		}
		rt.c.batches.Add(1)
		rt.c.llmCalls.Add(int64(st.ModelCalls))
		rt.c.jctMicros.Add(int64(st.Metrics.JCT * 1e6))
		rt.c.solverMicros.Add(int64(st.SolverSeconds * 1e6))
		rt.c.promptTokens.Add(st.Metrics.PromptTokens)
		rt.c.matchedTokens.Add(st.Metrics.MatchedTokens)
		rt.c.prefilledTokens.Add(st.Metrics.PrefilledTokens)
		if si := stmtInfoFrom(ctx); si != nil {
			si.calls += int64(st.ModelCalls)
			si.tokens += st.Metrics.PromptTokens
		}
		// Charge the trace exactly what the statement was charged: same
		// numbers, same place — that identity is the conservation invariant.
		if sp := obs.FromContext(ctx); sp != nil {
			sp.Set("direct", true)
			sp.Charge(int64(st.ModelCalls), st.Metrics.PromptTokens, st.Metrics.JCT)
		}
		return st, nil
	}

	fp := query.StageKey(spec, tbl.Columns(), qcfg)
	keys := make([]string, n)
	vals := make(map[string]string) // resolved outputs by row key
	subs := make(map[string]*inflight)
	seen := make(map[string]bool)
	var ownedRows []int
	var ownedKeys []string
	var hits, inflightJoins, deduped int64
	for i := 0; i < n; i++ {
		key := stageRowKey(fp, tbl, spec, i)
		keys[i] = key
		if seen[key] {
			// Duplicate row content within this stage: one computation
			// serves every copy.
			deduped++
			continue
		}
		seen[key] = true
		switch state, val, fl := rt.cache.acquire(key); state {
		case acquireHit:
			hits++
			vals[key] = val
		case acquireSubscribed:
			inflightJoins++
			subs[key] = fl
		case acquireOwned:
			ownedRows = append(ownedRows, i)
			ownedKeys = append(ownedKeys, key)
		}
	}
	rt.c.rowsDeduped.Add(deduped)
	rt.c.cacheHits.Add(hits)
	rt.c.inflightDeduped.Add(inflightJoins)
	rt.c.cacheMisses.Add(int64(len(ownedRows)))
	rt.rollups.ObserveCache(fp, hits, int64(len(ownedRows)), inflightJoins, deduped)
	sp := obs.FromContext(ctx)
	if sp != nil {
		sp.Set("rows", n)
		sp.Set("cacheHits", hits)
		sp.Set("cacheMisses", len(ownedRows))
		sp.Set("inflightDeduped", inflightJoins)
		sp.Set("rowsDeduped", deduped)
	}

	// SolverSeconds and PHC stay zero here unless this stage owns rows, in
	// which case the batch result below overwrites them.
	//llmqlint:partial
	st := &query.StageResult{Spec: spec, Rows: n, ModelCalls: len(ownedRows)}
	if len(ownedRows) > 0 {
		parkStart := time.Now()
		m := rt.batcher.submit(ctx, fp, spec, tbl, ownedRows, qcfg)
		select {
		case <-m.done:
		case <-ctx.Done():
			// Abandon the wait, not the reservations: the batch proceeds
			// without us and the detached resolver settles our keys when it
			// lands, so subscribers and later statements are not poisoned.
			go func() {
				<-m.done
				rt.resolveOwned(ownedKeys, m)
				rt.c.abandonedResolved.Add(int64(len(ownedKeys)))
			}()
			return nil, ctx.Err()
		}
		if sp != nil {
			park := sp.ChildAt("batch-wait", parkStart, time.Since(parkStart))
			park.Set("ownedRows", len(ownedRows))
			park.Set("windowMs", float64(m.window)/float64(time.Millisecond))
			if m.pulledForward {
				park.Set("pulledWindowForward", true)
			}
		}
		if m.err != nil {
			rt.resolveOwned(ownedKeys, m)
			return nil, m.err
		}
		rt.resolveOwned(ownedKeys, m)
		for j, key := range ownedKeys {
			vals[key] = m.outputs[j]
		}
		// Attribute the coalesced run's serving cost to this statement: it
		// waited for exactly this engine run. A batch shared by k statements
		// is counted once in the runtime totals (see batcher.run) but
		// appears in each participant's own Result.
		st.Metrics = m.batch.Metrics
		st.SolverSeconds = m.batch.SolverSeconds
		st.PHC = m.batch.PHC
		// Charge this statement its own rows, and a row-proportional share
		// of the coalesced run's prompt tokens: the batch total is conserved
		// across participants (up to integer truncation), so per-client
		// token accounting sums to the fleet's.
		var tok int64
		if m.batch.Rows > 0 {
			tok = m.batch.Metrics.PromptTokens * int64(len(m.rows)) / int64(m.batch.Rows)
		}
		if si := stmtInfoFrom(ctx); si != nil {
			si.calls += int64(len(ownedRows))
			si.tokens += tok
		}
		if sp != nil {
			// The shared batch span (zero charges, whole-run attrs) joins
			// this statement's tree; the member's own proportional charge —
			// the same numbers the statement was charged above — lands on
			// the stage span so trace totals conserve even when the batch is
			// shared.
			sp.Adopt(m.bspan)
			sp.Charge(int64(len(ownedRows)), tok, m.batch.Metrics.JCT)
		}
	}
	if len(subs) > 0 {
		subStart := time.Now()
		for key, fl := range subs {
			select {
			case <-ctx.Done():
				// A subscription carries no obligation; the owner resolves it.
				return nil, ctx.Err()
			case <-fl.done:
			}
			if fl.err != nil {
				return nil, fmt.Errorf("runtime: deduplicated call failed in its owning statement: %w", fl.err)
			}
			vals[key] = fl.val
		}
		if sp != nil {
			sp.ChildAt("inflight-wait", subStart, time.Since(subStart)).Set("calls", len(subs))
		}
	}

	outputs := make([]string, n)
	for i, key := range keys {
		outputs[i] = vals[key]
	}
	st.Outputs = outputs
	return st, nil
}

// resolveOwned settles a member's result-cache reservations from its
// finished batch: commit every output on success, fail every key on error
// (failed keys stay uncached so a later statement retries). It is
// idempotent per key — commit and fail both no-op on an already-resolved
// entry — and is called either inline by the owning statement or by the
// detached resolver a canceled owner leaves behind.
func (rt *Runtime) resolveOwned(keys []string, m *member) {
	if m.err != nil {
		for _, key := range keys {
			rt.cache.fail(key, m.err)
		}
		return
	}
	for j, key := range keys {
		rt.cache.commit(key, m.outputs[j])
	}
}

// stageRowKey is the exact-match result-cache key of one row's LLM call: the
// stage fingerprint plus the row's visible cells, its hidden ground truth
// (two rows that read the same but carry different labels answer
// differently), and its output budget (free-text answers scale with it).
func stageRowKey(fp string, tbl *table.Table, spec query.Spec, row int) string {
	var sb strings.Builder
	sb.Grow(len(fp) + 64)
	sb.WriteString(fp)
	for _, cell := range tbl.Row(row) {
		fmt.Fprintf(&sb, "%d:%s;", len(cell), cell)
	}
	truth := ""
	if spec.TruthHidden != "" {
		truth = tbl.HiddenValue(spec.TruthHidden, row)
	}
	fmt.Fprintf(&sb, "|%d:%s|%d", len(truth), truth, spec.OutTokensFor(row))
	return sb.String()
}
