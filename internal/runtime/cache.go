package runtime

import "sync"

// inflight is one LLM call being computed right now. The owner resolves it
// exactly once; subscribers select on done (against their own context) and
// then read val/err.
type inflight struct {
	done chan struct{}
	val  string
	err  error
}

// resultCache is the exact-match LLM result cache plus the inflight table.
// One lock covers both so a lookup classifies a key atomically: cached,
// being computed by someone else, or ours to compute. Entries are evicted in
// LRU order once capacity is exceeded; inflight entries are not counted
// against capacity (they are transient and bounded by pending rows).
type resultCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*cacheEntry // guarded by mu
	head     *cacheEntry            // guarded by mu; most recently used
	tail     *cacheEntry            // guarded by mu; least recently used
	inflight map[string]*inflight   // guarded by mu
}

type cacheEntry struct {
	key        string
	val        string
	prev, next *cacheEntry
}

// newResultCache sizes the cache; capacity <= 0 disables storing results
// (inflight dedup still works — it needs no retention).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		entries:  make(map[string]*cacheEntry),
		inflight: make(map[string]*inflight),
	}
}

// classification of one key by acquire.
type acquireState int

const (
	acquireHit        acquireState = iota // value returned, nothing to do
	acquireSubscribed                     // someone else is computing; wait on the inflight
	acquireOwned                          // caller must compute and then commit or fail
)

// acquire classifies key in one atomic step. On acquireHit val holds the
// cached output; on acquireSubscribed fl is the computation to wait on; on
// acquireOwned the caller has registered a new inflight entry (fl) it is
// obligated to resolve via commit or fail.
func (c *resultCache) acquire(key string) (state acquireState, val string, fl *inflight) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.touch(e)
		return acquireHit, e.val, nil
	}
	if f, ok := c.inflight[key]; ok {
		return acquireSubscribed, "", f
	}
	f := &inflight{done: make(chan struct{})}
	c.inflight[key] = f
	return acquireOwned, "", f
}

// commit stores the computed value and wakes every subscriber.
func (c *resultCache) commit(key, val string) {
	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		delete(c.inflight, key)
		f.val = val
		close(f.done)
	}
	if c.capacity > 0 {
		if e, ok := c.entries[key]; ok {
			e.val = val
			c.touch(e)
		} else {
			e := &cacheEntry{key: key, val: val}
			c.entries[key] = e
			c.pushFront(e)
			for len(c.entries) > c.capacity {
				lru := c.tail
				c.unlink(lru)
				delete(c.entries, lru.key)
			}
		}
	}
	c.mu.Unlock()
}

// fail resolves the inflight entry with an error; the key stays uncached so
// a later statement retries.
func (c *resultCache) fail(key string, err error) {
	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		delete(c.inflight, key)
		f.err = err
		close(f.done)
	}
	c.mu.Unlock()
}

// len reports the number of cached (committed) entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// --- intrusive LRU list (mu held) ---------------------------------------

//llmqlint:holds mu
func (c *resultCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

//llmqlint:holds mu
func (c *resultCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

//llmqlint:holds mu
func (c *resultCache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
