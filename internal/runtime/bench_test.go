package runtime

import (
	"flag"
	"testing"
	"time"

	"repro/internal/backend"
)

// benchBackend selects the serving backend for BenchmarkMultiClientServing
// (go test ./internal/runtime/ -bench ... -args -backend=persistent). The
// CI bench smoke runs it once per backend; the persistent run additionally
// asserts its hit tokens beat the per-batch-engine baseline on the same
// sequential refresh workload.
var benchBackend = flag.String("backend", "sim", "serving backend for the multi-client bench: sim or persistent")

// benchBackendFor resolves the flag into a fresh backend and reports
// whether the persistent comparison should run.
func benchBackendFor(b *testing.B) (backend.Backend, bool) {
	be, err := backend.ByName(*benchBackend)
	if err != nil {
		b.Fatal(err)
	}
	return be, *benchBackend == "persistent"
}

// multiClientWorkload is the dashboard scenario the runtime is built for:
// K clients refresh overlapping statements — repeats hit the result cache,
// and distinct statements sharing an LLM call coalesce into cross-query
// batches. Returns the statement of each client in submission order.
func multiClientWorkload() []string {
	base := []string{
		dashboardStatements[0], // emea resolved dashboard
		dashboardStatements[1], // amer resolved dashboard (same LLM call)
		dashboardStatements[3], // anger scoreboard
	}
	var stmts []string
	for turn := 0; turn < 2; turn++ { // each dashboard refreshes twice
		stmts = append(stmts, base...)
	}
	return stmts
}

// TestConcurrentBeatsSequential is the acceptance bar of this subsystem: the
// runtime serving K concurrent statements must make strictly fewer total
// model calls and spend strictly less total serving time (virtual JCT, each
// engine run counted once) than the same K statements run back to back
// through SQLDB.Exec — while returning identical result relations.
func TestConcurrentBeatsSequential(t *testing.T) {
	stmts := multiClientWorkload()
	db := newDB(45)
	want, seqCalls, seqJCT := seqBaseline(t, db, stmts)

	rt := New(db, Config{Workers: len(stmts), BatchWindow: 60 * time.Millisecond})
	defer rt.Close()
	start := time.Now()
	handles := make([]*Handle, len(stmts))
	for i, sql := range stmts {
		handles[i] = rt.Submit(sql, Options{})
	}
	for i, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("client %d (%q): %v", i, stmts[i], err)
		}
		sameRelation(t, stmts[i], want[i], res)
	}
	wall := time.Since(start)

	m := rt.Metrics()
	if m.LLMCalls >= seqCalls {
		t.Errorf("runtime model calls = %d, want strictly fewer than %d sequential calls", m.LLMCalls, seqCalls)
	}
	if m.TotalJCT >= seqJCT {
		t.Errorf("runtime total JCT = %.2fs, want strictly below %.2fs sequential", m.TotalJCT, seqJCT)
	}
	if m.CacheHits+m.InflightDeduped == 0 {
		t.Error("no call was served without a model run; cache/dedup inert")
	}
	t.Logf("%d statements: %d model calls (sequential %d), JCT %.1fs (sequential %.1fs), "+
		"cache hits %d, inflight dedup %d, coalesced runs %d, wall %.0fms",
		len(stmts), m.LLMCalls, seqCalls, m.TotalJCT, seqJCT,
		m.CacheHits, m.InflightDeduped, m.CoalescedRuns, float64(wall.Microseconds())/1000)
}

// BenchmarkMultiClientServing measures the runtime end to end on the
// multi-client workload: submit everything, wait for all. The CI benchmark
// smoke runs this at one iteration to catch rot, once per -backend value.
// Reported custom metrics: model calls, virtual serving seconds, and hit
// tokens per iteration. Under -backend=persistent the bench also asserts
// the cross-window prefix persistence pays: on the sequential refresh
// workload (two batch windows, one stage fingerprint) the persistent
// backend's cumulative hit tokens must be strictly above the sim baseline.
func BenchmarkMultiClientServing(b *testing.B) {
	be, persistent := benchBackendFor(b)
	if be != nil {
		defer be.Close()
	}
	stmts := multiClientWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := newDB(45)
		rt := New(db, Config{Workers: 8, BatchWindow: 5 * time.Millisecond, Backend: be})
		handles := make([]*Handle, len(stmts))
		for j, sql := range stmts {
			handles[j] = rt.Submit(sql, Options{})
		}
		for j, h := range handles {
			if _, err := h.Wait(); err != nil {
				b.Fatalf("client %d: %v", j, err)
			}
		}
		m := rt.Metrics()
		rt.Close()
		if i == b.N-1 {
			b.ReportMetric(float64(m.LLMCalls), "llmcalls/op")
			b.ReportMetric(m.TotalJCT, "jct-s/op")
			b.ReportMetric(float64(m.MatchedTokens), "hit-tok/op")
		}
	}
	if persistent {
		b.StopTimer()
		simBE := backend.NewSim()
		defer simBE.Close()
		perBE := backend.NewPersistent(0)
		defer perBE.Close()
		simM, _ := runRefreshes(b, simBE, 45)
		perM, _ := runRefreshes(b, perBE, 45)
		if perM.MatchedTokens <= simM.MatchedTokens {
			b.Fatalf("persistent hit tokens = %d, want strictly above per-batch-engine baseline %d",
				perM.MatchedTokens, simM.MatchedTokens)
		}
		b.ReportMetric(float64(perM.MatchedTokens-simM.MatchedTokens), "extra-hit-tok")
	}
}

// BenchmarkSequentialServing is the baseline the multi-client bench is read
// against: the same statements through plain SQLDB.Exec, one at a time.
func BenchmarkSequentialServing(b *testing.B) {
	stmts := multiClientWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := newDB(45)
		_, calls, jct := seqBaseline(b, db, stmts)
		if i == b.N-1 {
			b.ReportMetric(float64(calls), "llmcalls/op")
			b.ReportMetric(jct, "jct-s/op")
		}
	}
}
