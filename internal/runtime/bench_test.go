package runtime

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"

	"repro/internal/backend"
)

// benchBackend selects the serving backend for BenchmarkMultiClientServing
// (go test ./internal/runtime/ -bench ... -args -backend=persistent). The
// CI bench smoke runs it once per backend; the persistent run additionally
// asserts its hit tokens beat the per-batch-engine baseline on the same
// sequential refresh workload.
var benchBackend = flag.String("backend", "sim", "serving backend for the multi-client bench: sim or persistent")

// benchShards selects the fan-out width for BenchmarkShardedServing; the
// bench always compares against an unsharded run of the same workload.
var benchShards = flag.Int("shards", 4, "shard count for the sharded serving bench")

// servingBaseline, when set, writes a BENCH_serving.json perf baseline
// (JCT, model calls, hit tokens at shards 1 and N) to the given path so
// future changes have a trajectory to compare against.
var servingBaseline = flag.String("serving-baseline", "", "path to write the serving perf baseline JSON ('' disables)")

// benchBackendFor resolves the flag into a fresh backend and reports
// whether the persistent comparison should run.
func benchBackendFor(b *testing.B) (backend.Backend, bool) {
	be, err := backend.ByName(*benchBackend)
	if err != nil {
		b.Fatal(err)
	}
	return be, *benchBackend == "persistent"
}

// multiClientWorkload is the dashboard scenario the runtime is built for:
// K clients refresh overlapping statements — repeats hit the result cache,
// and distinct statements sharing an LLM call coalesce into cross-query
// batches. Returns the statement of each client in submission order.
func multiClientWorkload() []string {
	base := []string{
		dashboardStatements[0], // emea resolved dashboard
		dashboardStatements[1], // amer resolved dashboard (same LLM call)
		dashboardStatements[3], // anger scoreboard
	}
	var stmts []string
	for turn := 0; turn < 2; turn++ { // each dashboard refreshes twice
		stmts = append(stmts, base...)
	}
	return stmts
}

// TestConcurrentBeatsSequential is the acceptance bar of this subsystem: the
// runtime serving K concurrent statements must make strictly fewer total
// model calls and spend strictly less total serving time (virtual JCT, each
// engine run counted once) than the same K statements run back to back
// through SQLDB.Exec — while returning identical result relations.
func TestConcurrentBeatsSequential(t *testing.T) {
	stmts := multiClientWorkload()
	db := newDB(45)
	want, seqCalls, seqJCT := seqBaseline(t, db, stmts)

	rt := New(db, Config{Workers: len(stmts), BatchWindow: 60 * time.Millisecond})
	defer rt.Close()
	start := time.Now()
	handles := make([]*Handle, len(stmts))
	for i, sql := range stmts {
		handles[i] = rt.Submit(sql, Options{})
	}
	for i, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("client %d (%q): %v", i, stmts[i], err)
		}
		sameRelation(t, stmts[i], want[i], res)
	}
	wall := time.Since(start)

	m := rt.Metrics()
	if m.LLMCalls >= seqCalls {
		t.Errorf("runtime model calls = %d, want strictly fewer than %d sequential calls", m.LLMCalls, seqCalls)
	}
	if m.TotalJCT >= seqJCT {
		t.Errorf("runtime total JCT = %.2fs, want strictly below %.2fs sequential", m.TotalJCT, seqJCT)
	}
	if m.CacheHits+m.InflightDeduped == 0 {
		t.Error("no call was served without a model run; cache/dedup inert")
	}
	t.Logf("%d statements: %d model calls (sequential %d), JCT %.1fs (sequential %.1fs), "+
		"cache hits %d, inflight dedup %d, coalesced runs %d, wall %.0fms",
		len(stmts), m.LLMCalls, seqCalls, m.TotalJCT, seqJCT,
		m.CacheHits, m.InflightDeduped, m.CoalescedRuns, float64(wall.Microseconds())/1000)
}

// BenchmarkMultiClientServing measures the runtime end to end on the
// multi-client workload: submit everything, wait for all. The CI benchmark
// smoke runs this at one iteration to catch rot, once per -backend value.
// Reported custom metrics: model calls, virtual serving seconds, and hit
// tokens per iteration. Under -backend=persistent the bench also asserts
// the cross-window prefix persistence pays: on the sequential refresh
// workload (two batch windows, one stage fingerprint) the persistent
// backend's cumulative hit tokens must be strictly above the sim baseline.
func BenchmarkMultiClientServing(b *testing.B) {
	be, persistent := benchBackendFor(b)
	if be != nil {
		defer be.Close()
	}
	stmts := multiClientWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := newDB(45)
		rt := New(db, Config{Workers: 8, BatchWindow: 5 * time.Millisecond, Backend: be})
		handles := make([]*Handle, len(stmts))
		for j, sql := range stmts {
			handles[j] = rt.Submit(sql, Options{})
		}
		for j, h := range handles {
			if _, err := h.Wait(); err != nil {
				b.Fatalf("client %d: %v", j, err)
			}
		}
		m := rt.Metrics()
		rt.Close()
		if i == b.N-1 {
			b.ReportMetric(float64(m.LLMCalls), "llmcalls/op")
			b.ReportMetric(m.TotalJCT, "jct-s/op")
			b.ReportMetric(float64(m.MatchedTokens), "hit-tok/op")
		}
	}
	if persistent {
		b.StopTimer()
		simBE := backend.NewSim()
		defer simBE.Close()
		perBE := backend.NewPersistent(0)
		defer perBE.Close()
		simM, _ := runRefreshes(b, simBE, 45)
		perM, _ := runRefreshes(b, perBE, 45)
		if perM.MatchedTokens <= simM.MatchedTokens {
			b.Fatalf("persistent hit tokens = %d, want strictly above per-batch-engine baseline %d",
				perM.MatchedTokens, simM.MatchedTokens)
		}
		b.ReportMetric(float64(perM.MatchedTokens-simM.MatchedTokens), "extra-hit-tok")
	}
}

// shardPoint is one row of the BENCH_serving.json baseline.
type shardPoint struct {
	Shards        int     `json:"shards"`
	JCTSeconds    float64 `json:"jctSeconds"`
	ModelCalls    int64   `json:"modelCalls"`
	HitTokens     int64   `json:"hitTokens"`
	PromptTokens  int64   `json:"promptTokens"`
	ReorderSolves int64   `json:"reorderSolves"`
}

// runShardPoint serves the hot-stage workload once at the given fan-out and
// reports the fleet metrics as a baseline row.
func runShardPoint(b *testing.B, shards, rows int) (shardPoint, Metrics) {
	var be backend.Backend = backend.NewSim()
	if shards > 1 {
		sh, err := backend.NewSharded(be, shards)
		if err != nil {
			b.Fatal(err)
		}
		be = sh
	}
	defer be.Close()
	m, _ := runHotWorkload(b, be, rows)
	return shardPoint{
		Shards:        shards,
		JCTSeconds:    m.TotalJCT,
		ModelCalls:    m.LLMCalls,
		HitTokens:     m.MatchedTokens,
		PromptTokens:  m.PromptTokens,
		ReorderSolves: m.ReorderSolves,
	}, m
}

// BenchmarkShardedServing is the data-parallel acceptance artifact: the
// hot-stage workload (four concurrent clients coalescing into one batch on
// one stage fingerprint) served at -shards (default 4) versus unsharded.
// The sharded run's total virtual JCT must be strictly below the unsharded
// run's, with prefix hit tokens at >= 90% — asserted on every run,
// including the 1x CI smoke. With -serving-baseline the comparison is also
// written out as BENCH_serving.json for the perf trajectory.
func BenchmarkShardedServing(b *testing.B) {
	const rows = 72
	var one, many shardPoint
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		one, _ = runShardPoint(b, 1, rows)
		many, _ = runShardPoint(b, *benchShards, rows)
	}
	if many.JCTSeconds >= one.JCTSeconds {
		b.Fatalf("shards=%d JCT %.2fs, want strictly below shards=1 JCT %.2fs",
			*benchShards, many.JCTSeconds, one.JCTSeconds)
	}
	if min := one.HitTokens * 9 / 10; many.HitTokens < min {
		b.Fatalf("shards=%d hit tokens %d, want >= 90%% of shards=1's %d",
			*benchShards, many.HitTokens, one.HitTokens)
	}
	b.ReportMetric(one.JCTSeconds, "jct-1shard-s/op")
	b.ReportMetric(many.JCTSeconds, "jct-Nshard-s/op")
	b.ReportMetric(float64(many.HitTokens), "hit-tok/op")
	if *servingBaseline != "" {
		out, err := json.MarshalIndent(struct {
			Workload string       `json:"workload"`
			Rows     int          `json:"rows"`
			Points   []shardPoint `json:"points"`
		}{Workload: "hot-stage 4-client coalesced batch", Rows: rows,
			Points: []shardPoint{one, many}}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(*servingBaseline, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("serving baseline written to %s", *servingBaseline)
	}
}

// BenchmarkReorderCacheServing pins the amortized planning cost: two
// identical batch windows (result cache off, so the engine runs twice) must
// solve GGR exactly once.
func BenchmarkReorderCacheServing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := newDB(45)
		rt := New(db, Config{Workers: 2, CacheCapacity: -1})
		for turn := 0; turn < 2; turn++ {
			if _, err := rt.Exec(dashboardStatements[0], Options{}); err != nil {
				b.Fatal(err)
			}
		}
		m := rt.Metrics()
		rt.Close()
		if m.ReorderSolves != 1 {
			b.Fatalf("repeated window solved GGR %d times, want 1", m.ReorderSolves)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(m.ReorderCacheHits), "reorder-hits/op")
			b.ReportMetric(float64(m.ReorderSolves), "ggr-solves/op")
		}
	}
}

// BenchmarkSequentialServing is the baseline the multi-client bench is read
// against: the same statements through plain SQLDB.Exec, one at a time.
func BenchmarkSequentialServing(b *testing.B) {
	stmts := multiClientWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := newDB(45)
		_, calls, jct := seqBaseline(b, db, stmts)
		if i == b.N-1 {
			b.ReportMetric(float64(calls), "llmcalls/op")
			b.ReportMetric(jct, "jct-s/op")
		}
	}
}
