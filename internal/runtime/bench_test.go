package runtime

import (
	"testing"
	"time"
)

// multiClientWorkload is the dashboard scenario the runtime is built for:
// K clients refresh overlapping statements — repeats hit the result cache,
// and distinct statements sharing an LLM call coalesce into cross-query
// batches. Returns the statement of each client in submission order.
func multiClientWorkload() []string {
	base := []string{
		dashboardStatements[0], // emea resolved dashboard
		dashboardStatements[1], // amer resolved dashboard (same LLM call)
		dashboardStatements[3], // anger scoreboard
	}
	var stmts []string
	for turn := 0; turn < 2; turn++ { // each dashboard refreshes twice
		stmts = append(stmts, base...)
	}
	return stmts
}

// TestConcurrentBeatsSequential is the acceptance bar of this subsystem: the
// runtime serving K concurrent statements must make strictly fewer total
// model calls and spend strictly less total serving time (virtual JCT, each
// engine run counted once) than the same K statements run back to back
// through SQLDB.Exec — while returning identical result relations.
func TestConcurrentBeatsSequential(t *testing.T) {
	stmts := multiClientWorkload()
	db := newDB(45)
	want, seqCalls, seqJCT := seqBaseline(t, db, stmts)

	rt := New(db, Config{Workers: len(stmts), BatchWindow: 60 * time.Millisecond})
	defer rt.Close()
	start := time.Now()
	handles := make([]*Handle, len(stmts))
	for i, sql := range stmts {
		handles[i] = rt.Submit(sql, Options{})
	}
	for i, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("client %d (%q): %v", i, stmts[i], err)
		}
		sameRelation(t, stmts[i], want[i], res)
	}
	wall := time.Since(start)

	m := rt.Metrics()
	if m.LLMCalls >= seqCalls {
		t.Errorf("runtime model calls = %d, want strictly fewer than %d sequential calls", m.LLMCalls, seqCalls)
	}
	if m.TotalJCT >= seqJCT {
		t.Errorf("runtime total JCT = %.2fs, want strictly below %.2fs sequential", m.TotalJCT, seqJCT)
	}
	if m.CacheHits+m.InflightDeduped == 0 {
		t.Error("no call was served without a model run; cache/dedup inert")
	}
	t.Logf("%d statements: %d model calls (sequential %d), JCT %.1fs (sequential %.1fs), "+
		"cache hits %d, inflight dedup %d, coalesced runs %d, wall %.0fms",
		len(stmts), m.LLMCalls, seqCalls, m.TotalJCT, seqJCT,
		m.CacheHits, m.InflightDeduped, m.CoalescedRuns, float64(wall.Microseconds())/1000)
}

// BenchmarkMultiClientServing measures the runtime end to end on the
// multi-client workload: submit everything, wait for all. The CI benchmark
// smoke runs this at one iteration to catch rot. Reported custom metrics:
// model calls and virtual serving seconds per iteration.
func BenchmarkMultiClientServing(b *testing.B) {
	stmts := multiClientWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := newDB(45)
		rt := New(db, Config{Workers: 8, BatchWindow: 5 * time.Millisecond})
		handles := make([]*Handle, len(stmts))
		for j, sql := range stmts {
			handles[j] = rt.Submit(sql, Options{})
		}
		for j, h := range handles {
			if _, err := h.Wait(); err != nil {
				b.Fatalf("client %d: %v", j, err)
			}
		}
		m := rt.Metrics()
		rt.Close()
		if i == b.N-1 {
			b.ReportMetric(float64(m.LLMCalls), "llmcalls/op")
			b.ReportMetric(m.TotalJCT, "jct-s/op")
		}
	}
}

// BenchmarkSequentialServing is the baseline the multi-client bench is read
// against: the same statements through plain SQLDB.Exec, one at a time.
func BenchmarkSequentialServing(b *testing.B) {
	stmts := multiClientWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := newDB(45)
		_, calls, jct := seqBaseline(b, db, stmts)
		if i == b.N-1 {
			b.ReportMetric(float64(calls), "llmcalls/op")
			b.ReportMetric(jct, "jct-s/op")
		}
	}
}
