package runtime

import (
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/sqlfront"
)

// refreshStatements is a dashboard refresh cycle whose statements share one
// LLM call (one stage fingerprint) over disjoint row sets: executed
// sequentially they land in consecutive batch windows, which is exactly the
// boundary a per-batch engine cannot carry prefix state across.
var refreshStatements = []string{
	dashboardStatements[0], // emea rows
	dashboardStatements[1], // amer rows, same LLM call
}

// runRefreshes executes the refresh cycle one statement at a time on a
// fresh runtime over be and returns the fleet metrics plus the relations.
func runRefreshes(tb testing.TB, be backend.Backend, rows int) (Metrics, []*sqlfront.Result) {
	tb.Helper()
	db := newDB(rows)
	rt := New(db, Config{Workers: 1, BatchWindow: 2 * time.Millisecond, Backend: be})
	defer rt.Close()
	var results []*sqlfront.Result
	for _, sql := range refreshStatements {
		res, err := rt.Exec(sql, Options{})
		if err != nil {
			tb.Fatalf("%q: %v", sql, err)
		}
		results = append(results, res)
	}
	return rt.Metrics(), results
}

// TestPersistentBackendRaisesHitTokens pins the acceptance criterion of the
// Backend seam: across two consecutive batch windows sharing a stage
// fingerprint, the persistent backend's cumulative prefix-hit tokens are
// strictly above the per-batch-engine (sim) baseline — the second window
// finds the first window's prompt prefix still cached — while both backends
// make the same model calls and return byte-identical relations.
func TestPersistentBackendRaisesHitTokens(t *testing.T) {
	simBE := backend.NewSim()
	defer simBE.Close()
	perBE := backend.NewPersistent(0)
	defer perBE.Close()

	simM, simRes := runRefreshes(t, simBE, 36)
	perM, perRes := runRefreshes(t, perBE, 36)

	if perM.MatchedTokens <= simM.MatchedTokens {
		t.Errorf("persistent hit tokens = %d, want strictly above sim's %d",
			perM.MatchedTokens, simM.MatchedTokens)
	}
	if perM.LLMCalls != simM.LLMCalls {
		t.Errorf("model calls diverged: persistent %d, sim %d", perM.LLMCalls, simM.LLMCalls)
	}
	if perM.Batches < 2 {
		t.Fatalf("persistent run produced %d batches, want >= 2 windows", perM.Batches)
	}
	for i := range simRes {
		sameRelation(t, refreshStatements[i], simRes[i], perRes[i])
	}
	if perBE.Engines() != 1 {
		t.Errorf("live engines = %d, want 1 (both windows share one stage fingerprint)", perBE.Engines())
	}
	t.Logf("hit tokens over %d windows: sim %d, persistent %d (+%d)",
		perM.Batches, simM.MatchedTokens, perM.MatchedTokens, perM.MatchedTokens-simM.MatchedTokens)
}

// TestRuntimeBackendOverride checks Config.Backend wins over Exec.Backend:
// the runtime's configured backend is the one that sees every batch.
func TestRuntimeBackendOverride(t *testing.T) {
	rec := backend.NewRecording(nil)
	defer rec.Close()
	inner := backend.NewRecording(nil)
	defer inner.Close()

	db := newDB(12)
	cfg := Config{Workers: 1, Backend: rec}
	cfg.Exec.Backend = inner // must lose to Config.Backend
	rt := New(db, cfg)
	defer rt.Close()
	if _, err := rt.Exec(dashboardStatements[0], Options{}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches()) == 0 {
		t.Error("configured backend saw no batches")
	}
	if len(inner.Batches()) != 0 {
		t.Error("Exec.Backend was used despite Config.Backend override")
	}
}
