package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/query"
	"repro/internal/tokenizer"
)

func init() {
	registry["ablation_online"] = runAblationOnline
	registry["ablation_window"] = runAblationWindow
	order = append(order, "ablation_online", "ablation_window")
}

// runAblationOnline compares offline reordering (GGR) against online
// cache-aware scheduling (SGLang-style: admit the waiting request with the
// longest cached prefix). Online scheduling reorders rows at serve time but
// cannot reorder fields, so it recovers part — not all — of GGR's win; the
// gap is the value of the paper's offline, field-level optimization.
func runAblationOnline(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "ablation_online",
		Title: "Offline GGR vs online cache-aware scheduling (filter queries, Llama-3-8B)",
		Columns: []string{
			"dataset", "orig FIFO hit", "orig cache-aware hit", "GGR FIFO hit",
			"orig FIFO JCT", "orig cache-aware JCT", "GGR JCT",
		},
	}
	for _, ds := range []string{"Movies", "BIRD", "PDMX"} {
		tbl, err := inputTable(ds, cfg)
		if err != nil {
			return nil, err
		}
		spec, err := query.ForDataset(ds, query.Filter)
		if err != nil {
			return nil, err
		}
		pool := cfg.poolBlocks(llmsim.Llama3_8B, llmsim.SingleL4)

		type outcome struct {
			hit float64
			jct float64
		}
		run := func(sched *core.Schedule, policy llmsim.SchedPolicy) (outcome, error) {
			m, err := replayWithSched(spec, sched, policy, pool)
			if err != nil {
				return outcome{}, err
			}
			return outcome{hit: m.HitRate(), jct: m.JCT}, nil
		}
		orig := core.Original(tbl)
		ggr := core.GGR(tbl, core.DefaultGGROptions(tokenLen)).Schedule

		fifo, err := run(orig, llmsim.FIFO)
		if err != nil {
			return nil, err
		}
		aware, err := run(orig, llmsim.CacheAware)
		if err != nil {
			return nil, err
		}
		offline, err := run(ggr, llmsim.FIFO)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			ds, pct(fifo.hit), pct(aware.hit), pct(offline.hit),
			f1(fifo.jct), f1(aware.jct), f1(offline.jct),
		})
	}
	return rep, nil
}

// replayWithSched runs a prepared schedule under a given admission policy.
func replayWithSched(spec query.Spec, sched *core.Schedule, policy llmsim.SchedPolicy, capacity int64) (llmsim.Metrics, error) {
	tok := tokenizer.New()
	prefix := tok.Encode(query.PromptPrefix(spec.UserPrompt))
	reqs := make([]*llmsim.Request, len(sched.Rows))
	for i, row := range sched.Rows {
		data := tok.Encode(query.RowJSON(row.Cells))
		p := make([]tokenizer.Token, 0, len(prefix)+len(data))
		p = append(p, prefix...)
		p = append(p, data...)
		reqs[i] = &llmsim.Request{ID: row.Source, Prompt: p, OutTokens: spec.OutTokensFor(row.Source)}
	}
	eng := llmsim.New(llmsim.Config{
		Cost:             llmsim.CostModel{Model: llmsim.Llama3_8B, Cluster: llmsim.SingleL4},
		CacheEnabled:     true,
		CapacityOverride: capacity,
		Sched:            policy,
	})
	return eng.Run(reqs)
}

// runAblationWindow sweeps the windowed-GGR window size on the BIRD filter
// query: the streaming deployment mode trades cross-window sharing for
// bounded solver memory.
func runAblationWindow(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "ablation_window",
		Title:   "Windowed GGR: window size vs hit rate and solver time (BIRD filter)",
		Columns: []string{"window", "data hit rate", "PHC", "solver (s)"},
	}
	tbl, err := inputTable("BIRD", cfg)
	if err != nil {
		return nil, err
	}
	n := tbl.NumRows()
	for _, w := range []int{n / 32, n / 8, n / 2, n} {
		if w < 1 {
			w = 1
		}
		start := time.Now()
		res := core.GGRWindowed(tbl, core.DefaultGGROptions(tokenLen), w)
		elapsed := time.Since(start).Seconds()
		if err := core.Verify(tbl, res.Schedule); err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(w),
			pct(core.Hits(res.Schedule, tokenLen).Rate()),
			fmt.Sprint(res.PHC),
			fmt.Sprintf("%.3f", elapsed),
		})
	}
	return rep, nil
}
