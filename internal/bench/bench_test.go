package bench

import (
	"strconv"
	"strings"
	"testing"
)

// tiny keeps every experiment fast enough for CI.
var tiny = Config{Scale: 0.01, Seed: 3, BootstrapReps: 200, OPHRNodeBudget: 200_000}

func TestAllExperimentsRun(t *testing.T) {
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, tiny)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if rep.ID != id {
				t.Errorf("report id %q != %q", rep.ID, id)
			}
			if len(rep.Rows) == 0 {
				t.Errorf("%s: empty report", id)
			}
			for i, row := range rep.Rows {
				if len(row) != len(rep.Columns) {
					t.Errorf("%s row %d: %d cells for %d columns", id, i, len(row), len(rep.Columns))
				}
			}
			if !strings.Contains(rep.Text(), rep.Title) {
				t.Errorf("%s: Text() missing title", id)
			}
			if lines := strings.Count(rep.CSV(), "\n"); lines != len(rep.Rows)+1 {
				t.Errorf("%s: CSV has %d lines, want %d", id, lines, len(rep.Rows)+1)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", tiny); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig1aExactValues(t *testing.T) {
	rep, err := Run("fig1a", tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed original must be 0; GGR must equal the theory column.
	if rep.Rows[0][1] != "0" {
		t.Errorf("fixed PHC = %s, want 0", rep.Rows[0][1])
	}
	if rep.Rows[1][1] != rep.Rows[1][2] {
		t.Errorf("GGR PHC %s != theory %s", rep.Rows[1][1], rep.Rows[1][2])
	}
}

func TestFig1bExactValues(t *testing.T) {
	rep, err := Run("fig1b", tiny)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rep.Rows {
		if row[1] != row[2] {
			t.Errorf("row %d: PHC %s != theory %s", i, row[1], row[2])
		}
	}
}

func TestFig3aSpeedupDirection(t *testing.T) {
	rep, err := Run("fig3a", tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		noCache := parseF(t, row[1])
		orig := parseF(t, row[2])
		ggr := parseF(t, row[3])
		if !(ggr <= orig && orig <= noCache) {
			t.Errorf("%s: expected GGR <= Orig <= NoCache, got %v %v %v", row[0], noCache, orig, ggr)
		}
	}
}

func TestTable2GGRWins(t *testing.T) {
	rep, err := Run("table2", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 7 {
		t.Fatalf("table2 has %d rows, want 7", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		orig := parsePct(row[1])
		ggr := parsePct(row[2])
		if ggr < orig {
			t.Errorf("%s: GGR PHR %.2f below original %.2f", row[0], ggr, orig)
		}
	}
}

func TestTable4SavingsPositive(t *testing.T) {
	rep, err := Run("table4", tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if oa := parsePct(row[3]); oa <= 0 {
			t.Errorf("%s: OpenAI savings %.3f not positive", row[0], oa)
		}
	}
}

func TestTable6GGRNearOptimal(t *testing.T) {
	rep, err := Run("table6", tiny)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for _, row := range rep.Rows {
		if row[1] == "n/a" {
			continue
		}
		completed++
		opt := parsePct(row[1])
		ggr := parsePct(row[2])
		if ggr > opt+1e-9 {
			t.Errorf("%s: GGR %.4f above optimal %.4f", row[0], ggr, opt)
		}
	}
	if completed == 0 {
		t.Error("OPHR completed on no samples; budget too small")
	}
}

func TestDatasetMemoization(t *testing.T) {
	a, err := relational("Movies", tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := relational("Movies", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("relational datasets not memoized")
	}
	ra, err := ragTable("FEVER", tiny)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ragTable("FEVER", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Error("RAG tables not memoized")
	}
}

func TestReportRenderers(t *testing.T) {
	rep := &Report{
		ID: "x", Title: "T", Columns: []string{"a", "b"},
		Rows:  [][]string{{"1", "with,comma"}, {"2", "with \"quote\""}},
		Notes: []string{"a note"},
	}
	txt := rep.Text()
	if !strings.Contains(txt, "a note") {
		t.Error("note missing from text")
	}
	csv := rep.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Error("CSV comma not quoted")
	}
	if !strings.Contains(csv, `"with ""quote"""`) {
		t.Error("CSV quote not escaped")
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
