package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/pricing"
	"repro/internal/query"
	"repro/internal/table"
	"repro/internal/tokenizer"
)

// runTable1 reproduces Table 1: dataset shapes and average input/output
// token lengths as measured over the generated data and actual prompts.
func runTable1(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "table1",
		Title:   "Datasets: rows, fields, average input/output tokens",
		Columns: []string{"dataset", "n_rows", "n_fields", "input_avg", "output_avg", "query types"},
		Notes: []string{
			"input_avg measured over full filter/RAG prompts (system prompt + question + JSON row)",
			"paper (full scale): Movies 15000/8/276, Products 14890/8/377, BIRD 14920/4/765, PDMX 10000/57/738, Beer 28479/8/156, SQuAD 22665/5/1047, FEVER 19929/5/1302",
		},
	}
	type entry struct {
		name  string
		ty    query.Type
		types string
	}
	cases := []entry{
		{"Movies", query.Filter, "T1-T4"}, {"Products", query.Filter, "T1-T4"},
		{"BIRD", query.Filter, "T1, T2"}, {"PDMX", query.Filter, "T1, T2"},
		{"Beer", query.Filter, "T1, T2"},
		{"SQuAD", query.RAGQA, "T5"}, {"FEVER", query.RAGQA, "T5"},
	}
	for _, c := range cases {
		tbl, err := inputTable(c.name, cfg)
		if err != nil {
			return nil, err
		}
		spec, err := query.ForDataset(c.name, c.ty)
		if err != nil {
			return nil, err
		}
		var inTok, outTok int64
		sched := core.Original(tbl)
		for _, row := range sched.Rows {
			inTok += int64(tokenizer.Count(query.BuildPrompt(spec.UserPrompt, row.Cells)))
			outTok += int64(spec.OutTokensFor(row.Source))
		}
		n := int64(tbl.NumRows())
		if n == 0 {
			return nil, fmt.Errorf("bench: dataset %s is empty", c.name)
		}
		rep.Rows = append(rep.Rows, []string{
			c.name, fmt.Sprint(tbl.NumRows()), fmt.Sprint(tbl.NumCols()),
			fmt.Sprint(inTok / n), fmt.Sprint(outTok / n), c.types,
		})
	}
	return rep, nil
}

// runTable2 reproduces Table 2: prefix hit rates (PHR) of the filter and
// RAG queries for the original ordering vs GGR, as measured by the serving
// engine's KV cache.
func runTable2(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "table2",
		Title:   "Prefix hit rate (PHR) of filter and RAG queries, original vs GGR",
		Columns: []string{"dataset", "original PHR", "GGR PHR", "gain"},
		Notes: []string{
			"paper: Original 35/27/10/12/50/11/11 -> GGR 86/83/85/57/80/67/70 (%)",
		},
	}
	rows, err := hitRateRows(cfg, llmsimDefault())
	if err != nil {
		return nil, err
	}
	rep.Rows = rows
	return rep, nil
}

// hitRateRows measures original/GGR hit rates per dataset under a given
// model setup; shared by table2 and table7.
func hitRateRows(cfg Config, setup modelSetup) ([][]string, error) {
	var out [][]string
	cases := []struct {
		ds string
		ty query.Type
	}{
		{"Movies", query.Filter}, {"Products", query.Filter}, {"BIRD", query.Filter},
		{"PDMX", query.Filter}, {"Beer", query.Filter},
		{"FEVER", query.RAGQA}, {"SQuAD", query.RAGQA},
	}
	for _, c := range cases {
		tbl, err := inputTable(c.ds, cfg)
		if err != nil {
			return nil, err
		}
		spec, err := query.ForDataset(c.ds, c.ty)
		if err != nil {
			return nil, err
		}
		hr := map[query.Policy]float64{}
		for _, p := range []query.Policy{query.CacheOriginal, query.CacheGGR} {
			res, err := query.RunContext(cfg.context(), spec, tbl, cfg.queryConfig(p, setup.model, setup.cluster))
			if err != nil {
				return nil, err
			}
			hr[p] = res.HitRate
		}
		out = append(out, []string{
			c.ds, pct(hr[query.CacheOriginal]), pct(hr[query.CacheGGR]),
			fmt.Sprintf("%+.1f pts", 100*(hr[query.CacheGGR]-hr[query.CacheOriginal])),
		})
	}
	return out, nil
}

type modelSetup struct {
	model   llmsim.ModelConfig
	cluster llmsim.Cluster
}

func llmsimDefault() modelSetup {
	return modelSetup{model: llmsim.Llama3_8B, cluster: llmsim.SingleL4}
}

// runTable3 reproduces Table 3: measured OpenAI and Anthropic costs on the
// FEVER workload with each field value duplicated five times (the paper's
// device for clearing the providers' 1,024-token caching minimum), 1,000
// rows, GGR vs original ordering.
func runTable3(cfg Config) (*Report, error) {
	full, err := ragTable("FEVER", cfg)
	if err != nil {
		return nil, err
	}
	nRows := 1000
	if s := cfg.scale(); s < 1 {
		nRows = int(float64(nRows) * s)
		if nRows < 10 {
			nRows = 10
		}
	}
	tbl := duplicateFields(full.Head(nRows), 5)

	schedules := map[string]*core.Schedule{
		"Original": core.Original(tbl),
		"GGR":      core.GGR(tbl, core.DefaultGGROptions(tokenLen)).Schedule,
	}
	spec, err := query.ForDataset("FEVER", query.RAGQA)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:      "table3",
		Title:   "Measured API costs on FEVER (fields duplicated 5x, 1024-token caching minimum)",
		Columns: []string{"model", "method", "PHR", "cost ($)", "savings"},
		Notes: []string{
			fmt.Sprintf("%d rows; paper: GPT-4o-mini 62.2%% PHR / 32%% savings; Claude 3.5 Sonnet 30.6%% PHR / 21%% savings", tbl.NumRows()),
		},
	}
	for _, book := range []pricing.Book{pricing.GPT4oMini, pricing.Claude35Sonnet} {
		costs := map[string]float64{}
		for _, method := range []string{"Original", "GGR"} {
			sched := schedules[method]
			tok := tokenizer.New()
			prefix := tok.Encode(query.PromptPrefix(spec.UserPrompt))
			prompts := make([][]tokenizer.Token, len(sched.Rows))
			outs := make([]int, len(sched.Rows))
			for i, row := range sched.Rows {
				data := tok.Encode(query.RowJSON(row.Cells))
				p := make([]tokenizer.Token, 0, len(prefix)+len(data))
				p = append(p, prefix...)
				p = append(p, data...)
				prompts[i] = p
				outs[i] = spec.OutTokensFor(row.Source)
			}
			u, err := pricing.Simulate(book, prompts, outs)
			if err != nil {
				return nil, err
			}
			costs[method] = book.Cost(u)
			rep.Rows = append(rep.Rows, []string{
				book.Name, method, pct(u.HitRate()), fmt.Sprintf("%.2f", costs[method]), "",
			})
		}
		if costs["Original"] > 0 {
			rep.Rows[len(rep.Rows)-1][4] = pct(1 - costs["GGR"]/costs["Original"])
		}
	}
	return rep, nil
}

// duplicateFields repeats every cell value n times, mirroring the paper's
// "duplicate each field value five times" approximation of long production
// prompts.
func duplicateFields(t *table.Table, n int) *table.Table {
	out := table.New(t.Columns()...)
	for i := 0; i < t.NumRows(); i++ {
		cells := make([]string, t.NumCols())
		for j := 0; j < t.NumCols(); j++ {
			v := t.Cell(i, j)
			cells[j] = strings.TrimSpace(strings.Repeat(v+" ", n))
		}
		out.MustAppendRow(cells...)
	}
	return out
}

// runTable4 reproduces Table 4: estimated cost savings across datasets from
// the measured PHRs of table2 under the OpenAI and Anthropic price models.
func runTable4(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "table4",
		Title:   "Estimated cost savings from measured PHRs (GGR vs original)",
		Columns: []string{"dataset", "orig PHR", "GGR PHR", "OpenAI savings", "Anthropic savings"},
		Notes: []string{
			"paper: OpenAI 20-39%, Anthropic 48-79% across datasets",
		},
	}
	rows, err := hitRateRows(cfg, llmsimDefault())
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		ho := parsePct(r[1])
		hg := parsePct(r[2])
		rep.Rows = append(rep.Rows, []string{
			r[0], r[1], r[2],
			pct(pricing.EstimatedSavings(pricing.GPT4oMini, ho, hg)),
			pct(pricing.EstimatedSavings(pricing.Claude35Sonnet, ho, hg)),
		})
	}
	return rep, nil
}

func parsePct(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%f%%", &v)
	return v / 100
}

// runTable5 reproduces Table 5: GGR solver wall-clock time per dataset under
// the paper's early-stopping configuration (row depth 4, column depth 2,
// 0.1M hit-count threshold).
func runTable5(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "table5",
		Title:   "GGR solver time (wall-clock seconds)",
		Columns: []string{"dataset", "rows", "fields", "solver (s)"},
		Notes: []string{
			"paper (full scale): 3.3/4.5/1.2/12.6/8.0/5.6/4.5 s; all under 15 s",
		},
	}
	for _, ds := range []string{"Movies", "Products", "BIRD", "PDMX", "Beer", "FEVER", "SQuAD"} {
		tbl, err := inputTable(ds, cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res := core.GGR(tbl, core.DefaultGGROptions(tokenLen))
		elapsed := time.Since(start)
		if err := core.Verify(tbl, res.Schedule); err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			ds, fmt.Sprint(tbl.NumRows()), fmt.Sprint(tbl.NumCols()),
			fmt.Sprintf("%.3f", elapsed.Seconds()),
		})
	}
	return rep, nil
}

// runTable6 reproduces Appendix D.1 (Table 6): GGR vs the exact OPHR solver
// on small dataset samples. OPHR runs under a node budget (the paper used a
// two-hour timeout); for each dataset we report the largest sample that
// completed.
func runTable6(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "table6",
		Title:   "GGR vs optimal OPHR on small samples (prefix hit rate over data tokens)",
		Columns: []string{"sample", "OPHR PHR", "GGR PHR", "diff", "OPHR (s)", "GGR (s)"},
		Notes: []string{
			"paper: GGR within 2% of optimal, orders of magnitude faster",
			"OPHR bounded by a node budget standing in for the paper's 2h timeout",
		},
	}
	for _, ds := range []string{"Movies", "Products", "BIRD", "PDMX", "Beer", "FEVER", "SQuAD"} {
		tbl, err := inputTable(ds, cfg)
		if err != nil {
			return nil, err
		}
		// PDMX's 57 columns are reduced to 10 as in the paper.
		if ds == "PDMX" {
			cols := tbl.Columns()[:10]
			tbl, err = tbl.Select(cols...)
			if err != nil {
				return nil, err
			}
		}
		row, err := table6Row(ds, tbl, cfg)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func table6Row(ds string, tbl *table.Table, cfg Config) ([]string, error) {
	for _, n := range []int{50, 25, 10} {
		if tbl.NumRows() < n {
			continue
		}
		sample := tbl.Head(n)
		start := time.Now()
		opt, err := core.OPHR(sample, core.OPHROptions{LenOf: tokenLen, MaxNodes: cfg.ophrBudget()})
		optTime := time.Since(start)
		if errors.Is(err, core.ErrBudget) {
			continue // sample too large for the budget; try smaller
		}
		if err != nil {
			return nil, err
		}
		start = time.Now()
		greedy := core.GGR(sample, core.ExhaustiveGGROptions(tokenLen))
		ggrTime := time.Since(start)

		optPHR := core.Hits(opt.Schedule, tokenLen).Rate()
		ggrPHR := core.Hits(greedy.Schedule, tokenLen).Rate()
		return []string{
			fmt.Sprintf("%s-%d", ds, n),
			pct(optPHR), pct(ggrPHR),
			fmt.Sprintf("%+.1f pts", 100*(ggrPHR-optPHR)),
			fmt.Sprintf("%.3f", optTime.Seconds()),
			fmt.Sprintf("%.4f", ggrTime.Seconds()),
		}, nil
	}
	return []string{ds + "-0", "n/a", "n/a", "n/a", "budget", "n/a"}, nil
}

// runTable7 reproduces Appendix D.2 (Table 7): the Llama-3.2-1B ablation —
// runtime ratio original/GGR and both hit rates on the filter queries.
// Ample free KV memory on the small model shrinks the relative gains even
// though hit rates match the 8B runs.
func runTable7(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "table7",
		Title:   "Llama-3.2-1B filter queries: runtime ratio and PHR",
		Columns: []string{"dataset", "runtime orig/GGR", "orig PHR", "GGR PHR"},
		Notes: []string{
			"paper: ratios 1.2-1.5x (vs 1.8-3.0x on 8B); PHRs match the 8B runs",
		},
	}
	for _, ds := range []string{"Movies", "Products", "BIRD", "PDMX", "Beer"} {
		tbl, err := inputTable(ds, cfg)
		if err != nil {
			return nil, err
		}
		spec, err := query.ForDataset(ds, query.Filter)
		if err != nil {
			return nil, err
		}
		type out struct {
			jct float64
			hr  float64
		}
		res := map[query.Policy]out{}
		for _, p := range []query.Policy{query.CacheOriginal, query.CacheGGR} {
			r, err := query.RunContext(cfg.context(), spec, tbl, cfg.queryConfig(p, llmsim.Llama32_1B, llmsim.SingleL4))
			if err != nil {
				return nil, err
			}
			res[p] = out{jct: r.JCT, hr: r.HitRate}
		}
		rep.Rows = append(rep.Rows, []string{
			ds,
			ratio(res[query.CacheOriginal].jct, res[query.CacheGGR].jct),
			pct(res[query.CacheOriginal].hr),
			pct(res[query.CacheGGR].hr),
		})
	}
	return rep, nil
}
