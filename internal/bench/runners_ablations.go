package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/query"
	"repro/internal/tokenizer"
)

// runAblationFD isolates the functional-dependency inference (Sec. 4.2.1):
// GGR with declared FDs vs GGR with FDs stripped, on the datasets that have
// them. FDs pull correlated fields into the prefix in one step, improving
// both PHC and solver time.
func runAblationFD(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "ablation_fd",
		Title:   "GGR with vs without functional dependencies",
		Columns: []string{"dataset", "PHC (no FD)", "PHC (FD)", "PHC gain", "solver no-FD (s)", "solver FD (s)"},
	}
	for _, ds := range []string{"Movies", "Products", "BIRD", "PDMX", "Beer"} {
		d, err := relational(ds, cfg)
		if err != nil {
			return nil, err
		}
		run := func(useFDs bool) (int64, float64) {
			opt := core.DefaultGGROptions(tokenLen)
			opt.UseFDs = useFDs
			start := time.Now()
			res := core.GGR(d.Table, opt)
			return res.PHC, time.Since(start).Seconds()
		}
		noFD, tNo := run(false)
		withFD, tFD := run(true)
		gain := "0.0%"
		if noFD > 0 {
			gain = fmt.Sprintf("%+.1f%%", 100*(float64(withFD)/float64(noFD)-1))
		}
		rep.Rows = append(rep.Rows, []string{
			ds, fmt.Sprint(noFD), fmt.Sprint(withFD), gain,
			fmt.Sprintf("%.3f", tNo), fmt.Sprintf("%.3f", tFD),
		})
	}
	return rep, nil
}

// runAblationDepth sweeps the early-stopping row depth (Sec. 4.2.2) on the
// Movies filter query: deeper recursion buys hit rate at solver-time cost
// until the statistics fallback is already doing the work.
func runAblationDepth(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "ablation_depth",
		Title:   "GGR early-stopping depth sweep (Movies filter)",
		Columns: []string{"row depth", "col depth", "PHC", "data hit rate", "solver (s)"},
	}
	d, err := relational("Movies", cfg)
	if err != nil {
		return nil, err
	}
	for _, depth := range []struct{ row, col int }{
		{1, 1}, {2, 1}, {4, 2}, {8, 4}, {16, 8},
	} {
		opt := core.DefaultGGROptions(tokenLen)
		opt.MaxRowDepth = depth.row
		opt.MaxColDepth = depth.col
		start := time.Now()
		res := core.GGR(d.Table, opt)
		elapsed := time.Since(start).Seconds()
		if err := core.Verify(d.Table, res.Schedule); err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(depth.row), fmt.Sprint(depth.col),
			fmt.Sprint(res.PHC),
			pct(core.Hits(res.Schedule, tokenLen).Rate()),
			fmt.Sprintf("%.3f", elapsed),
		})
	}
	return rep, nil
}

// runAblationBlock sweeps the KV cache block size on the BIRD filter query:
// smaller blocks match finer prefix granularity (higher hit rates) at the
// cost of more cache metadata; 16 is vLLM's default.
func runAblationBlock(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "ablation_block",
		Title:   "KV cache block size sweep (BIRD filter, GGR ordering)",
		Columns: []string{"block size", "hit rate", "JCT (s)"},
	}
	tbl, err := inputTable("BIRD", cfg)
	if err != nil {
		return nil, err
	}
	spec, err := query.ForDataset("BIRD", query.Filter)
	if err != nil {
		return nil, err
	}
	sched := core.GGR(tbl, core.DefaultGGROptions(tokenLen)).Schedule
	cap16 := cfg.poolBlocks(llmsim.Llama3_8B, llmsim.SingleL4) // blocks of 16 tokens
	for _, bs := range []int{8, 16, 32, 64, 128} {
		capacity := int64(0)
		if cap16 > 0 {
			capacity = cap16 * 16 / int64(bs) // same token budget at this block size
		}
		m, err := replaySchedule(spec, sched, bs, capacity)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(bs), pct(m.HitRate()), f1(m.JCT),
		})
	}
	return rep, nil
}

// replaySchedule runs a prepared schedule through the engine at a given
// block size.
func replaySchedule(spec query.Spec, sched *core.Schedule, blockSize int, capacity int64) (llmsim.Metrics, error) {
	tok := tokenizer.New()
	prefix := tok.Encode(query.PromptPrefix(spec.UserPrompt))
	reqs := make([]*llmsim.Request, len(sched.Rows))
	for i, row := range sched.Rows {
		data := tok.Encode(query.RowJSON(row.Cells))
		p := make([]tokenizer.Token, 0, len(prefix)+len(data))
		p = append(p, prefix...)
		p = append(p, data...)
		reqs[i] = &llmsim.Request{ID: row.Source, Prompt: p, OutTokens: spec.OutTokensFor(row.Source)}
	}
	eng := llmsim.New(llmsim.Config{
		Cost:             llmsim.CostModel{Model: llmsim.Llama3_8B, Cluster: llmsim.SingleL4},
		CacheEnabled:     true,
		BlockSize:        blockSize,
		CapacityOverride: capacity,
	})
	return eng.Run(reqs)
}

// runAblationFixed compares the best single fixed field order (the Sec. 3.2
// strawman) against per-row GGR on every dataset: the gap is the value of
// per-row reordering.
func runAblationFixed(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "ablation_fixed",
		Title:   "Best fixed field order vs per-row GGR (data-token hit rate)",
		Columns: []string{"dataset", "original", "best fixed", "GGR", "GGR vs fixed"},
	}
	for _, ds := range []string{"Movies", "Products", "BIRD", "PDMX", "Beer", "FEVER", "SQuAD"} {
		tbl, err := inputTable(ds, cfg)
		if err != nil {
			return nil, err
		}
		orig := core.Hits(core.Original(tbl), tokenLen).Rate()
		fixed := core.Hits(core.BestFixed(tbl, tokenLen), tokenLen).Rate()
		ggr := core.Hits(core.GGR(tbl, core.DefaultGGROptions(tokenLen)).Schedule, tokenLen).Rate()
		rep.Rows = append(rep.Rows, []string{
			ds, pct(orig), pct(fixed), pct(ggr),
			fmt.Sprintf("%+.1f pts", 100*(ggr-fixed)),
		})
	}
	return rep, nil
}
