package bench

import (
	"fmt"

	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/oracle"
	"repro/internal/query"
	"repro/internal/table"
)

// runFig1a reproduces the Fig. 1a case study: a table whose first field is
// unique and whose remaining m−1 fields are constant (all unit lengths). The
// fixed original ordering scores PHC 0; per-row reordering recovers
// (n−1)(m−1).
func runFig1a(cfg Config) (*Report, error) {
	n, m := 200, 5
	t := table.New("f0", "f1", "f2", "f3", "f4")
	for i := 0; i < n; i++ {
		t.MustAppendRow(fmt.Sprintf("u%d", i), "A", "B", "C", "D")
	}
	orig := core.PHC(core.Original(t), table.UnitLen)
	res := core.GGR(t, core.GGROptions{LenOf: table.UnitLen})
	if err := core.Verify(t, res.Schedule); err != nil {
		return nil, err
	}
	want := int64((n - 1) * (m - 1))
	return &Report{
		ID:      "fig1a",
		Title:   "Case study: distinct values in the first field (unit lengths)",
		Columns: []string{"ordering", "PHC", "theory"},
		Rows: [][]string{
			{"fixed original", fmt.Sprint(orig), "0"},
			{"GGR (per-row)", fmt.Sprint(res.PHC), fmt.Sprint(want)},
		},
		Notes: []string{fmt.Sprintf("n=%d rows, m=%d fields; paper bound: (n-1)(m-1) = %d", n, m, want)},
	}, nil
}

// runFig1b reproduces Fig. 1b: 3x rows, 3 fields, one disjoint group of x
// identical values per field. Any fixed field order is stuck at x−1; per-row
// reordering reaches 3(x−1) — the m-fold gap of Sec. 3.2.
func runFig1b(cfg Config) (*Report, error) {
	x := 50
	t := table.New("f0", "f1", "f2")
	uid := 0
	fresh := func() string { uid++; return fmt.Sprintf("u%d", uid) }
	for g := 0; g < 3; g++ {
		for i := 0; i < x; i++ {
			cells := []string{fresh(), fresh(), fresh()}
			cells[g] = fmt.Sprintf("G%d", g)
			t.MustAppendRow(cells...)
		}
	}
	fixed := core.PHC(core.BestFixed(t, table.UnitLen), table.UnitLen)
	res := core.GGR(t, core.GGROptions{LenOf: table.UnitLen})
	if err := core.Verify(t, res.Schedule); err != nil {
		return nil, err
	}
	return &Report{
		ID:      "fig1b",
		Title:   "Case study: disjoint value groups per field (m = 3, unit lengths)",
		Columns: []string{"ordering", "PHC", "theory"},
		Rows: [][]string{
			{"best fixed order", fmt.Sprint(fixed), fmt.Sprint(x - 1)},
			{"GGR (per-row)", fmt.Sprint(res.PHC), fmt.Sprint(3 * (x - 1))},
		},
		Notes: []string{fmt.Sprintf("x=%d; per-row reordering is m=3 times better", x)},
	}, nil
}

// latencyRow runs one query under the three main baselines and formats a
// figure row: runtimes plus the paper's two speedup columns.
func latencyRow(cfg Config, spec query.Spec, tbl *table.Table, model llmsim.ModelConfig, cluster llmsim.Cluster) ([]string, error) {
	jct := map[query.Policy]float64{}
	for _, p := range query.Policies {
		res, err := query.RunContext(cfg.context(), spec, tbl, cfg.queryConfig(p, model, cluster))
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", spec.Name, p, err)
		}
		jct[p] = res.JCT
	}
	return []string{
		spec.Dataset,
		f1(jct[query.NoCache]),
		f1(jct[query.CacheOriginal]),
		f1(jct[query.CacheGGR]),
		ratio(jct[query.NoCache], jct[query.CacheGGR]),
		ratio(jct[query.CacheOriginal], jct[query.CacheGGR]),
	}, nil
}

var latencyColumns = []string{
	"dataset", "NoCache(s)", "Cache(Orig)(s)", "Cache(GGR)(s)",
	"GGR vs NoCache", "GGR vs Orig",
}

// runFig3a reproduces Fig. 3a: end-to-end latency of the five LLM filter
// queries under the three baselines (Llama-3-8B, 1×L4).
func runFig3a(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "fig3a",
		Title:   "Filter queries, Llama-3-8B on 1xL4 (virtual seconds)",
		Columns: latencyColumns,
		Notes:   []string{"paper: 2.1-3.8x over NoCache, 1.8-3.0x over Cache(Original)"},
	}
	for _, ds := range []string{"Movies", "Products", "BIRD", "PDMX", "Beer"} {
		tbl, err := inputTable(ds, cfg)
		if err != nil {
			return nil, err
		}
		spec, err := query.ForDataset(ds, query.Filter)
		if err != nil {
			return nil, err
		}
		row, err := latencyRow(cfg, spec, tbl, llmsim.Llama3_8B, llmsim.SingleL4)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// runFig3b reproduces Fig. 3b: projection queries on the five relational
// datasets plus the two RAG queries.
func runFig3b(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "fig3b",
		Title:   "Projection and RAG queries, Llama-3-8B on 1xL4 (virtual seconds)",
		Columns: latencyColumns,
		Notes:   []string{"paper: 1.5-3.4x over Cache(Original), 1.9-3.7x over NoCache"},
	}
	type q struct {
		ds string
		ty query.Type
	}
	cases := []q{
		{"Movies", query.Projection}, {"Products", query.Projection},
		{"BIRD", query.Projection}, {"PDMX", query.Projection},
		{"Beer", query.Projection}, {"FEVER", query.RAGQA}, {"SQuAD", query.RAGQA},
	}
	for _, c := range cases {
		tbl, err := inputTable(c.ds, cfg)
		if err != nil {
			return nil, err
		}
		spec, err := query.ForDataset(c.ds, c.ty)
		if err != nil {
			return nil, err
		}
		row, err := latencyRow(cfg, spec, tbl, llmsim.Llama3_8B, llmsim.SingleL4)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// runFig4 reproduces Fig. 4: multi-LLM invocation (T3) and aggregation (T4)
// on Movies and Products.
func runFig4(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "fig4",
		Title:   "Multi-LLM invocation and aggregation, Llama-3-8B on 1xL4 (virtual seconds)",
		Columns: append([]string{"query"}, latencyColumns[1:]...),
		Notes:   []string{"paper: 1.7-2.8x over Cache(Original), 2.7-3.7x over NoCache"},
	}
	type q struct {
		ds string
		ty query.Type
		id string
	}
	cases := []q{
		{"Movies", query.MultiLLM, "Movies (T3)"}, {"Products", query.MultiLLM, "Products (T3)"},
		{"Movies", query.Aggregation, "Movies (T4)"}, {"Products", query.Aggregation, "Products (T4)"},
	}
	for _, c := range cases {
		tbl, err := inputTable(c.ds, cfg)
		if err != nil {
			return nil, err
		}
		spec, err := query.ForDataset(c.ds, c.ty)
		if err != nil {
			return nil, err
		}
		row, err := latencyRow(cfg, spec, tbl, llmsim.Llama3_8B, llmsim.SingleL4)
		if err != nil {
			return nil, err
		}
		row[0] = c.id
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// runFig5 reproduces Fig. 5: filter queries with Llama-3-70B on 8×L4 under
// tensor parallelism, Cache(Original) vs Cache(GGR).
func runFig5(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "fig5",
		Title:   "Filter queries, Llama-3-70B on 8xL4 (virtual seconds)",
		Columns: []string{"dataset", "Cache(Orig)(s)", "Cache(GGR)(s)", "speedup"},
		Notes:   []string{"paper: 1.9-3.3x over Cache(Original)"},
	}
	for _, ds := range []string{"Movies", "Products", "BIRD", "PDMX", "Beer"} {
		tbl, err := inputTable(ds, cfg)
		if err != nil {
			return nil, err
		}
		spec, err := query.ForDataset(ds, query.Filter)
		if err != nil {
			return nil, err
		}
		jct := map[query.Policy]float64{}
		for _, p := range []query.Policy{query.CacheOriginal, query.CacheGGR} {
			res, err := query.RunContext(cfg.context(), spec, tbl, cfg.queryConfig(p, llmsim.Llama3_70B, llmsim.EightL4))
			if err != nil {
				return nil, err
			}
			jct[p] = res.JCT
		}
		rep.Rows = append(rep.Rows, []string{
			ds, f1(jct[query.CacheOriginal]), f1(jct[query.CacheGGR]),
			ratio(jct[query.CacheOriginal], jct[query.CacheGGR]),
		})
	}
	return rep, nil
}

// runFig6 reproduces the Fig. 6 accuracy study: exact-match accuracy of the
// original vs GGR orderings for the five filter queries plus the FEVER RAG
// query, across three models, with 10k-run bootstrap medians.
func runFig6(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "fig6",
		Title:   "Accuracy, original vs GGR ordering (bootstrap medians)",
		Columns: []string{"model", "dataset", "orig median", "GGR median", "delta"},
		Notes: []string{
			fmt.Sprintf("%d bootstrap resamples; paper: deltas within ±5%% except FEVER on 8B (+14.2%%)", cfg.reps()),
		},
	}
	models := []oracle.Profile{oracle.Llama8B, oracle.Llama70B, oracle.GPT4o}
	datasets := []string{"Movies", "Products", "BIRD", "PDMX", "Beer", "FEVER"}
	for _, prof := range models {
		for _, ds := range datasets {
			tbl, err := inputTable(ds, cfg)
			if err != nil {
				return nil, err
			}
			var spec query.Spec
			if ds == "FEVER" {
				spec, err = query.ForDataset(ds, query.RAGQA)
			} else {
				spec, err = query.ForDataset(ds, query.Filter)
			}
			if err != nil {
				return nil, err
			}
			origMed, err := scheduleAccuracy(spec, tbl, core.Original(tbl), prof, cfg)
			if err != nil {
				return nil, err
			}
			ggrSched := core.GGR(tbl, core.DefaultGGROptions(tokenLen)).Schedule
			ggrMed, err := scheduleAccuracy(spec, tbl, ggrSched, prof, cfg)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				prof.Name, ds, pct(origMed), pct(ggrMed),
				fmt.Sprintf("%+.1f%%", 100*(ggrMed-origMed)),
			})
		}
	}
	return rep, nil
}

// scheduleAccuracy bootstraps exact-match accuracy of a schedule's answers.
func scheduleAccuracy(spec query.Spec, tbl *table.Table, sched *core.Schedule, prof oracle.Profile, cfg Config) (float64, error) {
	answers := query.OracleAnswers(spec, tbl, sched, prof)
	labels, ok := tbl.Hidden("label")
	if !ok {
		return 0, fmt.Errorf("bench: dataset %s has no labels", spec.Dataset)
	}
	correct := make([]bool, len(answers))
	for i := range answers {
		correct[i] = answers[i] == labels[i]
	}
	res, err := bootstrap.Accuracy(correct, cfg.reps(), cfg.Seed+int64(len(spec.Name)))
	if err != nil {
		return 0, err
	}
	return res.Median, nil
}
