// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (see DESIGN.md §4 for the index), plus ablation
// benches for the design choices. Every runner returns a Report whose rows
// mirror the paper's presentation, so `cmd/llmqbench -exp fig3a` regenerates
// the corresponding artifact.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/datagen"
	"repro/internal/llmsim"
	"repro/internal/query"
	"repro/internal/table"
	"repro/internal/tokenizer"
)

// tokenLen is the scheduling length unit shared by all runners: PHC in
// tokens, matching what the KV cache stores.
func tokenLen(v string) int { return tokenizer.Count(v) }

// poolBlocks sizes the engine's KV pool for a run. At full scale the cost
// model's derivation is used untouched (returns 0 = no override); at
// fractional scales the pool shrinks proportionally so eviction pressure —
// which the full-scale Cache(Original) hit rates depend on — is preserved. A
// floor keeps several concurrent long-prompt requests schedulable.
func (c Config) poolBlocks(model llmsim.ModelConfig, cluster llmsim.Cluster) int64 {
	if c.scale() >= 1 {
		return 0
	}
	cost := llmsim.CostModel{Model: model, Cluster: cluster}
	full := cost.KVPoolBlocks(16)
	scaled := int64(float64(full) * c.scale())
	// The floor (128 blocks = 2048 tokens at block size 16) still fits the
	// longest RAG prompt with room for a second request.
	const floor = 128
	if scaled < floor {
		scaled = floor
	}
	if full > 0 && scaled > full {
		scaled = full
	}
	return scaled
}

// queryConfig assembles the standard execution config for a policy.
func (c Config) queryConfig(p query.Policy, model llmsim.ModelConfig, cluster llmsim.Cluster) query.Config {
	return query.Config{
		Policy:       p,
		Model:        model,
		Cluster:      cluster,
		KVPoolBlocks: c.poolBlocks(model, cluster),
	}
}

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies dataset sizes (1.0 = the paper's sizes). Full-scale
	// runs reproduce the headline numbers; small scales keep CI fast.
	Scale float64
	// Seed drives all data generation and resampling.
	Seed int64
	// BootstrapReps for fig6 (default 10,000, the paper's count).
	BootstrapReps int
	// OPHRNodeBudget bounds the exact solver in table6 (default 3e6 nodes),
	// standing in for the paper's two-hour timeout.
	OPHRNodeBudget int64

	// ctx is the run's cancellation scope, set by RunContext (nil means
	// Background). Runners thread it into every simulated query, so a
	// canceled experiment stops at the next query boundary (or between
	// engine steps inside one).
	ctx context.Context
}

func (c Config) context() context.Context {
	if c.ctx == nil {
		//llmqlint:detached -- Config carries no context by default; RunContext injects one
		return context.Background()
	}
	return c.ctx
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

func (c Config) reps() int {
	if c.BootstrapReps > 0 {
		return c.BootstrapReps
	}
	return 10000
}

func (c Config) ophrBudget() int64 {
	if c.OPHRNodeBudget > 0 {
		return c.OPHRNodeBudget
	}
	return 3_000_000
}

func (c Config) genOpt() datagen.Options {
	return datagen.Options{Scale: c.scale(), Seed: c.Seed}
}

// Report is a rendered experiment result.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Text renders an aligned fixed-width table.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(r.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders comma-separated values (quoted where needed).
func (r *Report) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, r.Columns)
	for _, row := range r.Rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}

// Runner produces one experiment's report.
type Runner func(Config) (*Report, error)

var registry = map[string]Runner{
	"fig1a":          runFig1a,
	"fig1b":          runFig1b,
	"table1":         runTable1,
	"fig3a":          runFig3a,
	"fig3b":          runFig3b,
	"fig4":           runFig4,
	"fig5":           runFig5,
	"table2":         runTable2,
	"table3":         runTable3,
	"table4":         runTable4,
	"fig6":           runFig6,
	"table5":         runTable5,
	"table6":         runTable6,
	"table7":         runTable7,
	"ablation_fd":    runAblationFD,
	"ablation_depth": runAblationDepth,
	"ablation_block": runAblationBlock,
	"ablation_fixed": runAblationFixed,
}

// order fixes the presentation sequence for Experiments().
var order = []string{
	"fig1a", "fig1b", "table1", "fig3a", "fig3b", "fig4", "fig5",
	"table2", "table3", "table4", "fig6", "table5", "table6", "table7",
	"ablation_fd", "ablation_depth", "ablation_block", "ablation_fixed",
}

// Experiments lists all experiment IDs in presentation order.
func Experiments() []string {
	out := append([]string(nil), order...)
	// Defensive: include any registered id missing from the order list.
	for id := range registry {
		found := false
		for _, o := range out {
			if o == id {
				found = true
				break
			}
		}
		if !found {
			out = append(out, id)
		}
	}
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Report, error) {
	//llmqlint:detached -- no-cancellation convenience wrapper over RunContext
	return RunContext(context.Background(), id, cfg)
}

// RunContext is Run honoring ctx: the experiment's simulated queries run
// under it, so cancellation stops the run at the next query boundary.
func RunContext(ctx context.Context, id string, cfg Config) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		ids := Experiments()
		sort.Strings(ids)
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg.ctx = ctx
	return r(cfg)
}

// --- dataset memoization ---------------------------------------------------

// Generation and retrieval joins are deterministic in (name, scale, seed),
// so experiments sharing a dataset reuse one copy.
var (
	memoMu  sync.Mutex
	relMemo = map[string]*datagen.Relational{}
	ragMemo = map[string]*table.Table{}
)

func memoKey(name string, cfg Config) string {
	return fmt.Sprintf("%s|%g|%d", name, cfg.scale(), cfg.Seed)
}

// relational returns the generated table dataset.
func relational(name string, cfg Config) (*datagen.Relational, error) {
	memoMu.Lock()
	defer memoMu.Unlock()
	k := memoKey(name, cfg)
	if d, ok := relMemo[k]; ok {
		return d, nil
	}
	d, err := datagen.RelationalByName(name, cfg.genOpt())
	if err != nil {
		return nil, err
	}
	relMemo[k] = d
	return d, nil
}

// ragTable returns the retrieval-joined (question, contexts) table.
func ragTable(name string, cfg Config) (*table.Table, error) {
	memoMu.Lock()
	defer memoMu.Unlock()
	k := memoKey(name, cfg)
	if t, ok := ragMemo[k]; ok {
		return t, nil
	}
	d, err := datagen.RAGByName(name, cfg.genOpt())
	if err != nil {
		return nil, err
	}
	t, err := query.BuildRAGTable(d)
	if err != nil {
		return nil, err
	}
	ragMemo[k] = t
	return t, nil
}

// inputTable resolves a dataset name to the table its queries run over.
func inputTable(name string, cfg Config) (*table.Table, error) {
	for _, r := range datagen.RAGNames {
		if r == name {
			return ragTable(name, cfg)
		}
	}
	d, err := relational(name, cfg)
	if err != nil {
		return nil, err
	}
	return d.Table, nil
}

// --- small format helpers ---------------------------------------------------

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
