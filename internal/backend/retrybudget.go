package backend

import (
	"errors"
	"math"
	"sync"
)

// ErrRetryBudgetExhausted is the distinct fail-fast error a Remote returns
// when its shared RetryBudget has no tokens left: the fleet is failing
// broadly enough that piling on retries would amplify the outage rather
// than ride it out. Callers (and the cluster router's failover walk) treat
// it like any other transient failure of that worker — it does not poison
// the statement — but no further retries are spent on the attempt.
var ErrRetryBudgetExhausted = errors.New("backend: retry budget exhausted")

// RetryBudget is a token bucket shared by every Remote on one router,
// capping fleet-wide retry amplification: each first attempt deposits
// Ratio tokens (capped at Burst) and each retry withdraws one, so retries
// are bounded to ~Ratio of real traffic in steady state, while the Burst
// floor lets a cold or quiet router still absorb a short fault burst.
//
// A nil *RetryBudget never denies — budgets are opt-in per router.
type RetryBudget struct {
	mu     sync.Mutex
	ratio  float64
	burst  float64
	tokens float64 // guarded by mu
	denied int64   // guarded by mu
}

// NewRetryBudget builds a budget depositing ratio tokens per first attempt
// with a bucket cap of burst tokens. Non-positive arguments take the
// defaults (ratio 0.2, burst 10). The bucket starts full so startup
// turbulence can be retried through.
func NewRetryBudget(ratio float64, burst int) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.2
	}
	if burst <= 0 {
		burst = 10
	}
	return &RetryBudget{ratio: ratio, burst: float64(burst), tokens: float64(burst)}
}

// Deposit credits the budget for one first attempt.
func (b *RetryBudget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens = math.Min(b.tokens+b.ratio, b.burst)
	b.mu.Unlock()
}

// Withdraw spends one token for a retry, reporting whether the retry is
// allowed. A denied withdrawal is counted but costs nothing.
func (b *RetryBudget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	return true
}

// Denied reports how many retries the budget has refused.
func (b *RetryBudget) Denied() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}
