package backend_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/backend"
	"repro/internal/query"
	"repro/internal/sqlfront"
)

// TestShardedSplitsHotBatch drives one statement through a Sharded decorator
// over a Recording tap and asserts the batch actually fanned out: several
// sub-batches, whose rows sum to the statement's model calls, all under one
// stage key, with the decorator's counters agreeing.
func TestShardedSplitsHotBatch(t *testing.T) {
	rec := backend.NewRecording(nil)
	sh, err := backend.NewSharded(rec, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	res := execWith(t, sh, conformanceStatements[0], false)
	batches := rec.Batches()
	if len(batches) < 2 {
		t.Fatalf("sharded run recorded %d sub-batches, want >= 2 (no fan-out happened)", len(batches))
	}
	rows := 0
	keys := map[string]bool{}
	for _, b := range batches {
		rows += b.Rows
		keys[b.StageKey] = true
	}
	if rows != res.LLMCalls {
		t.Errorf("sub-batch rows sum to %d, statement reported %d model calls", rows, res.LLMCalls)
	}
	if len(keys) != 1 {
		t.Errorf("sub-batches spread over %d stage keys, want 1 (shards share the stage)", len(keys))
	}
	st := sh.Stats()
	if st.ShardedBatches == 0 || st.ShardRuns != int64(len(batches)) {
		t.Errorf("ShardStats = %+v, recording saw %d sub-batches", st, len(batches))
	}
	if st.ShardJCTSeconds <= 0 {
		t.Error("no per-shard JCT accounted")
	}
}

// TestShardedPassthrough pins the unsplit paths: one shard, or a batch
// without group annotations, runs exactly one inner batch.
func TestShardedPassthrough(t *testing.T) {
	rec := backend.NewRecording(nil)
	sh, err := backend.NewSharded(rec, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	execWith(t, sh, conformanceStatements[0], false)
	if n := len(rec.Batches()); n != 1 {
		t.Fatalf("shards=1 recorded %d batches, want 1 (passthrough)", n)
	}
	if st := sh.Stats(); st.ShardedBatches != 0 || st.ShardRuns != 0 {
		t.Errorf("passthrough counted as sharded: %+v", st)
	}
}

// TestNewShardedRejectsBadCount pins the shards >= 1 contract.
func TestNewShardedRejectsBadCount(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := backend.NewSharded(backend.NewSim(), n); err == nil {
			t.Errorf("NewSharded(_, %d) succeeded, want error", n)
		}
	}
}

// TestByNameShards pins the flag resolver: plain names, sharded-* names with
// their default fan-out, -shards composition, and the error cases.
func TestByNameShards(t *testing.T) {
	cases := []struct {
		name   string
		shards int
		want   string // "" = error expected
		width  int    // expected Shards() when the result is *Sharded
	}{
		{"sim", 1, "*backend.Sim", 0},
		{"persistent", 1, "*backend.Persistent", 0},
		{"sim", 4, "*backend.Sharded", 4},
		{"persistent", 2, "*backend.Sharded", 2},
		{"sharded-sim", 1, "*backend.Sharded", backend.DefaultShards},
		{"sharded-persistent", 1, "*backend.Sharded", backend.DefaultShards},
		{"sharded-sim", 8, "*backend.Sharded", 8},
		{"sim", 0, "", 0},
		{"sim", -3, "", 0},
		{"sharded-bogus", 1, "", 0},
		{"bogus", 1, "", 0},
	}
	for _, tc := range cases {
		be, err := backend.ByNameShards(tc.name, tc.shards)
		if tc.want == "" {
			if err == nil {
				t.Errorf("ByNameShards(%q, %d) succeeded, want error", tc.name, tc.shards)
			}
			continue
		}
		if err != nil {
			t.Errorf("ByNameShards(%q, %d): %v", tc.name, tc.shards, err)
			continue
		}
		if got := fmt.Sprintf("%T", be); got != tc.want {
			t.Errorf("ByNameShards(%q, %d) = %s, want %s", tc.name, tc.shards, got, tc.want)
		}
		if sh, ok := be.(*backend.Sharded); ok && sh.Shards() != tc.width {
			t.Errorf("ByNameShards(%q, %d) fan-out = %d, want %d", tc.name, tc.shards, sh.Shards(), tc.width)
		}
		be.Close()
	}
	if _, err := backend.ByName("nope"); err == nil || !strings.Contains(err.Error(), "sharded-sim") {
		t.Errorf("ByName error should list the sharded names, got: %v", err)
	}
}

// failNthBackend fails its nth RunBatch with a distinctive error and
// delegates the rest, so exactly one shard of a fan-out dies for a real
// (non-cancellation) reason.
type failNthBackend struct {
	inner backend.Backend
	n     int32
	calls atomic.Int32
}

var errShardBoom = errors.New("shard backend exploded")

func (f *failNthBackend) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	if f.calls.Add(1) == f.n {
		return backend.BatchResult{}, errShardBoom
	}
	return f.inner.RunBatch(ctx, spec)
}

func (f *failNthBackend) Close() error { return f.inner.Close() }

// TestShardedSurfacesRealShardError pins the failure path: when one shard
// fails for a real reason, the cancellation it induces in peer shards must
// not mask the root cause — the statement fails with the shard's error, not
// context.Canceled.
func TestShardedSurfacesRealShardError(t *testing.T) {
	inner := &failNthBackend{inner: backend.NewSim(), n: 1}
	sh, err := backend.NewSharded(inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	db := sqlfront.NewDB()
	db.Register("tickets", ticketsTable(24))
	_, err = db.Exec(conformanceStatements[0], sqlfront.ExecConfig{
		Config: query.Config{Backend: sh},
	})
	if err == nil {
		t.Fatal("statement succeeded with a failing shard")
	}
	if !errors.Is(err, errShardBoom) {
		t.Fatalf("err = %v, want the failing shard's own error", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("real shard failure surfaced as cancellation: %v", err)
	}
}

// TestShardedPreservesHitTokens quantifies the prefix-coherence argument at
// the seam: sharding a hot statement must keep at least 90% of the
// unsharded run's matched prefix tokens (the only loss is each shard
// re-warming the fixed prompt prefix), while relations stay identical.
func TestShardedPreservesHitTokens(t *testing.T) {
	run := func(be backend.Backend) (int64, *sqlfront.Result) {
		rec := backend.NewRecording(be)
		defer rec.Close()
		// A hot batch large enough that the per-shard prompt-prefix warm-up
		// (the one constant cost sharding adds) is amortized, as it is in
		// the serving workloads sharding exists for.
		db := sqlfront.NewDB()
		db.Register("tickets", ticketsTable(96))
		sql := `SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS ok
		        FROM tickets`
		res, err := db.Exec(sql, sqlfront.ExecConfig{Config: query.Config{Backend: rec}})
		if err != nil {
			t.Fatal(err)
		}
		var matched int64
		for _, b := range rec.Batches() {
			matched += b.Metrics.MatchedTokens
		}
		return matched, res
	}
	baseHit, baseRes := run(backend.NewSim())
	sh, err := backend.NewSharded(backend.NewSim(), 4)
	if err != nil {
		t.Fatal(err)
	}
	shardHit, shardRes := run(sh)
	if fmt.Sprint(baseRes.Rows) != fmt.Sprint(shardRes.Rows) {
		t.Error("sharded relation differs from unsharded")
	}
	if min := baseHit * 9 / 10; shardHit < min {
		t.Errorf("sharded hit tokens = %d, want >= 90%% of unsharded %d", shardHit, baseHit)
	}
	t.Logf("hit tokens: unsharded %d, sharded %d", baseHit, shardHit)
}
