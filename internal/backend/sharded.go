package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/obs"
)

// DefaultShards is the shard count the "sharded-*" backend names use when no
// explicit -shards value composes with them.
const DefaultShards = 4

// Sharded is the data-parallel decorator: it splits one scheduled batch into
// up to N prefix-coherent sub-batches and fans them out to concurrent
// RunBatch calls on the wrapped backend, so a single hot stage can use N
// engine replicas instead of one sequential run.
//
// The split follows BatchSpec.Groups, the top-level prefix-sharing group
// boundaries the scheduler annotated (core.GroupStarts): a group's rows
// share prompt prefixes with each other but not with the next group, so
// cutting only at group boundaries preserves every intra-shard prefix hit —
// the same insight behind cache-aware data-parallel serving in vLLM and
// SGLang, applied to the paper's offline GGR schedules. What sharding does
// forfeit is the shared fixed prompt prefix: each sub-batch's engine warms
// it independently, a per-shard cost that is constant in the batch size.
// Groups are balanced across shards by request-token weight (core.PackGroups
// greedy), and a batch without group annotations, with a single group, or
// smaller than two requests passes through unsplit.
//
// Results merge by construction: answers are content-keyed outside the
// engine, so sharded relations are byte-identical to unsharded ones; merged
// Metrics report the parallel JCT (max over shards), summed token and step
// counts, request-weighted mean latency, and worst-shard tail percentiles.
//
// Composing with Persistent is the intended production shape: sub-batches
// share the batch's StageKey, so they land on the same stage's replica pool
// and overlap on separate replicas (see Persistent).
type Sharded struct {
	inner  Backend
	shards int

	shardedBatches atomic.Int64
	shardRuns      atomic.Int64
	shardJCTMicros atomic.Int64
}

var _ Backend = (*Sharded)(nil)

// NewSharded wraps inner (nil wraps a fresh Sim) with a data-parallel fan-out
// of up to shards concurrent engine runs per batch. shards < 1 is an error;
// shards == 1 is a valid passthrough.
func NewSharded(inner Backend, shards int) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("backend: sharded backend needs shards >= 1, got %d", shards)
	}
	if inner == nil {
		inner = NewSim()
	}
	return &Sharded{inner: inner, shards: shards}, nil
}

// Shards reports the configured fan-out width.
func (s *Sharded) Shards() int { return s.shards }

// ShardStats is the decorator's accounting, merged into runtime.Metrics.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type ShardStats struct {
	// ShardedBatches counts batches actually split (>= 2 sub-batches);
	// ShardRuns the sub-batches dispatched to the inner backend.
	ShardedBatches int64
	ShardRuns      int64
	// ShardJCTSeconds sums per-shard virtual JCT; divided by ShardRuns it is
	// the mean per-shard latency. Compare with the merged (max-over-shards)
	// JCT the batches reported to see the parallel speedup.
	ShardJCTSeconds float64
}

// Stats snapshots the sharding counters.
func (s *Sharded) Stats() ShardStats {
	return ShardStats{
		ShardedBatches:  s.shardedBatches.Load(),
		ShardRuns:       s.shardRuns.Load(),
		ShardJCTSeconds: float64(s.shardJCTMicros.Load()) / 1e6,
	}
}

// RunBatch partitions the batch along its group boundaries and serves the
// shards concurrently on the inner backend. The first shard error cancels
// the rest and is returned; ctx cancellation propagates to every shard.
func (s *Sharded) RunBatch(ctx context.Context, spec BatchSpec) (BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return BatchResult{}, err
	}
	if s.shards == 1 || len(spec.Groups) <= 1 || len(spec.Requests) < 2 {
		return s.inner.RunBatch(ctx, spec)
	}
	parts, err := SplitByGroups(spec, s.shards)
	if err != nil {
		return BatchResult{}, err
	}
	if len(parts) <= 1 {
		return s.inner.RunBatch(ctx, spec)
	}

	// The backend span (attached by the query layer) gets the fan-out width
	// and one completed child per shard. Span mutation is mutex-guarded, so
	// the concurrent shard goroutines may annotate the same parent.
	sp := obs.FromContext(ctx)
	sp.Set("shards", len(parts))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]BatchResult, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for b, part := range parts {
		wg.Add(1)
		go func(b int, part BatchSpec) {
			defer wg.Done()
			shardStart := time.Now()
			results[b], errs[b] = s.inner.RunBatch(runCtx, part)
			if sp != nil {
				c := sp.ChildAt(fmt.Sprintf("shard-%d", b), shardStart, time.Since(shardStart))
				c.Set("requests", len(part.Requests))
				if errs[b] == nil {
					c.Set("jctSeconds", results[b].Metrics.JCT)
				}
			}
			if errs[b] != nil {
				cancel() // fail fast: peers stop between engine steps
			}
		}(b, part)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		// A failing shard cancels its peers, so the peers report
		// context.Canceled even though they did not cause the failure.
		// Surface the root cause: the first error that is NOT a
		// cancellation wins; plain ctx.Err()/Canceled only survives when
		// every failure is one (i.e. the caller's own cancellation).
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(firstErr, ctxErr) {
			return BatchResult{}, ctxErr
		}
		return BatchResult{}, firstErr
	}

	s.shardedBatches.Add(1)
	s.shardRuns.Add(int64(len(parts)))
	sizes := make([]int, len(parts))
	for b, part := range parts {
		sizes[b] = len(part.Requests)
		s.shardJCTMicros.Add(int64(results[b].Metrics.JCT * 1e6))
	}
	return MergeBatchResults(results, sizes), nil
}

// SplitByGroups partitions spec at its prefix-group boundaries into at most
// n sub-batches, balanced by request-token weight (core.PackGroups greedy).
// Sub-batches inherit the StageKey and Engine but carry no Groups annotation
// — they are leaves, not further splittable without prefix-hit loss. A batch
// that should not be split (n < 2, no or single group annotation, fewer than
// two requests) returns a single-element slice holding spec unchanged; an
// invalid Groups annotation is an error.
func SplitByGroups(spec BatchSpec, n int) ([]BatchSpec, error) {
	if n < 2 || len(spec.Groups) <= 1 || len(spec.Requests) < 2 {
		return []BatchSpec{spec}, nil
	}
	if err := validGroups(spec.Groups, len(spec.Requests)); err != nil {
		return nil, err
	}
	bins := core.PackGroups(groupWeights(spec), n)
	if len(bins) <= 1 {
		return []BatchSpec{spec}, nil
	}
	parts := make([]BatchSpec, len(bins))
	for b, groups := range bins {
		var reqs []*llmsim.Request
		for _, g := range groups {
			start, end := groupBounds(spec, g)
			reqs = append(reqs, spec.Requests[start:end]...)
		}
		parts[b] = BatchSpec{StageKey: spec.StageKey, Requests: reqs, Engine: spec.Engine}
	}
	return parts, nil
}

// MergeBatchResults folds the results of concurrently served sub-batches
// back into one BatchResult with the parallel-run semantics every fan-out
// backend (Sharded, cluster.Router) shares: JCT is the slowest part, step
// and token counts sum, mean latency is request-weighted (sizes holds each
// part's request count), and tail percentiles / peak concurrency report the
// worst part — a conservative merge, since exact percentiles would need the
// per-request samples the seam does not carry.
func MergeBatchResults(results []BatchResult, sizes []int) BatchResult {
	merged := BatchResult{}
	var latWeighted float64
	var total int
	for b, r := range results {
		merged.ModelCalls += r.ModelCalls
		m := &merged.Metrics
		sm := r.Metrics
		if sm.JCT > m.JCT {
			m.JCT = sm.JCT // parts run in parallel: batch JCT is the slowest part
		}
		m.Steps += sm.Steps
		m.PromptTokens += sm.PromptTokens
		m.MatchedTokens += sm.MatchedTokens
		m.PrefilledTokens += sm.PrefilledTokens
		m.DecodeTokens += sm.DecodeTokens
		latWeighted += sm.MeanLatency * float64(sizes[b])
		total += sizes[b]
		if sm.P50Latency > m.P50Latency {
			m.P50Latency = sm.P50Latency
		}
		if sm.P95Latency > m.P95Latency {
			m.P95Latency = sm.P95Latency
		}
		if sm.P99Latency > m.P99Latency {
			m.P99Latency = sm.P99Latency
		}
		if sm.MaxRunning > m.MaxRunning {
			m.MaxRunning = sm.MaxRunning
		}
		m.Cache.MatchedTokens += sm.Cache.MatchedTokens
		m.Cache.PromptTokens += sm.Cache.PromptTokens
		m.Cache.InsertedBlocks += sm.Cache.InsertedBlocks
		m.Cache.EvictedBlocks += sm.Cache.EvictedBlocks
		m.Cache.Rejections += sm.Cache.Rejections
	}
	if total > 0 {
		merged.Metrics.MeanLatency = latWeighted / float64(total)
	}
	return merged
}

// Close closes the wrapped backend.
func (s *Sharded) Close() error { return s.inner.Close() }

// groupWeights is each group's request weight: prompt tokens plus output
// budget, the units the engine's step budget is spent in.
func groupWeights(spec BatchSpec) []int64 {
	weights := make([]int64, len(spec.Groups))
	for g := range spec.Groups {
		start, end := groupBounds(spec, g)
		for _, r := range spec.Requests[start:end] {
			weights[g] += int64(len(r.Prompt) + r.OutTokens)
		}
	}
	return weights
}

// groupBounds returns the request index range [start, end) of group g.
func groupBounds(spec BatchSpec, g int) (int, int) {
	start := spec.Groups[g]
	end := len(spec.Requests)
	if g+1 < len(spec.Groups) {
		end = spec.Groups[g+1]
	}
	return start, end
}

// validGroups checks the group annotation is a plausible boundary list:
// strictly ascending, starting at 0, within range.
func validGroups(groups []int, n int) error {
	for i, g := range groups {
		switch {
		case i == 0 && g != 0:
			return fmt.Errorf("backend: batch group annotation starts at %d, want 0", g)
		case i > 0 && g <= groups[i-1]:
			return fmt.Errorf("backend: batch group annotation not ascending at index %d", i)
		case g >= n:
			return fmt.Errorf("backend: batch group start %d out of range (batch has %d requests)", g, n)
		}
	}
	return nil
}
