// White-box tests of the Persistent replica pool: acquire/release/evict
// semantics that black-box statement runs cannot pin deterministically.
package backend

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/llmsim"
)

func poolSpec(key string) BatchSpec {
	return BatchSpec{StageKey: key, Engine: llmsim.Config{CacheEnabled: true}}
}

// TestPoolGrowsUnderContention pins the tentpole's point: a second batch on
// the same hot stage no longer serializes behind a mutex — it gets its own
// replica while the first is mid-run.
func TestPoolGrowsUnderContention(t *testing.T) {
	p := NewPersistent(0)
	defer p.Close()
	ctx := context.Background()

	e1, pool, err := p.acquire(ctx, poolSpec("hot"))
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := p.acquire(ctx, poolSpec("hot"))
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Fatal("two concurrent acquires returned the same replica")
	}
	if got := p.Engines(); got != 2 {
		t.Fatalf("live replicas = %d, want 2", got)
	}
	if got := p.StageReplicas("hot"); got != 2 {
		t.Fatalf("stage replicas = %d, want 2", got)
	}

	// Sequential reuse stays cache-hot: release both, the next acquire must
	// get the most recently released replica, and the pool must not grow.
	p.release(pool, e1)
	p.release(pool, e2)
	e3, _, err := p.acquire(ctx, poolSpec("hot"))
	if err != nil {
		t.Fatal(err)
	}
	if e3 != e2 {
		t.Fatal("acquire skipped the most recently released (cache-hot) replica")
	}
	if got := p.Engines(); got != 2 {
		t.Fatalf("sequential reuse grew the pool: %d replicas", got)
	}
}

// TestPoolWaitsAtStageCap pins the per-stage cap: past it, an acquire parks
// until a release hands over a replica, and the handoff preserves identity.
func TestPoolWaitsAtStageCap(t *testing.T) {
	p := NewPersistentReplicas(0, 2)
	defer p.Close()
	ctx := context.Background()

	e1, pool, err := p.acquire(ctx, poolSpec("hot"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.acquire(ctx, poolSpec("hot")); err != nil {
		t.Fatal(err)
	}

	got := make(chan *llmsim.Engine, 1)
	go func() {
		eng, _, err := p.acquire(ctx, poolSpec("hot"))
		if err != nil {
			t.Error(err)
		}
		got <- eng
	}()
	select {
	case <-got:
		t.Fatal("third acquire did not wait at the per-stage cap")
	case <-time.After(20 * time.Millisecond):
	}
	p.release(pool, e1)
	select {
	case eng := <-got:
		if eng != e1 {
			t.Fatal("waiter received a different replica than the released one")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke after release")
	}
	if got := p.Engines(); got != 2 {
		t.Fatalf("cap breached: %d replicas, want 2", got)
	}
}

// TestPoolWaiterHonorsContext pins cancellation while parked: the waiter
// returns ctx.Err() and a later release still finds a consistent pool.
func TestPoolWaiterHonorsContext(t *testing.T) {
	p := NewPersistentReplicas(0, 1)
	defer p.Close()

	e1, pool, err := p.acquire(context.Background(), poolSpec("hot"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := p.acquire(ctx, poolSpec("hot"))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("parked acquire returned %v, want context.Canceled", err)
	}
	p.release(pool, e1)
	// The canceled waiter must not have consumed the replica.
	if _, _, err := p.acquire(context.Background(), poolSpec("hot")); err != nil {
		t.Fatalf("pool wedged after canceled waiter: %v", err)
	}
}

// TestPoolBudgetEvictsIdleReplicas pins the replica-counting LRU: distinct
// stages past the budget evict the least recently used stage's idle
// replicas, never exceeding the budget while everything is idle.
func TestPoolBudgetEvictsIdleReplicas(t *testing.T) {
	p := NewPersistentReplicas(2, 2)
	defer p.Close()
	ctx := context.Background()

	for i, key := range []string{"a", "b", "c", "d"} {
		eng, pool, err := p.acquire(ctx, poolSpec(key))
		if err != nil {
			t.Fatal(err)
		}
		p.release(pool, eng)
		if got := p.Engines(); got > 2 {
			t.Fatalf("after stage %d: %d replicas, budget 2", i+1, got)
		}
	}
	if got := p.Engines(); got != 2 {
		t.Fatalf("live replicas = %d, want 2 (budget reached)", got)
	}
	if got := p.StageReplicas("a"); got != 0 {
		t.Fatalf("LRU stage a still holds %d replicas", got)
	}
	if got := p.StageReplicas("d"); got != 1 {
		t.Fatalf("MRU stage d holds %d replicas, want 1", got)
	}
}

// TestPoolFirstReplicaAlwaysCreated pins the progress guarantee: a new
// stage gets its first replica even when the whole budget is mid-run
// elsewhere (transient overage instead of deadlock).
func TestPoolFirstReplicaAlwaysCreated(t *testing.T) {
	p := NewPersistentReplicas(1, 2)
	defer p.Close()
	ctx := context.Background()

	e1, poolA, err := p.acquire(ctx, poolSpec("a")) // consumes the whole budget, stays busy
	if err != nil {
		t.Fatal(err)
	}
	e2, poolB, err := p.acquire(ctx, poolSpec("b"))
	if err != nil {
		t.Fatalf("new stage starved by a busy budget: %v", err)
	}
	if got := p.Engines(); got != 2 {
		t.Fatalf("live replicas = %d, want 2 (transient overage)", got)
	}
	p.release(poolA, e1)
	p.release(poolB, e2)
	// The overage is shed on the next budget check: a third stage's acquire
	// evicts both idle LRU replicas down to the budget.
	e3, poolC, err := p.acquire(ctx, poolSpec("c"))
	if err != nil {
		t.Fatal(err)
	}
	p.release(poolC, e3)
	if got := p.Engines(); got != 1 {
		t.Fatalf("live replicas = %d, want 1 (budget restored)", got)
	}
}

// TestPoolCloseFailsWaiters pins shutdown: Close wakes parked acquirers
// with an error instead of leaving them hanging.
func TestPoolCloseFailsWaiters(t *testing.T) {
	p := NewPersistentReplicas(0, 1)
	if _, _, err := p.acquire(context.Background(), poolSpec("hot")); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, _, err := p.acquire(context.Background(), poolSpec("hot"))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("waiter succeeded on a closed backend")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter hung through Close")
	}
}
