package backend

import (
	"context"

	"repro/internal/llmsim"
)

// Sim is the confined per-batch backend: every RunBatch builds a fresh
// simulated engine and KV cache, runs the batch, and discards both. This is
// the paper's evaluation setting — prefix hits happen only within one
// scheduled batch — and exactly the behavior the stack had before the
// Backend seam existed. Sim is stateless, so one instance may serve any
// number of concurrent batches.
type Sim struct{}

var _ Backend = (*Sim)(nil)

// NewSim returns the per-batch backend.
func NewSim() *Sim { return &Sim{} }

// RunBatch serves the batch on a throwaway engine.
func (s *Sim) RunBatch(ctx context.Context, spec BatchSpec) (BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return BatchResult{}, err
	}
	eng := llmsim.New(spec.Engine)
	metrics, err := eng.RunInterruptible(spec.Requests, interruptFor(ctx))
	if err != nil {
		return BatchResult{}, err
	}
	return BatchResult{Metrics: metrics, ModelCalls: len(spec.Requests)}, nil
}

// Close is a no-op: Sim holds no state.
func (s *Sim) Close() error { return nil }

// Default is the process-wide backend execution falls back to when a config
// names none. It is the Sim backend, preserving the pre-seam behavior for
// every caller that never opts into another target.
var Default Backend = NewSim()
