package backend

import (
	"context"
	"sync"

	"repro/internal/llmsim"
)

// RecordedBatch is one RunBatch observed by a Recording backend.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type RecordedBatch struct {
	StageKey   string
	Rows       int // requests in the batch
	OutTokens  int // summed per-row output budgets
	ModelCalls int
	Metrics    llmsim.Metrics
	Err        string // empty on success
}

// Recording decorates another backend, logging every batch it serves —
// the test-and-metrics tap of the driver API. Wrap any backend to assert
// exactly which stages reached an engine, how many rows rode in each batch,
// and what the engine reported, without changing execution semantics.
type Recording struct {
	inner Backend

	mu      sync.Mutex
	batches []RecordedBatch // guarded by mu
}

var _ Backend = (*Recording)(nil)

// NewRecording wraps inner (nil wraps a fresh Sim backend).
func NewRecording(inner Backend) *Recording {
	if inner == nil {
		inner = NewSim()
	}
	return &Recording{inner: inner}
}

// RunBatch delegates to the wrapped backend and records the outcome,
// including failed and canceled batches.
func (r *Recording) RunBatch(ctx context.Context, spec BatchSpec) (BatchResult, error) {
	res, err := r.inner.RunBatch(ctx, spec)
	outTok := 0
	for _, req := range spec.Requests {
		outTok += req.OutTokens
	}
	rec := RecordedBatch{
		StageKey:   spec.StageKey,
		Rows:       len(spec.Requests),
		OutTokens:  outTok,
		ModelCalls: res.ModelCalls,
		Metrics:    res.Metrics,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	r.mu.Lock()
	r.batches = append(r.batches, rec)
	r.mu.Unlock()
	return res, err
}

// Batches returns a copy of everything recorded so far.
func (r *Recording) Batches() []RecordedBatch {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RecordedBatch(nil), r.batches...)
}

// Reset clears the log.
func (r *Recording) Reset() {
	r.mu.Lock()
	r.batches = nil
	r.mu.Unlock()
}

// Close closes the wrapped backend.
func (r *Recording) Close() error { return r.inner.Close() }
