// Conformance suite for the Backend seam: every shipped backend must return
// result relations byte-identical to the sequential oracle (the default
// per-batch engine), report the same model-call counts, honor context
// cancellation, and stay race-clean (CI runs this package under -race).
package backend_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/query"
	"repro/internal/sqlfront"
	"repro/internal/table"
)

func ticketsTable(rows int) *table.Table {
	t := table.New("ticket_id", "region", "request", "response")
	regions := []string{"emea", "amer", "apac"}
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			fmt.Sprintf("T-%04d", i),
			regions[i%len(regions)],
			fmt.Sprintf("my device model %d stopped working after the update", i%7),
			fmt.Sprintf("we suggest resetting configuration profile %d and retrying", i%5),
		)
	}
	return t
}

var conformanceStatements = []string{
	`SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS ok
	 FROM tickets WHERE region = 'emea'`,
	`SELECT ticket_id FROM tickets
	 WHERE LLM('Is the request about a hardware fault?', request) = 'Yes' AND region <> 'apac'`,
	`SELECT region, COUNT(*) AS n, AVG(LLM('Rate the anger 1-5.', request)) AS anger
	 FROM tickets GROUP BY region ORDER BY n DESC, region`,
}

// backends lists every shipped Backend under test, each built fresh per
// subtest so persistent state never leaks between cases. The sharded
// decorators run over both engine-owning backends so the data-parallel path
// is held to the same result-identity bar.
func backends() map[string]func() backend.Backend {
	mustShard := func(inner backend.Backend) backend.Backend {
		s, err := backend.NewSharded(inner, 3)
		if err != nil {
			panic(err)
		}
		return s
	}
	return map[string]func() backend.Backend{
		"sim":                func() backend.Backend { return backend.NewSim() },
		"persistent":         func() backend.Backend { return backend.NewPersistent(0) },
		"recording":          func() backend.Backend { return backend.NewRecording(nil) },
		"sharded-sim":        func() backend.Backend { return mustShard(backend.NewSim()) },
		"sharded-persistent": func() backend.Backend { return mustShard(backend.NewPersistent(0)) },
		"remote":             newRemoteConformance,
	}
}

func execWith(t *testing.T, be backend.Backend, sql string, naive bool) *sqlfront.Result {
	t.Helper()
	db := sqlfront.NewDB()
	db.Register("tickets", ticketsTable(24))
	res, err := db.Exec(sql, sqlfront.ExecConfig{
		Config: query.Config{Backend: be},
		Naive:  naive,
	})
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	return res
}

// TestConformanceResultIdentity runs the statement set through every
// backend, planned and naive, and requires relations and model-call counts
// identical to the default (sim) oracle.
func TestConformanceResultIdentity(t *testing.T) {
	for _, naive := range []bool{false, true} {
		var want []*sqlfront.Result
		for _, sql := range conformanceStatements {
			want = append(want, execWith(t, nil, sql, naive)) // nil = backend.Default
		}
		for name, mk := range backends() {
			t.Run(fmt.Sprintf("%s/naive=%v", name, naive), func(t *testing.T) {
				be := mk()
				defer be.Close()
				for i, sql := range conformanceStatements {
					got := execWith(t, be, sql, naive)
					if fmt.Sprint(got.Columns) != fmt.Sprint(want[i].Columns) {
						t.Errorf("%q: columns differ: %v vs %v", sql, got.Columns, want[i].Columns)
					}
					if fmt.Sprint(got.Rows) != fmt.Sprint(want[i].Rows) {
						t.Errorf("%q: rows differ\nwant %v\ngot  %v", sql, want[i].Rows, got.Rows)
					}
					if got.LLMCalls != want[i].LLMCalls {
						t.Errorf("%q: model calls = %d, oracle made %d", sql, got.LLMCalls, want[i].LLMCalls)
					}
				}
			})
		}
	}
}

// TestConformanceCancellation requires every backend to refuse a dead
// context with an error wrapping context.Canceled.
func TestConformanceCancellation(t *testing.T) {
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			be := mk()
			defer be.Close()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			db := sqlfront.NewDB()
			db.Register("tickets", ticketsTable(12))
			_, err := db.ExecContext(ctx, conformanceStatements[0], sqlfront.ExecConfig{
				Config: query.Config{Backend: be},
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

// TestConformanceConcurrentBatches hammers each backend from many
// goroutines (the serving runtime's workers share one backend); run under
// -race this is the seam's concurrency audit.
func TestConformanceConcurrentBatches(t *testing.T) {
	want := execWith(t, nil, conformanceStatements[0], false)
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			be := mk()
			defer be.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						got := execWith(t, be, conformanceStatements[0], false)
						if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
							t.Errorf("concurrent relation diverged")
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestRecordingBackend checks the decorator's log: every engine batch is
// recorded with its rows and summed output budgets, and the totals match
// the statement's reported model calls.
func TestRecordingBackend(t *testing.T) {
	rec := backend.NewRecording(nil)
	defer rec.Close()
	res := execWith(t, rec, conformanceStatements[0], false)
	batches := rec.Batches()
	if len(batches) == 0 {
		t.Fatal("no batches recorded")
	}
	rows, out := 0, 0
	for _, b := range batches {
		if b.StageKey == "" {
			t.Error("recorded batch has empty stage key")
		}
		if b.Err != "" {
			t.Errorf("recorded batch failed: %s", b.Err)
		}
		if b.ModelCalls != b.Rows {
			t.Errorf("batch model calls = %d, rows = %d", b.ModelCalls, b.Rows)
		}
		if b.Metrics.PromptTokens == 0 {
			t.Error("recorded batch has no prompt tokens")
		}
		rows += b.Rows
		out += b.OutTokens
	}
	if rows != res.LLMCalls {
		t.Errorf("recorded rows = %d, statement reported %d model calls", rows, res.LLMCalls)
	}
	if out == 0 {
		t.Error("no output budget recorded")
	}
	rec.Reset()
	if len(rec.Batches()) != 0 {
		t.Error("Reset left batches behind")
	}
}

// TestPersistentPrefixSurvivesBatches is the seam-level pin of the
// cross-batch KV persistence: two consecutive batches sharing a stage key
// over disjoint rows must see strictly more cumulative hit tokens on a
// persistent backend than on the per-batch sim backend, while returning
// identical relations.
func TestPersistentPrefixSurvivesBatches(t *testing.T) {
	stmts := []string{
		`SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS ok
		 FROM tickets WHERE region = 'emea'`,
		`SELECT ticket_id, LLM('Did the response resolve the request?', request, response) AS ok
		 FROM tickets WHERE region = 'amer'`,
	}
	run := func(be backend.Backend) (int64, []*sqlfront.Result) {
		rec := backend.NewRecording(be)
		defer rec.Close()
		var results []*sqlfront.Result
		for _, sql := range stmts {
			results = append(results, execWith(t, rec, sql, false))
		}
		var matched int64
		keys := map[string]bool{}
		for _, b := range rec.Batches() {
			matched += b.Metrics.MatchedTokens
			keys[b.StageKey] = true
		}
		if len(keys) != 1 {
			t.Fatalf("statements spread over %d stage keys, want 1 (they share the LLM call)", len(keys))
		}
		return matched, results
	}
	simHit, simRes := run(backend.NewSim())
	perHit, perRes := run(backend.NewPersistent(0))
	if perHit <= simHit {
		t.Errorf("persistent hit tokens = %d, want strictly above sim's %d", perHit, simHit)
	}
	for i := range simRes {
		if fmt.Sprint(simRes[i].Rows) != fmt.Sprint(perRes[i].Rows) {
			t.Errorf("statement %d: relations differ between backends", i)
		}
	}
	t.Logf("cumulative hit tokens: sim %d, persistent %d", simHit, perHit)
}

// TestPersistentEvictionBudget pins the LRU engine budget: distinct stage
// keys past the budget evict the oldest engine, and an evicted stage starts
// cold again.
func TestPersistentEvictionBudget(t *testing.T) {
	be := backend.NewPersistent(2)
	defer be.Close()
	for i := 0; i < 4; i++ {
		sql := fmt.Sprintf(
			`SELECT ticket_id, LLM('Distinct question %d about the request?', request) AS a FROM tickets`, i)
		execWith(t, be, sql, false)
		if got := be.Engines(); got > 2 {
			t.Fatalf("after %d stages: %d live engines, budget 2", i+1, got)
		}
	}
	if got := be.Engines(); got != 2 {
		t.Errorf("live engines = %d, want 2 (budget reached)", got)
	}
}

// TestPersistentClosedFails ensures RunBatch after Close errors instead of
// silently building new engines.
func TestPersistentClosedFails(t *testing.T) {
	be := backend.NewPersistent(0)
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}
	db := sqlfront.NewDB()
	db.Register("tickets", ticketsTable(6))
	_, err := db.Exec(conformanceStatements[0], sqlfront.ExecConfig{Config: query.Config{Backend: be}})
	if err == nil {
		t.Fatal("statement on a closed backend succeeded")
	}
}
