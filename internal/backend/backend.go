// Package backend defines the execution boundary between the query layers
// and an LLM serving engine: a database/sql-driver-style seam the rest of
// the stack targets instead of constructing engines inline.
//
// The layers above (internal/query, internal/sqlfront, internal/runtime)
// decide WHAT to serve — which rows, in which order, with which per-row
// output budgets — and hand the finished schedule to a Backend as one
// BatchSpec. The Backend decides WHERE and HOW it is served. Four
// implementations ship:
//
//   - Sim: one confined engine + KV cache per batch (the paper's setting,
//     and the previous hardwired behavior).
//   - Persistent: a pool of long-lived engine replicas per stage
//     fingerprint whose KV caches survive between batches, so prefix hits
//     span batch windows — the cross-statement KV-cache persistence the
//     single-run design could not express — while concurrent batches on one
//     hot stage overlap on separate replicas.
//   - Sharded: a data-parallel decorator that splits one batch at its
//     prefix-group boundaries (BatchSpec.Groups) and fans the shards out to
//     concurrent runs on the wrapped backend.
//   - Recording: a decorator that logs every batch for tests and metrics.
//
// Because the simulated oracle answers outside the engine (answers are
// content-keyed in the query layer), swapping backends changes serving cost
// only — result relations are byte-identical across all of them.
//
// Every RunBatch takes a context and must honor it: cancellation is checked
// on entry and between engine steps, and an aborted run returns ctx.Err()
// with no engine state leaked (see llmsim.Engine.RunInterruptible).
package backend

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/llmsim"
)

// BatchSpec is one scheduled engine run: tokenized requests in serving
// order, each carrying its own output budget, plus the engine configuration
// to serve them under and a stage key for backends that keep per-stage
// state.
type BatchSpec struct {
	// StageKey fingerprints the stage shape (prompt, schema, answer
	// alphabet, serving config — see query.StageKey). Persistent backends
	// key long-lived engine state on it: two batches with equal keys share
	// a KV cache, so their prefixes hit across batch windows. Batches with
	// equal StageKeys must carry equal Engine configs.
	StageKey string
	// Requests are the scheduled rows in serving order. Under FIFO the
	// order IS the serving order; preserving it is the contract the offline
	// reordering relies on.
	Requests []*llmsim.Request
	// Groups lists the start indices of the schedule's top-level
	// prefix-sharing groups within Requests (ascending, first element 0 —
	// see core.GroupStarts). Adjacent requests in different groups share no
	// prompt prefix beyond what any two requests share, so a data-parallel
	// backend may cut the batch at these boundaries with no intra-shard
	// prefix-hit loss. Empty means the scheduler did not annotate the batch;
	// sharding backends then serve it unsplit.
	Groups []int
	// Engine sizes the serving engine (cost model, batch limits, cache
	// toggle) for this batch.
	Engine llmsim.Config
}

// BatchResult reports one engine run: model calls made, hit/total prompt
// tokens, and latency (all inside Metrics).
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type BatchResult struct {
	// Metrics is the engine's accounting: JCT, prompt/matched/prefilled
	// tokens, per-request latency percentiles.
	Metrics llmsim.Metrics
	// ModelCalls is the number of requests that reached the engine —
	// always len(BatchSpec.Requests) for the shipped backends; callers
	// above may report fewer when caches served rows without a batch.
	ModelCalls int
}

// Backend is a pluggable serving target. Implementations must be safe for
// concurrent RunBatch calls from any number of goroutines (the serving
// runtime's workers share one backend) and must honor ctx: a canceled
// context aborts the run between engine steps and returns ctx.Err().
//
// Close releases any long-lived engine state; the backend's owner calls it
// once, and RunBatch must not be called afterwards.
type Backend interface {
	RunBatch(ctx context.Context, spec BatchSpec) (BatchResult, error)
	Close() error
}

// ByName builds a backend from its flag/config name — the single resolver
// behind every -backend flag, so the tools and benches cannot drift apart:
// "sim" is the per-batch engine, "persistent" a NewPersistent with the
// default engine budget, and "sharded-sim"/"sharded-persistent" wrap those
// in a Sharded decorator with DefaultShards shards.
func ByName(name string) (Backend, error) {
	return ByNameShards(name, 1)
}

// ByNameShards is ByName composed with a shard count: shards > 1 wraps the
// named backend in NewSharded (the -shards flag on llmqserve/llmqsql), and
// the "sharded-*" names imply DefaultShards when shards is 1. shards < 1 is
// an error.
func ByNameShards(name string, shards int) (Backend, error) {
	if shards < 1 {
		return nil, fmt.Errorf("backend: shards must be >= 1, got %d", shards)
	}
	base := name
	if inner, ok := strings.CutPrefix(name, "sharded-"); ok {
		base = inner
		if shards == 1 {
			shards = DefaultShards
		}
	}
	var be Backend
	switch base {
	case "sim":
		be = NewSim()
	case "persistent":
		be = NewPersistent(0)
	case "remote":
		// The remote backend exists (NewRemote / cluster.Router) but needs
		// worker addresses this resolver does not carry; both CLIs resolve it
		// through cluster.Resolve, which delegates every other name back here.
		return nil, fmt.Errorf("backend: backend %q needs cluster worker addresses: pass -cluster-workers host:port,... (resolved via cluster.Resolve)", name)
	default:
		return nil, fmt.Errorf("backend: unknown backend %q: want sim, persistent, sharded-sim, sharded-persistent, or remote", name)
	}
	if shards > 1 {
		return NewSharded(be, shards)
	}
	return be, nil
}

// interruptFor adapts a context to the engine's per-step cancellation hook.
// A context that can never be canceled polls as nil, keeping the engine's
// hot loop branch-free in the common case.
func interruptFor(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}
