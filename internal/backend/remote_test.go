// Tests for backend.Remote against httptest-hosted in-process workers: the
// conformance harness entry (remote runs the full suite in backend_test.go),
// retry/accounting conservation, non-retryable rejections, mid-batch
// cancellation, and tenant attribution over the wire.
package backend_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/llmsim"
	"repro/internal/server"
)

// remoteHarness is a Remote plus the in-process worker it speaks to, closed
// together so the conformance suite can treat the pair as one Backend.
type remoteHarness struct {
	*backend.Remote
	srv   *httptest.Server
	inner backend.Backend
}

func (h *remoteHarness) Close() error {
	err := h.Remote.Close()
	h.srv.Close()
	if h.inner != nil {
		if ierr := h.inner.Close(); err == nil {
			err = ierr
		}
	}
	return err
}

// newRemoteConformance boots an in-process worker over a fresh sim backend
// and returns a Remote speaking to it — the conformance suite's "remote"
// entry.
func newRemoteConformance() backend.Backend {
	inner := backend.NewSim()
	wk := server.NewWorker(inner, nil)
	srv := httptest.NewServer(server.NewWithConfig(server.Config{Worker: wk}))
	rem, err := backend.NewRemote(backend.RemoteConfig{Addr: srv.URL, RetryBackoff: time.Millisecond})
	if err != nil {
		panic(err)
	}
	return &remoteHarness{Remote: rem, srv: srv, inner: inner}
}

// stubWorkerBackend is a deterministic local backend for wire-level tests:
// its result is a pure function of the requests, and it counts the batches
// that actually reached it (the conservation witness — a retried attempt
// that never got through must not be served twice).
type stubWorkerBackend struct {
	mu      sync.Mutex
	batches int
}

func (s *stubWorkerBackend) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return backend.BatchResult{}, err
	}
	var prompt int64
	for _, r := range spec.Requests {
		prompt += int64(len(r.Prompt))
	}
	s.mu.Lock()
	s.batches++
	s.mu.Unlock()
	m := llmsim.Metrics{}
	m.JCT = 1.5
	m.Steps = int64(len(spec.Requests))
	m.PromptTokens = prompt
	m.PrefilledTokens = prompt
	return backend.BatchResult{Metrics: m, ModelCalls: len(spec.Requests)}, nil
}

func (s *stubWorkerBackend) Close() error { return nil }

func (s *stubWorkerBackend) served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches
}

// TestRemoteRetryConservation: a worker whose first answer is a transient
// 500 must cost exactly one retry — and the accounting must be conserved:
// the local backend serves the batch once, and the returned result counts
// it once.
func TestRemoteRetryConservation(t *testing.T) {
	inner := &stubWorkerBackend{}
	wk := server.NewWorker(inner, nil)
	workerMux := server.NewWithConfig(server.Config{Worker: wk})
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/batch" && posts.Add(1) == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = w.Write([]byte(`{"error":{"code":"internal","message":"transient fault"}}`))
			return
		}
		workerMux.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rem, err := backend.NewRemote(backend.RemoteConfig{Addr: srv.URL, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	spec := accountingSpec([]int{3, 2}, 40, 8)
	res, err := rem.RunBatch(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunBatch after transient 500: %v", err)
	}
	if res.ModelCalls != len(spec.Requests) {
		t.Errorf("model calls = %d, want %d", res.ModelCalls, len(spec.Requests))
	}
	if res.Metrics.PromptTokens != int64(5*40) {
		t.Errorf("prompt tokens = %d, want %d (one serve, conserved)", res.Metrics.PromptTokens, 5*40)
	}
	if got := posts.Load(); got != 2 {
		t.Errorf("worker saw %d POSTs, want 2 (one failure + one retry)", got)
	}
	if got := inner.served(); got != 1 {
		t.Errorf("local backend served %d batches, want exactly 1", got)
	}
	st := rem.Stats()
	if st.Batches != 1 || st.Retries != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v, want {Batches:1 Retries:1 Errors:0}", st)
	}
}

// TestRemoteDeterministicRejectionNotRetried: a 4xx envelope is final — no
// retries, and the error surfaces the worker's structured code.
func TestRemoteDeterministicRejectionNotRetried(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":{"code":"invalid_request","message":"bad groups"}}`))
	}))
	defer srv.Close()
	rem, err := backend.NewRemote(backend.RemoteConfig{Addr: srv.URL, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	_, err = rem.RunBatch(context.Background(), accountingSpec([]int{2}, 10, 4))
	var re *backend.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *backend.RemoteError", err)
	}
	if re.Code != "invalid_request" || re.Status != http.StatusBadRequest || re.Transient() {
		t.Errorf("rejection = %+v, want final invalid_request/400", re)
	}
	if got := posts.Load(); got != 1 {
		t.Errorf("worker saw %d POSTs, want 1 (4xx is not retried)", got)
	}
	if st := rem.Stats(); st.Errors != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v, want {Errors:1 Retries:0}", st)
	}
}

// blockingWorkerBackend parks every batch until its context dies — the
// worker-side half of the mid-batch cancellation test.
type blockingWorkerBackend struct {
	started chan struct{}
}

func (b *blockingWorkerBackend) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return backend.BatchResult{}, ctx.Err()
}

func (b *blockingWorkerBackend) Close() error { return nil }

// TestRemoteCancellationMidBatch: canceling the caller's context while the
// worker is mid-batch must abort the HTTP request and return the context's
// error promptly — not park until some transport timeout.
func TestRemoteCancellationMidBatch(t *testing.T) {
	inner := &blockingWorkerBackend{started: make(chan struct{}, 1)}
	wk := server.NewWorker(inner, nil)
	srv := httptest.NewServer(server.NewWithConfig(server.Config{Worker: wk}))
	defer srv.Close()
	rem, err := backend.NewRemote(backend.RemoteConfig{Addr: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-inner.started
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := rem.RunBatch(ctx, accountingSpec([]int{2}, 10, 4))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunBatch did not return after cancellation")
	}
}

// TestRemoteClientAttribution: tenant identity attached via
// backend.WithClientInfo rides the wire envelope and lands in the worker's
// per-client accounting — PR 7's identity, now fleet-wide.
func TestRemoteClientAttribution(t *testing.T) {
	inner := &stubWorkerBackend{}
	wk := server.NewWorker(inner, nil)
	srv := httptest.NewServer(server.NewWithConfig(server.Config{Worker: wk}))
	defer srv.Close()
	rem, err := backend.NewRemote(backend.RemoteConfig{Addr: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	ctx := backend.WithClientInfo(context.Background(), backend.ClientInfo{Client: "dashboard-7", Class: "batch"})
	if _, err := rem.RunBatch(ctx, accountingSpec([]int{2}, 10, 4)); err != nil {
		t.Fatal(err)
	}
	// Anonymous traffic accounts under "anon".
	if _, err := rem.RunBatch(context.Background(), accountingSpec([]int{1}, 10, 4)); err != nil {
		t.Fatal(err)
	}
	st := wk.Stats()
	if st.Batches != 2 || st.Rows != 3 {
		t.Fatalf("worker stats = %+v, want 2 batches over 3 rows", st)
	}
	if c := st.Clients["dashboard-7"]; c.Batches != 1 || c.Rows != 2 {
		t.Errorf("dashboard-7 share = %+v, want {Batches:1 Rows:2}", c)
	}
	if c := st.Clients["anon"]; c.Batches != 1 || c.Rows != 1 {
		t.Errorf("anon share = %+v, want {Batches:1 Rows:1}", c)
	}
}

// TestRemoteDrainingWorkerRefuses: a draining worker answers 503, which the
// remote treats as transient — retried, then surfaced as an error (the
// cluster router's cue to fail over to the next ring node).
func TestRemoteDrainingWorkerRefuses(t *testing.T) {
	inner := &stubWorkerBackend{}
	wk := server.NewWorker(inner, nil)
	wk.SetDraining(true)
	srv := httptest.NewServer(server.NewWithConfig(server.Config{Worker: wk}))
	defer srv.Close()
	rem, err := backend.NewRemote(backend.RemoteConfig{Addr: srv.URL, MaxRetries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	_, err = rem.RunBatch(context.Background(), accountingSpec([]int{1}, 10, 4))
	var re *backend.RemoteError
	if !errors.As(err, &re) || !re.Transient() {
		t.Fatalf("err = %v, want transient RemoteError (503)", err)
	}
	if got := inner.served(); got != 0 {
		t.Errorf("draining worker served %d batches, want 0", got)
	}
	if st := rem.Stats(); st.Retries != 1 || st.Errors != 1 {
		t.Errorf("stats = %+v, want {Retries:1 Errors:1}", st)
	}
}
