package backend

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Remote is the network Backend: it ships each BatchSpec to a cluster
// worker's POST /v1/batch endpoint and returns the worker's BatchResult.
// The driver-style seam was designed precisely so this drops in — answers
// are content-keyed above the seam, so a remote batch returns byte-identical
// relations; only the serving cost moves to another process.
//
// Context propagation: the caller's ctx rides the HTTP request, so a
// canceled statement aborts the in-flight request and the worker's engine
// stops between steps (the worker serves against its request context). A
// ctx deadline additionally travels as the Deadline-Ms header so the worker
// bounds its own run even if the connection lingers.
//
// Retries: connect errors and 5xx responses (a draining or overloaded
// worker answers 503) are retried with equal-jitter doubling backoff up to
// MaxRetries; 4xx responses are deterministic rejections and never retried.
// A worker's Retry-After header (a draining 503 carries one) overrides the
// local backoff for that wait. When a shared RetryBudget is configured,
// every retry first withdraws a token; an empty budget fails the batch fast
// with ErrRetryBudgetExhausted instead of amplifying a fleet-wide outage.
// Accounting is conserved across retries by construction — only the single
// successful attempt's BatchResult is returned, and failed attempts
// contribute no metrics (the Retries counter is observability, not
// accounting).
type Remote struct {
	addr string
	url  string
	hc   *http.Client
	cfg  RemoteConfig

	batches      atomic.Int64
	retries      atomic.Int64
	errors       atomic.Int64
	budgetDenied atomic.Int64
	closed       atomic.Bool
}

var _ Backend = (*Remote)(nil)

// DeadlineHeader carries the caller's remaining deadline budget in whole
// milliseconds on a /v1/batch request.
const DeadlineHeader = "X-Llmq-Deadline-Ms"

// RemoteConfig wires a Remote backend to one worker.
type RemoteConfig struct {
	// Addr is the worker's address: "host:port" or a full http(s) URL.
	Addr string
	// Client is the HTTP client to use; nil builds one with no overall
	// timeout (the per-batch ctx bounds each request).
	Client *http.Client
	// MaxRetries bounds retry attempts after the first try on connect
	// errors and 5xx responses (default 2; negative disables retries).
	MaxRetries int
	// RetryBackoff is the first retry's base backoff, doubled per attempt
	// and equal-jittered (default 25ms).
	RetryBackoff time.Duration
	// Budget, when non-nil, is a retry budget shared across every Remote on
	// one router: each batch deposits, each retry withdraws, and an empty
	// budget fails the batch fast with ErrRetryBudgetExhausted.
	Budget *RetryBudget
	// NoJitter disables backoff jitter for tests that pin exact timing.
	NoJitter bool
}

func (c RemoteConfig) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 2
	}
	return c.MaxRetries
}

func (c RemoteConfig) retryBackoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 25 * time.Millisecond
}

// NewRemote builds a Remote speaking to one worker. The address may be a
// bare host:port (http is assumed) or a full URL.
func NewRemote(cfg RemoteConfig) (*Remote, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("backend: remote backend needs a worker address")
	}
	base := cfg.Addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}
	return &Remote{addr: cfg.Addr, url: base + "/v1/batch", hc: hc, cfg: cfg}, nil
}

// Addr reports the worker address this backend speaks to.
func (r *Remote) Addr() string { return r.addr }

// RemoteStats is the remote backend's dispatch accounting.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type RemoteStats struct {
	// Batches counts batches served successfully; Retries the extra
	// attempts (beyond each batch's first) that connect errors or 5xx
	// responses cost; Errors the batches that failed after every retry;
	// BudgetDenied the batches failed fast because the shared retry budget
	// was empty (a subset of Errors).
	Batches      int64
	Retries      int64
	Errors       int64
	BudgetDenied int64
}

// Stats snapshots the dispatch counters.
func (r *Remote) Stats() RemoteStats {
	return RemoteStats{
		Batches:      r.batches.Load(),
		Retries:      r.retries.Load(),
		Errors:       r.errors.Load(),
		BudgetDenied: r.budgetDenied.Load(),
	}
}

// RemoteError is a worker's structured rejection: the /v1 error envelope
// plus the HTTP status it rode on. Status >= 500 (and connect errors, which
// produce no RemoteError) are transient — retryable and grounds for a
// router to mark the worker down; 4xx are deterministic and final.
type RemoteError struct {
	Addr    string
	Status  int
	Code    string
	Message string
	// RetryAfter is the worker's requested wait before the next attempt
	// (from the Retry-After header a draining 503 carries); zero means the
	// worker expressed no preference and the client's own backoff applies.
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("worker %s: %s (%s, http %d)", e.Addr, e.Message, e.Code, e.Status)
}

// Transient reports whether retrying the same batch could succeed.
func (e *RemoteError) Transient() bool { return e.Status >= 500 }

// wireEnvelope mirrors the /v1 error envelope without importing the server
// package (which imports this one).
type wireEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// RunBatch ships the batch to the worker and returns its result. The
// statement's trace gets a "remote" child span carrying the worker address
// and the retry count the batch cost.
func (r *Remote) RunBatch(ctx context.Context, spec BatchSpec) (BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return BatchResult{}, err
	}
	if r.closed.Load() {
		return BatchResult{}, fmt.Errorf("backend: remote backend is closed")
	}
	body, err := json.Marshal(EncodeWireBatch(spec, ClientInfoFrom(ctx)))
	if err != nil {
		return BatchResult{}, fmt.Errorf("backend: encode wire batch: %w", err)
	}
	sp := obs.FromContext(ctx).Child("remote")
	sp.Set("worker", r.addr)
	sp.Set("requests", len(spec.Requests))
	defer sp.End()

	r.cfg.Budget.Deposit()
	var lastErr error
	backoff := r.cfg.retryBackoff()
	for attempt := 0; attempt <= r.cfg.maxRetries(); attempt++ {
		if attempt > 0 {
			if !r.cfg.Budget.Withdraw() {
				r.budgetDenied.Add(1)
				r.errors.Add(1)
				sp.Set("error", ErrRetryBudgetExhausted.Error())
				return BatchResult{}, fmt.Errorf("backend: remote %s: %w (last attempt: %w)",
					r.addr, ErrRetryBudgetExhausted, lastErr)
			}
			r.retries.Add(1)
			sp.Set("retries", attempt)
			wait := backoff
			if !r.cfg.NoJitter {
				// Equal jitter: [backoff/2, backoff) keeps the mean high
				// enough to matter while decorrelating a retry stampede.
				wait = backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
			}
			// A worker that said how long it needs (Retry-After on a
			// draining 503) knows better than our local schedule.
			var re *RemoteError
			if errors.As(lastErr, &re) && re.RetryAfter > 0 {
				wait = re.RetryAfter
			}
			select {
			case <-ctx.Done():
				return BatchResult{}, ctx.Err()
			case <-time.After(wait):
			}
			backoff *= 2
		}
		res, err := r.attempt(ctx, body)
		if err == nil {
			r.batches.Add(1)
			sp.Set("modelCalls", res.ModelCalls)
			return res, nil
		}
		// The caller's own death is never retried — surface ctx.Err() so the
		// seam's cancellation contract (return the context's error) holds.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return BatchResult{}, ctxErr
		}
		var re *RemoteError
		if errors.As(err, &re) && !re.Transient() {
			r.errors.Add(1)
			sp.Set("error", err.Error())
			return BatchResult{}, err
		}
		lastErr = err
	}
	r.errors.Add(1)
	sp.Set("error", lastErr.Error())
	return BatchResult{}, fmt.Errorf("backend: remote %s failed after %d attempts: %w",
		r.addr, r.cfg.maxRetries()+1, lastErr)
}

// attempt performs one POST /v1/batch round trip.
func (r *Remote) attempt(ctx context.Context, body []byte) (BatchResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url, bytes.NewReader(body))
	if err != nil {
		return BatchResult{}, fmt.Errorf("backend: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return BatchResult{}, fmt.Errorf("backend: post %s: %w", r.url, err)
	}
	defer resp.Body.Close()
	const maxBody = 64 << 20
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return BatchResult{}, fmt.Errorf("backend: read %s response: %w", r.url, err)
	}
	if resp.StatusCode != http.StatusOK {
		re := &RemoteError{Addr: r.addr, Status: resp.StatusCode, Code: "internal"}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			// Integer seconds per RFC 9110; fractional seconds are accepted
			// leniently so a fleet can ask for sub-second waits.
			if secs, err := strconv.ParseFloat(ra, 64); err == nil && secs > 0 {
				re.RetryAfter = time.Duration(secs * float64(time.Second))
			}
		}
		var env wireEnvelope
		if jsonErr := json.Unmarshal(data, &env); jsonErr == nil && env.Error.Code != "" {
			re.Code, re.Message = env.Error.Code, env.Error.Message
		} else {
			re.Message = strings.TrimSpace(string(data))
		}
		return BatchResult{}, re
	}
	var wr WireResult
	if err := json.Unmarshal(data, &wr); err != nil {
		return BatchResult{}, fmt.Errorf("backend: decode %s response: %w", r.url, err)
	}
	return BatchResult{Metrics: wr.Metrics, ModelCalls: wr.ModelCalls}, nil
}

// Close makes further RunBatch calls fail and releases idle connections.
// The worker process is not owned by this client and keeps running.
func (r *Remote) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.hc.CloseIdleConnections()
	return nil
}
