package backend

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/llmsim"
	"repro/internal/obs"
)

// DefaultEngineBudget bounds how many long-lived engine replicas a
// Persistent backend retains, across all stages, before evicting the least
// recently used stage's idle replicas.
const DefaultEngineBudget = 16

// DefaultStageReplicas bounds how many replicas one stage's pool may grow
// to. More replicas let concurrent batch windows on a hot stage overlap;
// each replica warms its own KV cache, so the pool only grows under actual
// contention (a sequential workload stays on one cache-hot replica).
const DefaultStageReplicas = 4

// Persistent serves each stage fingerprint on a pool of long-lived engine
// replicas whose KV caches survive between batches: the second batch window
// of a dashboard refresh finds the first window's prompt prefixes already
// cached, so prefix hits span batch windows — and statements — instead of
// stopping at the edge of one engine run.
//
// Concurrency: kvcache.Cache is single-threaded, so a replica serves one
// batch at a time — but the pool holds up to DefaultStageReplicas replicas
// per stage, so concurrent batch windows on the SAME hot stage overlap on
// separate replicas instead of serializing behind one mutex (the caveat the
// pre-pool design carried). RunBatch acquires the most recently released
// idle replica (cache-hot first), grows the pool when none is idle, and
// waits for a release once the pool is at its per-stage cap. A sequential
// workload therefore keeps the old single-engine behavior — one replica,
// one ever-warmer cache — while a Sharded decorator or concurrent runtime
// workers fan batches across the pool.
//
// Memory: the LRU budget counts replicas. Creating a replica past the
// budget first evicts idle replicas from the least recently used stages
// (never a replica mid-run, never the acquiring stage's own); a stage's
// first replica is always created so every batch can make progress, even if
// the fleet is transiently one replica over budget under extreme
// contention. Eviction only drops pool references: a batch mid-run on an
// evicted replica completes on its own reference and the engine is garbage
// once it finishes.
type Persistent struct {
	mu       sync.Mutex
	closed   bool                  // guarded by mu
	budget   int                   // max live replicas across all stages
	perStage int                   // max replicas per stage pool
	replicas int                   // guarded by mu; live replicas across all pools
	pools    map[string]*stagePool // guarded by mu
	lru      *list.List            // guarded by mu; of *stagePool; front = least recently used
}

// stagePool is one stage fingerprint's replica pool. All fields are guarded
// by the owning Persistent's mutex — pool operations are rare and cheap next
// to engine runs, so one lock keeps the acquire/release/evict interplay
// simple and obviously race-free.
type stagePool struct {
	key  string
	elem *list.Element
	idle []*llmsim.Engine // LIFO: top is the most recently released (cache-hot)
	busy int              // replicas currently serving a batch
	// waiters queue acquirers blocked at the per-stage cap; a release hands
	// its replica to the oldest waiter directly (channels are 1-buffered).
	waiters []chan *llmsim.Engine
}

var _ Backend = (*Persistent)(nil)

// NewPersistent returns a persistent backend retaining up to engineBudget
// live replicas (<= 0 uses DefaultEngineBudget) with DefaultStageReplicas
// replicas per stage.
func NewPersistent(engineBudget int) *Persistent {
	return NewPersistentReplicas(engineBudget, 0)
}

// NewPersistentReplicas is NewPersistent with an explicit per-stage replica
// cap (<= 0 uses DefaultStageReplicas, 1 restores strict per-stage
// serialization).
func NewPersistentReplicas(engineBudget, stageReplicas int) *Persistent {
	if engineBudget <= 0 {
		engineBudget = DefaultEngineBudget
	}
	if stageReplicas <= 0 {
		stageReplicas = DefaultStageReplicas
	}
	return &Persistent{
		budget:   engineBudget,
		perStage: stageReplicas,
		pools:    make(map[string]*stagePool),
		lru:      list.New(),
	}
}

// RunBatch serves the batch on one of the stage's replicas: the most
// recently idle one when available, a fresh one while the pool is below its
// cap, otherwise the next replica released by a concurrent batch. ctx is
// honored both while waiting for a replica and between engine steps.
func (p *Persistent) RunBatch(ctx context.Context, spec BatchSpec) (BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return BatchResult{}, err
	}
	acquireStart := time.Now()
	eng, pool, err := p.acquire(ctx, spec)
	if err != nil {
		return BatchResult{}, err
	}
	if sp := obs.FromContext(ctx); sp != nil {
		sp.Set("backend", "persistent")
		sp.Set("replicaWaitMs", float64(time.Since(acquireStart))/float64(time.Millisecond))
	}
	metrics, err := eng.RunInterruptible(spec.Requests, interruptFor(ctx))
	p.release(pool, eng)
	if err != nil {
		return BatchResult{}, err
	}
	return BatchResult{Metrics: metrics, ModelCalls: len(spec.Requests)}, nil
}

// Engines reports the number of live replicas (for tests and metrics).
func (p *Persistent) Engines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replicas
}

// StageReplicas reports the live replica count of one stage's pool.
func (p *Persistent) StageReplicas(stageKey string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pool, ok := p.pools[stageKey]; ok {
		return len(pool.idle) + pool.busy
	}
	return 0
}

// Close drops every pool and fails pending waiters. Batches running at
// Close time finish on their (now unreferenced) replicas; subsequent
// RunBatch calls fail.
func (p *Persistent) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, pool := range p.pools {
		for _, ch := range pool.waiters {
			close(ch) // waiter receives nil and reports the backend closed
		}
		pool.waiters = nil
	}
	p.pools = nil
	p.lru = nil
	p.replicas = 0
	return nil
}

// acquire resolves one replica of the stage's pool, creating the pool and
// growing it under the budget as needed, or parking the caller until a
// concurrent batch releases one.
func (p *Persistent) acquire(ctx context.Context, spec BatchSpec) (*llmsim.Engine, *stagePool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, nil, fmt.Errorf("backend: persistent backend is closed")
	}
	pool, ok := p.pools[spec.StageKey]
	if !ok {
		pool = &stagePool{key: spec.StageKey}
		pool.elem = p.lru.PushBack(pool)
		p.pools[spec.StageKey] = pool
	} else {
		p.lru.MoveToBack(pool.elem) // O(1) touch: most recently used
	}

	// Cache-hot first: the most recently released replica holds the warmest
	// KV cache, so sequential workloads keep hitting one replica.
	if n := len(pool.idle); n > 0 {
		eng := pool.idle[n-1]
		pool.idle[n-1] = nil // drop the array's reference: evicted engines must be collectable
		pool.idle = pool.idle[:n-1]
		pool.busy++
		p.mu.Unlock()
		return eng, pool, nil
	}

	if pool.busy < p.perStage {
		p.evictForBudget(pool)
		if p.replicas < p.budget || pool.busy == 0 {
			// Grow the pool. The busy == 0 clause guarantees progress: a
			// stage's first replica is created even when every budgeted
			// replica is mid-run elsewhere (transient overage, shed as soon
			// as any stage goes idle).
			p.replicas++
			pool.busy++
			p.mu.Unlock()
			return llmsim.New(spec.Engine), pool, nil
		}
	}

	// Pool at its cap (or budget exhausted with running replicas to wait
	// for): park until a release hands us a replica.
	ch := make(chan *llmsim.Engine, 1)
	pool.waiters = append(pool.waiters, ch)
	p.mu.Unlock()

	select {
	case eng, ok := <-ch:
		if !ok || eng == nil {
			return nil, nil, fmt.Errorf("backend: persistent backend closed while waiting for a replica")
		}
		return eng, pool, nil
	case <-ctx.Done():
		p.mu.Lock()
		for i, w := range pool.waiters {
			if w == ch {
				pool.waiters = append(pool.waiters[:i], pool.waiters[i+1:]...)
				p.mu.Unlock()
				return nil, nil, ctx.Err()
			}
		}
		p.mu.Unlock()
		// Already removed from the queue: a release raced our cancellation
		// and handed us a replica (the send happens under the lock, so it is
		// in the buffer by now) — or Close closed the channel. Hand a handed
		// replica straight back; the busy slot it carries transfers with it.
		if eng, ok := <-ch; ok && eng != nil {
			p.release(pool, eng)
		}
		return nil, nil, ctx.Err()
	}
}

// release returns a replica to its pool: straight to the oldest waiter when
// one is parked, otherwise onto the idle stack.
func (p *Persistent) release(pool *stagePool, eng *llmsim.Engine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		// Pools are gone; drop the replica.
		return
	}
	if len(pool.waiters) > 0 {
		ch := pool.waiters[0]
		pool.waiters = pool.waiters[1:]
		ch <- eng // 1-buffered: never blocks; busy count carries over
		return
	}
	pool.busy--
	pool.idle = append(pool.idle, eng)
}

// evictForBudget frees budget for one new replica in pool by dropping idle
// replicas of the least recently used stages (never pool's own — its idle
// stack is empty when this runs — and never a replica mid-run). Pools left
// empty with no waiters are removed entirely. Called with p.mu held.
//
//llmqlint:holds mu
func (p *Persistent) evictForBudget(pool *stagePool) {
	for p.replicas >= p.budget {
		evicted := false
		for e := p.lru.Front(); e != nil; {
			next := e.Next()
			victim := e.Value.(*stagePool)
			if victim != pool && len(victim.idle) > 0 {
				// Drop the coldest replica: the bottom of the idle stack.
				// Shift in place rather than re-slice so the backing array
				// keeps no reference to the evicted engine (the leak the old
				// single-engine LRU's order[1:] had).
				copy(victim.idle, victim.idle[1:])
				victim.idle[len(victim.idle)-1] = nil
				victim.idle = victim.idle[:len(victim.idle)-1]
				p.replicas--
				if len(victim.idle) == 0 && victim.busy == 0 && len(victim.waiters) == 0 {
					p.lru.Remove(victim.elem)
					delete(p.pools, victim.key)
				}
				evicted = true
				break
			}
			e = next
		}
		if !evicted {
			return // everything else is mid-run; caller decides on overage
		}
	}
}
