package backend

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/llmsim"
)

// DefaultEngineBudget bounds how many long-lived engines a Persistent
// backend retains before evicting the least recently used one.
const DefaultEngineBudget = 16

// Persistent serves each stage fingerprint on a long-lived engine whose KV
// cache survives between batches: the second batch window of a dashboard
// refresh finds the first window's prompt prefixes already cached, so
// prefix hits span batch windows — and statements — instead of stopping at
// the edge of one engine run. This closes the cross-statement KV-cache
// persistence gap the per-batch Sim backend cannot express.
//
// Engines are keyed by BatchSpec.StageKey and retained under an LRU
// eviction budget: past the budget the least recently used stage's engine
// (and its cached prefixes) is dropped. kvcache.Cache is not safe for
// concurrent use, so each engine's runs are serialized by a per-engine
// mutex; batches with distinct stage keys run concurrently.
type Persistent struct {
	mu      sync.Mutex
	closed  bool
	budget  int
	engines map[string]*persistentEngine
	order   []string // stage keys, least recently used first
}

type persistentEngine struct {
	mu  sync.Mutex // serializes runs: the KV cache is single-threaded
	eng *llmsim.Engine
}

var _ Backend = (*Persistent)(nil)

// NewPersistent returns a persistent backend retaining up to engineBudget
// live engines (<= 0 uses DefaultEngineBudget).
func NewPersistent(engineBudget int) *Persistent {
	if engineBudget <= 0 {
		engineBudget = DefaultEngineBudget
	}
	return &Persistent{
		budget:  engineBudget,
		engines: make(map[string]*persistentEngine),
	}
}

// RunBatch serves the batch on the stage's long-lived engine, creating it
// on first use and evicting the least recently used engine past the budget.
func (p *Persistent) RunBatch(ctx context.Context, spec BatchSpec) (BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return BatchResult{}, err
	}
	pe, err := p.engineFor(spec)
	if err != nil {
		return BatchResult{}, err
	}
	pe.mu.Lock()
	defer pe.mu.Unlock()
	metrics, err := pe.eng.RunInterruptible(spec.Requests, interruptFor(ctx))
	if err != nil {
		return BatchResult{}, err
	}
	return BatchResult{Metrics: metrics, ModelCalls: len(spec.Requests)}, nil
}

// Engines reports the number of live engines (for tests and metrics).
func (p *Persistent) Engines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.engines)
}

// Close drops every engine. Batches running at Close time finish on their
// (now unreferenced) engines; subsequent RunBatch calls fail.
func (p *Persistent) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.engines = nil
	p.order = nil
	return nil
}

// engineFor resolves the stage's engine under the LRU budget. Eviction only
// removes the map entry: a batch mid-run on an evicted engine holds its own
// reference and completes normally; the engine is garbage once it finishes.
func (p *Persistent) engineFor(spec BatchSpec) (*persistentEngine, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("backend: persistent backend is closed")
	}
	if pe, ok := p.engines[spec.StageKey]; ok {
		p.touch(spec.StageKey)
		return pe, nil
	}
	for len(p.engines) >= p.budget {
		oldest := p.order[0]
		p.order = p.order[1:]
		delete(p.engines, oldest)
	}
	pe := &persistentEngine{eng: llmsim.New(spec.Engine)}
	p.engines[spec.StageKey] = pe
	p.order = append(p.order, spec.StageKey)
	return pe, nil
}

// touch moves key to the most-recently-used end of the eviction order.
func (p *Persistent) touch(key string) {
	for i, k := range p.order {
		if k == key {
			p.order = append(append(p.order[:i:i], p.order[i+1:]...), key)
			return
		}
	}
}
