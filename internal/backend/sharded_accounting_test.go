package backend_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/llmsim"
	"repro/internal/tokenizer"
)

// meteredInner is a synthetic Backend whose per-batch result is a pure
// function of the requests it receives, so the merged result of any split is
// predictable exactly: tokens, steps, and calls must be conserved across the
// fan-out, and JCT must be the max over sub-batches (shards run in
// parallel). It records every sub-batch for shape assertions.
type meteredInner struct {
	mu      sync.Mutex
	batches [][]*llmsim.Request
	jcts    []float64
}

func (m *meteredInner) RunBatch(ctx context.Context, spec backend.BatchSpec) (backend.BatchResult, error) {
	var prompt, decode int64
	var weight float64
	for _, r := range spec.Requests {
		prompt += int64(len(r.Prompt))
		decode += int64(r.OutTokens)
		weight += float64(len(r.Prompt) + r.OutTokens)
	}
	jct := weight / 100 // heavier sub-batch = slower shard
	res := backend.BatchResult{
		ModelCalls: len(spec.Requests),
		Metrics: llmsim.Metrics{
			JCT:             jct,
			Steps:           int64(len(spec.Requests)),
			PromptTokens:    prompt,
			PrefilledTokens: prompt,
			DecodeTokens:    decode,
			MeanLatency:     jct,
			P99Latency:      jct,
		},
	}
	res.Metrics.Cache.PromptTokens = prompt
	res.Metrics.Cache.InsertedBlocks = int64(len(spec.Requests))
	m.mu.Lock()
	m.batches = append(m.batches, spec.Requests)
	m.jcts = append(m.jcts, jct)
	m.mu.Unlock()
	return res, nil
}

func (m *meteredInner) Close() error { return nil }

// accountingSpec builds a batch of groups[i] requests per group, each
// request with the given prompt length and output budget.
func accountingSpec(groups []int, promptLen, outTokens int) backend.BatchSpec {
	spec := backend.BatchSpec{StageKey: "stage"}
	for _, n := range groups {
		spec.Groups = append(spec.Groups, len(spec.Requests))
		for i := 0; i < n; i++ {
			spec.Requests = append(spec.Requests, &llmsim.Request{
				ID:        len(spec.Requests),
				Prompt:    make([]tokenizer.Token, promptLen),
				OutTokens: outTokens,
			})
		}
	}
	return spec
}

// TestShardedMergeConservation is the merge-accounting table: across even,
// skewed, and degenerate group layouts, the merged BatchResult must conserve
// model calls, steps, and every token counter (summed over sub-batches), and
// report JCT as the slowest shard, not the sum.
func TestShardedMergeConservation(t *testing.T) {
	cases := []struct {
		name   string
		groups []int // requests per group
		shards int
		// wantSplit is the fan-out shape: minimum sub-batches expected
		// (0 means passthrough: exactly one inner batch, identical spec).
		wantSplit int
	}{
		{name: "even split", groups: []int{2, 2, 2, 2}, shards: 4, wantSplit: 2},
		{name: "skewed weights", groups: []int{8, 1, 1, 1}, shards: 4, wantSplit: 2},
		{name: "single-group shards", groups: []int{1, 1, 1, 1}, shards: 4, wantSplit: 2},
		{name: "more shards than groups", groups: []int{3, 3}, shards: 8, wantSplit: 2},
		{name: "single group passes through", groups: []int{6}, shards: 4, wantSplit: 0},
		{name: "one shard passes through", groups: []int{2, 2}, shards: 1, wantSplit: 0},
		{name: "single request passes through", groups: []int{1}, shards: 4, wantSplit: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inner := &meteredInner{}
			sh, err := backend.NewSharded(inner, tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			defer sh.Close()

			spec := accountingSpec(tc.groups, 50, 10)
			n := len(spec.Requests)
			merged, err := sh.RunBatch(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}

			if tc.wantSplit == 0 {
				if len(inner.batches) != 1 {
					t.Fatalf("passthrough ran %d inner batches, want 1", len(inner.batches))
				}
				if len(inner.batches[0]) != n {
					t.Fatalf("passthrough forwarded %d requests, want %d", len(inner.batches[0]), n)
				}
			} else if len(inner.batches) < tc.wantSplit || len(inner.batches) > tc.shards {
				t.Fatalf("split into %d sub-batches, want %d..%d", len(inner.batches), tc.wantSplit, tc.shards)
			}

			// No shard is empty and no request is lost or duplicated.
			seen := map[int]bool{}
			for _, b := range inner.batches {
				if len(b) == 0 {
					t.Fatal("inner backend received an empty sub-batch")
				}
				for _, r := range b {
					if seen[r.ID] {
						t.Fatalf("request %d served by two shards", r.ID)
					}
					seen[r.ID] = true
				}
			}
			if len(seen) != n {
				t.Fatalf("shards served %d distinct requests, want %d", len(seen), n)
			}

			// Conservation: counters sum over the whole batch regardless of
			// the split.
			wantTok := int64(n * 50)
			if merged.ModelCalls != n {
				t.Errorf("ModelCalls = %d, want %d", merged.ModelCalls, n)
			}
			if merged.Metrics.Steps != int64(n) {
				t.Errorf("Steps = %d, want %d", merged.Metrics.Steps, n)
			}
			if merged.Metrics.PromptTokens != wantTok {
				t.Errorf("PromptTokens = %d, want %d", merged.Metrics.PromptTokens, wantTok)
			}
			if merged.Metrics.PrefilledTokens != wantTok {
				t.Errorf("PrefilledTokens = %d, want %d", merged.Metrics.PrefilledTokens, wantTok)
			}
			if merged.Metrics.DecodeTokens != int64(n*10) {
				t.Errorf("DecodeTokens = %d, want %d", merged.Metrics.DecodeTokens, int64(n*10))
			}
			if merged.Metrics.Cache.PromptTokens != wantTok {
				t.Errorf("Cache.PromptTokens = %d, want %d", merged.Metrics.Cache.PromptTokens, wantTok)
			}
			if merged.Metrics.Cache.InsertedBlocks != int64(n) {
				t.Errorf("Cache.InsertedBlocks = %d, want %d", merged.Metrics.Cache.InsertedBlocks, int64(n))
			}

			// Parallelism: merged JCT is the slowest shard, and the tail
			// percentile is the worst shard's.
			var maxJCT float64
			for _, j := range inner.jcts {
				if j > maxJCT {
					maxJCT = j
				}
			}
			if merged.Metrics.JCT != maxJCT {
				t.Errorf("JCT = %v, want max over shards %v", merged.Metrics.JCT, maxJCT)
			}
			if merged.Metrics.P99Latency != maxJCT {
				t.Errorf("P99Latency = %v, want worst shard %v", merged.Metrics.P99Latency, maxJCT)
			}

			// Mean latency is request-weighted across shards.
			if tc.wantSplit > 0 {
				var weighted float64
				for i, b := range inner.batches {
					weighted += inner.jcts[i] * float64(len(b))
				}
				want := weighted / float64(n)
				if diff := merged.Metrics.MeanLatency - want; diff > 1e-9 || diff < -1e-9 {
					t.Errorf("MeanLatency = %v, want request-weighted %v", merged.Metrics.MeanLatency, want)
				}
			}

			// ShardStats move only on an actual split, and then agree with
			// the sub-batch count.
			st := sh.Stats()
			if tc.wantSplit == 0 {
				if st.ShardedBatches != 0 || st.ShardRuns != 0 {
					t.Errorf("passthrough moved ShardStats: %+v", st)
				}
			} else {
				if st.ShardedBatches != 1 {
					t.Errorf("ShardedBatches = %d, want 1", st.ShardedBatches)
				}
				if st.ShardRuns != int64(len(inner.batches)) {
					t.Errorf("ShardRuns = %d, inner saw %d sub-batches", st.ShardRuns, len(inner.batches))
				}
			}
		})
	}
}
