// Tests for backend.Remote's hardening knobs: the shared retry budget,
// Retry-After honoring, and X-Llmq-Deadline-Ms edge cases.
package backend_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
)

// flakyWorker answers failures[i] for request i (0 = 200 via the real
// worker path is not needed here; it answers a bare status), counting hits.
type flakyWorker struct {
	statuses   []int // per-request status; requests beyond the list get 200
	retryAfter string
	hits       atomic.Int64
}

func (f *flakyWorker) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(f.hits.Add(1)) - 1
		status := http.StatusOK
		if n < len(f.statuses) {
			status = f.statuses[n]
		}
		if status != http.StatusOK {
			if f.retryAfter != "" {
				w.Header().Set("Retry-After", f.retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_, _ = w.Write([]byte(`{"error":{"code":"unavailable","message":"flaky"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"metrics":{},"modelCalls":1}`))
	})
}

// TestRemoteRetryBudgetExhausted: with the shared budget empty, a retryable
// failure fails fast with the distinct budget error instead of retrying,
// and the denial is visible in RemoteStats.
func TestRemoteRetryBudgetExhausted(t *testing.T) {
	fw := &flakyWorker{statuses: []int{503, 503, 503, 503, 503, 503}}
	srv := httptest.NewServer(fw.handler())
	defer srv.Close()

	budget := backend.NewRetryBudget(0.001, 1) // one token, near-zero refill
	rem, err := backend.NewRemote(backend.RemoteConfig{
		Addr:         srv.URL,
		MaxRetries:   5,
		RetryBackoff: time.Millisecond,
		Budget:       budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	_, err = rem.RunBatch(context.Background(), accountingSpec([]int{1}, 10, 4))
	if !errors.Is(err, backend.ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	// One token bought one retry; the second withdrawal was denied. The
	// worker therefore saw exactly 2 requests, not 6.
	if got := fw.hits.Load(); got != 2 {
		t.Errorf("worker saw %d requests, want 2 (first attempt + one budgeted retry)", got)
	}
	st := rem.Stats()
	if st.BudgetDenied != 1 || st.Errors != 1 {
		t.Errorf("stats = %+v, want BudgetDenied 1, Errors 1", st)
	}
	if budget.Denied() != 1 {
		t.Errorf("budget denied = %d, want 1", budget.Denied())
	}
}

// TestRemoteHonorsRetryAfter: a worker's Retry-After wins over the client's
// own (much shorter) backoff — the wait between attempts is the server's.
func TestRemoteHonorsRetryAfter(t *testing.T) {
	fw := &flakyWorker{statuses: []int{503, 503}, retryAfter: "0.1"}
	srv := httptest.NewServer(fw.handler())
	defer srv.Close()

	rem, err := backend.NewRemote(backend.RemoteConfig{
		Addr:         srv.URL,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		NoJitter:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	start := time.Now()
	if _, err := rem.RunBatch(context.Background(), accountingSpec([]int{1}, 10, 4)); err != nil {
		t.Fatal(err)
	}
	// Two 503s each asked for 100ms; the local 1ms backoff alone would
	// finish in single-digit milliseconds.
	if el := time.Since(start); el < 180*time.Millisecond {
		t.Errorf("retries took %v, want >= 180ms (two 100ms Retry-After waits honored)", el)
	}
	if got := fw.hits.Load(); got != 3 {
		t.Errorf("worker saw %d requests, want 3", got)
	}
}

// TestRemoteExpiredDeadline: a statement whose deadline already passed
// never reaches the wire.
func TestRemoteExpiredDeadline(t *testing.T) {
	fw := &flakyWorker{}
	srv := httptest.NewServer(fw.handler())
	defer srv.Close()

	rem, err := backend.NewRemote(backend.RemoteConfig{Addr: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = rem.RunBatch(ctx, accountingSpec([]int{1}, 10, 4))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := fw.hits.Load(); got != 0 {
		t.Errorf("worker saw %d requests, want 0 (expired deadline never dispatches)", got)
	}
}

// TestRemoteDeadlineShorterThanBackoff: when the remaining deadline is
// smaller than the next retry's wait, the retry sleep is cut short by the
// context — the remote must not retry past the deadline.
func TestRemoteDeadlineShorterThanBackoff(t *testing.T) {
	fw := &flakyWorker{statuses: []int{503, 503, 503, 503}}
	srv := httptest.NewServer(fw.handler())
	defer srv.Close()

	rem, err := backend.NewRemote(backend.RemoteConfig{
		Addr:         srv.URL,
		MaxRetries:   3,
		RetryBackoff: time.Second, // far beyond the deadline
		NoJitter:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = rem.RunBatch(ctx, accountingSpec([]int{1}, 10, 4))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("deadline-bounded run took %v: the retry slept past the deadline", el)
	}
	if got := fw.hits.Load(); got != 1 {
		t.Errorf("worker saw %d requests, want 1 (no retry fits inside the deadline)", got)
	}
}

// TestRetryBudgetRefills: first attempts deposit; enough successful traffic
// re-arms a drained budget.
func TestRetryBudgetRefills(t *testing.T) {
	b := backend.NewRetryBudget(0.5, 2)
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("a full budget denied a withdrawal")
	}
	if b.Withdraw() {
		t.Fatal("an empty budget allowed a withdrawal")
	}
	b.Deposit()
	b.Deposit() // 2 deposits x 0.5 = 1 token
	if !b.Withdraw() {
		t.Fatal("refilled budget denied a withdrawal")
	}
	if b.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", b.Denied())
	}
}
