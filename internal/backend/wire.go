package backend

import (
	"context"
	"fmt"

	"repro/internal/llmsim"
	"repro/internal/tokenizer"
)

// This file is the /v1/batch wire contract: the JSON forms of BatchSpec and
// BatchResult that backend.Remote sends to a cluster worker and the worker's
// handler decodes back. Token IDs travel as-is — the tokenizer interns
// deterministically, and the oracle answers on the ROUTER side (answers are
// content-keyed above the seam), so a worker only ever accounts serving
// cost; it never needs to detokenize. Request result fields
// (Matched/StartTime/EndTime) are engine-internal and deliberately excluded:
// nothing above the seam consumes them, so they do not round-trip.

// WireRequest is one tokenized request on the wire.
type WireRequest struct {
	ID        int               `json:"id"`
	Prompt    []tokenizer.Token `json:"prompt"`
	OutTokens int               `json:"outTokens"`
}

// WireBatch is the POST /v1/batch request body: a JSON-encoded BatchSpec
// plus the originating tenant's identity, so the worker's access log and
// per-client accounting attribute remote batches to the client that caused
// them rather than to the router process.
type WireBatch struct {
	StageKey string `json:"stageKey"`
	// Client / Class identify the originating tenant ("" means anonymous /
	// interactive). A batch coalesced from several tenants' statements
	// travels as client "shared".
	Client   string        `json:"client,omitempty"`
	Class    string        `json:"class,omitempty"`
	Requests []WireRequest `json:"requests"`
	Groups   []int         `json:"groups,omitempty"`
	// Engine is the llmsim.Config verbatim (field names are the wire
	// contract); its Trace writer is process-local and always travels null.
	Engine llmsim.Config `json:"engine"`
}

// WireResult is the POST /v1/batch success body: a BatchResult verbatim.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type WireResult struct {
	Metrics    llmsim.Metrics `json:"metrics"`
	ModelCalls int            `json:"modelCalls"`
}

// EncodeWireBatch renders spec for the wire under the given tenant
// identity, stripping the process-local Trace writer from the engine config.
func EncodeWireBatch(spec BatchSpec, ci ClientInfo) WireBatch {
	reqs := make([]WireRequest, len(spec.Requests))
	for i, r := range spec.Requests {
		reqs[i] = WireRequest{ID: r.ID, Prompt: r.Prompt, OutTokens: r.OutTokens}
	}
	eng := spec.Engine
	eng.Trace = nil
	return WireBatch{
		StageKey: spec.StageKey,
		Client:   ci.Client,
		Class:    ci.Class,
		Requests: reqs,
		Groups:   spec.Groups,
		Engine:   eng,
	}
}

// Spec materializes the wire batch back into a BatchSpec, validating the
// group annotation (the same check a sharding backend applies before
// cutting at group boundaries).
func (wb WireBatch) Spec() (BatchSpec, error) {
	if len(wb.Requests) == 0 {
		return BatchSpec{}, fmt.Errorf("backend: wire batch has no requests")
	}
	if err := validGroups(wb.Groups, len(wb.Requests)); err != nil {
		return BatchSpec{}, err
	}
	reqs := make([]*llmsim.Request, len(wb.Requests))
	for i, r := range wb.Requests {
		reqs[i] = &llmsim.Request{ID: r.ID, Prompt: r.Prompt, OutTokens: r.OutTokens}
	}
	return BatchSpec{
		StageKey: wb.StageKey,
		Requests: reqs,
		Groups:   wb.Groups,
		Engine:   wb.Engine,
	}, nil
}

// ClientInfo is the tenant identity a serving layer may attach to the
// context it hands a Backend, so a network backend can attribute the batch
// on the remote side. The zero value means anonymous interactive traffic.
type ClientInfo struct {
	Client string
	Class  string
}

type clientInfoKey struct{}

// WithClientInfo returns ctx carrying the tenant identity for downstream
// backends. The runtime attaches it wherever it attaches its own statement
// accounting, so remote batches are attributed fleet-wide.
func WithClientInfo(ctx context.Context, ci ClientInfo) context.Context {
	return context.WithValue(ctx, clientInfoKey{}, ci)
}

// ClientInfoFrom recovers the tenant identity; the zero ClientInfo when the
// batch runs outside an identity-aware serving layer.
func ClientInfoFrom(ctx context.Context) ClientInfo {
	ci, _ := ctx.Value(clientInfoKey{}).(ClientInfo)
	return ci
}
