// Package table implements the relational substrate for LLM queries: an
// in-memory column-named row store, functional dependencies over its schema,
// and the table statistics (cardinality, value-length moments) that the GGR
// reordering algorithm consumes.
package table

import (
	"fmt"
	"sort"
	"strings"
)

// LenFunc measures the cost length of a cell value. The paper's prefix hit
// count squares these lengths (Eq. 2); the unit is pluggable so the same
// algorithms run over character lengths (the paper's abstract examples) and
// token counts (what the KV cache actually stores).
type LenFunc func(string) int

// CharLen measures values in bytes.
func CharLen(s string) int { return len(s) }

// UnitLen assigns every value length 1, matching the simplified case studies
// in Sec. 3.2 of the paper where all values have length one.
func UnitLen(string) int { return 1 }

// Table is an in-memory relation: an ordered list of column names and a
// row-major cell matrix. All cells are strings, mirroring how values are
// ultimately serialized into prompts.
type Table struct {
	cols   []string
	colIdx map[string]int
	rows   [][]string
	fds    *FDSet
	hidden map[string][]string // side-band per-row data (labels etc.), not part of the relation
}

// New creates an empty table with the given column names.
// It panics if a column name is empty or duplicated: schemas are
// programmer-provided and such a schema is a bug, not an input error.
func New(cols ...string) *Table {
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		if c == "" {
			panic("table: empty column name")
		}
		if _, dup := idx[c]; dup {
			panic(fmt.Sprintf("table: duplicate column %q", c))
		}
		idx[c] = i
	}
	return &Table{
		cols:   append([]string(nil), cols...),
		colIdx: idx,
		fds:    NewFDSet(),
		hidden: make(map[string][]string),
	}
}

// Columns returns the column names in schema order. The slice must not be
// modified.
func (t *Table) Columns() []string { return t.cols }

// NumCols reports the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return len(t.rows) }

// ColIndex returns the position of the named column and whether it exists.
func (t *Table) ColIndex(name string) (int, bool) {
	i, ok := t.colIdx[name]
	return i, ok
}

// AppendRow adds a row. The number of cells must equal the number of
// columns.
func (t *Table) AppendRow(cells ...string) error {
	if len(cells) != len(t.cols) {
		return fmt.Errorf("table: row has %d cells, schema has %d columns", len(cells), len(t.cols))
	}
	t.rows = append(t.rows, append([]string(nil), cells...))
	return nil
}

// MustAppendRow is AppendRow for construction sites where a mismatch is a
// programming error.
func (t *Table) MustAppendRow(cells ...string) {
	if err := t.AppendRow(cells...); err != nil {
		panic(err)
	}
}

// Cell returns the value at (row, col index).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// CellByName returns the value of the named column in the given row and
// whether the column exists.
func (t *Table) CellByName(row int, col string) (string, bool) {
	i, ok := t.colIdx[col]
	if !ok {
		return "", false
	}
	return t.rows[row][i], true
}

// Row returns the cells of a row in schema order. The slice must not be
// modified.
func (t *Table) Row(i int) []string { return t.rows[i] }

// SetFDs attaches the functional dependencies of this relation. Dependencies
// referencing unknown columns are rejected.
func (t *Table) SetFDs(fds *FDSet) error {
	for _, col := range fds.Fields() {
		if _, ok := t.colIdx[col]; !ok {
			return fmt.Errorf("table: FD references unknown column %q", col)
		}
	}
	t.fds = fds
	return nil
}

// FDs returns the functional dependency set (never nil).
func (t *Table) FDs() *FDSet { return t.fds }

// SetHidden attaches a side-band column (for example ground-truth labels
// used by accuracy experiments). Hidden columns travel with the table but
// are not part of the relation: they are never serialized into prompts and
// never considered by the reordering algorithms.
func (t *Table) SetHidden(name string, values []string) error {
	if len(values) != len(t.rows) {
		return fmt.Errorf("table: hidden column %q has %d values, table has %d rows", name, len(values), len(t.rows))
	}
	t.hidden[name] = append([]string(nil), values...)
	return nil
}

// Hidden returns a side-band column and whether it exists.
func (t *Table) Hidden(name string) ([]string, bool) {
	v, ok := t.hidden[name]
	return v, ok
}

// HiddenValue returns one cell of a side-band column, or "" if absent.
func (t *Table) HiddenValue(name string, row int) string {
	v, ok := t.hidden[name]
	if !ok || row < 0 || row >= len(v) {
		return ""
	}
	return v[row]
}

// Select returns a new table with only the named columns, preserving row
// order, hidden columns, and the FDs restricted to the kept columns.
func (t *Table) Select(cols ...string) (*Table, error) {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		j, ok := t.colIdx[c]
		if !ok {
			return nil, fmt.Errorf("table: select of unknown column %q", c)
		}
		idxs[i] = j
	}
	out := New(cols...)
	for _, r := range t.rows {
		cells := make([]string, len(idxs))
		for i, j := range idxs {
			cells[i] = r[j]
		}
		out.rows = append(out.rows, cells)
	}
	out.fds = t.fds.Restrict(cols)
	for name, vals := range t.hidden {
		out.hidden[name] = vals
	}
	return out, nil
}

// Head returns a new table containing the first n rows (or all rows if the
// table is shorter). Hidden columns are truncated to match.
func (t *Table) Head(n int) *Table {
	if n > len(t.rows) {
		n = len(t.rows)
	}
	out := New(t.cols...)
	out.fds = t.fds
	for i := 0; i < n; i++ {
		out.rows = append(out.rows, t.rows[i])
	}
	for name, vals := range t.hidden {
		out.hidden[name] = vals[:n]
	}
	return out
}

// FilterRows returns a new table with only the rows at the given indices,
// in the given order. Hidden columns follow.
func (t *Table) FilterRows(idx []int) *Table {
	out := New(t.cols...)
	out.fds = t.fds
	for _, i := range idx {
		out.rows = append(out.rows, t.rows[i])
	}
	for name, vals := range t.hidden {
		kept := make([]string, len(idx))
		for k, i := range idx {
			kept[k] = vals[i]
		}
		out.hidden[name] = kept
	}
	return out
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	out := New(t.cols...)
	out.fds = t.fds.Clone()
	out.rows = make([][]string, len(t.rows))
	for i, r := range t.rows {
		out.rows[i] = append([]string(nil), r...)
	}
	for name, vals := range t.hidden {
		out.hidden[name] = append([]string(nil), vals...)
	}
	return out
}

// SortRowsLex sorts rows lexicographically by the given column order. It is
// the statistics fallback used by GGR once recursion stops: identical values
// in the leading columns become adjacent, maximizing prefix reuse under a
// fixed field order. Sorting is stable so earlier orderings are preserved
// among ties.
func (t *Table) SortRowsLex(colOrder []string) error {
	idxs := make([]int, len(colOrder))
	for i, c := range colOrder {
		j, ok := t.colIdx[c]
		if !ok {
			return fmt.Errorf("table: sort by unknown column %q", c)
		}
		idxs[i] = j
	}
	perm := make([]int, len(t.rows))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ra, rb := t.rows[perm[a]], t.rows[perm[b]]
		for _, j := range idxs {
			if ra[j] != rb[j] {
				return ra[j] < rb[j]
			}
		}
		return false
	})
	t.applyRowPerm(perm)
	return nil
}

// applyRowPerm reorders rows (and hidden columns) by perm, where perm[i] is
// the source index of destination row i.
func (t *Table) applyRowPerm(perm []int) {
	rows := make([][]string, len(perm))
	for i, src := range perm {
		rows[i] = t.rows[src]
	}
	t.rows = rows
	for name, vals := range t.hidden {
		nv := make([]string, len(perm))
		for i, src := range perm {
			nv[i] = vals[src]
		}
		t.hidden[name] = nv
	}
}

// DistinctValues returns the distinct values of a column together with the
// row indices holding each value, in first-appearance order.
func (t *Table) DistinctValues(col int) ([]string, map[string][]int) {
	groups := make(map[string][]int)
	var order []string
	for i, r := range t.rows {
		v := r[col]
		if _, seen := groups[v]; !seen {
			order = append(order, v)
		}
		groups[v] = append(groups[v], i)
	}
	return order, groups
}

// String renders a small preview for debugging.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table(%d rows × %d cols: %s)", len(t.rows), len(t.cols), strings.Join(t.cols, ", "))
	return sb.String()
}
