package table

import (
	"fmt"
	"sort"
	"strings"
)

// ColStats summarizes one column for the solver: cardinality and value-length
// moments (Sec. 4.2.2). Lengths are measured with a caller-supplied LenFunc
// so the same statistics drive both character- and token-based objectives.
type ColStats struct {
	Name     string
	Rows     int
	Distinct int
	// AvgLen is the mean value length; AvgSqLen the mean of squared lengths
	// (the PHC contribution unit); MaxLen the maximum.
	AvgLen   float64
	AvgSqLen float64
	MaxLen   int
	// TopGroup is the size of the largest group of identical values.
	TopGroup int
}

// Stats holds per-column statistics for a table.
type Stats struct {
	Rows   int
	Cols   []ColStats
	byName map[string]int
}

// ComputeStats scans the table once per column. For the table sizes of the
// benchmark suite (≤30k rows × ≤57 columns) a full scan is cheap; real
// systems would read these from catalog statistics.
func ComputeStats(t *Table, lenOf LenFunc) *Stats {
	s := &Stats{Rows: t.NumRows(), byName: make(map[string]int, t.NumCols())}
	for ci, name := range t.Columns() {
		cs := ColStats{Name: name, Rows: t.NumRows()}
		counts := make(map[string]int)
		var sumLen, sumSq float64
		for ri := 0; ri < t.NumRows(); ri++ {
			v := t.Cell(ri, ci)
			counts[v]++
			l := lenOf(v)
			sumLen += float64(l)
			sumSq += float64(l) * float64(l)
			if l > cs.MaxLen {
				cs.MaxLen = l
			}
		}
		cs.Distinct = len(counts)
		for _, c := range counts {
			if c > cs.TopGroup {
				cs.TopGroup = c
			}
		}
		if t.NumRows() > 0 {
			cs.AvgLen = sumLen / float64(t.NumRows())
			cs.AvgSqLen = sumSq / float64(t.NumRows())
		}
		s.byName[name] = len(s.Cols)
		s.Cols = append(s.Cols, cs)
	}
	return s
}

// Col returns the statistics for the named column and whether they exist.
func (s *Stats) Col(name string) (ColStats, bool) {
	i, ok := s.byName[name]
	if !ok {
		return ColStats{}, false
	}
	return s.Cols[i], true
}

// Score estimates a column's expected PHC contribution under a fixed field
// ordering: the squared average length (the paper's HITCOUNT(C) = avg(len(c))²,
// Sec. 4.2.2) weighted by the repetition probability 1 − distinct/rows. A
// column of unique values scores zero regardless of length; a long constant
// column scores highest.
func (s *Stats) Score(name string) float64 {
	cs, ok := s.Col(name)
	if !ok || cs.Rows == 0 {
		return 0
	}
	repeat := 1 - float64(cs.Distinct)/float64(cs.Rows)
	return cs.AvgLen * cs.AvgLen * repeat
}

// OrderByScore returns the given columns sorted by descending Score, ties
// broken by name for determinism. This is the statistics-driven fixed field
// ordering GGR falls back to when recursion stops early.
func (s *Stats) OrderByScore(cols []string) []string {
	out := append([]string(nil), cols...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := s.Score(out[i]), s.Score(out[j])
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// String renders the statistics as an aligned debug listing.
func (s *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rows=%d\n", s.Rows)
	for _, c := range s.Cols {
		fmt.Fprintf(&sb, "%-24s distinct=%-7d avgLen=%-8.1f avgSqLen=%-10.1f maxLen=%-6d topGroup=%d\n",
			c.Name, c.Distinct, c.AvgLen, c.AvgSqLen, c.MaxLen, c.TopGroup)
	}
	return sb.String()
}
