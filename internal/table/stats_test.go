package table

import (
	"testing"
)

func statsTable() *Table {
	t := New("uniq", "constant", "grouped")
	t.MustAppendRow("a1", "same-long-value", "g1")
	t.MustAppendRow("b22", "same-long-value", "g1")
	t.MustAppendRow("c333", "same-long-value", "g2")
	t.MustAppendRow("d4444", "same-long-value", "g2")
	return t
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(statsTable(), CharLen)
	if s.Rows != 4 {
		t.Fatalf("rows = %d", s.Rows)
	}
	u, _ := s.Col("uniq")
	if u.Distinct != 4 || u.TopGroup != 1 {
		t.Errorf("uniq stats = %+v", u)
	}
	if u.MaxLen != 5 {
		t.Errorf("uniq MaxLen = %d", u.MaxLen)
	}
	c, _ := s.Col("constant")
	if c.Distinct != 1 || c.TopGroup != 4 {
		t.Errorf("constant stats = %+v", c)
	}
	if c.AvgLen != 15 {
		t.Errorf("constant AvgLen = %v", c.AvgLen)
	}
	if c.AvgSqLen != 225 {
		t.Errorf("constant AvgSqLen = %v", c.AvgSqLen)
	}
	g, _ := s.Col("grouped")
	if g.Distinct != 2 || g.TopGroup != 2 {
		t.Errorf("grouped stats = %+v", g)
	}
	if _, ok := s.Col("missing"); ok {
		t.Error("missing column reported")
	}
}

func TestScoreOrdering(t *testing.T) {
	s := ComputeStats(statsTable(), CharLen)
	// Unique column scores zero; constant long column scores highest.
	if s.Score("uniq") != 0 {
		t.Errorf("unique column score = %v, want 0", s.Score("uniq"))
	}
	if s.Score("constant") <= s.Score("grouped") {
		t.Errorf("constant (%v) should outrank grouped (%v)",
			s.Score("constant"), s.Score("grouped"))
	}
	order := s.OrderByScore([]string{"uniq", "grouped", "constant"})
	if order[0] != "constant" || order[2] != "uniq" {
		t.Errorf("OrderByScore = %v", order)
	}
}

func TestScoreUnknownColumn(t *testing.T) {
	s := ComputeStats(statsTable(), CharLen)
	if s.Score("nope") != 0 {
		t.Error("unknown column should score 0")
	}
}

func TestStatsEmptyTable(t *testing.T) {
	s := ComputeStats(New("a", "b"), CharLen)
	if s.Rows != 0 {
		t.Fatalf("rows = %d", s.Rows)
	}
	a, ok := s.Col("a")
	if !ok || a.AvgLen != 0 || a.Distinct != 0 {
		t.Errorf("empty column stats = %+v", a)
	}
}

func TestStatsWithUnitLen(t *testing.T) {
	s := ComputeStats(statsTable(), UnitLen)
	c, _ := s.Col("constant")
	if c.AvgLen != 1 || c.AvgSqLen != 1 {
		t.Errorf("unit-length stats = %+v", c)
	}
}

func TestOrderByScoreDeterministicTies(t *testing.T) {
	tb := New("b", "a") // both unique -> both score 0 -> tie broken by name
	tb.MustAppendRow("1", "2")
	tb.MustAppendRow("3", "4")
	s := ComputeStats(tb, CharLen)
	order := s.OrderByScore([]string{"b", "a"})
	if order[0] != "a" || order[1] != "b" {
		t.Errorf("tie break not by name: %v", order)
	}
}

func TestStatsString(t *testing.T) {
	s := ComputeStats(statsTable(), CharLen)
	if s.String() == "" {
		t.Error("empty String()")
	}
}
