package table

import (
	"fmt"
	"sort"
)

// FDSet models the bidirectional functional dependencies (X ↔ Y, Sec. 4.2.1)
// the paper exploits: if two fields functionally determine each other, fixing
// one fixes the other, so the GGR solver places the whole group of mutually
// dependent fields together in the prefix and removes them from further
// consideration.
//
// Because the paper's dependencies are bidirectional, an FDSet is a partition
// of a subset of the columns into equivalence classes ("groups").
type FDSet struct {
	group map[string]int // column -> group id
	cols  [][]string     // group id -> member columns, in insertion order
}

// NewFDSet returns an empty dependency set.
func NewFDSet() *FDSet {
	return &FDSet{group: make(map[string]int)}
}

// AddGroup declares that all the given columns mutually determine each
// other. Columns already in a group are merged with the new one (transitive
// closure). Duplicates within the call are ignored.
func (f *FDSet) AddGroup(cols ...string) {
	if len(cols) == 0 {
		return
	}
	// Collect pre-existing groups to merge.
	target := -1
	for _, c := range cols {
		if g, ok := f.group[c]; ok {
			if target == -1 {
				target = g
			} else if g != target {
				f.merge(target, g)
			}
		}
	}
	if target == -1 {
		target = len(f.cols)
		f.cols = append(f.cols, nil)
	}
	for _, c := range cols {
		if g, ok := f.group[c]; ok && g == target {
			continue
		}
		f.group[c] = target
		f.cols[target] = append(f.cols[target], c)
	}
}

// merge folds group b into group a.
func (f *FDSet) merge(a, b int) {
	for _, c := range f.cols[b] {
		f.group[c] = a
		f.cols[a] = append(f.cols[a], c)
	}
	f.cols[b] = nil
}

// Inferred returns the columns functionally determined by col, excluding col
// itself (Algorithm 1 line 5). Returns nil when col is in no group.
func (f *FDSet) Inferred(col string) []string {
	g, ok := f.group[col]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(f.cols[g])-1)
	for _, c := range f.cols[g] {
		if c != col {
			out = append(out, c)
		}
	}
	return out
}

// Group returns the whole equivalence class of col (including col), or
// {col} when it is in no group.
func (f *FDSet) Group(col string) []string {
	g, ok := f.group[col]
	if !ok {
		return []string{col}
	}
	return append([]string(nil), f.cols[g]...)
}

// Fields returns every column mentioned by the dependency set, sorted for
// deterministic iteration.
func (f *FDSet) Fields() []string {
	out := make([]string, 0, len(f.group))
	for c := range f.group {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Groups returns the non-empty equivalence classes, each sorted, with the
// classes ordered by their smallest member for determinism.
func (f *FDSet) Groups() [][]string {
	var out [][]string
	for _, g := range f.cols {
		if len(g) < 2 {
			continue
		}
		gg := append([]string(nil), g...)
		sort.Strings(gg)
		out = append(out, gg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Restrict returns a new FDSet keeping only dependencies among the given
// columns. Groups that shrink below two members disappear.
func (f *FDSet) Restrict(cols []string) *FDSet {
	keep := make(map[string]bool, len(cols))
	for _, c := range cols {
		keep[c] = true
	}
	out := NewFDSet()
	for _, g := range f.cols {
		var kept []string
		for _, c := range g {
			if keep[c] {
				kept = append(kept, c)
			}
		}
		if len(kept) >= 2 {
			out.AddGroup(kept...)
		}
	}
	return out
}

// Clone deep-copies the set.
func (f *FDSet) Clone() *FDSet {
	out := NewFDSet()
	for _, g := range f.cols {
		if len(g) > 0 {
			out.AddGroup(g...)
		}
	}
	return out
}

// Validate checks that every declared dependency actually holds in t: within
// an equivalence class, equal values in one column imply equal values in the
// others, row for row. It returns the first violation found.
func (f *FDSet) Validate(t *Table) error {
	for _, g := range f.cols {
		if len(g) < 2 {
			continue
		}
		idx := make([]int, len(g))
		for i, c := range g {
			j, ok := t.ColIndex(c)
			if !ok {
				return fmt.Errorf("fd: column %q not in table", c)
			}
			idx[i] = j
		}
		// For a bidirectional FD over the group, the tuple of all group
		// values must be determined by any single member. Checking the first
		// member against the rest (both directions) suffices pairwise.
		for k := 1; k < len(idx); k++ {
			if err := checkBijective(t, idx[0], idx[k], g[0], g[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkBijective verifies a ↔ b: equal values of a imply equal values of b
// and vice versa.
func checkBijective(t *Table, a, b int, an, bn string) error {
	fwd := make(map[string]string)
	rev := make(map[string]string)
	for i := 0; i < t.NumRows(); i++ {
		va, vb := t.Cell(i, a), t.Cell(i, b)
		if prev, ok := fwd[va]; ok && prev != vb {
			return fmt.Errorf("fd violation: %s=%q maps to both %s=%q and %q (row %d)", an, va, bn, prev, vb, i)
		}
		fwd[va] = vb
		if prev, ok := rev[vb]; ok && prev != va {
			return fmt.Errorf("fd violation: %s=%q maps to both %s=%q and %q (row %d)", bn, vb, an, prev, va, i)
		}
		rev[vb] = va
	}
	return nil
}

// Mine discovers bidirectional FDs from data: every pair of columns whose
// values are in one-to-one correspondence across all rows is grouped. This
// is the "readily available in many databases" schema knowledge the paper
// assumes; mining it from a sample keeps the reproduction self-contained
// when no schema is provided.
func Mine(t *Table) *FDSet {
	out := NewFDSet()
	n := t.NumCols()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if checkBijective(t, a, b, t.Columns()[a], t.Columns()[b]) == nil {
				out.AddGroup(t.Columns()[a], t.Columns()[b])
			}
		}
	}
	return out
}
