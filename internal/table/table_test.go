package table

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("a", "b", "c")
	t.MustAppendRow("1", "x", "p")
	t.MustAppendRow("2", "x", "q")
	t.MustAppendRow("3", "y", "p")
	return t
}

func TestNewRejectsBadSchemas(t *testing.T) {
	mustPanic(t, func() { New("a", "a") })
	mustPanic(t, func() { New("") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestAppendRowArity(t *testing.T) {
	tb := New("a", "b")
	if err := tb.AppendRow("1"); err == nil {
		t.Error("short row accepted")
	}
	if err := tb.AppendRow("1", "2", "3"); err == nil {
		t.Error("long row accepted")
	}
	if err := tb.AppendRow("1", "2"); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
}

func TestCellAccess(t *testing.T) {
	tb := sample()
	if got := tb.Cell(1, 0); got != "2" {
		t.Errorf("Cell(1,0) = %q", got)
	}
	v, ok := tb.CellByName(2, "b")
	if !ok || v != "y" {
		t.Errorf("CellByName(2,b) = %q,%v", v, ok)
	}
	if _, ok := tb.CellByName(0, "zzz"); ok {
		t.Error("unknown column reported present")
	}
	if i, ok := tb.ColIndex("c"); !ok || i != 2 {
		t.Errorf("ColIndex(c) = %d,%v", i, ok)
	}
}

func TestSelect(t *testing.T) {
	tb := sample()
	fds := NewFDSet()
	fds.AddGroup("a", "c")
	if err := tb.SetFDs(fds); err != nil {
		t.Fatal(err)
	}
	sel, err := tb.Select("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumCols() != 2 || sel.NumRows() != 3 {
		t.Fatalf("select shape = %dx%d", sel.NumRows(), sel.NumCols())
	}
	if sel.Cell(0, 0) != "p" || sel.Cell(0, 1) != "1" {
		t.Errorf("select row 0 = %v", sel.Row(0))
	}
	if g := sel.FDs().Group("a"); len(g) != 2 {
		t.Errorf("FDs not restricted-through: %v", g)
	}
	if _, err := tb.Select("nope"); err == nil {
		t.Error("select of unknown column succeeded")
	}
}

func TestSelectDropsBrokenFDs(t *testing.T) {
	tb := sample()
	fds := NewFDSet()
	fds.AddGroup("a", "c")
	if err := tb.SetFDs(fds); err != nil {
		t.Fatal(err)
	}
	sel, err := tb.Select("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if g := sel.FDs().Group("a"); len(g) != 1 {
		t.Errorf("restricted FD should vanish, got group %v", g)
	}
}

func TestHeadAndFilterRows(t *testing.T) {
	tb := sample()
	if err := tb.SetHidden("label", []string{"L1", "L2", "L3"}); err != nil {
		t.Fatal(err)
	}
	h := tb.Head(2)
	if h.NumRows() != 2 {
		t.Fatalf("Head(2) rows = %d", h.NumRows())
	}
	if v := h.HiddenValue("label", 1); v != "L2" {
		t.Errorf("hidden after Head = %q", v)
	}
	f := tb.FilterRows([]int{2, 0})
	if f.NumRows() != 2 || f.Cell(0, 0) != "3" || f.Cell(1, 0) != "1" {
		t.Errorf("FilterRows wrong rows: %v %v", f.Row(0), f.Row(1))
	}
	if v := f.HiddenValue("label", 0); v != "L3" {
		t.Errorf("hidden after FilterRows = %q", v)
	}
	if tb.Head(99).NumRows() != 3 {
		t.Error("Head beyond size should clamp")
	}
}

func TestHiddenColumnErrors(t *testing.T) {
	tb := sample()
	if err := tb.SetHidden("x", []string{"only-one"}); err == nil {
		t.Error("mismatched hidden length accepted")
	}
	if _, ok := tb.Hidden("missing"); ok {
		t.Error("missing hidden column reported present")
	}
	if v := tb.HiddenValue("missing", 0); v != "" {
		t.Errorf("missing hidden value = %q", v)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := sample()
	if err := tb.SetHidden("label", []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	cl := tb.Clone()
	cl.rows[0][0] = "mutated"
	if tb.Cell(0, 0) == "mutated" {
		t.Error("clone shares row storage")
	}
	cl.hidden["label"][0] = "mutated"
	if tb.HiddenValue("label", 0) == "mutated" {
		t.Error("clone shares hidden storage")
	}
}

func TestSortRowsLex(t *testing.T) {
	tb := New("a", "b")
	tb.MustAppendRow("2", "z")
	tb.MustAppendRow("1", "y")
	tb.MustAppendRow("2", "a")
	tb.MustAppendRow("1", "b")
	if err := tb.SetHidden("id", []string{"r0", "r1", "r2", "r3"}); err != nil {
		t.Fatal(err)
	}
	if err := tb.SortRowsLex([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"1", "b"}, {"1", "y"}, {"2", "a"}, {"2", "z"}}
	for i, w := range want {
		if tb.Cell(i, 0) != w[0] || tb.Cell(i, 1) != w[1] {
			t.Errorf("row %d = %v, want %v", i, tb.Row(i), w)
		}
	}
	// Hidden column must follow the permutation.
	if got := tb.HiddenValue("id", 0); got != "r3" {
		t.Errorf("hidden id[0] = %q, want r3", got)
	}
	if err := tb.SortRowsLex([]string{"nope"}); err == nil {
		t.Error("sort by unknown column succeeded")
	}
}

func TestSortRowsLexStable(t *testing.T) {
	tb := New("k", "v")
	tb.MustAppendRow("x", "first")
	tb.MustAppendRow("x", "second")
	tb.MustAppendRow("x", "third")
	if err := tb.SortRowsLex([]string{"k"}); err != nil {
		t.Fatal(err)
	}
	if tb.Cell(0, 1) != "first" || tb.Cell(2, 1) != "third" {
		t.Error("stable sort violated for equal keys")
	}
}

func TestDistinctValues(t *testing.T) {
	tb := sample()
	order, groups := tb.DistinctValues(1)
	if len(order) != 2 || order[0] != "x" || order[1] != "y" {
		t.Errorf("distinct order = %v", order)
	}
	if len(groups["x"]) != 2 || groups["x"][0] != 0 || groups["x"][1] != 1 {
		t.Errorf("group x = %v", groups["x"])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sample()
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, tb, back)
}

func TestCSVQuoting(t *testing.T) {
	tb := New("text")
	tb.MustAppendRow("has, comma and \"quotes\"\nand a newline")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Cell(0, 0) != tb.Cell(0, 0) {
		t.Errorf("quoted cell mangled: %q", back.Cell(0, 0))
	}
}

func TestJSONRoundTripKeepsFDs(t *testing.T) {
	tb := sample()
	fds := NewFDSet()
	fds.AddGroup("a", "c")
	if err := tb.SetFDs(fds); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tb.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, tb, back)
	if g := back.FDs().Group("a"); len(g) != 2 {
		t.Errorf("FDs lost in JSON round trip: %v", g)
	}
}

func assertSameRelation(t *testing.T, a, b *Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for i := range a.Columns() {
		if a.Columns()[i] != b.Columns()[i] {
			t.Fatalf("column %d: %q vs %q", i, a.Columns()[i], b.Columns()[i])
		}
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.NumCols(); c++ {
			if a.Cell(r, c) != b.Cell(r, c) {
				t.Fatalf("cell (%d,%d): %q vs %q", r, c, a.Cell(r, c), b.Cell(r, c))
			}
		}
	}
}

func TestSetFDsUnknownColumn(t *testing.T) {
	tb := sample()
	fds := NewFDSet()
	fds.AddGroup("a", "nope")
	if err := tb.SetFDs(fds); err == nil {
		t.Error("FD over unknown column accepted")
	}
}
