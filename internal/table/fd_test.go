package table

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestFDSetGroups(t *testing.T) {
	f := NewFDSet()
	f.AddGroup("a", "b")
	f.AddGroup("c", "d", "e")
	if got := f.Inferred("a"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("Inferred(a) = %v", got)
	}
	if got := f.Inferred("d"); len(got) != 2 {
		t.Errorf("Inferred(d) = %v", got)
	}
	if got := f.Inferred("zzz"); got != nil {
		t.Errorf("Inferred of unknown = %v", got)
	}
	if got := f.Group("zzz"); !reflect.DeepEqual(got, []string{"zzz"}) {
		t.Errorf("Group of unknown = %v", got)
	}
}

func TestFDSetTransitiveMerge(t *testing.T) {
	f := NewFDSet()
	f.AddGroup("a", "b")
	f.AddGroup("b", "c")
	g := f.Group("a")
	if len(g) != 3 {
		t.Fatalf("merged group = %v, want 3 members", g)
	}
	f.AddGroup("d", "e")
	f.AddGroup("a", "d") // merges the two groups
	if len(f.Group("e")) != 5 {
		t.Errorf("cross merge failed: %v", f.Group("e"))
	}
}

func TestFDSetDuplicatesIgnored(t *testing.T) {
	f := NewFDSet()
	f.AddGroup("a", "a", "b")
	f.AddGroup("a", "b")
	if g := f.Group("a"); len(g) != 2 {
		t.Errorf("duplicates inflated group: %v", g)
	}
}

func TestFDSetGroupsDeterministic(t *testing.T) {
	f := NewFDSet()
	f.AddGroup("z", "y")
	f.AddGroup("b", "a")
	groups := f.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0][0] != "a" || groups[1][0] != "y" {
		t.Errorf("groups not sorted: %v", groups)
	}
}

func TestFDRestrict(t *testing.T) {
	f := NewFDSet()
	f.AddGroup("a", "b", "c")
	r := f.Restrict([]string{"a", "b", "x"})
	if g := r.Group("a"); len(g) != 2 {
		t.Errorf("restricted group = %v", g)
	}
	r2 := f.Restrict([]string{"a"})
	if g := r2.Group("a"); len(g) != 1 {
		t.Errorf("singleton group should dissolve: %v", g)
	}
}

func TestFDValidate(t *testing.T) {
	tb := New("id", "name", "other")
	tb.MustAppendRow("1", "one", "x")
	tb.MustAppendRow("2", "two", "y")
	tb.MustAppendRow("1", "one", "z")
	good := NewFDSet()
	good.AddGroup("id", "name")
	if err := good.Validate(tb); err != nil {
		t.Errorf("valid FD rejected: %v", err)
	}
	bad := NewFDSet()
	bad.AddGroup("id", "other")
	if err := bad.Validate(tb); err == nil {
		t.Error("violated FD accepted")
	}
}

func TestFDValidateReverseDirection(t *testing.T) {
	// id -> name holds but name -> id does not; a bidirectional FD must fail.
	tb := New("id", "name")
	tb.MustAppendRow("1", "same")
	tb.MustAppendRow("2", "same")
	f := NewFDSet()
	f.AddGroup("id", "name")
	if err := f.Validate(tb); err == nil {
		t.Error("non-bijective mapping accepted as bidirectional FD")
	}
}

func TestMine(t *testing.T) {
	tb := New("id", "name", "free")
	tb.MustAppendRow("1", "one", "a")
	tb.MustAppendRow("2", "two", "a")
	tb.MustAppendRow("1", "one", "b")
	mined := Mine(tb)
	if g := mined.Group("id"); len(g) != 2 {
		t.Errorf("Mine missed id↔name: %v", g)
	}
	if g := mined.Group("free"); len(g) != 1 {
		t.Errorf("Mine invented FD for free column: %v", g)
	}
}

func TestMinedFDsAlwaysValidate(t *testing.T) {
	// Property: whatever Mine discovers must pass Validate on the same table.
	f := func(cells [][3]uint8) bool {
		tb := New("a", "b", "c")
		for _, r := range cells {
			tb.MustAppendRow(
				string(rune('a'+r[0]%4)),
				string(rune('a'+r[1]%4)),
				string(rune('a'+r[2]%4)),
			)
		}
		return Mine(tb).Validate(tb) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFDSet()
	f.AddGroup("a", "b")
	c := f.Clone()
	c.AddGroup("a", "x")
	if len(f.Group("a")) != 2 {
		t.Errorf("clone mutation leaked into original: %v", f.Group("a"))
	}
}
