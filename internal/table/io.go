package table

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV serializes the table (header + rows) to w in RFC 4180 CSV.
// Hidden columns and FDs are not serialized; they are schema metadata.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.cols); err != nil {
		return fmt.Errorf("table: write header: %w", err)
	}
	for i, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("table: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table from CSV. The first record is the header.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: read header: %w", err)
	}
	t := New(header...)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: read line %d: %w", line, err)
		}
		if err := t.AppendRow(rec...); err != nil {
			return nil, fmt.Errorf("table: line %d: %w", line, err)
		}
	}
	return t, nil
}

// jsonTable is the JSON wire format: schema plus rows, with FD groups so a
// round trip preserves solver-relevant metadata.
type jsonTable struct {
	Columns []string   `json:"columns"`
	FDs     [][]string `json:"fds,omitempty"`
	Rows    [][]string `json:"rows"`
}

// WriteJSON serializes the table, including FD groups.
func (t *Table) WriteJSON(w io.Writer) error {
	jt := jsonTable{Columns: t.cols, FDs: t.fds.Groups(), Rows: t.rows}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// ReadJSON parses a table previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Table, error) {
	var jt jsonTable
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("table: decode json: %w", err)
	}
	t := New(jt.Columns...)
	for i, row := range jt.Rows {
		if err := t.AppendRow(row...); err != nil {
			return nil, fmt.Errorf("table: json row %d: %w", i, err)
		}
	}
	fds := NewFDSet()
	for _, g := range jt.FDs {
		fds.AddGroup(g...)
	}
	if err := t.SetFDs(fds); err != nil {
		return nil, err
	}
	return t, nil
}
