// Package vecdb provides deterministic text embeddings and an exact
// k-nearest-neighbor index. It stands in for the paper's
// gte-base-en-v1.5 + FAISS retrieval stack (Sec. 6.1.3): the experiments
// only require that questions about the same topic retrieve overlapping
// context sets, which bag-of-words feature hashing with cosine similarity
// delivers without model weights.
package vecdb

import (
	"container/heap"
	"fmt"
	"math"
	"strings"
	"unicode"
)

// Embedder maps text to a fixed-dimension vector via signed feature hashing
// of its words. Embeddings are L2-normalized so dot product equals cosine
// similarity. The zero value is unusable; call NewEmbedder.
type Embedder struct {
	dim int
}

// NewEmbedder returns an embedder with the given dimensionality (256 when
// dim <= 0).
func NewEmbedder(dim int) *Embedder {
	if dim <= 0 {
		dim = 256
	}
	return &Embedder{dim: dim}
}

// Dim reports the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// Embed returns the normalized embedding of text. Empty or wordless text
// embeds to the zero vector.
func (e *Embedder) Embed(text string) []float32 {
	v := make([]float32, e.dim)
	for _, w := range splitWords(text) {
		h := fnv64(w)
		bucket := int(h % uint64(e.dim))
		sign := float32(1)
		if (h>>32)&1 == 1 {
			sign = -1
		}
		v[bucket] += sign
	}
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range v {
			v[i] *= inv
		}
	}
	return v
}

// Result is one retrieval hit.
type Result struct {
	ID    int
	Score float32
}

// Index is an exact (flat) KNN index over embedded documents.
type Index struct {
	emb  *Embedder
	vecs [][]float32
}

// NewIndex returns an empty index using the given embedder.
func NewIndex(emb *Embedder) *Index {
	return &Index{emb: emb}
}

// Add embeds and stores a document; its ID is its insertion position.
func (ix *Index) Add(text string) int {
	ix.vecs = append(ix.vecs, ix.emb.Embed(text))
	return len(ix.vecs) - 1
}

// AddAll embeds a batch of documents in order.
func (ix *Index) AddAll(texts []string) {
	for _, t := range texts {
		ix.Add(t)
	}
}

// Len reports the number of indexed documents.
func (ix *Index) Len() int { return len(ix.vecs) }

// Search returns the k nearest documents to the query by cosine similarity,
// best first, ties broken by ascending ID for determinism.
func (ix *Index) Search(query string, k int) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("vecdb: k must be positive, got %d", k)
	}
	if len(ix.vecs) == 0 {
		return nil, fmt.Errorf("vecdb: search on empty index")
	}
	if k > len(ix.vecs) {
		k = len(ix.vecs)
	}
	q := ix.emb.Embed(query)
	// Min-heap of size k over (score, -id): the root is the weakest kept hit.
	h := make(resultHeap, 0, k)
	for id, v := range ix.vecs {
		var dot float32
		for i := range q {
			dot += q[i] * v[i]
		}
		r := Result{ID: id, Score: dot}
		if len(h) < k {
			heap.Push(&h, r)
			continue
		}
		if better(r, h[0]) {
			h[0] = r
			heap.Fix(&h, 0)
		}
	}
	out := make([]Result, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Result)
	}
	return out, nil
}

// better reports whether a should outrank b in the final ordering.
func better(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// resultHeap keeps the k best results; the root is the worst of them.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func splitWords(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

func fnv64(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
