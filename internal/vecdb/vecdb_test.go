package vecdb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedNormalized(t *testing.T) {
	e := NewEmbedder(64)
	v := e.Embed("some words about beer and movies")
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Errorf("norm² = %f, want 1", norm)
	}
}

func TestEmbedEmptyIsZero(t *testing.T) {
	e := NewEmbedder(16)
	for _, txt := range []string{"", "!!! ...", "   "} {
		for i, x := range e.Embed(txt) {
			if x != 0 {
				t.Errorf("Embed(%q)[%d] = %f", txt, i, x)
			}
		}
	}
}

func TestEmbedDeterministic(t *testing.T) {
	e1, e2 := NewEmbedder(128), NewEmbedder(128)
	a, b := e1.Embed("hello world"), e2.Embed("hello world")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dim %d differs", i)
		}
	}
}

func TestEmbedCaseInsensitive(t *testing.T) {
	e := NewEmbedder(64)
	a, b := e.Embed("Hello World"), e.Embed("hello world")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("case changed embedding")
		}
	}
}

func TestSearchFindsRelated(t *testing.T) {
	e := NewEmbedder(256)
	ix := NewIndex(e)
	ix.AddAll([]string{
		"quantum computing with superconducting qubits and error correction",
		"baking sourdough bread with wild yeast starter",
		"qubits decoherence and quantum error correction research",
		"gardening tips for tomato plants in summer",
	})
	res, err := ix.Search("quantum qubits error correction", 2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{res[0].ID: true, res[1].ID: true}
	if !got[0] || !got[2] {
		t.Errorf("top-2 = %v, want docs 0 and 2", res)
	}
	if res[0].Score < res[1].Score {
		t.Error("results not sorted by score")
	}
}

func TestSearchSelfRetrieval(t *testing.T) {
	e := NewEmbedder(256)
	ix := NewIndex(e)
	docs := []string{
		"alpha beta gamma delta", "epsilon zeta eta theta",
		"iota kappa lambda mu", "nu xi omicron pi",
	}
	ix.AddAll(docs)
	for i, d := range docs {
		res, err := ix.Search(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].ID != i {
			t.Errorf("doc %d: self-retrieval found %d", i, res[0].ID)
		}
	}
}

func TestSearchKClamping(t *testing.T) {
	ix := NewIndex(NewEmbedder(32))
	ix.AddAll([]string{"one thing", "two things"})
	res, err := ix.Search("thing", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("len = %d, want clamped 2", len(res))
	}
}

func TestSearchErrors(t *testing.T) {
	ix := NewIndex(NewEmbedder(32))
	if _, err := ix.Search("anything", 1); err == nil {
		t.Error("search on empty index succeeded")
	}
	ix.Add("doc")
	if _, err := ix.Search("anything", 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSearchDeterministicTies(t *testing.T) {
	ix := NewIndex(NewEmbedder(64))
	// Identical documents: scores tie exactly; IDs must come back ascending.
	ix.AddAll([]string{"same text", "same text", "same text", "other words entirely"})
	res, err := ix.Search("same text", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 0 || res[1].ID != 1 || res[2].ID != 2 {
		t.Errorf("tie order = %v", res)
	}
}

func TestSearchTopKMatchesFullSort(t *testing.T) {
	// Property: heap-based top-k equals the k best of a full scan.
	e := NewEmbedder(64)
	ix := NewIndex(e)
	docs := []string{
		"red green blue", "green blue yellow", "blue yellow red",
		"alpha beta", "beta gamma", "gamma alpha", "red alpha",
		"unrelated words here", "more filler text", "red red red",
	}
	ix.AddAll(docs)
	f := func(qSeed uint8, kRaw uint8) bool {
		q := docs[int(qSeed)%len(docs)]
		k := 1 + int(kRaw)%len(docs)
		res, err := ix.Search(q, k)
		if err != nil {
			return false
		}
		// Verify ordering and that no skipped doc beats the kept worst.
		for i := 1; i < len(res); i++ {
			if better(res[i], res[i-1]) {
				return false
			}
		}
		kept := map[int]bool{}
		for _, r := range res {
			kept[r.ID] = true
		}
		worst := res[len(res)-1]
		qv := e.Embed(q)
		for id := range docs {
			if kept[id] {
				continue
			}
			var dot float32
			dv := e.Embed(docs[id])
			for i := range qv {
				dot += qv[i] * dv[i]
			}
			if better(Result{ID: id, Score: dot}, worst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDefaultDim(t *testing.T) {
	if NewEmbedder(0).Dim() != 256 {
		t.Error("default dim not applied")
	}
}
