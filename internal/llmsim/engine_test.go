package llmsim

import (
	"math"
	"testing"

	"repro/internal/tokenizer"
)

func seq(start, n int) []tokenizer.Token {
	out := make([]tokenizer.Token, n)
	for i := range out {
		out[i] = tokenizer.Token(start + i)
	}
	return out
}

func baseConfig(cached bool) Config {
	return Config{
		Cost:         CostModel{Model: Llama3_8B, Cluster: SingleL4},
		CacheEnabled: cached,
	}
}

func mkReqs(n, promptLen, outLen int, shared bool) []*Request {
	reqs := make([]*Request, n)
	for i := range reqs {
		base := 0
		if !shared {
			base = (i + 1) * 100000
		}
		reqs[i] = &Request{ID: i, Prompt: seq(base, promptLen), OutTokens: outLen}
	}
	return reqs
}

func TestRunBasicCompletion(t *testing.T) {
	e := New(baseConfig(true))
	reqs := mkReqs(10, 100, 5, false)
	m, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.JCT <= 0 {
		t.Error("JCT not positive")
	}
	if m.DecodeTokens != 50 {
		t.Errorf("decode tokens = %d, want 50", m.DecodeTokens)
	}
	if m.PromptTokens != 1000 {
		t.Errorf("prompt tokens = %d", m.PromptTokens)
	}
	for _, r := range reqs {
		if r.EndTime <= r.StartTime {
			t.Errorf("req %d: end %f <= start %f", r.ID, r.EndTime, r.StartTime)
		}
	}
}

func TestSharedPromptsHitCache(t *testing.T) {
	e := New(baseConfig(true))
	reqs := mkReqs(10, 128, 2, true) // identical prompts
	m, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.HitRate() < 0.85 {
		t.Errorf("hit rate = %.2f, want ≥ 0.85 for identical prompts", m.HitRate())
	}
	// First request is a cold miss.
	if reqs[0].Matched != 0 {
		t.Errorf("first request matched %d", reqs[0].Matched)
	}
	if reqs[9].Matched != 128 {
		t.Errorf("later request matched %d, want 128", reqs[9].Matched)
	}
}

func TestNoCacheBaselineNeverMatches(t *testing.T) {
	e := New(baseConfig(false))
	reqs := mkReqs(10, 128, 2, true)
	m, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.MatchedTokens != 0 {
		t.Errorf("no-cache run matched %d tokens", m.MatchedTokens)
	}
	if m.PrefilledTokens != m.PromptTokens {
		t.Errorf("prefilled %d != prompt %d", m.PrefilledTokens, m.PromptTokens)
	}
}

func TestCachingReducesJCT(t *testing.T) {
	reqs := func() []*Request { return mkReqs(50, 512, 2, true) }
	mCached, err := New(baseConfig(true)).Run(reqs())
	if err != nil {
		t.Fatal(err)
	}
	mCold, err := New(baseConfig(false)).Run(reqs())
	if err != nil {
		t.Fatal(err)
	}
	if mCached.JCT >= mCold.JCT {
		t.Errorf("caching did not help: cached %.3fs vs none %.3fs", mCached.JCT, mCold.JCT)
	}
	if speedup := mCold.JCT / mCached.JCT; speedup < 1.5 {
		t.Errorf("speedup on identical prompts = %.2fx, want ≥ 1.5x", speedup)
	}
}

func TestDistinctPromptsNoBenefit(t *testing.T) {
	// With fully distinct prompts the cache cannot help; JCTs must be close.
	mCached, err := New(baseConfig(true)).Run(mkReqs(20, 256, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	mCold, err := New(baseConfig(false)).Run(mkReqs(20, 256, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	ratio := mCached.JCT / mCold.JCT
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("distinct prompts: cached/cold JCT ratio = %.3f, want ≈ 1", ratio)
	}
}

func TestConservationOfTokens(t *testing.T) {
	e := New(baseConfig(true))
	reqs := mkReqs(30, 200, 3, true)
	m, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.MatchedTokens+m.PrefilledTokens != m.PromptTokens {
		t.Errorf("matched %d + prefilled %d != prompt %d",
			m.MatchedTokens, m.PrefilledTokens, m.PromptTokens)
	}
}

func TestMemoryPressureLimitsBatch(t *testing.T) {
	// Pool of 40 blocks × 16 tokens = 640 tokens. Each distinct request
	// needs ~20 blocks (256-token prompt + tail/gen), so only ~2 fit at once.
	cfg := baseConfig(true)
	cfg.CapacityOverride = 40
	m, err := New(cfg).Run(mkReqs(8, 256, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxRunning > 2 {
		t.Errorf("max running = %d, want ≤ 2 under memory pressure", m.MaxRunning)
	}
}

func TestSharingEnablesLargerBatches(t *testing.T) {
	cfg := baseConfig(true)
	cfg.CapacityOverride = 64
	mShared, err := New(cfg).Run(mkReqs(16, 512, 4, true))
	if err != nil {
		t.Fatal(err)
	}
	cfgNo := baseConfig(false)
	cfgNo.CapacityOverride = 64
	mCold, err := New(cfgNo).Run(mkReqs(16, 512, 4, true))
	if err != nil {
		t.Fatal(err)
	}
	if mShared.MaxRunning <= mCold.MaxRunning {
		t.Errorf("sharing did not increase batch: %d vs %d", mShared.MaxRunning, mCold.MaxRunning)
	}
}

func TestOversizedRequestErrors(t *testing.T) {
	cfg := baseConfig(true)
	cfg.CapacityOverride = 2 // 32 tokens
	_, err := New(cfg).Run(mkReqs(1, 1000, 2, false))
	if err == nil {
		t.Fatal("oversized request silently dropped")
	}
}

func TestEmptyPromptErrors(t *testing.T) {
	_, err := New(baseConfig(true)).Run([]*Request{{ID: 0, OutTokens: 1}})
	if err == nil {
		t.Fatal("empty prompt accepted")
	}
}

func TestZeroOutputClampedToOne(t *testing.T) {
	e := New(baseConfig(true))
	m, err := e.Run([]*Request{{ID: 0, Prompt: seq(0, 32), OutTokens: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.DecodeTokens != 1 {
		t.Errorf("decode tokens = %d, want 1", m.DecodeTokens)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	e := New(baseConfig(true))
	reqs := mkReqs(40, 300, 2, false)
	if _, err := e.Run(reqs); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].StartTime < reqs[i-1].StartTime {
			t.Fatalf("request %d admitted before request %d", i, i-1)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := New(baseConfig(true)).Run(mkReqs(25, 200, 4, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(baseConfig(true)).Run(mkReqs(25, 200, 4, true))
	if err != nil {
		t.Fatal(err)
	}
	if a.JCT != b.JCT || a.Steps != b.Steps || a.MatchedTokens != b.MatchedTokens {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestLongOutputDecodeDominates(t *testing.T) {
	// With long outputs, decode should contribute most of the time; the
	// relative gain from caching must shrink (Sec. 6.2, projection queries).
	shortOut := func(cached bool) float64 {
		m, err := New(baseConfig(cached)).Run(mkReqs(30, 400, 2, true))
		if err != nil {
			t.Fatal(err)
		}
		return m.JCT
	}
	longOut := func(cached bool) float64 {
		m, err := New(baseConfig(cached)).Run(mkReqs(30, 400, 100, true))
		if err != nil {
			t.Fatal(err)
		}
		return m.JCT
	}
	shortSpeedup := shortOut(false) / shortOut(true)
	longSpeedup := longOut(false) / longOut(true)
	if longSpeedup >= shortSpeedup {
		t.Errorf("long-output speedup %.2fx not below short-output %.2fx", longSpeedup, shortSpeedup)
	}
}

func TestModelPresetsSanity(t *testing.T) {
	if p := Llama3_8B.Params(); math.Abs(p-8.0e9) > 0.5e9 {
		t.Errorf("8B params = %.2fB", p/1e9)
	}
	if p := Llama3_70B.Params(); math.Abs(p-70.6e9) > 2e9 {
		t.Errorf("70B params = %.2fB", p/1e9)
	}
	if p := Llama32_1B.Params(); math.Abs(p-1.24e9) > 0.2e9 {
		t.Errorf("1B params = %.2fB", p/1e9)
	}
	if kv := Llama3_8B.KVBytesPerToken(); kv != 131072 {
		t.Errorf("8B KV/token = %v, want 131072", kv)
	}
	if kv := Llama3_70B.KVBytesPerToken(); kv != 327680 {
		t.Errorf("70B KV/token = %v, want 327680", kv)
	}
}

func TestKVPoolSizing(t *testing.T) {
	cm := CostModel{Model: Llama3_8B, Cluster: SingleL4}
	blocks := cm.KVPoolBlocks(16)
	// 24 GB − ~16 GB weights − 2.4 GB reserve ≈ 5.5 GB → ~2600 blocks.
	if blocks < 1500 || blocks > 4000 {
		t.Errorf("8B/L4 pool = %d blocks, outside plausible range", blocks)
	}
	cm70 := CostModel{Model: Llama3_70B, Cluster: SingleL4}
	if cm70.KVPoolBlocks(16) != 0 {
		t.Error("70B should not fit on a single L4")
	}
	cm70.Cluster = EightL4
	if cm70.KVPoolBlocks(16) <= 0 {
		t.Error("70B must fit on 8×L4")
	}
}

func TestStepTimeMonotonicity(t *testing.T) {
	cm := CostModel{Model: Llama3_8B, Cluster: SingleL4}
	small := cm.StepTime([]PrefillWork{{NewTokens: 100}}, 0, 0)
	large := cm.StepTime([]PrefillWork{{NewTokens: 1000}}, 0, 0)
	if large <= small {
		t.Errorf("prefill time not monotone: %f vs %f", small, large)
	}
	d1 := cm.StepTime(nil, 1, 500)
	d32 := cm.StepTime(nil, 32, 16000)
	if d32 <= d1 {
		t.Errorf("decode time not monotone in batch: %f vs %f", d1, d32)
	}
	// Batched decode must amortize: 32 sequences in one step is far cheaper
	// than 32 separate steps.
	if d32 >= 32*d1*0.5 {
		t.Errorf("no batching amortization: d32=%f, 32×d1=%f", d32, 32*d1)
	}
	if cm.StepTime(nil, 0, 0) <= 0 {
		t.Error("empty step should still cost overhead")
	}
}

func TestCachedPrefillCheaper(t *testing.T) {
	cm := CostModel{Model: Llama3_8B, Cluster: SingleL4}
	cold := cm.StepTime([]PrefillWork{{NewTokens: 1000, CtxStart: 0}}, 0, 0)
	warm := cm.StepTime([]PrefillWork{{NewTokens: 200, CtxStart: 800}}, 0, 0)
	if warm >= cold {
		t.Errorf("cached prefill %f not cheaper than cold %f", warm, cold)
	}
}

func TestTensorParallelSpeedsPrefill(t *testing.T) {
	single := CostModel{Model: Llama3_70B, Cluster: Cluster{GPU: L4, Count: 1, TPEfficiency: 1}}
	eight := CostModel{Model: Llama3_70B, Cluster: EightL4}
	w := []PrefillWork{{NewTokens: 2000}}
	if eight.StepTime(w, 0, 0) >= single.StepTime(w, 0, 0) {
		t.Error("8-way TP not faster than single GPU")
	}
}
