package llmsim

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/kvcache"
	"repro/internal/tokenizer"
)

// Request is one LLM invocation: a tokenized prompt and a deterministic
// output budget (the simulator does not generate text; the oracle layer
// decides answers, the engine only accounts time and memory).
type Request struct {
	ID        int
	Prompt    []tokenizer.Token
	OutTokens int

	// Results, populated by Run.
	Matched   int     // prompt tokens served from the prefix cache
	StartTime float64 // admission time (s, virtual)
	EndTime   float64 // completion time (s, virtual)

	lease     *kvcache.Lease
	prefilled int
	generated int
	admitted  bool
	done      bool
}

// SchedPolicy selects how the engine admits waiting requests.
type SchedPolicy int

const (
	// FIFO admits requests strictly in arrival order — preserving whatever
	// schedule the offline reordering produced. This is the default and the
	// paper's setting.
	FIFO SchedPolicy = iota
	// CacheAware greedily admits, within a bounded lookahead window, the
	// waiting request with the longest currently-cached prefix (SGLang-style
	// online scheduling). It reorders rows but cannot reorder fields, so it
	// lower-bounds what offline GGR achieves; the ablation_online experiment
	// quantifies the gap.
	CacheAware
)

// Config sizes the engine.
type Config struct {
	Cost CostModel
	// BlockSize is the KV block size in tokens (default 16).
	BlockSize int
	// MaxBatchSeqs caps concurrently running sequences (default 32, the
	// paper's batching assumption).
	MaxBatchSeqs int
	// MaxBatchTokens is the per-step token budget shared by decode (1 per
	// sequence) and chunked prefill (default 8192).
	MaxBatchTokens int
	// CacheEnabled toggles prefix caching; false is the No Cache baseline.
	CacheEnabled bool
	// CapacityOverride, when positive, replaces the cost-model-derived KV
	// pool size (in blocks). Used by tests.
	CapacityOverride int64
	// Sched selects the admission policy (default FIFO).
	Sched SchedPolicy
	// Lookahead bounds CacheAware's scan of the waiting queue (default 64).
	Lookahead int
	// Trace, when non-nil, receives a JSONL event log of the run (see
	// TraceEvent).
	Trace io.Writer
}

func (c Config) lookahead() int {
	if c.Lookahead > 0 {
		return c.Lookahead
	}
	return 64
}

func (c Config) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return 16
}

func (c Config) maxSeqs() int {
	if c.MaxBatchSeqs > 0 {
		return c.MaxBatchSeqs
	}
	return 32
}

func (c Config) maxTokens() int {
	if c.MaxBatchTokens > 0 {
		return c.MaxBatchTokens
	}
	return 8192
}

// Metrics summarizes a run.
//
// Counting fields are conserved accounting: the llmqlint accounting
// analyzer rejects keyed literals that set some counters and omit others.
//
//llmqlint:accounting
type Metrics struct {
	// JCT is the job completion time: virtual seconds until the last request
	// finishes. This is the paper's end-to-end query latency.
	JCT float64
	// Steps is the number of engine iterations.
	Steps int64
	// PromptTokens / MatchedTokens / PrefilledTokens decompose prompt
	// processing: Matched were served from cache, Prefilled were computed.
	PromptTokens    int64
	MatchedTokens   int64
	PrefilledTokens int64
	// DecodeTokens is the total generated token count.
	DecodeTokens int64
	// MeanLatency is the average per-request latency; P50/P95/P99 its
	// percentiles; MaxRunning the peak concurrent batch size observed.
	MeanLatency float64
	P50Latency  float64
	P95Latency  float64
	P99Latency  float64
	MaxRunning  int
	// Cache is the KV cache's own accounting.
	Cache kvcache.Stats
}

// HitRate is MatchedTokens / PromptTokens.
func (m Metrics) HitRate() float64 {
	if m.PromptTokens == 0 {
		return 0
	}
	return float64(m.MatchedTokens) / float64(m.PromptTokens)
}

// Engine executes a request schedule under continuous batching.
type Engine struct {
	cfg   Config
	cache *kvcache.Cache
}

// New builds an engine; the KV pool is sized from the cost model.
func New(cfg Config) *Engine {
	capacity := cfg.CapacityOverride
	if capacity <= 0 {
		capacity = cfg.Cost.KVPoolBlocks(cfg.blockSize())
	}
	return &Engine{
		cfg: cfg,
		cache: kvcache.New(kvcache.Config{
			BlockSize:      cfg.blockSize(),
			CapacityBlocks: capacity,
			Disabled:       !cfg.CacheEnabled,
		}),
	}
}

// Run processes the requests (under FIFO, the given order IS the serving
// order — preserving it is the contract the offline reordering algorithms
// rely on) and returns aggregate metrics. Request result fields are filled
// in place.
func (e *Engine) Run(reqs []*Request) (Metrics, error) {
	return e.RunInterruptible(reqs, nil)
}

// RunInterruptible is Run with a cooperative cancellation hook: interrupt,
// when non-nil, is polled once per engine step, and a non-nil return aborts
// the run mid-batch with that error. Before returning, every admitted
// request's KV lease is released, so a long-lived engine (persistent
// backends reuse one Engine across runs) never leaks pinned blocks to an
// aborted batch. Metrics reflect the work done up to the abort.
func (e *Engine) RunInterruptible(reqs []*Request, interrupt func() error) (Metrics, error) {
	var m Metrics
	clock := 0.0
	waiting := append([]*Request(nil), reqs...)
	var running []*Request
	finished := 0
	latencies := make([]float64, 0, len(reqs))
	tr := newTracer(e.cfg.Trace)

	// Every abort path must release the leases of admitted requests: on a
	// long-lived engine a leaked lease pins its KV blocks forever, shrinking
	// capacity for every later batch on the same engine.
	abort := func(err error) (Metrics, error) {
		for _, r := range running {
			e.cache.Release(r.lease)
		}
		return m, err
	}

	for finished < len(reqs) {
		if interrupt != nil {
			if err := interrupt(); err != nil {
				return abort(err)
			}
		}
		// Admission: a request enters when a batch slot and KV memory are
		// available. FIFO never reorders around a blocked head; CacheAware
		// picks the best-matching waiting request within the lookahead.
		for len(waiting) > 0 && len(running) < e.cfg.maxSeqs() {
			idx := 0
			if e.cfg.Sched == CacheAware {
				idx = e.pickCacheAware(waiting)
			}
			r := waiting[idx]
			if len(r.Prompt) == 0 {
				return abort(fmt.Errorf("llmsim: request %d has an empty prompt", r.ID))
			}
			if r.OutTokens <= 0 {
				r.OutTokens = 1 // every request emits at least one token
			}
			lease, ok := e.cache.Acquire(r.Prompt, r.OutTokens)
			if !ok {
				break
			}
			waiting = append(waiting[:idx], waiting[idx+1:]...)
			r.lease = lease
			r.Matched = lease.Matched
			r.prefilled = lease.Matched
			r.admitted = true
			r.StartTime = clock
			m.PromptTokens += int64(len(r.Prompt))
			m.MatchedTokens += int64(lease.Matched)
			running = append(running, r)
			tr.emit(TraceEvent{Time: clock, Kind: "admit", Req: r.ID,
				Matched: r.Matched, Prompt: len(r.Prompt), UsedBlocks: e.cache.UsedBlocks()})
		}
		if len(running) == 0 {
			if len(waiting) > 0 {
				return abort(fmt.Errorf("llmsim: request %d cannot fit in KV memory even alone (prompt %d tokens)",
					waiting[0].ID, len(waiting[0].Prompt)))
			}
			break
		}
		if len(running) > m.MaxRunning {
			m.MaxRunning = len(running)
		}

		// One iteration: sequences already past prefill decode one token
		// (1 budget unit each); the remaining budget feeds chunked prefill
		// in FIFO order. A request whose prefill completes this step emits
		// its first output token from the prefill itself, matching real
		// prefill-produces-first-token semantics.
		budget := e.cfg.maxTokens()
		var prefill []PrefillWork
		var emits []*Request
		decodeSeqs := 0
		var decodeCtx int64
		for _, r := range running {
			if r.prefilled < len(r.Prompt) {
				continue
			}
			decodeSeqs++
			decodeCtx += int64(len(r.Prompt) + r.generated)
			budget--
			emits = append(emits, r)
		}
		for _, r := range running {
			if budget <= 0 {
				break
			}
			pending := len(r.Prompt) - r.prefilled
			if pending <= 0 {
				continue
			}
			chunk := pending
			if chunk > budget {
				chunk = budget
			}
			prefill = append(prefill, PrefillWork{NewTokens: chunk, CtxStart: r.prefilled})
			r.prefilled += chunk
			budget -= chunk
			m.PrefilledTokens += int64(chunk)
			if r.prefilled == len(r.Prompt) {
				emits = append(emits, r)
			}
		}

		clock += e.cfg.Cost.StepTime(prefill, decodeSeqs, decodeCtx)
		m.Steps++
		stepPrefill := 0
		for _, w := range prefill {
			stepPrefill += w.NewTokens
		}
		tr.emit(TraceEvent{Time: clock, Kind: "step", Running: len(running),
			PrefillTokens: stepPrefill, DecodeSeqs: decodeSeqs, UsedBlocks: e.cache.UsedBlocks()})

		for _, r := range emits {
			r.generated++
			m.DecodeTokens++
		}

		still := running[:0]
		for _, r := range running {
			if r.prefilled >= len(r.Prompt) && r.generated >= r.OutTokens {
				r.done = true
				r.EndTime = clock
				e.cache.Release(r.lease)
				finished++
				latencies = append(latencies, clock-r.StartTime)
				tr.emit(TraceEvent{Time: clock, Kind: "finish", Req: r.ID, Latency: clock - r.StartTime})
				continue
			}
			still = append(still, r)
		}
		running = still
	}

	m.JCT = clock
	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		m.MeanLatency = sum / float64(len(latencies))
		sort.Float64s(latencies)
		m.P50Latency = latencies[len(latencies)*50/100]
		m.P95Latency = latencies[min(len(latencies)*95/100, len(latencies)-1)]
		m.P99Latency = latencies[min(len(latencies)*99/100, len(latencies)-1)]
	}
	m.Cache = e.cache.Stats()
	if err := tr.Err(); err != nil {
		return m, err
	}
	return m, nil
}

// pickCacheAware returns the waiting-queue index (within the lookahead
// window) whose prompt has the longest currently-cached prefix, preferring
// the earliest on ties so starvation is bounded by the window.
func (e *Engine) pickCacheAware(waiting []*Request) int {
	window := e.cfg.lookahead()
	if window > len(waiting) {
		window = len(waiting)
	}
	best, bestMatch := 0, -1
	for i := 0; i < window; i++ {
		if m := e.cache.MatchLen(waiting[i].Prompt); m > bestMatch {
			best, bestMatch = i, m
		}
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Cache exposes the engine's cache for inspection in tests.
func (e *Engine) Cache() *kvcache.Cache { return e.cache }
