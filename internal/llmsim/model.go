// Package llmsim is a discrete-event simulator of an LLM serving engine in
// the style of vLLM: continuous batching, chunked prefill, and a paged
// prefix KV cache. It stands in for the paper's GPU testbed (repro band:
// "scheduler as proxy to inference server").
//
// The simulator models the two mechanisms through which prefix reuse speeds
// up the paper's workloads:
//
//  1. Compute: prompt tokens matched in the prefix cache skip prefill FLOPs
//     (later tokens still attend over them).
//  2. Memory: matched blocks are shared, so concurrent requests occupy less
//     KV memory, admitting larger batches that amortize weight reads during
//     decode.
//
// Timing comes from a roofline cost model (peak FLOPs for prefill, memory
// bandwidth for decode) over published hardware numbers, so absolute times
// are approximations while ratios between baselines — the paper's reported
// quantities — are driven entirely by cache behaviour.
package llmsim

// ModelConfig describes a dense decoder-only transformer in enough detail to
// count parameters, FLOPs, and KV bytes.
type ModelConfig struct {
	Name         string
	Layers       int
	Hidden       int
	Heads        int
	KVHeads      int
	HeadDim      int
	Intermediate int
	Vocab        int
	// TiedEmbeddings marks models whose input embedding and LM head share
	// weights (Llama 3.2 1B does; the 8B and 70B models do not).
	TiedEmbeddings bool
	// BytesPerParam is the weight precision (2 for fp16/bf16).
	BytesPerParam float64
}

// Params approximates the parameter count from the architecture.
func (m ModelConfig) Params() float64 {
	attn := float64(m.Hidden) * float64(m.HeadDim) * float64(2*m.Heads+2*m.KVHeads)
	mlp := 3 * float64(m.Hidden) * float64(m.Intermediate)
	perLayer := attn + mlp
	embed := float64(m.Vocab) * float64(m.Hidden)
	if !m.TiedEmbeddings {
		embed *= 2
	}
	return float64(m.Layers)*perLayer + embed
}

// WeightBytes is the resident weight footprint.
func (m ModelConfig) WeightBytes() float64 { return m.Params() * m.BytesPerParam }

// KVBytesPerToken is the KV-cache footprint of one token: K and V vectors
// for every layer over the (grouped) KV heads.
func (m ModelConfig) KVBytesPerToken() float64 {
	return 2 * float64(m.Layers) * float64(m.KVHeads) * float64(m.HeadDim) * m.BytesPerParam
}

// FlopsPerToken is the dense compute per token ignoring attention context
// (the classic 2·N rule).
func (m ModelConfig) FlopsPerToken() float64 { return 2 * m.Params() }

// attnFlopsPerTokenPerCtx is the extra attention compute per (new token ×
// context token) pair: QKᵀ and AV matmuls across layers and query heads.
func (m ModelConfig) attnFlopsPerTokenPerCtx() float64 {
	return 4 * float64(m.Layers) * float64(m.Heads) * float64(m.HeadDim)
}

// Model presets matching the paper's evaluation (Sec. 6.1.3, Appendix D.2).
var (
	// Llama3_8B is Meta-Llama-3-8B-Instruct.
	Llama3_8B = ModelConfig{
		Name: "llama-3-8b", Layers: 32, Hidden: 4096, Heads: 32, KVHeads: 8,
		HeadDim: 128, Intermediate: 14336, Vocab: 128256, BytesPerParam: 2,
	}
	// Llama3_70B is Meta-Llama-3-70B-Instruct.
	Llama3_70B = ModelConfig{
		Name: "llama-3-70b", Layers: 80, Hidden: 8192, Heads: 64, KVHeads: 8,
		HeadDim: 128, Intermediate: 28672, Vocab: 128256, BytesPerParam: 2,
	}
	// Llama32_1B is Llama-3.2-1B (Appendix D.2's small-model ablation).
	Llama32_1B = ModelConfig{
		Name: "llama-3.2-1b", Layers: 16, Hidden: 2048, Heads: 32, KVHeads: 8,
		HeadDim: 64, Intermediate: 8192, Vocab: 128256, TiedEmbeddings: true,
		BytesPerParam: 2,
	}
)

// GPUSpec is the per-device hardware envelope.
type GPUSpec struct {
	Name string
	// MemBytes is device memory; FLOPS is peak dense fp16 compute;
	// Bandwidth is peak memory bandwidth, both per device.
	MemBytes  float64
	FLOPS     float64
	Bandwidth float64
}

// L4 is the NVIDIA L4 (24 GB, 121 TFLOPS dense fp16, 300 GB/s) the paper
// evaluates on (GCP g2-standard instances).
var L4 = GPUSpec{Name: "L4", MemBytes: 24e9, FLOPS: 121e12, Bandwidth: 300e9}

// Cluster is a tensor-parallel group of identical GPUs.
type Cluster struct {
	GPU   GPUSpec
	Count int
	// TPEfficiency discounts aggregate compute/bandwidth for tensor-parallel
	// communication (all-reduce per layer). 1 GPU ⇒ no discount.
	TPEfficiency float64
}

// SingleL4 is the paper's 8B setup; EightL4 the 70B setup (g2-standard-48).
var (
	SingleL4 = Cluster{GPU: L4, Count: 1, TPEfficiency: 1.0}
	EightL4  = Cluster{GPU: L4, Count: 8, TPEfficiency: 0.8}
)

func (c Cluster) effCount() float64 {
	if c.Count <= 1 {
		return float64(max(c.Count, 1))
	}
	eff := c.TPEfficiency
	if eff <= 0 || eff > 1 {
		eff = 0.8
	}
	return float64(c.Count) * eff
}

// TotalMemBytes is the aggregate device memory.
func (c Cluster) TotalMemBytes() float64 { return float64(c.Count) * c.GPU.MemBytes }

// CostModel turns token counts into seconds via a roofline: compute-bound
// prefill against utilization-discounted FLOPs, bandwidth-bound decode
// against utilization-discounted memory bandwidth.
type CostModel struct {
	Model   ModelConfig
	Cluster Cluster
	// MFU is the achieved fraction of peak FLOPs during prefill (default 0.5);
	// MBU the achieved fraction of peak bandwidth during decode (default 0.7).
	MFU float64
	MBU float64
	// StepOverhead is fixed per-engine-step time (scheduling, kernel
	// launches); default 2 ms.
	StepOverhead float64
}

func (cm CostModel) mfu() float64 {
	if cm.MFU > 0 {
		return cm.MFU
	}
	return 0.5
}

func (cm CostModel) mbu() float64 {
	if cm.MBU > 0 {
		return cm.MBU
	}
	return 0.7
}

func (cm CostModel) overhead() float64 {
	if cm.StepOverhead > 0 {
		return cm.StepOverhead
	}
	return 0.002
}

// effFLOPS is sustained cluster compute.
func (cm CostModel) effFLOPS() float64 {
	return cm.Cluster.GPU.FLOPS * cm.Cluster.effCount() * cm.mfu()
}

// effBandwidth is sustained cluster memory bandwidth.
func (cm CostModel) effBandwidth() float64 {
	return cm.Cluster.GPU.Bandwidth * cm.Cluster.effCount() * cm.mbu()
}

// KVPoolBytes is the memory left for the KV cache after weights and a
// runtime reserve (activations, CUDA graphs); vLLM's gpu_memory_utilization
// plays the same role.
func (cm CostModel) KVPoolBytes() float64 {
	reserve := 0.10 * cm.Cluster.TotalMemBytes()
	pool := cm.Cluster.TotalMemBytes() - cm.Model.WeightBytes() - reserve
	if pool < 0 {
		pool = 0
	}
	return pool
}

// KVPoolBlocks converts the pool to blocks of blockSize tokens.
func (cm CostModel) KVPoolBlocks(blockSize int) int64 {
	return int64(cm.KVPoolBytes() / (cm.Model.KVBytesPerToken() * float64(blockSize)))
}

// PrefillWork is one request's share of a prefill step: newTokens processed
// with ctxStart tokens already in place (cached prefix plus earlier chunks).
type PrefillWork struct {
	NewTokens int
	CtxStart  int
}

// StepTime computes the duration of one engine iteration that prefills the
// given chunks and decodes decodeSeqs sequences whose total context length
// is decodeCtxTokens.
func (cm CostModel) StepTime(prefill []PrefillWork, decodeSeqs int, decodeCtxTokens int64) float64 {
	var flops, bytes float64

	// Prefill: dense FLOPs per new token plus quadratic attention over the
	// running context. Cached tokens are absent from NewTokens — that is the
	// compute saving — but present in CtxStart, which later tokens attend to.
	attnRate := cm.Model.attnFlopsPerTokenPerCtx()
	for _, w := range prefill {
		t := float64(w.NewTokens)
		c := float64(w.CtxStart)
		flops += cm.Model.FlopsPerToken() * t
		flops += attnRate * (c*t + t*t/2)
		bytes += cm.Model.KVBytesPerToken() * t // KV writes
	}

	// Decode: one token per sequence; reads all weights once per step and
	// the full KV context of every decoding sequence.
	if decodeSeqs > 0 {
		flops += cm.Model.FlopsPerToken() * float64(decodeSeqs)
		flops += attnRate * float64(decodeCtxTokens)
		bytes += cm.Model.WeightBytes()
		bytes += cm.Model.KVBytesPerToken() * float64(decodeCtxTokens)
	} else if len(prefill) > 0 {
		bytes += cm.Model.WeightBytes() // prefill also streams weights once
	}

	t := flops / cm.effFLOPS()
	if m := bytes / cm.effBandwidth(); m > t {
		t = m
	}
	return t + cm.overhead()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
