package llmsim

import (
	"testing"
)

// interleavedShared builds requests alternating between two shared prompt
// families: FIFO admits them interleaved (poor adjacency under memory
// pressure), while cache-aware admission groups them.
func interleavedShared(n, promptLen int) []*Request {
	reqs := make([]*Request, n)
	for i := range reqs {
		base := (i % 2) * 1_000_000
		p := seq(base, promptLen)
		// Give each request a distinct tail so prompts are not identical.
		p = append(p, seq(5_000_000+i*100, 16)...)
		reqs[i] = &Request{ID: i, Prompt: p, OutTokens: 2}
	}
	return reqs
}

func TestCacheAwareBeatsFIFOUnderPressure(t *testing.T) {
	mk := func(policy SchedPolicy) Metrics {
		cfg := baseConfig(true)
		// 26 blocks fit one 256-token prompt family (16 shared blocks) plus
		// running tails, but not both families: every cross-family admission
		// evicts the other family's prefix. FIFO alternates families and
		// thrashes; cache-aware admission drains one family first.
		cfg.CapacityOverride = 26
		cfg.MaxBatchSeqs = 4
		cfg.Sched = policy
		m, err := New(cfg).Run(interleavedShared(60, 256))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fifo := mk(FIFO)
	aware := mk(CacheAware)
	if aware.HitRate() <= fifo.HitRate() {
		t.Errorf("cache-aware hit %.2f not above FIFO %.2f", aware.HitRate(), fifo.HitRate())
	}
	if aware.JCT >= fifo.JCT {
		t.Errorf("cache-aware JCT %.1f not below FIFO %.1f", aware.JCT, fifo.JCT)
	}
}

func TestCacheAwareCompletesAllRequests(t *testing.T) {
	cfg := baseConfig(true)
	cfg.Sched = CacheAware
	cfg.Lookahead = 8
	reqs := interleavedShared(40, 128)
	m, err := New(cfg).Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.DecodeTokens != 80 {
		t.Errorf("decode tokens = %d, want 80", m.DecodeTokens)
	}
	for _, r := range reqs {
		if r.EndTime <= 0 {
			t.Fatalf("request %d never completed", r.ID)
		}
	}
}

func TestCacheAwareDeterministic(t *testing.T) {
	run := func() Metrics {
		cfg := baseConfig(true)
		cfg.Sched = CacheAware
		m, err := New(cfg).Run(interleavedShared(30, 200))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.JCT != b.JCT || a.MatchedTokens != b.MatchedTokens {
		t.Error("cache-aware scheduling nondeterministic")
	}
}

func TestFIFOUnaffectedByLookahead(t *testing.T) {
	mk := func(look int) Metrics {
		cfg := baseConfig(true)
		cfg.Lookahead = look
		m, err := New(cfg).Run(interleavedShared(20, 100))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := mk(1), mk(100); a.JCT != b.JCT {
		t.Error("FIFO results depend on lookahead")
	}
}

func TestLatencyPercentilesOrdered(t *testing.T) {
	m, err := New(baseConfig(true)).Run(mkReqs(50, 300, 4, false))
	if err != nil {
		t.Fatal(err)
	}
	if !(m.P50Latency <= m.P95Latency && m.P95Latency <= m.P99Latency) {
		t.Errorf("percentiles out of order: %f %f %f", m.P50Latency, m.P95Latency, m.P99Latency)
	}
	if m.P50Latency <= 0 {
		t.Error("P50 missing")
	}
	if m.P99Latency > m.JCT {
		t.Errorf("P99 %.2f exceeds JCT %.2f", m.P99Latency, m.JCT)
	}
	if m.MeanLatency <= 0 || m.MeanLatency > m.JCT {
		t.Errorf("mean latency %.2f implausible", m.MeanLatency)
	}
}
