package llmsim

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one line of the engine's JSONL event log. Events carry the
// virtual clock, so a trace replays the run exactly; the trace is how we
// debugged the cache-pressure effects the paper describes qualitatively.
type TraceEvent struct {
	// Time is the virtual clock in seconds.
	Time float64 `json:"t"`
	// Kind is "admit", "step", or "finish".
	Kind string `json:"kind"`
	// Req is the request ID for admit/finish events.
	Req int `json:"req,omitempty"`
	// Matched reports cached prompt tokens at admission.
	Matched int `json:"matched,omitempty"`
	// Prompt is the prompt length at admission.
	Prompt int `json:"prompt,omitempty"`
	// Running / PrefillTokens / DecodeSeqs describe a step.
	Running       int `json:"running,omitempty"`
	PrefillTokens int `json:"prefill,omitempty"`
	DecodeSeqs    int `json:"decode,omitempty"`
	// UsedBlocks is the KV pool occupancy after the event.
	UsedBlocks int64 `json:"blocks,omitempty"`
	// Latency is the request latency for finish events.
	Latency float64 `json:"latency,omitempty"`
}

// tracer serializes events to a writer; nil tracer drops them.
type tracer struct {
	w   io.Writer
	enc *json.Encoder
	err error
}

func newTracer(w io.Writer) *tracer {
	if w == nil {
		return nil
	}
	return &tracer{w: w, enc: json.NewEncoder(w)}
}

func (t *tracer) emit(ev TraceEvent) {
	if t == nil || t.err != nil {
		return
	}
	if err := t.enc.Encode(ev); err != nil {
		t.err = fmt.Errorf("llmsim: trace write: %w", err)
	}
}

// Err reports the first trace-write failure, if any.
func (t *tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// ReadTrace parses a JSONL trace back into events (for tests and tools).
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	dec := json.NewDecoder(r)
	var out []TraceEvent
	for dec.More() {
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("llmsim: trace read: %w", err)
		}
		out = append(out, ev)
	}
	return out, nil
}
