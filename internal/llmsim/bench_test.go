package llmsim

import (
	"testing"
)

func BenchmarkEngineSharedWorkload(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(baseConfig(true)).Run(mkReqs(200, 400, 4, true))
		if err != nil {
			b.Fatal(err)
		}
		if m.DecodeTokens == 0 {
			b.Fatal("no work done")
		}
	}
}

func BenchmarkEngineDistinctWorkload(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(baseConfig(true)).Run(mkReqs(200, 400, 4, false)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineNoCache(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(baseConfig(false)).Run(mkReqs(200, 400, 4, true)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineCacheAware(b *testing.B) {
	cfg := baseConfig(true)
	cfg.Sched = CacheAware
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg).Run(interleavedShared(200, 256)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepTime(b *testing.B) {
	cm := CostModel{Model: Llama3_8B, Cluster: SingleL4}
	work := []PrefillWork{{NewTokens: 512, CtxStart: 512}, {NewTokens: 256}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.StepTime(work, 16, 8000)
	}
}
