package llmsim

import (
	"strings"
	"testing"
)

func TestTraceEventsComplete(t *testing.T) {
	var sb strings.Builder
	cfg := baseConfig(true)
	cfg.Trace = &sb
	reqs := mkReqs(8, 100, 2, true)
	m, err := New(cfg).Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	if counts["admit"] != 8 || counts["finish"] != 8 {
		t.Errorf("admit=%d finish=%d, want 8/8", counts["admit"], counts["finish"])
	}
	if int64(counts["step"]) != m.Steps {
		t.Errorf("step events %d != metric steps %d", counts["step"], m.Steps)
	}
}

func TestTraceClockMonotone(t *testing.T) {
	var sb strings.Builder
	cfg := baseConfig(true)
	cfg.Trace = &sb
	if _, err := New(cfg).Run(mkReqs(12, 150, 3, false)); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for i, ev := range events {
		if ev.Time < last {
			t.Fatalf("event %d: clock went backwards (%f < %f)", i, ev.Time, last)
		}
		last = ev.Time
	}
}

func TestTraceFinishMatchesRequests(t *testing.T) {
	var sb strings.Builder
	cfg := baseConfig(true)
	cfg.Trace = &sb
	reqs := mkReqs(5, 80, 2, false)
	if _, err := New(cfg).Run(reqs); err != nil {
		t.Fatal(err)
	}
	events, _ := ReadTrace(strings.NewReader(sb.String()))
	byReq := map[int]TraceEvent{}
	for _, ev := range events {
		if ev.Kind == "finish" {
			byReq[ev.Req] = ev
		}
	}
	for _, r := range reqs {
		ev, ok := byReq[r.ID]
		if !ok {
			t.Fatalf("request %d has no finish event", r.ID)
		}
		if got, want := ev.Latency, r.EndTime-r.StartTime; got != want {
			t.Errorf("request %d: trace latency %f != %f", r.ID, got, want)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	// nil trace writer must be safe and cost nothing.
	if _, err := New(baseConfig(true)).Run(mkReqs(3, 50, 1, false)); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json")); err == nil {
		t.Error("garbage trace accepted")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, strings.NewReader("").UnreadByte() // any non-nil error
}

func TestTraceWriteFailureSurfaces(t *testing.T) {
	cfg := baseConfig(true)
	cfg.Trace = failWriter{}
	if _, err := New(cfg).Run(mkReqs(2, 50, 1, false)); err == nil {
		t.Error("trace write failure swallowed")
	}
}
