package core

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

func TestGGRWindowedVerifies(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	tb := randomTable(r, 57, 4, 3)
	for _, w := range []int{1, 7, 10, 57, 100, 0} {
		res := GGRWindowed(tb, GGROptions{LenOf: table.CharLen}, w)
		if err := Verify(tb, res.Schedule); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if got := PHC(res.Schedule, table.CharLen); got != res.PHC {
			t.Errorf("window %d: reported PHC %d != recomputed %d", w, res.PHC, got)
		}
	}
}

func TestGGRWindowedDegeneratesToGGR(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	tb := randomTable(r, 30, 3, 2)
	full := GGR(tb, GGROptions{LenOf: table.CharLen})
	win := GGRWindowed(tb, GGROptions{LenOf: table.CharLen}, 0)
	if win.PHC != full.PHC {
		t.Errorf("window 0 PHC %d != plain GGR %d", win.PHC, full.PHC)
	}
	winBig := GGRWindowed(tb, GGROptions{LenOf: table.CharLen}, 1000)
	if winBig.PHC != full.PHC {
		t.Errorf("oversized window PHC %d != plain GGR %d", winBig.PHC, full.PHC)
	}
}

func TestGGRWindowedMonotoneInWindow(t *testing.T) {
	// Larger windows see more rows at once, so PHC should not get much
	// worse; exact monotonicity is not guaranteed (greedy), but the full
	// window must beat tiny windows on a heavily grouped table.
	tb := fig1bTable(20) // 60 rows, strong group structure
	tiny := GGRWindowed(tb, GGROptions{LenOf: table.CharLen}, 3)
	full := GGRWindowed(tb, GGROptions{LenOf: table.CharLen}, 60)
	if full.PHC <= tiny.PHC {
		t.Errorf("full window PHC %d not above window-3 PHC %d", full.PHC, tiny.PHC)
	}
}

func TestGGRWindowedKeepsSources(t *testing.T) {
	tb := fig1aTable(10, 3)
	res := GGRWindowed(tb, GGROptions{LenOf: table.CharLen}, 4)
	seen := map[int]bool{}
	for _, r := range res.Schedule.Rows {
		if seen[r.Source] {
			t.Fatalf("source %d duplicated", r.Source)
		}
		seen[r.Source] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d sources covered", len(seen))
	}
}
