package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/table"
)

func TestOPHRFig1a(t *testing.T) {
	n, m := 8, 4
	tb := fig1aTable(n, m)
	res, err := OPHR(tb, OPHROptions{LenOf: table.UnitLen})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tb, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if want := int64((n - 1) * (m - 1)); res.PHC != want {
		t.Errorf("OPHR PHC = %d, want %d", res.PHC, want)
	}
}

func TestOPHRFig1b(t *testing.T) {
	x := 4
	tb := fig1bTable(x)
	res, err := OPHR(tb, OPHROptions{LenOf: table.UnitLen})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tb, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * (x - 1)); res.PHC != want {
		t.Errorf("OPHR PHC = %d, want %d", res.PHC, want)
	}
}

func TestOPHRBaseCases(t *testing.T) {
	empty := table.New("a")
	res, err := OPHR(empty, OPHROptions{})
	if err != nil || res.PHC != 0 || len(res.Schedule.Rows) != 0 {
		t.Errorf("empty: %v %+v", err, res)
	}

	single := table.New("a", "b")
	single.MustAppendRow("x", "y")
	res, err = OPHR(single, OPHROptions{})
	if err != nil || res.PHC != 0 || len(res.Schedule.Rows) != 1 {
		t.Errorf("single row: %v %+v", err, res)
	}

	col := table.New("only")
	col.MustAppendRow("aa")
	col.MustAppendRow("bb")
	col.MustAppendRow("aa")
	res, err = OPHR(col, OPHROptions{LenOf: table.CharLen})
	if err != nil {
		t.Fatal(err)
	}
	if res.PHC != 4 {
		t.Errorf("single column PHC = %d, want 4", res.PHC)
	}
}

func TestOPHRBudgetExhaustion(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tb := randomTable(r, 12, 4, 3)
	_, err := OPHR(tb, OPHROptions{LenOf: table.CharLen, MaxNodes: 10})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestOPHRDominatesGGR(t *testing.T) {
	// On random small tables the exact solver's recursion value must be at
	// least the greedy's (GGR's candidate moves are a subset of OPHR's).
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(8)
		m := 1 + r.Intn(4)
		tb := randomTable(r, n, m, 1+r.Intn(3))
		opt, err := OPHR(tb, OPHROptions{LenOf: table.CharLen})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Verify(tb, opt.Schedule); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		greedy := GGR(tb, GGROptions{LenOf: table.CharLen, UseFDs: false})
		if opt.Estimate < greedy.Estimate {
			t.Errorf("trial %d (%dx%d): OPHR estimate %d < GGR estimate %d",
				trial, n, m, opt.Estimate, greedy.Estimate)
		}
		if opt.PHC < opt.Estimate {
			t.Errorf("trial %d: exact %d below estimate %d", trial, opt.PHC, opt.Estimate)
		}
		// The optimal schedule should never lose to the naive ordering.
		if orig := PHC(Original(tb), table.CharLen); opt.PHC < orig {
			t.Errorf("trial %d: OPHR %d < original %d", trial, opt.PHC, orig)
		}
	}
}

func TestOPHRMatchesGGRWithPerfectFDs(t *testing.T) {
	// One field determines all others: the paper notes GGR is optimal here
	// (Sec. 4.2.3). Build id -> (name, kind) with repeated ids.
	tb := table.New("id", "name", "kind")
	rows := []struct{ id, name, kind string }{
		{"a", "alpha", "k1"}, {"b", "beta", "k2"}, {"a", "alpha", "k1"},
		{"c", "gamma", "k3"}, {"b", "beta", "k2"}, {"a", "alpha", "k1"},
	}
	for _, r := range rows {
		tb.MustAppendRow(r.id, r.name, r.kind)
	}
	fds := table.NewFDSet()
	fds.AddGroup("id", "name", "kind")
	if err := tb.SetFDs(fds); err != nil {
		t.Fatal(err)
	}
	if err := fds.Validate(tb); err != nil {
		t.Fatal(err)
	}
	opt, err := OPHR(tb, OPHROptions{LenOf: table.CharLen})
	if err != nil {
		t.Fatal(err)
	}
	greedy := GGR(tb, GGROptions{LenOf: table.CharLen, UseFDs: true})
	if greedy.PHC != opt.PHC {
		t.Errorf("GGR with covering FDs %d != OPHR %d", greedy.PHC, opt.PHC)
	}
}

func TestOPHRDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tb := randomTable(r, 8, 3, 2)
	a, err := OPHR(tb, OPHROptions{LenOf: table.CharLen})
	if err != nil {
		t.Fatal(err)
	}
	b, err := OPHR(tb, OPHROptions{LenOf: table.CharLen})
	if err != nil {
		t.Fatal(err)
	}
	if a.PHC != b.PHC {
		t.Fatal("OPHR not deterministic")
	}
	for i := range a.Schedule.Rows {
		if a.Schedule.Rows[i].Source != b.Schedule.Rows[i].Source {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestOPHRPicksLongValueGroups(t *testing.T) {
	// Two groups of equal size; one has a much longer shared value. The
	// quadratic objective must favor scheduling around the long value.
	tb := table.New("short", "long")
	tb.MustAppendRow("s", "this-is-a-long-shared-value")
	tb.MustAppendRow("s", "this-is-a-long-shared-value")
	tb.MustAppendRow("t", "another-long-shared-value!!")
	tb.MustAppendRow("t", "another-long-shared-value!!")
	res, err := OPHR(tb, OPHROptions{LenOf: table.CharLen})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: group by long value (27² per hit) and still match the short
	// field inside each group (1² per hit): 2 × (729 + 1) = 1460.
	if res.PHC != 1460 {
		t.Errorf("PHC = %d, want 1460", res.PHC)
	}
}
