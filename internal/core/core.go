package core
