package core

import (
	"sort"

	"repro/internal/table"
)

// GGROptions configures Greedy Group Recursion (Sec. 4.2).
type GGROptions struct {
	// LenOf measures cell values; defaults to table.CharLen.
	LenOf table.LenFunc
	// UseFDs enables functional-dependency inference (Sec. 4.2.1). When a
	// group value is selected in field c, every field in c's FD equivalence
	// class is pulled into the prefix alongside c and removed from the
	// recursion.
	UseFDs bool
	// MaxRowDepth bounds the row-wise recursion (splitting off a group's
	// complement); MaxColDepth bounds the column-wise recursion (descending
	// into a group with the matched columns removed). Depth 0 disables the
	// bound. The paper's evaluation uses row depth 4 and column depth 2
	// (Sec. 6.5).
	MaxRowDepth int
	MaxColDepth int
	// MinHitCount stops recursion when the best group's HITCOUNT falls below
	// this threshold (the paper's 0.1M early-stopping threshold). Recursion
	// always stops when no group has a positive hit count.
	MinHitCount int64
	// Stats, when non-nil, replaces per-subtable statistics scans in the
	// fallback ordering with precomputed whole-table statistics, mirroring
	// how a database would use catalog stats instead of rescanning.
	Stats *table.Stats
}

// DefaultGGROptions returns the configuration used in the paper's end-to-end
// evaluation (Sec. 6.5): row depth 4, column depth 2, 0.1M hit-count
// threshold, FDs on.
func DefaultGGROptions(lenOf table.LenFunc) GGROptions {
	return GGROptions{
		LenOf:       lenOf,
		UseFDs:      true,
		MaxRowDepth: 4,
		MaxColDepth: 2,
		MinHitCount: 100_000,
	}
}

// ExhaustiveGGROptions disables early stopping so the greedy recursion runs
// to the base cases. Used for small tables and for comparing against OPHR.
func ExhaustiveGGROptions(lenOf table.LenFunc) GGROptions {
	return GGROptions{LenOf: lenOf, UseFDs: true}
}

// Result is the output of a reordering solver.
type Result struct {
	// Schedule is the reordered list of tuples.
	Schedule *Schedule
	// Estimate is the solver's own PHC accounting (S in Algorithm 1). For
	// GGR with exact FDs this equals PHC; with approximate FDs it may
	// overestimate.
	Estimate int64
	// PHC is the exact prefix hit count of Schedule under Eq. 1–2.
	PHC int64
}

// GGR runs Greedy Group Recursion (Algorithm 1) over t and returns the
// reordered schedule. Functional dependencies are taken from t.FDs().
//
// Two places deviate deliberately from the paper's pseudocode, both
// documented here because Algorithm 1 as printed contains evident typos:
//
//  1. Line 29 prefixes the selected value onto L_A (the complement's rows)
//     while indexing over |R_v|; the intent, per Fig. 2 and the surrounding
//     prose, is to prefix the matched group's cells onto L_B (the group's
//     rows, which had those columns removed) and then append the complement.
//  2. Line 6 sums plain lengths of FD-inferred columns while the objective
//     (Eq. 2) is quadratic; we square the inferred lengths so the greedy
//     score estimates actual PHC contribution. With exact FDs the group's
//     inferred values are constant and the estimate is exact.
func GGR(t *table.Table, opt GGROptions) *Result {
	if opt.LenOf == nil {
		opt.LenOf = table.CharLen
	}
	s := &ggrSolver{t: t, opt: opt, lens: newLens(opt.LenOf)}
	if opt.UseFDs {
		s.fds = t.FDs()
	} else {
		s.fds = table.NewFDSet()
	}
	est, rows := s.rec(fullView(t), 0, 0)
	sched := &Schedule{Rows: rows}
	res := &Result{Schedule: sched, Estimate: est, PHC: PHC(sched, s.lens.fn())}

	// Safeguard: the recursion's greedy splits can occasionally lose to the
	// plain statistics ordering (value groups chosen early may scatter
	// correlations the fixed order would have kept together). The fallback is
	// one cheap extra pass, so never return a schedule worse than it.
	if t.NumRows() > 1 && t.NumCols() > 1 {
		fbPHC, fbRows := s.fallback(fullView(t))
		if fbPHC > res.PHC {
			fb := &Schedule{Rows: fbRows}
			res = &Result{Schedule: fb, Estimate: fbPHC, PHC: PHC(fb, s.lens.fn())}
		}
	}
	return res
}

type ggrSolver struct {
	t    *table.Table
	opt  GGROptions
	lens *lens
	fds  *table.FDSet
}

// rec is the recursive case of Algorithm 1 over a sub-table view.
// rowDepth counts row-wise splits (the complement branch), colDepth counts
// column-wise splits (the group branch).
func (g *ggrSolver) rec(v view, rowDepth, colDepth int) (int64, []Row) {
	switch {
	case len(v.rows) == 0:
		return 0, nil
	case len(v.cols) == 0:
		// All columns consumed by prefixes up the stack: rows are empty
		// tuples here; their hits were accounted by the parent.
		out := make([]Row, len(v.rows))
		for i, src := range v.rows {
			out[i] = Row{Source: src}
		}
		return 0, out
	case len(v.rows) == 1:
		pos := identityPositions(len(v.cols))
		return 0, emitFixed(v, pos)
	case len(v.cols) == 1:
		return g.singleColumn(v)
	}
	if g.stopped(rowDepth, colDepth) {
		return g.fallback(v)
	}

	bestHC, bestCol, bestVal, bestCols := int64(-1), -1, "", []int(nil)
	for ci := range v.cols {
		hcByValue, colSet := g.hitCounts(v, ci)
		for _, cand := range hcByValue {
			if cand.hc > bestHC {
				bestHC, bestCol, bestVal, bestCols = cand.hc, ci, cand.value, colSet
			}
		}
	}
	if bestHC <= 0 || bestHC < g.opt.MinHitCount {
		return g.fallback(v)
	}

	// Split rows into the matched group R_v and its complement.
	baseCol := v.cols[bestCol]
	var group, rest []int
	for _, r := range v.rows {
		if g.t.Cell(r, baseCol) == bestVal {
			group = append(group, r)
		} else {
			rest = append(rest, r)
		}
	}
	// Column set for the group branch: active columns minus the matched
	// column and its FD-inferred columns.
	drop := make(map[int]bool, len(bestCols))
	for _, p := range bestCols {
		drop[v.cols[p]] = true
	}
	var groupCols []int
	for _, c := range v.cols {
		if !drop[c] {
			groupCols = append(groupCols, c)
		}
	}

	restS, restRows := g.rec(view{t: g.t, rows: rest, cols: v.cols}, rowDepth+1, colDepth)
	grpS, grpRows := g.rec(view{t: g.t, rows: group, cols: groupCols}, rowDepth, colDepth+1)

	// Prefix the matched cells (the chosen column first, then its inferred
	// columns in active order) onto every group row, then append the
	// complement's schedule.
	prefixCols := make([]int, len(bestCols))
	prefixNames := make([]string, len(bestCols))
	for i, p := range bestCols {
		prefixCols[i] = v.cols[p]
		prefixNames[i] = g.t.Columns()[v.cols[p]]
	}
	out := make([]Row, 0, len(v.rows))
	for _, r := range grpRows {
		cells := make([]Cell, 0, len(prefixCols)+len(r.Cells))
		for i, c := range prefixCols {
			cells = append(cells, Cell{Field: prefixNames[i], Value: g.t.Cell(r.Source, c)})
		}
		cells = append(cells, r.Cells...)
		out = append(out, Row{Source: r.Source, Cells: cells})
	}
	out = append(out, restRows...)
	return restS + grpS + bestHC, out
}

// stopped reports whether early stopping applies at this depth.
func (g *ggrSolver) stopped(rowDepth, colDepth int) bool {
	if g.opt.MaxRowDepth > 0 && rowDepth >= g.opt.MaxRowDepth {
		return true
	}
	if g.opt.MaxColDepth > 0 && colDepth >= g.opt.MaxColDepth {
		return true
	}
	return false
}

type hcCandidate struct {
	value string
	hc    int64
}

// hitCounts implements HITCOUNT (Algorithm 1 lines 3–8) for every distinct
// value of the view column at position ci, sharing the per-column scan. It
// returns the candidates in first-appearance order plus the prefix column
// positions ([c] + inferred, as positions into v.cols).
func (g *ggrSolver) hitCounts(v view, ci int) ([]hcCandidate, []int) {
	baseCol := v.cols[ci]
	colName := g.t.Columns()[baseCol]

	// Resolve FD-inferred columns to view positions (only active ones).
	colSet := []int{ci}
	if inferred := g.fds.Inferred(colName); len(inferred) > 0 {
		namePos := make(map[string]int, len(v.cols))
		for p, c := range v.cols {
			namePos[g.t.Columns()[c]] = p
		}
		for _, name := range inferred {
			if p, ok := namePos[name]; ok {
				colSet = append(colSet, p)
			}
		}
	}

	type agg struct {
		count    int64
		infSqSum int64 // sum over rows in the group of Σ_{c'} len(c')²
	}
	groups := make(map[string]*agg)
	var order []string
	for _, r := range v.rows {
		val := g.t.Cell(r, baseCol)
		a, ok := groups[val]
		if !ok {
			a = &agg{}
			groups[val] = a
			order = append(order, val)
		}
		a.count++
		for _, p := range colSet[1:] {
			a.infSqSum += g.lens.sq(g.t.Cell(r, v.cols[p]))
		}
	}
	out := make([]hcCandidate, 0, len(order))
	for _, val := range order {
		a := groups[val]
		totLen := g.lens.sq(val)
		if a.count > 0 {
			totLen += a.infSqSum / a.count // average inferred contribution
		}
		out = append(out, hcCandidate{value: val, hc: totLen * (a.count - 1)})
	}
	return out, colSet
}

// singleColumn is the one-field base case: group identical values by sorting
// and sum len(v)² × (count−1) per distinct value.
func (g *ggrSolver) singleColumn(v view) (int64, []Row) {
	rows := append([]int(nil), v.rows...)
	sortRowsByCols(g.t, rows, []int{v.cols[0]})
	var s int64
	counts := make(map[string]int64)
	for _, r := range rows {
		counts[g.t.Cell(r, v.cols[0])]++
	}
	for val, c := range counts {
		s += g.lens.sq(val) * (c - 1)
	}
	sorted := view{t: g.t, rows: rows, cols: v.cols}
	return s, emitFixed(sorted, []int{0})
}

// fallback is the table-statistics path (Sec. 4.2.2): choose a fixed field
// order for the sub-table, sort rows lexicographically under it, and report
// the exact PHC of the resulting block.
//
// When catalog statistics are supplied (opt.Stats) the paper's score
// ordering (avg(len)² weighted by repetition) is used without scanning.
// Otherwise the solver runs a chain-aware greedy: because a prefix hit
// requires ALL earlier fields to match (Eq. 2), field f's value is only
// reachable with the probability that the sorted prefix tuple still matches,
// so each position is filled by the field maximizing
//
//	avg(len²) × survival,  survival = 1 − (distinct prefix∘f tuples)/rows.
//
// This keeps entity-correlated fields together ahead of per-row noise (the
// failure mode of the static score on wide tables like PDMX) at O(m·k·n)
// for the k ≲ m positions until the chain dies.
func (g *ggrSolver) fallback(v view) (int64, []Row) {
	var pos []int
	if g.opt.Stats != nil {
		pos = g.scoreOrder(v)
	} else {
		pos = g.chainOrder(v)
	}
	rows := append([]int(nil), v.rows...)
	baseCols := make([]int, len(pos))
	for i, p := range pos {
		baseCols[i] = v.cols[p]
	}
	sortRowsByCols(g.t, rows, baseCols)
	out := emitFixed(view{t: g.t, rows: rows, cols: v.cols}, pos)
	return phcOfRows(out, g.lens), out
}

// scoreOrder ranks the view's columns by the catalog-statistics score.
func (g *ggrSolver) scoreOrder(v view) []int {
	names := make([]string, len(v.cols))
	for i, c := range v.cols {
		names[i] = g.t.Columns()[c]
	}
	ordered := g.opt.Stats.OrderByScore(names)
	namePos := make(map[string]int, len(names))
	for p, n := range names {
		namePos[n] = p
	}
	pos := make([]int, len(ordered))
	for i, n := range ordered {
		pos[i] = namePos[n]
	}
	return pos
}

// chainOrder computes the chain-aware greedy field order (positions into
// v.cols). Once the expected chain survival drops below deadChain the
// remaining fields are unreachable, so they are appended by descending
// average squared length (longest values first, harmless either way).
func (g *ggrSolver) chainOrder(v view) []int {
	const deadChain = 0.02
	n := len(v.rows)
	if n == 0 {
		return identityPositions(len(v.cols))
	}
	// Mean squared length per candidate column.
	avgSq := make([]float64, len(v.cols))
	for p, c := range v.cols {
		var sum float64
		for _, r := range v.rows {
			sum += float64(g.lens.sq(g.t.Cell(r, c)))
		}
		avgSq[p] = sum / float64(n)
	}

	groupID := make([]int32, n) // prefix-tuple group per row; all start equal
	remaining := make([]int, len(v.cols))
	for i := range remaining {
		remaining[i] = i
	}
	var order []int
	groups := 1
	type key struct {
		g int32
		v string
	}
	for len(remaining) > 0 {
		alive := float64(n - groups) // rows still matching their predecessor
		if alive/float64(n) < deadChain {
			break // chain effectively dead: order the tail statically
		}
		bestIdx, bestGain, bestPairs := -1, -1.0, 0
		for idx, p := range remaining {
			seen := make(map[key]int32, groups*2)
			for ri, r := range v.rows {
				k := key{g: groupID[ri], v: g.t.Cell(r, v.cols[p])}
				if _, ok := seen[k]; !ok {
					seen[k] = int32(len(seen))
				}
			}
			pairs := len(seen)
			// Conditional survival: of the pairs still alive, the fraction
			// this field would not break. The odds weighting implements the
			// pairwise-exchange optimality criterion (put f before g iff
			// sq_f·s_f·(1−s_g) > sq_g·s_g·(1−s_f)): fields that would kill
			// the chain sink below any field that keeps it alive, no matter
			// how long their values are.
			s := float64(n-pairs) / alive
			if s < 0 {
				s = 0
			}
			gain := avgSq[p] * s / (1 - s + 1/float64(n))
			if gain > bestGain {
				bestGain, bestIdx, bestPairs = gain, idx, pairs
			}
		}
		if bestIdx < 0 || bestGain <= 0 {
			break
		}
		p := remaining[bestIdx]
		// Re-derive the refined group ids for the chosen column.
		seen := make(map[key]int32, bestPairs)
		for ri, r := range v.rows {
			k := key{g: groupID[ri], v: g.t.Cell(r, v.cols[p])}
			id, ok := seen[k]
			if !ok {
				id = int32(len(seen))
				seen[k] = id
			}
			groupID[ri] = id
		}
		groups = bestPairs
		order = append(order, p)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	// Tail: statically by descending avg squared length, ties by position.
	sort.SliceStable(remaining, func(a, b int) bool {
		return avgSq[remaining[a]] > avgSq[remaining[b]]
	})
	return append(order, remaining...)
}

// subStats computes column statistics restricted to a view.
func subStats(t *table.Table, v view, l *lens) *table.Stats {
	sub := table.New(viewColNames(t, v)...)
	for _, r := range v.rows {
		cells := make([]string, len(v.cols))
		for i, c := range v.cols {
			cells[i] = t.Cell(r, c)
		}
		sub.MustAppendRow(cells...)
	}
	return table.ComputeStats(sub, l.fn())
}

func viewColNames(t *table.Table, v view) []string {
	names := make([]string, len(v.cols))
	for i, c := range v.cols {
		names[i] = t.Columns()[c]
	}
	return names
}

func identityPositions(n int) []int {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	return pos
}
