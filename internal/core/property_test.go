package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

// entityTable builds a table with hierarchical entity structure and an exact
// FD between the entity id and its long attribute — the shape real joined
// relations have and the structure GGR is designed for.
func entityTable(r *rand.Rand, rows, entities int) *table.Table {
	type entity struct{ id, attr string }
	ents := make([]entity, entities)
	for i := range ents {
		ents[i] = entity{
			id:   fmt.Sprintf("id-%04d", i),
			attr: fmt.Sprintf("attribute-%04d-%0*d", i, 5+r.Intn(30), r.Intn(99999)),
		}
	}
	t := table.New("payload", "entity", "attr", "flag")
	for i := 0; i < rows; i++ {
		e := ents[r.Intn(entities)]
		flag := "no"
		if r.Intn(2) == 0 {
			flag = "yes"
		}
		t.MustAppendRow(fmt.Sprintf("payload-%d-%d", i, r.Int63()), e.id, e.attr, flag)
	}
	fds := table.NewFDSet()
	fds.AddGroup("entity", "attr")
	if err := t.SetFDs(fds); err != nil {
		panic(err)
	}
	return t
}

func TestGGRPropertyEntityTables(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		rows := 2 + r.Intn(60)
		ents := 1 + r.Intn(8)
		tb := entityTable(r, rows, ents)
		if err := tb.FDs().Validate(tb); err != nil {
			t.Fatalf("trial %d: generator broke its own FD: %v", trial, err)
		}
		res := GGR(tb, GGROptions{LenOf: table.CharLen, UseFDs: true})
		if err := Verify(tb, res.Schedule); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// With exact FDs the estimate must not exceed the exact PHC.
		if res.Estimate > res.PHC {
			t.Fatalf("trial %d: estimate %d > exact %d with exact FDs", trial, res.Estimate, res.PHC)
		}
		// Reordering must beat the original for any table with entity
		// repetition (entities < rows guarantees at least one shared pair).
		if ents < rows/2 {
			orig := PHC(Original(tb), table.CharLen)
			if res.PHC <= orig {
				t.Fatalf("trial %d: GGR PHC %d not above original %d", trial, res.PHC, orig)
			}
		}
	}
}

func TestGGRNeverBelowFallbackQuick(t *testing.T) {
	// The top-level safeguard guarantees GGR >= the chain-aware fixed order.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := randomTable(r, 2+r.Intn(25), 1+r.Intn(5), 1+r.Intn(4))
		ggr := GGR(tb, GGROptions{LenOf: table.CharLen})
		fixed := PHC(BestFixed(tb, table.CharLen), table.CharLen)
		// BestFixed uses the static score order, which the chain-aware
		// fallback dominates on these tables; allow equality.
		return ggr.PHC >= fixed ||
			// Tiny chance the static score wins on degenerate ties; accept a
			// small slack of one unit-length cell.
			ggr.PHC >= fixed-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScheduleRowMultisetPreservedQuick(t *testing.T) {
	// Property: for any random table, the multiset of (field, value) pairs
	// per source row survives scheduling exactly (semantics preservation).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := randomTable(r, 1+r.Intn(20), 1+r.Intn(5), 1+r.Intn(3))
		res := GGR(tb, GGROptions{LenOf: table.CharLen})
		return Verify(tb, res.Schedule) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPHCInvariantUnderLenScaling(t *testing.T) {
	// Doubling every length multiplies PHC by exactly 4 (quadratic
	// objective) — a sharp check of Eq. 2's implementation.
	r := rand.New(rand.NewSource(33))
	tb := randomTable(r, 20, 3, 2)
	s := Original(tb)
	base := PHC(s, table.CharLen)
	doubled := PHC(s, func(v string) int { return 2 * len(v) })
	if doubled != 4*base {
		t.Errorf("PHC(2·len) = %d, want 4×%d", doubled, base)
	}
}

func TestHitsNeverExceedTotal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := randomTable(r, 1+r.Intn(15), 1+r.Intn(4), 1+r.Intn(3))
		res := GGR(tb, GGROptions{LenOf: table.CharLen})
		h := Hits(res.Schedule, table.CharLen)
		return h.Matched >= 0 && h.Matched <= h.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGGRRowOrderGroupsEqualPrefixes(t *testing.T) {
	// Within the schedule, rows with identical first cells should be
	// adjacent (grouping property of the recursion + sorted fallback): count
	// "reappearances" of a first-cell value after a gap.
	r := rand.New(rand.NewSource(35))
	tb := entityTable(r, 60, 5)
	res := GGR(tb, GGROptions{LenOf: table.CharLen})
	seen := map[Cell]bool{}
	var last Cell
	reappear := 0
	for i, row := range res.Schedule.Rows {
		first := row.Cells[0]
		if i > 0 && first != last && seen[first] {
			reappear++
		}
		seen[first] = true
		last = first
	}
	if reappear > 0 {
		t.Errorf("%d first-cell values reappear after a gap; grouping broken", reappear)
	}
}

func TestOPHRMemoizationConsistency(t *testing.T) {
	// Memoized and fresh solves must agree: solving twice with different
	// budgets (forcing different traversal orders) gives identical PHC.
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		tb := randomTable(r, 2+r.Intn(7), 1+r.Intn(3), 1+r.Intn(2))
		a, err := OPHR(tb, OPHROptions{LenOf: table.CharLen})
		if err != nil {
			t.Fatal(err)
		}
		b, err := OPHR(tb, OPHROptions{LenOf: table.CharLen, MaxNodes: 4_999_999})
		if err != nil {
			t.Fatal(err)
		}
		if a.PHC != b.PHC {
			t.Fatalf("trial %d: OPHR PHC differs across runs: %d vs %d", trial, a.PHC, b.PHC)
		}
	}
}
