package core

import (
	"repro/internal/table"
)

// Advice is the advisor's verdict on whether reordering a table is worth the
// solver overhead before any LLM call is made.
type Advice struct {
	// Reorder is the recommendation.
	Reorder bool
	// ExpectedGain estimates the fraction of data tokens that reordering can
	// newly turn into prefix hits (0..1).
	ExpectedGain float64
	// RepeatedTokenShare is the fraction of the table's data tokens living
	// in repeated values — the raw material reordering works with.
	RepeatedTokenShare float64
	// Reason is a one-line human-readable justification.
	Reason string
}

// Advise performs the paper's Sec. 6.5 overhead reasoning from statistics
// alone, without running a solver: reordering pays when a meaningful share
// of the table's tokens sits in repeated values (so grouping can convert
// them to cache hits) that the current layout does not already exploit.
// The scan is one statistics pass — the same cost a database catalog lookup
// would replace.
//
// sampleRows bounds the statistics scan (0 = whole table); the decision uses
// only per-column aggregates so a few thousand rows suffice.
func Advise(t *table.Table, lenOf table.LenFunc, sampleRows int) Advice {
	if lenOf == nil {
		lenOf = table.CharLen
	}
	scan := t
	if sampleRows > 0 && sampleRows < t.NumRows() {
		scan = t.Head(sampleRows)
	}
	if scan.NumRows() < 2 || scan.NumCols() == 0 {
		return Advice{Reason: "fewer than two rows: nothing to share"}
	}
	stats := table.ComputeStats(scan, lenOf)

	// Token mass per column, split into repeated vs unique values.
	var totalMass, repeatedMass float64
	for _, cs := range stats.Cols {
		mass := cs.AvgLen * float64(cs.Rows)
		totalMass += mass
		if cs.Rows > 0 {
			repeatFrac := 1 - float64(cs.Distinct)/float64(cs.Rows)
			repeatedMass += mass * repeatFrac
		}
	}
	if totalMass == 0 {
		return Advice{Reason: "empty cells: nothing to share"}
	}
	repeatedShare := repeatedMass / totalMass

	// How much of that repetition the existing layout already captures:
	// adjacent-row sharing of the original schedule over the sample.
	existing := Hits(Original(scan), lenOf).Rate()

	gain := repeatedShare - existing
	if gain < 0 {
		gain = 0
	}
	// Threshold: the solver costs seconds (Table 5) while queries cost
	// thousands of serving seconds, so even a 5% token gain pays for itself;
	// below that the layout is either repetition-free or already grouped.
	const worthIt = 0.05
	adv := Advice{
		ExpectedGain:       gain,
		RepeatedTokenShare: repeatedShare,
	}
	switch {
	case repeatedShare < worthIt:
		adv.Reason = "almost all token mass is unique; caching cannot help"
	case gain < worthIt:
		adv.Reorder = false
		adv.Reason = "layout already captures the repetition (grouped input)"
	default:
		adv.Reorder = true
		adv.Reason = "significant repeated token mass not exploited by the current layout"
	}
	return adv
}
