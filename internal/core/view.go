package core

import (
	"sort"

	"repro/internal/table"
)

// view is a sub-table: a subset of base rows and base columns, in order.
// Both solvers recurse over views so splitting never copies cell data.
type view struct {
	t    *table.Table
	rows []int // base row indices
	cols []int // base column indices
}

func fullView(t *table.Table) view {
	rows := make([]int, t.NumRows())
	for i := range rows {
		rows[i] = i
	}
	cols := make([]int, t.NumCols())
	for i := range cols {
		cols[i] = i
	}
	return view{t: t, rows: rows, cols: cols}
}

// lens caches value lengths so LenFunc (often a tokenizer pass) runs once
// per distinct value regardless of how often solvers rescan. Relational data
// repeats values heavily, which is the whole premise of the paper, so a
// value-keyed memo is both small and effective.
type lens struct {
	memo  map[string]int64
	lenOf table.LenFunc
}

func newLens(lenOf table.LenFunc) *lens {
	return &lens{memo: make(map[string]int64, 1024), lenOf: lenOf}
}

// of returns the length of a value.
func (l *lens) of(v string) int64 {
	if n, ok := l.memo[v]; ok {
		return n
	}
	n := int64(l.lenOf(v))
	l.memo[v] = n
	return n
}

// sq returns the squared length of a value.
func (l *lens) sq(v string) int64 {
	n := l.of(v)
	return n * n
}

// fn adapts the memo back to a table.LenFunc.
func (l *lens) fn() table.LenFunc {
	return func(v string) int { return int(l.of(v)) }
}

// sortRowsByCols sorts base row indices lexicographically by the given base
// column indices, stably.
func sortRowsByCols(t *table.Table, rows []int, colIdx []int) {
	sort.SliceStable(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		for _, j := range colIdx {
			va, vb := t.Cell(ra, j), t.Cell(rb, j)
			if va != vb {
				return va < vb
			}
		}
		return false
	})
}

// emitFixed builds schedule rows for a view under a fixed view-column order
// given by positions into v.cols.
func emitFixed(v view, colPos []int) []Row {
	colNames := make([]string, len(colPos))
	colBase := make([]int, len(colPos))
	for i, p := range colPos {
		colBase[i] = v.cols[p]
		colNames[i] = v.t.Columns()[v.cols[p]]
	}
	out := make([]Row, len(v.rows))
	for i, src := range v.rows {
		cells := make([]Cell, len(colBase))
		for k, j := range colBase {
			cells[k] = Cell{Field: colNames[k], Value: v.t.Cell(src, j)}
		}
		out[i] = Row{Source: src, Cells: cells}
	}
	return out
}

// phcOfRows computes the exact PHC (Eq. 1–2) of a row list.
func phcOfRows(rows []Row, l *lens) int64 {
	s := Schedule{Rows: rows}
	return PHC(&s, l.fn())
}
