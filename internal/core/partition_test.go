package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/table"
)

// schedulesUnderTest produces a spread of schedule shapes for the partition
// properties: GGR over entity tables (grouped prefixes), the identity
// schedule (groups are runs of equal first cells), and best-fixed ordering.
func schedulesUnderTest(t *testing.T, r *rand.Rand) []*Schedule {
	t.Helper()
	var out []*Schedule
	for trial := 0; trial < 12; trial++ {
		tb := entityTable(r, 2+r.Intn(50), 1+r.Intn(8))
		out = append(out,
			GGR(tb, GGROptions{LenOf: table.CharLen, UseFDs: true}).Schedule,
			Original(tb),
			BestFixed(tb, table.CharLen),
		)
	}
	return out
}

// groupOf maps every source row of s to the index of its top-level group.
func groupOf(s *Schedule) map[int]int {
	starts := GroupStarts(s)
	bySource := make(map[int]int, len(s.Rows))
	g := -1
	for i, row := range s.Rows {
		if g+1 < len(starts) && starts[g+1] == i {
			g++
		}
		bySource[row.Source] = g
	}
	return bySource
}

// TestPartitionScheduleProperties is the satellite property suite: shard
// concatenation is a permutation of the input, groups are never split, token
// imbalance stays within the greedy bound, cuts never lose hit tokens, and
// n=1 is the identity.
func TestPartitionScheduleProperties(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, s := range schedulesUnderTest(t, r) {
		groups := groupOf(s)
		for _, n := range []int{1, 2, 3, 4, 8, 64} {
			shards, stats := PartitionScheduleStats(s, n, table.CharLen)

			if n == 1 {
				if len(shards) != 1 || shards[0] != s {
					t.Fatalf("n=1 must return the schedule itself, got %d shards", len(shards))
				}
			}
			if len(shards) > n || len(shards) != stats.Shards {
				t.Fatalf("n=%d: %d shards (stats says %d)", n, len(shards), stats.Shards)
			}
			if stats.Groups != len(GroupStarts(s)) {
				t.Fatalf("stats.Groups = %d, GroupStarts found %d", stats.Groups, len(GroupStarts(s)))
			}
			if len(shards) > stats.Groups {
				t.Fatalf("n=%d: %d shards exceed %d groups (a group was split)", n, len(shards), stats.Groups)
			}

			// Permutation: every source row appears exactly once across shards.
			seen := make(map[int]bool, len(s.Rows))
			total := 0
			for _, shard := range shards {
				total += len(shard.Rows)
				for _, row := range shard.Rows {
					if seen[row.Source] {
						t.Fatalf("n=%d: source %d scheduled in two shards", n, row.Source)
					}
					seen[row.Source] = true
				}
			}
			if total != len(s.Rows) {
				t.Fatalf("n=%d: shards hold %d rows, schedule has %d", n, total, len(s.Rows))
			}

			// Shards keep schedule order (groups in ascending index, rows in
			// schedule order within them) with cells untouched.
			for si, shard := range shards {
				lastIdx := -1
				for _, row := range shard.Rows {
					idx := sourceIndex(s, row.Source)
					if idx <= lastIdx {
						t.Fatalf("n=%d shard %d: schedule order not preserved", n, si)
					}
					lastIdx = idx
					if !reflect.DeepEqual(row.Cells, s.Rows[idx].Cells) {
						t.Fatalf("n=%d shard %d: cells of source %d changed", n, si, row.Source)
					}
				}
			}
			// Groups never split: all rows of one group share a shard.
			assign := make(map[int]int) // group -> shard
			for si, shard := range shards {
				for _, row := range shard.Rows {
					g := groups[row.Source]
					if prev, ok := assign[g]; ok && prev != si {
						t.Fatalf("n=%d: group %d split across shards %d and %d", n, g, prev, si)
					}
					assign[g] = si
				}
			}

			// Greedy balance bound: max shard load <= total/shards + max
			// group weight.
			if len(shards) > 1 {
				var totalTok, maxShard int64
				for _, w := range stats.ShardTokens {
					totalTok += w
					if w > maxShard {
						maxShard = w
					}
				}
				maxGroup := maxGroupTokens(s, table.CharLen)
				bound := totalTok/int64(len(shards)) + maxGroup
				if maxShard > bound {
					t.Fatalf("n=%d: max shard %d tokens exceeds greedy bound %d (total %d, max group %d)",
						n, maxShard, bound, totalTok, maxGroup)
				}
			}

			// Prefix coherence: cutting at group boundaries never forfeits
			// adjacent-row hit tokens.
			if stats.LostHitTokens > 0 {
				t.Fatalf("n=%d: cuts lost %d hit tokens; group-boundary cuts must be free",
					n, stats.LostHitTokens)
			}
		}
	}
}

func sourceIndex(s *Schedule, source int) int {
	for i, row := range s.Rows {
		if row.Source == source {
			return i
		}
	}
	return -1
}

func maxGroupTokens(s *Schedule, lenOf table.LenFunc) int64 {
	starts := GroupStarts(s)
	var max int64
	for g, start := range starts {
		end := len(s.Rows)
		if g+1 < len(starts) {
			end = starts[g+1]
		}
		if w := scheduleTokens(s.Rows[start:end], lenOf); w > max {
			max = w
		}
	}
	return max
}

// TestGroupStartsBoundaries pins the boundary definition on a hand-built
// schedule: a new group exactly where the first cell changes.
func TestGroupStartsBoundaries(t *testing.T) {
	s := &Schedule{Rows: []Row{
		{Source: 0, Cells: []Cell{{Field: "a", Value: "x"}, {Field: "b", Value: "1"}}},
		{Source: 1, Cells: []Cell{{Field: "a", Value: "x"}, {Field: "b", Value: "2"}}},
		{Source: 2, Cells: []Cell{{Field: "a", Value: "y"}, {Field: "b", Value: "2"}}},
		{Source: 3, Cells: []Cell{{Field: "b", Value: "2"}, {Field: "a", Value: "y"}}}, // field flip: new group
		{Source: 4, Cells: []Cell{{Field: "b", Value: "2"}, {Field: "a", Value: "z"}}},
	}}
	got := GroupStarts(s)
	want := []int{0, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GroupStarts = %v, want %v", got, want)
	}
	if starts := GroupStarts(&Schedule{}); starts != nil {
		t.Fatalf("empty schedule: GroupStarts = %v, want nil", starts)
	}
}

// TestPackGroups pins the packing: bins non-empty, ascending indices, every
// item placed once, deterministic.
func TestPackGroups(t *testing.T) {
	weights := []int64{50, 10, 30, 30, 5, 40}
	bins := PackGroups(weights, 3)
	if len(bins) != 3 {
		t.Fatalf("got %d bins, want 3", len(bins))
	}
	placed := map[int]bool{}
	for _, bin := range bins {
		if len(bin) == 0 {
			t.Fatal("empty bin")
		}
		for i, item := range bin {
			if i > 0 && item <= bin[i-1] {
				t.Fatalf("bin %v not ascending", bin)
			}
			if placed[item] {
				t.Fatalf("item %d placed twice", item)
			}
			placed[item] = true
		}
	}
	if len(placed) != len(weights) {
		t.Fatalf("placed %d items, want %d", len(placed), len(weights))
	}
	if !reflect.DeepEqual(bins, PackGroups(weights, 3)) {
		t.Fatal("PackGroups not deterministic")
	}
	if got := PackGroups(weights, 100); len(got) != len(weights) {
		t.Fatalf("bins capped at item count: got %d, want %d", len(got), len(weights))
	}
	if PackGroups(nil, 4) != nil {
		t.Fatal("no items must give no bins")
	}
}
