package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// fig1aTable reproduces Fig. 1a: the first field holds unique values, the
// remaining m−1 fields hold one constant value each (all lengths 1).
func fig1aTable(n, m int) *table.Table {
	cols := make([]string, m)
	for j := range cols {
		cols[j] = fmt.Sprintf("f%d", j)
	}
	t := table.New(cols...)
	for i := 0; i < n; i++ {
		cells := make([]string, m)
		cells[0] = fmt.Sprintf("u%d", i)
		for j := 1; j < m; j++ {
			cells[j] = string(rune('A' + j))
		}
		t.MustAppendRow(cells...)
	}
	return t
}

func TestGGRFig1a(t *testing.T) {
	n, m := 10, 5
	tb := fig1aTable(n, m)
	// Fixed original ordering: the unique first field blocks every prefix.
	if got := PHC(Original(tb), table.UnitLen); got != 0 {
		t.Fatalf("original PHC = %d, want 0", got)
	}
	res := GGR(tb, GGROptions{LenOf: table.UnitLen, UseFDs: true})
	if err := Verify(tb, res.Schedule); err != nil {
		t.Fatal(err)
	}
	want := int64((n - 1) * (m - 1))
	if res.PHC != want {
		t.Errorf("GGR PHC = %d, want (n-1)(m-1) = %d", res.PHC, want)
	}
}

// fig1bTable reproduces Fig. 1b: 3x rows, 3 fields; field i has one group of
// x identical values on rows [i·x, (i+1)·x), all other cells unique.
func fig1bTable(x int) *table.Table {
	t := table.New("f0", "f1", "f2")
	uid := 0
	fresh := func() string { uid++; return fmt.Sprintf("u%d", uid) }
	for g := 0; g < 3; g++ {
		for i := 0; i < x; i++ {
			cells := []string{fresh(), fresh(), fresh()}
			cells[g] = string(rune('G' + g)) // the shared group value
			t.MustAppendRow(cells...)
		}
	}
	return t
}

func TestGGRFig1b(t *testing.T) {
	x := 6
	tb := fig1bTable(x)
	// Any fixed field ordering is stuck at x−1 hits: it can exploit only the
	// one group living in whichever field is placed first.
	best := BestFixed(tb, table.UnitLen)
	if got := PHC(best, table.UnitLen); got != int64(x-1) {
		t.Fatalf("best fixed PHC = %d, want %d", got, x-1)
	}
	res := GGR(tb, GGROptions{LenOf: table.UnitLen})
	if err := Verify(tb, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * (x - 1)); res.PHC != want {
		t.Errorf("GGR PHC = %d, want 3(x-1) = %d", res.PHC, want)
	}
}

func TestGGRSingleRowAndColumn(t *testing.T) {
	one := table.New("a", "b")
	one.MustAppendRow("1", "2")
	res := GGR(one, GGROptions{LenOf: table.CharLen})
	if res.PHC != 0 || len(res.Schedule.Rows) != 1 {
		t.Errorf("single row: PHC=%d rows=%d", res.PHC, len(res.Schedule.Rows))
	}

	col := table.New("only")
	col.MustAppendRow("vv")
	col.MustAppendRow("ww")
	col.MustAppendRow("vv")
	res = GGR(col, GGROptions{LenOf: table.CharLen})
	if err := Verify(col, res.Schedule); err != nil {
		t.Fatal(err)
	}
	// Sorted: vv, vv, ww -> one hit of len 2 squared.
	if res.PHC != 4 {
		t.Errorf("single column PHC = %d, want 4", res.PHC)
	}
}

func TestGGREmptyTable(t *testing.T) {
	tb := table.New("a")
	res := GGR(tb, GGROptions{LenOf: table.CharLen})
	if res.PHC != 0 || len(res.Schedule.Rows) != 0 {
		t.Errorf("empty table: PHC=%d rows=%d", res.PHC, len(res.Schedule.Rows))
	}
}

func TestGGRUsesFDs(t *testing.T) {
	// id ↔ name: selecting the id group must pull name into the prefix.
	tb := table.New("review", "id", "name")
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("id%d", i%2)
		name := fmt.Sprintf("name-%d", i%2)
		tb.MustAppendRow(fmt.Sprintf("unique review text %d", i), id, name)
	}
	fds := table.NewFDSet()
	fds.AddGroup("id", "name")
	if err := tb.SetFDs(fds); err != nil {
		t.Fatal(err)
	}
	res := GGR(tb, GGROptions{LenOf: table.CharLen, UseFDs: true})
	if err := Verify(tb, res.Schedule); err != nil {
		t.Fatal(err)
	}
	// In every scheduled row the id and name fields must be adjacent at the
	// front (in FD-group order), with the unique review last.
	for i, r := range res.Schedule.Rows {
		if r.Cells[0].Field != "id" || r.Cells[1].Field != "name" {
			t.Fatalf("row %d: FD fields not leading: %+v", i, r.Cells)
		}
	}
	// PHC: per duplicate row, id (len 3) + name (len 6) = 9 + 36 = 45.
	// Each of the two groups has 3 rows -> 2 hits each -> 4 × 45 = 180.
	if res.PHC != 180 {
		t.Errorf("PHC = %d, want 180", res.PHC)
	}
	if res.Estimate != res.PHC {
		t.Errorf("estimate %d != exact %d with exact FDs", res.Estimate, res.PHC)
	}
}

func TestGGRWithoutFDsStillVerifies(t *testing.T) {
	tb := fig1bTable(4)
	res := GGR(tb, GGROptions{LenOf: table.CharLen, UseFDs: false})
	if err := Verify(tb, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestGGREarlyStoppingFallback(t *testing.T) {
	// Depth 1 on rows: after one split the solver must fall back to the
	// statistics ordering and still emit a valid schedule.
	tb := fig1bTable(5)
	res := GGR(tb, GGROptions{LenOf: table.CharLen, MaxRowDepth: 1, MaxColDepth: 1})
	if err := Verify(tb, res.Schedule); err != nil {
		t.Fatal(err)
	}
	full := GGR(tb, GGROptions{LenOf: table.CharLen})
	if res.PHC > full.PHC {
		t.Errorf("early-stopped PHC %d exceeds exhaustive %d", res.PHC, full.PHC)
	}
}

func TestGGRHitCountThresholdStops(t *testing.T) {
	tb := fig1bTable(5)
	res := GGR(tb, GGROptions{LenOf: table.CharLen, MinHitCount: 1 << 40})
	if err := Verify(tb, res.Schedule); err != nil {
		t.Fatal(err)
	}
	// With an unreachable threshold the whole table takes the fallback path;
	// the schedule must still be valid and PHC consistent.
	recomputed := PHC(res.Schedule, table.CharLen)
	if res.PHC != recomputed {
		t.Errorf("reported PHC %d != recomputed %d", res.PHC, recomputed)
	}
}

func TestGGRWithGlobalStats(t *testing.T) {
	tb := fig1bTable(5)
	stats := table.ComputeStats(tb, table.CharLen)
	res := GGR(tb, GGROptions{LenOf: table.CharLen, MaxRowDepth: 1, MaxColDepth: 1, Stats: stats})
	if err := Verify(tb, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestGGRDeterministic(t *testing.T) {
	tb := randomTable(rand.New(rand.NewSource(7)), 30, 4, 3)
	a := GGR(tb, GGROptions{LenOf: table.CharLen})
	b := GGR(tb, GGROptions{LenOf: table.CharLen})
	if a.PHC != b.PHC || len(a.Schedule.Rows) != len(b.Schedule.Rows) {
		t.Fatal("GGR not deterministic")
	}
	for i := range a.Schedule.Rows {
		if a.Schedule.Rows[i].Source != b.Schedule.Rows[i].Source {
			t.Fatalf("row %d differs between runs", i)
		}
	}
}

// randomTable builds an n×m table whose values are drawn from small
// per-column alphabets, producing the grouped structure the solvers exploit.
func randomTable(r *rand.Rand, n, m, cardinality int) *table.Table {
	cols := make([]string, m)
	for j := range cols {
		cols[j] = fmt.Sprintf("c%d", j)
	}
	t := table.New(cols...)
	for i := 0; i < n; i++ {
		cells := make([]string, m)
		for j := range cells {
			cells[j] = fmt.Sprintf("v%d_%d", j, r.Intn(cardinality))
		}
		t.MustAppendRow(cells...)
	}
	return t
}

func TestGGRPropertyRandomTables(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(20)
		m := 1 + r.Intn(5)
		card := 1 + r.Intn(4)
		tb := randomTable(r, n, m, card)
		res := GGR(tb, GGROptions{LenOf: table.CharLen})
		if err := Verify(tb, res.Schedule); err != nil {
			t.Fatalf("trial %d (%dx%d card %d): %v", trial, n, m, card, err)
		}
		// Exact PHC can only exceed the recursive estimate (block-boundary
		// hits the recursion does not claim).
		if res.PHC < res.Estimate {
			t.Fatalf("trial %d: exact PHC %d < estimate %d", trial, res.PHC, res.Estimate)
		}
		// GGR must never lose to the naive original ordering by more than
		// the boundary slack: in practice it should be >=.
		orig := PHC(Original(tb), table.CharLen)
		if res.PHC < orig {
			t.Fatalf("trial %d: GGR PHC %d < original %d", trial, res.PHC, orig)
		}
	}
}

func TestGGRBeatsBestFixedOnFig1b(t *testing.T) {
	for _, x := range []int{2, 4, 8} {
		tb := fig1bTable(x)
		ggr := GGR(tb, GGROptions{LenOf: table.UnitLen})
		fixed := PHC(BestFixed(tb, table.UnitLen), table.UnitLen)
		if ggr.PHC <= fixed && x > 1 {
			t.Errorf("x=%d: GGR %d not better than fixed %d", x, ggr.PHC, fixed)
		}
		if want := 3 * fixed; ggr.PHC != want {
			t.Errorf("x=%d: GGR %d, want m× fixed = %d", x, ggr.PHC, want)
		}
	}
}
