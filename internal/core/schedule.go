// Package core implements the paper's contribution: request-reordering
// algorithms that maximize the prefix hit count (PHC) of an LLM query's
// request batch.
//
// A request schedule is a list of tuples L (Sec. 3.1): each tuple is one row
// of the input table, and both the order of tuples and the order of fields
// inside each tuple are free — every row may use a different field order.
// The objective, PHC (Eq. 1–2), sums per row the squared lengths of the
// leading run of cells that exactly match the previous row's cells.
//
// Three schedulers are provided:
//
//   - Original: the identity schedule (the Cache (Original) baseline).
//   - OPHR: the exact, exponential-time Optimal Prefix Hit Recursion.
//   - GGR: Greedy Group Recursion (Algorithm 1), the practical solver, with
//     functional-dependency inference, early stopping, and a table-statistics
//     fallback ordering.
package core

import (
	"fmt"

	"repro/internal/table"
)

// Cell is one (field, value) pair of a scheduled request. Prefix matching
// compares both members: serialized prompts include the field name (JSON
// key), so a value match under a different field is not a cache hit.
type Cell struct {
	Field string
	Value string
}

// Row is one scheduled request: the source row index in the input table and
// the cells in their chosen serialization order.
type Row struct {
	Source int
	Cells  []Cell
}

// Schedule is a reordered list of tuples — the solver output that the query
// executor turns into prompts.
type Schedule struct {
	Rows []Row
}

// PHC computes the exact prefix hit count of the schedule (Eq. 1–2): for
// each row after the first, the sum of squared cell lengths over the longest
// leading run of cells equal to the previous row's, summed over rows.
func PHC(s *Schedule, lenOf table.LenFunc) int64 {
	var total int64
	for r := 1; r < len(s.Rows); r++ {
		prev, cur := s.Rows[r-1].Cells, s.Rows[r].Cells
		n := len(cur)
		if len(prev) < n {
			n = len(prev)
		}
		for f := 0; f < n; f++ {
			if cur[f] != prev[f] {
				break
			}
			l := int64(lenOf(cur[f].Value))
			total += l * l
		}
	}
	return total
}

// HitStats decomposes a schedule's prefix reuse in linear (token) units:
// Matched is the total length of cells reused from the previous row, Total
// the total length of all cells. Matched/Total approximates the prefix hit
// rate an ideal adjacent-row cache would observe on the data payload.
type HitStats struct {
	Matched int64
	Total   int64
}

// Rate returns Matched/Total, or 0 for an empty schedule.
func (h HitStats) Rate() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Matched) / float64(h.Total)
}

// Hits measures linear prefix reuse of a schedule.
func Hits(s *Schedule, lenOf table.LenFunc) HitStats {
	var st HitStats
	for r := 0; r < len(s.Rows); r++ {
		cur := s.Rows[r].Cells
		run := true
		for f, c := range cur {
			l := int64(lenOf(c.Value))
			st.Total += l
			if r == 0 || !run {
				continue
			}
			prev := s.Rows[r-1].Cells
			if f < len(prev) && prev[f] == c {
				st.Matched += l
			} else {
				run = false
			}
		}
	}
	return st
}

// Verify checks that a schedule preserves query semantics over t: every
// source row appears exactly once, and each scheduled row's cells are a
// permutation of that source row's (field, value) pairs. This is the
// invariant that lets reordering be applied transparently inside an
// analytics engine.
func Verify(t *table.Table, s *Schedule) error {
	if len(s.Rows) != t.NumRows() {
		return fmt.Errorf("core: schedule has %d rows, table has %d", len(s.Rows), t.NumRows())
	}
	seen := make([]bool, t.NumRows())
	cols := t.Columns()
	for i, r := range s.Rows {
		if r.Source < 0 || r.Source >= t.NumRows() {
			return fmt.Errorf("core: schedule row %d has out-of-range source %d", i, r.Source)
		}
		if seen[r.Source] {
			return fmt.Errorf("core: source row %d scheduled twice", r.Source)
		}
		seen[r.Source] = true
		if len(r.Cells) != len(cols) {
			return fmt.Errorf("core: schedule row %d has %d cells, table has %d columns", i, len(r.Cells), len(cols))
		}
		used := make(map[string]bool, len(r.Cells))
		for _, c := range r.Cells {
			if used[c.Field] {
				return fmt.Errorf("core: schedule row %d repeats field %q", i, c.Field)
			}
			used[c.Field] = true
			want, ok := t.CellByName(r.Source, c.Field)
			if !ok {
				return fmt.Errorf("core: schedule row %d references unknown field %q", i, c.Field)
			}
			if want != c.Value {
				return fmt.Errorf("core: schedule row %d field %q has value %q, table has %q", i, c.Field, c.Value, want)
			}
		}
	}
	return nil
}

// Original returns the identity schedule: rows in table order, fields in
// schema order. This is the paper's Cache (Original) baseline.
func Original(t *table.Table) *Schedule {
	cols := t.Columns()
	s := &Schedule{Rows: make([]Row, t.NumRows())}
	for i := 0; i < t.NumRows(); i++ {
		cells := make([]Cell, len(cols))
		for j, c := range cols {
			cells[j] = Cell{Field: c, Value: t.Cell(i, j)}
		}
		s.Rows[i] = Row{Source: i, Cells: cells}
	}
	return s
}

// FixedOrder returns a schedule with a single field order shared by all rows
// and rows sorted lexicographically under that order — the strongest
// schedule achievable without per-row field reordering (the Sec. 3.2
// strawman). The column order must be a permutation of the table's columns.
func FixedOrder(t *table.Table, colOrder []string) (*Schedule, error) {
	if len(colOrder) != t.NumCols() {
		return nil, fmt.Errorf("core: fixed order has %d columns, table has %d", len(colOrder), t.NumCols())
	}
	idx := make([]int, len(colOrder))
	for i, c := range colOrder {
		j, ok := t.ColIndex(c)
		if !ok {
			return nil, fmt.Errorf("core: fixed order references unknown column %q", c)
		}
		idx[i] = j
	}
	rows := make([]int, t.NumRows())
	for i := range rows {
		rows[i] = i
	}
	sortRowsByCols(t, rows, idx)
	s := &Schedule{Rows: make([]Row, len(rows))}
	for i, src := range rows {
		cells := make([]Cell, len(idx))
		for k, j := range idx {
			cells[k] = Cell{Field: colOrder[k], Value: t.Cell(src, j)}
		}
		s.Rows[i] = Row{Source: src, Cells: cells}
	}
	return s, nil
}

// BestFixed chooses the statistics-driven fixed field order (descending
// expected PHC contribution) and returns the FixedOrder schedule for it.
func BestFixed(t *table.Table, lenOf table.LenFunc) *Schedule {
	stats := table.ComputeStats(t, lenOf)
	order := stats.OrderByScore(t.Columns())
	s, err := FixedOrder(t, order)
	if err != nil {
		// Unreachable: order is a permutation of t's columns by construction.
		panic(err)
	}
	return s
}
