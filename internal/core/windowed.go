package core

import (
	"repro/internal/table"
)

// GGRWindowed runs GGR over consecutive windows of at most window rows and
// concatenates the per-window schedules. This bounds solver memory and
// latency for streaming ingestion — the paper's memory argument (Sec. 6.5)
// notes GGR holds the whole table; windowing trades a little PHC (sharing
// across window boundaries is lost) for an O(window × m) working set, and is
// the natural deployment mode when rows arrive in batches.
//
// window <= 0 or >= the table size degenerates to plain GGR.
func GGRWindowed(t *table.Table, opt GGROptions, window int) *Result {
	if window <= 0 || window >= t.NumRows() {
		return GGR(t, opt)
	}
	if opt.LenOf == nil {
		opt.LenOf = table.CharLen
	}
	l := newLens(opt.LenOf)
	out := &Schedule{Rows: make([]Row, 0, t.NumRows())}
	var estimate int64
	for start := 0; start < t.NumRows(); start += window {
		end := start + window
		if end > t.NumRows() {
			end = t.NumRows()
		}
		idx := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		sub := t.FilterRows(idx)
		res := GGR(sub, opt)
		// Translate sub-table sources back to base row indices.
		for _, r := range res.Schedule.Rows {
			r.Source = idx[r.Source]
			out.Rows = append(out.Rows, r)
		}
		estimate += res.Estimate
	}
	return &Result{Schedule: out, Estimate: estimate, PHC: PHC(out, l.fn())}
}
